// The combined smaRTLy pass: engine toggles, flow composition, statistics
// plumbing, and behaviour on the paper's figure circuits.
#include "aig/aigmap.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;

namespace {

const char* kMixedDesign = R"(
  module mixed(sel, mode, ready, a, b, c, d, y, z);
    input [1:0] sel;
    input mode, ready;
    input [7:0] a, b, c, d;
    output reg [7:0] y;
    output [7:0] z;
    always @(*) case (sel)
      2'b00: y = a;
      2'b01: y = b;
      2'b10: y = c;
      default: y = d;
    endcase
    assign z = mode ? ((mode | ready) ? a : b) : c;
  endmodule
)";

struct FlowRun {
  size_t area = 0;
  core::SmartlyStats stats;
};

FlowRun run(const char* src, const core::SmartlyOptions& opt = {}) {
  auto d = verilog::read_verilog(src);
  auto golden = rtlil::clone_design(*d);
  FlowRun r;
  r.stats = core::smartly_flow(*d->top(), opt);
  EXPECT_TRUE(cec::check_equivalence(*golden->top(), *d->top()).equivalent);
  r.area = aig::aig_area(*d->top());
  return r;
}

} // namespace

TEST(SmartlyPass, BothEnginesFireOnMixedDesign) {
  const FlowRun r = run(kMixedDesign);
  EXPECT_GE(r.stats.rebuild.trees_rebuilt, 1u);
  EXPECT_GE(r.stats.sat.walker.mux_collapsed, 1u);
}

TEST(SmartlyPass, DisablingSatFallsBackToBaselineTraversal) {
  core::SmartlyOptions opt;
  opt.enable_sat = false;
  const FlowRun r = run(kMixedDesign, opt);
  // The walker still ran (as the baseline pass smaRTLy replaces)…
  EXPECT_GT(r.stats.sat.walker.oracle_queries, 0u);
  // …but no inference-stage decisions can have happened.
  EXPECT_EQ(r.stats.sat.decided_inference, 0u);
  EXPECT_EQ(r.stats.sat.decided_sim, 0u);
  EXPECT_EQ(r.stats.sat.decided_sat, 0u);
}

TEST(SmartlyPass, SatOnlyStillBeatsBaselineOnFig3) {
  const char* fig3 = R"(
    module f3(s, r, a, b, c, y);
      input s, r; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )";
  core::SmartlyOptions sat_only;
  sat_only.enable_rebuild = false;
  const FlowRun smart = run(fig3, sat_only);

  auto d = verilog::read_verilog(fig3);
  opt::yosys_flow(*d->top());
  EXPECT_LT(smart.area, aig::aig_area(*d->top()));
}

TEST(SmartlyPass, RebuildOnlyNeverWorseThanBaseline) {
  core::SmartlyOptions rebuild_only;
  rebuild_only.enable_sat = false;
  const FlowRun smart = run(kMixedDesign, rebuild_only);

  auto d = verilog::read_verilog(kMixedDesign);
  opt::yosys_flow(*d->top());
  EXPECT_LE(smart.area, aig::aig_area(*d->top()));
}

TEST(SmartlyPass, FullAtLeastAsGoodAsEachEngine) {
  const FlowRun full = run(kMixedDesign);
  core::SmartlyOptions sat_only;
  sat_only.enable_rebuild = false;
  core::SmartlyOptions rebuild_only;
  rebuild_only.enable_sat = false;
  EXPECT_LE(full.area, run(kMixedDesign, sat_only).area);
  EXPECT_LE(full.area, run(kMixedDesign, rebuild_only).area);
}

TEST(SmartlyPass, OptionsReachTheEngines) {
  // Restricting the rebuild selector width must suppress the 2-bit rebuild.
  core::SmartlyOptions opt;
  opt.rebuild.max_sel_width = 1;
  const FlowRun r = run(kMixedDesign, opt);
  EXPECT_EQ(r.stats.rebuild.trees_rebuilt, 0u);

  // Zeroing both sim and SAT budgets must suppress non-syntactic decisions.
  core::SmartlyOptions opt2;
  opt2.sat.use_inference = false;
  opt2.sat.sim_max_inputs = 0;
  opt2.sat.sat_max_inputs = 0;
  const FlowRun r2 = run(kMixedDesign, opt2);
  EXPECT_EQ(r2.stats.sat.decided_sim + r2.stats.sat.decided_sat, 0u);
}

TEST(SmartlyPass, IdempotentOnFigureCircuits) {
  for (const char* src : {kMixedDesign}) {
    auto d = verilog::read_verilog(src);
    core::smartly_flow(*d->top());
    const size_t once = aig::aig_area(*d->top());
    core::smartly_flow(*d->top());
    EXPECT_EQ(aig::aig_area(*d->top()), once);
  }
}

TEST(SmartlyPass, PassAloneVersusFlow) {
  // smartly_pass on an un-cleaned module must still be sound; the flow
  // (with coarse opts around it) must be at least as strong.
  auto d1 = verilog::read_verilog(kMixedDesign);
  auto golden = rtlil::clone_design(*d1);
  core::smartly_pass(*d1->top());
  EXPECT_TRUE(cec::check_equivalence(*golden->top(), *d1->top()).equivalent);

  auto d2 = verilog::read_verilog(kMixedDesign);
  core::smartly_flow(*d2->top());
  EXPECT_LE(aig::aig_area(*d2->top()), aig::aig_area(*d1->top()));
}

TEST(SmartlyPass, EmptyModule) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("empty");
  const auto stats = core::smartly_flow(*m);
  EXPECT_EQ(stats.rebuild.trees_seen, 0u);
  EXPECT_EQ(stats.sat.queries, 0u);
}

TEST(SmartlyPass, PureDatapathUntouched) {
  const char* src = R"(
    module dp(a, b, y);
      input [7:0] a, b; output [16:0] y;
      assign y = (a * b) + {9'b0, a};
    endmodule
  )";
  auto d = verilog::read_verilog(src);
  opt::coarse_opt(*d->top());
  const size_t before = aig::aig_area(*d->top());
  const FlowRun r = run(src);
  EXPECT_EQ(r.area, before);
  EXPECT_EQ(r.stats.rebuild.trees_rebuilt, 0u);
}
