// Crash-safety tests for the service daemon (src/service/).
//
// Covers the three robustness layers end to end: the snapshot container
// rejects every damage mode and quarantines corrupt files aside, the
// write-ahead journal replays claims/done/quarantine records through torn
// and malformed lines, and OptService itself survives kill-style _exit()
// mid-burst and mid-snapshot-write with a byte-identical result set.
#include "rewrite/rewrite_lib.hpp"
#include "service/service.hpp"
#include "service/snapshot.hpp"
#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>

namespace {

namespace fs = std::filesystem;
using namespace smartly;
using namespace smartly::service;

// Fresh scratch directory per test (same idiom as test_recovery.cpp).
std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "smartly-service-" + tag + "-" +
                          std::to_string(static_cast<long>(::getpid()));
  fs::remove_all(dir);
  return dir;
}

std::string read_all(const std::string& path) {
  std::string out;
  EXPECT_TRUE(util::read_file(path, &out, nullptr)) << path;
  return out;
}

// Two small jobs with genuine muxtree redundancy (the frontend takes only
// non-ANSI port declarations). kRedundantMux: the outer select re-tests s,
// so y collapses to the inner mux. kSameOperandMux: a mux whose branches
// are identical is a wire.
const char* kRedundantMux = "module top(a, b, s, y);\n"
                            "  input a, b, s;\n"
                            "  output y;\n"
                            "  wire n1, n2;\n"
                            "  assign n1 = s ? a : b;\n"
                            "  assign n2 = s ? n1 : b;\n"
                            "  assign y = n2;\n"
                            "endmodule\n";

const char* kSameOperandMux = "module top(a, b, c, s, t, y);\n"
                              "  input a, b, c, s, t;\n"
                              "  output y;\n"
                              "  wire m0, m1;\n"
                              "  assign m0 = s ? a : b;\n"
                              "  assign m1 = t ? m0 : c;\n"
                              "  assign y = s ? m1 : m1;\n"
                              "endmodule\n";

ServiceOptions drain_options() {
  ServiceOptions o;
  o.threads = 1;
  o.poll_ms = 1;
  o.drain_and_exit = true;
  o.queue_max = 8;
  return o;
}

void submit_standard_jobs(const SpoolPaths& paths) {
  std::string error;
  ASSERT_TRUE(paths.ensure(&error)) << error;
  ASSERT_TRUE(submit_job(paths, "alpha", kRedundantMux, &error)) << error;
  ASSERT_TRUE(submit_job(paths, "beta", kSameOperandMux, &error)) << error;
}

// Filename -> bytes of everything under done/. Byte-level equality of two
// of these maps is the "crash changed nothing" oracle.
std::map<std::string, std::string> read_done_tree(const SpoolPaths& paths) {
  std::map<std::string, std::string> out;
  if (!fs::exists(paths.done))
    return out;
  for (const auto& e : fs::directory_iterator(paths.done))
    out[e.path().filename().string()] = read_all(e.path().string());
  return out;
}

// Run the daemon in a forked child so its crash hooks (_exit) cannot take
// the test binary down. Returns the exit code, or 128+signal.
int run_forked(const std::string& root, const ServiceOptions& options) {
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    OptService daemon(root, options);
    ::_exit(daemon.run());
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

// --- snapshot container -----------------------------------------------------

TEST(Snapshot, SealOpenRoundTrip) {
  std::string payload;
  for (int i = 0; i < 256; ++i)
    put_u8(payload, static_cast<uint8_t>(i));

  const std::string sealed = seal_snapshot(7, payload);
  std::string out, error;
  ASSERT_TRUE(open_snapshot(sealed, 7, &out, &error)) << error;
  EXPECT_EQ(out, payload);
}

TEST(Snapshot, OpenRejectsEveryDamageMode) {
  const std::string sealed = seal_snapshot(7, "snapshot payload bytes");
  std::string out, error;

  // Truncated header.
  EXPECT_FALSE(open_snapshot(sealed.substr(0, 10), 7, &out, &error));
  EXPECT_FALSE(error.empty());

  // Bad magic.
  std::string bad = sealed;
  bad[0] ^= 0x20;
  EXPECT_FALSE(open_snapshot(bad, 7, &out, &error));

  // Version mismatch (an old daemon must not misread a new snapshot).
  EXPECT_FALSE(open_snapshot(sealed, 8, &out, &error));

  // Declared length disagrees with the bytes present (torn write).
  EXPECT_FALSE(open_snapshot(sealed.substr(0, sealed.size() - 3), 7, &out, &error));

  // Checksum catches a payload bit flip.
  bad = sealed;
  bad[sealed.size() - 1] ^= 0x01;
  EXPECT_FALSE(open_snapshot(bad, 7, &out, &error));

  // The undamaged original still opens — the rejects above were real.
  EXPECT_TRUE(open_snapshot(sealed, 7, &out, &error)) << error;
}

TEST(Snapshot, MissingFileIsColdStartNotFailure) {
  const std::string dir = fresh_dir("snap-missing");
  fs::create_directories(dir);
  std::string payload, error = "sentinel";
  bool aside = true;
  EXPECT_FALSE(load_snapshot_file(dir + "/absent.snap", 1, &payload, &error, &aside));
  EXPECT_TRUE(error.empty()); // cold start: no diagnostic, nothing quarantined
  EXPECT_FALSE(aside);
  fs::remove_all(dir);
}

TEST(Snapshot, DamagedFileIsQuarantinedAside) {
  const std::string dir = fresh_dir("snap-corrupt");
  fs::create_directories(dir);
  const std::string path = dir + "/state.snap";
  std::string error;
  ASSERT_TRUE(store_snapshot_file(path, 3, "good payload", &error)) << error;

  // Flip one payload byte on disk.
  std::string bytes = read_all(path);
  bytes.back() ^= 0x01;
  ASSERT_TRUE(util::atomic_write_file(path, bytes, &error)) << error;

  std::string payload;
  bool aside = false;
  EXPECT_FALSE(load_snapshot_file(path, 3, &payload, &error, &aside));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(aside);
  EXPECT_FALSE(fs::exists(path));             // moved, not deleted:
  EXPECT_TRUE(fs::exists(path + ".corrupt")); // the evidence survives
  fs::remove_all(dir);
}

// --- write-ahead journal ----------------------------------------------------

TEST(Journal, AppendReplayRoundTrip) {
  const std::string dir = fresh_dir("journal-rt");
  fs::create_directories(dir);
  const std::string path = dir + "/journal.log";

  JobJournal j;
  std::string error;
  ASSERT_TRUE(j.open(path, &error)) << error;
  ASSERT_TRUE(j.append_claim("alpha", 1));
  ASSERT_TRUE(j.append_claim("beta", 1));
  ASSERT_TRUE(j.append_done("alpha", "ok"));
  ASSERT_TRUE(j.append_quarantine("gamma"));
  j.close();

  JournalState state;
  ASSERT_TRUE(JobJournal::replay(path, &state, &error)) << error;
  EXPECT_TRUE(state.jobs.at("alpha").done);
  EXPECT_EQ(state.jobs.at("alpha").status, "ok");
  EXPECT_EQ(state.jobs.at("beta").claims, 1);
  EXPECT_FALSE(state.jobs.at("beta").done);
  EXPECT_TRUE(state.jobs.at("gamma").quarantined);
  EXPECT_EQ(state.interrupted(), std::vector<std::string>{"beta"});
  EXPECT_EQ(state.torn_lines, 0u);
  EXPECT_EQ(state.malformed_lines, 0u);
  fs::remove_all(dir);
}

TEST(Journal, TornTrailingLineIsIgnored) {
  const std::string dir = fresh_dir("journal-torn");
  fs::create_directories(dir);
  const std::string path = dir + "/journal.log";
  // The final append was interrupted mid-write: no trailing newline.
  ASSERT_TRUE(util::atomic_write_file(path, "claim alpha 1\ndone alpha ok\nclaim be", nullptr));

  JournalState state;
  std::string error;
  ASSERT_TRUE(JobJournal::replay(path, &state, &error)) << error;
  EXPECT_EQ(state.torn_lines, 1u);
  EXPECT_EQ(state.jobs.count("be"), 0u); // the torn claim never happened
  EXPECT_TRUE(state.jobs.at("alpha").done);
  EXPECT_TRUE(state.interrupted().empty());
  fs::remove_all(dir);
}

TEST(Journal, MalformedInteriorLinesAreCountedNotFatal) {
  const std::string dir = fresh_dir("journal-bad");
  fs::create_directories(dir);
  const std::string path = dir + "/journal.log";
  ASSERT_TRUE(util::atomic_write_file(
      path, "complete garbage\nclaim missing-attempt\nclaim alpha 2\n", nullptr));

  JournalState state;
  std::string error;
  ASSERT_TRUE(JobJournal::replay(path, &state, &error)) << error;
  EXPECT_EQ(state.malformed_lines, 2u);
  EXPECT_EQ(state.jobs.at("alpha").claims, 2);
  fs::remove_all(dir);
}

TEST(Journal, FreshClaimSupersedesEarlierDone) {
  const std::string dir = fresh_dir("journal-resubmit");
  fs::create_directories(dir);
  const std::string path = dir + "/journal.log";
  // A client finished "alpha", then resubmitted it; the second claim must
  // replay as interrupted or the resubmission is silently lost on restart.
  ASSERT_TRUE(util::atomic_write_file(path, "claim alpha 1\ndone alpha ok\nclaim alpha 2\n",
                                      nullptr));

  JournalState state;
  std::string error;
  ASSERT_TRUE(JobJournal::replay(path, &state, &error)) << error;
  EXPECT_FALSE(state.jobs.at("alpha").done);
  EXPECT_EQ(state.jobs.at("alpha").claims, 2);
  EXPECT_EQ(state.interrupted(), std::vector<std::string>{"alpha"});
  fs::remove_all(dir);
}

TEST(Journal, CompactKeepsOnlyLiveRecords) {
  const std::string dir = fresh_dir("journal-compact");
  fs::create_directories(dir);
  const std::string path = dir + "/journal.log";
  ASSERT_TRUE(util::atomic_write_file(path,
                                      "claim finished 1\ndone finished ok\n"
                                      "claim live 3\nquarantine poison\n",
                                      nullptr));

  JournalState state;
  std::string error;
  ASSERT_TRUE(JobJournal::replay(path, &state, &error)) << error;
  ASSERT_TRUE(JobJournal::compact(path, state, &error)) << error;

  JournalState after;
  ASSERT_TRUE(JobJournal::replay(path, &after, &error)) << error;
  EXPECT_EQ(after.jobs.count("finished"), 0u); // done claims are dropped
  EXPECT_EQ(after.jobs.at("live").claims, 3);  // claim counts survive
  EXPECT_TRUE(after.jobs.at("poison").quarantined);
  EXPECT_EQ(after.jobs.size(), 2u);
  fs::remove_all(dir);
}

// --- warm caches ------------------------------------------------------------

TEST(WarmCache, OracleMemoStoresEveryDefinitiveVerdict) {
  OracleMemo memo;
  using opt::CtrlDecision;
  memo.insert({1, 1}, CtrlDecision::Zero);
  memo.insert({2, 2}, CtrlDecision::One);
  memo.insert({3, 3}, CtrlDecision::DeadPath);
  memo.insert({4, 4}, CtrlDecision::Unknown); // proven not-forced is memoizable
  EXPECT_EQ(memo.size(), 4u);

  CtrlDecision d;
  ASSERT_TRUE(memo.lookup({4, 4}, &d));
  EXPECT_EQ(d, CtrlDecision::Unknown);
  ASSERT_TRUE(memo.lookup({1, 1}, &d));
  EXPECT_EQ(d, CtrlDecision::Zero);
  EXPECT_FALSE(memo.lookup({5, 5}, &d));
}

TEST(WarmCache, ResultCacheDegradesToMissWhenFull) {
  ResultCache cache;
  for (size_t i = 0; i < kResultCacheMax; ++i)
    cache.insert({i, i}, {"module top; endmodule\n", "status=ok\n"});
  ASSERT_EQ(cache.size(), kResultCacheMax);

  cache.insert({~0ull, ~0ull}, {"overflow\n", "status=ok\n"});
  EXPECT_EQ(cache.size(), kResultCacheMax); // dropped, not evicted
  ResultCache::Entry e;
  EXPECT_FALSE(cache.lookup({~0ull, ~0ull}, &e));
  EXPECT_TRUE(cache.lookup({0, 0}, &e)); // the old entries are all intact
}

TEST(WarmCache, JobResultKeySeparatesSourcesAndGenerations) {
  const Hash128 a = job_result_key(kRedundantMux);
  const Hash128 b = job_result_key(kSameOperandMux);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == job_result_key(kRedundantMux)); // pure function of the bytes
  const std::string shifted = std::string("\n") + kRedundantMux;
  EXPECT_FALSE(a == job_result_key(shifted));
}

TEST(WarmCache, SerializeLoadRoundTripsAllThreeLayers) {
  const std::string dir = fresh_dir("warm-rt");
  fs::create_directories(dir);
  const std::string path = dir + "/warm_cache.snap";

  OracleMemo memo;
  memo.insert({10, 20}, opt::CtrlDecision::One);
  memo.insert({30, 40}, opt::CtrlDecision::Unknown);
  ResultCache results;
  results.insert(job_result_key(kRedundantMux),
                 {"module top(y); output y; endmodule\n", "status=ok\ncells.before=3\n"});

  // Stable bytes: serializing twice must be byte-identical (the recovery
  // tests compare snapshot files across daemon runs).
  EXPECT_EQ(serialize_warm_cache(memo, results), serialize_warm_cache(memo, results));

  std::string error;
  ASSERT_TRUE(save_warm_cache(path, memo, results, &error)) << error;

  OracleMemo memo2;
  ResultCache results2;
  WarmCacheLoadStats stats;
  ASSERT_TRUE(load_warm_cache(path, &memo2, &results2, &stats)) << stats.error;
  EXPECT_TRUE(stats.loaded);
  EXPECT_EQ(stats.oracle_entries, 2u);
  EXPECT_EQ(stats.result_entries, 1u);
  EXPECT_EQ(stats.rejected_records, 0u);

  opt::CtrlDecision d;
  ASSERT_TRUE(memo2.lookup({30, 40}, &d));
  EXPECT_EQ(d, opt::CtrlDecision::Unknown);
  ResultCache::Entry e;
  ASSERT_TRUE(results2.lookup(job_result_key(kRedundantMux), &e));
  EXPECT_EQ(e.verilog, "module top(y); output y; endmodule\n");
  EXPECT_EQ(e.manifest_tail, "status=ok\ncells.before=3\n");
  fs::remove_all(dir);
}

TEST(WarmCache, LoadRejectsInvalidRecordsKeepsTheRest) {
  const std::string dir = fresh_dir("warm-reject");
  fs::create_directories(dir);
  const std::string path = dir + "/warm_cache.snap";

  // Hand-build a payload: one valid oracle entry, one with a garbage
  // decision byte, no programs, one result entry with an empty netlist.
  std::string payload;
  put_u64(payload, rewrite::RewriteLibrary::instance().fingerprint());
  put_u32(payload, 2);
  put_u64(payload, 222); // key.hi (the codec writes hi first)
  put_u64(payload, 111); // key.lo
  put_u8(payload, 2);    // One
  put_u64(payload, 444);
  put_u64(payload, 333);
  put_u8(payload, 9); // garbage decision: must be rejected, not misread
  put_u32(payload, 0); // programs
  put_u32(payload, 1); // results
  put_u64(payload, 555);
  put_u64(payload, 666);
  put_u32(payload, 0); // empty verilog blob: a broken writer, reject
  put_u32(payload, 4);
  payload += "tail";

  std::string error;
  ASSERT_TRUE(store_snapshot_file(path, kWarmCacheVersion, payload, &error)) << error;

  OracleMemo memo;
  ResultCache results;
  WarmCacheLoadStats stats;
  ASSERT_TRUE(load_warm_cache(path, &memo, &results, &stats));
  EXPECT_EQ(stats.oracle_entries, 1u);
  EXPECT_EQ(stats.result_entries, 0u);
  EXPECT_EQ(stats.rejected_records, 2u);

  opt::CtrlDecision d;
  EXPECT_TRUE(memo.lookup({111, 222}, &d));
  EXPECT_FALSE(memo.lookup({333, 444}, &d));
  fs::remove_all(dir);
}

TEST(WarmCache, LoadSurvivesInternallyInconsistentPayload) {
  const std::string dir = fresh_dir("warm-truncated");
  fs::create_directories(dir);
  const std::string path = dir + "/warm_cache.snap";

  // Claims two oracle entries but carries only one: the checksum passes
  // (the file was sealed this way) yet the records must not parse past the
  // end. The loader keeps what it applied and reports the damage.
  std::string payload;
  put_u64(payload, rewrite::RewriteLibrary::instance().fingerprint());
  put_u32(payload, 2);
  put_u64(payload, 1);
  put_u64(payload, 2);
  put_u8(payload, 1);

  std::string error;
  ASSERT_TRUE(store_snapshot_file(path, kWarmCacheVersion, payload, &error)) << error;

  OracleMemo memo;
  ResultCache results;
  WarmCacheLoadStats stats;
  ASSERT_TRUE(load_warm_cache(path, &memo, &results, &stats));
  EXPECT_FALSE(stats.error.empty());
  EXPECT_GE(stats.rejected_records, 1u);
  EXPECT_EQ(stats.oracle_entries, 1u);
  fs::remove_all(dir);
}

// --- spool protocol ---------------------------------------------------------

TEST(Spool, JobNameValidation) {
  EXPECT_TRUE(job_name_valid("alpha"));
  EXPECT_TRUE(job_name_valid("job-003.ind_x"));
  EXPECT_FALSE(job_name_valid(""));
  EXPECT_FALSE(job_name_valid(".hidden"));
  EXPECT_FALSE(job_name_valid("has space"));
  EXPECT_FALSE(job_name_valid("path/traversal"));
  EXPECT_FALSE(job_name_valid(std::string(129, 'a')));
}

TEST(Spool, SubmitListPublishLifecycle) {
  const SpoolPaths paths = SpoolPaths::at(fresh_dir("spool"));
  std::string error;
  ASSERT_TRUE(paths.ensure(&error)) << error;

  ASSERT_TRUE(submit_job(paths, "zeta", "module top; endmodule\n", &error)) << error;
  ASSERT_TRUE(submit_job(paths, "alpha", "module top; endmodule\n", &error)) << error;
  EXPECT_EQ(list_jobs(paths), (std::vector<std::string>{"alpha", "zeta"}));

  ASSERT_TRUE(write_result(paths, "alpha", "module top; endmodule\n", "job=alpha\nstatus=ok\n",
                           &error))
      << error;
  EXPECT_EQ(list_jobs(paths), std::vector<std::string>{"zeta"}); // consumed
  EXPECT_EQ(list_done(paths), std::vector<std::string>{"alpha"});
  EXPECT_EQ(read_all(paths.done + "/alpha.result"), "job=alpha\nstatus=ok\n");
  fs::remove_all(paths.root);
}

// --- the daemon end to end --------------------------------------------------

TEST(OptServiceEndToEnd, DrainOnceOptimizesAndPersists) {
  const SpoolPaths paths = SpoolPaths::at(fresh_dir("drain"));
  submit_standard_jobs(paths);

  OptService daemon(paths.root, drain_options());
  ASSERT_EQ(daemon.run(), 0);
  EXPECT_EQ(daemon.stats().jobs_completed, 2u);
  EXPECT_EQ(daemon.stats().jobs_failed, 0u);
  EXPECT_EQ(daemon.stats().jobs_quarantined, 0u);

  EXPECT_EQ(list_done(paths), (std::vector<std::string>{"alpha", "beta"}));
  const std::string manifest = read_all(paths.done + "/alpha.result");
  EXPECT_NE(manifest.find("job=alpha\n"), std::string::npos);
  EXPECT_NE(manifest.find("status=ok\n"), std::string::npos);
  EXPECT_NE(manifest.find("cells.before="), std::string::npos);
  EXPECT_FALSE(read_all(paths.done + "/alpha.v").empty());
  EXPECT_TRUE(fs::exists(paths.warm_cache_path()));
  EXPECT_TRUE(fs::exists(paths.stats_path()));
  fs::remove_all(paths.root);
}

TEST(OptServiceEndToEnd, WarmRunReplaysFromResultCacheByteIdentically) {
  const SpoolPaths cold = SpoolPaths::at(fresh_dir("warm-a"));
  submit_standard_jobs(cold);
  OptService cold_daemon(cold.root, drain_options());
  ASSERT_EQ(cold_daemon.run(), 0);
  EXPECT_EQ(cold_daemon.stats().result_hits, 0u);

  const SpoolPaths warm = SpoolPaths::at(fresh_dir("warm-b"));
  submit_standard_jobs(warm);
  fs::copy_file(cold.warm_cache_path(), warm.warm_cache_path(),
                fs::copy_options::overwrite_existing);

  OptService warm_daemon(warm.root, drain_options());
  ASSERT_EQ(warm_daemon.run(), 0);
  EXPECT_TRUE(warm_daemon.stats().warm.loaded);
  EXPECT_EQ(warm_daemon.stats().result_hits, 2u); // no engine ran at all
  EXPECT_EQ(warm_daemon.stats().result_misses, 0u);
  EXPECT_EQ(read_done_tree(warm), read_done_tree(cold));
  fs::remove_all(cold.root);
  fs::remove_all(warm.root);
}

TEST(OptServiceEndToEnd, KillMidBurstThenRestartIsByteIdentical) {
  // Golden reference: the same jobs with no interruption.
  const SpoolPaths golden = SpoolPaths::at(fresh_dir("crash-golden"));
  submit_standard_jobs(golden);
  OptService golden_daemon(golden.root, drain_options());
  ASSERT_EQ(golden_daemon.run(), 0);

  const SpoolPaths crash = SpoolPaths::at(fresh_dir("crash"));
  submit_standard_jobs(crash);
  ServiceOptions crashing = drain_options();
  crashing.crash_after_jobs = 1; // die after the first completion
  ASSERT_EQ(run_forked(crash.root, crashing), 137);

  // The claim of the in-flight second job must already be durable.
  JournalState state;
  std::string error;
  ASSERT_TRUE(JobJournal::replay(crash.journal_path(), &state, &error)) << error;
  EXPECT_FALSE(state.interrupted().empty());

  OptService restarted(crash.root, drain_options());
  ASSERT_EQ(restarted.run(), 0);
  EXPECT_EQ(restarted.stats().jobs_quarantined, 0u); // one crash != crash loop
  EXPECT_EQ(read_done_tree(crash), read_done_tree(golden));
  fs::remove_all(golden.root);
  fs::remove_all(crash.root);
}

TEST(OptServiceEndToEnd, TornSnapshotIsQuarantinedAndColdRebuilt) {
  const SpoolPaths paths = SpoolPaths::at(fresh_dir("snap-tear"));
  submit_standard_jobs(paths);
  OptService first(paths.root, drain_options());
  ASSERT_EQ(first.run(), 0); // leaves a good snapshot behind

  // The next run dies while overwriting it, leaving torn bytes at the
  // final path — the one corruption atomic rename cannot prevent alone.
  ServiceOptions tearing = drain_options();
  tearing.crash_during_snapshot = true;
  ASSERT_EQ(run_forked(paths.root, tearing), 137);

  OptService recovered(paths.root, drain_options());
  ASSERT_EQ(recovered.run(), 0);
  EXPECT_TRUE(recovered.stats().warm.corrupt_quarantined);
  EXPECT_FALSE(recovered.stats().warm.loaded);
  EXPECT_TRUE(fs::exists(paths.warm_cache_path() + ".corrupt"));

  // The drain epilogue re-persisted a fresh, valid snapshot.
  std::string payload, error;
  EXPECT_TRUE(load_snapshot_file(paths.warm_cache_path(), kWarmCacheVersion, &payload, &error))
      << error;
  fs::remove_all(paths.root);
}

TEST(OptServiceEndToEnd, CrashLoopingJobIsQuarantinedWithReproBundle) {
  const SpoolPaths paths = SpoolPaths::at(fresh_dir("poison"));
  submit_standard_jobs(paths);
  std::string error;
  ASSERT_TRUE(submit_job(paths, "boom", kRedundantMux, &error)) << error;

  // Seed the journal as if "boom" took the daemon down twice already
  // (crash_threshold = 2) without ever finishing.
  ASSERT_TRUE(util::atomic_write_file(paths.journal_path(), "claim boom 1\nclaim boom 2\n",
                                      &error))
      << error;

  OptService daemon(paths.root, drain_options());
  ASSERT_EQ(daemon.run(), 0);
  EXPECT_EQ(daemon.stats().jobs_quarantined, 1u);
  EXPECT_EQ(daemon.stats().jobs_completed, 2u); // the healthy jobs still ran
  EXPECT_TRUE(fs::exists(paths.quarantine + "/boom.v"));
  EXPECT_EQ(list_done(paths), (std::vector<std::string>{"alpha", "beta"}));

  // The bundle makes the crash loop debuggable, not just broken.
  util::ReproBundle bundle;
  ASSERT_TRUE(util::read_repro_bundle(paths.quarantine + "/bundle-0000-service.job", &bundle,
                                      &error))
      << error;
  EXPECT_EQ(bundle.design_verilog, kRedundantMux);
  EXPECT_EQ(bundle.attempt, 2);

  // A second startup must not re-quarantine or resurrect the job.
  OptService again(paths.root, drain_options());
  ASSERT_EQ(again.run(), 0);
  EXPECT_EQ(again.stats().jobs_quarantined, 0u);
  EXPECT_TRUE(fs::exists(paths.quarantine + "/boom.v"));
  fs::remove_all(paths.root);
}

TEST(OptServiceEndToEnd, BacklogBeyondQueueMaxIsShedExplicitly) {
  const SpoolPaths paths = SpoolPaths::at(fresh_dir("shed"));
  std::string error;
  ASSERT_TRUE(paths.ensure(&error)) << error;
  ASSERT_TRUE(submit_job(paths, "j1", kRedundantMux, &error)) << error;
  ASSERT_TRUE(submit_job(paths, "j2", kSameOperandMux, &error)) << error;
  ASSERT_TRUE(submit_job(paths, "j3", kRedundantMux, &error)) << error;

  ServiceOptions options = drain_options();
  options.queue_max = 1;
  OptService daemon(paths.root, options);
  ASSERT_EQ(daemon.run(), 0);

  EXPECT_EQ(daemon.stats().jobs_completed, 1u);
  EXPECT_EQ(daemon.stats().jobs_shed, 2u);
  // Shed is a response, not silence: the client gets an explicit reason.
  EXPECT_TRUE(fs::exists(paths.failed + "/j2.error"));
  EXPECT_TRUE(fs::exists(paths.failed + "/j3.error"));
  EXPECT_NE(read_all(paths.failed + "/j2.error").find("shed"), std::string::npos);
  fs::remove_all(paths.root);
}

} // namespace
