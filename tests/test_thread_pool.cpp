// Pins the ThreadPool sizing contract the service daemon depends on:
// hardware_concurrency() is allowed to return 0, and neither
// resolve_thread_count nor the pool itself may ever end up with zero
// workers — a daemon that silently sized its pool to zero would accept
// jobs and run nothing.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace {

using smartly::util::ThreadPool;
using smartly::util::resolve_thread_count;

TEST(ThreadPoolSizing, ResolveNeverReturnsLessThanOne) {
  // 0 means "one per hardware thread", with floor 1 even when the runtime
  // reports hardware_concurrency() == 0 (permitted by the standard).
  EXPECT_GE(resolve_thread_count(0), 1);
  EXPECT_GE(resolve_thread_count(-1), 1);
  EXPECT_GE(resolve_thread_count(-1000), 1);
}

TEST(ThreadPoolSizing, ExplicitRequestIsHonoredExactly) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(7), 7);
  EXPECT_EQ(resolve_thread_count(64), 64);
}

TEST(ThreadPoolSizing, PoolClampsDegenerateSizesToOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-4);
  EXPECT_EQ(negative.size(), 1);
}

TEST(ThreadPoolBatches, SingleThreadRunsEveryTaskInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.run_batch(16, [&](int worker, size_t task) {
    EXPECT_EQ(worker, 0); // degenerate pool: plain loop on the caller
    order.push_back(task);
  });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolBatches, EveryTaskRunsExactlyOnceAcrossWorkers) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 500;
  std::vector<std::atomic<int>> runs(kTasks);
  pool.run_batch(kTasks, [&](int worker, size_t task) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.size());
    runs[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kTasks; ++i)
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolBatches, PoolIsReusableAfterAThrowingBatch) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_batch(8,
                              [&](int, size_t task) {
                                if (task == 3)
                                  throw std::runtime_error("task 3 failed");
                              }),
               std::runtime_error);

  // The barrier completed and the pool is not poisoned: the next batch runs.
  std::atomic<size_t> ran{0};
  pool.run_batch(8, [&](int, size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 8u);
}

TEST(ThreadPoolBatches, EmptyBatchIsANoOp) {
  ThreadPool pool(3);
  pool.run_batch(0, [&](int, size_t) { FAIL() << "no task should run"; });
}

} // namespace
