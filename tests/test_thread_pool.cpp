// Pins the ThreadPool sizing contract the service daemon depends on:
// hardware_concurrency() is allowed to return 0, and neither
// resolve_thread_count nor the pool itself may ever end up with zero
// workers — a daemon that silently sized its pool to zero would accept
// jobs and run nothing.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace {

using smartly::util::ThreadPool;
using smartly::util::resolve_thread_count;

TEST(ThreadPoolSizing, ResolveNeverReturnsLessThanOne) {
  // 0 means "one per hardware thread", with floor 1 even when the runtime
  // reports hardware_concurrency() == 0 (permitted by the standard).
  EXPECT_GE(resolve_thread_count(0), 1);
  EXPECT_GE(resolve_thread_count(-1), 1);
  EXPECT_GE(resolve_thread_count(-1000), 1);
}

TEST(ThreadPoolSizing, ExplicitRequestIsHonoredExactly) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(7), 7);
  EXPECT_EQ(resolve_thread_count(64), 64);
}

TEST(ThreadPoolSizing, PoolClampsDegenerateSizesToOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-4);
  EXPECT_EQ(negative.size(), 1);
}

TEST(ThreadPoolBatches, SingleThreadRunsEveryTaskInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.run_batch(16, [&](int worker, size_t task) {
    EXPECT_EQ(worker, 0); // degenerate pool: plain loop on the caller
    order.push_back(task);
  });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolBatches, EveryTaskRunsExactlyOnceAcrossWorkers) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 500;
  std::vector<std::atomic<int>> runs(kTasks);
  pool.run_batch(kTasks, [&](int worker, size_t task) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.size());
    runs[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kTasks; ++i)
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolBatches, PoolIsReusableAfterAThrowingBatch) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_batch(8,
                              [&](int, size_t task) {
                                if (task == 3)
                                  throw std::runtime_error("task 3 failed");
                              }),
               std::runtime_error);

  // The barrier completed and the pool is not poisoned: the next batch runs.
  std::atomic<size_t> ran{0};
  pool.run_batch(8, [&](int, size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 8u);
}

TEST(ThreadPoolBatches, EmptyBatchIsANoOp) {
  ThreadPool pool(3);
  pool.run_batch(0, [&](int, size_t) { FAIL() << "no task should run"; });
}

using smartly::util::ThreadPool;
using TaskVerdict = ThreadPool::TaskVerdict;

TEST(ThreadPoolRequeue, EveryTaskEventuallyRetiresOnceDone) {
  // Each task requeues a task-dependent number of times before returning
  // Done; the batch must not complete until every task has retired.
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    constexpr size_t kTasks = 64;
    std::vector<std::atomic<int>> attempts(kTasks);
    pool.run_requeue_batch(kTasks, [&](int, size_t task) {
      const int seen = attempts[task].fetch_add(1, std::memory_order_relaxed) + 1;
      return seen <= static_cast<int>(task % 4) ? TaskVerdict::Requeue
                                                : TaskVerdict::Done;
    });
    for (size_t i = 0; i < kTasks; ++i)
      EXPECT_EQ(attempts[i].load(), static_cast<int>(i % 4) + 1) << "task " << i;
  }
}

TEST(ThreadPoolRequeue, SingleThreadRequeueDrainsAfterLocalWork) {
  // With one thread the scheduling is fully deterministic: seeding pushes
  // back, the owner pops the back, and a requeued task goes to the front —
  // so a task that requeues once reruns only after all other tasks retired.
  ThreadPool pool(1);
  std::vector<size_t> retire_order;
  bool requeued = false;
  pool.run_requeue_batch(5, [&](int, size_t task) {
    if (task == 4 && !requeued) {
      requeued = true;
      return TaskVerdict::Requeue;
    }
    retire_order.push_back(task);
    return TaskVerdict::Done;
  });
  // LIFO drain of 0..4 starts at 4 (requeued), then 3,2,1,0, then 4 again.
  const std::vector<size_t> want = {3, 2, 1, 0, 4};
  EXPECT_EQ(retire_order, want);
}

TEST(ThreadPoolRequeue, RequeueBatchPropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(2);
  std::atomic<int> attempts{0};
  EXPECT_THROW(pool.run_requeue_batch(8,
                                      [&](int, size_t task) {
                                        attempts.fetch_add(1, std::memory_order_relaxed);
                                        if (task == 2)
                                          throw std::runtime_error("task 2 failed");
                                        return TaskVerdict::Done;
                                      }),
               std::runtime_error);

  std::atomic<size_t> ran{0};
  pool.run_requeue_batch(8, [&](int, size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
    return TaskVerdict::Done;
  });
  EXPECT_EQ(ran.load(), 8u);
}

TEST(ThreadPoolRequeue, ConflictStyleRequeueResolvesAcrossWorkers) {
  // Model the reservation protocol's shape: a "blocked" task requeues until
  // a flag set by another task appears. The lowest task sets the flag, so
  // progress is guaranteed — exactly the invariant run_requeue_batch asks
  // its callers for.
  ThreadPool pool(4);
  std::atomic<bool> unblocked{false};
  std::vector<std::atomic<int>> retires(32);
  pool.run_requeue_batch(32, [&](int, size_t task) {
    if (task == 0) {
      unblocked.store(true, std::memory_order_release);
    } else if (task % 5 == 0 && !unblocked.load(std::memory_order_acquire)) {
      std::this_thread::yield();
      return TaskVerdict::Requeue;
    }
    retires[task].fetch_add(1, std::memory_order_relaxed);
    return TaskVerdict::Done;
  });
  for (size_t i = 0; i < retires.size(); ++i)
    EXPECT_EQ(retires[i].load(), 1) << "task " << i;
}

} // namespace
