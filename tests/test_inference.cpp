// InferenceEngine: the paper's Table I rules for OR cells plus the analogous
// rules for and/not/xor/mux/eq, propagation to fixpoint, and contradiction
// detection.
#include "core/inference.hpp"
#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using core::InferenceEngine;
using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  rtlil::SigMap sigmap;
  Fixture() { mod = design.add_module("top"); }

  Wire* w(const char* name) {
    Wire* x = mod->add_wire(name, 1);
    mod->set_port_input(x);
    return x;
  }

  std::vector<rtlil::Cell*> all_cells() const {
    std::vector<rtlil::Cell*> out;
    for (const auto& c : mod->cells())
      out.push_back(c.get());
    return out;
  }

  InferenceEngine engine() { return InferenceEngine(all_cells(), sigmap); }
};

} // namespace

// --- Table I: OR rules ------------------------------------------------------

TEST(InferenceOr, ATrueForcesOutputTrue) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Or(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(a, 0), true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(y[0]), std::make_optional(true));
  EXPECT_FALSE(e.value(SigBit(b, 0)).has_value()) << "b must stay unknown";
}

TEST(InferenceOr, BothFalseForcesOutputFalse) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Or(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(a, 0), false));
  ASSERT_TRUE(e.assume(SigBit(b, 0), false));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(y[0]), std::make_optional(false));
}

TEST(InferenceOr, OutputFalseForcesBothInputsFalse) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Or(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(y[0], false));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(SigBit(a, 0)), std::make_optional(false));
  EXPECT_EQ(e.value(SigBit(b, 0)), std::make_optional(false));
}

TEST(InferenceOr, OutputTrueWithOneFalseForcesOther) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Or(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(y[0], true));
  ASSERT_TRUE(e.assume(SigBit(a, 0), false));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(SigBit(b, 0)), std::make_optional(true));
}

TEST(InferenceOr, OutputTrueAloneDecidesNothing) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Or(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(y[0], true));
  ASSERT_TRUE(e.propagate());
  EXPECT_FALSE(e.value(SigBit(a, 0)).has_value());
  EXPECT_FALSE(e.value(SigBit(b, 0)).has_value());
}

// --- AND (dual rules) -------------------------------------------------------

TEST(InferenceAnd, AFalseForcesOutputFalse) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->And(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(a, 0), false));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(y[0]), std::make_optional(false));
}

TEST(InferenceAnd, OutputTrueForcesBothInputs) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->And(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(y[0], true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(SigBit(a, 0)), std::make_optional(true));
  EXPECT_EQ(e.value(SigBit(b, 0)), std::make_optional(true));
}

TEST(InferenceAnd, OutputFalseWithOneTrueForcesOtherFalse) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->And(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(y[0], false));
  ASSERT_TRUE(e.assume(SigBit(a, 0), true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(SigBit(b, 0)), std::make_optional(false));
}

// --- NOT / XOR / MUX / EQ ---------------------------------------------------

TEST(InferenceNot, PropagatesBothDirections) {
  Fixture f;
  Wire* a = f.w("a");
  const SigSpec y = f.mod->Not(SigSpec(a));
  {
    auto e = f.engine();
    ASSERT_TRUE(e.assume(SigBit(a, 0), true));
    ASSERT_TRUE(e.propagate());
    EXPECT_EQ(e.value(y[0]), std::make_optional(false));
  }
  {
    auto e = f.engine();
    ASSERT_TRUE(e.assume(y[0], true));
    ASSERT_TRUE(e.propagate());
    EXPECT_EQ(e.value(SigBit(a, 0)), std::make_optional(false));
  }
}

TEST(InferenceXor, ForwardAndBackward) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Xor(SigSpec(a), SigSpec(b));
  {
    auto e = f.engine();
    ASSERT_TRUE(e.assume(SigBit(a, 0), true));
    ASSERT_TRUE(e.assume(SigBit(b, 0), false));
    ASSERT_TRUE(e.propagate());
    EXPECT_EQ(e.value(y[0]), std::make_optional(true));
  }
  {
    // y known and one input known: other input = y ^ input.
    auto e = f.engine();
    ASSERT_TRUE(e.assume(y[0], true));
    ASSERT_TRUE(e.assume(SigBit(a, 0), true));
    ASSERT_TRUE(e.propagate());
    EXPECT_EQ(e.value(SigBit(b, 0)), std::make_optional(false));
  }
}

TEST(InferenceMux, SelectKnownForwardsChosenInput) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  Wire* s = f.w("s");
  const SigSpec y = f.mod->Mux(SigSpec(a), SigSpec(b), SigSpec(s));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(s, 0), true)); // Y = B
  ASSERT_TRUE(e.assume(SigBit(b, 0), true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(y[0]), std::make_optional(true));
}

TEST(InferenceMux, BothInputsEqualForcesOutput) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  Wire* s = f.w("s");
  const SigSpec y = f.mod->Mux(SigSpec(a), SigSpec(b), SigSpec(s));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(a, 0), true));
  ASSERT_TRUE(e.assume(SigBit(b, 0), true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(y[0]), std::make_optional(true)) << "y = s?1:1 = 1";
}

TEST(InferenceEq, SingleBitEqBehavesLikeXnor) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Eq(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(y[0], true));
  ASSERT_TRUE(e.assume(SigBit(a, 0), true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(SigBit(b, 0)), std::make_optional(true));
}

// --- chains, fixpoint, contradictions ---------------------------------------

TEST(Inference, PaperFig3Scenario) {
  // Y = S ? ((S|R) ? A : B) : C. Given S=1, infer S|R = 1.
  Fixture f;
  Wire* s = f.w("s");
  Wire* r = f.w("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(s, 0), true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(sr[0]), std::make_optional(true));
}

TEST(Inference, DeepChainPropagation) {
  // or-chain: k1 = a|b, k2 = k1|c, k3 = k2|d. a=1 forces all true.
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  Wire* c = f.w("c");
  Wire* d = f.w("d");
  const SigSpec k1 = f.mod->Or(SigSpec(a), SigSpec(b));
  const SigSpec k2 = f.mod->Or(k1, SigSpec(c));
  const SigSpec k3 = f.mod->Or(k2, SigSpec(d));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(a, 0), true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(k3[0]), std::make_optional(true));
}

TEST(Inference, BackwardThenForward) {
  // y = (a|b) & c with y=1: forces c=1 and a|b=1 (but not a or b).
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  Wire* c = f.w("c");
  const SigSpec ab = f.mod->Or(SigSpec(a), SigSpec(b));
  const SigSpec y = f.mod->And(ab, SigSpec(c));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(y[0], true));
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(SigBit(c, 0)), std::make_optional(true));
  EXPECT_EQ(e.value(ab[0]), std::make_optional(true));
  EXPECT_FALSE(e.value(SigBit(a, 0)).has_value());
}

TEST(Inference, ContradictionOnAssume) {
  Fixture f;
  Wire* a = f.w("a");
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(a, 0), true));
  EXPECT_FALSE(e.assume(SigBit(a, 0), false));
}

TEST(Inference, ContradictionThroughGate) {
  // a=1 forces y=a|b=1; assuming y=0 must contradict during propagate.
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Or(SigSpec(a), SigSpec(b));
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(a, 0), true));
  ASSERT_TRUE(e.assume(y[0], false));
  EXPECT_FALSE(e.propagate());
}

TEST(Inference, ConstantBitsAreKnownImplicitly) {
  // y = a | 1 is constant true regardless of assumptions.
  Fixture f;
  Wire* a = f.w("a");
  const SigSpec y = f.mod->Or(SigSpec(a), SigSpec(rtlil::State::S1));
  auto e = f.engine();
  ASSERT_TRUE(e.propagate());
  EXPECT_EQ(e.value(y[0]), std::make_optional(true));
}

TEST(Inference, ValueOfUnseenBitIsUnknown) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* other = f.mod->add_wire("other", 1);
  const SigSpec y = f.mod->Not(SigSpec(a));
  (void)y;
  auto e = f.engine();
  ASSERT_TRUE(e.propagate());
  EXPECT_FALSE(e.value(SigBit(other, 0)).has_value());
}

TEST(Inference, NumKnownGrowsWithPropagation) {
  Fixture f;
  Wire* a = f.w("a");
  Wire* b = f.w("b");
  const SigSpec y = f.mod->Or(SigSpec(a), SigSpec(b));
  (void)y;
  auto e = f.engine();
  ASSERT_TRUE(e.assume(SigBit(a, 0), true));
  const size_t before = e.num_known();
  ASSERT_TRUE(e.propagate());
  EXPECT_GT(e.num_known(), before);
}
