// opt_clean (dead-cell elimination) and opt_merge (structural sharing).
#include "opt/opt_clean.hpp"
#include "opt/opt_merge.hpp"
#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using rtlil::CellType;
using rtlil::Const;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  Fixture() { mod = design.add_module("top"); }
  Wire* in(const char* name, int w) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }
};

} // namespace

TEST(OptClean, RemovesUnreadCell) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->And(SigSpec(a), SigSpec(b)));
  (void)f.mod->Or(SigSpec(a), SigSpec(b)); // dead
  EXPECT_EQ(f.mod->cell_count(), 2u);
  EXPECT_EQ(opt::opt_clean(*f.mod), 1u);
  EXPECT_EQ(f.mod->cell_count(), 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::And), 1u);
}

TEST(OptClean, RemovesDeadChainTransitively) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), SigSpec(a));
  // Three-cell dead chain.
  const SigSpec t1 = f.mod->Not(SigSpec(a));
  const SigSpec t2 = f.mod->Not(t1);
  (void)f.mod->Not(t2);
  EXPECT_EQ(opt::opt_clean(*f.mod), 3u);
  EXPECT_EQ(f.mod->cell_count(), 0u);
}

TEST(OptClean, KeepsCellsFeedingOutputs) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  const SigSpec t1 = f.mod->Not(SigSpec(a));
  f.mod->connect(SigSpec(y), f.mod->Not(t1));
  EXPECT_EQ(opt::opt_clean(*f.mod), 0u);
  EXPECT_EQ(f.mod->cell_count(), 2u);
}

TEST(OptClean, KeepsDffsAndTheirCones) {
  // A dff whose Q never reaches an output is still kept if its Q is read —
  // and the D-cone of a live dff must be kept alive.
  Fixture f;
  Wire* clk = f.in("clk", 1);
  Wire* a = f.in("a", 4);
  Wire* q = f.mod->add_wire("q", 4);
  Wire* y = f.out("y", 4);
  const SigSpec d = f.mod->Not(SigSpec(a)); // D-cone cell
  f.mod->add_dff(d, SigSpec(q), SigSpec(clk));
  f.mod->connect(SigSpec(y), SigSpec(q));
  EXPECT_EQ(opt::opt_clean(*f.mod), 0u);
  EXPECT_EQ(f.mod->count_cells(CellType::Dff), 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::Not), 1u);
}

TEST(OptClean, RemovesDeadDff) {
  Fixture f;
  Wire* clk = f.in("clk", 1);
  Wire* a = f.in("a", 4);
  Wire* q = f.mod->add_wire("q", 4);
  Wire* y = f.out("y", 4);
  f.mod->add_dff(SigSpec(a), SigSpec(q), SigSpec(clk)); // q unread
  f.mod->connect(SigSpec(y), SigSpec(a));
  EXPECT_EQ(opt::opt_clean(*f.mod), 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::Dff), 0u);
}

TEST(OptClean, AliasThroughConnectionKeepsDriver) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* t = f.mod->add_wire("t", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(t), f.mod->Not(SigSpec(a)));
  f.mod->connect(SigSpec(y), SigSpec(t)); // y <- t <- $not
  EXPECT_EQ(opt::opt_clean(*f.mod), 0u);
  EXPECT_EQ(f.mod->cell_count(), 1u);
}

TEST(OptClean, EmptyModuleIsFine) {
  Fixture f;
  EXPECT_EQ(opt::opt_clean(*f.mod), 0u);
}

// --- opt_merge --------------------------------------------------------------

TEST(OptMerge, MergesIdenticalCells) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 4);
  f.mod->connect(SigSpec(y0), f.mod->And(SigSpec(a), SigSpec(b)));
  f.mod->connect(SigSpec(y1), f.mod->And(SigSpec(a), SigSpec(b)));
  EXPECT_EQ(opt::opt_merge(*f.mod), 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::And), 1u);
  // Both outputs must now alias the same net.
  const rtlil::SigMap sm(*f.mod);
  EXPECT_EQ(sm(SigSpec(y0)), sm(SigSpec(y1)));
}

TEST(OptMerge, NormalizesCommutativeOperandOrder) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 4);
  f.mod->connect(SigSpec(y0), f.mod->And(SigSpec(a), SigSpec(b)));
  f.mod->connect(SigSpec(y1), f.mod->And(SigSpec(b), SigSpec(a))); // swapped
  EXPECT_EQ(opt::opt_merge(*f.mod), 1u);
}

TEST(OptMerge, DoesNotMergeNonCommutativeSwapped) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 4);
  f.mod->connect(SigSpec(y0), f.mod->Sub(SigSpec(a), SigSpec(b), 4));
  f.mod->connect(SigSpec(y1), f.mod->Sub(SigSpec(b), SigSpec(a), 4));
  EXPECT_EQ(opt::opt_merge(*f.mod), 0u);
  EXPECT_EQ(f.mod->count_cells(CellType::Sub), 2u);
}

TEST(OptMerge, DoesNotMergeDifferentTypes) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 4);
  f.mod->connect(SigSpec(y0), f.mod->And(SigSpec(a), SigSpec(b)));
  f.mod->connect(SigSpec(y1), f.mod->Or(SigSpec(a), SigSpec(b)));
  EXPECT_EQ(opt::opt_merge(*f.mod), 0u);
}

TEST(OptMerge, DoesNotMergeDifferentWidthResults) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 5);
  f.mod->connect(SigSpec(y0), f.mod->Add(SigSpec(a), SigSpec(b), 4));
  f.mod->connect(SigSpec(y1), f.mod->Add(SigSpec(a), SigSpec(b), 5));
  EXPECT_EQ(opt::opt_merge(*f.mod), 0u);
}

TEST(OptMerge, MergesCascadeToFixpoint) {
  // Two identical 2-level trees: merging the leaves makes the roots identical.
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* c = f.in("c", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 4);
  f.mod->connect(SigSpec(y0), f.mod->Or(f.mod->And(SigSpec(a), SigSpec(b)), SigSpec(c)));
  f.mod->connect(SigSpec(y1), f.mod->Or(f.mod->And(SigSpec(a), SigSpec(b)), SigSpec(c)));
  EXPECT_EQ(opt::opt_merge(*f.mod), 2u);
  EXPECT_EQ(f.mod->cell_count(), 2u);
}

TEST(OptMerge, MergesIdenticalDffs) {
  // Two dffs with the same D and CLK always hold the same value: merging is
  // sound (Yosys's opt_merge does the same).
  Fixture f;
  Wire* clk = f.in("clk", 1);
  Wire* a = f.in("a", 4);
  Wire* q0 = f.mod->add_wire("q0", 4);
  Wire* q1 = f.mod->add_wire("q1", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 4);
  f.mod->add_dff(SigSpec(a), SigSpec(q0), SigSpec(clk));
  f.mod->add_dff(SigSpec(a), SigSpec(q1), SigSpec(clk));
  f.mod->connect(SigSpec(y0), SigSpec(q0));
  f.mod->connect(SigSpec(y1), SigSpec(q1));
  EXPECT_EQ(opt::opt_merge(*f.mod), 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::Dff), 1u);
}

TEST(OptMerge, DoesNotMergeDffsWithDifferentClocks) {
  Fixture f;
  Wire* clk0 = f.in("clk0", 1);
  Wire* clk1 = f.in("clk1", 1);
  Wire* a = f.in("a", 4);
  Wire* q0 = f.mod->add_wire("q0", 4);
  Wire* q1 = f.mod->add_wire("q1", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 4);
  f.mod->add_dff(SigSpec(a), SigSpec(q0), SigSpec(clk0));
  f.mod->add_dff(SigSpec(a), SigSpec(q1), SigSpec(clk1));
  f.mod->connect(SigSpec(y0), SigSpec(q0));
  f.mod->connect(SigSpec(y1), SigSpec(q1));
  EXPECT_EQ(opt::opt_merge(*f.mod), 0u);
  EXPECT_EQ(f.mod->count_cells(CellType::Dff), 2u);
}

TEST(OptMergeClean, PipelineShrinksRedundantCircuit) {
  Fixture f;
  Wire* a = f.in("a", 8);
  Wire* b = f.in("b", 8);
  Wire* y = f.out("y", 8);
  // Four copies of the same expression, only one feeds the output.
  const SigSpec e0 = f.mod->Xor(f.mod->And(SigSpec(a), SigSpec(b)), SigSpec(b));
  for (int i = 0; i < 3; ++i)
    (void)f.mod->Xor(f.mod->And(SigSpec(a), SigSpec(b)), SigSpec(b));
  f.mod->connect(SigSpec(y), e0);
  EXPECT_EQ(f.mod->cell_count(), 8u);
  opt::opt_merge(*f.mod);
  opt::opt_clean(*f.mod);
  EXPECT_EQ(f.mod->cell_count(), 2u);
}
