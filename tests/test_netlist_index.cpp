// NetlistIndex: driver/reader maps, fanout, output-port tracking,
// topological order, topo_position, and cycle detection.
#include "rtlil/topo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace smartly;
using rtlil::Cell;
using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::NetlistIndex;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  Fixture() { mod = design.add_module("top"); }
  Wire* in(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }
};

} // namespace

TEST(NetlistIndex, DriverAndReaders) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y = f.out("y", 4);
  const SigSpec ab = f.mod->And(SigSpec(a), SigSpec(b));
  const SigSpec n = f.mod->Not(ab);
  f.mod->connect(SigSpec(y), n);

  NetlistIndex index(*f.mod);
  const SigBit ab0 = index.sigmap()(ab[0]);
  Cell* and_cell = index.driver(ab0);
  ASSERT_NE(and_cell, nullptr);
  EXPECT_EQ(and_cell->type(), CellType::And);
  ASSERT_EQ(index.readers(ab0).size(), 1u);
  EXPECT_EQ(index.readers(ab0)[0]->type(), CellType::Not);
  EXPECT_EQ(index.driver(index.sigmap()(SigBit(a, 0))), nullptr) << "inputs have no driver";
}

TEST(NetlistIndex, FanoutCountsReadersAndOutputPorts) {
  Fixture f;
  Wire* a = f.in("a", 1);
  Wire* y = f.out("y", 1);
  Wire* z = f.out("z", 1);
  const SigSpec n = f.mod->Not(SigSpec(a));
  f.mod->connect(SigSpec(y), n);
  f.mod->connect(SigSpec(z), f.mod->Not(n)); // n read by a cell too

  NetlistIndex index(*f.mod);
  const SigBit n0 = index.sigmap()(n[0]);
  EXPECT_TRUE(index.drives_output_port(n0));
  EXPECT_EQ(index.fanout(n0), 2); // one reader cell + output port
}

TEST(NetlistIndex, TopoOrderRespectsDependencies) {
  Fixture f;
  Wire* a = f.in("a", 2);
  Wire* y = f.out("y", 2);
  const SigSpec t1 = f.mod->Not(SigSpec(a));
  const SigSpec t2 = f.mod->Not(t1);
  const SigSpec t3 = f.mod->Not(t2);
  f.mod->connect(SigSpec(y), t3);

  NetlistIndex index(*f.mod);
  const auto& topo = index.topo_order();
  ASSERT_EQ(topo.size(), 3u);
  for (size_t i = 0; i + 1 < topo.size(); ++i)
    EXPECT_LT(index.topo_position(topo[i]), index.topo_position(topo[i + 1]));
  // Each cell's input driver must come earlier.
  for (Cell* c : topo) {
    for (const SigBit& bit : c->port(rtlil::Port::A)) {
      Cell* d = index.driver(index.sigmap()(bit));
      if (d) {
        EXPECT_LT(index.topo_position(d), index.topo_position(c));
      }
    }
  }
}

TEST(NetlistIndex, TopoPositionOfUnknownCellIsMinusOne) {
  Fixture f;
  Wire* a = f.in("a", 1);
  f.mod->connect(SigSpec(f.out("y", 1)), f.mod->Not(SigSpec(a)));
  Design other;
  Module* m2 = other.add_module("other");
  Wire* b = m2->add_wire("b", 1);
  m2->set_port_input(b);
  const SigSpec foreign = m2->Not(SigSpec(b));
  (void)foreign;

  NetlistIndex index(*f.mod);
  EXPECT_EQ(index.topo_position(m2->cells()[0].get()), -1);
}

TEST(NetlistIndex, DffBreaksCombinationalCycles) {
  // q -> not -> d -> dff -> q is fine because the dff cuts the cycle.
  Fixture f;
  Wire* clk = f.in("clk", 1);
  Wire* q = f.mod->add_wire("q", 1);
  Wire* y = f.out("y", 1);
  const SigSpec d = f.mod->Not(SigSpec(q));
  f.mod->add_dff(d, SigSpec(q), SigSpec(clk));
  f.mod->connect(SigSpec(y), SigSpec(q));
  EXPECT_NO_THROW(NetlistIndex index(*f.mod));
}

TEST(NetlistIndex, CombinationalCycleThrows) {
  Fixture f;
  Wire* a = f.in("a", 1);
  Wire* loop = f.mod->add_wire("loop", 1);
  Wire* y = f.out("y", 1);
  // loop = ~(a & loop): a genuine combinational cycle.
  Cell* andc = f.mod->add_cell(CellType::And);
  andc->set_port(rtlil::Port::A, SigSpec(a));
  andc->set_port(rtlil::Port::B, SigSpec(loop));
  Wire* t = f.mod->add_wire("t", 1);
  andc->set_port(rtlil::Port::Y, SigSpec(t));
  andc->infer_widths();
  Cell* notc = f.mod->add_cell(CellType::Not);
  notc->set_port(rtlil::Port::A, SigSpec(t));
  notc->set_port(rtlil::Port::Y, SigSpec(loop));
  notc->infer_widths();
  f.mod->connect(SigSpec(y), SigSpec(loop));
  EXPECT_THROW(NetlistIndex index(*f.mod), std::logic_error);
}

TEST(NetlistIndex, SigmapCanonicalizesThroughConnections) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* alias = f.mod->add_wire("alias", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(alias), SigSpec(a));
  f.mod->connect(SigSpec(y), f.mod->Not(SigSpec(alias)));

  NetlistIndex index(*f.mod);
  EXPECT_EQ(index.sigmap()(SigBit(alias, 2)), index.sigmap()(SigBit(a, 2)));
  // Readers of the canonical bit must include the Not cell.
  const auto& readers = index.readers(SigBit(alias, 0));
  ASSERT_EQ(readers.size(), 1u);
  EXPECT_EQ(readers[0]->type(), CellType::Not);
}

TEST(NetlistIndex, ConstantTiedBitsCanonicalizeToConstants) {
  Fixture f;
  Wire* t = f.mod->add_wire("t", 2);
  f.mod->connect(SigSpec(t), SigSpec(rtlil::Const(2, 2)));
  NetlistIndex index(*f.mod);
  const SigBit b0 = index.sigmap()(SigBit(t, 0));
  const SigBit b1 = index.sigmap()(SigBit(t, 1));
  EXPECT_TRUE(b0.is_const());
  EXPECT_EQ(b0.data, rtlil::State::S0);
  EXPECT_TRUE(b1.is_const());
  EXPECT_EQ(b1.data, rtlil::State::S1);
}
