// opt_tool exit-code contract (examples/opt_tool.cpp, README "Exit codes"):
//   0  success
//   1  parse/usage/IO error (ParseError diagnostics on stderr, file:line:col)
//   2  CEC miscompare (--check found a real inequivalence)
//   3  budget exhausted or CEC inconclusive
//   4  recovered: at least one stage rolled back (quarantine/skip)
// Severity: 2 > 3 > 4 > 0. The suite drives the real binary; its path comes
// from $OPT_TOOL (set by CMake to the opt_tool target) with a ./opt_tool
// fallback for manual runs from the build directory.
#include "benchgen/random_circuit.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

namespace {

std::string tool_path() {
  const char* env = std::getenv("OPT_TOOL");
  return env != nullptr ? env : "./opt_tool";
}

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Run `opt_tool <args>`, capturing exit code, stdout and stderr.
RunResult run_tool(const std::string& args) {
  const std::string dir = ::testing::TempDir();
  const std::string out = dir + "opt_tool_cli.out";
  const std::string err = dir + "opt_tool_cli.err";
  const std::string cmd = tool_path() + " " + args + " > " + out + " 2> " + err;
  const int status = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  r.out = slurp(out);
  r.err = slurp(err);
  return r;
}

/// Write `text` to a fresh file under the test temp dir.
std::string write_file(const char* name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream f(path);
  f << text;
  return path;
}

class OptToolCli : public ::testing::Test {
protected:
  void SetUp() override {
    if (!std::filesystem::exists(tool_path()))
      GTEST_SKIP() << "opt_tool binary not found at " << tool_path()
                   << " (set $OPT_TOOL)";
  }
};

} // namespace

TEST_F(OptToolCli, CleanRunExitsZero) {
  const std::string v = write_file("cli_ok.v", smartly::benchgen::random_verilog(1, 6));
  const RunResult r = run_tool(v + " --check");
  EXPECT_EQ(r.exit_code, 0) << r.out << r.err;
  EXPECT_NE(r.out.find("equivalence: PASS"), std::string::npos) << r.out;
}

TEST_F(OptToolCli, ParseErrorExitsOneWithDiagnostic) {
  const std::string v = write_file(
      "cli_bad.v", "module top(a, y);\ninput a;\noutput y;\nassign y = a &&& ;\nendmodule\n");
  const RunResult r = run_tool(v);
  EXPECT_EQ(r.exit_code, 1);
  // The stderr diagnostic is the editor-friendly file:line[:col] form.
  EXPECT_NE(r.err.find("cli_bad.v:4"), std::string::npos) << r.err;
}

TEST_F(OptToolCli, UsageErrorExitsOne) {
  const RunResult r = run_tool("--definitely-not-a-flag");
  EXPECT_EQ(r.exit_code, 1);
}

TEST_F(OptToolCli, InjectedMiscompareExitsTwo) {
  const std::string v = write_file("cli_mc.v", smartly::benchgen::random_verilog(2, 6));
  const RunResult r = run_tool(v + " --inject-miscompare --check");
  EXPECT_EQ(r.exit_code, 2) << r.out << r.err;
  EXPECT_NE(r.out.find("equivalence: FAIL"), std::string::npos) << r.out;
}

TEST_F(OptToolCli, ExpiredDeadlineExitsThree) {
  // --deadline-ms 0 guarantees a Deadline trip: the run degrades soundly
  // (output still equivalent) and reports the budget exit code.
  const std::string v = write_file("cli_bud.v", smartly::benchgen::random_verilog(3, 6));
  const RunResult r = run_tool(v + " --deadline-ms 0 --check");
  EXPECT_EQ(r.exit_code, 3) << r.out << r.err;
  EXPECT_NE(r.out.find("equivalence: PASS"), std::string::npos) << r.out;
}

TEST_F(OptToolCli, RecoveryExitsFourAndBundlesReplay) {
  // Drive unit-keyed fraig faults through --recover until a run recovers,
  // then replay every bundle it wrote and demand deterministic reproduction.
  const std::string dir = ::testing::TempDir() + "cli_repro";
  std::filesystem::remove_all(dir);
  bool recovered = false;
  for (uint64_t seed = 1; seed <= 10 && !recovered; ++seed) {
    const std::string v =
        write_file("cli_rec.v", smartly::benchgen::random_verilog(seed, 6));
    const RunResult r = run_tool(v + " --fraig --recover --repro-dir " + dir +
                                 " --fault-seed " + std::to_string(seed) +
                                 " --fault-throw 120 --fault-site fraig" +
                                 " --fault-unit-keyed --check");
    ASSERT_TRUE(r.exit_code == 0 || r.exit_code == 4) << r.out << r.err;
    EXPECT_NE(r.out.find("equivalence: PASS"), std::string::npos) << r.out;
    recovered = r.exit_code == 4;
  }
  ASSERT_TRUE(recovered) << "no seed triggered recovery";

  size_t bundles = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++bundles;
    const RunResult r = run_tool("--replay " + entry.path().string());
    EXPECT_EQ(r.exit_code, 0) << r.out << r.err;
    EXPECT_NE(r.out.find("REPRODUCED"), std::string::npos) << r.out;
  }
  EXPECT_GT(bundles, 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(OptToolCli, ReplayOfMissingBundleExitsOne) {
  const RunResult r = run_tool("--replay " + ::testing::TempDir() + "no-such-bundle");
  EXPECT_EQ(r.exit_code, 1);
}

TEST_F(OptToolCli, ServeOnceDrainsSpoolAndExitsZero) {
  // The service-mode CLI contract: --serve DIR --serve-once creates the
  // spool layout, optimizes every pending job, publishes done/<job>.v plus
  // the .result manifest, and exits 0 on a clean drain.
  const std::string root = ::testing::TempDir() + "opt-tool-serve-" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root + "/jobs");
  {
    std::ofstream f(root + "/jobs/cli-job.v");
    f << "module top(a, b, s, y);\n"
         "  input a, b, s;\n"
         "  output y;\n"
         "  wire n1;\n"
         "  assign n1 = s ? a : b;\n"
         "  assign y = s ? n1 : b;\n"
         "endmodule\n";
  }

  const RunResult r = run_tool("--serve " + root + " --serve-once --serve-poll-ms 1");
  EXPECT_EQ(r.exit_code, 0) << r.out << r.err;
  EXPECT_TRUE(std::filesystem::exists(root + "/done/cli-job.v"));
  const std::string manifest = slurp(root + "/done/cli-job.result");
  EXPECT_NE(manifest.find("job=cli-job"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("status=ok"), std::string::npos) << manifest;
  EXPECT_TRUE(std::filesystem::exists(root + "/service_stats.json"));
  EXPECT_TRUE(std::filesystem::exists(root + "/cache/warm_cache.snap"));
  std::filesystem::remove_all(root);
}

TEST_F(OptToolCli, ServeWithoutDirectoryArgExitsOne) {
  const RunResult r = run_tool("--serve");
  EXPECT_EQ(r.exit_code, 1);
}
