// Word-level evaluator tests: directed semantics + x-propagation rules.
#include "sim/eval.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using rtlil::CellType;
using rtlil::Const;
using rtlil::State;

namespace {
Const C(const char* s) { return Const::from_string(s); }
} // namespace

TEST(EvalUnary, NotIsBitPrecise) {
  EXPECT_EQ(sim::eval_unary(CellType::Not, C("10x"), false, 3).to_string(), "01x");
}

TEST(EvalUnary, NegTwoComplement) {
  EXPECT_EQ(sim::eval_unary(CellType::Neg, Const(3, 4), false, 4).as_uint(), 13u);
  EXPECT_EQ(sim::eval_unary(CellType::Neg, Const(0, 4), false, 4).as_uint(), 0u);
  EXPECT_FALSE(sim::eval_unary(CellType::Neg, C("1x"), false, 2).is_fully_def());
}

TEST(EvalUnary, Reductions) {
  EXPECT_EQ(sim::eval_unary(CellType::ReduceAnd, C("111"), false, 1).as_uint(), 1u);
  EXPECT_EQ(sim::eval_unary(CellType::ReduceAnd, C("1x0"), false, 1).as_uint(), 0u);
  EXPECT_EQ(sim::eval_unary(CellType::ReduceOr, C("0x0"), false, 1).to_string(), "x");
  EXPECT_EQ(sim::eval_unary(CellType::ReduceOr, C("010"), false, 1).as_uint(), 1u);
  EXPECT_EQ(sim::eval_unary(CellType::ReduceXor, C("110"), false, 1).as_uint(), 0u);
  EXPECT_EQ(sim::eval_unary(CellType::ReduceXnor, C("110"), false, 1).as_uint(), 1u);
  EXPECT_EQ(sim::eval_unary(CellType::LogicNot, C("00"), false, 1).as_uint(), 1u);
}

TEST(EvalBinary, BitwiseXSemantics) {
  // 0 & x = 0 ; 1 & x = x ; 1 | x = 1 ; 0 | x = x ; x ^ anything = x
  EXPECT_EQ(sim::eval_binary(CellType::And, C("01x"), C("xxx"), false, false, 3).to_string(),
            "0xx");
  EXPECT_EQ(sim::eval_binary(CellType::Or, C("01x"), C("xxx"), false, false, 3).to_string(),
            "x1x");
  EXPECT_EQ(sim::eval_binary(CellType::Xor, C("01"), C("x1"), false, false, 2).to_string(),
            "x0");
  EXPECT_EQ(sim::eval_binary(CellType::Xor, C("00"), C("x1"), false, false, 2).to_string(),
            "x1");
}

TEST(EvalBinary, AddSubMulWidths) {
  EXPECT_EQ(sim::eval_binary(CellType::Add, Const(200, 8), Const(100, 8), false, false, 8)
                .as_uint(),
            44u); // wraps mod 256
  EXPECT_EQ(sim::eval_binary(CellType::Add, Const(200, 8), Const(100, 8), false, false, 9)
                .as_uint(),
            300u);
  EXPECT_EQ(sim::eval_binary(CellType::Sub, Const(5, 8), Const(7, 8), false, false, 8)
                .as_uint(),
            254u);
  EXPECT_EQ(sim::eval_binary(CellType::Mul, Const(13, 8), Const(11, 8), false, false, 8)
                .as_uint(),
            143u);
  EXPECT_EQ(sim::eval_binary(CellType::Mul, Const(255, 8), Const(255, 8), false, false, 16)
                .as_uint(),
            65025u);
}

TEST(EvalBinary, WideArithmeticBeyond64Bits) {
  // (2^70 - 1) + 1 == 2^70 — exercises the ripple adder's bignum path.
  std::vector<State> ones(70, State::S1);
  const Const a(ones);
  const Const r = sim::eval_binary(CellType::Add, a, Const(1, 71), false, false, 71);
  for (int i = 0; i < 70; ++i)
    EXPECT_EQ(r[i], State::S0);
  EXPECT_EQ(r[70], State::S1);
}

TEST(EvalBinary, ComparisonsSignedUnsigned) {
  EXPECT_EQ(sim::eval_binary(CellType::Lt, Const(3, 4), Const(5, 4), false, false, 1).as_uint(),
            1u);
  // Unsigned: 0b1100 (12) > 0b0101 (5); signed: -4 < 5.
  EXPECT_EQ(sim::eval_binary(CellType::Lt, Const(12, 4), Const(5, 4), false, false, 1)
                .as_uint(),
            0u);
  EXPECT_EQ(sim::eval_binary(CellType::Lt, Const(12, 4), Const(5, 4), true, true, 1).as_uint(),
            1u);
  EXPECT_EQ(sim::eval_binary(CellType::Ge, Const(7, 4), Const(7, 4), false, false, 1).as_uint(),
            1u);
}

TEST(EvalBinary, EqNeBitPrecise) {
  // Definite mismatch beats unknown bits.
  EXPECT_EQ(sim::eval_binary(CellType::Eq, C("1x"), C("0x"), false, false, 1).as_uint(), 0u);
  EXPECT_EQ(sim::eval_binary(CellType::Ne, C("1x"), C("0x"), false, false, 1).as_uint(), 1u);
  // Match with unknowns stays unknown.
  EXPECT_EQ(sim::eval_binary(CellType::Eq, C("1x"), C("1x"), false, false, 1).to_string(), "x");
  EXPECT_EQ(sim::eval_binary(CellType::Eq, C("10"), C("10"), false, false, 1).as_uint(), 1u);
}

TEST(EvalBinary, Shifts) {
  EXPECT_EQ(sim::eval_binary(CellType::Shl, Const(0b0011, 4), Const(2, 3), false, false, 4)
                .as_uint(),
            0b1100u);
  EXPECT_EQ(sim::eval_binary(CellType::Shr, Const(0b1100, 4), Const(2, 3), false, false, 4)
                .as_uint(),
            0b0011u);
  // Arithmetic shift keeps the sign bit when A is signed.
  EXPECT_EQ(sim::eval_binary(CellType::Sshr, Const(0b1000, 4), Const(2, 3), true, false, 4)
                .as_uint(),
            0b1110u);
  // Shift amount >= width flushes to zero.
  EXPECT_EQ(sim::eval_binary(CellType::Shr, Const(0b1111, 4), Const(9, 4), false, false, 4)
                .as_uint(),
            0u);
}

TEST(EvalMux, SelectAndMerge) {
  EXPECT_EQ(sim::eval_mux(C("0101"), C("0011"), State::S0).to_string(), "0101");
  EXPECT_EQ(sim::eval_mux(C("0101"), C("0011"), State::S1).to_string(), "0011");
  // Unknown select: agreeing bits survive, disagreeing become x.
  EXPECT_EQ(sim::eval_mux(C("0101"), C("0011"), State::Sx).to_string(), "0xx1");
}

TEST(EvalPmux, PrioritySemantics) {
  const Const a = C("0000");
  Const b = C("00100001"); // part0 = 0001, part1 = 0010
  EXPECT_EQ(sim::eval_pmux(a, b, C("01"), 4).to_string(), "0001"); // s0 wins
  EXPECT_EQ(sim::eval_pmux(a, b, C("11"), 4).to_string(), "0001"); // s0 still wins
  EXPECT_EQ(sim::eval_pmux(a, b, C("10"), 4).to_string(), "0010");
  EXPECT_EQ(sim::eval_pmux(a, b, C("00"), 4).to_string(), "0000");
  EXPECT_FALSE(sim::eval_pmux(a, b, C("1x"), 4).is_fully_def());
}

TEST(Evaluator, TopologicalModuleEvaluation) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("t");
  rtlil::Wire* a = m->add_wire("a", 4);
  rtlil::Wire* b = m->add_wire("b", 4);
  m->set_port_input(a);
  m->set_port_input(b);
  const rtlil::SigSpec sum = m->Add(rtlil::SigSpec(a), rtlil::SigSpec(b), 4);
  const rtlil::SigSpec y = m->Xor(sum, rtlil::SigSpec(a));
  rtlil::Wire* out = m->add_wire("y", 4);
  m->set_port_output(out);
  m->connect(rtlil::SigSpec(out), y);

  sim::Evaluator ev(*m);
  ev.set_input(a, Const(5, 4));
  ev.set_input(b, Const(6, 4));
  ev.run();
  EXPECT_EQ(ev.value(rtlil::SigSpec(out)).as_uint(), ((5 + 6) ^ 5) & 0xfu);
}

TEST(Evaluator, UnsetInputsReadX) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("t");
  rtlil::Wire* a = m->add_wire("a", 2);
  m->set_port_input(a);
  const rtlil::SigSpec y = m->Add(rtlil::SigSpec(a), rtlil::SigSpec(a), 2);
  sim::Evaluator ev(*m);
  ev.run();
  EXPECT_FALSE(ev.value(y).is_fully_def());
}
