// DIMACS CNF I/O: parsing, serialization round trips, solver integration,
// and error handling.
#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace smartly::sat;

TEST(Dimacs, ParsesSimpleProblem) {
  const DimacsProblem p = parse_dimacs("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(p.num_vars, 3);
  ASSERT_EQ(p.clauses.size(), 2u);
  ASSERT_EQ(p.clauses[0].size(), 2u);
  EXPECT_EQ(var(p.clauses[0][0]), 0);
  EXPECT_FALSE(sign(p.clauses[0][0]));
  EXPECT_EQ(var(p.clauses[0][1]), 1);
  EXPECT_TRUE(sign(p.clauses[0][1]));
}

TEST(Dimacs, CommentsAnywhere) {
  const DimacsProblem p =
      parse_dimacs("c top\np cnf 2 1\nc mid comment 1 2 0\n1 2 0\nc tail\n");
  EXPECT_EQ(p.clauses.size(), 1u);
}

TEST(Dimacs, EmptyClauseAllowed) {
  const DimacsProblem p = parse_dimacs("p cnf 1 2\n0\n1 0\n");
  ASSERT_EQ(p.clauses.size(), 2u);
  EXPECT_TRUE(p.clauses[0].empty());
}

TEST(Dimacs, WriteParseRoundTrip) {
  DimacsProblem p;
  p.num_vars = 4;
  p.clauses = {{mk_lit(0), mk_lit(1, true)},
               {mk_lit(2), mk_lit(3)},
               {mk_lit(0, true), mk_lit(2, true), mk_lit(3, true)}};
  const DimacsProblem q = parse_dimacs(write_dimacs(p));
  EXPECT_EQ(q.num_vars, p.num_vars);
  ASSERT_EQ(q.clauses.size(), p.clauses.size());
  for (size_t i = 0; i < p.clauses.size(); ++i)
    EXPECT_EQ(q.clauses[i], p.clauses[i]) << i;
}

TEST(Dimacs, SolveSatInstance) {
  // (x1 | x2) & (!x1 | x2) -> x2 must be true.
  Solver s;
  ASSERT_TRUE(load_dimacs(s, parse_dimacs("p cnf 2 2\n1 2 0\n-1 2 0\n")));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(1));
}

TEST(Dimacs, SolveUnsatInstance) {
  // x & !x.
  Solver s;
  const bool ok = load_dimacs(s, parse_dimacs("p cnf 1 2\n1 0\n-1 0\n"));
  EXPECT_TRUE(!ok || s.solve() == Result::Unsat);
}

TEST(Dimacs, SolvePigeonhole4) {
  // PHP(4,3) — 4 pigeons, 3 holes, UNSAT. Generated inline.
  DimacsProblem p;
  const int pigeons = 4, holes = 3;
  p.num_vars = pigeons * holes;
  auto v = [&](int pi, int h) { return mk_lit(static_cast<Var>(pi * holes + h)); };
  for (int pi = 0; pi < pigeons; ++pi) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h)
      c.push_back(v(pi, h));
    p.clauses.push_back(c);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        p.clauses.push_back({~v(p1, h), ~v(p2, h)});

  Solver s;
  ASSERT_TRUE(load_dimacs(s, p));
  EXPECT_EQ(s.solve(), Result::Unsat);

  // And the serialized form parses back to the same instance.
  const DimacsProblem q = parse_dimacs(write_dimacs(p));
  Solver s2;
  ASSERT_TRUE(load_dimacs(s2, q));
  EXPECT_EQ(s2.solve(), Result::Unsat);
}

TEST(DimacsErrors, MissingHeaderThrows) {
  EXPECT_THROW(parse_dimacs("1 2 0\n"), std::runtime_error);
}

TEST(DimacsErrors, UnterminatedClauseThrows) {
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(DimacsErrors, ClauseCountMismatchThrows) {
  EXPECT_THROW(parse_dimacs("p cnf 2 2\n1 0\n"), std::runtime_error);
}

TEST(DimacsErrors, LiteralOutOfRangeThrows) {
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n3 0\n"), std::runtime_error);
}

TEST(DimacsErrors, GarbageLiteralThrows) {
  EXPECT_THROW(parse_dimacs("p cnf 2 1\nxyz 0\n"), std::runtime_error);
}
