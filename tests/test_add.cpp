// Algebraic Decision Diagram (§III): reduction, memoized sharing, greedy
// bit-order heuristic, and the paper's Listing 2 example (good assignment =
// 3 MUXes, poor assignment = 7).
#include "core/add.hpp"
#include "util/hashing.hpp"

#include <gtest/gtest.h>

#include <set>

using namespace smartly::core;

namespace {

/// Terminal table for the paper's Listing 2 casez:
///   3'b1zz: p0   3'b01z: p1   3'b001: p2   default: p3
/// Selector bit order: index 0 = S0 (LSB) ... index 2 = S2 (MSB).
std::vector<int> listing2_table() {
  std::vector<int> t(8);
  for (int v = 0; v < 8; ++v) {
    if (v & 4)
      t[size_t(v)] = 0; // S2 set -> p0
    else if (v & 2)
      t[size_t(v)] = 1; // S1 -> p1
    else if (v & 1)
      t[size_t(v)] = 2; // S0 -> p2
    else
      t[size_t(v)] = 3; // p3
  }
  return t;
}

/// Check an ADD evaluates identically to the table for every selector value.
void check_add_function(const AddResult& add, const std::vector<int>& table, int bits) {
  for (uint64_t v = 0; v < table.size(); ++v)
    EXPECT_EQ(add_eval(add, v), table[size_t(v)]) << "sel=" << v << " bits=" << bits;
}

} // namespace

TEST(Add, ConstantFunctionHasNoNodes) {
  const std::vector<int> table(8, 5);
  const AddResult add = build_add(table, 3);
  EXPECT_EQ(add.internal_nodes(), 0u);
  EXPECT_TRUE(add_is_terminal(add.root));
  EXPECT_EQ(add_terminal_id(add.root), 5);
  EXPECT_EQ(add.height(), 0);
}

TEST(Add, SingleBitSelect) {
  const std::vector<int> table{7, 9};
  const AddResult add = build_add(table, 1);
  EXPECT_EQ(add.internal_nodes(), 1u);
  EXPECT_EQ(add.height(), 1);
  check_add_function(add, table, 1);
}

TEST(Add, IgnoresDontCareBit) {
  // f(s1,s0) = s1 ? A : B regardless of s0: one node testing bit 1.
  const std::vector<int> table{0, 0, 1, 1}; // index = s1*2 + s0
  const AddResult add = build_add(table, 2);
  EXPECT_EQ(add.internal_nodes(), 1u);
  ASSERT_FALSE(add_is_terminal(add.root));
  EXPECT_EQ(add.nodes[size_t(add.root)].var, 1);
  check_add_function(add, table, 2);
}

TEST(Add, SharesEqualSubfunctions) {
  // f = s0 XOR s1 (terminals 0/1): classic BDD with shared children —
  // 3 internal nodes, not 4.
  const std::vector<int> table{0, 1, 1, 0};
  const AddResult add = build_add(table, 2);
  EXPECT_EQ(add.internal_nodes(), 3u);
  check_add_function(add, table, 2);
}

TEST(Add, Listing2GoodOrderGivesThreeMuxes) {
  const auto table = listing2_table();
  const AddResult add = build_add(table, 3);
  // Paper: "a good assignment (e.g., assigning S2 to S0) results in 3 MUXs".
  EXPECT_EQ(add.internal_nodes(), 3u);
  check_add_function(add, table, 3);
  // Greedy must pick S2 first: root tests bit 2.
  ASSERT_FALSE(add_is_terminal(add.root));
  EXPECT_EQ(add.nodes[size_t(add.root)].var, 2);
}

TEST(Add, Listing2FixedOrderIsWorse) {
  const auto table = listing2_table();
  const AddResult fixed = build_add_fixed_order(table, 3);
  // Paper: "a poor assignment (S0 to S2) results in 7 MUXs". The paper counts
  // an unshared decision *tree*; our ADD is reduced, which shares one node of
  // the poor order (f with s0=0,s1=1 equals f with s0=1,s1=1), giving 6.
  EXPECT_EQ(fixed.internal_nodes(), 6u);
  check_add_function(fixed, table, 3);
  const AddResult greedy = build_add(table, 3);
  EXPECT_LT(greedy.internal_nodes(), fixed.internal_nodes());
}

TEST(Add, FullCaseFourWay) {
  // Listing 1: 2-bit selector, four distinct outputs -> full tree, 3 nodes.
  const std::vector<int> table{0, 1, 2, 3};
  const AddResult add = build_add(table, 2);
  EXPECT_EQ(add.internal_nodes(), 3u);
  EXPECT_EQ(add.height(), 2);
  check_add_function(add, table, 2);
}

TEST(Add, HeightNeverExceedsBitCount) {
  for (int bits = 1; bits <= 6; ++bits) {
    std::vector<int> table(size_t(1) << bits);
    for (size_t i = 0; i < table.size(); ++i)
      table[i] = int(i % 5);
    const AddResult add = build_add(table, bits);
    EXPECT_LE(add.height(), bits) << bits;
    check_add_function(add, table, bits);
  }
}

TEST(Add, EachVariableTestedAtMostOncePerPath) {
  // Walk all paths; a variable must not repeat (ordered, reduced diagram).
  std::vector<int> table{3, 1, 4, 1, 5, 9, 2, 6};
  const AddResult add = build_add(table, 3);
  check_add_function(add, table, 3);
  // DFS over paths collecting vars.
  struct Frame {
    int ref;
    std::set<int> seen;
  };
  std::vector<Frame> stack{{add.root, {}}};
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (add_is_terminal(f.ref))
      continue;
    const AddNode& n = add.nodes[size_t(f.ref)];
    EXPECT_EQ(f.seen.count(n.var), 0u) << "variable " << n.var << " repeated on a path";
    Frame lo = f, hi = f;
    lo.seen.insert(n.var);
    hi.seen.insert(n.var);
    lo.ref = n.lo;
    hi.ref = n.hi;
    stack.push_back(std::move(lo));
    stack.push_back(std::move(hi));
  }
}

class AddRandomTables : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AddRandomTables, GreedyAndFixedBothExactAndGreedyNoWorse) {
  const uint64_t seed = GetParam();
  smartly::Rng rng(seed);
  const int bits = int(rng.range(1, 6));
  const int n_terminals = int(rng.range(1, 6));
  std::vector<int> table(size_t(1) << bits);
  for (auto& t : table)
    t = int(rng.range(0, n_terminals - 1));

  const AddResult greedy = build_add(table, bits);
  const AddResult fixed = build_add_fixed_order(table, bits);
  check_add_function(greedy, table, bits);
  check_add_function(fixed, table, bits);
  EXPECT_LE(greedy.height(), bits);
  // The greedy heuristic is not guaranteed optimal, but for these table
  // sizes it must never be catastrophically worse than the fixed order.
  EXPECT_LE(greedy.internal_nodes(), fixed.internal_nodes() * 2 + 1) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddRandomTables, ::testing::Range<uint64_t>(1, 60));

TEST(Add, TerminalIdsArePreservedVerbatim) {
  // Arbitrary non-contiguous ids must round-trip through eval.
  const std::vector<int> table{100, 3, 100, 42};
  const AddResult add = build_add(table, 2);
  check_add_function(add, table, 2);
}
