// Incremental oracle (incremental_oracle.*): the correctness bar is that it
// returns bit-identical CtrlDecisions to the from-scratch InferenceOracle on
// every query — including after the walker mutates cells mid-run, which is
// where stale cone/decision-cache entries would show. Plus unit coverage for
// the supporting pieces: InferenceEngine::reset, exhaustive_forced_ex's
// early-exit accounting and pattern recycling, and clause-group retirement.
#include "core/incremental_oracle.hpp"

#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "core/inference.hpp"
#include "core/mux_restructure.hpp"
#include "core/sat_redundancy.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/pipeline.hpp"
#include "sim/packed_sim.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using core::IncrementalOracle;
using core::IncrementalOracleOptions;
using core::InferenceOracle;
using opt::CtrlDecision;
using opt::KnownMap;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

/// Records (control-bit name, decision) so traces from two clones of the
/// same design are comparable; forwards mutation notifications.
class TraceOracle final : public opt::MuxtreeOracle {
public:
  explicit TraceOracle(opt::MuxtreeOracle& inner) : inner_(inner) {}

  void begin_module(Module& module) override { inner_.begin_module(module); }

  CtrlDecision decide(SigBit ctrl, const KnownMap& known) override {
    const CtrlDecision d = inner_.decide(ctrl, known);
    std::string entry = ctrl.is_wire()
                            ? ctrl.wire->name() + "[" + std::to_string(ctrl.offset) + "]"
                            : std::string("const");
    entry += "=";
    entry += std::to_string(static_cast<int>(d));
    trace.push_back(std::move(entry));
    return d;
  }

  void notify_cell_mutated(rtlil::Cell* cell) override { inner_.notify_cell_mutated(cell); }
  void notify_cell_removed(rtlil::Cell* cell) override { inner_.notify_cell_removed(cell); }

  std::vector<std::string> trace;

private:
  opt::MuxtreeOracle& inner_;
};

/// Run both oracles through full optimize_muxtrees runs on clones of the
/// same prepared design and require identical decision traces.
void expect_identical_decisions(const std::string& verilog,
                                const core::SatRedundancyOptions& base_opts = {}) {
  auto design = verilog::read_verilog(verilog);
  Module& top = *design->top();
  opt::coarse_opt(top);
  core::mux_restructure(top, {});
  opt::opt_expr(top);
  opt::opt_clean(top);

  const auto baseline_design = rtlil::clone_design(*design);
  InferenceOracle baseline_oracle(base_opts);
  TraceOracle baseline(baseline_oracle);
  opt::optimize_muxtrees(*baseline_design->top(), baseline);

  const auto incr_design = rtlil::clone_design(*design);
  IncrementalOracleOptions incr_opts;
  incr_opts.base = base_opts;
  IncrementalOracle incr_oracle(incr_opts);
  TraceOracle incremental(incr_oracle);
  opt::optimize_muxtrees(*incr_design->top(), incremental);

  ASSERT_EQ(baseline.trace.size(), incremental.trace.size());
  for (size_t i = 0; i < baseline.trace.size(); ++i)
    ASSERT_EQ(baseline.trace[i], incremental.trace[i]) << "first divergence at query " << i;
}

struct Fixture {
  Design design;
  Module* mod;
  Fixture() { mod = design.add_module("top"); }
  Wire* in(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }
};

} // namespace

// --- differential: full runs, including walker mutations --------------------

TEST(IncrementalOracleDiff, Fig3DependentControl) {
  expect_identical_decisions(R"(
    module top(s, r, a, b, c, y);
      input s, r; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )");
}

TEST(IncrementalOracleDiff, DeepNestWithDeadPaths) {
  expect_identical_decisions(R"(
    module top(s, t, u, a, b, c, d, y);
      input s, t, u; input [3:0] a, b, c, d; output [3:0] y;
      wire [3:0] inner;
      assign inner = (s & t) ? a : ((s | u) ? b : c);
      assign y = s ? inner : ((~s & t) ? d : inner ^ a);
    endmodule
  )");
}

TEST(IncrementalOracleDiff, PublicSuiteCircuit) {
  // One full public benchmark circuit: thousands of queries, multiple
  // sweeps, pmux narrowing, mux collapses — the cache-invalidation gauntlet.
  for (const auto& circuit : benchgen::public_suite()) {
    if (circuit.name == "usb_funct" || circuit.name == "ac97_ctrl")
      expect_identical_decisions(circuit.verilog);
  }
}

TEST(IncrementalOracleDiff, RandomCircuits) {
  for (uint64_t seed = 1; seed <= 6; ++seed)
    expect_identical_decisions(benchgen::random_verilog(seed * 0x9e37, 8));
}

TEST(IncrementalOracleDiff, SatHeavyConfiguration) {
  // sim_max_inputs = 0 forces every cone-stage query through the persistent
  // solver and its clause groups (and exercises pattern recycling).
  core::SatRedundancyOptions opts;
  opts.sim_max_inputs = 0;
  for (const auto& circuit : benchgen::public_suite()) {
    if (circuit.name == "wb_conmax")
      expect_identical_decisions(circuit.verilog, opts);
  }
  // Unlimited conflict budget (-1) must stay the bare sentinel when the
  // persistent solver re-arms per query — adding it to the running conflict
  // count would turn "unlimited" into "already exhausted".
  opts.sat_conflict_budget = -1;
  expect_identical_decisions(R"(
    module top(s, r, a, b, c, y);
      input s, r; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )",
                             opts);
}

TEST(IncrementalOracleInvalidation, PublicResetAfterExternalMutation) {
  // begin_module cannot distinguish an externally-mutated module from an
  // unchanged one (same pointer, no notifications); reset() is the contract
  // for passes like opt_expr/opt_clean that rewrite between walks.
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);

  IncrementalOracle oracle;
  oracle.begin_module(*f.mod);
  const KnownMap known{{SigBit(s, 0), true}};
  EXPECT_EQ(oracle.decide(sr[0], known), CtrlDecision::One);

  // External pass rewires the or-cell without notifying the oracle.
  rtlil::Cell* or_cell = f.mod->cells().front().get();
  SigSpec a = or_cell->port(rtlil::Port::A);
  a[0] = SigBit(rtlil::State::S0);
  or_cell->set_port(rtlil::Port::A, a);

  oracle.reset();
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(sr[0], known), CtrlDecision::Unknown);
}

TEST(IncrementalOracleDiff, InferenceDisabled) {
  core::SatRedundancyOptions opts;
  opts.use_inference = false;
  expect_identical_decisions(R"(
    module top(s, r, a, b, c, y);
      input s, r; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )",
                             opts);
}

// --- explicit invalidation: mutate between queries ---------------------------

TEST(IncrementalOracleInvalidation, MutatedCellIsNotServedStale) {
  // ctrl = s | r. With s known true the oracle decides One. Then the "walker"
  // rewires the or-cell to read a constant 0 instead of s and notifies; the
  // same query must now be re-derived on the new structure (r unknown -> the
  // bit is no longer forced), not served from a stale cache entry.
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);

  rtlil::Cell* or_cell = f.mod->cells().front().get();

  IncrementalOracle oracle;
  oracle.begin_module(*f.mod);
  const KnownMap known{{SigBit(s, 0), true}};
  EXPECT_EQ(oracle.decide(sr[0], known), CtrlDecision::One);
  // Same query again: decision cache must hit and agree.
  EXPECT_EQ(oracle.decide(sr[0], known), CtrlDecision::One);
  EXPECT_GE(oracle.stats().decision_cache_hits, 1u);

  SigSpec a = or_cell->port(rtlil::Port::A);
  a[0] = SigBit(rtlil::State::S0);
  or_cell->set_port(rtlil::Port::A, a);
  oracle.notify_cell_mutated(or_cell);

  EXPECT_EQ(oracle.decide(sr[0], known), CtrlDecision::Unknown);
  EXPECT_GE(oracle.stats().cells_remapped, 1u);
}

TEST(IncrementalOracleInvalidation, DifferentialAgreesQueryByQuery) {
  // Replay the same query stream against both oracles on one shared module,
  // with a mutation in the middle, asserting agreement at every step.
  Fixture f;
  Wire* s = f.in("s");
  Wire* t = f.in("t");
  Wire* u = f.in("u");
  const SigSpec st = f.mod->And(SigSpec(s), SigSpec(t));
  const SigSpec su = f.mod->Or(st, SigSpec(u));
  f.mod->connect(SigSpec(f.out("y")), su);

  InferenceOracle baseline({});
  IncrementalOracle incremental;
  baseline.begin_module(*f.mod);
  incremental.begin_module(*f.mod);

  const std::vector<KnownMap> stream = {
      {{SigBit(s, 0), false}},
      {{SigBit(s, 0), true}},
      {{SigBit(s, 0), true}, {SigBit(t, 0), true}},
      {{SigBit(u, 0), true}},
      {{SigBit(s, 0), false}}, // repeat: decision-cache path
  };
  for (const auto& known : stream)
    for (const SigBit target : {st[0], su[0]})
      ASSERT_EQ(baseline.decide(target, known), incremental.decide(target, known));

  // Mutate the and-cell (s & t -> s & 1) as the walker would, notify both
  // sides' contract (baseline ignores it), and require continued agreement.
  rtlil::Cell* and_cell = nullptr;
  for (const auto& c : f.mod->cells())
    if (c->type() == rtlil::CellType::And)
      and_cell = c.get();
  ASSERT_NE(and_cell, nullptr);
  SigSpec b = and_cell->port(rtlil::Port::B);
  b[0] = SigBit(rtlil::State::S1);
  and_cell->set_port(rtlil::Port::B, b);
  incremental.notify_cell_mutated(and_cell);

  // The module changed: rebuild the baseline's view (it snapshots per
  // begin_module) and re-run the stream.
  baseline.begin_module(*f.mod);
  incremental.begin_module(*f.mod);
  for (const auto& known : stream)
    for (const SigBit target : {st[0], su[0]})
      ASSERT_EQ(baseline.decide(target, known), incremental.decide(target, known));
}

// --- cache effectiveness ----------------------------------------------------

TEST(IncrementalOracleCaches, RepeatQueriesHitDecisionCache) {
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);

  IncrementalOracle oracle;
  oracle.begin_module(*f.mod);
  const KnownMap known{{SigBit(s, 0), false}};
  const CtrlDecision first = oracle.decide(sr[0], known);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(oracle.decide(sr[0], known), first);
  EXPECT_EQ(oracle.stats().decision_cache_hits, 5u);
}

TEST(IncrementalOracleCaches, SameStructureHitsConeCache) {
  // Two queries over the same sub-graph with different known *values* share
  // the AIG encoding: the cone is keyed on structure + root bits, values
  // arrive as constraints.
  Fixture f;
  Wire* s = f.in("s");
  Wire* a = f.in("a");
  const SigSpec sa = f.mod->And(SigSpec(s), SigSpec(a));
  const SigSpec sna = f.mod->And(SigSpec(s), f.mod->Not(SigSpec(a)));
  const SigSpec ctrl = f.mod->Or(sa, sna);
  f.mod->connect(SigSpec(f.out("y")), ctrl);

  IncrementalOracleOptions opts;
  opts.base.use_inference = false; // force the cone stage
  IncrementalOracle oracle(opts);
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(ctrl[0], {{SigBit(s, 0), true}}), CtrlDecision::One);
  EXPECT_EQ(oracle.decide(ctrl[0], {{SigBit(s, 0), false}}), CtrlDecision::Zero);
  EXPECT_EQ(oracle.stats().cone_cache_hits, 1u);
  EXPECT_EQ(oracle.stats().cone_cache_misses, 1u);
}

TEST(IncrementalOracleCaches, SatModelsAreRecycledAcrossQueries) {
  // sim_max_inputs = 0: the cone stage goes straight to SAT. The first query
  // (target eq, known s=1) is undecided, so both SAT calls return models —
  // each satisfying s=1. The second query (target ctrl = s|eq, same known)
  // replays those models: both are consistent and witness ctrl=1, which
  // makes the SAT(ctrl=1) call redundant — one solve instead of two.
  Fixture f;
  Wire* s = f.in("s");
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  const SigSpec eq = f.mod->Eq(SigSpec(a), SigSpec(b));
  const SigSpec ctrl = f.mod->Or(SigSpec(s), eq);
  f.mod->connect(SigSpec(f.out("y")), ctrl);

  IncrementalOracleOptions opts;
  opts.base.use_inference = false;
  opts.base.sim_max_inputs = 0;
  IncrementalOracle oracle(opts);
  oracle.begin_module(*f.mod);

  const KnownMap known{{SigBit(s, 0), true}};
  EXPECT_EQ(oracle.decide(eq[0], known), CtrlDecision::Unknown);
  const size_t sat_calls_first = oracle.stats().sat_calls;
  EXPECT_EQ(sat_calls_first, 2u);

  EXPECT_EQ(oracle.decide(ctrl[0], known), CtrlDecision::One);
  EXPECT_GE(oracle.stats().patterns_recycled, 2u);
  EXPECT_EQ(oracle.stats().sat_calls_skipped, 1u);
  EXPECT_EQ(oracle.stats().sat_calls, sat_calls_first + 1);
}

// --- InferenceEngine::reset --------------------------------------------------

TEST(InferenceEngineReset, ReusedEngineMatchesFreshEngine) {
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  const SigSpec srr = f.mod->And(sr, SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), srr);

  rtlil::NetlistIndex index(*f.mod);
  std::vector<rtlil::Cell*> all_cells;
  for (const auto& c : f.mod->cells())
    all_cells.push_back(c.get());

  core::InferenceEngine reused;
  for (int round = 0; round < 3; ++round) {
    reused.reset(all_cells, index.sigmap());
    core::InferenceEngine fresh(all_cells, index.sigmap());
    const bool value = round % 2 == 0;
    EXPECT_EQ(reused.assume(index.sigmap()(SigBit(s, 0)), value),
              fresh.assume(index.sigmap()(SigBit(s, 0)), value));
    EXPECT_EQ(reused.propagate(), fresh.propagate());
    EXPECT_EQ(reused.value(index.sigmap()(sr[0])), fresh.value(index.sigmap()(sr[0])));
    EXPECT_EQ(reused.value(index.sigmap()(srr[0])), fresh.value(index.sigmap()(srr[0])));
  }
}

// --- exhaustive_forced_ex ----------------------------------------------------

namespace {

/// y = s ? a : b over fresh AIG inputs; returns (aig, s, a, b, y).
struct MuxAig {
  aig::Aig g;
  aig::Lit s, a, b, y;
  MuxAig() {
    s = g.add_input("s");
    a = g.add_input("a");
    b = g.add_input("b");
    y = g.mux_(s, a, b);
    g.add_output(y, "y");
  }
};

} // namespace

TEST(ExhaustiveForcedEx, MatchesLegacyWrapperOnAllVerdicts) {
  MuxAig m;
  // Forced one: s=1, a=1.
  EXPECT_EQ(sim::exhaustive_forced(m.g, {{m.s, true}, {m.a, true}}, m.y),
            sim::Forced::One);
  // Contradiction: y constrained both ways via internal literal.
  EXPECT_EQ(sim::exhaustive_forced(m.g, {{m.y, true}, {m.y, false}}, m.y),
            sim::Forced::Contradiction);
  // Unconstrained: None.
  EXPECT_EQ(sim::exhaustive_forced(m.g, {}, m.y), sim::Forced::None);
}

TEST(ExhaustiveForcedEx, EarlyExitSurfacedForNonForcedTargets) {
  // 7 free inputs -> 2 words of 64 patterns; an OR tree is 0 only on the
  // all-zero pattern (word 0), so both polarities appear in the first word
  // and the sweep must stop before word 2.
  aig::Aig g;
  aig::Lit acc = aig::kFalse;
  for (int i = 0; i < 7; ++i)
    acc = g.or_(acc, g.add_input());
  g.add_output(acc, "y");

  sim::SimOptions opts;
  const sim::SimResult r = sim::exhaustive_forced_ex(g, {}, acc, opts);
  EXPECT_EQ(r.forced, sim::Forced::None);
  EXPECT_TRUE(r.early_exit);
  EXPECT_FALSE(r.exhausted);
}

TEST(ExhaustiveForcedEx, RecycledPatternsDecideWithoutEnumeration) {
  MuxAig m;
  // Candidates covering both polarities of y (= s ? a : b).
  const std::vector<std::vector<uint8_t>> recycled = {
      {1, 1, 0}, // s=1,a=1 -> y=1
      {1, 0, 1}, // s=1,a=0 -> y=0
  };
  sim::SimOptions opts;
  opts.recycled = &recycled;
  opts.enumerate = false; // SAT-sized cone: replay only
  opts.capture_witnesses = true;
  const sim::SimResult r = sim::exhaustive_forced_ex(m.g, {{m.s, true}}, m.y, opts);
  EXPECT_EQ(r.forced, sim::Forced::None);
  EXPECT_TRUE(r.recycled_decisive);
  EXPECT_EQ(r.patterns_recycled, 2u);
  EXPECT_TRUE(r.has_witness0);
  EXPECT_TRUE(r.has_witness1);
}

TEST(ExhaustiveForcedEx, InconsistentRecycledPatternsAreIgnored) {
  MuxAig m;
  // Both candidates violate the s=1 constraint: nothing recycled, and the
  // exhaustive verdict (forced One under s=1,a=1) is untouched.
  const std::vector<std::vector<uint8_t>> recycled = {{0, 1, 0}, {0, 0, 1}};
  sim::SimOptions opts;
  opts.recycled = &recycled;
  const sim::SimResult r =
      sim::exhaustive_forced_ex(m.g, {{m.s, true}, {m.a, true}}, m.y, opts);
  EXPECT_EQ(r.forced, sim::Forced::One);
  EXPECT_EQ(r.patterns_recycled, 0u);
  EXPECT_TRUE(r.exhausted);
}

// --- clause-group retirement -------------------------------------------------

TEST(IncrementalOracleSolver, InvalidatedConeRetiresClauseGroup) {
  Fixture f;
  Wire* s = f.in("s");
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  const SigSpec eq = f.mod->Eq(SigSpec(a), SigSpec(b));
  const SigSpec ctrl = f.mod->Or(SigSpec(s), eq);
  f.mod->connect(SigSpec(f.out("y")), ctrl);

  IncrementalOracleOptions opts;
  opts.base.use_inference = false;
  opts.base.sim_max_inputs = 0; // force the persistent-solver path
  IncrementalOracle oracle(opts);
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(ctrl[0], {{SigBit(s, 0), true}}), CtrlDecision::One);
  EXPECT_GT(oracle.stats().sat_calls, 0u);

  // Mutate the or-cell: its clause group must be retired, and the re-derived
  // decision must reflect the new structure (ctrl == eq now).
  rtlil::Cell* or_cell = nullptr;
  for (const auto& c : f.mod->cells())
    if (c->type() == rtlil::CellType::Or)
      or_cell = c.get();
  ASSERT_NE(or_cell, nullptr);
  SigSpec sa = or_cell->port(rtlil::Port::A);
  sa[0] = SigBit(rtlil::State::S0);
  or_cell->set_port(rtlil::Port::A, sa);
  oracle.notify_cell_mutated(or_cell);

  EXPECT_GE(oracle.stats().dropped_constraints, 1u);
  EXPECT_EQ(oracle.decide(ctrl[0], {{SigBit(s, 0), true}}), CtrlDecision::Unknown);
}
