// Robustness suite (ctest label: robustness).
//
// Exercises the resource-governance + fault-injection subsystem across all
// four engines (fraig, cut-rewrite, parallel sweep, SAT oracle):
//
//   * seeded FaultPlan schedules (forced Unknowns, budget exhaustion at the
//     N-th solve, injected exceptions): under ANY schedule every engine must
//     terminate, the incrementally maintained NetlistIndex must equal a
//     from-scratch rebuild (check_index), and the output must stay
//     CEC-equivalent to the input;
//   * mid-round injected exceptions (throw_after): the engines' exception
//     containment must leave index and netlist consistent;
//   * deterministic budgets (solver conflicts): the halt must land at the
//     same barrier on every thread count, preserving byte-identical netlists
//     and statistics for 1/2/4/8 workers;
//   * CancelToken / deadline / pre-halted guards: sound degradation, with
//     the ResourceReport recording what happened.
//
// Wall-clock deadlines are the one documented nondeterministic halt source;
// the deadline test therefore asserts only soundness, never schedules.
#include "backend/write_rtlil.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/sat_redundancy.hpp"
#include "core/smartly_pass.hpp"
#include "opt/opt_clean.hpp"
#include "opt/pipeline.hpp"
#include "rewrite/rewrite_engine.hpp"
#include "rtlil/module.hpp"
#include "sweep/fraig_engine.hpp"
#include "util/budget.hpp"
#include "util/fault.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

using namespace smartly;
using rtlil::Module;

namespace {

/// Set by main() from --seed-offset; 0 means "not given on the command line".
uint64_t g_cli_seed_offset = 0;

/// CI reruns the suite over fresh schedules by passing `--seed-offset N` (or
/// exporting SMARTLY_FAULT_SEED_OFFSET; the flag wins) — it shifts every
/// FaultPlan seed (and the circuits derived from it) without recompiling.
uint64_t seed_offset() {
  if (g_cli_seed_offset != 0)
    return g_cli_seed_offset;
  const char* env = std::getenv("SMARTLY_FAULT_SEED_OFFSET");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

void expect_equivalent(const Module& gold, const Module& gate, const char* label) {
  const auto r = cec::check_equivalence(gold, gate);
  EXPECT_TRUE(r.equivalent) << label << ": differs at " << r.failing_output;
}

/// A seeded schedule mixing forced Unknowns and injected throws on the sites
/// matching `filter`. Seeds shift both the dice and the circuit.
util::FaultPlan mixed_plan(uint64_t seed, const char* filter) {
  util::FaultPlan plan;
  plan.seed = seed;
  plan.unknown_permille = 250;
  plan.throw_permille = 60;
  plan.site_filter = filter;
  return plan;
}

} // namespace

// --- seeded schedules: terminate + index-vs-rebuild + CEC -------------------

TEST(FaultInjection, FraigSchedulesTerminateAndStayEquivalent) {
  for (uint64_t s = 1; s <= 10; ++s) {
    const uint64_t seed = seed_offset() + s;
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    const auto golden = rtlil::clone_design(*design);
    Module& top = *design->top();
    sweep::FraigOptions options;
    options.threads = 2;
    options.check_index = true; // throws std::logic_error if index != rebuild
    {
      util::FaultScope scope(mixed_plan(seed, "fraig"));
      sweep::fraig_sweep(top, options);
    }
    opt::opt_clean(top);
    expect_equivalent(*golden->top(), top, "fraig under fault schedule");
  }
}

TEST(FaultInjection, RewriteSchedulesTerminateAndStayEquivalent) {
  for (uint64_t s = 1; s <= 10; ++s) {
    const uint64_t seed = seed_offset() + s;
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    const auto golden = rtlil::clone_design(*design);
    Module& top = *design->top();
    // Rewriting expects a fraiged netlist, but must tolerate any input.
    rewrite::RewriteOptions options;
    options.threads = 2;
    options.check_index = true;
    {
      util::FaultScope scope(mixed_plan(seed, "rewrite"));
      rewrite::rewrite_sweep(top, options);
    }
    opt::opt_clean(top);
    expect_equivalent(*golden->top(), top, "rewrite under fault schedule");
  }
}

TEST(FaultInjection, ParallelSweepSchedulesTerminateAndStayEquivalent) {
  for (uint64_t s = 1; s <= 10; ++s) {
    const uint64_t seed = seed_offset() + s;
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    Module& top = *design->top();
    opt::coarse_opt(top); // expose muxtrees, as smartly_flow would
    const auto golden = rtlil::clone_design(*design);
    {
      // Hits both the sweep engine's own sites (sweep.region /
      // sweep.iteration) and the per-region oracles' oracle.solve: an
      // oracle throw mid-walk exercises the journal-recovery path.
      util::FaultPlan plan = mixed_plan(seed, "");
      util::FaultScope scope(plan);
      core::sat_redundancy_parallel(top, {}, /*threads=*/2);
    }
    opt::opt_clean(top);
    expect_equivalent(*golden->top(), top, "parallel sweep under fault schedule");
  }
}

TEST(FaultInjection, OracleSchedulesTerminateAndStayEquivalent) {
  // The serial walker has no catch frame (only the engines contain injected
  // throws), so oracle-only schedules use the soundness degradation modes:
  // random forced Unknowns plus hard budget exhaustion at the N-th solve.
  for (uint64_t s = 1; s <= 10; ++s) {
    const uint64_t seed = seed_offset() + s;
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    Module& top = *design->top();
    opt::coarse_opt(top);
    const auto golden = rtlil::clone_design(*design);
    {
      util::FaultPlan plan;
      plan.seed = seed;
      plan.unknown_permille = 300;
      plan.exhaust_after = static_cast<int64_t>(seed) * 3; // all later solves Unknown
      plan.site_filter = "oracle.solve";
      util::FaultScope scope(plan);
      core::sat_redundancy(top, {});
    }
    opt::opt_clean(top);
    expect_equivalent(*golden->top(), top, "oracle under exhaustion schedule");
  }
}

// --- exception safety: one-shot throws mid-run ------------------------------

TEST(FaultInjection, FraigMidRoundThrowLeavesIndexConsistent) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (const int64_t after : {int64_t{1}, int64_t{5}, int64_t{20}}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " after " + std::to_string(after));
      auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
      const auto golden = rtlil::clone_design(*design);
      Module& top = *design->top();
      sweep::FraigOptions options;
      options.threads = 2;
      options.check_index = true;
      sweep::FraigStats stats;
      {
        util::FaultPlan plan;
        plan.seed = seed;
        plan.throw_after = after; // one-shot throw at the N-th matching event
        plan.site_filter = "fraig";
        util::FaultScope scope(plan);
        stats = sweep::fraig_sweep(top, options);
        // The engine contains the injected exception iff the schedule
        // reached the site at all (tiny circuits may finish first).
        if (scope.events() >= static_cast<uint64_t>(after)) {
          EXPECT_EQ(stats.halted, 1u);
        }
      }
      opt::opt_clean(top);
      expect_equivalent(*golden->top(), top, "fraig mid-round throw");
    }
  }
}

TEST(FaultInjection, RewriteMidRoundThrowLeavesIndexConsistent) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    for (const int64_t after : {int64_t{1}, int64_t{10}}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " after " + std::to_string(after));
      auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
      const auto golden = rtlil::clone_design(*design);
      Module& top = *design->top();
      rewrite::RewriteOptions options;
      options.threads = 2;
      options.check_index = true;
      rewrite::RewriteStats stats;
      {
        util::FaultPlan plan;
        plan.seed = seed;
        plan.throw_after = after;
        plan.site_filter = "rewrite.eval"; // mid-batch, from a worker thread
        util::FaultScope scope(plan);
        stats = rewrite::rewrite_sweep(top, options);
        if (scope.events() >= static_cast<uint64_t>(after)) {
          EXPECT_EQ(stats.halted, 1u);
        }
      }
      opt::opt_clean(top);
      expect_equivalent(*golden->top(), top, "rewrite mid-batch throw");
    }
  }
}

// --- deterministic budgets: thread-count byte-identity ----------------------

TEST(ResourceBudgets, FraigConflictBudgetPreservesThreadDeterminism) {
  const std::string src = benchgen::random_verilog(7, 7);
  std::string first;
  sweep::FraigStats first_stats;
  bool first_halted = false;
  for (const int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    auto design = verilog::read_verilog(src);
    Module& top = *design->top();
    util::ResourceBudgets budgets;
    budgets.solver_conflicts = 0; // trip at the first barrier that saw a conflict
    util::ResourceGuard guard(budgets);
    sweep::FraigOptions options;
    options.threads = threads;
    options.guard = &guard;
    options.check_index = true;
    const sweep::FraigStats stats = sweep::fraig_sweep(top, options);
    opt::opt_clean(top);
    const std::string netlist = backend::write_rtlil(top);
    if (first.empty()) {
      first = netlist;
      first_stats = stats;
      first_halted = guard.halted();
    } else {
      EXPECT_EQ(netlist, first);
      EXPECT_TRUE(sweep::same_work(stats, first_stats));
      EXPECT_EQ(guard.halted(), first_halted);
    }
  }
}

TEST(ResourceBudgets, ParallelSweepConflictBudgetPreservesThreadDeterminism) {
  const std::string src = benchgen::random_verilog(11, 7);
  std::string first;
  for (const int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    auto design = verilog::read_verilog(src);
    Module& top = *design->top();
    opt::coarse_opt(top);
    util::ResourceBudgets budgets;
    budgets.solver_conflicts = 0;
    util::ResourceGuard guard(budgets);
    core::SatRedundancyOptions options;
    options.guard = &guard;
    core::sat_redundancy_parallel(top, options, threads);
    opt::opt_clean(top);
    const std::string netlist = backend::write_rtlil(top);
    if (first.empty())
      first = netlist;
    else
      EXPECT_EQ(netlist, first);
  }
}

// --- sound degradation through the combined pass ----------------------------

TEST(ResourceBudgets, SmartlyPassDegradesSoundlyUnderConflictBudget) {
  auto design = verilog::read_verilog(benchgen::random_verilog(3, 7));
  const auto golden = rtlil::clone_design(*design);
  Module& top = *design->top();
  core::SmartlyOptions options;
  options.threads = 2;
  options.enable_rewrite = true;
  options.budgets.solver_conflicts = 0;
  const core::SmartlyStats stats = core::smartly_flow(top, options);
  expect_equivalent(*golden->top(), top, "smartly_flow under conflict budget");
  // The report reflects the guard the pass built from options.budgets; the
  // only configured budget is the conflict cap, so any halt must be its trip
  // (conflicts charged by the very last solve legitimately never reach a
  // later barrier, so an un-halted run with conflicts > 0 is also valid).
  if (stats.resource.halted()) {
    EXPECT_EQ(stats.resource.tripped, util::BudgetKind::Conflicts);
  }
}

TEST(ResourceBudgets, CancelledTokenHaltsEverythingSoundly) {
  auto design = verilog::read_verilog(benchgen::random_verilog(5, 6));
  const auto golden = rtlil::clone_design(*design);
  Module& top = *design->top();
  util::CancelToken cancel;
  cancel.cancel(); // cancelled before the pass even starts
  core::SmartlyOptions options;
  options.threads = 2;
  options.enable_fraig = true;
  options.cancel = &cancel;
  const core::SmartlyStats stats = core::smartly_flow(top, options);
  expect_equivalent(*golden->top(), top, "smartly_flow cancelled up front");
  EXPECT_EQ(stats.resource.tripped, util::BudgetKind::Cancelled);
}

TEST(ResourceBudgets, ZeroDeadlineHaltsSoundly) {
  // deadline_ms is the documented nondeterministic mode: assert soundness
  // (termination + equivalence + a deadline trip), never exact schedules.
  auto design = verilog::read_verilog(benchgen::random_verilog(9, 6));
  const auto golden = rtlil::clone_design(*design);
  Module& top = *design->top();
  core::SmartlyOptions options;
  options.threads = 2;
  options.enable_fraig = true;
  options.budgets.deadline_ms = 0;
  const core::SmartlyStats stats = core::smartly_flow(top, options);
  expect_equivalent(*golden->top(), top, "smartly_flow with expired deadline");
  EXPECT_EQ(stats.resource.tripped, util::BudgetKind::Deadline);
}

TEST(ResourceBudgets, CecDegradesToInconclusiveOnHaltedGuard) {
  // Two equivalent majority implementations whose AIGs differ structurally
  // (strash cannot fold them), so the miter needs SAT — which the
  // pre-halted guard refuses.
  const char* gold_src = "module top(a, b, c, y);\n  input a, b, c;\n  output y;\n"
                         "  assign y = (a & b) | (b & c) | (a & c);\nendmodule\n";
  const char* gate_src = "module top(a, b, c, y);\n  input a, b, c;\n  output y;\n"
                         "  assign y = (a & (b | c)) | (b & c);\nendmodule\n";
  auto gold = verilog::read_verilog(gold_src);
  auto gate = verilog::read_verilog(gate_src);

  util::ResourceBudgets budgets;
  util::ResourceGuard guard(budgets);
  guard.halt(util::BudgetKind::Deadline);
  cec::CecOptions options;
  options.guard = &guard;
  const auto r = cec::check_equivalence(*gold->top(), *gate->top(), options);
  EXPECT_FALSE(r.equivalent);
  EXPECT_TRUE(r.inconclusive);
  EXPECT_FALSE(r.failing_output.empty());

  // Ungoverned, the same check proves equivalence — the degradation above
  // came from the guard, not from the designs.
  const auto full = cec::check_equivalence(*gold->top(), *gate->top());
  EXPECT_TRUE(full.equivalent);
}

TEST(ResourceBudgets, GrowthBudgetStopsRewriteExpansion) {
  // A zero-growth cap: the rewrite engine may only shrink. The run must
  // terminate, stay equivalent, and never end above the baseline cell count
  // once opt_clean has swept the predicted-dead cones.
  auto design = verilog::read_verilog(benchgen::random_verilog(13, 7));
  const auto golden = rtlil::clone_design(*design);
  Module& top = *design->top();
  const size_t baseline = top.cell_count();
  util::ResourceBudgets budgets;
  budgets.max_growth_pct = 0;
  util::ResourceGuard guard(budgets);
  guard.set_growth_baseline(baseline);
  rewrite::RewriteOptions options;
  options.threads = 2;
  options.guard = &guard;
  options.check_index = true;
  rewrite::rewrite_sweep(top, options);
  opt::opt_clean(top);
  expect_equivalent(*golden->top(), top, "rewrite under zero growth cap");
}

/// Custom main so the seed offset is also reachable as a CLI flag
/// (`test_faults --seed-offset 1000` or `--seed-offset=1000`) — more
/// convenient than the env var in ctest invocations and repro one-liners.
/// Defining main here shadows the one in GTest::gtest_main (the static
/// library's main object is only pulled in when the symbol is unresolved).
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed-offset") == 0 && i + 1 < argc) {
      g_cli_seed_offset = std::strtoull(argv[i + 1], nullptr, 10);
      ++i;
    } else if (std::strncmp(argv[i], "--seed-offset=", 14) == 0) {
      g_cli_seed_offset = std::strtoull(argv[i] + 14, nullptr, 10);
    }
  }
  return RUN_ALL_TESTS();
}
