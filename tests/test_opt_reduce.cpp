// opt_reduce: reduce-gate flattening and contiguous pmux branch merging,
// with exhaustive semantic checks.
#include "opt/opt_clean.hpp"
#include "opt/opt_reduce.hpp"
#include "rtlil/module.hpp"
#include "sim/eval.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using rtlil::CellType;
using rtlil::Const;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  Fixture() { mod = design.add_module("top"); }
  Wire* in(const char* name, int w) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }
};

/// Exhaustive input sweep comparing module behaviour before/after a mutation.
class Snapshot {
public:
  explicit Snapshot(Module& m) : module_(m) {
    int bits = 0;
    for (const auto& w : m.wires())
      if (w->port_input) {
        inputs_.push_back(w.get());
        bits += w->width();
      }
    EXPECT_LE(bits, 14) << "too wide for exhaustive check";
    bits_ = bits;
    reference_ = sweep();
  }

  void expect_unchanged() {
    const auto now = sweep();
    ASSERT_EQ(now.size(), reference_.size());
    for (size_t i = 0; i < now.size(); ++i)
      EXPECT_EQ(now[i], reference_[i]) << "pattern " << i;
  }

private:
  std::vector<std::string> sweep() {
    std::vector<std::string> out;
    for (uint64_t v = 0; v < (uint64_t(1) << bits_); ++v) {
      sim::Evaluator ev(module_);
      int cursor = 0;
      for (Wire* w : inputs_) {
        ev.set_input(w, Const((v >> cursor) & ((uint64_t(1) << w->width()) - 1), w->width()));
        cursor += w->width();
      }
      ev.run();
      std::string row;
      for (const auto& w : module_.wires())
        if (w->port_output)
          row += ev.value(SigSpec(w.get())).to_string() + "|";
      out.push_back(std::move(row));
    }
    return out;
  }

  Module& module_;
  std::vector<Wire*> inputs_;
  int bits_ = 0;
  std::vector<std::string> reference_;
};

} // namespace

TEST(OptReduce, FlattensOrOfOr) {
  Fixture f;
  Wire* a = f.in("a", 3);
  Wire* b = f.in("b", 3);
  Wire* y = f.out("y", 1);
  const SigSpec inner = f.mod->ReduceOr(SigSpec(a));
  SigSpec outer_in = inner;
  outer_in.append(SigSpec(b));
  f.mod->connect(SigSpec(y), f.mod->ReduceOr(outer_in));

  Snapshot snap(*f.mod);
  const auto stats = opt::opt_reduce(*f.mod);
  opt::opt_clean(*f.mod);
  EXPECT_EQ(stats.reductions_absorbed, 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::ReduceOr), 1u);
  snap.expect_unchanged();
}

TEST(OptReduce, FlattensAndOfAnd) {
  Fixture f;
  Wire* a = f.in("a", 3);
  Wire* b = f.in("b", 3);
  Wire* y = f.out("y", 1);
  const SigSpec inner = f.mod->ReduceAnd(SigSpec(a));
  SigSpec outer_in = inner;
  outer_in.append(SigSpec(b));
  f.mod->connect(SigSpec(y), f.mod->add_unary(CellType::ReduceAnd, outer_in, 1));

  Snapshot snap(*f.mod);
  const auto stats = opt::opt_reduce(*f.mod);
  opt::opt_clean(*f.mod);
  EXPECT_EQ(stats.reductions_absorbed, 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::ReduceAnd), 1u);
  snap.expect_unchanged();
}

TEST(OptReduce, DoesNotMixKinds) {
  // or(and(a), b) must not be flattened.
  Fixture f;
  Wire* a = f.in("a", 3);
  Wire* b = f.in("b", 3);
  Wire* y = f.out("y", 1);
  const SigSpec inner = f.mod->ReduceAnd(SigSpec(a));
  SigSpec outer_in = inner;
  outer_in.append(SigSpec(b));
  f.mod->connect(SigSpec(y), f.mod->ReduceOr(outer_in));
  const auto stats = opt::opt_reduce(*f.mod);
  EXPECT_EQ(stats.reductions_absorbed, 0u);
  EXPECT_EQ(f.mod->count_cells(CellType::ReduceAnd), 1u);
}

TEST(OptReduce, KeepsSharedInnerReduction) {
  // The inner or feeds both the outer or and a module output: not absorbable.
  Fixture f;
  Wire* a = f.in("a", 3);
  Wire* b = f.in("b", 3);
  Wire* y = f.out("y", 1);
  Wire* z = f.out("z", 1);
  const SigSpec inner = f.mod->ReduceOr(SigSpec(a));
  f.mod->connect(SigSpec(z), inner);
  SigSpec outer_in = inner;
  outer_in.append(SigSpec(b));
  f.mod->connect(SigSpec(y), f.mod->ReduceOr(outer_in));
  const auto stats = opt::opt_reduce(*f.mod);
  EXPECT_EQ(stats.reductions_absorbed, 0u);
  EXPECT_EQ(f.mod->count_cells(CellType::ReduceOr), 2u);
}

TEST(OptReduce, FlattensDeepChainToOneCell) {
  Fixture f;
  Wire* a = f.in("a", 2);
  Wire* b = f.in("b", 2);
  Wire* c = f.in("c", 2);
  Wire* d = f.in("d", 2);
  Wire* y = f.out("y", 1);
  SigSpec acc = f.mod->ReduceOr(SigSpec(a));
  for (Wire* w : {b, c, d}) {
    SigSpec next_in = acc;
    next_in.append(SigSpec(w));
    acc = f.mod->ReduceOr(next_in);
  }
  f.mod->connect(SigSpec(y), acc);

  Snapshot snap(*f.mod);
  const auto stats = opt::opt_reduce(*f.mod);
  opt::opt_clean(*f.mod);
  EXPECT_EQ(stats.reductions_absorbed, 3u);
  EXPECT_EQ(f.mod->count_cells(CellType::ReduceOr), 1u);
  snap.expect_unchanged();
}

TEST(OptReduce, MergesAdjacentPmuxBranches) {
  Fixture f;
  Wire* a = f.in("a", 2);
  Wire* b0 = f.in("b0", 2);
  Wire* s = f.in("s", 3);
  Wire* y = f.out("y", 2);
  // Branches 0 and 1 share data b0; branch 2 has data a (default also a).
  SigSpec b;
  b.append(SigSpec(b0));
  b.append(SigSpec(b0));
  b.append(SigSpec(a));
  f.mod->add_pmux(SigSpec(a), b, SigSpec(s), SigSpec(y));

  Snapshot snap(*f.mod);
  const auto stats = opt::opt_reduce(*f.mod);
  EXPECT_EQ(stats.pmux_branches_merged, 1u);
  const rtlil::Cell* pmux = nullptr;
  for (const auto& c : f.mod->cells())
    if (c->type() == CellType::Pmux)
      pmux = c.get();
  ASSERT_NE(pmux, nullptr);
  EXPECT_EQ(pmux->params().s_width, 2);
  snap.expect_unchanged();
}

TEST(OptReduce, DoesNotMergeNonAdjacentEqualBranches) {
  // b0, a, b0: merging the two b0 branches would hijack priority from the
  // middle branch; they must be left alone.
  Fixture f;
  Wire* a = f.in("a", 2);
  Wire* b0 = f.in("b0", 2);
  Wire* s = f.in("s", 3);
  Wire* y = f.out("y", 2);
  Wire* dflt = f.in("d", 2);
  SigSpec b;
  b.append(SigSpec(b0));
  b.append(SigSpec(a));
  b.append(SigSpec(b0));
  f.mod->add_pmux(SigSpec(dflt), b, SigSpec(s), SigSpec(y));

  Snapshot snap(*f.mod);
  const auto stats = opt::opt_reduce(*f.mod);
  EXPECT_EQ(stats.pmux_branches_merged, 0u);
  snap.expect_unchanged();
}

TEST(OptReduce, MergesWholePmuxToSingleBranch) {
  Fixture f;
  Wire* a = f.in("a", 2);
  Wire* b0 = f.in("b0", 2);
  Wire* s = f.in("s", 4);
  Wire* y = f.out("y", 2);
  SigSpec b;
  for (int i = 0; i < 4; ++i)
    b.append(SigSpec(b0));
  f.mod->add_pmux(SigSpec(a), b, SigSpec(s), SigSpec(y));

  Snapshot snap(*f.mod);
  const auto stats = opt::opt_reduce(*f.mod);
  EXPECT_EQ(stats.pmux_branches_merged, 3u);
  snap.expect_unchanged();
}

TEST(OptReduce, NoopOnCleanModule) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->And(SigSpec(a), SigSpec(b)));
  const auto stats = opt::opt_reduce(*f.mod);
  EXPECT_EQ(stats.reductions_absorbed, 0u);
  EXPECT_EQ(stats.pmux_branches_merged, 0u);
}
