// AIG package: literal encoding, structural hashing, constant folding,
// reachability-based area, packed simulation, and aigmap bit-blasting
// cross-checked against the word-level evaluator.
#include "aig/aig.hpp"
#include "aig/aigmap.hpp"
#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"
#include "sim/eval.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using aig::Aig;
using aig::Lit;

TEST(AigLit, EncodingRoundTrips) {
  for (uint32_t node : {0u, 1u, 2u, 77u, 123456u}) {
    EXPECT_EQ(aig::lit_node(aig::mk_lit(node, false)), node);
    EXPECT_EQ(aig::lit_node(aig::mk_lit(node, true)), node);
    EXPECT_FALSE(aig::lit_compl(aig::mk_lit(node, false)));
    EXPECT_TRUE(aig::lit_compl(aig::mk_lit(node, true)));
    EXPECT_EQ(aig::lit_not(aig::lit_not(aig::mk_lit(node))), aig::mk_lit(node));
  }
  EXPECT_EQ(aig::kFalse, aig::lit_not(aig::kTrue));
}

TEST(Aig, ConstantFolding) {
  Aig g;
  const Lit a = g.add_input("a");
  EXPECT_EQ(g.and_(a, aig::kFalse), aig::kFalse);
  EXPECT_EQ(g.and_(aig::kFalse, a), aig::kFalse);
  EXPECT_EQ(g.and_(a, aig::kTrue), a);
  EXPECT_EQ(g.and_(aig::kTrue, a), a);
  EXPECT_EQ(g.and_(a, a), a);
  EXPECT_EQ(g.and_(a, aig::lit_not(a)), aig::kFalse);
  EXPECT_EQ(g.num_ands(), 0u) << "no AND node should be created for trivial cases";
}

TEST(Aig, StructuralHashingSharesNodes) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit x = g.and_(a, b);
  const Lit y = g.and_(b, a); // commuted: must strash to the same node
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_ands(), 1u);
  const Lit z = g.and_(aig::lit_not(a), b); // different function: new node
  EXPECT_NE(z, x);
  EXPECT_EQ(g.num_ands(), 2u);
}

TEST(Aig, XorAndMuxBuilders) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit s = g.add_input("s");

  // Truth-table check via packed simulation: 8 assignments in one word.
  const Lit x = g.xor_(a, b);
  const Lit m = g.mux_(s, a, b); // s ? a : b
  g.add_output(x, "x");
  g.add_output(m, "m");

  // Bit i of each word = value in assignment i; enumerate (s,b,a) in 3 bits.
  std::vector<uint64_t> in(3, 0);
  for (int v = 0; v < 8; ++v) {
    if (v & 1) in[0] |= uint64_t(1) << v; // a
    if (v & 2) in[1] |= uint64_t(1) << v; // b
    if (v & 4) in[2] |= uint64_t(1) << v; // s
  }
  const auto words = g.simulate(in);
  for (int v = 0; v < 8; ++v) {
    const bool av = v & 1, bv = v & 2, sv = v & 4;
    EXPECT_EQ((Aig::sim_lit(words, x) >> v) & 1, uint64_t(av ^ bv)) << v;
    EXPECT_EQ((Aig::sim_lit(words, m) >> v) & 1, uint64_t(sv ? av : bv)) << v;
  }
}

TEST(Aig, XorTrivialCases) {
  Aig g;
  const Lit a = g.add_input("a");
  EXPECT_EQ(g.xor_(a, aig::kFalse), a);
  EXPECT_EQ(g.xor_(a, aig::kTrue), aig::lit_not(a));
  EXPECT_EQ(g.xor_(a, a), aig::kFalse);
  EXPECT_EQ(g.xor_(a, aig::lit_not(a)), aig::kTrue);
}

TEST(Aig, MuxTrivialCases) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  EXPECT_EQ(g.mux_(aig::kTrue, a, b), a);
  EXPECT_EQ(g.mux_(aig::kFalse, a, b), b);
  EXPECT_EQ(g.mux_(a, b, b), b);
}

TEST(Aig, ReachableAreaIgnoresDeadNodes) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit used = g.and_(a, b);
  (void)g.and_(aig::lit_not(a), aig::lit_not(b)); // dead
  g.add_output(used, "y");
  EXPECT_EQ(g.num_ands(), 2u);
  EXPECT_EQ(g.num_ands_reachable(), 1u);
}

TEST(Aig, ReachableAreaConstOutput) {
  Aig g;
  (void)g.add_input("a");
  g.add_output(aig::kTrue, "one");
  EXPECT_EQ(g.num_ands_reachable(), 0u);
}

TEST(Aig, SimulateHandlesComplementedOutputs) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit na = aig::lit_not(a);
  const std::vector<uint64_t> in{0xF0F0F0F0F0F0F0F0ull};
  const auto words = g.simulate(in);
  EXPECT_EQ(Aig::sim_lit(words, a), 0xF0F0F0F0F0F0F0F0ull);
  EXPECT_EQ(Aig::sim_lit(words, na), ~0xF0F0F0F0F0F0F0F0ull);
  EXPECT_EQ(Aig::sim_lit(words, aig::kTrue), ~0ull);
  EXPECT_EQ(Aig::sim_lit(words, aig::kFalse), 0ull);
}

// ---------------------------------------------------------------------------
// aigmap: bit-blasting RTLIL cells, cross-checked against sim::Evaluator.
// ---------------------------------------------------------------------------

namespace {

using rtlil::CellType;
using rtlil::Const;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;
using rtlil::Wire;

/// Exhaustively compare `module` (single output port "y") against the
/// word-level evaluator over all input assignments (total input bits <= 16).
void check_aigmap_vs_eval(Module& module) {
  const aig::AigMap m = aig::aigmap(module);
  const rtlil::SigMap sm(module); // m.bits is keyed by canonical SigBit

  std::vector<Wire*> ins;
  int total_bits = 0;
  for (const auto& w : module.wires())
    if (w->port_input) {
      ins.push_back(w.get());
      total_bits += w->width();
    }
  ASSERT_LE(total_bits, 16) << "test circuit too wide for exhaustive check";

  Wire* yw = module.wire("y");
  ASSERT_NE(yw, nullptr);

  for (uint64_t v = 0; v < (uint64_t(1) << total_bits); ++v) {
    sim::Evaluator ev(module);
    // Drive AIG inputs by name lookup.
    std::vector<uint64_t> aig_in(m.aig.num_inputs(), 0);
    int bit_cursor = 0;
    for (Wire* w : ins) {
      const uint64_t val = (v >> bit_cursor) & ((uint64_t(1) << w->width()) - 1);
      bit_cursor += w->width();
      ev.set_input(w, Const(val, w->width()));
      for (int i = 0; i < w->width(); ++i) {
        const auto it = m.bits.find(sm(rtlil::SigBit(w, i)));
        if (it == m.bits.end())
          continue;
        const aig::Lit l = it->second;
        ASSERT_TRUE(m.aig.is_input(aig::lit_node(l)));
        // Find the input index of that node.
        for (size_t k = 0; k < m.aig.inputs().size(); ++k)
          if (m.aig.inputs()[k] == aig::lit_node(l))
            aig_in[k] = ((val >> i) & 1) ? ~0ull : 0ull;
      }
    }
    ev.run();
    const Const want = ev.value(SigSpec(yw));
    const auto words = m.aig.simulate(aig_in);
    for (int i = 0; i < yw->width(); ++i) {
      if (want[i] != rtlil::State::S0 && want[i] != rtlil::State::S1)
        continue; // x result: aigmap resolves x to 0 by design
      const rtlil::SigBit canon = sm(rtlil::SigBit(yw, i));
      if (canon.is_const()) {
        EXPECT_EQ(canon.data, want[i]) << "v=" << v << " bit=" << i;
        continue;
      }
      const auto it = m.bits.find(canon);
      ASSERT_NE(it, m.bits.end());
      const uint64_t got = Aig::sim_lit(words, it->second) & 1;
      EXPECT_EQ(got, want[i] == rtlil::State::S1 ? 1u : 0u)
          << "v=" << v << " bit=" << i;
    }
  }
}

struct CellCase {
  CellType type;
  int aw, bw, yw;
  bool binary;
};

class AigmapCellTest : public ::testing::TestWithParam<CellCase> {};

TEST_P(AigmapCellTest, MatchesEvaluatorExhaustively) {
  const CellCase c = GetParam();
  Design d;
  Module* mod = d.add_module("top");
  Wire* a = mod->add_wire("a", c.aw);
  mod->set_port_input(a);
  Wire* y = mod->add_wire("y", c.yw);
  mod->set_port_output(y);
  if (c.binary) {
    Wire* b = mod->add_wire("b", c.bw);
    mod->set_port_input(b);
    mod->connect(SigSpec(y), mod->add_binary(c.type, SigSpec(a), SigSpec(b), c.yw));
  } else {
    mod->connect(SigSpec(y), mod->add_unary(c.type, SigSpec(a), c.yw));
  }
  check_aigmap_vs_eval(*mod);
}

INSTANTIATE_TEST_SUITE_P(
    AllCellTypes, AigmapCellTest,
    ::testing::Values(
        CellCase{CellType::Not, 3, 0, 3, false},
        CellCase{CellType::Pos, 3, 0, 5, false},
        CellCase{CellType::Neg, 3, 0, 3, false},
        CellCase{CellType::ReduceAnd, 4, 0, 1, false},
        CellCase{CellType::ReduceOr, 4, 0, 1, false},
        CellCase{CellType::ReduceXor, 4, 0, 1, false},
        CellCase{CellType::ReduceXnor, 4, 0, 1, false},
        CellCase{CellType::LogicNot, 3, 0, 1, false},
        CellCase{CellType::And, 3, 3, 3, true},
        CellCase{CellType::Or, 3, 3, 3, true},
        CellCase{CellType::Xor, 3, 3, 3, true},
        CellCase{CellType::Xnor, 3, 3, 3, true},
        CellCase{CellType::Add, 4, 4, 5, true},
        CellCase{CellType::Sub, 4, 4, 4, true},
        CellCase{CellType::Mul, 3, 3, 6, true},
        CellCase{CellType::Shl, 4, 2, 4, true},
        CellCase{CellType::Shr, 4, 2, 4, true},
        CellCase{CellType::Lt, 3, 3, 1, true},
        CellCase{CellType::Le, 3, 3, 1, true},
        CellCase{CellType::Eq, 3, 3, 1, true},
        CellCase{CellType::Ne, 3, 3, 1, true},
        CellCase{CellType::Ge, 3, 3, 1, true},
        CellCase{CellType::Gt, 3, 3, 1, true},
        CellCase{CellType::LogicAnd, 2, 2, 1, true},
        CellCase{CellType::LogicOr, 2, 2, 1, true},
        CellCase{CellType::Add, 3, 5, 6, true},  // mixed widths
        CellCase{CellType::Eq, 2, 5, 1, true}),
    [](const ::testing::TestParamInfo<CellCase>& info) {
      std::string type_name;
      for (const char* p = rtlil::cell_type_name(info.param.type); *p; ++p)
        if (std::isalnum(static_cast<unsigned char>(*p)))
          type_name.push_back(*p);
      return type_name + "_" + std::to_string(info.param.aw) + "_" +
             std::to_string(info.param.bw) + "_" + std::to_string(info.param.yw) + "_" +
             std::to_string(info.index);
    });

TEST(Aigmap, MuxCell) {
  Design d;
  Module* mod = d.add_module("top");
  Wire* a = mod->add_wire("a", 3);
  Wire* b = mod->add_wire("b", 3);
  Wire* s = mod->add_wire("s", 1);
  Wire* y = mod->add_wire("y", 3);
  mod->set_port_input(a);
  mod->set_port_input(b);
  mod->set_port_input(s);
  mod->set_port_output(y);
  mod->add_mux(SigSpec(a), SigSpec(b), SigSpec(s), SigSpec(y));
  check_aigmap_vs_eval(*mod);
}

TEST(Aigmap, PmuxCell) {
  Design d;
  Module* mod = d.add_module("top");
  Wire* a = mod->add_wire("a", 2);
  Wire* b = mod->add_wire("b", 6); // 3 parts of width 2
  Wire* s = mod->add_wire("s", 3);
  Wire* y = mod->add_wire("y", 2);
  mod->set_port_input(a);
  mod->set_port_input(b);
  mod->set_port_input(s);
  mod->set_port_output(y);
  mod->add_pmux(SigSpec(a), SigSpec(b), SigSpec(s), SigSpec(y));
  check_aigmap_vs_eval(*mod);
}

TEST(Aigmap, DffIsCut) {
  // q <= d; y = q & e. The AIG must expose q as input and d as output.
  Design d;
  Module* mod = d.add_module("top");
  Wire* clk = mod->add_wire("clk", 1);
  Wire* din = mod->add_wire("din", 4);
  Wire* q = mod->add_wire("q", 4);
  Wire* y = mod->add_wire("y", 4);
  mod->set_port_input(clk);
  mod->set_port_input(din);
  mod->set_port_output(y);
  mod->add_dff(SigSpec(din), SigSpec(q), SigSpec(clk));
  mod->connect(SigSpec(y), mod->And(SigSpec(q), SigSpec(din)));

  const aig::AigMap m = aig::aigmap(*mod);
  // Inputs: clk? No — clk is not part of combinational logic; but din (4) and
  // q (4) must be inputs. Outputs: y (4) and dff D (4).
  EXPECT_GE(m.aig.num_inputs(), 8u);
  EXPECT_EQ(m.aig.num_outputs(), 8u);
  EXPECT_EQ(m.aig.num_ands_reachable(), 4u); // the AND only
}

TEST(Aigmap, AreaOfConstantModuleIsZero) {
  Design d;
  Module* mod = d.add_module("top");
  Wire* y = mod->add_wire("y", 4);
  mod->set_port_output(y);
  mod->connect(SigSpec(y), SigSpec(Const(9, 4)));
  EXPECT_EQ(aig::aig_area(*mod), 0u);
}

TEST(Aigmap, SharedSubexpressionMapsOnce) {
  Design d;
  Module* mod = d.add_module("top");
  Wire* a = mod->add_wire("a", 1);
  Wire* b = mod->add_wire("b", 1);
  Wire* y = mod->add_wire("y", 2);
  mod->set_port_input(a);
  mod->set_port_input(b);
  mod->set_port_output(y);
  const SigSpec g = mod->And(SigSpec(a), SigSpec(b));
  mod->connect(SigSpec(y).extract(0, 1), g);
  mod->connect(SigSpec(y).extract(1, 1), g);
  EXPECT_EQ(aig::aig_area(*mod), 1u);
}

} // namespace
