// Baseline opt_muxtree tests — the paper's Figs. 1 & 2 plus pmux pruning.
#include "aig/aigmap.hpp"
#include "cec/cec.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/opt_muxtree.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using rtlil::CellType;
using rtlil::Module;

namespace {

/// Parse, snapshot, run baseline muxtree opt + cleanup, and return
/// (stats, mux count after); verifies equivalence against the snapshot.
std::pair<opt::MuxtreeStats, size_t> run_baseline(const std::string& src) {
  auto design = verilog::read_verilog(src);
  Module* m = design->top();
  auto golden = rtlil::clone_design(*design);
  const opt::MuxtreeStats stats = opt::opt_muxtree(*m);
  opt::opt_expr(*m);
  opt::opt_clean(*m);
  const auto cec = cec::check_equivalence(*golden->top(), *m);
  EXPECT_TRUE(cec.equivalent) << "baseline broke " << cec.failing_output;
  return {stats, m->count_cells(CellType::Mux)};
}

} // namespace

TEST(OptMuxtree, Fig1SameControlInAncestor) {
  // Y = S ? (S ? A : B) : C  -->  Y = S ? A : C
  const auto [stats, muxes] = run_baseline(R"(
    module top(s, a, b, c, y);
      input s;
      input [3:0] a, b, c;
      output [3:0] y;
      assign y = s ? (s ? a : b) : c;
    endmodule
  )");
  EXPECT_EQ(stats.mux_collapsed, 1u);
  EXPECT_EQ(muxes, 1u);
}

TEST(OptMuxtree, Fig1OppositeBranch) {
  // Y = S ? C : (S ? A : B)  -->  Y = S ? C : B
  const auto [stats, muxes] = run_baseline(R"(
    module top(s, a, b, c, y);
      input s;
      input [3:0] a, b, c;
      output [3:0] y;
      assign y = s ? c : (s ? a : b);
    endmodule
  )");
  EXPECT_EQ(stats.mux_collapsed, 1u);
  EXPECT_EQ(muxes, 1u);
}

TEST(OptMuxtree, Fig2DataPortSubstitution) {
  // Y = S ? (A ? S : B) : C  -->  inner data S becomes constant 1.
  const auto [stats, muxes] = run_baseline(R"(
    module top(s, a, b, c, y);
      input s, a, b;
      input c;
      output y;
      assign y = s ? (a ? s : b) : c;
    endmodule
  )");
  (void)muxes;
  EXPECT_GE(stats.data_bits_replaced, 1u);
}

TEST(OptMuxtree, DeepChainOfSameControl) {
  const auto [stats, muxes] = run_baseline(R"(
    module top(s, a, b, c, d, y);
      input s;
      input [7:0] a, b, c, d;
      output [7:0] y;
      assign y = s ? (s ? (s ? a : d) : b) : c;
    endmodule
  )");
  EXPECT_EQ(stats.mux_collapsed, 2u);
  EXPECT_EQ(muxes, 1u);
}

TEST(OptMuxtree, DoesNotTouchIndependentControls) {
  const auto [stats, muxes] = run_baseline(R"(
    module top(s, t, a, b, c, y);
      input s, t;
      input [3:0] a, b, c;
      output [3:0] y;
      assign y = s ? (t ? a : b) : c;
    endmodule
  )");
  EXPECT_EQ(stats.mux_collapsed, 0u);
  EXPECT_EQ(muxes, 2u);
}

TEST(OptMuxtree, CannotSeeDependentControls) {
  // Fig. 3: the baseline misses (s | r) under s=1 — that is smaRTLy's gap
  // to close (see test_sat_redundancy.cpp).
  const auto [stats, muxes] = run_baseline(R"(
    module top(s, r, a, b, c, y);
      input s, r;
      input [3:0] a, b, c;
      output [3:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )");
  EXPECT_EQ(stats.mux_collapsed, 0u);
  EXPECT_EQ(muxes, 2u);
}

TEST(OptMuxtree, SharedSubtreeIsNotRewritten) {
  // The inner mux feeds two different outer branches; collapsing it under
  // either branch condition would be unsound. (t ? a : b) is shared.
  auto design = verilog::read_verilog(R"(
    module top(s, t, a, b, c, y1, y2);
      input s, t;
      input [3:0] a, b, c;
      output [3:0] y1, y2;
      wire [3:0] shared;
      assign shared = t ? a : b;
      assign y1 = s ? shared : c;
      assign y2 = s ? c : shared;
    endmodule
  )");
  Module* m = design->top();
  auto golden = rtlil::clone_design(*design);
  opt::opt_muxtree(*m);
  opt::opt_expr(*m);
  opt::opt_clean(*m);
  EXPECT_TRUE(cec::check_equivalence(*golden->top(), *m).equivalent);
  EXPECT_EQ(m->count_cells(CellType::Mux), 3u);
}

TEST(OptMuxtree, CaseChainUntouchedByBaseline) {
  // A case chain has distinct eq controls; the baseline cannot shrink it.
  const auto [stats, muxes] = run_baseline(R"(
    module top(s, p0, p1, p2, p3, y);
      input [1:0] s;
      input [7:0] p0, p1, p2, p3;
      output reg [7:0] y;
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p2;
        default: y = p3;
      endcase
    endmodule
  )");
  EXPECT_EQ(stats.mux_collapsed, 0u);
  EXPECT_EQ(muxes, 3u);
}

TEST(OptMuxtree, NestedCaseSameSelector) {
  // A case nested inside a matching ancestor branch: the inner eq controls
  // are syntactically different cells, so the baseline leaves the structure;
  // equivalence must still hold after the run.
  const auto [stats, muxes] = run_baseline(R"(
    module top(s, a, b, c, y);
      input [1:0] s;
      input [3:0] a, b, c;
      output reg [3:0] y;
      always @(*) begin
        if (s == 2'b00) begin
          case (s)
            2'b00: y = a;
            2'b01: y = b;   // dead arm
            default: y = c; // dead arm
          endcase
        end else begin
          y = c;
        end
      end
    endmodule
  )");
  (void)stats;
  EXPECT_GE(muxes, 1u);
}
