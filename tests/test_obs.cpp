// Observability layer: span nesting/ordering invariants, Chrome trace JSON
// well-formedness (parsed back by a minimal JSON reader), histogram bucket
// math, Prometheus exposition shape, warn-level log routing into the trace,
// the zero-cost disabled path, and — the determinism contract — identical
// netlists and identical engine counters at 1/2/4/8 threads on a
// fraig+rewrite flow with tracing enabled.
#include "backend/write_rtlil.hpp"
#include "benchgen/random_circuit.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "rewrite/rewrite_engine.hpp"
#include "rtlil/module.hpp"
#include "sweep/fraig_engine.hpp"
#include "util/log.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

using namespace smartly;

namespace {

// --- minimal JSON reader (tests only): enough to parse the trace back ----

struct Json {
  enum Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind kind = Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    static const Json null;
    const auto it = obj.find(key);
    return it == obj.end() ? null : it->second;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json* out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == s_.size(); // whole document, no trailing garbage
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0)
      return false;
    pos_ += n;
    return true;
  }
  bool value(Json* out) {
    skip_ws();
    if (pos_ >= s_.size())
      return false;
    const char c = s_[pos_];
    if (c == '{')
      return object(out);
    if (c == '[')
      return array(out);
    if (c == '"') {
      out->kind = Json::Str;
      return string(&out->str);
    }
    if (literal("true")) {
      out->kind = Json::Bool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->kind = Json::Bool;
      return true;
    }
    if (literal("null")) {
      out->kind = Json::Null;
      return true;
    }
    return number(out);
  }
  bool object(Json* out) {
    out->kind = Json::Obj;
    ++pos_; // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key))
        return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':')
        return false;
      ++pos_;
      Json v;
      if (!value(&v))
        return false;
      out->obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size())
        return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array(Json* out) {
    out->kind = Json::Arr;
    ++pos_; // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json v;
      if (!value(&v))
        return false;
      out->arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size())
        return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"')
      return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"')
        return true;
      if (c == '\\') {
        if (pos_ >= s_.size())
          return false;
        const char e = s_[pos_++];
        switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size())
            return false;
          *out += '?'; // control chars round-trip as placeholders; fine here
          pos_ += 4;
          break;
        }
        default: return false;
        }
      } else {
        *out += c;
      }
    }
    return false;
  }
  bool number(Json* out) {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    if (pos_ == start)
      return false;
    out->kind = Json::Num;
    out->number = std::strtod(s_.c_str() + start, nullptr);
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

Json parse_trace_or_fail() {
  const std::string text = obs::chrome_trace_json();
  Json doc;
  EXPECT_TRUE(JsonParser(text).parse(&doc)) << "trace JSON does not parse:\n" << text;
  EXPECT_EQ(doc.kind, Json::Obj);
  EXPECT_EQ(doc.at("traceEvents").kind, Json::Arr);
  return doc;
}

const Json* find_event(const Json& doc, const std::string& name) {
  for (const Json& e : doc.at("traceEvents").arr)
    if (e.at("name").str == name)
      return &e;
  return nullptr;
}

/// Every trace test runs against the process-global tracer; start clean and
/// leave tracing off for the next test.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::set_tracing(false);
    obs::reset_trace();
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::reset_trace();
  }
};

// --- histogram bucket math ------------------------------------------------

TEST(ObsHistogram, BucketBoundsArePowersOfTwoMinusOne) {
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_bound(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_bound(5), 31u);
  EXPECT_EQ(obs::Histogram::bucket_bound(31), 0x7fffffffu);
}

TEST(ObsHistogram, BucketIndexPicksSmallestContainingBucket) {
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_index(7), 3);
  EXPECT_EQ(obs::Histogram::bucket_index(8), 4);
  // Saturates at the +Inf bucket.
  EXPECT_EQ(obs::Histogram::bucket_index(UINT64_MAX), obs::Histogram::kBuckets - 1);
}

TEST(ObsHistogram, ObserveAccumulatesCountSumAndBuckets) {
  obs::Histogram h;
  for (const uint64_t v : {0, 1, 3, 3, 100})
    h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_EQ(h.bucket(0), 1u); // 0
  EXPECT_EQ(h.bucket(1), 1u); // 1
  EXPECT_EQ(h.bucket(2), 2u); // 3, 3
  EXPECT_EQ(h.bucket(7), 1u); // 100 <= 127
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// --- registry snapshot + exposition ---------------------------------------

TEST(ObsRegistry, SnapshotIsSortedAndExpandsHistograms) {
  obs::Registry r;
  r.counter("zeta.count").add(3);
  r.counter("alpha.count").add(1);
  r.gauge("mid.gauge").set(7);
  r.histogram("beta.hist").observe(10);
  const auto snap = r.snapshot();
  std::vector<std::string> names;
  for (const auto& [name, value] : snap)
    names.push_back(name);
  for (size_t i = 1; i < names.size(); ++i)
    EXPECT_LT(names[i - 1], names[i]) << "snapshot must be sorted";
  std::map<std::string, uint64_t> m(snap.begin(), snap.end());
  EXPECT_EQ(m.at("zeta.count"), 3u);
  EXPECT_EQ(m.at("alpha.count"), 1u);
  EXPECT_EQ(m.at("mid.gauge"), 7u);
  EXPECT_EQ(m.at("beta.hist.count"), 1u);
  EXPECT_EQ(m.at("beta.hist.sum"), 10u);
}

TEST(ObsRegistry, PrometheusTextRendersAllThreeKinds) {
  obs::Registry r;
  r.counter("fraig.sat_queries").add(42);
  r.gauge("service.jobs_completed").set(5);
  auto& h = r.histogram("service.job_us");
  h.observe(1);
  h.observe(100);
  const std::string text = r.prometheus_text();
  EXPECT_NE(text.find("# TYPE smartly_fraig_sat_queries counter"), std::string::npos);
  EXPECT_NE(text.find("smartly_fraig_sat_queries 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE smartly_service_jobs_completed gauge"), std::string::npos);
  EXPECT_NE(text.find("smartly_service_jobs_completed 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE smartly_service_job_us histogram"), std::string::npos);
  // Cumulative buckets: le="1" already contains the first observation, the
  // +Inf bucket contains both, and sum/count close the series.
  EXPECT_NE(text.find("smartly_service_job_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("smartly_service_job_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("smartly_service_job_us_sum 101"), std::string::npos);
  EXPECT_NE(text.find("smartly_service_job_us_count 2"), std::string::npos);
}

TEST(ObsRegistry, ReferencesSurviveResetAll) {
  obs::Registry r;
  obs::Counter& c = r.counter("stable.ref");
  c.add(9);
  r.reset_all();
  EXPECT_EQ(c.value(), 0u); // zeroed in place, same storage
  c.add(2);
  EXPECT_EQ(r.counter("stable.ref").value(), 2u);
}

// --- spans + trace JSON ---------------------------------------------------

TEST_F(ObsTest, NestedSpansAreContainedAndCloseInnerFirst) {
  obs::set_tracing(true);
  {
    const obs::Span outer("test", "outer");
    {
      const obs::Span inner("test", "inner", "arg", 17);
    }
  }
  EXPECT_EQ(obs::trace_event_count(), 2u);
  const Json doc = parse_trace_or_fail();
  const Json* outer = find_event(doc, "outer");
  const Json* inner = find_event(doc, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Same thread, complete events, inner temporally contained in outer.
  EXPECT_EQ(outer->at("ph").str, "X");
  EXPECT_EQ(inner->at("ph").str, "X");
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  EXPECT_LE(outer->at("ts").number, inner->at("ts").number);
  EXPECT_LE(inner->at("ts").number + inner->at("dur").number,
            outer->at("ts").number + outer->at("dur").number);
  EXPECT_EQ(inner->at("args").at("arg").number, 17.0);
  // Events append at destruction: the inner span lands before the outer.
  const auto& events = doc.at("traceEvents").arr;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").str, "inner");
  EXPECT_EQ(events[1].at("name").str, "outer");
}

TEST_F(ObsTest, TraceJsonCarriesTheChromeEnvelope) {
  obs::set_tracing(true);
  { const obs::Span s("test", "one"); }
  obs::trace_instant("test", "marker", "hello \"quoted\"\n");
  const Json doc = parse_trace_or_fail();
  EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
  for (const Json& e : doc.at("traceEvents").arr) {
    EXPECT_EQ(e.at("name").kind, Json::Str);
    EXPECT_EQ(e.at("cat").kind, Json::Str);
    EXPECT_EQ(e.at("pid").number, 1.0);
    EXPECT_GE(e.at("tid").number, 1.0);
    EXPECT_EQ(e.at("ts").kind, Json::Num);
  }
  const Json* marker = find_event(doc, "marker");
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(marker->at("ph").str, "i");
  EXPECT_EQ(marker->at("s").str, "t");
  EXPECT_EQ(marker->at("args").at("message").str, "hello \"quoted\"\n");
}

TEST_F(ObsTest, WarnAndErrorLogsBecomeInstantEvents) {
  obs::set_tracing(true);
  log_warn("sweep region %d looks off", 3);
  log_error("oracle gave up");
  log_info("chatty"); // below Warn: never traced
  const Json doc = parse_trace_or_fail();
  const Json* warn = find_event(doc, "log.warn");
  const Json* error = find_event(doc, "log.error");
  ASSERT_NE(warn, nullptr);
  ASSERT_NE(error, nullptr);
  EXPECT_NE(warn->at("args").at("message").str.find("sweep region 3 looks off"),
            std::string::npos);
  EXPECT_EQ(find_event(doc, "log.info"), nullptr);
  EXPECT_EQ(doc.at("traceEvents").arr.size(), 2u);
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  for (int i = 0; i < 100000; ++i) {
    const obs::Span s("test", "noop");
  }
  obs::trace_instant("test", "noop", "dropped");
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(ObsTest, ResetTraceDropsBufferedEvents) {
  obs::set_tracing(true);
  { const obs::Span s("test", "gone"); }
  EXPECT_EQ(obs::trace_event_count(), 1u);
  obs::reset_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
  const Json doc = parse_trace_or_fail();
  EXPECT_TRUE(doc.at("traceEvents").arr.empty());
}

// --- stage profile --------------------------------------------------------

TEST(ObsProfile, AccumulatesRepeatedStagesInFirstSeenOrder) {
  obs::StageProfile p;
  { const auto s = p.scope("alpha"); }
  { const auto s = p.scope("beta"); }
  { const auto s = p.scope("alpha"); }
  ASSERT_EQ(p.stages().size(), 2u);
  EXPECT_EQ(p.stages()[0].name, "alpha");
  EXPECT_EQ(p.stages()[1].name, "beta");
  for (const obs::StageTiming& s : p.stages()) {
    EXPECT_GE(s.wall_seconds, 0.0);
    EXPECT_GE(s.cpu_seconds, 0.0);
  }
}

// --- determinism across thread counts with tracing on ---------------------

/// Engine counters published from the deterministic Stats structs must be
/// identical at every thread count; pool.* and the rewrite engine's
/// reservation-conflict count are scheduling-dependent by design and
/// excluded (the README documents the split).
std::map<std::string, uint64_t> deterministic_counters() {
  std::map<std::string, uint64_t> out;
  for (const auto& [name, value] : obs::Registry::global().snapshot())
    if (name.compare(0, 5, "pool.") != 0 && name != "rewrite.reservation_conflicts")
      out.emplace(name, value);
  return out;
}

TEST_F(ObsTest, FraigRewriteCountersAndNetlistIdenticalAcrossThreadCounts) {
  const std::string verilog = benchgen::random_verilog(/*seed=*/7, /*size=*/6);
  obs::set_tracing(true); // byte-identity must hold with tracing enabled

  std::string reference_netlist;
  std::map<std::string, uint64_t> reference_counters;
  for (const int threads : {1, 2, 4, 8}) {
    obs::Registry::global().reset_all();
    obs::reset_trace();

    auto design = verilog::read_verilog(verilog);
    rtlil::Module& top = *design->top();
    sweep::FraigOptions fraig;
    fraig.threads = threads;
    const auto fraig_stats = sweep::fraig_sweep(top, fraig);
    rewrite::RewriteOptions rw;
    rw.threads = threads;
    const auto rw_stats = rewrite::rewrite_sweep(top, rw);
    (void)fraig_stats;
    (void)rw_stats;

    const std::string netlist = backend::write_rtlil(top);
    const auto counters = deterministic_counters();
    EXPECT_FALSE(counters.empty());
    EXPECT_TRUE(counters.count("fraig.rounds"));
    EXPECT_TRUE(counters.count("rewrite.rounds"));
    if (threads == 1) {
      reference_netlist = netlist;
      reference_counters = counters;
    } else {
      EXPECT_EQ(netlist, reference_netlist)
          << "netlist diverged at " << threads << " threads with tracing on";
      EXPECT_EQ(counters, reference_counters)
          << "engine counters diverged at " << threads << " threads";
    }
  }
}

} // namespace
