// Transactional recovery suite (ctest label: robustness).
//
// Covers the recovery layer end to end:
//   * stable unit ids and the QuarantineSet container;
//   * StageTransaction rollback byte-identity (write_rtlil dump compare);
//   * run_protected_stage semantics: fault-injected throws, guard fault
//     halts, paranoid miscompare detection with round bisection, retry
//     exhaustion (skip, module keeps the pre-stage image), and the rule
//     that real budget trips are degradation, not failures;
//   * repro bundles: field-level write/read round trip, emission during a
//     recovering pass, and deterministic in-process replay of a bundle's
//     design.v under its recorded FaultPlan + quarantine;
//   * seeded unit-keyed schedules (>= 10 per engine: sweep oracle, fraig,
//     rewrite): every run completes, the output stays CEC-equivalent, and
//     the quarantine decisions are identical for 1/2/4/8 worker threads.
#include "backend/write_rtlil.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/opt_clean.hpp"
#include "opt/pipeline.hpp"
#include "opt/transaction.hpp"
#include "rtlil/module.hpp"
#include "sweep/fraig_engine.hpp"
#include "util/budget.hpp"
#include "util/fault.hpp"
#include "util/recovery.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace smartly;
using rtlil::Module;

namespace {

void expect_equivalent(const Module& gold, const Module& gate, const char* label) {
  const auto r = cec::check_equivalence(gold, gate);
  EXPECT_TRUE(r.equivalent) << label << ": differs at " << r.failing_output;
}

/// Unit-keyed schedule: hash(seed, site, unit) decides per work item, so the
/// same units fault on every thread count and in every re-run.
util::FaultPlan unit_plan(uint64_t seed, const char* filter, uint32_t throw_pm = 120) {
  util::FaultPlan plan;
  plan.seed = seed;
  plan.throw_permille = throw_pm;
  plan.site_filter = filter;
  plan.unit_keyed = true;
  return plan;
}

/// The quarantine decisions of one run, in QuarantineSet order — the
/// cross-thread-count determinism witness.
std::string quarantine_of(const util::RecoveryStats& stats) {
  util::QuarantineSet q;
  for (const util::RecoveryEvent& ev : stats.events)
    if (ev.quarantined)
      q.add(ev.site, ev.unit);
  return q.serialize();
}

std::string fresh_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "smartly-recovery-" + tag + "-" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

} // namespace

// --- unit ids and the quarantine container ----------------------------------

TEST(UnitIds, StableNonzeroAndDistinct) {
  const uint64_t a0 = util::bit_unit_id("a", 0);
  EXPECT_NE(a0, 0u);
  EXPECT_EQ(a0, util::bit_unit_id("a", 0)); // pure function of (name, offset)
  EXPECT_NE(a0, util::bit_unit_id("a", 1));
  EXPECT_NE(a0, util::bit_unit_id("b", 0));
}

TEST(QuarantineSet, AddContainsAndSortedSerialization) {
  util::QuarantineSet q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.serialize(), "");
  EXPECT_TRUE(q.add("fraig.solve", 0x2a));
  EXPECT_TRUE(q.add("sweep.region", 0x1));
  EXPECT_FALSE(q.add("fraig.solve", 0x2a)); // duplicate
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.contains("fraig.solve", 0x2a));
  EXPECT_FALSE(q.contains("fraig.solve", 0x2b));
  EXPECT_FALSE(q.contains("fraig.round", 0x2a));

  // Sorted order is independent of insertion order.
  util::QuarantineSet r;
  r.add("sweep.region", 0x1);
  r.add("fraig.solve", 0x2a);
  EXPECT_EQ(q.serialize(), r.serialize());

  const util::QuarantineSet back = util::QuarantineSet::parse(q.serialize());
  EXPECT_EQ(back.serialize(), q.serialize());
  EXPECT_TRUE(back.contains("fraig.solve", 0x2a));
}

TEST(QuarantineSet, SerializeParseRoundTripsRandomSets) {
  // Property check over seeded random sets: parse(serialize(q)) must
  // reproduce q exactly — the service daemon persists the set through this
  // path on every quarantine, so a lossy round trip silently un-quarantines
  // crash loopers after a restart.
  Rng rng(0x5e7c0de);
  const char* sites[] = {"fraig.solve", "sweep.region", "rewrite.cut", "service.job"};
  for (int round = 0; round < 50; ++round) {
    util::QuarantineSet q;
    const int n = static_cast<int>(rng.range(0, 12));
    for (int i = 0; i < n; ++i)
      q.add(sites[rng.below(4)], rng.next());

    const std::string text = q.serialize();
    const util::QuarantineSet back = util::QuarantineSet::parse(text);
    EXPECT_EQ(back.serialize(), text) << "round " << round;
    EXPECT_EQ(back.size(), q.size()) << "round " << round;
    for (const auto& [site, unit] : q.entries())
      EXPECT_TRUE(back.contains(site.c_str(), unit)) << "round " << round;
  }
}

TEST(QuarantineSet, ParseToleratesMalformedInput) {
  // The on-disk file is evidence, not trusted input: damaged fragments are
  // dropped, valid ones survive, and nothing throws.
  struct Case {
    const char* text;
    size_t survivors;
  };
  const Case cases[] = {
      {"", 0},
      {",,,", 0},
      {"nocolon", 0},
      {":2a", 0},                          // empty site
      {"site:", 0},                        // empty unit
      {"site:zzzz", 0},                    // non-hex unit
      {"a:1,b:nothex,c:2", 2},             // damage in the middle
      {"a:1,a:1,a:1", 1},                  // duplicates collapse
      {"fraig.solve:2a,sweep.region:1", 2} // fully valid control
  };
  for (const Case& c : cases) {
    const util::QuarantineSet q = util::QuarantineSet::parse(c.text);
    EXPECT_EQ(q.size(), c.survivors) << "input: " << c.text;
    // Whatever survived must re-serialize stably (idempotent fixpoint).
    EXPECT_EQ(util::QuarantineSet::parse(q.serialize()).serialize(), q.serialize())
        << "input: " << c.text;
  }
}

TEST(QuarantineSet, ParseFuzzNeverThrowsAndReachesFixpoint) {
  // Byte-level fuzz of the parser with seed-stable garbage: arbitrary
  // bytes must never throw, and one parse+serialize pass must reach the
  // canonical form (parsing the output changes nothing).
  Rng rng(0xfadedbed);
  const char alphabet[] = "abc.:,0123456789xyzABC \t\n-_";
  for (int round = 0; round < 200; ++round) {
    std::string text;
    const int len = static_cast<int>(rng.range(0, 64));
    for (int i = 0; i < len; ++i)
      text.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);

    const util::QuarantineSet q = util::QuarantineSet::parse(text);
    const std::string canon = q.serialize();
    EXPECT_EQ(util::QuarantineSet::parse(canon).serialize(), canon)
        << "round " << round << " input: " << text;
  }
}

// --- StageTransaction: the rollback primitive -------------------------------

TEST(StageTransaction, RollbackIsByteIdentical) {
  auto design = verilog::read_verilog(benchgen::random_verilog(17, 6));
  Module& top = *design->top();
  const std::string before = backend::write_rtlil(top);

  opt::StageTransaction txn(top, "test");
  // Wreck the module thoroughly: a full optimization pass plus extra cells.
  core::smartly_flow(top);
  top.Not(rtlil::SigSpec(top.new_wire(4)));
  ASSERT_NE(backend::write_rtlil(top), before);

  txn.rollback();
  EXPECT_EQ(backend::write_rtlil(top), before);
  // The name counter rolls back too: fresh names after a rollback match the
  // names a never-touched module would generate (replay determinism).
  auto pristine = verilog::read_verilog(benchgen::random_verilog(17, 6));
  EXPECT_EQ(top.new_wire(1)->name(), pristine->top()->new_wire(1)->name());
}

// --- run_protected_stage semantics ------------------------------------------

TEST(ProtectedStage, DisabledContextRunsBodyUnwrapped) {
  auto design = verilog::read_verilog(benchgen::random_verilog(2, 5));
  Module& top = *design->top();
  int calls = 0;
  const auto out = opt::run_protected_stage(top, "noop", nullptr, nullptr,
                                            [&](Module&, int) { ++calls; });
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(calls, 1);
}

TEST(ProtectedStage, FaultInjectedRollsBackQuarantinesAndRetries) {
  auto design = verilog::read_verilog(benchgen::random_verilog(3, 5));
  Module& top = *design->top();
  const std::string before = backend::write_rtlil(top);
  const uint64_t unit = util::bit_unit_id("victim", 0);

  opt::RecoveryContext ctx;
  ctx.options.enabled = true;
  int calls = 0;
  const auto out = opt::run_protected_stage(
      top, "stage", &ctx, nullptr, [&](Module& m, int) {
        if (++calls == 1) {
          m.Not(rtlil::SigSpec(m.new_wire(1))); // dirty the module first
          throw util::FaultInjected("test.site", unit);
        }
      });

  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(ctx.stats.rollbacks, 1u);
  EXPECT_EQ(ctx.stats.retries, 1u);
  EXPECT_EQ(ctx.stats.quarantined_units, 1u);
  EXPECT_TRUE(ctx.quarantine.contains("test.site", unit));
  ASSERT_EQ(ctx.stats.events.size(), 1u);
  EXPECT_EQ(ctx.stats.events[0].reason, "fault-injected");
  EXPECT_EQ(ctx.stats.events[0].site, "test.site");
  EXPECT_EQ(ctx.stats.events[0].unit, unit);
  EXPECT_TRUE(ctx.stats.events[0].quarantined);
  // The retry ran against the rolled-back image and committed it untouched.
  EXPECT_EQ(backend::write_rtlil(top), before);
}

TEST(ProtectedStage, GuardFaultHaltIsAFailureAndGetsCleared) {
  auto design = verilog::read_verilog(benchgen::random_verilog(5, 5));
  Module& top = *design->top();
  util::ResourceGuard guard;
  const uint64_t unit = util::bit_unit_id("worker-item", 2);

  opt::RecoveryContext ctx;
  ctx.options.enabled = true;
  int calls = 0;
  const auto out = opt::run_protected_stage(
      top, "stage", &ctx, &guard, [&](Module&, int) {
        if (++calls == 1) {
          // What an engine does when a worker's FaultInjected is contained.
          guard.note_fault("fraig.solve", unit);
          guard.halt(util::BudgetKind::Fault);
        }
      });

  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_EQ(ctx.stats.events.size(), 1u);
  EXPECT_EQ(ctx.stats.events[0].reason, "fault-halt");
  EXPECT_EQ(ctx.stats.events[0].unit, unit);
  EXPECT_TRUE(ctx.quarantine.contains("fraig.solve", unit));
  // The Fault trip (and its report) must not leak past the stage.
  EXPECT_EQ(guard.tripped(), util::BudgetKind::None);
  EXPECT_FALSE(guard.fault_report().valid);
}

TEST(ProtectedStage, RealBudgetTripIsDegradationNotFailure) {
  auto design = verilog::read_verilog(benchgen::random_verilog(7, 5));
  Module& top = *design->top();
  util::ResourceGuard guard;

  opt::RecoveryContext ctx;
  ctx.options.enabled = true;
  const auto out = opt::run_protected_stage(
      top, "stage", &ctx, &guard,
      [&](Module&, int) { guard.halt(util::BudgetKind::Conflicts); });

  // Sound degradation: partial output kept, no rollback, trip stays sticky.
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(ctx.stats.rollbacks, 0u);
  EXPECT_EQ(guard.tripped(), util::BudgetKind::Conflicts);
}

TEST(ProtectedStage, RetryExhaustionSkipsStageAndKeepsPreImage) {
  auto design = verilog::read_verilog(benchgen::random_verilog(9, 5));
  Module& top = *design->top();
  const std::string before = backend::write_rtlil(top);

  opt::RecoveryContext ctx;
  ctx.options.enabled = true;
  ctx.options.max_retries = 2;
  int calls = 0;
  const auto out = opt::run_protected_stage(
      top, "stage", &ctx, nullptr, [&](Module& m, int) {
        ++calls;
        m.new_wire(1);
        throw util::FaultInjected("test.site", util::bit_unit_id("u", calls));
      });

  EXPECT_FALSE(out.committed);
  EXPECT_TRUE(out.skipped);
  EXPECT_EQ(out.attempts, 3); // 1 + max_retries
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(ctx.stats.rollbacks, 3u);
  EXPECT_EQ(ctx.stats.retries, 2u);
  EXPECT_EQ(ctx.stats.stages_skipped, 1u);
  EXPECT_TRUE(ctx.stats.events.back().skipped);
  EXPECT_EQ(backend::write_rtlil(top), before); // pre-stage image survives
}

TEST(ProtectedStage, ParanoidCatchesSilentCorruptionAndBisects) {
  // A "buggy transform": attempt 1 silently inverts the first output — no
  // throw, no fault halt, Module::check still passes. Only the paranoid CEC
  // can catch it.
  auto design = verilog::read_verilog(
      "module top(a, b, y);\n  input [3:0] a, b;\n  output [3:0] y;\n"
      "  assign y = a & b;\nendmodule\n");
  Module& top = *design->top();
  const std::string before = backend::write_rtlil(top);

  opt::RecoveryContext ctx;
  ctx.options.enabled = true;
  ctx.options.paranoid = true;
  int calls = 0;
  const auto out = opt::run_protected_stage(
      top, "stage", &ctx, nullptr, [&](Module& m, int) {
        if (++calls > 1)
          return; // bisection probes and the retry behave correctly
        rtlil::Wire* y = m.wire("y");
        ASSERT_NE(y, nullptr);
        for (const auto& c : m.cells()) {
          if (c->has_port(rtlil::Port::Y) &&
              c->port(rtlil::Port::Y) == rtlil::SigSpec(y)) {
            // Interpose an inverter between the driver and the output.
            rtlil::Wire* t = m.new_wire(y->width());
            c->set_port(rtlil::Port::Y, rtlil::SigSpec(t));
            m.connect(rtlil::SigSpec(y), m.Not(rtlil::SigSpec(t)));
            return;
          }
        }
        FAIL() << "output driver not found";
      });

  EXPECT_TRUE(out.committed);
  EXPECT_EQ(ctx.stats.paranoid_miscompares, 1u);
  EXPECT_GE(ctx.stats.paranoid_checks, 2u);
  EXPECT_EQ(ctx.stats.rollbacks, 1u);
  ASSERT_EQ(ctx.stats.events.size(), 1u);
  EXPECT_EQ(ctx.stats.events[0].reason, "paranoid-miscompare");
  EXPECT_EQ(backend::write_rtlil(top), before); // retry committed a no-op body
}

// --- repro bundles -----------------------------------------------------------

TEST(ReproBundles, WriteReadRoundTrip) {
  util::ReproBundle bundle;
  bundle.design_verilog = "module top(a, y);\n  input a;\n  output y;\n"
                          "  assign y = a;\nendmodule\n";
  bundle.stage = "fraig";
  bundle.reason = "fault-halt";
  bundle.site = "fraig.solve";
  bundle.unit = 0xdeadbeef12345678ull;
  bundle.attempt = 2;
  bundle.plan_active = true;
  bundle.plan.seed = 42;
  bundle.plan.throw_permille = 120;
  bundle.plan.unknown_permille = 7;
  bundle.plan.exhaust_after = 99;
  bundle.plan.throw_after = 5;
  bundle.plan.site_filter = "fraig";
  bundle.plan.unit_keyed = true;
  bundle.quarantine = "fraig.solve:2a,sweep.region:1";
  bundle.options = "threads=2 enable_rewrite=1";

  const std::string dir = fresh_dir("bundle-rt");
  const std::string path = util::write_repro_bundle(dir, bundle, 3);
  ASSERT_FALSE(path.empty());

  util::ReproBundle back;
  std::string error;
  ASSERT_TRUE(util::read_repro_bundle(path, &back, &error)) << error;
  EXPECT_EQ(back.design_verilog, bundle.design_verilog);
  EXPECT_EQ(back.stage, bundle.stage);
  EXPECT_EQ(back.reason, bundle.reason);
  EXPECT_EQ(back.site, bundle.site);
  EXPECT_EQ(back.unit, bundle.unit);
  EXPECT_EQ(back.attempt, bundle.attempt);
  ASSERT_TRUE(back.plan_active);
  EXPECT_EQ(back.plan.seed, bundle.plan.seed);
  EXPECT_EQ(back.plan.throw_permille, bundle.plan.throw_permille);
  EXPECT_EQ(back.plan.unknown_permille, bundle.plan.unknown_permille);
  EXPECT_EQ(back.plan.exhaust_after, bundle.plan.exhaust_after);
  EXPECT_EQ(back.plan.throw_after, bundle.plan.throw_after);
  EXPECT_EQ(back.plan.site_filter, bundle.plan.site_filter);
  EXPECT_EQ(back.plan.unit_keyed, bundle.plan.unit_keyed);
  EXPECT_EQ(back.quarantine, bundle.quarantine);
  EXPECT_EQ(back.options, bundle.options);
  std::filesystem::remove_all(dir);

  EXPECT_FALSE(util::read_repro_bundle(dir + "/missing", &back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ReproBundles, EmittedDuringRecoveryAndReplayDeterministically) {
  // Run a recovering pass until a fraig bundle is emitted, then replay its
  // design.v in-process under the recorded plan + quarantine and demand the
  // exact same site:unit faults again.
  const std::string dir = fresh_dir("bundle-emit");
  std::string bundle_dir;
  for (uint64_t seed = 1; seed <= 30 && bundle_dir.empty(); ++seed) {
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    Module& top = *design->top();
    core::SmartlyOptions options;
    options.threads = 2;
    options.enable_fraig = true;
    options.recovery.enabled = true;
    options.recovery.repro_dir = dir;
    util::FaultScope scope(unit_plan(seed, "fraig"));
    const auto stats = core::smartly_flow(top, options);
    for (const util::RecoveryEvent& ev : stats.recovery.events)
      if (!ev.bundle_dir.empty() && ev.stage == "fraig" && ev.unit != 0)
        bundle_dir = ev.bundle_dir;
  }
  ASSERT_FALSE(bundle_dir.empty()) << "no seed produced a fraig bundle";

  util::ReproBundle bundle;
  std::string error;
  ASSERT_TRUE(util::read_repro_bundle(bundle_dir, &bundle, &error)) << error;
  ASSERT_TRUE(bundle.plan_active);
  EXPECT_EQ(bundle.stage, "fraig");
  ASSERT_NE(bundle.unit, 0u);

  // Replay twice: determinism means identical fault attribution both times.
  for (int run = 0; run < 2; ++run) {
    SCOPED_TRACE("replay run " + std::to_string(run));
    auto design = verilog::read_verilog(bundle.design_verilog);
    ASSERT_NE(design->top(), nullptr);
    const util::QuarantineSet quarantine = util::QuarantineSet::parse(bundle.quarantine);
    util::ResourceGuard guard;
    sweep::FraigOptions options;
    options.threads = 2;
    options.guard = &guard;
    options.quarantine = &quarantine;
    std::string site;
    uint64_t unit = 0;
    util::FaultScope scope(bundle.plan);
    try {
      sweep::fraig_sweep(*design->top(), options);
      const util::FaultReport fr = guard.fault_report();
      ASSERT_TRUE(fr.valid) << "replay did not reproduce a fault";
      site = fr.site;
      unit = fr.unit;
    } catch (const util::FaultInjected& e) {
      site = e.site();
      unit = e.unit();
    }
    EXPECT_EQ(site, bundle.site);
    EXPECT_EQ(unit, bundle.unit);
  }
  std::filesystem::remove_all(dir);
}

// --- seeded schedules through the full pass ---------------------------------

namespace {

/// >= 10 unit-keyed schedules against one engine family: the pass must
/// complete, recover (or degrade) internally, and stay CEC-equivalent.
/// `force_sat_stage` disables the oracle's simulation filter so queries
/// actually reach the oracle.solve injection point (on small random
/// circuits the filter otherwise settles everything short of SAT).
void run_engine_schedules(const char* filter, bool enable_fraig, bool enable_rewrite,
                          bool force_sat_stage = false) {
  uint64_t recovery_events = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE(std::string(filter) + " seed " + std::to_string(seed));
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    const auto golden = rtlil::clone_design(*design);
    Module& top = *design->top();
    core::SmartlyOptions options;
    options.threads = 2;
    options.enable_fraig = enable_fraig;
    options.enable_rewrite = enable_rewrite;
    options.recovery.enabled = true;
    if (force_sat_stage)
      options.sat.sim_max_inputs = 0;
    core::SmartlyStats stats;
    {
      util::FaultScope scope(unit_plan(seed, filter));
      stats = core::smartly_flow(top, options);
    }
    opt::opt_clean(top);
    expect_equivalent(*golden->top(), top, "recovering flow under fault schedule");
    EXPECT_GT(stats.recovery.stages, 0u);
    recovery_events += stats.recovery.events.size();
    // Every recovery event must be internally consistent.
    for (const util::RecoveryEvent& ev : stats.recovery.events) {
      EXPECT_FALSE(ev.stage.empty());
      EXPECT_FALSE(ev.reason.empty());
      EXPECT_GE(ev.attempt, 1);
      if (ev.quarantined) {
        EXPECT_NE(ev.unit, 0u);
      }
    }
  }
  // The schedules are hot enough that at least one seed recovers; without
  // this the suite could silently degenerate into testing nothing.
  EXPECT_GT(recovery_events, 0u) << filter;
}

} // namespace

TEST(RecoverySchedules, OracleSweep) {
  run_engine_schedules("oracle.solve", false, false, /*force_sat_stage=*/true);
}
TEST(RecoverySchedules, SweepEngine) { run_engine_schedules("sweep", false, false); }
TEST(RecoverySchedules, FraigEngine) { run_engine_schedules("fraig", true, false); }
TEST(RecoverySchedules, RewriteEngine) { run_engine_schedules("rewrite", false, true); }

// --- thread-count determinism ------------------------------------------------

TEST(RecoverySchedules, QuarantineIdenticalAcrossThreadCounts) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string src = benchgen::random_verilog(seed, 6);
    std::string first_quarantine, first_netlist;
    bool first = true;
    for (const int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      auto design = verilog::read_verilog(src);
      Module& top = *design->top();
      core::SmartlyOptions options;
      options.threads = threads;
      options.enable_rewrite = true;
      options.recovery.enabled = true;
      core::SmartlyStats stats;
      {
        util::FaultScope scope(unit_plan(seed, ""));
        stats = core::smartly_flow(top, options);
      }
      const std::string quarantine = quarantine_of(stats.recovery);
      const std::string netlist = backend::write_rtlil(top);
      if (first) {
        first = false;
        first_quarantine = quarantine;
        first_netlist = netlist;
      } else {
        EXPECT_EQ(quarantine, first_quarantine);
        EXPECT_EQ(netlist, first_netlist);
      }
    }
  }
}
