// Verilog parser: declarations, statements, expression precedence, case
// items, and error reporting.
#include "verilog/parser.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include "util/hashing.hpp"

using namespace smartly::verilog;

namespace {

ModuleAst parse_one(const std::string& src) {
  auto mods = parse_verilog(src);
  EXPECT_EQ(mods.size(), 1u);
  return std::move(mods.at(0));
}

} // namespace

TEST(Parser, EmptyModule) {
  const ModuleAst m = parse_one("module top; endmodule");
  EXPECT_EQ(m.name, "top");
  EXPECT_TRUE(m.port_order.empty());
  EXPECT_TRUE(m.decls.empty());
}

TEST(Parser, PortsAndDeclarations) {
  const ModuleAst m = parse_one(R"(
    module top(a, b, y);
      input [7:0] a, b;
      output reg [8:0] y;
      wire [3:0] t;
    endmodule
  )");
  ASSERT_EQ(m.port_order.size(), 3u);
  EXPECT_EQ(m.port_order[0], "a");
  ASSERT_EQ(m.decls.size(), 4u);
  EXPECT_EQ(m.decls[0].name, "a");
  EXPECT_EQ(m.decls[0].dir, Dir::Input);
  EXPECT_EQ(decl_width(m.decls[0]), 8);
  EXPECT_EQ(m.decls[2].name, "y");
  EXPECT_EQ(m.decls[2].dir, Dir::Output);
  EXPECT_TRUE(m.decls[2].is_reg);
  EXPECT_EQ(decl_width(m.decls[2]), 9);
  EXPECT_EQ(m.decls[3].dir, Dir::None);
  EXPECT_EQ(decl_width(m.decls[3]), 4);
}

TEST(Parser, ScalarDeclWidthOne) {
  const ModuleAst m = parse_one("module top(s); input s; endmodule");
  ASSERT_EQ(m.decls.size(), 1u);
  EXPECT_EQ(decl_width(m.decls[0]), 1);
}

TEST(Parser, AssignStatement) {
  const ModuleAst m = parse_one(R"(
    module top(a, b, y);
      input a, b; output y;
      assign y = a & b;
    endmodule
  )");
  ASSERT_EQ(m.assigns.size(), 1u);
  const auto& [lhs, rhs] = m.assigns[0];
  EXPECT_EQ(lhs->kind, ExprKind::Ident);
  EXPECT_EQ(lhs->name, "y");
  EXPECT_EQ(rhs->kind, ExprKind::Binary);
  EXPECT_EQ(rhs->bop, BinaryOp::And);
}

TEST(Parser, PrecedenceMulOverAdd) {
  const ModuleAst m = parse_one(R"(
    module top(a, b, c, y); input a, b, c; output y;
      assign y = a + b * c;
    endmodule
  )");
  const Expr* e = m.assigns[0].second.get();
  ASSERT_EQ(e->kind, ExprKind::Binary);
  EXPECT_EQ(e->bop, BinaryOp::Add);
  EXPECT_EQ(e->args[1]->bop, BinaryOp::Mul);
}

TEST(Parser, PrecedenceCompareOverLogicAnd) {
  const ModuleAst m = parse_one(R"(
    module top(a, b, c, d, y); input a, b, c, d; output y;
      assign y = a == b && c < d;
    endmodule
  )");
  const Expr* e = m.assigns[0].second.get();
  ASSERT_EQ(e->kind, ExprKind::Binary);
  EXPECT_EQ(e->bop, BinaryOp::LogicAnd);
  EXPECT_EQ(e->args[0]->bop, BinaryOp::Eq);
  EXPECT_EQ(e->args[1]->bop, BinaryOp::Lt);
}

TEST(Parser, TernaryIsRightAssociative) {
  const ModuleAst m = parse_one(R"(
    module top(a, b, c, d, e, y); input a, b, c, d, e; output y;
      assign y = a ? b : c ? d : e;
    endmodule
  )");
  const Expr* e = m.assigns[0].second.get();
  ASSERT_EQ(e->kind, ExprKind::Ternary);
  EXPECT_EQ(e->args[0]->name, "a");
  EXPECT_EQ(e->args[1]->name, "b");
  EXPECT_EQ(e->args[2]->kind, ExprKind::Ternary);
}

TEST(Parser, UnaryOperators) {
  const ModuleAst m = parse_one(R"(
    module top(a, y); input [3:0] a; output y;
      assign y = !(&a) ^ |a;
    endmodule
  )");
  const Expr* e = m.assigns[0].second.get();
  ASSERT_EQ(e->kind, ExprKind::Binary);
  EXPECT_EQ(e->bop, BinaryOp::Xor);
  EXPECT_EQ(e->args[0]->kind, ExprKind::Unary);
  EXPECT_EQ(e->args[0]->uop, UnaryOp::Not);
  EXPECT_EQ(e->args[1]->uop, UnaryOp::RedOr);
}

TEST(Parser, ConcatAndReplicate) {
  const ModuleAst m = parse_one(R"(
    module top(a, b, y); input [3:0] a, b; output [11:0] y;
      assign y = {a, {2{b}}};
    endmodule
  )");
  const Expr* e = m.assigns[0].second.get();
  ASSERT_EQ(e->kind, ExprKind::Concat);
  ASSERT_EQ(e->args.size(), 2u);
  EXPECT_EQ(e->args[1]->kind, ExprKind::Repeat);
  EXPECT_EQ(e->args[1]->repeat_count, 2);
}

TEST(Parser, BitSelectAndPartSelect) {
  const ModuleAst m = parse_one(R"(
    module top(a, i, y); input [7:0] a; input [2:0] i; output [3:0] y;
      assign y = {a[i], a[6:4]};
    endmodule
  )");
  const Expr* e = m.assigns[0].second.get();
  ASSERT_EQ(e->args[0]->kind, ExprKind::Index);
  EXPECT_EQ(e->args[0]->name, "a");
  ASSERT_EQ(e->args[1]->kind, ExprKind::Slice);
  EXPECT_EQ(e->args[1]->msb, 6);
  EXPECT_EQ(e->args[1]->lsb, 4);
}

TEST(Parser, AlwaysCombIfElse) {
  const ModuleAst m = parse_one(R"(
    module top(c, a, b, y); input c; input [3:0] a, b; output reg [3:0] y;
      always @(*) begin
        if (c) y = a; else y = b;
      end
    endmodule
  )");
  ASSERT_EQ(m.always_blocks.size(), 1u);
  EXPECT_TRUE(m.always_blocks[0].is_comb);
  const Stmt* body = m.always_blocks[0].body.get();
  ASSERT_EQ(body->kind, StmtKind::Block);
  ASSERT_EQ(body->stmts.size(), 1u);
  const Stmt* ifs = body->stmts[0].get();
  ASSERT_EQ(ifs->kind, StmtKind::If);
  EXPECT_NE(ifs->else_stmt, nullptr);
}

TEST(Parser, AlwaysPosedgeNonblocking) {
  const ModuleAst m = parse_one(R"(
    module top(clk, d, q); input clk; input [3:0] d; output reg [3:0] q;
      always @(posedge clk) q <= d;
    endmodule
  )");
  ASSERT_EQ(m.always_blocks.size(), 1u);
  EXPECT_FALSE(m.always_blocks[0].is_comb);
  EXPECT_EQ(m.always_blocks[0].clock, "clk");
  const Stmt* s = m.always_blocks[0].body.get();
  ASSERT_EQ(s->kind, StmtKind::Assign);
  EXPECT_TRUE(s->nonblocking);
}

TEST(Parser, CaseWithDefaultAndMultiLabels) {
  const ModuleAst m = parse_one(R"(
    module top(s, y); input [1:0] s; output reg y;
      always @(*) case (s)
        2'b00, 2'b01: y = 1'b0;
        2'b10: y = 1'b1;
        default: y = 1'bx;
      endcase
    endmodule
  )");
  const Stmt* body = m.always_blocks[0].body.get();
  ASSERT_EQ(body->kind, StmtKind::Case);
  EXPECT_FALSE(body->is_casez);
  ASSERT_EQ(body->items.size(), 3u);
  EXPECT_EQ(body->items[0].labels.size(), 2u);
  EXPECT_TRUE(body->items[2].is_default);
}

TEST(Parser, CasezKeyword) {
  const ModuleAst m = parse_one(R"(
    module top(s, y); input [2:0] s; output reg y;
      always @(*) casez (s)
        3'b1zz: y = 1'b1;
        default: y = 1'b0;
      endcase
    endmodule
  )");
  EXPECT_TRUE(m.always_blocks[0].body->is_casez);
}

TEST(Parser, ParameterAndLocalparam) {
  const ModuleAst m = parse_one(R"(
    module top(y); output [7:0] y;
      parameter W = 8;
      localparam V = 42;
      assign y = V;
    endmodule
  )");
  ASSERT_EQ(m.parameters.size(), 2u);
  EXPECT_EQ(m.parameters[0].name, "W");
  EXPECT_EQ(m.parameters[0].value.as_uint(), 8u);
  EXPECT_EQ(m.parameters[1].value.as_uint(), 42u);
}

TEST(Parser, MultipleModules) {
  const auto mods = parse_verilog(R"(
    module a; endmodule
    module b; endmodule
  )");
  ASSERT_EQ(mods.size(), 2u);
  EXPECT_EQ(mods[0].name, "a");
  EXPECT_EQ(mods[1].name, "b");
}

TEST(Parser, ShiftOperators) {
  const ModuleAst m = parse_one(R"(
    module top(a, b, y); input [7:0] a; input [2:0] b; output [7:0] y;
      assign y = (a << b) | (a >> 1) | (a >>> 2);
    endmodule
  )");
  EXPECT_EQ(m.assigns.size(), 1u);
}

// --- error paths -----------------------------------------------------------

TEST(ParserErrors, MissingSemicolonThrows) {
  EXPECT_THROW(parse_verilog("module top(a) input a; endmodule"), std::runtime_error);
}

TEST(ParserErrors, MissingEndmoduleThrows) {
  EXPECT_THROW(parse_verilog("module top(a); input a;"), std::runtime_error);
}

TEST(ParserErrors, UnbalancedParenThrows) {
  EXPECT_THROW(parse_verilog(R"(
    module top(a, y); input a; output y;
      assign y = (a & a;
    endmodule)"),
               std::runtime_error);
}

TEST(ParserErrors, BadCaseItemThrows) {
  EXPECT_THROW(parse_verilog(R"(
    module top(s, y); input s; output reg y;
      always @(*) case (s)
        : y = 1'b0;
      endcase
    endmodule)"),
               std::runtime_error);
}

TEST(ParserErrors, ErrorMessageIncludesLine) {
  try {
    parse_verilog("module top(a);\ninput a;\nassign = 1;\nendmodule");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos)
        << "message should contain line 3: " << e.what();
  }
}

// --- robustness: malformed inputs must throw, never crash -------------------

class ParserFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserFuzz, MalformedInputThrowsCleanly) {
  EXPECT_THROW(parse_verilog(GetParam()), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserFuzz,
    ::testing::Values(
        "module",                                         // truncated header
        "module ;",                                       // missing name
        "module t(; endmodule",                           // bad port list
        "module t(a; endmodule",                          // unclosed ports
        "module t(a); input [a:0] a; endmodule",          // non-const range
        "module t(a); input [7:0 a; endmodule",           // unclosed range
        "module t(); assign = ; endmodule",               // empty assign
        "module t(y); output y; assign y = 3 + ; endmodule",
        "module t(y); output y; assign y = (1; endmodule",
        "module t(y); output y; assign y = {1'b0; endmodule",
        "module t(y); output y; assign y = {2{1'b0}; endmodule",
        "module t(s); input s; always @(posedge) s <= 1; endmodule",
        "module t(s); input s; always @(*) case (s) endcase endmodule garbage",
        "module t(s,y); input s; output reg y; always @(*) case (s) 1'b0 y = 1; endcase endmodule", // missing colon
        "module t(y); output y; parameter = 3; endmodule",
        "endmodule",
        "module t(y); output y; assign y = 1'b0;",        // missing endmodule
        "module t(y); output [1:0:2] y; endmodule"));

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  // Not a correctness statement — just "throws or parses, never UB".
  const char* frags[] = {"module", "endmodule", "assign", "(", ")", ";", "=",
                         "a",      "1'b0",      "case",   "[", "]", "?", ":",
                         "begin",  "end",       "always", "@", "*", ","};
  smartly::Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::string src;
    const int len = int(rng.range(1, 40));
    for (int i = 0; i < len; ++i) {
      src += frags[rng.below(sizeof(frags) / sizeof(frags[0]))];
      src += ' ';
    }
    try {
      parse_verilog(src);
    } catch (const std::runtime_error&) {
      // expected for almost every soup
    }
  }
  SUCCEED();
}
