// Property-based tests: randomized circuits driven through every optimizer
// with machine-checked invariants —
//   P1  every flow preserves functional equivalence (CEC)
//   P2  optimization never increases AIG area
//   P3  word-level evaluator == AIG bit-blast semantics (random netlists)
//   P4  smartly_flow(x) is idempotent on area
//   P5  restructuring + redundancy elimination compose soundly in any order
#include "aig/aigmap.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_reduce.hpp"
#include "opt/pipeline.hpp"
#include "core/mux_restructure.hpp"
#include "core/sat_redundancy.hpp"
#include "rtlil/sigmap.hpp"
#include "sim/eval.hpp"
#include "util/hashing.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using rtlil::Const;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;
using rtlil::Wire;

// --- P1 + P2: flows preserve equivalence and never grow the circuit ---------

class FlowProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowProperties, AllFlowsEquivalentAndMonotone) {
  const uint64_t seed = GetParam();
  const std::string src = benchgen::random_verilog(seed, 5);

  size_t area_original = 0;
  {
    auto d = verilog::read_verilog(src);
    opt::original_flow(*d->top());
    area_original = aig::aig_area(*d->top());
  }
  size_t area_yosys = 0;
  {
    auto d = verilog::read_verilog(src);
    auto golden = rtlil::clone_design(*d);
    opt::yosys_flow(*d->top());
    const auto r = cec::check_equivalence(*golden->top(), *d->top());
    ASSERT_TRUE(r.equivalent) << "yosys_flow seed=" << seed << " out=" << r.failing_output;
    area_yosys = aig::aig_area(*d->top());
  }
  size_t area_smartly = 0;
  {
    auto d = verilog::read_verilog(src);
    auto golden = rtlil::clone_design(*d);
    core::smartly_flow(*d->top());
    const auto r = cec::check_equivalence(*golden->top(), *d->top());
    ASSERT_TRUE(r.equivalent) << "smartly_flow seed=" << seed
                              << " out=" << r.failing_output;
    area_smartly = aig::aig_area(*d->top());
  }
  EXPECT_LE(area_yosys, area_original) << seed;
  EXPECT_LE(area_smartly, area_yosys) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowProperties, ::testing::Range<uint64_t>(1, 30));

// --- P3: evaluator vs AIG on random word-level netlists ----------------------

class EvalVsAig : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvalVsAig, RandomNetlistSemanticsAgree) {
  const uint64_t seed = GetParam();
  rtlil::Design design;
  Module* mod = benchgen::random_netlist(design, "rand", seed, 20);

  const aig::AigMap m = aig::aigmap(*mod);
  const rtlil::SigMap sm(*mod);

  std::vector<Wire*> ins;
  for (const auto& w : mod->wires())
    if (w->port_input)
      ins.push_back(w.get());

  Rng rng(seed * 77 + 1);
  for (int trial = 0; trial < 16; ++trial) {
    sim::Evaluator ev(*mod);
    std::vector<uint64_t> aig_in(m.aig.num_inputs(), 0);
    // Map AIG input node -> index once.
    std::unordered_map<uint32_t, size_t> input_index;
    for (size_t k = 0; k < m.aig.inputs().size(); ++k)
      input_index[m.aig.inputs()[k]] = k;

    for (Wire* w : ins) {
      const uint64_t v = rng.next() & ((w->width() >= 64) ? ~0ull
                                                          : ((uint64_t(1) << w->width()) - 1));
      ev.set_input(w, Const(v, w->width()));
      for (int i = 0; i < w->width(); ++i) {
        const SigBit canon = sm(SigBit(w, i));
        const auto it = m.bits.find(canon);
        if (it == m.bits.end())
          continue;
        const auto ii = input_index.find(aig::lit_node(it->second));
        if (ii != input_index.end())
          aig_in[ii->second] = ((v >> i) & 1) ? ~0ull : 0ull;
      }
    }
    ev.run();
    const auto words = m.aig.simulate(aig_in);

    for (const auto& w : mod->wires()) {
      if (!w->port_output)
        continue;
      for (int i = 0; i < w->width(); ++i) {
        const SigBit raw(w.get(), i);
        const State want = ev.value(sm(raw));
        if (want != State::S0 && want != State::S1)
          continue; // x: aigmap resolves to 0, evaluator keeps x
        const SigBit canon = sm(raw);
        if (canon.is_const())
          continue;
        const auto it = m.bits.find(canon);
        ASSERT_NE(it, m.bits.end()) << w->name() << "[" << i << "]";
        const uint64_t got = aig::Aig::sim_lit(words, it->second) & 1;
        EXPECT_EQ(got, want == State::S1 ? 1u : 0u)
            << "seed=" << seed << " trial=" << trial << " " << w->name() << "[" << i << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalVsAig, ::testing::Range<uint64_t>(1, 40));

// --- P4: idempotence ---------------------------------------------------------

class Idempotence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Idempotence, SecondSmartlyRunIsANoopOnArea) {
  const uint64_t seed = GetParam();
  const std::string src = benchgen::random_verilog(seed, 4);
  auto d = verilog::read_verilog(src);
  core::smartly_flow(*d->top());
  const size_t once = aig::aig_area(*d->top());
  core::smartly_flow(*d->top());
  const size_t twice = aig::aig_area(*d->top());
  EXPECT_LE(twice, once) << seed;
  // Allow tiny additional gains (second pass may see newly exposed trees)
  // but a blow-up indicates the pass is not converging.
  EXPECT_GE(twice + twice / 4 + 4, once) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Idempotence, ::testing::Range<uint64_t>(1, 12));

// --- P5: engine composition order --------------------------------------------

class EngineOrder : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineOrder, BothOrdersSoundAndComparable) {
  const uint64_t seed = GetParam();
  const benchgen::Profile p{.case_chains = 2,
                            .dependent = 2,
                            .same_ctrl = 1,
                            .decoders = 1,
                            .datapath = 1,
                            .width = 8};
  const std::string src = benchgen::generate_circuit("mix", p, seed).verilog;

  auto run = [&](bool rebuild_first) {
    auto d = verilog::read_verilog(src);
    auto golden = rtlil::clone_design(*d);
    opt::coarse_opt(*d->top());
    if (rebuild_first) {
      core::mux_restructure(*d->top(), {});
      core::sat_redundancy(*d->top(), {});
    } else {
      core::sat_redundancy(*d->top(), {});
      core::mux_restructure(*d->top(), {});
    }
    opt::coarse_opt(*d->top());
    const auto r = cec::check_equivalence(*golden->top(), *d->top());
    EXPECT_TRUE(r.equivalent) << "seed=" << seed << " rebuild_first=" << rebuild_first
                              << " out=" << r.failing_output;
    return aig::aig_area(*d->top());
  };

  const size_t rebuild_then_sat = run(true);
  const size_t sat_then_rebuild = run(false);
  // Both orders must be sound; areas may differ but not wildly.
  const size_t lo = std::min(rebuild_then_sat, sat_then_rebuild);
  const size_t hi = std::max(rebuild_then_sat, sat_then_rebuild);
  EXPECT_LE(hi, lo * 2 + 16) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOrder, ::testing::Range<uint64_t>(1, 10));

// --- bonus: evaluator self-consistency on public circuits --------------------

TEST(PropertySmoke, PublicSuiteSmallProfilesOptimizeSoundly) {
  benchgen::Profile p = benchgen::profile_for("riscv");
  p.case_chains = 2;
  p.dependent = 2;
  p.same_ctrl = 1;
  p.decoders = 1;
  p.datapath = 1;
  p.registered_outputs = 1;
  const auto c = benchgen::generate_circuit("riscv_small", p, 5);
  auto d = verilog::read_verilog(c.verilog);
  auto golden = rtlil::clone_design(*d);
  core::smartly_flow(*d->top());
  const auto r = cec::check_equivalence(*golden->top(), *d->top());
  EXPECT_TRUE(r.equivalent) << r.failing_output;
}

// --- P6: the opt_reduce extension composes with the full pipeline ------------

class OptReduceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptReduceProperty, ReduceAfterSmartlyStaysEquivalentAndMonotone) {
  const uint64_t seed = GetParam();
  const std::string src = benchgen::random_verilog(seed, 4);
  auto d = verilog::read_verilog(src);
  auto golden = rtlil::clone_design(*d);
  core::smartly_flow(*d->top());
  const size_t area_smartly = aig::aig_area(*d->top());
  opt::opt_reduce(*d->top());
  opt::opt_clean(*d->top());
  const auto r = cec::check_equivalence(*golden->top(), *d->top());
  ASSERT_TRUE(r.equivalent) << "seed " << seed << " out=" << r.failing_output;
  EXPECT_LE(aig::aig_area(*d->top()), area_smartly + 2) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptReduceProperty, ::testing::Range<uint64_t>(1, 12));

// --- P7: random netlists (with pmux and signed cells) survive every pass ----

class NetlistPassProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetlistPassProperty, AllPassesSoundOnRawNetlists) {
  const uint64_t seed = GetParam();
  rtlil::Design d;
  Module* m = benchgen::random_netlist(d, "top", seed, 30);
  auto golden = rtlil::clone_design(d);

  opt::coarse_opt(*m);
  core::mux_restructure(*m, {});
  core::sat_redundancy(*m, {});
  opt::opt_reduce(*m);
  opt::coarse_opt(*m);
  EXPECT_NO_THROW(m->check());
  const auto r = cec::check_equivalence(*golden->top(), *m);
  EXPECT_TRUE(r.equivalent) << "seed " << seed << " out=" << r.failing_output;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistPassProperty, ::testing::Range<uint64_t>(1, 25));
