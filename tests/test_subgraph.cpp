// Sub-graph extraction (§II): distance-k ball, Theorem II.1 relevance
// filter, boundary computation, and sequential-cell exclusion.
#include "core/subgraph.hpp"
#include "rtlil/module.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using namespace smartly;
using core::Subgraph;
using core::SubgraphOptions;
using core::extract_subgraph;
using rtlil::Cell;
using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::NetlistIndex;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  Fixture() { mod = design.add_module("top"); }
  Wire* in(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }

  bool contains(const Subgraph& sg, CellType t) const {
    return std::any_of(sg.cells.begin(), sg.cells.end(),
                       [&](Cell* c) { return c->type() == t; });
  }
};

} // namespace

TEST(Subgraph, ContainsDriverOfTarget) {
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);

  NetlistIndex index(*f.mod);
  const SigBit target = index.sigmap()(sr[0]);
  const Subgraph sg =
      extract_subgraph(*f.mod, index, target, {index.sigmap()(SigBit(s, 0))}, {});
  ASSERT_EQ(sg.cells.size(), 1u);
  EXPECT_EQ(sg.cells[0]->type(), CellType::Or);
  // Boundary = the or's inputs (s, r).
  EXPECT_EQ(sg.boundary.size(), 2u);
}

TEST(Subgraph, DepthLimitsBall) {
  // not(not(not(...s))) chain of 6; with small k only nearby cells enter.
  Fixture f;
  Wire* s = f.in("s");
  SigSpec v(s);
  for (int i = 0; i < 6; ++i)
    v = f.mod->Not(v);
  f.mod->connect(SigSpec(f.out("y")), v);

  NetlistIndex index(*f.mod);
  const SigBit target = index.sigmap()(v[0]);
  SubgraphOptions small;
  small.depth = 1;
  small.relevance_filter = false;
  SubgraphOptions large;
  large.depth = 10;
  large.relevance_filter = false;
  const Subgraph sg_small = extract_subgraph(*f.mod, index, target, {}, small);
  const Subgraph sg_large = extract_subgraph(*f.mod, index, target, {}, large);
  EXPECT_LT(sg_small.cells.size(), sg_large.cells.size());
  EXPECT_EQ(sg_large.cells.size(), 6u);
}

TEST(Subgraph, RelevanceFilterDropsSideLogic) {
  // Target's cone: or(s, r). Side logic hanging off s (large xor tree) is in
  // the distance ball but is NOT an ancestor of target/known => dismissed.
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  Wire* n1 = f.in("n1", 8);
  Wire* n2 = f.in("n2", 8);
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);
  // Side consumer of s: (s ? n1 : n2) ^ n1 ... readers of s, not ancestors.
  const SigSpec side1 = f.mod->Mux(SigSpec(n1), SigSpec(n2), SigSpec(s));
  const SigSpec side2 = f.mod->Xor(side1, SigSpec(n1));
  f.mod->connect(SigSpec(f.out("z", 8)), side2);

  NetlistIndex index(*f.mod);
  const SigBit target = index.sigmap()(sr[0]);
  SubgraphOptions no_filter;
  no_filter.relevance_filter = false;
  const Subgraph unfiltered =
      extract_subgraph(*f.mod, index, target, {index.sigmap()(SigBit(s, 0))}, no_filter);
  const Subgraph filtered =
      extract_subgraph(*f.mod, index, target, {index.sigmap()(SigBit(s, 0))}, {});
  EXPECT_GT(unfiltered.cells.size(), filtered.cells.size());
  EXPECT_EQ(filtered.cells.size(), 1u);
  EXPECT_FALSE(f.contains(filtered, CellType::Mux));
  EXPECT_FALSE(f.contains(filtered, CellType::Xor));
  // gates_before_filter reports the ball size for the stats.
  EXPECT_GE(filtered.gates_before_filter, filtered.cells.size());
}

TEST(Subgraph, KeepsAncestorsOfKnownSignals) {
  // known = output of and(a, b); its driver must be kept so the path
  // condition can be asserted on it.
  Fixture f;
  Wire* a = f.in("a");
  Wire* b = f.in("b");
  Wire* t = f.in("t");
  const SigSpec k = f.mod->And(SigSpec(a), SigSpec(b));
  const SigSpec tgt = f.mod->Or(SigSpec(t), k);
  f.mod->connect(SigSpec(f.out("y")), tgt);

  NetlistIndex index(*f.mod);
  const Subgraph sg = extract_subgraph(*f.mod, index, index.sigmap()(tgt[0]),
                                       {index.sigmap()(k[0])}, {});
  EXPECT_TRUE(f.contains(sg, CellType::And));
  EXPECT_TRUE(f.contains(sg, CellType::Or));
}

TEST(Subgraph, SequentialCellsExcluded) {
  // dff between s and the or: the dff must not be pulled in (sub-graph stays
  // a combinational DAG; q is a boundary input).
  Fixture f;
  Wire* clk = f.in("clk");
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  Wire* q = f.mod->add_wire("q", 1);
  f.mod->add_dff(SigSpec(s), SigSpec(q), SigSpec(clk));
  const SigSpec sr = f.mod->Or(SigSpec(q), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);

  NetlistIndex index(*f.mod);
  const Subgraph sg = extract_subgraph(*f.mod, index, index.sigmap()(sr[0]),
                                       {index.sigmap()(SigBit(q, 0))}, {});
  EXPECT_FALSE(f.contains(sg, CellType::Dff));
  // q must appear as a boundary bit.
  const SigBit qb = index.sigmap()(SigBit(q, 0));
  EXPECT_NE(std::find(sg.boundary.begin(), sg.boundary.end(), qb), sg.boundary.end());
}

TEST(Subgraph, EmptyWhenTargetIsPrimaryInput) {
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);

  NetlistIndex index(*f.mod);
  // Target = s itself (no driver): relevance filter keeps nothing.
  const Subgraph sg =
      extract_subgraph(*f.mod, index, index.sigmap()(SigBit(s, 0)), {}, {});
  EXPECT_TRUE(sg.cells.empty());
}

TEST(Subgraph, BoundaryBitsAreExactlyUndrivenReads) {
  Fixture f;
  Wire* a = f.in("a");
  Wire* b = f.in("b");
  Wire* c = f.in("c");
  const SigSpec ab = f.mod->And(SigSpec(a), SigSpec(b));
  const SigSpec y = f.mod->Or(ab, SigSpec(c));
  f.mod->connect(SigSpec(f.out("y")), y);

  NetlistIndex index(*f.mod);
  const Subgraph sg = extract_subgraph(*f.mod, index, index.sigmap()(y[0]), {}, {});
  ASSERT_EQ(sg.cells.size(), 2u);
  // Boundary: a, b, c (ab is driven inside).
  EXPECT_EQ(sg.boundary.size(), 3u);
  for (Wire* w : {a, b, c}) {
    const SigBit bit = index.sigmap()(SigBit(w, 0));
    EXPECT_NE(std::find(sg.boundary.begin(), sg.boundary.end(), bit), sg.boundary.end())
        << w->name();
  }
}

TEST(Subgraph, WideCellsEnterAsWholeCells) {
  // Multi-bit eq driver: one cell in the sub-graph even though 4 bits feed it.
  Fixture f;
  Wire* s = f.in("s", 4);
  const SigSpec e = f.mod->Eq(SigSpec(s), SigSpec(rtlil::Const(5, 4)));
  f.mod->connect(SigSpec(f.out("y")), e);

  NetlistIndex index(*f.mod);
  const Subgraph sg = extract_subgraph(*f.mod, index, index.sigmap()(e[0]), {}, {});
  ASSERT_EQ(sg.cells.size(), 1u);
  EXPECT_EQ(sg.cells[0]->type(), CellType::Eq);
  EXPECT_EQ(sg.boundary.size(), 4u); // the four selector bits
}

TEST(Subgraph, Fig3ShapeKeepsOnlyControlCone) {
  // The paper's Fig. 3: muxtree with controls s and s|r plus a datapath.
  // Extracting around the inner control (s|r) with known={s} must keep only
  // the or cell, not the datapath muxes.
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  Wire* a = f.in("a", 8);
  Wire* b = f.in("b", 8);
  Wire* c = f.in("c", 8);
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  const SigSpec inner = f.mod->Mux(SigSpec(b), SigSpec(a), sr); // sr ? a : b
  const SigSpec root = f.mod->Mux(SigSpec(c), inner, SigSpec(s));
  f.mod->connect(SigSpec(f.out("y", 8)), root);

  NetlistIndex index(*f.mod);
  const Subgraph sg = extract_subgraph(*f.mod, index, index.sigmap()(sr[0]),
                                       {index.sigmap()(SigBit(s, 0))}, {});
  ASSERT_EQ(sg.cells.size(), 1u);
  EXPECT_EQ(sg.cells[0]->type(), CellType::Or);
  // Paper: "the method can dismiss about 80% gates in the sub-graph" — here
  // the ball contains the muxes too, so the filter must shrink it.
  EXPECT_GT(sg.gates_before_filter, sg.cells.size());
}
