// SAT-sweeping (fraig) engine: duplicate-cone / complement-pair / constant
// merges, randomized fraig-then-CEC properties, thread-count determinism,
// signature-refinement convergence, NetlistIndex::add_cell maintenance, and
// the structural key shared with opt_merge.
#include "backend/write_rtlil.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_merge.hpp"
#include "opt/pipeline.hpp"
#include "rtlil/module.hpp"
#include "rtlil/topo.hpp"
#include "sweep/equiv_classes.hpp"
#include "sweep/fraig_engine.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using namespace smartly;
using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  Fixture() { mod = design.add_module("top"); }
  Wire* in(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }
};

sweep::FraigOptions serial_options() {
  sweep::FraigOptions o;
  o.threads = 1;
  return o;
}

void expect_equivalent(const Module& gold, const Module& gate, const char* label) {
  const auto r = cec::check_equivalence(gold, gate);
  EXPECT_TRUE(r.equivalent) << label << ": differs at " << r.failing_output;
}

} // namespace

TEST(Fraig, MergesDuplicateCones) {
  // y1 reads a&b, y2 reads the same function built as ~(~a|~b): opt_merge
  // cannot see it (different cells), the fraig engine must.
  Fixture f;
  Wire* a = f.in("a");
  Wire* b = f.in("b");
  Wire* y1 = f.out("y1");
  Wire* y2 = f.out("y2");
  f.mod->connect(SigSpec(y1), f.mod->And(SigSpec(a), SigSpec(b)));
  const SigSpec na = f.mod->Not(SigSpec(a));
  const SigSpec nb = f.mod->Not(SigSpec(b));
  f.mod->connect(SigSpec(y2), f.mod->Not(f.mod->Or(na, nb)));

  const auto golden = rtlil::clone_design(f.design);
  const sweep::FraigStats stats = sweep::fraig_sweep(*f.mod, serial_options());
  opt::opt_clean(*f.mod);

  EXPECT_GE(stats.proved_equal + stats.proved_structural, 1u);
  EXPECT_EQ(f.mod->cell_count(), 1u); // one And survives
  expect_equivalent(*golden->top(), *f.mod, "duplicate cones");
}

TEST(Fraig, MergesComplementPairThroughInverter) {
  // y1 = a^b as Xor; y2 = the complement built from and/or gates (not an
  // Xnor cell, so the structural pre-pass and strash cannot fold it).
  Fixture f;
  Wire* a = f.in("a");
  Wire* b = f.in("b");
  Wire* y1 = f.out("y1");
  Wire* y2 = f.out("y2");
  f.mod->connect(SigSpec(y1), f.mod->Xor(SigSpec(a), SigSpec(b)));
  // ~(a^b) == (a&b) | (~a&~b)
  const SigSpec both = f.mod->And(SigSpec(a), SigSpec(b));
  const SigSpec neither = f.mod->And(f.mod->Not(SigSpec(a)), f.mod->Not(SigSpec(b)));
  f.mod->connect(SigSpec(y2), f.mod->Or(both, neither));

  const auto golden = rtlil::clone_design(f.design);
  const sweep::FraigStats stats = sweep::fraig_sweep(*f.mod, serial_options());
  opt::opt_clean(*f.mod);

  EXPECT_GE(stats.proved_complement, 1u);
  EXPECT_GE(stats.inverter_cells, 1u);
  // Xor + one inverter beat the 5-cell complement cone.
  EXPECT_EQ(f.mod->cell_count(), 2u);
  EXPECT_EQ(f.mod->count_cells(CellType::Not), 1u);
  expect_equivalent(*golden->top(), *f.mod, "complement pair");
}

TEST(Fraig, DoesNotRebuildExistingInverter) {
  // y2 = ~y1 already is a single inverter of the representative: the engine
  // must leave it alone instead of replacing it with a fresh identical
  // inverter every round (the inverter ping-pong failure mode).
  Fixture f;
  Wire* a = f.in("a");
  Wire* b = f.in("b");
  Wire* y1 = f.out("y1");
  Wire* y2 = f.out("y2");
  const SigSpec x = f.mod->Xor(SigSpec(a), SigSpec(b));
  f.mod->connect(SigSpec(y1), x);
  f.mod->connect(SigSpec(y2), f.mod->Not(x));

  const sweep::FraigStats stats = sweep::fraig_sweep(*f.mod, serial_options());
  opt::opt_clean(*f.mod);

  EXPECT_EQ(stats.merged_cells, 0u);
  EXPECT_EQ(stats.inverter_cells, 0u);
  EXPECT_LE(stats.rounds, 2u);
  EXPECT_EQ(f.mod->cell_count(), 2u);
}

TEST(Fraig, FoldsConstantNodes) {
  // y = (a & ~a) | (b & ~b) is identically zero but needs SAT (strash does
  // not fold the Or of two distinct constant-zero cones' wires here since
  // each And is over distinct literals... the engine must prove y == 0).
  Fixture f;
  Wire* a = f.in("a");
  Wire* b = f.in("b");
  Wire* y = f.out("y");
  const SigSpec za = f.mod->And(SigSpec(a), f.mod->Not(SigSpec(a)));
  const SigSpec zb = f.mod->And(SigSpec(b), f.mod->Not(SigSpec(b)));
  f.mod->connect(SigSpec(y), f.mod->Or(za, zb));

  const auto golden = rtlil::clone_design(f.design);
  const sweep::FraigStats stats = sweep::fraig_sweep(*f.mod, serial_options());
  opt::opt_clean(*f.mod);

  EXPECT_GE(stats.proved_constant, 1u);
  EXPECT_EQ(f.mod->cell_count(), 0u);
  expect_equivalent(*golden->top(), *f.mod, "constant node");
}

TEST(Fraig, SignatureRefinementConverges) {
  // Two 16-bit equality comparators against different constants: both are 0
  // on (almost surely) every random pattern, so simulation aliases them with
  // each other and with constant zero. SAT must disprove the candidates, the
  // counterexamples must refine the classes, and the engine must terminate
  // without merging anything.
  const char* src = "module top(a, y1, y2);\n"
                    "  input [15:0] a;\n"
                    "  output y1;\n"
                    "  output y2;\n"
                    "  assign y1 = (a == 16'h1234);\n"
                    "  assign y2 = (a == 16'h1235);\n"
                    "endmodule\n";
  auto design = verilog::read_verilog(src);
  const auto golden = rtlil::clone_design(*design);
  Module& top = *design->top();

  const sweep::FraigStats stats = sweep::fraig_sweep(top, serial_options());
  opt::opt_clean(top);

  EXPECT_GE(stats.disproved, 1u);
  EXPECT_GE(stats.cex_patterns, 1u);
  EXPECT_LT(stats.rounds, sweep::FraigOptions().max_rounds); // converged, not capped
  EXPECT_EQ(stats.merged_cells, 0u);
  expect_equivalent(*golden->top(), top, "refinement convergence");
}

TEST(Fraig, RandomizedCircuitsStayEquivalent) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    const auto golden = rtlil::clone_design(*design);
    Module& top = *design->top();
    sweep::FraigOptions options;
    options.threads = 2;
    sweep::fraig_sweep(top, options);
    opt::opt_clean(top);
    expect_equivalent(*golden->top(), top, "random verilog");
  }
}

TEST(Fraig, RandomizedNetlistsStayEquivalent) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Design design;
    benchgen::random_netlist(design, "top", seed, 24);
    const auto golden = rtlil::clone_design(design);
    Module& top = *design.top();
    sweep::fraig_sweep(top, serial_options());
    opt::opt_clean(top);
    expect_equivalent(*golden->top(), top, "random netlist");
  }
}

TEST(Fraig, ThreadCountDeterminism) {
  const auto circuit = benchgen::public_suite().front();
  auto base = verilog::read_verilog(circuit.verilog);

  std::string first;
  sweep::FraigStats first_stats;
  for (const int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    auto design = rtlil::clone_design(*base);
    sweep::FraigOptions options;
    options.threads = threads;
    const sweep::FraigStats stats = sweep::fraig_sweep(*design->top(), options);
    opt::opt_clean(*design->top());
    const std::string netlist = backend::write_rtlil(*design->top());
    if (first.empty()) {
      first = netlist;
      first_stats = stats;
      EXPECT_GE(stats.merged_cells, 1u); // the determinism check must see real work
    } else {
      EXPECT_EQ(netlist, first);
      EXPECT_EQ(stats.rounds, first_stats.rounds);
      EXPECT_EQ(stats.classes, first_stats.classes);
      EXPECT_EQ(stats.sat_queries, first_stats.sat_queries);
      EXPECT_EQ(stats.proved_equal, first_stats.proved_equal);
      EXPECT_EQ(stats.proved_complement, first_stats.proved_complement);
      EXPECT_EQ(stats.proved_constant, first_stats.proved_constant);
      EXPECT_EQ(stats.proved_structural, first_stats.proved_structural);
      EXPECT_EQ(stats.disproved, first_stats.disproved);
      EXPECT_EQ(stats.unknown, first_stats.unknown);
      EXPECT_EQ(stats.cex_patterns, first_stats.cex_patterns);
      EXPECT_EQ(stats.merged_cells, first_stats.merged_cells);
      EXPECT_EQ(stats.inverter_cells, first_stats.inverter_cells);
      EXPECT_EQ(stats.solver_conflicts, first_stats.solver_conflicts);
    }
  }
}

TEST(Fraig, FraigStageComposesWithFlows) {
  // Runnable before and after the muxtree flows: both orders stay equivalent.
  const auto circuit = benchgen::public_suite()[1];
  auto golden = verilog::read_verilog(circuit.verilog);

  {
    auto design = rtlil::clone_design(*golden);
    opt::fraig_stage(*design->top(), serial_options());
    opt::yosys_flow(*design->top());
    expect_equivalent(*golden->top(), *design->top(), "fraig before yosys_flow");
  }
  {
    auto design = rtlil::clone_design(*golden);
    core::SmartlyOptions options;
    options.threads = 1;
    options.enable_fraig = true;
    core::smartly_flow(*design->top(), options);
    expect_equivalent(*golden->top(), *design->top(), "smartly_flow with fraig");
  }
}

TEST(NetlistIndexAddCell, MatchesRebuildAfterInverterInsertion) {
  // The incremental-maintenance sequence the fraig engine's barrier performs:
  // remove a duplicate cell, add an inverter at its freed topo position,
  // alias the removed cell's output. The updated index must answer
  // driver/reader queries like a from-scratch rebuild of the edited module.
  Fixture f;
  Wire* a = f.in("a");
  Wire* b = f.in("b");
  Wire* y1 = f.out("y1");
  Wire* y2 = f.out("y2");
  const SigSpec x = f.mod->Xor(SigSpec(a), SigSpec(b));
  f.mod->connect(SigSpec(y1), x);
  const SigSpec nx =
      f.mod->add_binary(CellType::Xnor, SigSpec(a), SigSpec(b), 1); // to be replaced
  f.mod->connect(SigSpec(y2), nx);

  rtlil::NetlistIndex index(*f.mod);
  index.sigmap().flatten();
  rtlil::Cell* dup = index.driver(index.sigmap()(nx.as_bit()));
  ASSERT_NE(dup, nullptr);
  const int freed = index.topo_position(dup);

  Wire* w = f.mod->new_wire(1, "$inv");
  rtlil::Cell* inv = f.mod->add_cell(CellType::Not);
  inv->set_port(Port::A, x);
  inv->set_port(Port::Y, SigSpec(w));
  inv->infer_widths();

  opt::SweepJournal journal;
  journal.removed.push_back(dup);
  journal.added.push_back({inv, freed});
  journal.connects.emplace_back(nx, SigSpec(w));
  opt::apply_sweep_journal(*f.mod, index, journal);

  const rtlil::NetlistIndex rebuilt(*f.mod);
  for (const auto& wire : f.mod->wires())
    for (int i = 0; i < wire->width(); ++i) {
      const SigBit bit(wire.get(), i);
      EXPECT_EQ(index.driver(bit), rebuilt.driver(bit)) << wire->name() << "[" << i << "]";
      EXPECT_EQ(index.fanout(bit), rebuilt.fanout(bit)) << wire->name() << "[" << i << "]";
    }
  // Topo order respects the inserted edge: inverter after the xor.
  const auto& topo = index.topo_order();
  const auto xor_pos = std::find(topo.begin(), topo.end(),
                                 index.driver(index.sigmap()(x.as_bit())));
  const auto inv_pos = std::find(topo.begin(), topo.end(), inv);
  ASSERT_NE(xor_pos, topo.end());
  ASSERT_NE(inv_pos, topo.end());
  EXPECT_LT(xor_pos - topo.begin(), inv_pos - topo.begin());
}

TEST(StructuralKey, SharedHashingDrivesOptMerge) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  const rtlil::SigMap sigmap(*f.mod);

  // Commutative normalization: a&b and b&a get one key.
  const SigSpec y1 = f.mod->And(SigSpec(a), SigSpec(b));
  const SigSpec y2 = f.mod->And(SigSpec(b), SigSpec(a));
  const auto key_of = [&](const SigSpec& y) {
    for (const auto& cptr : f.mod->cells())
      if (cptr->port(Port::Y) == y)
        return sweep::cell_structural_key(*cptr, sigmap);
    ADD_FAILURE() << "cell not found";
    return Hash128{};
  };
  EXPECT_EQ(key_of(y1), key_of(y2));

  // Non-commutative cells keep operand order in the key.
  const SigSpec s1 = f.mod->Sub(SigSpec(a), SigSpec(b), 4);
  const SigSpec s2 = f.mod->Sub(SigSpec(b), SigSpec(a), 4);
  EXPECT_NE(key_of(s1), key_of(s2));

  // opt_merge keyed on the shared fingerprint still merges the And pair.
  Wire* o1 = f.out("o1", 4);
  Wire* o2 = f.out("o2", 4);
  Wire* o3 = f.out("o3", 4);
  Wire* o4 = f.out("o4", 4);
  f.mod->connect(SigSpec(o1), y1);
  f.mod->connect(SigSpec(o2), y2);
  f.mod->connect(SigSpec(o3), s1);
  f.mod->connect(SigSpec(o4), s2);
  EXPECT_EQ(opt::opt_merge(*f.mod), 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::And), 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::Sub), 2u);
}
