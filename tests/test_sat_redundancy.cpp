// SAT-based redundancy elimination (§II): the InferenceOracle's decision
// stages (syntactic / inference / simulation / SAT), the full pass on the
// paper's Figure 1-3 shapes, and budget/threshold behaviour.
#include "aig/aigmap.hpp"
#include "cec/cec.hpp"
#include "core/sat_redundancy.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "rtlil/module.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using core::InferenceOracle;
using core::SatRedundancyOptions;
using opt::CtrlDecision;
using opt::KnownMap;
using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  Fixture() { mod = design.add_module("top"); }
  Wire* in(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }
};

} // namespace

TEST(InferenceOracleTest, SyntacticLookupStillWorks) {
  Fixture f;
  Wire* s = f.in("s");
  f.mod->connect(SigSpec(f.out("y")), SigSpec(s));
  InferenceOracle oracle({});
  oracle.begin_module(*f.mod);
  KnownMap known{{SigBit(s, 0), true}};
  EXPECT_EQ(oracle.decide(SigBit(s, 0), known), CtrlDecision::One);
  known[SigBit(s, 0)] = false;
  EXPECT_EQ(oracle.decide(SigBit(s, 0), known), CtrlDecision::Zero);
  EXPECT_GE(oracle.stats().decided_syntactic, 2u);
}

TEST(InferenceOracleTest, NoKnownSignalsMeansUnknown) {
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);
  InferenceOracle oracle({});
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(sr[0], {}), CtrlDecision::Unknown);
}

TEST(InferenceOracleTest, Fig3OrDependence) {
  // ctrl = s | r with s known true -> One; with s known false -> Unknown.
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);

  InferenceOracle oracle({});
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(sr[0], {{SigBit(s, 0), true}}), CtrlDecision::One);
  EXPECT_EQ(oracle.decide(sr[0], {{SigBit(s, 0), false}}), CtrlDecision::Unknown);
}

TEST(InferenceOracleTest, AndDependence) {
  // ctrl = s & r with s false -> Zero.
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->And(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), sr);
  InferenceOracle oracle({});
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(sr[0], {{SigBit(s, 0), false}}), CtrlDecision::Zero);
}

TEST(InferenceOracleTest, SimOrSatDecidesNonTrivialDependence) {
  // ctrl = (s & a) | (s & ~a): equals s, but no single inference rule sees
  // it — needs simulation or SAT over the sub-graph.
  Fixture f;
  Wire* s = f.in("s");
  Wire* a = f.in("a");
  const SigSpec sa = f.mod->And(SigSpec(s), SigSpec(a));
  const SigSpec sna = f.mod->And(SigSpec(s), f.mod->Not(SigSpec(a)));
  const SigSpec ctrl = f.mod->Or(sa, sna);
  f.mod->connect(SigSpec(f.out("y")), ctrl);

  SatRedundancyOptions opts;
  opts.use_inference = false; // force stage 4
  InferenceOracle oracle(opts);
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(ctrl[0], {{SigBit(s, 0), true}}), CtrlDecision::One);
  EXPECT_EQ(oracle.decide(ctrl[0], {{SigBit(s, 0), false}}), CtrlDecision::Zero);
  const auto& st = oracle.stats();
  EXPECT_EQ(st.decided_sim + st.decided_sat, 2u);
}

TEST(InferenceOracleTest, SatStageHandlesWideSubgraph) {
  // Force SAT (not simulation) by setting sim_max_inputs = 0.
  Fixture f;
  Wire* s = f.in("s");
  Wire* a = f.in("a", 8);
  Wire* b = f.in("b", 8);
  // ctrl = s | (a == b): with s=1, forced 1 whatever a,b.
  const SigSpec eq = f.mod->Eq(SigSpec(a), SigSpec(b));
  const SigSpec ctrl = f.mod->Or(SigSpec(s), eq);
  f.mod->connect(SigSpec(f.out("y")), ctrl);

  SatRedundancyOptions opts;
  opts.use_inference = false;
  opts.sim_max_inputs = 0;
  InferenceOracle oracle(opts);
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(ctrl[0], {{SigBit(s, 0), true}}), CtrlDecision::One);
  EXPECT_EQ(oracle.stats().decided_sat, 1u);
}

TEST(InferenceOracleTest, DeadPathDetected) {
  // known: s=1 and (s&r)=... ctrl = ~s. With s=1, ~s is 0; but make the path
  // contradictory: known s=1 and or(s,r)=0 simultaneously.
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  const SigSpec other = f.mod->And(SigSpec(s), SigSpec(r));
  f.mod->connect(SigSpec(f.out("y")), f.mod->Xor(sr, other));

  InferenceOracle oracle({});
  oracle.begin_module(*f.mod);
  const KnownMap contradictory{{SigBit(s, 0), true}, {sr[0], false}};
  EXPECT_EQ(oracle.decide(other[0], contradictory), CtrlDecision::DeadPath);
  EXPECT_GE(oracle.stats().dead_paths, 1u);
}

TEST(InferenceOracleTest, InputThresholdSkipsSat) {
  // sat_max_inputs = 0 and sim_max_inputs = 0: stage 4 must be skipped and
  // the (inference-invisible) query stays Unknown.
  Fixture f;
  Wire* s = f.in("s");
  Wire* a = f.in("a");
  const SigSpec sa = f.mod->And(SigSpec(s), SigSpec(a));
  const SigSpec sna = f.mod->And(SigSpec(s), f.mod->Not(SigSpec(a)));
  const SigSpec ctrl = f.mod->Or(sa, sna);
  f.mod->connect(SigSpec(f.out("y")), ctrl);

  SatRedundancyOptions opts;
  opts.use_inference = false;
  opts.sim_max_inputs = 0;
  opts.sat_max_inputs = 0;
  InferenceOracle oracle(opts);
  oracle.begin_module(*f.mod);
  EXPECT_EQ(oracle.decide(ctrl[0], {{SigBit(s, 0), true}}), CtrlDecision::Unknown);
  EXPECT_GE(oracle.stats().skipped_too_large, 1u);
}

// --- full pass on elaborated Verilog ----------------------------------------

namespace {

/// Run sat_redundancy + cleanup, assert equivalence, return the AIG areas
/// before and after.
std::pair<size_t, size_t> run_pass(const std::string& src,
                                   const SatRedundancyOptions& opts = {}) {
  auto d = verilog::read_verilog(src);
  auto golden = rtlil::clone_design(*d);
  opt::opt_expr(*d->top());
  opt::opt_clean(*d->top());
  const size_t before = aig::aig_area(*d->top());
  core::sat_redundancy(*d->top(), opts);
  opt::opt_expr(*d->top());
  opt::opt_clean(*d->top());
  const auto cec = cec::check_equivalence(*golden->top(), *d->top());
  EXPECT_TRUE(cec.equivalent) << cec.failing_output;
  return {before, aig::aig_area(*d->top())};
}

} // namespace

TEST(SatRedundancyPass, PaperFig1SameControl) {
  // Y = S ? (S ? A : B) : C -> Y = S ? A : C (baseline-visible too).
  const auto [before, after] = run_pass(R"(
    module top(s, a, b, c, y);
      input s; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? (s ? a : b) : c;
    endmodule
  )");
  EXPECT_LT(after, before);
}

TEST(SatRedundancyPass, PaperFig3DependentControl) {
  // Y = S ? ((S|R) ? A : B) : C -> Y = S ? A : C (needs inferencing).
  const auto [before, after] = run_pass(R"(
    module top(s, r, a, b, c, y);
      input s, r; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )");
  EXPECT_LT(after, before);
}

TEST(SatRedundancyPass, AndChainDependence) {
  // inner control s&t: on the s=0 branch it is forced 0.
  const auto [before, after] = run_pass(R"(
    module top(s, t, a, b, c, y);
      input s, t; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? a : ((s & t) ? b : c);
    endmodule
  )");
  EXPECT_LT(after, before);
}

TEST(SatRedundancyPass, IndependentControlsUntouched) {
  // y = s ? (t ? a : b) : c with independent s, t: nothing to remove;
  // the result must still be equivalent and no larger.
  const auto [before, after] = run_pass(R"(
    module top(s, t, a, b, c, y);
      input s, t; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? (t ? a : b) : c;
    endmodule
  )");
  EXPECT_EQ(after, before);
}

TEST(SatRedundancyPass, InferenceOnlyModeStillCatchesFig3) {
  SatRedundancyOptions opts;
  opts.use_sat = false; // Table I rules only
  const auto [before, after] = run_pass(R"(
    module top(s, r, a, b, c, y);
      input s, r; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )",
                                        opts);
  EXPECT_LT(after, before);
}

TEST(SatRedundancyPass, StatsAccounting) {
  Fixture f;
  Wire* s = f.in("s");
  Wire* r = f.in("r");
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* c = f.in("c", 4);
  const SigSpec sr = f.mod->Or(SigSpec(s), SigSpec(r));
  const SigSpec inner = f.mod->Mux(SigSpec(b), SigSpec(a), sr);
  const SigSpec root = f.mod->Mux(SigSpec(c), inner, SigSpec(s));
  f.mod->connect(SigSpec(f.out("y", 4)), root);

  const auto stats = core::sat_redundancy(*f.mod, {});
  EXPECT_GT(stats.queries, 0u);
  EXPECT_GT(stats.walker.mux_collapsed, 0u);
  EXPECT_GE(stats.gates_seen, stats.gates_kept);
}
