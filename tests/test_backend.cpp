// Backends: Verilog writer round trips (write -> re-read -> CEC), AIGER
// ASCII/binary round trips, and the RTLIL dump's basic shape.
#include "aig/aigmap.hpp"
#include "backend/aiger.hpp"
#include "backend/write_rtlil.hpp"
#include "backend/write_verilog.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;

namespace {

/// write_verilog -> read_verilog -> CEC against the original module.
void check_roundtrip(const rtlil::Design& design) {
  const std::string text = backend::write_verilog(*design.top());
  auto back = verilog::read_verilog(text);
  ASSERT_NE(back->top(), nullptr) << text;
  const auto r = cec::check_equivalence(*design.top(), *back->top());
  EXPECT_TRUE(r.equivalent) << "round trip diverged at " << r.failing_output << "\n"
                            << text;
}

} // namespace

TEST(WriteVerilog, SimpleCombinational) {
  auto d = verilog::read_verilog(R"(
    module top(a, b, y);
      input [3:0] a, b; output [4:0] y;
      assign y = (a + b) ^ {1'b0, a & b};
    endmodule
  )");
  check_roundtrip(*d);
}

TEST(WriteVerilog, MuxAndCaseTrees) {
  auto d = verilog::read_verilog(R"(
    module top(s, p0, p1, p2, p3, y);
      input [1:0] s; input [7:0] p0, p1, p2, p3; output reg [7:0] y;
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p2;
        default: y = p3;
      endcase
    endmodule
  )");
  check_roundtrip(*d);
}

TEST(WriteVerilog, SequentialDesign) {
  auto d = verilog::read_verilog(R"(
    module top(clk, d, en, q);
      input clk, en; input [7:0] d; output reg [7:0] q;
      always @(posedge clk) q <= en ? d : q;
    endmodule
  )");
  check_roundtrip(*d);
}

TEST(WriteVerilog, OptimizedDesignRoundTrips) {
  // The writer must handle everything smartly_flow leaves behind (rebuilt
  // trees keyed on raw selector bits, partial connections, generated names).
  const auto c = benchgen::generate_circuit(
      "rt", benchgen::Profile{.case_chains = 3, .dependent = 3, .same_ctrl = 2,
                              .decoders = 1, .datapath = 2, .width = 8,
                              .registered_outputs = 2},
      321);
  auto d = verilog::read_verilog(c.verilog);
  core::smartly_flow(*d->top());
  check_roundtrip(*d);
}

TEST(WriteVerilog, GeneratedNamesRoundTripVerbatim) {
  // Cell-builder wires have $-names. The frontend's lexer accepts '$' in
  // identifiers, so the writer emits them verbatim: name preservation keeps
  // the recovery layer's name-hash unit ids (quarantine keys, fault units)
  // stable when a repro bundle's design.v is re-read for --replay.
  rtlil::Design d;
  rtlil::Module* m = d.add_module("top");
  rtlil::Wire* a = m->add_wire("a", 4);
  m->set_port_input(a);
  rtlil::Wire* y = m->add_wire("y", 4);
  m->set_port_output(y);
  m->connect(rtlil::SigSpec(y), m->Not(m->Not(rtlil::SigSpec(a))));
  const std::string text = backend::write_verilog(*m);
  EXPECT_NE(text.find("$sig$0"), std::string::npos) << text;
  auto back = verilog::read_verilog(text);
  ASSERT_NE(back->top(), nullptr);
  EXPECT_TRUE(back->top()->has_wire("$sig$0")) << text;
  check_roundtrip(d);
}

TEST(WriteVerilog, KeywordNamesAreRenamed) {
  // Names the frontend cannot re-read (Verilog keywords) still get fresh
  // generated names instead of producing unparsable output.
  rtlil::Design d;
  rtlil::Module* m = d.add_module("top");
  rtlil::Wire* a = m->add_wire("a", 4);
  m->set_port_input(a);
  rtlil::Wire* kw = m->add_wire("module", 4);
  rtlil::Wire* y = m->add_wire("y", 4);
  m->set_port_output(y);
  m->connect(rtlil::SigSpec(kw), m->Not(rtlil::SigSpec(a)));
  m->connect(rtlil::SigSpec(y), rtlil::SigSpec(kw));
  const std::string text = backend::write_verilog(*m);
  EXPECT_EQ(text.find("wire [3:0] module"), std::string::npos) << text;
  check_roundtrip(d);
}

class WriteVerilogRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriteVerilogRandom, RandomNetlistsRoundTrip) {
  rtlil::Design d;
  benchgen::random_netlist(d, "top", GetParam(), 25);
  check_roundtrip(d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteVerilogRandom, ::testing::Range<uint64_t>(1, 25));

class WriteVerilogRandomSource : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WriteVerilogRandomSource, RandomVerilogRoundTripsAfterEveryFlow) {
  const std::string src = benchgen::random_verilog(GetParam(), 4);
  {
    auto d = verilog::read_verilog(src);
    check_roundtrip(*d);
  }
  {
    auto d = verilog::read_verilog(src);
    opt::yosys_flow(*d->top());
    check_roundtrip(*d);
  }
  {
    auto d = verilog::read_verilog(src);
    core::smartly_flow(*d->top());
    check_roundtrip(*d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteVerilogRandomSource, ::testing::Range<uint64_t>(1, 12));

// --- AIGER -------------------------------------------------------------------

namespace {

/// Compare two AIGs functionally over 64 random patterns per output.
void check_aig_equal(const aig::Aig& a, const aig::Aig& b, uint64_t seed) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  Rng rng(seed);
  std::vector<uint64_t> in(a.num_inputs());
  for (auto& w : in)
    w = rng.next();
  const auto wa = a.simulate(in);
  const auto wb = b.simulate(in);
  for (size_t o = 0; o < a.num_outputs(); ++o)
    EXPECT_EQ(aig::Aig::sim_lit(wa, a.output(static_cast<int>(o))),
              aig::Aig::sim_lit(wb, b.output(static_cast<int>(o))))
        << "output " << o;
}

aig::Aig sample_aig(uint64_t seed, int n_cells) {
  rtlil::Design d;
  rtlil::Module* m = benchgen::random_netlist(d, "top", seed, n_cells);
  return std::move(aig::aigmap(*m).aig);
}

} // namespace

TEST(Aiger, AsciiHeaderShape) {
  aig::Aig g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  g.add_output(g.and_(a, b), "y");
  const std::string text = backend::write_aiger_ascii(g);
  EXPECT_EQ(text.rfind("aag 3 2 0 1 1", 0), 0u) << text;
  EXPECT_NE(text.find("i0 a"), std::string::npos);
  EXPECT_NE(text.find("o0 y"), std::string::npos);
}

TEST(Aiger, AsciiRoundTripTiny) {
  aig::Aig g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  const auto s = g.add_input("s");
  g.add_output(g.mux_(s, a, b), "y");
  g.add_output(g.xor_(a, b), "x");
  const aig::Aig back = backend::read_aiger(backend::write_aiger_ascii(g));
  check_aig_equal(g, back, 1);
}

TEST(Aiger, BinaryRoundTripTiny) {
  aig::Aig g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  g.add_output(g.or_(a, g.and_(a, b)), "y");
  const aig::Aig back = backend::read_aiger(backend::write_aiger_binary(g));
  check_aig_equal(g, back, 2);
}

TEST(Aiger, ConstantOutputs) {
  aig::Aig g;
  (void)g.add_input("a");
  g.add_output(aig::kTrue, "one");
  g.add_output(aig::kFalse, "zero");
  for (const std::string& text :
       {backend::write_aiger_ascii(g), backend::write_aiger_binary(g)}) {
    const aig::Aig back = backend::read_aiger(text);
    check_aig_equal(g, back, 3);
  }
}

TEST(Aiger, ComplementedOutputs) {
  aig::Aig g;
  const auto a = g.add_input("a");
  const auto b = g.add_input("b");
  g.add_output(aig::lit_not(g.and_(a, b)), "nand");
  const aig::Aig back = backend::read_aiger(backend::write_aiger_ascii(g));
  check_aig_equal(g, back, 4);
}

class AigerRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AigerRandom, BothFormatsRoundTrip) {
  const aig::Aig g = sample_aig(GetParam(), 20);
  const aig::Aig back_a = backend::read_aiger(backend::write_aiger_ascii(g));
  check_aig_equal(g, back_a, GetParam() * 3 + 1);
  const aig::Aig back_b = backend::read_aiger(backend::write_aiger_binary(g));
  check_aig_equal(g, back_b, GetParam() * 3 + 2);
  // Strash on re-read can only shrink the AND count.
  EXPECT_LE(back_a.num_ands(), g.num_ands());
  EXPECT_LE(back_b.num_ands(), g.num_ands());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AigerRandom, ::testing::Range<uint64_t>(1, 20));

TEST(Aiger, RejectsMalformedInput) {
  EXPECT_THROW(backend::read_aiger("not an aiger file"), std::runtime_error);
  EXPECT_THROW(backend::read_aiger("aag 1 1 1 0 0\n2\n"), std::runtime_error); // latch
  EXPECT_THROW(backend::read_aiger("aag"), std::runtime_error);
}

// --- RTLIL dump ----------------------------------------------------------------

TEST(WriteRtlil, DumpContainsStructure) {
  auto d = verilog::read_verilog(R"(
    module top(s, a, b, y);
      input s; input [3:0] a, b; output [3:0] y;
      assign y = s ? a : b;
    endmodule
  )");
  const std::string text = backend::write_rtlil(*d->top());
  EXPECT_NE(text.find("module top"), std::string::npos);
  EXPECT_NE(text.find("cell $mux"), std::string::npos);
  EXPECT_NE(text.find("wire width 4"), std::string::npos);
  EXPECT_NE(text.find("end"), std::string::npos);
}

TEST(WriteRtlil, DumpIsDeterministic) {
  const std::string src = benchgen::random_verilog(9, 4);
  auto d1 = verilog::read_verilog(src);
  auto d2 = verilog::read_verilog(src);
  EXPECT_EQ(backend::write_rtlil(*d1->top()), backend::write_rtlil(*d2->top()));
}
