// NPN canonicalization table: the 222 4-input classes, transform round-trips
// over every truth table, class invariance under arbitrary transforms, and
// representative minimality.
#include "rewrite/npn.hpp"

#include <gtest/gtest.h>

#include <random>

using namespace smartly::rewrite;

TEST(Npn, Exactly222Classes) {
  EXPECT_EQ(NpnTable::instance().num_classes(), 222u);
  EXPECT_EQ(NpnTable::instance().representatives().size(), 222u);
}

TEST(Npn, CanonicalIsIdempotentAndRepresentative) {
  const NpnTable& t = NpnTable::instance();
  for (uint32_t tt = 0; tt < 65536; ++tt) {
    const TruthTable c = t.canonical(static_cast<TruthTable>(tt));
    EXPECT_EQ(t.canonical(c), c);
    EXPECT_EQ(t.representatives()[t.class_id(static_cast<TruthTable>(tt))], c);
    EXPECT_LE(c, tt); // the representative is the smallest orbit member
  }
}

TEST(Npn, FromCanonicalRoundTripsEveryTable) {
  const NpnTable& t = NpnTable::instance();
  for (uint32_t tt = 0; tt < 65536; ++tt) {
    const TruthTable c = t.canonical(static_cast<TruthTable>(tt));
    EXPECT_EQ(NpnTable::apply(c, t.from_canonical(static_cast<TruthTable>(tt))),
              static_cast<TruthTable>(tt));
  }
}

TEST(Npn, IdentityTransformIsZero) {
  for (const TruthTable tt : {TruthTable(0x8000), TruthTable(0x1234), TruthTable(0xcafe)})
    EXPECT_EQ(NpnTable::apply(tt, 0), tt);
}

TEST(Npn, ClassInvariantUnderTransforms) {
  const NpnTable& t = NpnTable::instance();
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const TruthTable tt = static_cast<TruthTable>(rng());
    const uint16_t u = static_cast<uint16_t>(rng() % kNumTransforms);
    EXPECT_EQ(t.class_id(NpnTable::apply(tt, u)), t.class_id(tt));
    EXPECT_EQ(t.canonical(NpnTable::apply(tt, u)), t.canonical(tt));
  }
}

TEST(Npn, RepresentativesAreOrbitMinima) {
  const NpnTable& t = NpnTable::instance();
  // Exhaustive on a sample of classes: no transform may produce anything
  // smaller than the representative.
  for (size_t i = 0; i < t.representatives().size(); i += 17) {
    const TruthTable rep = t.representatives()[i];
    for (uint16_t u = 0; u < kNumTransforms; ++u)
      EXPECT_GE(NpnTable::apply(rep, u), rep);
  }
}

TEST(Npn, ProjectionsShareOneClass) {
  const NpnTable& t = NpnTable::instance();
  const uint16_t cls = t.class_id(kProjection[0]);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(t.class_id(kProjection[i]), cls);
    EXPECT_EQ(t.class_id(static_cast<TruthTable>(~kProjection[i])), cls);
  }
  // Constants form their own (single) class.
  EXPECT_EQ(t.class_id(0), t.class_id(0xffff));
  EXPECT_EQ(t.canonical(0xffff), 0);
}
