#include "rtlil/const.hpp"

#include <gtest/gtest.h>

using smartly::rtlil::Const;
using smartly::rtlil::State;

TEST(Const, FromUintRoundTrip) {
  for (uint64_t v : {0ull, 1ull, 42ull, 0xdeadbeefull, ~0ull}) {
    const Const c(v, 64);
    EXPECT_EQ(c.as_uint(), v);
    EXPECT_EQ(c.size(), 64);
    EXPECT_TRUE(c.is_fully_def());
  }
}

TEST(Const, TruncationOnNarrowWidth) {
  const Const c(0x1ff, 8);
  EXPECT_EQ(c.as_uint(), 0xffu);
}

TEST(Const, WidthBeyond64IsZeroFilled) {
  const Const c(~0ull, 80);
  EXPECT_EQ(c.size(), 80);
  for (int i = 64; i < 80; ++i)
    EXPECT_EQ(c[i], State::S0);
  EXPECT_EQ(c.as_uint(), ~0ull);
}

TEST(Const, FromStringMsbFirst) {
  const Const c = Const::from_string("1zx0");
  ASSERT_EQ(c.size(), 4);
  EXPECT_EQ(c[0], State::S0);
  EXPECT_EQ(c[1], State::Sx);
  EXPECT_EQ(c[2], State::Sz);
  EXPECT_EQ(c[3], State::S1);
  EXPECT_EQ(c.to_string(), "1zx0");
  EXPECT_FALSE(c.is_fully_def());
}

TEST(Const, FromStringIgnoresUnderscores) {
  EXPECT_EQ(Const::from_string("1010_1010").as_uint(), 0xaau);
}

TEST(Const, SignedRead) {
  EXPECT_EQ(Const(0b1111, 4).as_int_signed(), -1);
  EXPECT_EQ(Const(0b0111, 4).as_int_signed(), 7);
  EXPECT_EQ(Const(0b1000, 4).as_int_signed(), -8);
  EXPECT_EQ(Const(5, 64).as_int_signed(), 5);
}

TEST(Const, AsBoolIgnoresXz) {
  EXPECT_FALSE(Const::from_string("xz0").as_bool());
  EXPECT_TRUE(Const::from_string("x1z").as_bool());
  EXPECT_FALSE(Const(0, 8).as_bool());
}

TEST(Const, ExtractInBoundsAndBeyond) {
  const Const c(0b1101, 4);
  EXPECT_EQ(c.extract(1, 2).as_uint(), 0b10u);
  const Const beyond = c.extract(2, 4); // reads past the MSB -> x fill
  EXPECT_EQ(beyond[0], State::S1);
  EXPECT_EQ(beyond[1], State::S1);
  EXPECT_EQ(beyond[2], State::Sx);
  EXPECT_EQ(beyond[3], State::Sx);
}

TEST(Const, ExtendZeroAndSign) {
  const Const c(0b100, 3);
  EXPECT_EQ(c.extended(6, false).as_uint(), 0b000100u);
  EXPECT_EQ(c.extended(6, true).as_uint(), 0b111100u);
  EXPECT_EQ(c.extended(2, false).as_uint(), 0b00u); // truncation
}

TEST(Const, EqualityIsBitwise) {
  EXPECT_EQ(Const(5, 4), Const(5, 4));
  EXPECT_NE(Const(5, 4), Const(5, 5));
  EXPECT_NE(Const::from_string("1x"), Const::from_string("10"));
}

TEST(Const, NegativeWidthThrows) { EXPECT_THROW(Const(0, -1), std::invalid_argument); }

TEST(Const, BadStateCharThrows) {
  EXPECT_THROW(Const::from_string("10q"), std::invalid_argument);
}
