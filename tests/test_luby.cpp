#include "util/hashing.hpp"
#include "util/luby.hpp"

#include <gtest/gtest.h>

using smartly::luby;

TEST(Luby, PrefixMatchesReference) {
  // 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  const uint64_t expect[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
                             1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 16};
  for (size_t i = 0; i < sizeof(expect) / sizeof(expect[0]); ++i)
    EXPECT_EQ(luby(i), expect[i]) << "at index " << i;
}

TEST(Luby, ValuesArePowersOfTwo) {
  for (uint64_t i = 0; i < 2000; ++i) {
    const uint64_t v = luby(i);
    EXPECT_NE(v, 0u);
    EXPECT_EQ(v & (v - 1), 0u) << "luby(" << i << ")=" << v;
  }
}

TEST(Rng, DeterministicAndBounded) {
  smartly::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.next(), b.next());
  smartly::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.range(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Hashing, MixAvalanchesLowBits) {
  // Adjacent inputs should not produce adjacent outputs.
  int close = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t d = smartly::hash_mix(i) ^ smartly::hash_mix(i + 1);
    if (__builtin_popcountll(d) < 8)
      ++close;
  }
  EXPECT_LT(close, 5);
}
