// Front-end diagnostics: every layer (lexer, parser, elaboration) reports
// failures as verilog::ParseError carrying file/line/column, and what()
// renders the conventional `file:line:col: message` form. opt_tool's exit
// code 1 ("input could not be parsed") rides on these errors, so their shape
// is part of the CLI contract.
#include "verilog/elaborate.hpp"
#include "verilog/lexer.hpp"
#include "verilog/parse_error.hpp"
#include "verilog/parser.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace smartly;

namespace {

/// Run read_verilog, demand a ParseError, and hand it to the caller.
template <typename Check>
void expect_parse_error(const std::string& source, const std::string& filename,
                        Check&& check) {
  try {
    verilog::read_verilog(source, filename);
    FAIL() << "expected ParseError, but parsing succeeded";
  } catch (const verilog::ParseError& e) {
    check(e);
  }
}

} // namespace

// --- error formatting --------------------------------------------------------

TEST(ParseErrors, WhatRendersFileLineCol) {
  const verilog::ParseError e("muxtree.v", 12, 7, "unexpected token");
  EXPECT_STREQ(e.what(), "muxtree.v:12:7: unexpected token");
  EXPECT_EQ(e.file(), "muxtree.v");
  EXPECT_EQ(e.line(), 12);
  EXPECT_EQ(e.col(), 7);
  EXPECT_EQ(e.message(), "unexpected token");
}

TEST(ParseErrors, ZeroColumnIsOmitted) {
  // Elaboration only tracks lines; a zero column must not print as ":0".
  const verilog::ParseError e("a.v", 3, 0, "unknown identifier");
  EXPECT_EQ(std::string(e.what()).find(":0:"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("a.v:3"), std::string::npos);
}

TEST(ParseErrors, WithFileRestampsTheLocation) {
  const verilog::ParseError e("", 4, 2, "bad literal");
  const verilog::ParseError stamped = e.with_file("design.v");
  EXPECT_EQ(stamped.file(), "design.v");
  EXPECT_EQ(stamped.line(), 4);
  EXPECT_EQ(stamped.col(), 2);
  EXPECT_EQ(stamped.message(), e.message());
}

// --- lexer-layer failures ----------------------------------------------------

TEST(ParseErrors, LexerRejectsStrayCharacterWithPosition) {
  // '#' is not part of the supported token set; line 3, after two newlines.
  expect_parse_error("module top(a);\ninput a;\n  # x;\nendmodule\n", "lex.v",
                     [](const verilog::ParseError& e) {
                       EXPECT_EQ(e.file(), "lex.v");
                       EXPECT_EQ(e.line(), 3);
                       EXPECT_GT(e.col(), 0);
                     });
}

TEST(ParseErrors, LexerRejectsMalformedNumber) {
  expect_parse_error("module top(a, y);\ninput a;\noutput y;\nassign y = 4'bxq01;\n"
                     "endmodule\n",
                     "num.v", [](const verilog::ParseError& e) {
                       EXPECT_EQ(e.file(), "num.v");
                       EXPECT_EQ(e.line(), 4);
                     });
}

// --- parser-layer failures ---------------------------------------------------

TEST(ParseErrors, ParserRejectsMissingSemicolonWithPosition) {
  expect_parse_error("module top(a, y);\ninput a;\noutput y;\nassign y = a\nendmodule\n",
                     "parse.v", [](const verilog::ParseError& e) {
                       EXPECT_EQ(e.file(), "parse.v");
                       // The error is at the token that is not ';' — `endmodule`.
                       EXPECT_EQ(e.line(), 5);
                     });
}

TEST(ParseErrors, ParserRejectsUnbalancedExpression) {
  expect_parse_error("module top(a, b, y);\ninput a, b;\noutput y;\n"
                     "assign y = (a & ;\nendmodule\n",
                     "expr.v", [](const verilog::ParseError& e) {
                       EXPECT_EQ(e.file(), "expr.v");
                       EXPECT_EQ(e.line(), 4);
                       EXPECT_GT(e.col(), 0);
                     });
}

// --- elaboration-layer failures ----------------------------------------------

TEST(ParseErrors, ElaborationRejectsUnknownIdentifierWithLine) {
  expect_parse_error("module top(a, y);\ninput a;\noutput y;\nassign y = a & ghost;\n"
                     "endmodule\n",
                     "elab.v", [](const verilog::ParseError& e) {
                       EXPECT_EQ(e.file(), "elab.v");
                       EXPECT_EQ(e.line(), 4);
                       EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
                     });
}

// --- the filename is optional ------------------------------------------------

TEST(ParseErrors, MissingFilenameStillReportsLineCol) {
  try {
    verilog::read_verilog("module top(a);\ninput a;\n  # x;\nendmodule\n");
    FAIL() << "expected ParseError";
  } catch (const verilog::ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    // No file prefix, but the location must still be in the message.
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos);
  }
}
