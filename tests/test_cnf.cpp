// Tseitin CNF encoding: SAT answers must agree with exhaustive AIG
// simulation for every function and every assumption set.
#include "aig/aig.hpp"
#include "aig/cnf.hpp"
#include "sat/solver.hpp"
#include "util/hashing.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using aig::Aig;
using aig::Lit;

TEST(Cnf, ConstantsAreFixed) {
  Aig g;
  (void)g.add_input("a");
  sat::Solver s;
  aig::CnfEncoder enc(s);
  enc.encode(g);
  EXPECT_EQ(s.solve({enc.lit(aig::kTrue)}), sat::Result::Sat);
  EXPECT_EQ(s.solve({~enc.lit(aig::kTrue)}), sat::Result::Unsat);
  EXPECT_EQ(s.solve({enc.lit(aig::kFalse)}), sat::Result::Unsat);
}

TEST(Cnf, AndGateSemantics) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit y = g.and_(a, b);
  sat::Solver s;
  aig::CnfEncoder enc(s);
  enc.encode(g);

  // y & !a is unsat; y forces a and b.
  EXPECT_EQ(s.solve({enc.lit(y), ~enc.lit(a)}), sat::Result::Unsat);
  EXPECT_EQ(s.solve({enc.lit(y), ~enc.lit(b)}), sat::Result::Unsat);
  EXPECT_EQ(s.solve({enc.lit(y), enc.lit(a), enc.lit(b)}), sat::Result::Sat);
  // !y with a,b both true is unsat.
  EXPECT_EQ(s.solve({~enc.lit(y), enc.lit(a), enc.lit(b)}), sat::Result::Unsat);
  EXPECT_EQ(s.solve({~enc.lit(y), ~enc.lit(a)}), sat::Result::Sat);
}

TEST(Cnf, ComplementedLiteralsMapCorrectly) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit na = aig::lit_not(a);
  sat::Solver s;
  aig::CnfEncoder enc(s);
  enc.encode(g);
  EXPECT_EQ(s.solve({enc.lit(a), enc.lit(na)}), sat::Result::Unsat);
  EXPECT_EQ(s.solve({enc.lit(na)}), sat::Result::Sat);
}

namespace {

/// Build a deterministic random AIG with `n_inputs` inputs and `n_ands`
/// random AND gates over existing literals, return all created literals.
std::vector<Lit> random_aig(Aig& g, Rng& rng, int n_inputs, int n_ands) {
  std::vector<Lit> lits{aig::kFalse, aig::kTrue};
  for (int i = 0; i < n_inputs; ++i)
    lits.push_back(g.add_input());
  for (int i = 0; i < n_ands; ++i) {
    Lit a = lits[size_t(rng.range(0, int64_t(lits.size()) - 1))];
    Lit b = lits[size_t(rng.range(0, int64_t(lits.size()) - 1))];
    if (rng.range(0, 1)) a = aig::lit_not(a);
    if (rng.range(0, 1)) b = aig::lit_not(b);
    lits.push_back(g.and_(a, b));
  }
  return lits;
}

class CnfRandomEquiv : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CnfRandomEquiv, SatMatchesExhaustiveSimulation) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Aig g;
  const int n_inputs = int(rng.range(2, 6));
  const auto lits = random_aig(g, rng, n_inputs, int(rng.range(4, 20)));
  const Lit target = lits.back();

  // Exhaustive simulation: is the target satisfiable / falsifiable?
  std::vector<uint64_t> in(size_t(n_inputs), 0);
  bool can_be_1 = false, can_be_0 = false;
  for (uint64_t v = 0; v < (uint64_t(1) << n_inputs); ++v) {
    for (int i = 0; i < n_inputs; ++i)
      in[size_t(i)] = ((v >> i) & 1) ? ~0ull : 0ull;
    const auto words = g.simulate(in);
    if (Aig::sim_lit(words, target) & 1)
      can_be_1 = true;
    else
      can_be_0 = true;
  }

  sat::Solver s;
  aig::CnfEncoder enc(s);
  enc.encode(g);
  EXPECT_EQ(s.solve({enc.lit(target)}) == sat::Result::Sat, can_be_1) << "seed " << seed;
  EXPECT_EQ(s.solve({~enc.lit(target)}) == sat::Result::Sat, can_be_0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfRandomEquiv, ::testing::Range<uint64_t>(1, 40));

class CnfModelCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CnfModelCheck, ModelsSatisfyTheCircuit) {
  // Every SAT model returned must actually evaluate the AIG to the assumed
  // values (validates both the encoding and Solver::model_value).
  const uint64_t seed = GetParam();
  Rng rng(seed + 1000);
  Aig g;
  const int n_inputs = int(rng.range(3, 7));
  const auto lits = random_aig(g, rng, n_inputs, int(rng.range(6, 24)));
  const Lit target = lits.back();

  sat::Solver s;
  aig::CnfEncoder enc(s);
  enc.encode(g);
  for (const bool want : {true, false}) {
    const auto r = s.solve({want ? enc.lit(target) : ~enc.lit(target)});
    if (r != sat::Result::Sat)
      continue;
    std::vector<uint64_t> in(g.num_inputs(), 0);
    for (size_t i = 0; i < g.num_inputs(); ++i) {
      const Lit il = aig::mk_lit(g.inputs()[i]);
      if (s.model_value(sat::var(enc.lit(il))))
        in[i] = ~0ull;
    }
    const auto words = g.simulate(in);
    EXPECT_EQ((Aig::sim_lit(words, target) & 1) != 0, want) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CnfModelCheck, ::testing::Range<uint64_t>(1, 25));

} // namespace

TEST(Cnf, IncrementalAssumptionsDoNotPollute) {
  // Solving under assumptions must not permanently constrain the solver.
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit y = g.and_(a, b);
  sat::Solver s;
  aig::CnfEncoder enc(s);
  enc.encode(g);
  EXPECT_EQ(s.solve({enc.lit(y), ~enc.lit(a)}), sat::Result::Unsat);
  // Same query again and a satisfiable one after: both must work.
  EXPECT_EQ(s.solve({enc.lit(y), ~enc.lit(a)}), sat::Result::Unsat);
  EXPECT_EQ(s.solve({enc.lit(y)}), sat::Result::Sat);
  EXPECT_EQ(s.solve({~enc.lit(a)}), sat::Result::Sat);
}

TEST(Cnf, DeepChainUnsatProof) {
  // AND-chain of 64 inputs: output=1 forces all inputs; contradicting any
  // single one is UNSAT.
  Aig g;
  std::vector<Lit> ins;
  Lit acc = aig::kTrue;
  for (int i = 0; i < 64; ++i) {
    ins.push_back(g.add_input());
    acc = g.and_(acc, ins.back());
  }
  sat::Solver s;
  aig::CnfEncoder enc(s);
  enc.encode(g);
  for (int i : {0, 13, 63}) {
    EXPECT_EQ(s.solve({enc.lit(acc), ~enc.lit(ins[size_t(i)])}), sat::Result::Unsat) << i;
  }
  EXPECT_EQ(s.solve({enc.lit(acc)}), sat::Result::Sat);
}
