// Exhaustive packed simulation (sim::exhaustive_forced): the §II "few free
// inputs" decision engine. Forced/contradiction semantics, constraint
// filtering, and the free-input ceiling.
#include "aig/aig.hpp"
#include "sim/packed_sim.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using aig::Aig;
using aig::Lit;
using sim::Forced;
using sim::exhaustive_forced;

TEST(PackedSim, UnconstrainedInputIsFree) {
  Aig g;
  const Lit a = g.add_input("a");
  EXPECT_EQ(exhaustive_forced(g, {}, a), Forced::None);
}

TEST(PackedSim, ConstantTargets) {
  Aig g;
  (void)g.add_input("a");
  EXPECT_EQ(exhaustive_forced(g, {}, aig::kTrue), Forced::One);
  EXPECT_EQ(exhaustive_forced(g, {}, aig::kFalse), Forced::Zero);
}

TEST(PackedSim, DirectConstraintForcesTarget) {
  Aig g;
  const Lit a = g.add_input("a");
  EXPECT_EQ(exhaustive_forced(g, {{a, true}}, a), Forced::One);
  EXPECT_EQ(exhaustive_forced(g, {{a, false}}, a), Forced::Zero);
  EXPECT_EQ(exhaustive_forced(g, {{a, true}}, aig::lit_not(a)), Forced::Zero);
}

TEST(PackedSim, OrDependenceFig3) {
  // The paper's Fig. 3 kernel: target = a | r, constraint a = 1.
  Aig g;
  const Lit a = g.add_input("a");
  const Lit r = g.add_input("r");
  const Lit target = g.or_(a, r);
  EXPECT_EQ(exhaustive_forced(g, {{a, true}}, target), Forced::One);
  EXPECT_EQ(exhaustive_forced(g, {{a, false}}, target), Forced::None) << "r still free";
}

TEST(PackedSim, InternalNodeConstraint) {
  // Constrain an internal AND node rather than an input: target must follow.
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit ab = g.and_(a, b);
  // With ab = 1, both a and b are 1, so a|b is forced 1 and a^b forced 0.
  EXPECT_EQ(exhaustive_forced(g, {{ab, true}}, g.or_(a, b)), Forced::One);
  EXPECT_EQ(exhaustive_forced(g, {{ab, true}}, g.xor_(a, b)), Forced::Zero);
  // With ab = 0, a|b can still be 0 or 1.
  EXPECT_EQ(exhaustive_forced(g, {{ab, false}}, g.or_(a, b)), Forced::None);
}

TEST(PackedSim, ContradictoryConstraints) {
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit ab = g.and_(a, b);
  // a = 0 but a&b = 1: no assignment satisfies this (dead path).
  EXPECT_EQ(exhaustive_forced(g, {{a, false}, {ab, true}}, b), Forced::Contradiction);
}

TEST(PackedSim, EqualityChainForcing) {
  // xnor(a, b) = 1 and a = 1 forces b = 1.
  Aig g;
  const Lit a = g.add_input("a");
  const Lit b = g.add_input("b");
  const Lit eq = g.xnor_(a, b);
  EXPECT_EQ(exhaustive_forced(g, {{eq, true}, {a, true}}, b), Forced::One);
  EXPECT_EQ(exhaustive_forced(g, {{eq, true}, {a, false}}, b), Forced::Zero);
  EXPECT_EQ(exhaustive_forced(g, {{eq, false}, {a, true}}, b), Forced::Zero);
}

TEST(PackedSim, RespectsMaxFreeInputs) {
  Aig g;
  std::vector<Lit> ins;
  Lit acc = aig::kTrue;
  for (int i = 0; i < 10; ++i) {
    ins.push_back(g.add_input());
    acc = g.and_(acc, ins.back());
  }
  // Decidable in principle, but the ceiling refuses the enumeration.
  EXPECT_EQ(exhaustive_forced(g, {{acc, true}}, ins[0], /*max_free_inputs=*/4),
            Forced::None);
  EXPECT_EQ(exhaustive_forced(g, {{acc, true}}, ins[0], /*max_free_inputs=*/10),
            Forced::One);
}

TEST(PackedSim, WideEnumerationBeyondOneWord) {
  // 8 free inputs = 256 patterns = 4 x 64-bit words: exercises the packed
  // sweep across word boundaries.
  Aig g;
  std::vector<Lit> ins;
  for (int i = 0; i < 8; ++i)
    ins.push_back(g.add_input());
  // majority-ish function: target = (i0&i1) | (i2&i3) | ... none forced.
  Lit t = aig::kFalse;
  for (int i = 0; i < 8; i += 2)
    t = g.or_(t, g.and_(ins[size_t(i)], ins[size_t(i + 1)]));
  EXPECT_EQ(exhaustive_forced(g, {}, t), Forced::None);
  // Force one conjunct: target forced 1.
  EXPECT_EQ(exhaustive_forced(g, {{ins[0], true}, {ins[1], true}}, t), Forced::One);
  // Forbid every conjunct: forced 0.
  std::vector<std::pair<Lit, bool>> all_zero;
  for (int i = 0; i < 8; i += 2)
    all_zero.emplace_back(ins[size_t(i)], false);
  EXPECT_EQ(exhaustive_forced(g, all_zero, t), Forced::Zero);
}

TEST(PackedSim, ConstrainedConstantContradiction) {
  Aig g;
  (void)g.add_input("a");
  EXPECT_EQ(exhaustive_forced(g, {{aig::kTrue, false}}, aig::kTrue),
            Forced::Contradiction);
}

class PackedSimVsBruteForce : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PackedSimVsBruteForce, MatchesNaiveEnumeration) {
  // Random small AIG + random constraint set: compare against a naive
  // per-assignment reference evaluation.
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Aig g;
  const int n = int(rng.range(2, 5));
  std::vector<Lit> lits{aig::kFalse, aig::kTrue};
  for (int i = 0; i < n; ++i)
    lits.push_back(g.add_input());
  for (int i = 0; i < int(rng.range(3, 12)); ++i) {
    Lit a = lits[rng.below(lits.size())];
    Lit b = lits[rng.below(lits.size())];
    if (rng.range(0, 1)) a = aig::lit_not(a);
    if (rng.range(0, 1)) b = aig::lit_not(b);
    lits.push_back(g.and_(a, b));
  }
  const Lit target = lits.back();
  std::vector<std::pair<Lit, bool>> constraints;
  for (int i = 0; i < 2; ++i)
    constraints.emplace_back(lits[rng.below(lits.size())], rng.range(0, 1) != 0);

  // Naive reference.
  bool seen0 = false, seen1 = false, any = false;
  for (uint64_t v = 0; v < (uint64_t(1) << n); ++v) {
    std::vector<uint64_t> in(size_t(n), 0);
    for (int i = 0; i < n; ++i)
      in[size_t(i)] = ((v >> i) & 1) ? ~0ull : 0ull;
    const auto words = g.simulate(in);
    bool ok = true;
    for (const auto& [l, val] : constraints)
      if (((Aig::sim_lit(words, l) & 1) != 0) != val)
        ok = false;
    if (!ok)
      continue;
    any = true;
    ((Aig::sim_lit(words, target) & 1) ? seen1 : seen0) = true;
  }
  const Forced want = !any               ? Forced::Contradiction
                      : (seen0 && seen1) ? Forced::None
                      : seen1            ? Forced::One
                                         : Forced::Zero;
  EXPECT_EQ(exhaustive_forced(g, constraints, target), want) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedSimVsBruteForce, ::testing::Range<uint64_t>(1, 50));
