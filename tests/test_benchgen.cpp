// Benchmark generators: determinism, frontend compatibility, profile
// fidelity (structures each motif claims to produce), and suite shape.
#include "aig/aigmap.hpp"
#include "benchgen/industrial.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "benchgen/verilog_gen.hpp"
#include "rtlil/module.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using benchgen::BenchCircuit;
using benchgen::Profile;
using rtlil::CellType;

TEST(VerilogGen, MotifsProduceParseableModules) {
  benchgen::VerilogGen g("m", 42);
  g.case_chain(3, 6, 8, false);
  g.dependent_select(8, 3);
  g.same_ctrl_redundant(8);
  g.priority_decoder(3, 5, 8);
  g.datapath(8, 4);
  const std::string src = g.finish();
  auto d = verilog::read_verilog(src);
  ASSERT_NE(d->top(), nullptr);
  EXPECT_GT(d->top()->cell_count(), 0u);
}

TEST(VerilogGen, CaseChainCreatesEqControlledMuxChain) {
  benchgen::VerilogGen g("m", 1);
  g.case_chain(2, 4, 8, false);
  auto d = verilog::read_verilog(g.finish());
  // Listing 1 shape: eq cells + a mux chain. Leaf sharing may merge adjacent
  // equal branches at elaboration, so the chain can be shorter than items-1.
  EXPECT_GE(d->top()->count_cells(CellType::Mux), 2u);
  EXPECT_GE(d->top()->count_cells(CellType::Eq), 2u);
}

TEST(VerilogGen, PipelineRegCreatesDff) {
  benchgen::VerilogGen g("m", 1);
  const std::string v = g.datapath(8, 2);
  g.pipeline_reg(v, 8);
  auto d = verilog::read_verilog(g.finish());
  EXPECT_GE(d->top()->count_cells(CellType::Dff), 1u);
}

TEST(VerilogGen, DeterministicForSameSeed) {
  auto make = [](uint64_t seed) {
    benchgen::VerilogGen g("m", seed);
    g.case_chain(3, 6, 8, true);
    g.dependent_select(16, 4);
    return g.finish();
  };
  EXPECT_EQ(make(7), make(7));
  EXPECT_NE(make(7), make(8));
}

TEST(PublicBench, SuiteHasTenNamedCircuits) {
  const auto suite = benchgen::public_suite();
  ASSERT_EQ(suite.size(), 10u);
  // Paper Table II order.
  EXPECT_EQ(suite[0].name, "top_cache_axi");
  EXPECT_EQ(suite[1].name, "pci_bridge32");
  EXPECT_EQ(suite[2].name, "wb_conmax");
  EXPECT_EQ(suite[9].name, "ac97_ctrl");
}

TEST(PublicBench, AllCircuitsElaborate) {
  for (const BenchCircuit& c : benchgen::public_suite()) {
    SCOPED_TRACE(c.name);
    auto d = verilog::read_verilog(c.verilog);
    ASSERT_NE(d->top(), nullptr);
    EXPECT_GT(d->top()->cell_count(), 0u);
    EXPECT_GT(aig::aig_area(*d->top()), 0u);
  }
}

TEST(PublicBench, GenerationIsDeterministic) {
  const Profile p = benchgen::profile_for("wb_dma");
  const auto a = benchgen::generate_circuit("wb_dma", p, 3);
  const auto b = benchgen::generate_circuit("wb_dma", p, 3);
  EXPECT_EQ(a.verilog, b.verilog);
}

TEST(PublicBench, ProfileForThrowsOnUnknownName) {
  EXPECT_THROW(benchgen::profile_for("nonexistent_case"), std::exception);
}

TEST(PublicBench, ProfilesMatchPaperNarrative) {
  // top_cache_axi: Rebuild-dominant (many case chains, few dependent nests).
  const Profile cache = benchgen::profile_for("top_cache_axi");
  EXPECT_GT(cache.case_chains, 0);
  // wb_conmax: SAT-dominant (dependent arbitration logic).
  const Profile conmax = benchgen::profile_for("wb_conmax");
  EXPECT_GT(conmax.dependent, 0);
  EXPECT_GT(conmax.dependent, cache.dependent);
  EXPECT_GT(cache.case_chains, conmax.case_chains);
}

TEST(PublicBench, RelativeSizesFollowTable2) {
  // top_cache_axi must be the largest original AIG; ac97_ctrl the smallest.
  size_t cache_area = 0, ac97_area = 0;
  for (const BenchCircuit& c : benchgen::public_suite()) {
    auto d = verilog::read_verilog(c.verilog);
    const size_t area = aig::aig_area(*d->top());
    if (c.name == "top_cache_axi")
      cache_area = area;
    if (c.name == "ac97_ctrl")
      ac97_area = area;
  }
  EXPECT_GT(cache_area, ac97_area * 4) << "size skew should mirror Table II";
}

TEST(Industrial, SuiteShapeMatchesPaper) {
  const auto suite = benchgen::industrial_suite(1);
  ASSERT_EQ(suite.size(), 8u);
  // 37.5% (3 of 8) test points are "large" — verify a clear size skew.
  std::vector<size_t> areas;
  for (const auto& c : suite) {
    auto d = verilog::read_verilog(c.verilog);
    areas.push_back(aig::aig_area(*d->top()));
  }
  std::sort(areas.begin(), areas.end());
  EXPECT_GT(areas.back(), areas.front() * 2);
}

TEST(Industrial, SelectionDominatedStructure) {
  // Industrial circuits must be mux/pmux-rich relative to datapath cells
  // ("the proportion of MUX gates and PMUX gates is higher").
  const auto c = benchgen::generate_industrial(0, 1, 99);
  auto d = verilog::read_verilog(c.verilog);
  const size_t muxes =
      d->top()->count_cells(CellType::Mux) + d->top()->count_cells(CellType::Pmux);
  const size_t arith = d->top()->count_cells(CellType::Add) +
                       d->top()->count_cells(CellType::Mul) +
                       d->top()->count_cells(CellType::Sub);
  EXPECT_GT(muxes, arith);
}

TEST(Industrial, ScaleParameterGrowsCircuit) {
  const auto small = benchgen::generate_industrial(1, 1, 5);
  const auto large = benchgen::generate_industrial(1, 3, 5);
  auto ds = verilog::read_verilog(small.verilog);
  auto dl = verilog::read_verilog(large.verilog);
  EXPECT_GT(dl->top()->cell_count(), ds->top()->cell_count());
}

TEST(RandomCircuit, VerilogAlwaysElaborates) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE(seed);
    const std::string src = benchgen::random_verilog(seed, 5);
    auto d = verilog::read_verilog(src);
    ASSERT_NE(d->top(), nullptr);
  }
}

TEST(RandomCircuit, NetlistGeneratorProducesValidModules) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE(seed);
    rtlil::Design d;
    rtlil::Module* m = benchgen::random_netlist(d, "rand", seed, 25);
    ASSERT_NE(m, nullptr);
    EXPECT_NO_THROW(m->check());
    EXPECT_GT(m->cell_count(), 0u);
  }
}

TEST(RandomCircuit, NetlistDeterministic) {
  rtlil::Design d1, d2;
  rtlil::Module* m1 = benchgen::random_netlist(d1, "r", 11, 30);
  rtlil::Module* m2 = benchgen::random_netlist(d2, "r", 11, 30);
  ASSERT_EQ(m1->cell_count(), m2->cell_count());
  for (size_t i = 0; i < m1->cells().size(); ++i)
    EXPECT_EQ(m1->cells()[i]->type(), m2->cells()[i]->type());
}
