#include "rtlil/design_stats.hpp"
#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"
#include "rtlil/topo.hpp"

#include <gtest/gtest.h>

using namespace smartly::rtlil;

TEST(Module, WireAndCellNamesAreUnique) {
  Design d;
  Module* m = d.add_module("top");
  m->add_wire("w", 4);
  EXPECT_THROW(m->add_wire("w", 2), std::invalid_argument);
  m->add_cell(CellType::And, "c");
  EXPECT_THROW(m->add_cell(CellType::Or, "c"), std::invalid_argument);
  EXPECT_THROW(d.add_module("top"), std::invalid_argument);
}

TEST(Module, PortsKeepRegistrationOrder) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 1);
  Wire* y = m->add_wire("y", 1);
  m->set_port_input(a);
  m->set_port_output(y);
  ASSERT_EQ(m->ports().size(), 2u);
  EXPECT_EQ(m->ports()[0], a);
  EXPECT_EQ(m->ports()[1], y);
  EXPECT_EQ(a->port_id, 1);
  EXPECT_EQ(y->port_id, 2);
}

TEST(Module, BuildersInferWidthsAndPassCheck) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 4);
  Wire* b = m->add_wire("b", 4);
  const SigSpec sum = m->Add(SigSpec(a), SigSpec(b), 5);
  EXPECT_EQ(sum.size(), 5);
  const SigSpec eq = m->Eq(SigSpec(a), SigSpec(b));
  EXPECT_EQ(eq.size(), 1);
  const SigSpec y = m->Mux(SigSpec(a), SigSpec(b), eq);
  EXPECT_EQ(y.size(), 4);
  EXPECT_NO_THROW(m->check());
}

TEST(Module, ConnectRejectsWidthMismatch) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 4);
  Wire* b = m->add_wire("b", 2);
  EXPECT_THROW(m->connect(SigSpec(a), SigSpec(b)), std::invalid_argument);
}

TEST(Module, RemoveCellsDropsLookup) {
  Design d;
  Module* m = d.add_module("top");
  Cell* c = m->add_cell(CellType::And, "a1");
  EXPECT_EQ(m->cell("a1"), c);
  m->remove_cell(c);
  EXPECT_EQ(m->cell("a1"), nullptr);
  EXPECT_EQ(m->cell_count(), 0u);
}

TEST(SigMapTest, AliasChainsCollapseTowardDrivers) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 1);
  Wire* b = m->add_wire("b", 1);
  Wire* c = m->add_wire("c", 1);
  m->connect(SigSpec(b), SigSpec(a)); // b aliases a
  m->connect(SigSpec(c), SigSpec(b)); // c aliases b
  SigMap sm(*m);
  EXPECT_EQ(sm(SigBit(c, 0)), sm(SigBit(a, 0)));
  EXPECT_EQ(sm(SigBit(b, 0)), sm(SigBit(a, 0)));
}

TEST(SigMapTest, ConstantsWinAsRepresentatives) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 1);
  m->connect(SigSpec(a), SigSpec(State::S1));
  SigMap sm(*m);
  EXPECT_TRUE(sm(SigBit(a, 0)).is_const());
  EXPECT_EQ(sm(SigBit(a, 0)).data, State::S1);
}

TEST(NetlistIndexTest, DriversReadersAndTopo) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 2);
  m->set_port_input(a);
  const SigSpec n1 = m->Not(SigSpec(a));
  const SigSpec n2 = m->Not(n1);
  Wire* y = m->add_wire("y", 2);
  m->set_port_output(y);
  m->connect(SigSpec(y), n2);

  NetlistIndex idx(*m);
  Cell* first = idx.driver(n1[0]);
  Cell* second = idx.driver(n2[0]);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first, second);
  EXPECT_EQ(idx.readers(n1[0]).size(), 1u);
  EXPECT_EQ(idx.readers(n1[0])[0], second);
  EXPECT_TRUE(idx.drives_output_port(n2[0]));
  EXPECT_EQ(idx.fanout(n2[0]), 1); // output port counts as one

  // Topological order puts first before second.
  const auto& topo = idx.topo_order();
  const auto p1 = std::find(topo.begin(), topo.end(), first);
  const auto p2 = std::find(topo.begin(), topo.end(), second);
  EXPECT_LT(p1, p2);
}

TEST(NetlistIndexTest, DffBreaksCombLoop) {
  Design d;
  Module* m = d.add_module("top");
  Wire* clk = m->add_wire("clk", 1);
  m->set_port_input(clk);
  Wire* q = m->add_wire("q", 1);
  const SigSpec n = m->Not(SigSpec(q));
  m->add_dff(n, SigSpec(q), SigSpec(clk)); // q <= ~q : fine through a dff
  EXPECT_NO_THROW(NetlistIndex idx(*m));
}

TEST(NetlistIndexTest, CombinationalCycleThrows) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 1);
  Wire* b = m->add_wire("b", 1);
  Cell* c1 = m->add_cell(CellType::Not);
  c1->set_port(Port::A, SigSpec(a));
  c1->set_port(Port::Y, SigSpec(b));
  c1->infer_widths();
  Cell* c2 = m->add_cell(CellType::Not);
  c2->set_port(Port::A, SigSpec(b));
  c2->set_port(Port::Y, SigSpec(a));
  c2->infer_widths();
  EXPECT_THROW(NetlistIndex idx(*m), std::logic_error);
}

TEST(CloneDesign, DeepCopyIsIndependentAndIdentical) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 4);
  m->set_port_input(a);
  Wire* y = m->add_wire("y", 4);
  m->set_port_output(y);
  m->connect(SigSpec(y), m->Not(SigSpec(a)));

  auto copy = clone_design(d);
  Module* cm = copy->top();
  ASSERT_NE(cm, nullptr);
  EXPECT_EQ(cm->cell_count(), m->cell_count());
  EXPECT_EQ(cm->wires().size(), m->wires().size());
  EXPECT_EQ(dump_module(*cm), dump_module(*m));
  // Mutating the copy leaves the original intact.
  cm->add_wire("extra", 1);
  EXPECT_FALSE(m->has_wire("extra"));
}

TEST(Stats, CountsCellKinds) {
  Design d;
  Module* m = d.add_module("top");
  Wire* a = m->add_wire("a", 2);
  Wire* s = m->add_wire("s", 1);
  m->Mux(SigSpec(a), SigSpec(a), SigSpec(s));
  m->Eq(SigSpec(a), SigSpec(a));
  const ModuleStats st = compute_stats(*m);
  EXPECT_EQ(st.mux_cells, 1u);
  EXPECT_EQ(st.eq_cells, 1u);
  EXPECT_EQ(st.cells, 2u);
}
