// Verilog lexer: token classification, number literal decoding, comments,
// line tracking, and error reporting.
#include "verilog/lexer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

using namespace smartly::verilog;

namespace {
std::vector<std::string> texts(const std::string& src) {
  std::vector<std::string> out;
  for (const Token& t : tokenize(src))
    if (t.kind != TokKind::Eof)
      out.push_back(t.text);
  return out;
}
} // namespace

TEST(Lexer, BasicTokens) {
  const auto t = texts("module top(a, b); endmodule");
  const std::vector<std::string> want{"module", "top", "(", "a",    ",",
                                      "b",      ")",   ";", "endmodule"};
  EXPECT_EQ(t, want);
}

TEST(Lexer, IdentifiersWithUnderscores) {
  const auto t = texts("_foo bar_1 baz2");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "_foo");
  EXPECT_EQ(t[1], "bar_1");
  EXPECT_EQ(t[2], "baz2");
}

TEST(Lexer, MultiCharOperators) {
  const auto t = texts("a <= b == c != d && e || f ~^ g >>> h << i >= j");
  EXPECT_NE(std::find(t.begin(), t.end(), "<="), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "=="), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "!="), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "&&"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "||"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "~^"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), ">>>"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), "<<"), t.end());
  EXPECT_NE(std::find(t.begin(), t.end(), ">="), t.end());
}

TEST(Lexer, LineCommentsSkipped) {
  const auto t = texts("a // this is a comment\nb");
  const std::vector<std::string> want{"a", "b"};
  EXPECT_EQ(t, want);
}

TEST(Lexer, BlockCommentsSkippedAcrossLines) {
  const auto t = texts("a /* multi\nline\ncomment */ b");
  const std::vector<std::string> want{"a", "b"};
  EXPECT_EQ(t, want);
}

TEST(Lexer, LineNumbersTracked) {
  const auto toks = tokenize("a\nb\n\nc");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 4);
}

TEST(Lexer, NumberTokensKeepSpelling) {
  const auto toks = tokenize("42 8'hf0 3'b1zz 4'd9");
  ASSERT_GE(toks.size(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(toks[size_t(i)].kind, TokKind::Number) << i;
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].text, "8'hf0");
  EXPECT_EQ(toks[2].text, "3'b1zz");
}

// --- decode_number ---------------------------------------------------------

TEST(DecodeNumber, UnsizedDecimal) {
  const NumberValue v = decode_number("42", 1);
  EXPECT_EQ(v.width, 32);
  EXPECT_FALSE(v.sized);
  ASSERT_GE(v.bits_lsb_first.size(), 6u);
  EXPECT_EQ(v.bits_lsb_first.substr(0, 6), "010101"); // 42 = 0b101010
}

TEST(DecodeNumber, SizedHex) {
  const NumberValue v = decode_number("8'hf0", 1);
  EXPECT_EQ(v.width, 8);
  EXPECT_TRUE(v.sized);
  EXPECT_EQ(v.bits_lsb_first, "00001111");
}

TEST(DecodeNumber, SizedBinaryWithZ) {
  const NumberValue v = decode_number("3'b1zz", 1);
  EXPECT_EQ(v.width, 3);
  EXPECT_EQ(v.bits_lsb_first, "zz1");
}

TEST(DecodeNumber, SizedBinaryWithX) {
  const NumberValue v = decode_number("4'b10x1", 1);
  EXPECT_EQ(v.width, 4);
  EXPECT_EQ(v.bits_lsb_first, "1x01");
}

TEST(DecodeNumber, SizedDecimal) {
  const NumberValue v = decode_number("4'd9", 1);
  EXPECT_EQ(v.width, 4);
  EXPECT_EQ(v.bits_lsb_first, "1001");
}

TEST(DecodeNumber, TruncationToDeclaredWidth) {
  const NumberValue v = decode_number("2'd7", 1); // 7 truncated to 2 bits = 3
  EXPECT_EQ(v.width, 2);
  EXPECT_EQ(v.bits_lsb_first, "11");
}

TEST(DecodeNumber, PaddingToDeclaredWidth) {
  const NumberValue v = decode_number("8'b11", 1);
  EXPECT_EQ(v.width, 8);
  EXPECT_EQ(v.bits_lsb_first, "11000000");
}

TEST(DecodeNumber, MalformedThrows) {
  EXPECT_THROW(decode_number("8'q12", 1), std::runtime_error);
  EXPECT_THROW(decode_number("8'b", 1), std::runtime_error);
  EXPECT_THROW(decode_number("8'b12", 1), std::runtime_error); // 2 not binary
}

TEST(Lexer, EmptySourceYieldsEofOnly) {
  const auto toks = tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::Eof);
}

TEST(Lexer, WhitespaceOnlySource) {
  const auto toks = tokenize("  \t\n  \r\n ");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::Eof);
}
