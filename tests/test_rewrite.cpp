// DAG-aware cut-rewriting engine: cut-enumeration invariants (leaf bounds,
// dominated-cut pruning, determinism), replacement-library correctness over
// every 4-input function, factoring rewrites with CEC, randomized
// rewrite-then-CEC properties, and thread-count determinism.
#include "aig/aigmap.hpp"
#include "backend/write_rtlil.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "rewrite/cut_enum.hpp"
#include "rewrite/npn.hpp"
#include "rewrite/rewrite_engine.hpp"
#include "rewrite/rewrite_lib.hpp"
#include "rtlil/module.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using namespace smartly;
using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  Fixture() { mod = design.add_module("top"); }
  Wire* in(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w = 1) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }
};

rewrite::RewriteOptions serial_options() {
  rewrite::RewriteOptions o;
  o.threads = 1;
  return o;
}

void expect_equivalent(const Module& gold, const Module& gate, const char* label) {
  const auto r = cec::check_equivalence(gold, gate);
  EXPECT_TRUE(r.equivalent) << label << ": differs at " << r.failing_output;
}

} // namespace

// --- cut enumeration --------------------------------------------------------

TEST(CutEnum, LeafBoundsAndOrdering) {
  aig::Aig g;
  std::vector<aig::Lit> ins;
  for (int i = 0; i < 8; ++i)
    ins.push_back(g.add_input());
  // A reconvergent cone: pairwise ANDs, then a tree over them.
  std::vector<aig::Lit> layer;
  for (int i = 0; i < 8; i += 2)
    layer.push_back(g.and_(ins[i], ins[i + 1]));
  aig::Lit root = layer[0];
  for (size_t i = 1; i < layer.size(); ++i)
    root = g.and_(root, g.xor_(layer[i], ins[i]));
  g.add_output(root);

  const rewrite::CutSet cuts = rewrite::enumerate_cuts(g);
  ASSERT_EQ(cuts.cuts.size(), g.num_nodes());
  for (uint32_t n = 0; n < g.num_nodes(); ++n) {
    const auto& set = cuts.cuts[n];
    ASSERT_FALSE(set.empty());
    // The trivial cut {n} is always last.
    EXPECT_EQ(set.back().size, 1u);
    EXPECT_EQ(set.back().leaves[0], n);
    for (const rewrite::Cut& c : set) {
      ASSERT_GE(c.size, 1u);
      ASSERT_LE(c.size, 4u);
      for (size_t i = 1; i < c.size; ++i)
        EXPECT_LT(c.leaves[i - 1], c.leaves[i]) << "leaves sorted + unique";
      uint32_t sign = 0;
      for (size_t i = 0; i < c.size; ++i)
        sign |= 1u << (c.leaves[i] & 31);
      EXPECT_EQ(c.sign, sign);
    }
    // Dominated-cut pruning: no kept non-trivial cut is a superset of
    // another kept cut.
    for (size_t i = 0; i + 1 < set.size(); ++i)
      for (size_t j = 0; j + 1 < set.size(); ++j)
        if (i != j)
          EXPECT_FALSE(set[i].subset_of(set[j]))
              << "cut " << i << " dominates kept cut " << j << " at node " << n;
  }
}

TEST(CutEnum, RespectsCutLimitAndIsDeterministic) {
  aig::Aig g;
  std::vector<aig::Lit> ins;
  for (int i = 0; i < 6; ++i)
    ins.push_back(g.add_input());
  aig::Lit x = ins[0];
  for (int i = 1; i < 6; ++i)
    x = g.and_(g.or_(x, ins[i]), g.xor_(x, ins[(i + 1) % 6]));
  g.add_output(x);

  rewrite::CutOptions narrow;
  narrow.cut_limit = 3;
  const rewrite::CutSet a = rewrite::enumerate_cuts(g, narrow);
  const rewrite::CutSet b = rewrite::enumerate_cuts(g, narrow);
  EXPECT_EQ(a.total, b.total);
  for (uint32_t n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LE(a.cuts[n].size(), 4u); // limit + trivial
    ASSERT_EQ(a.cuts[n].size(), b.cuts[n].size());
    for (size_t i = 0; i < a.cuts[n].size(); ++i)
      EXPECT_TRUE(a.cuts[n][i] == b.cuts[n][i]);
  }
}

// --- replacement library ----------------------------------------------------

TEST(RewriteLibrary, EveryFunctionEvaluatesBack) {
  const rewrite::RewriteLibrary& lib = rewrite::RewriteLibrary::instance();
  const rewrite::TruthTable proj[4] = {rewrite::kProjection[0], rewrite::kProjection[1],
                                       rewrite::kProjection[2], rewrite::kProjection[3]};
  for (uint32_t tt = 0; tt < 65536; ++tt) {
    const rewrite::GateProgram& p = lib.program(static_cast<rewrite::TruthTable>(tt));
    ASSERT_EQ(p.tt, tt);
    EXPECT_EQ(rewrite::eval_program(p, proj), static_cast<rewrite::TruthTable>(tt));
    EXPECT_EQ(p.support, rewrite::tt_support(static_cast<rewrite::TruthTable>(tt)));
  }
}

TEST(RewriteLibrary, CostIsBounded) {
  // A plain Shannon tree over four variables costs at most 1 + 2 + 4 = 7
  // gates; a leaf inverter can add one more (inverters are explicit cells
  // here, unlike AIG complement edges).
  EXPECT_LE(rewrite::RewriteLibrary::instance().max_cost(), 8u);
}

TEST(RewriteLibrary, TrivialFunctionsNeedNoGates) {
  const rewrite::RewriteLibrary& lib = rewrite::RewriteLibrary::instance();
  EXPECT_EQ(lib.program(0).ops.size(), 0u);
  EXPECT_EQ(lib.program(0xffff).ops.size(), 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(lib.program(rewrite::kProjection[i]).ops.size(), 0u);
    EXPECT_EQ(
        lib.program(static_cast<rewrite::TruthTable>(~rewrite::kProjection[i])).ops.size(),
        1u); // one Not
  }
}

TEST(RewriteLibrary, ClassRepresentativesAreSeeded) {
  const rewrite::RewriteLibrary& lib = rewrite::RewriteLibrary::instance();
  const rewrite::TruthTable proj[4] = {rewrite::kProjection[0], rewrite::kProjection[1],
                                       rewrite::kProjection[2], rewrite::kProjection[3]};
  for (const rewrite::TruthTable rep : rewrite::NpnTable::instance().representatives())
    EXPECT_EQ(rewrite::eval_program(lib.program(rep), proj), rep);
}

// --- the engine -------------------------------------------------------------

TEST(RewriteEngine, FactorsSharedAndTerm) {
  // y = (a & b) | (a & c) over 8-bit words: three cells, rewritable to
  // a & (b | c) — two cells, one of them dead-cone-credited.
  Fixture f;
  Wire* a = f.in("a", 8);
  Wire* b = f.in("b", 8);
  Wire* c = f.in("c", 8);
  Wire* y = f.out("y", 8);
  const SigSpec t1 = f.mod->And(SigSpec(a), SigSpec(b));
  const SigSpec t2 = f.mod->And(SigSpec(a), SigSpec(c));
  f.mod->connect(SigSpec(y), f.mod->Or(t1, t2));

  const auto golden = rtlil::clone_design(f.design);
  const size_t before = f.mod->cell_count();
  const rewrite::RewriteStats stats = opt::rewrite_stage(*f.mod, serial_options());
  EXPECT_GE(stats.rewrites, 1u);
  EXPECT_LT(f.mod->cell_count(), before);
  EXPECT_NO_THROW(f.mod->check());
  expect_equivalent(*golden->top(), *f.mod, "factoring");
}

TEST(RewriteEngine, RestructuresChainedMuxes) {
  // y = s1 ? (s2 ? a : b) : a — the mux bi-decomposition target: same cell
  // count ((s1 & ~s2) ? b : a), strictly fewer AIG nodes.
  Fixture f;
  Wire* s1 = f.in("s1");
  Wire* s2 = f.in("s2");
  Wire* a = f.in("a", 8);
  Wire* b = f.in("b", 8);
  Wire* y = f.out("y", 8);
  const SigSpec inner = f.mod->Mux(SigSpec(b), SigSpec(a), SigSpec(s2));
  f.mod->add_mux(SigSpec(a), inner, SigSpec(s1), SigSpec(y));

  const auto golden = rtlil::clone_design(f.design);
  const size_t aig_before = aig::aig_area(*f.mod);
  const rewrite::RewriteStats stats = opt::rewrite_stage(*f.mod, serial_options());
  EXPECT_GE(stats.rewrites, 1u);
  EXPECT_LT(aig::aig_area(*f.mod), aig_before);
  EXPECT_NO_THROW(f.mod->check());
  expect_equivalent(*golden->top(), *f.mod, "mux restructuring");
}

TEST(RewriteEngine, NeverGrowsCellCount) {
  for (const uint64_t seed : {11u, 12u, 13u, 14u}) {
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    Module& top = *design->top();
    opt::coarse_opt(top);
    const size_t before = top.cell_count();
    opt::rewrite_stage(top, serial_options());
    EXPECT_LE(top.cell_count(), before) << "seed " << seed;
  }
}

TEST(RewriteEngine, RandomizedRewriteThenCec) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    auto design = verilog::read_verilog(benchgen::random_verilog(seed, 6));
    const auto golden = rtlil::clone_design(*design);
    Module& top = *design->top();
    core::smartly_flow(top, {});
    sweep::FraigOptions fraig;
    fraig.threads = 1;
    opt::fraig_stage(top, fraig);
    opt::rewrite_stage(top, serial_options());
    EXPECT_NO_THROW(top.check());
    expect_equivalent(*golden->top(), top, ("random seed " + std::to_string(seed)).c_str());
  }
}

TEST(RewriteEngine, DeepOptLoopIsEquivalentAndSmaller) {
  auto suite = benchgen::public_suite();
  const auto pci = std::find_if(suite.begin(), suite.end(),
                                [](const auto& c) { return c.name == "pci_bridge32"; });
  ASSERT_NE(pci, suite.end());
  auto design = verilog::read_verilog(pci->verilog);
  const auto golden = rtlil::clone_design(*design);
  Module& top = *design->top();
  core::smartly_flow(top, {});
  const size_t aig_before = aig::aig_area(top);
  opt::DeepOptOptions deep;
  deep.fraig.threads = 1;
  deep.rewrite.threads = 1;
  const opt::DeepOptStats stats = opt::fraig_rewrite_loop(top, deep);
  EXPECT_GE(stats.iterations, 1u);
  EXPECT_LT(aig::aig_area(top), aig_before);
  expect_equivalent(*golden->top(), top, "deep-opt loop");
}

TEST(RewriteEngine, DeterministicAcrossThreadCounts) {
  for (const uint64_t seed : {21u, 22u}) {
    auto base = verilog::read_verilog(benchgen::random_verilog(seed, 7));
    core::smartly_flow(*base->top(), {});
    sweep::FraigOptions fraig;
    fraig.threads = 1;
    opt::fraig_stage(*base->top(), fraig);

    std::string first_netlist;
    rewrite::RewriteStats first_stats;
    for (const int threads : {1, 2, 4, 8}) {
      auto design = rtlil::clone_design(*base);
      rewrite::RewriteOptions options;
      options.threads = threads;
      const rewrite::RewriteStats stats = opt::rewrite_stage(*design->top(), options);
      const std::string netlist = backend::write_rtlil(*design->top());
      if (threads == 1) {
        first_netlist = netlist;
        first_stats = stats;
      } else {
        EXPECT_EQ(netlist, first_netlist) << "seed " << seed << " threads " << threads;
        EXPECT_TRUE(rewrite::same_work(stats, first_stats))
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

TEST(RewriteStats, AccumulationKeepsThreadsUsed) {
  rewrite::RewriteStats a;
  a.rewrites = 2;
  a.cells_added = 3;
  a.threads_used = 4;
  rewrite::RewriteStats b;
  b.rewrites = 1;
  b.npn_classes = 5;
  b.threads_used = 8;
  a += b;
  EXPECT_EQ(a.rewrites, 3u);
  EXPECT_EQ(a.npn_classes, 5u);
  EXPECT_EQ(a.threads_used, 4);
  rewrite::RewriteStats c = a;
  EXPECT_TRUE(rewrite::same_work(a, c));
  c.threads_used = 99;
  EXPECT_TRUE(rewrite::same_work(a, c)); // machine detail, not work
  c.rewrites = 99;
  EXPECT_FALSE(rewrite::same_work(a, c));
}
