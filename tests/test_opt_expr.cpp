// opt_expr: constant folding and identity simplification. Checked both
// structurally (cells disappear) and semantically (evaluator agreement).
#include "aig/aigmap.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"
#include "sim/eval.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using rtlil::CellType;
using rtlil::Const;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;
using rtlil::Wire;

namespace {

struct Fixture {
  Design design;
  Module* mod;
  explicit Fixture() { mod = design.add_module("top"); }

  Wire* in(const char* name, int w) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_input(x);
    return x;
  }
  Wire* out(const char* name, int w) {
    Wire* x = mod->add_wire(name, w);
    mod->set_port_output(x);
    return x;
  }
};

/// Canonical value of output `y` under the module's connections.
Const out_const(Module& mod, Wire* y) {
  const rtlil::SigMap sm(mod);
  const SigSpec canon = sm(SigSpec(y));
  EXPECT_TRUE(canon.is_fully_const()) << "output not fully folded";
  return canon.as_const();
}

} // namespace

TEST(OptExpr, FoldsFullyConstantAnd) {
  Fixture f;
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y),
                 f.mod->add_binary(CellType::And, Const(0b1100, 4), Const(0b1010, 4), 4));
  const auto stats = opt::opt_expr(*f.mod);
  EXPECT_GE(stats.folded_cells, 1u);
  EXPECT_EQ(f.mod->count_cells(CellType::And), 0u);
  EXPECT_EQ(out_const(*f.mod, y).as_uint(), 0b1000u);
}

TEST(OptExpr, FoldsConstantChain) {
  Fixture f;
  Wire* y = f.out("y", 8);
  const SigSpec s1 = f.mod->Add(SigSpec(Const(3, 8)), SigSpec(Const(4, 8)), 8);
  const SigSpec s2 = f.mod->add_binary(CellType::Mul, s1, SigSpec(Const(6, 8)), 8);
  f.mod->connect(SigSpec(y), s2);
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->cell_count(), 0u);
  EXPECT_EQ(out_const(*f.mod, y).as_uint(), 42u);
}

TEST(OptExpr, MuxWithConstantSelect) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y0 = f.out("y0", 4);
  Wire* y1 = f.out("y1", 4);
  f.mod->add_mux(SigSpec(a), SigSpec(b), SigSpec(State::S0), SigSpec(y0));
  f.mod->add_mux(SigSpec(a), SigSpec(b), SigSpec(State::S1), SigSpec(y1));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Mux), 0u);
  const rtlil::SigMap sm(*f.mod);
  EXPECT_EQ(sm(SigSpec(y0)), sm(SigSpec(a)));
  EXPECT_EQ(sm(SigSpec(y1)), sm(SigSpec(b)));
}

TEST(OptExpr, MuxWithEqualBranchesCollapses) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* s = f.in("s", 1);
  Wire* y = f.out("y", 4);
  f.mod->add_mux(SigSpec(a), SigSpec(a), SigSpec(s), SigSpec(y));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Mux), 0u);
  const rtlil::SigMap sm(*f.mod);
  EXPECT_EQ(sm(SigSpec(y)), sm(SigSpec(a)));
}

TEST(OptExpr, AndWithZeroIsZero) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->And(SigSpec(a), SigSpec(Const(0, 4))));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::And), 0u);
  EXPECT_EQ(out_const(*f.mod, y).as_uint(), 0u);
}

TEST(OptExpr, AndWithAllOnesIsIdentity) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->And(SigSpec(a), SigSpec(Const(0xF, 4))));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::And), 0u);
  const rtlil::SigMap sm(*f.mod);
  EXPECT_EQ(sm(SigSpec(y)), sm(SigSpec(a)));
}

TEST(OptExpr, OrWithZeroIsIdentity) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->Or(SigSpec(a), SigSpec(Const(0, 4))));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Or), 0u);
  const rtlil::SigMap sm(*f.mod);
  EXPECT_EQ(sm(SigSpec(y)), sm(SigSpec(a)));
}

TEST(OptExpr, XorWithSelfIsZero) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->Xor(SigSpec(a), SigSpec(a)));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Xor), 0u);
  EXPECT_EQ(out_const(*f.mod, y).as_uint(), 0u);
}

TEST(OptExpr, EqOfIdenticalSignalsIsOne) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 1);
  f.mod->connect(SigSpec(y), f.mod->Eq(SigSpec(a), SigSpec(a)));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Eq), 0u);
  EXPECT_EQ(out_const(*f.mod, y).as_uint(), 1u);
}

TEST(OptExpr, DoesNotTouchOpaqueCells) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* b = f.in("b", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->And(SigSpec(a), SigSpec(b)));
  const auto stats = opt::opt_expr(*f.mod);
  EXPECT_EQ(stats.folded_cells, 0u);
  EXPECT_EQ(f.mod->count_cells(CellType::And), 1u);
}

TEST(OptExpr, RunsToFixpointThroughLayers) {
  // not(not(const)) nested 6 deep folds completely in one opt_expr call.
  Fixture f;
  Wire* y = f.out("y", 1);
  SigSpec v = SigSpec(State::S1);
  for (int i = 0; i < 6; ++i)
    v = f.mod->Not(v);
  f.mod->connect(SigSpec(y), v);
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->cell_count(), 0u);
  EXPECT_EQ(out_const(*f.mod, y)[0], State::S1);
}

TEST(OptExpr, PreservesSemanticsOnMixedCircuit) {
  // Fold a circuit with a mix of constant and opaque logic, then verify the
  // result matches the unoptimized evaluation for all inputs.
  Fixture f;
  Wire* a = f.in("a", 3);
  Wire* y = f.out("y", 3);
  const SigSpec t1 = f.mod->And(SigSpec(a), SigSpec(Const(5, 3)));   // a & 3'b101
  const SigSpec t2 = f.mod->Xor(t1, SigSpec(Const(0, 3)));           // identity
  const SigSpec t3 = f.mod->Or(t2, f.mod->And(SigSpec(Const(2, 3)), SigSpec(Const(6, 3))));
  f.mod->connect(SigSpec(y), t3);

  // Reference values before optimization.
  std::vector<uint64_t> want;
  for (uint64_t v = 0; v < 8; ++v) {
    sim::Evaluator ev(*f.mod);
    ev.set_input(a, Const(v, 3));
    ev.run();
    want.push_back(ev.value(SigSpec(y)).as_uint());
  }

  opt::opt_expr(*f.mod);
  opt::opt_clean(*f.mod);

  for (uint64_t v = 0; v < 8; ++v) {
    sim::Evaluator ev(*f.mod);
    ev.set_input(a, Const(v, 3));
    ev.run();
    EXPECT_EQ(ev.value(SigSpec(y)).as_uint(), want[v]) << "v=" << v;
  }
  EXPECT_LE(f.mod->cell_count(), 2u);
}

TEST(OptExpr, SimplifiesIdentityChainToWires) {
  Fixture f;
  Wire* a = f.in("a", 8);
  Wire* y = f.out("y", 8);
  // (a & 0) | (a ^ a) | (a + 0): everything folds to a. (The AIG area is
  // already 0 before opt_expr — aigmap constant-folds — so the observable
  // effect is at the cell level.)
  const SigSpec t1 = f.mod->And(SigSpec(a), SigSpec(Const(0, 8)));
  const SigSpec t2 = f.mod->Xor(SigSpec(a), SigSpec(a));
  const SigSpec t3 = f.mod->Add(SigSpec(a), SigSpec(Const(0, 8)), 8);
  f.mod->connect(SigSpec(y), f.mod->Or(f.mod->Or(t1, t2), t3));
  const size_t area_before = aig::aig_area(*f.mod);
  opt::opt_expr(*f.mod);
  opt::opt_clean(*f.mod);
  EXPECT_EQ(f.mod->cell_count(), 0u);
  EXPECT_LE(aig::aig_area(*f.mod), area_before);
  const rtlil::SigMap sm(*f.mod);
  EXPECT_EQ(sm(SigSpec(y)), sm(SigSpec(a)));
}

TEST(OptExpr, XorWithZeroIsIdentity) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->Xor(SigSpec(a), SigSpec(Const(0, 4))));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Xor), 0u);
  const rtlil::SigMap sm(*f.mod);
  EXPECT_EQ(sm(SigSpec(y)), sm(SigSpec(a)));
}

TEST(OptExpr, XorWithAllOnesBecomesNot) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->Xor(SigSpec(a), SigSpec(Const(0xF, 4))));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Xor), 0u);
  EXPECT_EQ(f.mod->count_cells(CellType::Not), 1u);
}

TEST(OptExpr, SubOfSelfIsZero) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->Sub(SigSpec(a), SigSpec(a), 4));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Sub), 0u);
  EXPECT_EQ(out_const(*f.mod, y).as_uint(), 0u);
}

TEST(OptExpr, AddWithZeroIsIdentity) {
  Fixture f;
  Wire* a = f.in("a", 4);
  Wire* y = f.out("y", 4);
  f.mod->connect(SigSpec(y), f.mod->Add(SigSpec(a), SigSpec(Const(0, 4)), 4));
  opt::opt_expr(*f.mod);
  EXPECT_EQ(f.mod->count_cells(CellType::Add), 0u);
  const rtlil::SigMap sm(*f.mod);
  EXPECT_EQ(sm(SigSpec(y)), sm(SigSpec(a)));
}
