#include "rtlil/module.hpp"
#include "rtlil/sigspec.hpp"

#include <gtest/gtest.h>

using namespace smartly::rtlil;

namespace {
struct SigSpecTest : ::testing::Test {
  Design design;
  Module* m = design.add_module("t");
  Wire* a = m->add_wire("a", 4);
  Wire* b = m->add_wire("b", 2);
};
} // namespace

TEST_F(SigSpecTest, WholeWireSpansAllBits) {
  const SigSpec s(a);
  ASSERT_EQ(s.size(), 4);
  EXPECT_TRUE(s.is_wire());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(s[i].wire, a);
    EXPECT_EQ(s[i].offset, i);
  }
}

TEST_F(SigSpecTest, SliceConstructorChecksBounds) {
  EXPECT_NO_THROW(SigSpec(a, 1, 3));
  EXPECT_THROW(SigSpec(a, 2, 3), std::out_of_range);
  EXPECT_THROW(SigSpec(a, -1, 2), std::out_of_range);
}

TEST_F(SigSpecTest, AppendAndExtract) {
  SigSpec s(a);
  s.append(SigSpec(b));
  ASSERT_EQ(s.size(), 6);
  const SigSpec mid = s.extract(3, 2);
  EXPECT_EQ(mid[0], SigBit(a, 3));
  EXPECT_EQ(mid[1], SigBit(b, 0));
  EXPECT_THROW(s.extract(5, 2), std::out_of_range);
}

TEST_F(SigSpecTest, ConstConversionRoundTrip) {
  const SigSpec s(Const(0b1010, 4));
  EXPECT_TRUE(s.is_fully_const());
  EXPECT_TRUE(s.is_fully_def());
  EXPECT_EQ(s.as_const().as_uint(), 0b1010u);
  EXPECT_FALSE(SigSpec(a).is_fully_const());
  EXPECT_THROW(SigSpec(a).as_const(), std::logic_error);
}

TEST_F(SigSpecTest, MixedSpecIsNeitherWireNorConst) {
  SigSpec s(SigBit(a, 0));
  s.append(SigBit(State::S1));
  EXPECT_FALSE(s.is_wire());
  EXPECT_FALSE(s.is_fully_const());
}

TEST_F(SigSpecTest, ExtendedZeroAndSign) {
  SigSpec s(b); // 2 bits
  const SigSpec z = s.extended(4, false);
  EXPECT_EQ(z[2], SigBit(State::S0));
  const SigSpec sg = s.extended(4, true);
  EXPECT_EQ(sg[2], SigBit(b, 1));
  EXPECT_EQ(sg[3], SigBit(b, 1));
}

TEST_F(SigSpecTest, ReplaceBit) {
  SigSpec s(a);
  s.replace_bit(SigBit(a, 2), SigBit(State::S1));
  EXPECT_EQ(s[2], SigBit(State::S1));
  EXPECT_EQ(s[1], SigBit(a, 1));
}

TEST_F(SigSpecTest, HashDistinguishesConstsFromWires) {
  const SigSpec c0(Const(0, 1));
  const SigSpec c1(Const(1, 1));
  EXPECT_NE(c0.hash(), c1.hash());
  EXPECT_NE(SigSpec(a).hash(), SigSpec(b).hash());
}

TEST_F(SigSpecTest, RepeatBuildsFill) {
  const SigSpec f = sig_repeat(SigBit(State::S1), 3);
  EXPECT_EQ(f.size(), 3);
  EXPECT_TRUE(f.is_fully_const());
  EXPECT_EQ(f.as_const().as_uint(), 7u);
}

TEST_F(SigSpecTest, BitOrderingOperatorIsStrictWeak) {
  const SigBit x(a, 0), y(a, 1), c(State::S0);
  EXPECT_TRUE(x < y || y < x);
  EXPECT_FALSE(x < x);
  // const vs wire ordering is consistent both ways
  EXPECT_NE(x < c, c < x);
}
