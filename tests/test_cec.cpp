// Combinational equivalence checking: positive cases, true inequivalences
// with counterexample validation, interface mismatches, and dff handling.
#include "cec/cec.hpp"
#include "rtlil/module.hpp"
#include "sim/eval.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace smartly;
using rtlil::Const;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

cec::CecResult check(const std::string& gold_src, const std::string& gate_src) {
  auto gold = verilog::read_verilog(gold_src);
  auto gate = verilog::read_verilog(gate_src);
  return cec::check_equivalence(*gold->top(), *gate->top());
}

} // namespace

TEST(Cec, IdenticalDesignsAreEquivalent) {
  const char* src = R"(
    module top(a, b, y); input [3:0] a, b; output [3:0] y;
      assign y = a & b;
    endmodule
  )";
  EXPECT_TRUE(check(src, src).equivalent);
}

TEST(Cec, StructurallyDifferentButEqualFunctions) {
  // De Morgan: ~(a | b) == ~a & ~b.
  const auto r = check(R"(
    module top(a, b, y); input [3:0] a, b; output [3:0] y;
      assign y = ~(a | b);
    endmodule
  )",
                       R"(
    module top(a, b, y); input [3:0] a, b; output [3:0] y;
      assign y = ~a & ~b;
    endmodule
  )");
  EXPECT_TRUE(r.equivalent);
}

TEST(Cec, MuxVersusBooleanForm) {
  // s ? a : b == (a & {4{s}}) | (b & ~{4{s}}).
  const auto r = check(R"(
    module top(s, a, b, y); input s; input [3:0] a, b; output [3:0] y;
      assign y = s ? a : b;
    endmodule
  )",
                       R"(
    module top(s, a, b, y); input s; input [3:0] a, b; output [3:0] y;
      assign y = (a & {4{s}}) | (b & ~{4{s}});
    endmodule
  )");
  EXPECT_TRUE(r.equivalent);
}

TEST(Cec, DetectsInequivalence) {
  const auto r = check(R"(
    module top(a, b, y); input [3:0] a, b; output [3:0] y;
      assign y = a & b;
    endmodule
  )",
                       R"(
    module top(a, b, y); input [3:0] a, b; output [3:0] y;
      assign y = a | b;
    endmodule
  )");
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.failing_output.empty());
  EXPECT_FALSE(r.counterexample.empty());
}

TEST(Cec, CounterexampleActuallyDistinguishes) {
  const char* gold_src = R"(
    module top(a, b, y); input [3:0] a, b; output [4:0] y;
      assign y = a + b;
    endmodule
  )";
  const char* gate_src = R"(
    module top(a, b, y); input [3:0] a, b; output [4:0] y;
      assign y = a + b + 5'd1;
    endmodule
  )";
  auto gold = verilog::read_verilog(gold_src);
  auto gate = verilog::read_verilog(gate_src);
  const auto r = cec::check_equivalence(*gold->top(), *gate->top());
  ASSERT_FALSE(r.equivalent);

  // Replay the counterexample on both designs; outputs must differ.
  auto eval_output = [&](Module& m) {
    sim::Evaluator ev(m);
    for (const auto& [name, value] : r.counterexample) {
      // Counterexample names are per-bit ("a[2]") or whole wires; support both.
      const auto lb = name.find('[');
      const std::string wname = lb == std::string::npos ? name : name.substr(0, lb);
      Wire* w = m.wire(wname);
      if (!w)
        continue;
      if (lb == std::string::npos) {
        ev.set_input(w, Const(value ? 1 : 0, w->width()));
      } else {
        const int idx = std::stoi(name.substr(lb + 1));
        ev.set_bit(rtlil::SigBit(w, idx), value ? rtlil::State::S1 : rtlil::State::S0);
      }
    }
    ev.run();
    return ev.value(SigSpec(m.wire("y")));
  };
  const Const gold_y = eval_output(*gold->top());
  const Const gate_y = eval_output(*gate->top());
  EXPECT_NE(gold_y.to_string(), gate_y.to_string());
}

TEST(Cec, SubtleSingleMintermBug) {
  // Differs only at a=15, b=15: SAT must find the needle.
  const auto r = check(R"(
    module top(a, b, y); input [3:0] a, b; output y;
      assign y = (a == 4'hf) & (b == 4'hf);
    endmodule
  )",
                       R"(
    module top(a, b, y); input [3:0] a, b; output y;
      assign y = 1'b0;
    endmodule
  )");
  EXPECT_FALSE(r.equivalent);
}

TEST(Cec, DffQTreatedAsFreeInput) {
  // Same combinational function of q: equivalent even though q is state.
  const char* src = R"(
    module top(clk, d, y); input clk; input [3:0] d; output [3:0] y;
      reg [3:0] q;
      always @(posedge clk) q <= d;
      assign y = q ^ d;
    endmodule
  )";
  EXPECT_TRUE(check(src, src).equivalent);
}

TEST(Cec, DffDConeIsChecked) {
  // Designs differ only in the D-cone (next-state function): must be caught.
  const auto r = check(R"(
    module top(clk, d, y); input clk; input [3:0] d; output [3:0] y;
      reg [3:0] q;
      always @(posedge clk) q <= d;
      assign y = q;
    endmodule
  )",
                       R"(
    module top(clk, d, y); input clk; input [3:0] d; output [3:0] y;
      reg [3:0] q;
      always @(posedge clk) q <= d + 4'd1;
      assign y = q;
    endmodule
  )");
  EXPECT_FALSE(r.equivalent);
}

TEST(Cec, MismatchedPortsThrow) {
  EXPECT_THROW(check(R"(
    module top(a, y); input [3:0] a; output [3:0] y;
      assign y = a;
    endmodule
  )",
                     R"(
    module top(a, b, y); input [3:0] a, b; output [3:0] y;
      assign y = a & b;
    endmodule
  )"),
               std::invalid_argument);
}

TEST(Cec, MismatchedWidthsThrow) {
  EXPECT_THROW(check(R"(
    module top(a, y); input [3:0] a; output [3:0] y;
      assign y = a;
    endmodule
  )",
                     R"(
    module top(a, y); input [7:0] a; output [7:0] y;
      assign y = a;
    endmodule
  )"),
               std::invalid_argument);
}

TEST(Cec, ConstantOutputsCompared) {
  const auto eq = check(R"(
    module top(y); output [3:0] y; assign y = 4'd5; endmodule
  )",
                        R"(
    module top(y); output [3:0] y; assign y = 4'd5; endmodule
  )");
  EXPECT_TRUE(eq.equivalent);
  const auto ne = check(R"(
    module top(y); output [3:0] y; assign y = 4'd5; endmodule
  )",
                        R"(
    module top(y); output [3:0] y; assign y = 4'd6; endmodule
  )");
  EXPECT_FALSE(ne.equivalent);
}

TEST(Cec, WideArithmeticEquivalence) {
  // 16-bit adder vs its two-halves-with-carry decomposition.
  const auto r = check(R"(
    module top(a, b, y); input [15:0] a, b; output [15:0] y;
      assign y = a + b;
    endmodule
  )",
                       R"(
    module top(a, b, y); input [15:0] a, b; output [15:0] y;
      wire [8:0] lo;
      assign lo = a[7:0] + b[7:0];
      wire [7:0] hi;
      assign hi = a[15:8] + b[15:8] + {7'b0, lo[8]};
      assign y = {hi, lo[7:0]};
    endmodule
  )");
  EXPECT_TRUE(r.equivalent);
}
