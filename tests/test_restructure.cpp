// Muxtree restructuring (§III, Algorithm 1): case-chain rebuild, greedy
// vs fixed order, the Check() cost gate, eq-cell disconnection, and
// functional equivalence after every rebuild.
#include "aig/aigmap.hpp"
#include "cec/cec.hpp"
#include "core/mux_restructure.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "rtlil/module.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using core::MuxRestructureOptions;
using core::MuxRestructureStats;
using rtlil::CellType;

namespace {

struct RebuildResult {
  size_t area_before = 0;
  size_t area_after = 0;
  MuxRestructureStats stats;
  size_t mux_after = 0;
  size_t eq_after = 0;
};

RebuildResult rebuild(const std::string& src, const MuxRestructureOptions& opts = {}) {
  auto d = verilog::read_verilog(src);
  auto golden = rtlil::clone_design(*d);
  opt::opt_expr(*d->top());
  opt::opt_clean(*d->top());
  RebuildResult r;
  r.area_before = aig::aig_area(*d->top());
  r.stats = core::mux_restructure(*d->top(), opts);
  opt::opt_expr(*d->top());
  opt::opt_clean(*d->top());
  r.area_after = aig::aig_area(*d->top());
  r.mux_after = d->top()->count_cells(CellType::Mux);
  r.eq_after = d->top()->count_cells(CellType::Eq);
  const auto cec = cec::check_equivalence(*golden->top(), *d->top());
  EXPECT_TRUE(cec.equivalent) << "rebuild broke: " << cec.failing_output;
  return r;
}

/// The paper's Listing 1 case statement (Figs. 5-7).
const char* kListing1 = R"(
  module top(s, p0, p1, p2, p3, y);
    input [1:0] s;
    input [7:0] p0, p1, p2, p3;
    output reg [7:0] y;
    always @(*) case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  endmodule
)";

/// The paper's Listing 2 casez statement.
const char* kListing2 = R"(
  module top(s, p0, p1, p2, p3, y);
    input [2:0] s;
    input [7:0] p0, p1, p2, p3;
    output reg [7:0] y;
    always @(*) casez (s)
      3'b1zz: y = p0;
      3'b01z: y = p1;
      3'b001: y = p2;
      default: y = p3;
    endcase
  endmodule
)";

} // namespace

TEST(Restructure, Listing1RebuildsToThreeMuxes) {
  const RebuildResult r = rebuild(kListing1);
  EXPECT_EQ(r.stats.trees_rebuilt, 1u);
  // Fig. 7: exactly 3 MUXes, all eq gates disconnected and swept.
  EXPECT_EQ(r.mux_after, 3u);
  EXPECT_EQ(r.eq_after, 0u);
  EXPECT_LT(r.area_after, r.area_before);
}

TEST(Restructure, Listing2CasezRebuilds) {
  const RebuildResult r = rebuild(kListing2);
  EXPECT_EQ(r.stats.trees_rebuilt, 1u);
  // Paper: good assignment results in 3 MUXes.
  EXPECT_EQ(r.mux_after, 3u);
  EXPECT_LT(r.area_after, r.area_before);
}

TEST(Restructure, FixedOrderUsesMoreMuxes) {
  MuxRestructureOptions fixed;
  fixed.greedy_order = false;
  fixed.skip_check = true; // rebuild regardless of the gain estimate
  const RebuildResult greedy = rebuild(kListing2);
  const RebuildResult worse = rebuild(kListing2, fixed);
  // Paper: S0-first order needs 7 muxes vs 3 for the greedy order.
  EXPECT_GT(worse.stats.mux_added, greedy.stats.mux_added);
}

TEST(Restructure, WideCaseStatement) {
  // 3-bit full case: 8 items, chain of 7 muxes -> balanced tree of 7 muxes
  // but with all 7 eq gates gone.
  const RebuildResult r = rebuild(R"(
    module top(s, p0, p1, p2, p3, p4, p5, p6, p7, y);
      input [2:0] s;
      input [3:0] p0, p1, p2, p3, p4, p5, p6, p7;
      output reg [3:0] y;
      always @(*) case (s)
        3'd0: y = p0;
        3'd1: y = p1;
        3'd2: y = p2;
        3'd3: y = p3;
        3'd4: y = p4;
        3'd5: y = p5;
        3'd6: y = p6;
        default: y = p7;
      endcase
    endmodule
  )");
  EXPECT_EQ(r.stats.trees_rebuilt, 1u);
  EXPECT_EQ(r.mux_after, 7u);
  EXPECT_EQ(r.eq_after, 0u);
  EXPECT_LT(r.area_after, r.area_before);
}

TEST(Restructure, RepeatedOutputsShareAddNodes) {
  // Only two distinct data values: the ADD collapses to 1 mux on one bit.
  const RebuildResult r = rebuild(R"(
    module top(s, a, b, y);
      input [1:0] s;
      input [7:0] a, b;
      output reg [7:0] y;
      always @(*) case (s)
        2'b00: y = a;
        2'b01: y = b;
        2'b10: y = a;
        default: y = b;
      endcase
    endmodule
  )");
  EXPECT_EQ(r.stats.trees_rebuilt, 1u);
  EXPECT_EQ(r.mux_after, 1u);
  EXPECT_LT(r.area_after, r.area_before);
}

TEST(Restructure, EqWithExternalReaderBlocksNothingButKeepsEq) {
  // One eq output also feeds a module output: restructuring may still pay
  // off, but that eq cell must survive opt_clean (it has another reader).
  const RebuildResult r = rebuild(R"(
    module top(s, p0, p1, p2, p3, y, e);
      input [1:0] s;
      input [7:0] p0, p1, p2, p3;
      output reg [7:0] y;
      output e;
      assign e = (s == 2'b00);
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p2;
        default: y = p3;
      endcase
    endmodule
  )");
  if (r.stats.trees_rebuilt > 0) {
    EXPECT_GE(r.eq_after, 1u) << "externally-read eq must not be deleted";
  }
  EXPECT_LE(r.area_after, r.area_before);
}

TEST(Restructure, SingleMuxIsNotATree) {
  // A lone mux (no chain) must not be touched.
  const RebuildResult r = rebuild(R"(
    module top(s, a, b, y);
      input s; input [7:0] a, b; output [7:0] y;
      assign y = s ? a : b;
    endmodule
  )");
  EXPECT_EQ(r.stats.trees_rebuilt, 0u);
  EXPECT_EQ(r.area_after, r.area_before);
}

TEST(Restructure, MultiControlTreeIsSkipped) {
  // Controls over two unrelated selectors: SingleCtrl fails (the selector
  // set is the union, still rebuildable in principle, but the table
  // explodes); verify no breakage either way.
  const RebuildResult r = rebuild(R"(
    module top(s, t, a, b, c, y);
      input s, t; input [7:0] a, b, c; output [7:0] y;
      assign y = s ? a : (t ? b : c);
    endmodule
  )");
  EXPECT_LE(r.area_after, r.area_before);
}

TEST(Restructure, CheckGateRejectsUnprofitableRebuild) {
  // The eq cells all feed second outputs, so removing them saves nothing
  // and the tree is already compact: Check() should refuse.
  const RebuildResult normal = rebuild(R"(
    module top(s, p0, p1, y, e0, e1, e2);
      input [1:0] s;
      input [7:0] p0, p1;
      output reg [7:0] y;
      output e0, e1, e2;
      assign e0 = (s == 2'b00);
      assign e1 = (s == 2'b01);
      assign e2 = (s == 2'b10);
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p0;
        default: y = p1;
      endcase
    endmodule
  )");
  EXPECT_LE(normal.area_after, normal.area_before);
}

TEST(Restructure, SkipCheckCanRebuildAnyway) {
  // skip_check rebuilds unconditionally, so the fixpoint loop may rebuild
  // the already-rebuilt tree again (it is itself an eligible tree). The
  // result must still be correct (CEC inside rebuild()) and rebuilt >= once.
  MuxRestructureOptions opts;
  opts.skip_check = true;
  const RebuildResult r = rebuild(kListing1, opts);
  EXPECT_GE(r.stats.trees_rebuilt, 1u);
  EXPECT_EQ(r.mux_after, 3u);
}

TEST(Restructure, MaxSelWidthGuardsTableExplosion) {
  MuxRestructureOptions opts;
  opts.max_sel_width = 1; // 2-bit selector exceeds the cap -> no rebuild
  const RebuildResult r = rebuild(kListing1, opts);
  EXPECT_EQ(r.stats.trees_rebuilt, 0u);
  EXPECT_EQ(r.area_after, r.area_before);
}

TEST(Restructure, StatsAreConsistent) {
  const RebuildResult r = rebuild(kListing1);
  EXPECT_GE(r.stats.trees_seen, r.stats.trees_eligible);
  EXPECT_GE(r.stats.trees_eligible, r.stats.trees_rebuilt);
  // For Listing 1 the mux count is unchanged (3 -> 3); the area win comes
  // from disconnecting the eq cells.
  EXPECT_GE(r.stats.mux_removed, r.stats.mux_added);
  EXPECT_GT(r.stats.eq_disconnected, 0u);
}

TEST(Restructure, TwoIndependentTreesBothRebuilt) {
  const RebuildResult r = rebuild(R"(
    module top(s, t, p0, p1, p2, p3, q0, q1, q2, q3, y, z);
      input [1:0] s, t;
      input [7:0] p0, p1, p2, p3, q0, q1, q2, q3;
      output reg [7:0] y, z;
      always @(*) begin
        case (s)
          2'b00: y = p0;
          2'b01: y = p1;
          2'b10: y = p2;
          default: y = p3;
        endcase
        case (t)
          2'b00: z = q0;
          2'b01: z = q1;
          2'b10: z = q2;
          default: z = q3;
        endcase
      end
    endmodule
  )");
  EXPECT_EQ(r.stats.trees_rebuilt, 2u);
  EXPECT_EQ(r.mux_after, 6u);
  EXPECT_LT(r.area_after, r.area_before);
}

TEST(Restructure, RegisteredCaseSelectorStillRebuilds) {
  // Selector comes from a dff Q: control cells read a register output; the
  // tree is still OnlyEq/SingleCtrl and must rebuild.
  const RebuildResult r = rebuild(R"(
    module top(clk, sin, p0, p1, p2, p3, y);
      input clk; input [1:0] sin;
      input [7:0] p0, p1, p2, p3;
      output reg [7:0] y;
      reg [1:0] s;
      always @(posedge clk) s <= sin;
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p2;
        default: y = p3;
      endcase
    endmodule
  )");
  EXPECT_EQ(r.stats.trees_rebuilt, 1u);
  EXPECT_LT(r.area_after, r.area_before);
}
