// CDCL solver tests: unit cases plus a property sweep against brute force.
#include "sat/solver.hpp"
#include "util/hashing.hpp"

#include <gtest/gtest.h>

using namespace smartly::sat;

namespace {

Lit pos(Var v) { return mk_lit(v, false); }
Lit neg(Var v) { return mk_lit(v, true); }

} // namespace

TEST(Sat, EmptyProblemIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, UnitPropagationFixesModel) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a));
  s.add_clause(neg(a), pos(b));
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(Sat, TrivialConflict) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  EXPECT_FALSE(s.add_clause(neg(a)));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // p(i,j): pigeon i in hole j. 3 pigeons, 2 holes.
  Solver s;
  Var p[3][2];
  for (auto& row : p)
    for (Var& v : row)
      v = s.new_var();
  for (int i = 0; i < 3; ++i)
    s.add_clause(pos(p[i][0]), pos(p[i][1]));
  for (int j = 0; j < 2; ++j)
    for (int i1 = 0; i1 < 3; ++i1)
      for (int i2 = i1 + 1; i2 < 3; ++i2)
        s.add_clause(neg(p[i1][j]), neg(p[i2][j]));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Sat, XorChainSatWithParityAssumption) {
  // x0 ^ x1 ^ ... ^ x7 = 1 encoded pairwise with helper vars.
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 8; ++i)
    x.push_back(s.new_var());
  Var acc = x[0];
  for (int i = 1; i < 8; ++i) {
    const Var nxt = s.new_var();
    // nxt = acc ^ x[i]
    s.add_clause(neg(nxt), pos(acc), pos(x[i]));
    s.add_clause(neg(nxt), neg(acc), neg(x[i]));
    s.add_clause(pos(nxt), neg(acc), pos(x[i]));
    s.add_clause(pos(nxt), pos(acc), neg(x[i]));
    acc = nxt;
  }
  s.add_clause(pos(acc));
  ASSERT_EQ(s.solve(), Result::Sat);
  int parity = 0;
  for (Var v : x)
    parity ^= s.model_value(v) ? 1 : 0;
  EXPECT_EQ(parity, 1);
}

TEST(Sat, AssumptionsAreIncremental) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  EXPECT_EQ(s.solve({neg(a)}), Result::Sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({neg(a), neg(b)}), Result::Unsat);
  // Solver state is reusable after an UNSAT-under-assumptions call.
  EXPECT_EQ(s.solve({pos(a)}), Result::Sat);
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, ConflictingAssumptionsAreUnsat) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_EQ(s.solve({pos(a), neg(a)}), Result::Unsat);
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Sat, DuplicateAndTautologicalClausesAreHarmless) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(a), neg(b));
  s.add_clause(pos(a), neg(a)); // tautology: dropped
  s.add_clause(pos(b));
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
}

// --- property sweep: random 3-CNF vs exhaustive enumeration ----------------

namespace {

struct RandomCnf {
  int n_vars;
  std::vector<std::array<int, 3>> clauses; // +v / -v encoding, 1-based

  bool brute_force_sat() const {
    for (uint32_t m = 0; m < (1u << n_vars); ++m) {
      bool ok = true;
      for (const auto& cl : clauses) {
        bool sat = false;
        for (int lit : cl) {
          const int v = std::abs(lit) - 1;
          const bool val = (m >> v) & 1;
          if ((lit > 0) == val)
            sat = true;
        }
        if (!sat) {
          ok = false;
          break;
        }
      }
      if (ok)
        return true;
    }
    return false;
  }
};

RandomCnf make_cnf(uint64_t seed) {
  smartly::Rng rng(seed);
  RandomCnf cnf;
  cnf.n_vars = static_cast<int>(rng.range(3, 10));
  const int n_clauses = static_cast<int>(rng.range(cnf.n_vars, cnf.n_vars * 5));
  for (int i = 0; i < n_clauses; ++i) {
    std::array<int, 3> cl;
    for (int& lit : cl) {
      const int v = static_cast<int>(rng.range(1, cnf.n_vars));
      lit = rng.chance(0.5) ? v : -v;
    }
    cnf.clauses.push_back(cl);
  }
  return cnf;
}

} // namespace

class SatRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatRandom, AgreesWithBruteForce) {
  const RandomCnf cnf = make_cnf(GetParam());
  Solver s;
  for (int i = 0; i < cnf.n_vars; ++i)
    s.new_var();
  bool consistent = true;
  for (const auto& cl : cnf.clauses)
    consistent =
        s.add_clause(mk_lit(std::abs(cl[0]) - 1, cl[0] < 0),
                     mk_lit(std::abs(cl[1]) - 1, cl[1] < 0),
                     mk_lit(std::abs(cl[2]) - 1, cl[2] < 0)) &&
        consistent;
  const Result r = consistent ? s.solve() : Result::Unsat;
  EXPECT_EQ(r == Result::Sat, cnf.brute_force_sat());
  if (r == Result::Sat) {
    // The model must actually satisfy every clause.
    for (const auto& cl : cnf.clauses) {
      bool sat = false;
      for (int lit : cl)
        if (s.model_value(std::abs(lit) - 1) == (lit > 0))
          sat = true;
      EXPECT_TRUE(sat);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandom, ::testing::Range<uint64_t>(1, 61));
