// Parallel deterministic sweep engine: thread-count determinism (byte-equal
// netlists, identical stats), decision differentials against the serial
// engine, region-partition safety invariants, incremental-index equivalence,
// and a TSan-friendly work-stealing pool stress test.
#include "backend/write_rtlil.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/incremental_oracle.hpp"
#include "core/sat_redundancy.hpp"
#include "core/smartly_pass.hpp"
#include "opt/parallel_sweep.hpp"
#include "opt/pipeline.hpp"
#include "opt/region_partition.hpp"
#include "util/thread_pool.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <unordered_set>

using namespace smartly;

namespace {

std::unique_ptr<rtlil::Design> load(const std::string& verilog) {
  return verilog::read_verilog(verilog);
}

struct FlowResult {
  std::string netlist;
  core::SmartlyStats stats;
};

FlowResult run_flow(const rtlil::Design& golden, int threads) {
  auto design = rtlil::clone_design(golden);
  core::SmartlyOptions opt;
  opt.threads = threads;
  FlowResult r;
  r.stats = core::smartly_flow(*design->top(), opt);
  r.netlist = backend::write_rtlil(*design->top());
  return r;
}

void expect_same_stats(const core::SmartlyStats& a, const core::SmartlyStats& b) {
  EXPECT_EQ(a.sat.queries, b.sat.queries);
  EXPECT_EQ(a.sat.decided_syntactic, b.sat.decided_syntactic);
  EXPECT_EQ(a.sat.decided_inference, b.sat.decided_inference);
  EXPECT_EQ(a.sat.decided_sim, b.sat.decided_sim);
  EXPECT_EQ(a.sat.decided_sat, b.sat.decided_sat);
  EXPECT_EQ(a.sat.dead_paths, b.sat.dead_paths);
  EXPECT_EQ(a.sat.skipped_too_large, b.sat.skipped_too_large);
  EXPECT_EQ(a.sat.gates_seen, b.sat.gates_seen);
  EXPECT_EQ(a.sat.gates_kept, b.sat.gates_kept);
  EXPECT_EQ(a.sat.sim_filter_kills, b.sat.sim_filter_kills);
  EXPECT_EQ(a.sat.sim_filter_half, b.sat.sim_filter_half);
  EXPECT_EQ(a.sat.sat_calls, b.sat.sat_calls);
  EXPECT_EQ(a.sat.solver_conflicts, b.sat.solver_conflicts);
  EXPECT_EQ(a.sat.walker.mux_collapsed, b.sat.walker.mux_collapsed);
  EXPECT_EQ(a.sat.walker.pmux_branches_removed, b.sat.walker.pmux_branches_removed);
  EXPECT_EQ(a.sat.walker.data_bits_replaced, b.sat.walker.data_bits_replaced);
  EXPECT_EQ(a.sat.walker.oracle_queries, b.sat.walker.oracle_queries);
  EXPECT_EQ(a.sat.walker.iterations, b.sat.walker.iterations);
  EXPECT_EQ(a.rebuild.trees_rebuilt, b.rebuild.trees_rebuilt);
  EXPECT_EQ(a.sweep.regions, b.sweep.regions);
  EXPECT_EQ(a.sweep.region_walks, b.sweep.region_walks);
  EXPECT_EQ(a.sweep.regions_skipped_clean, b.sweep.regions_skipped_clean);
  EXPECT_EQ(a.sweep.region_merges, b.sweep.region_merges);
  // threads_used intentionally excluded: it reflects the knob, not the work.
}

void expect_thread_count_determinism(const std::string& verilog, const char* label) {
  SCOPED_TRACE(label);
  const auto golden = load(verilog);
  const FlowResult t1 = run_flow(*golden, 1);
  const FlowResult t2 = run_flow(*golden, 2);
  const FlowResult t8 = run_flow(*golden, 8);
  EXPECT_EQ(t1.netlist, t2.netlist);
  EXPECT_EQ(t1.netlist, t8.netlist);
  expect_same_stats(t1.stats, t2.stats);
  expect_same_stats(t1.stats, t8.stats);
}

} // namespace

TEST(ParallelSweep, ByteIdenticalAcrossThreadCountsOnPublicCircuits) {
  for (const auto& c : benchgen::public_suite()) {
    if (c.name != "pci_bridge32" && c.name != "mem_ctrl" && c.name != "tv80" &&
        c.name != "wb_conmax")
      continue; // small subset: determinism, not throughput
    expect_thread_count_determinism(c.verilog, c.name.c_str());
  }
}

TEST(ParallelSweep, ByteIdenticalAcrossThreadCountsOnRandomCircuits) {
  for (uint64_t seed : {11u, 23u, 47u, 91u})
    expect_thread_count_determinism(benchgen::random_verilog(seed, 8),
                                    ("random_" + std::to_string(seed)).c_str());
}

TEST(ParallelSweep, DecisionsMatchSerialEngine) {
  for (const auto& c : benchgen::public_suite()) {
    if (c.name != "pci_bridge32" && c.name != "ac97_ctrl")
      continue;
    SCOPED_TRACE(c.name);
    const auto golden = load(c.verilog);

    auto serial_design = rtlil::clone_design(*golden);
    opt::coarse_opt(*serial_design->top());
    opt::DecisionTrace serial_trace;
    core::IncrementalOracle oracle;
    opt::optimize_muxtrees(*serial_design->top(), oracle, &serial_trace);

    for (int threads : {1, 3}) {
      auto parallel_design = rtlil::clone_design(*golden);
      opt::coarse_opt(*parallel_design->top());
      opt::DecisionTrace trace;
      core::sat_redundancy_parallel(*parallel_design->top(), {}, threads, &trace);
      EXPECT_EQ(opt::canonical_trace(trace), opt::canonical_trace(serial_trace))
          << "threads=" << threads;
    }
  }
}

TEST(ParallelSweep, EquivalentAndSameRemovalsAsSerial) {
  const auto golden = load(benchgen::public_suite().front().verilog);

  auto serial_design = rtlil::clone_design(*golden);
  opt::coarse_opt(*serial_design->top());
  const core::SatRedundancyStats serial = core::sat_redundancy(*serial_design->top());

  auto parallel_design = rtlil::clone_design(*golden);
  opt::coarse_opt(*parallel_design->top());
  const core::SatRedundancyStats parallel =
      core::sat_redundancy_parallel(*parallel_design->top(), {}, 4);

  EXPECT_EQ(parallel.walker.mux_collapsed, serial.walker.mux_collapsed);
  EXPECT_EQ(parallel.walker.pmux_branches_removed, serial.walker.pmux_branches_removed);
  EXPECT_EQ(parallel.walker.data_bits_replaced, serial.walker.data_bits_replaced);
  EXPECT_TRUE(cec::check_equivalence(*golden->top(), *parallel_design->top()).equivalent);
  EXPECT_TRUE(
      cec::check_equivalence(*serial_design->top(), *parallel_design->top()).equivalent);
}

TEST(ParallelSweep, RegionClosuresNeverContainForeignTrees) {
  // The safety invariant the whole engine rests on: no region's read closure
  // may contain another region's (mutable) mux cells.
  const auto design = load(benchgen::public_suite().front().verilog);
  rtlil::Module& top = *design->top();
  opt::coarse_opt(top);
  rtlil::NetlistIndex index(top);
  index.sigmap().flatten();
  const opt::MuxtreeForest forest = opt::muxtree_forest(top, index);
  const opt::RegionPartition partition = opt::partition_regions(top, index, forest, 4);
  ASSERT_GT(partition.regions.size(), 1u);

  std::unordered_map<const rtlil::Cell*, size_t> owner;
  for (size_t i = 0; i < partition.regions.size(); ++i)
    for (rtlil::Cell* c : partition.regions[i].tree_cells)
      owner.emplace(c, i);
  size_t trees = 0;
  for (size_t i = 0; i < partition.regions.size(); ++i) {
    trees += partition.regions[i].roots.size();
    for (rtlil::Cell* c :
         opt::region_read_closure(index, partition.regions[i].tree_cells, 4)) {
      auto it = owner.find(c);
      if (it != owner.end()) {
        EXPECT_EQ(it->second, i) << "closure of region " << i << " reaches region "
                                 << it->second;
      }
    }
  }
  EXPECT_EQ(trees, partition.trees);
}

TEST(ParallelSweep, IncrementalIndexMatchesRebuildAfterSweep) {
  // Walk + journal application must leave the shared index equal to a
  // from-scratch rebuild of the edited module: same driver, same fanout
  // (reader-entry multiset size), same output-port flags per canonical net.
  const auto design = load(benchgen::public_suite().front().verilog);
  rtlil::Module& top = *design->top();
  opt::coarse_opt(top);

  rtlil::NetlistIndex incremental(top);
  incremental.sigmap().flatten();
  core::IncrementalOracle oracle;
  opt::MuxtreeStats stats;
  size_t sweeps = 0;
  for (size_t iter = 0; iter < 16; ++iter) {
    ++sweeps;
    oracle.begin_module(top, incremental);
    opt::SweepJournal journal;
    opt::MuxtreeWalker walker(incremental, oracle, stats, journal);
    const opt::MuxtreeForest forest = opt::muxtree_forest(top, incremental);
    for (rtlil::Cell* root : forest.roots)
      walker.walk_root(root, 0);
    if (!walker.changed())
      break;
    opt::apply_sweep_journal(top, incremental, journal);
  }
  ASSERT_GT(sweeps, 1u); // the incremental path actually ran
  EXPECT_GT(stats.mux_collapsed + stats.pmux_branches_removed, 0u);

  const rtlil::NetlistIndex rebuilt(top);
  for (const auto& w : top.wires())
    for (int i = 0; i < w->width(); ++i) {
      const rtlil::SigBit bit(w.get(), i);
      EXPECT_EQ(incremental.driver(bit), rebuilt.driver(bit));
      EXPECT_EQ(incremental.fanout(bit), rebuilt.fanout(bit));
      EXPECT_EQ(incremental.drives_output_port(bit), rebuilt.drives_output_port(bit));
      EXPECT_EQ(incremental.sigmap()(bit), rebuilt.sigmap()(bit));
    }
  // Topo positions must stay a valid linear extension: every combinational
  // reader sits after its driver.
  for (const auto& cptr : top.cells()) {
    rtlil::Cell* c = cptr.get();
    if (c->type() == rtlil::CellType::Dff)
      continue;
    for (rtlil::Port p : c->input_ports())
      for (const rtlil::SigBit& raw : c->port(p)) {
        rtlil::Cell* d = incremental.driver(raw);
        if (d && d->type() != rtlil::CellType::Dff) {
          EXPECT_LT(incremental.topo_position(d), incremental.topo_position(c));
        }
      }
  }
}

TEST(ParallelSweep, WalkEverythingModeChangesNothingButTheSkips) {
  // requeue_dirty_only=false mirrors the serial walk-everything fixpoint;
  // clean-region walks are no-op replays, so the netlist must be identical.
  const auto golden = load(benchgen::public_suite().front().verilog);
  auto dirty_only = rtlil::clone_design(*golden);
  opt::coarse_opt(*dirty_only->top());
  auto walk_all = rtlil::clone_design(*golden);
  opt::coarse_opt(*walk_all->top());

  opt::ParallelSweepOptions po;
  po.threads = 2;
  po.make_oracle = [] { return std::make_unique<core::IncrementalOracle>(); };
  const opt::ParallelSweepStats fast = opt::parallel_sweep(*dirty_only->top(), po);
  po.requeue_dirty_only = false;
  const opt::ParallelSweepStats full = opt::parallel_sweep(*walk_all->top(), po);

  EXPECT_EQ(backend::write_rtlil(*dirty_only->top()), backend::write_rtlil(*walk_all->top()));
  EXPECT_EQ(full.regions_skipped_clean, 0u);
  EXPECT_GE(full.region_walks, fast.region_walks);
  EXPECT_GT(fast.regions_skipped_clean, 0u);
}

TEST(ParallelSweep, EmptyAndMuxFreeModules) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("empty");
  opt::ParallelSweepOptions po;
  po.threads = 4;
  po.make_oracle = [] { return std::make_unique<core::IncrementalOracle>(); };
  const opt::ParallelSweepStats stats = opt::parallel_sweep(*m, po);
  EXPECT_EQ(stats.regions, 0u);
  EXPECT_EQ(stats.region_walks, 0u);
  EXPECT_EQ(stats.walker.iterations, 1u);
}

TEST(ParallelSweep, RequiresOracleFactory) {
  rtlil::Design d;
  rtlil::Module* m = d.add_module("m");
  EXPECT_THROW(opt::parallel_sweep(*m, {}), std::logic_error);
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr size_t kTasks = 10000;
  std::vector<std::atomic<int>> ran(kTasks);
  pool.run_batch(kTasks, [&](int worker, size_t task) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    ran[task].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kTasks; ++i)
    EXPECT_EQ(ran[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, StressManyWorkersHammerOneQueue) {
  // TSan target: 8 workers stealing from each other across repeated batches
  // of tiny tasks, with a shared accumulation protected only by the pool's
  // own synchronization (slot-per-task writes + the barrier).
  util::ThreadPool pool(8);
  constexpr size_t kTasks = 2000;
  std::vector<uint64_t> out(kTasks);
  for (int round = 0; round < 20; ++round) {
    std::fill(out.begin(), out.end(), 0);
    pool.run_batch(kTasks, [&](int, size_t task) { out[task] = hash_mix(task + 1); });
    // Read results on the dispatching thread after the barrier: any missing
    // happens-before edge between a worker's write and this read is a data
    // race TSan will flag.
    for (size_t i = 0; i < kTasks; ++i)
      ASSERT_EQ(out[i], hash_mix(i + 1));
  }
}

TEST(ThreadPool, SingleThreadDegeneratesToLoop) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<size_t> order;
  pool.run_batch(16, [&](int worker, size_t task) {
    EXPECT_EQ(worker, 0);
    order.push_back(task);
  });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(order[i], i); // in-order on the calling thread
}

TEST(ThreadPool, ZeroTasksAndReuse) {
  util::ThreadPool pool(3);
  pool.run_batch(0, [&](int, size_t) { FAIL(); });
  std::atomic<size_t> count{0};
  pool.run_batch(7, [&](int, size_t) { count.fetch_add(1); });
  pool.run_batch(5, [&](int, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 12u);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(util::resolve_thread_count(3), 3);
  EXPECT_GE(util::resolve_thread_count(0), 1);
}
