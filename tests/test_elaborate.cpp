// Elaboration tests: Verilog -> RTLIL, validated against the word-level
// evaluator (the golden model).
#include "rtlil/design_stats.hpp"
#include "sim/eval.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;
using rtlil::CellType;
using rtlil::Const;
using rtlil::Module;
using rtlil::SigSpec;

namespace {

/// Evaluate a combinational module for the given input values.
Const run_comb(const Module& m, const std::vector<std::pair<std::string, uint64_t>>& inputs,
               const std::string& output) {
  sim::Evaluator ev(m);
  for (const auto& [name, value] : inputs) {
    const rtlil::Wire* w = m.wire(name);
    EXPECT_NE(w, nullptr) << name;
    ev.set_input(w, Const(value, w->width()));
  }
  ev.run();
  return ev.value(SigSpec(m.wire(output)));
}

} // namespace

TEST(Elaborate, ContinuousAssign) {
  auto design = verilog::read_verilog(R"(
    module top(a, b, y);
      input [3:0] a, b;
      output [3:0] y;
      assign y = a + b;
    endmodule
  )");
  Module* m = design->top();
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(run_comb(*m, {{"a", 3}, {"b", 4}}, "y").as_uint(), 7u);
  EXPECT_EQ(run_comb(*m, {{"a", 15}, {"b", 1}}, "y").as_uint(), 0u); // wraps
}

TEST(Elaborate, OperatorZoo) {
  auto design = verilog::read_verilog(R"(
    module top(a, b, y1, y2, y3, y4, y5, y6, y7);
      input [7:0] a, b;
      output [7:0] y1, y2, y3;
      output y4, y5, y6;
      output [7:0] y7;
      assign y1 = (a & b) | (a ^ b);
      assign y2 = a - b;
      assign y3 = a * b;
      assign y4 = (a < b) && (a != b);
      assign y5 = &a[3:0];
      assign y6 = ^b;
      assign y7 = {a[3:0], b[7:4]};
    endmodule
  )");
  Module* m = design->top();
  const uint64_t a = 0xa5, b = 0x3c;
  EXPECT_EQ(run_comb(*m, {{"a", a}, {"b", b}}, "y1").as_uint(), (a & b) | (a ^ b));
  EXPECT_EQ(run_comb(*m, {{"a", a}, {"b", b}}, "y2").as_uint(), (a - b) & 0xff);
  EXPECT_EQ(run_comb(*m, {{"a", a}, {"b", b}}, "y3").as_uint(), (a * b) & 0xff);
  EXPECT_EQ(run_comb(*m, {{"a", a}, {"b", b}}, "y4").as_uint(), (a < b && a != b) ? 1u : 0u);
  EXPECT_EQ(run_comb(*m, {{"a", a}, {"b", b}}, "y5").as_uint(), ((a & 0xf) == 0xf) ? 1u : 0u);
  EXPECT_EQ(run_comb(*m, {{"a", a}, {"b", b}}, "y6").as_uint(),
            static_cast<uint64_t>(__builtin_parityll(b)));
  EXPECT_EQ(run_comb(*m, {{"a", a}, {"b", b}}, "y7").as_uint(),
            ((a & 0xf) << 4) | ((b >> 4) & 0xf));
}

TEST(Elaborate, IfElseBecomesMux) {
  auto design = verilog::read_verilog(R"(
    module top(s, a, b, y);
      input s;
      input [3:0] a, b;
      output reg [3:0] y;
      always @(*) begin
        if (s) y = a; else y = b;
      end
    endmodule
  )");
  Module* m = design->top();
  EXPECT_EQ(m->count_cells(CellType::Mux), 1u);
  EXPECT_EQ(run_comb(*m, {{"s", 1}, {"a", 9}, {"b", 2}}, "y").as_uint(), 9u);
  EXPECT_EQ(run_comb(*m, {{"s", 0}, {"a", 9}, {"b", 2}}, "y").as_uint(), 2u);
}

TEST(Elaborate, CaseBecomesEqMuxChain) {
  // Listing 1 of the paper: 3 eq cells + 3 mux cells (Fig. 5).
  auto design = verilog::read_verilog(R"(
    module top(s, p0, p1, p2, p3, y);
      input [1:0] s;
      input [7:0] p0, p1, p2, p3;
      output reg [7:0] y;
      always @(*) begin
        case (s)
          2'b00: y = p0;
          2'b01: y = p1;
          2'b10: y = p2;
          default: y = p3;
        endcase
      end
    endmodule
  )");
  Module* m = design->top();
  EXPECT_EQ(m->count_cells(CellType::Mux), 3u);
  EXPECT_EQ(m->count_cells(CellType::Eq), 3u);
  EXPECT_EQ(run_comb(*m, {{"s", 0}, {"p0", 10}, {"p1", 11}, {"p2", 12}, {"p3", 13}}, "y")
                .as_uint(),
            10u);
  EXPECT_EQ(run_comb(*m, {{"s", 1}, {"p0", 10}, {"p1", 11}, {"p2", 12}, {"p3", 13}}, "y")
                .as_uint(),
            11u);
  EXPECT_EQ(run_comb(*m, {{"s", 2}, {"p0", 10}, {"p1", 11}, {"p2", 12}, {"p3", 13}}, "y")
                .as_uint(),
            12u);
  EXPECT_EQ(run_comb(*m, {{"s", 3}, {"p0", 10}, {"p1", 11}, {"p2", 12}, {"p3", 13}}, "y")
                .as_uint(),
            13u);
}

TEST(Elaborate, CasezWildcards) {
  // Listing 2 of the paper.
  auto design = verilog::read_verilog(R"(
    module top(s, p0, p1, p2, p3, y);
      input [2:0] s;
      input [3:0] p0, p1, p2, p3;
      output reg [3:0] y;
      always @(*) begin
        casez (s)
          3'b1zz: y = p0;
          3'b01z: y = p1;
          3'b001: y = p2;
          default: y = p3;
        endcase
      end
    endmodule
  )");
  Module* m = design->top();
  auto val = [&](uint64_t s) {
    return run_comb(*m, {{"s", s}, {"p0", 1}, {"p1", 2}, {"p2", 3}, {"p3", 4}}, "y").as_uint();
  };
  for (uint64_t s = 0; s < 8; ++s) {
    const uint64_t expect = (s & 4) ? 1 : (s & 2) ? 2 : (s & 1) ? 3 : 4;
    EXPECT_EQ(val(s), expect) << "s=" << s;
  }
}

TEST(Elaborate, CasePriorityFirstMatchWins) {
  auto design = verilog::read_verilog(R"(
    module top(s, y);
      input [1:0] s;
      output reg [3:0] y;
      always @(*) begin
        case (s)
          2'b01: y = 4'd1;
          2'b01: y = 4'd2;   // unreachable duplicate
          default: y = 4'd7;
        endcase
      end
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"s", 1}}, "y").as_uint(), 1u);
}

TEST(Elaborate, BlockingSemantics) {
  auto design = verilog::read_verilog(R"(
    module top(a, y);
      input [3:0] a;
      output reg [3:0] y;
      reg [3:0] t;
      always @(*) begin
        t = a + 4'd1;
        y = t + t;   // reads the updated t
      end
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"a", 3}}, "y").as_uint(), 8u);
}

TEST(Elaborate, PartialAssignMergesBits) {
  auto design = verilog::read_verilog(R"(
    module top(s, a, y);
      input s;
      input [3:0] a;
      output reg [3:0] y;
      always @(*) begin
        y = a;
        if (s) y[1:0] = 2'b11;
      end
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"s", 1}, {"a", 0b1000}}, "y").as_uint(), 0b1011u);
  EXPECT_EQ(run_comb(*design->top(), {{"s", 0}, {"a", 0b1000}}, "y").as_uint(), 0b1000u);
}

TEST(Elaborate, PosedgeCreatesDff) {
  auto design = verilog::read_verilog(R"(
    module top(clk, d, q);
      input clk;
      input [3:0] d;
      output reg [3:0] q;
      always @(posedge clk) q <= d + 4'd1;
    endmodule
  )");
  EXPECT_EQ(design->top()->count_cells(CellType::Dff), 1u);
}

TEST(Elaborate, TernaryAndConcatLvalue) {
  auto design = verilog::read_verilog(R"(
    module top(s, a, b, hi, lo);
      input s;
      input [3:0] a, b;
      output [1:0] hi;
      output [1:0] lo;
      assign {hi, lo} = s ? a : b;
    endmodule
  )");
  Module* m = design->top();
  EXPECT_EQ(run_comb(*m, {{"s", 1}, {"a", 0b1110}, {"b", 0}}, "hi").as_uint(), 0b11u);
  EXPECT_EQ(run_comb(*m, {{"s", 1}, {"a", 0b1110}, {"b", 0}}, "lo").as_uint(), 0b10u);
}

TEST(Elaborate, ParameterFolding) {
  auto design = verilog::read_verilog(R"(
    module top(a, y);
      parameter W = 4;
      localparam INC = 3;
      input [W-1:0] a;
      output [W-1:0] y;
      assign y = a + INC;
    endmodule
  )");
  EXPECT_EQ(design->top()->wire("a")->width(), 4);
  EXPECT_EQ(run_comb(*design->top(), {{"a", 2}}, "y").as_uint(), 5u);
}

TEST(Elaborate, ErrorsOnUnknownIdentifier) {
  EXPECT_THROW(verilog::read_verilog("module t(y); output y; assign y = nope; endmodule"),
               std::runtime_error);
}

// --- context-determined expression widths (IEEE 1364 §5.4 subset) ----------

TEST(ElaborateWidths, AdditionKeepsCarryInWiderContext) {
  // 8-bit + 8-bit assigned to a 9-bit net must compute the 9th (carry) bit.
  auto design = verilog::read_verilog(R"(
    module top(a, b, y);
      input [7:0] a, b;
      output [8:0] y;
      assign y = a + b;
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"a", 200}, {"b", 100}}, "y").as_uint(), 300u);
}

TEST(ElaborateWidths, SelfDeterminedAdditionWraps) {
  // Same expression assigned to an 8-bit net wraps mod 256.
  auto design = verilog::read_verilog(R"(
    module top(a, b, y);
      input [7:0] a, b;
      output [7:0] y;
      assign y = a + b;
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"a", 200}, {"b", 100}}, "y").as_uint(), 44u);
}

TEST(ElaborateWidths, ContextFlowsThroughNestedOperators) {
  // ((a + b) + c) at 10 bits: both carries preserved.
  auto design = verilog::read_verilog(R"(
    module top(a, b, c, y);
      input [7:0] a, b, c;
      output [9:0] y;
      assign y = (a + b) + c;
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"a", 255}, {"b", 255}, {"c", 255}}, "y").as_uint(),
            765u);
}

TEST(ElaborateWidths, ContextFlowsIntoTernaryArms) {
  auto design = verilog::read_verilog(R"(
    module top(s, a, b, y);
      input s;
      input [7:0] a, b;
      output [8:0] y;
      assign y = s ? (a + b) : 9'd0;
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"s", 1}, {"a", 255}, {"b", 255}}, "y").as_uint(),
            510u);
}

TEST(ElaborateWidths, ComparisonOperandsAreSelfDetermined) {
  // The compare happens at max(operand widths), not at the LHS width: the
  // 8-bit sum wraps before the comparison in self-determined context.
  auto design = verilog::read_verilog(R"(
    module top(a, b, y);
      input [7:0] a, b;
      output y;
      assign y = (a + b) < a;
    endmodule
  )");
  // 200 + 100 wraps to 44 at 8 bits; 44 < 200 is true (overflow idiom works).
  EXPECT_EQ(run_comb(*design->top(), {{"a", 200}, {"b", 100}}, "y").as_uint(), 1u);
}

TEST(ElaborateWidths, ShiftLeftKeepsBitsInWiderContext) {
  auto design = verilog::read_verilog(R"(
    module top(a, y);
      input [7:0] a;
      output [11:0] y;
      assign y = a << 4;
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"a", 0xAB}}, "y").as_uint(), 0xAB0u);
}

TEST(ElaborateWidths, ShiftAmountIsSelfDetermined) {
  // The shift amount operand must not be widened by the LHS context.
  auto design = verilog::read_verilog(R"(
    module top(a, s, y);
      input [7:0] a;
      input [2:0] s;
      output [15:0] y;
      assign y = a << s;
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"a", 0xFF}, {"s", 7}}, "y").as_uint(), 0x7F80u);
}

TEST(ElaborateWidths, SubtractionBorrowVisibleInWiderContext) {
  auto design = verilog::read_verilog(R"(
    module top(a, b, y);
      input [3:0] a, b;
      output [4:0] y;
      assign y = a - b;
    endmodule
  )");
  // 2 - 5 at 5 bits = 0b11101 = 29 (two's complement of 3 in 5 bits).
  EXPECT_EQ(run_comb(*design->top(), {{"a", 2}, {"b", 5}}, "y").as_uint(), 29u);
}

TEST(ElaborateWidths, UnaryMinusInContext) {
  auto design = verilog::read_verilog(R"(
    module top(a, y);
      input [3:0] a;
      output [7:0] y;
      assign y = -a;
    endmodule
  )");
  // -3 at 8 bits = 253 (a is zero-extended before negation, as unsigned).
  EXPECT_EQ(run_comb(*design->top(), {{"a", 3}}, "y").as_uint(), 253u);
}

TEST(ElaborateWidths, ConcatOperandsSelfDetermined) {
  // Concat parts never grow with context: {a, b} of two 4-bit nets is 8 bits
  // even when assigned to a 12-bit target (zero-padded at the top).
  auto design = verilog::read_verilog(R"(
    module top(a, b, y);
      input [3:0] a, b;
      output [11:0] y;
      assign y = {a, b};
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"a", 0xF}, {"b", 0x1}}, "y").as_uint(), 0xF1u);
}

TEST(ElaborateWidths, ParameterizedRangesAndExpressions) {
  auto design = verilog::read_verilog(R"(
    module top(a, y);
      parameter W = 6;
      localparam TOP = W * 2 - 1;
      input [W-1:0] a;
      output [TOP:0] y;
      assign y = a << W;
    endmodule
  )");
  EXPECT_EQ(design->top()->wire("a")->width(), 6);
  EXPECT_EQ(design->top()->wire("y")->width(), 12);
  EXPECT_EQ(run_comb(*design->top(), {{"a", 0x2A}}, "y").as_uint(), 0xA80u);
}

TEST(ElaborateWidths, ProceduralAssignGetsContextToo) {
  auto design = verilog::read_verilog(R"(
    module top(a, b, y);
      input [7:0] a, b;
      output reg [8:0] y;
      always @(*) y = a + b;
    endmodule
  )");
  EXPECT_EQ(run_comb(*design->top(), {{"a", 255}, {"b", 255}}, "y").as_uint(), 510u);
}
