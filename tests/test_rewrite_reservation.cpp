// Reservation-commit protocol suite (rewrite/reservation.hpp).
//
// Covers the pieces the barrier-free rewrite pipeline is built from, then the
// assembled property the pieces exist for:
//
//   * ClaimTable claim-word semantics: canonical-order tie-break (lower root
//     wins, higher is stolen from), CAS-guarded release, Dead tombstones that
//     skip rather than block, O(1) epoch reset between rounds;
//   * CommitSequencer reorder buffer: out-of-order deposits commit in strictly
//     canonical order, a throwing commit poisons the frontier so the committed
//     set is a canonical prefix, never a schedule artifact;
//   * losers requeue and eventually commit: conflicting reservation sets are
//     run through the real work-stealing pool's requeue protocol and every
//     root still commits exactly once, in canonical order;
//   * a many-thread acquire/release/steal hammer with no external
//     synchronization — the TSan CI job reruns this suite across fault seed
//     offsets precisely for this test's interleavings;
//   * the end property: netlists, stats and decision traces of the full
//     rewrite engine are byte-identical at 1/2/4/8 threads under 10 seeded
//     fault schedules (SMARTLY_FAULT_SEED_OFFSET shifts them, as in
//     tests/test_faults.cpp).
#include "backend/write_rtlil.hpp"
#include "benchgen/random_circuit.hpp"
#include "rewrite/reservation.hpp"
#include "rewrite/rewrite_engine.hpp"
#include "rtlil/module.hpp"
#include "util/fault.hpp"
#include "util/hashing.hpp"
#include "util/thread_pool.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace smartly;
using rewrite::ClaimTable;
using rewrite::CommitSequencer;

namespace {

uint64_t seed_offset() {
  const char* env = std::getenv("SMARTLY_FAULT_SEED_OFFSET");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 0;
}

std::vector<uint32_t> slots(std::initializer_list<uint32_t> l) { return {l}; }

} // namespace

// --- ClaimTable protocol ----------------------------------------------------

TEST(ClaimTableProtocol, AcquireFreeSlotsWins) {
  ClaimTable t;
  t.begin_round(8);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.acquire(3, slots({0, 4, 7})), ClaimTable::Acquire::Won);
}

TEST(ClaimTableProtocol, HigherOwnerConflictsAgainstLowerAndReleasesPrefix) {
  ClaimTable t;
  t.begin_round(8);
  ASSERT_EQ(t.acquire(3, slots({2, 4})), ClaimTable::Acquire::Won);
  // Owner 5 takes slot 1, then hits 3's claim on slot 2: whole set released.
  EXPECT_EQ(t.acquire(5, slots({1, 2})), ClaimTable::Acquire::Conflict);
  // Slot 1 was given back (otherwise owner 7 would conflict on it)...
  EXPECT_EQ(t.acquire(7, slots({1})), ClaimTable::Acquire::Won);
  // ...while slot 2 is still 3's.
  EXPECT_EQ(t.acquire(7, slots({2})), ClaimTable::Acquire::Conflict);
}

TEST(ClaimTableProtocol, LowerOwnerStealsFromHigher) {
  ClaimTable t;
  t.begin_round(8);
  ASSERT_EQ(t.acquire(5, slots({1, 2, 3})), ClaimTable::Acquire::Won);
  // Canonically-earlier root 3 takes slot 2 right through 5's claim.
  EXPECT_EQ(t.acquire(3, slots({2})), ClaimTable::Acquire::Won);
  // 5's release is CAS-guarded: it must not free the stolen slot.
  t.release(5, slots({1, 2, 3}));
  EXPECT_EQ(t.acquire(6, slots({2})), ClaimTable::Acquire::Conflict);
  EXPECT_EQ(t.acquire(6, slots({1, 3})), ClaimTable::Acquire::Won);
}

TEST(ClaimTableProtocol, ReleaseByNonOwnerIsANoop) {
  ClaimTable t;
  t.begin_round(4);
  ASSERT_EQ(t.acquire(4, slots({3})), ClaimTable::Acquire::Won);
  t.release(7, slots({3}));
  EXPECT_EQ(t.acquire(9, slots({3})), ClaimTable::Acquire::Conflict);
}

TEST(ClaimTableProtocol, EpochResetsClaimsBetweenRounds) {
  ClaimTable t;
  t.begin_round(16);
  const uint32_t first_epoch = t.epoch();
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < 16; ++i)
    all.push_back(i);
  ASSERT_EQ(t.acquire(9, all), ClaimTable::Acquire::Won);
  // New round: no release ever ran, yet every stale claim must read Free.
  t.begin_round(16);
  EXPECT_EQ(t.epoch(), first_epoch + 1);
  EXPECT_EQ(t.acquire(12, all), ClaimTable::Acquire::Won);
}

TEST(ClaimTableProtocol, DeadTombstonesSkipAcquireAndExpireWithTheRound) {
  ClaimTable t;
  t.begin_round(8);
  ASSERT_EQ(t.acquire(2, slots({1, 2, 3})), ClaimTable::Acquire::Won);
  t.settle(2, slots({1, 2, 3}), slots({2}));
  EXPECT_TRUE(t.dead(2));
  EXPECT_FALSE(t.dead(1));
  // A tombstone never resolves, so waiting on it would livelock: overlapping
  // roots must win right through it (the sequencer's revalidation is what
  // rejects them later, deterministically).
  EXPECT_EQ(t.acquire(4, slots({1, 2, 3})), ClaimTable::Acquire::Won);
  t.release(4, slots({1, 2, 3}));
  EXPECT_TRUE(t.dead(2)); // release must not clear a tombstone
  t.begin_round(8);
  EXPECT_FALSE(t.dead(2));
}

// --- CommitSequencer --------------------------------------------------------

TEST(CommitSequencerTest, OutOfOrderDepositsCommitInCanonicalOrder) {
  std::vector<size_t> order;
  CommitSequencer seq(6, [&](size_t i) { order.push_back(i); });
  seq.deposit(5);
  seq.deposit(3);
  seq.deposit(1);
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(seq.frontier(), 0u);
  seq.deposit(0); // completes the 0..1 run
  EXPECT_EQ(order, (std::vector<size_t>{0, 1}));
  seq.deposit(2); // completes 2..3
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3}));
  seq.deposit(4); // completes 4..5
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(seq.frontier(), 6u);
  EXPECT_FALSE(seq.poisoned());
}

TEST(CommitSequencerTest, ThrowingCommitPoisonsAtACanonicalPrefix) {
  std::vector<size_t> order;
  CommitSequencer seq(5, [&](size_t i) {
    if (i == 2)
      throw std::runtime_error("injected");
    order.push_back(i);
  });
  seq.deposit(0);
  seq.deposit(1);
  seq.deposit(3);
  EXPECT_EQ(order, (std::vector<size_t>{0, 1}));
  // The deposit that reaches the poisoned index carries the exception.
  EXPECT_THROW(seq.deposit(2), std::runtime_error);
  EXPECT_TRUE(seq.poisoned());
  EXPECT_EQ(seq.frontier(), 2u);
  // Later deposits are recorded but never committed — and never throw.
  EXPECT_NO_THROW(seq.deposit(4));
  EXPECT_EQ(order, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(seq.frontier(), 2u);
}

// --- losers requeue and eventually commit -----------------------------------

// The engine's round loop in miniature: overlapping reservation sets run
// through the real pool requeue protocol. Whatever the schedule, every root
// must commit exactly once and the commit order must be exactly canonical.
TEST(ReservationStress, LosersRequeueAndEventuallyCommitInOrder) {
  constexpr size_t kRoots = 300;
  constexpr uint32_t kMaxRetries = 4;
  util::ThreadPool pool(8);
  ClaimTable claims;
  claims.begin_round(kRoots + 8);

  // Root i reserves [i, i+4]: every root overlaps its four neighbors both
  // ways, so under parallel execution conflicts are all but guaranteed.
  std::vector<std::vector<uint32_t>> sets(kRoots);
  for (uint32_t i = 0; i < kRoots; ++i)
    for (uint32_t j = 0; j <= 4; ++j)
      sets[i].push_back(i + j);

  std::vector<size_t> order;
  std::vector<int> commits(kRoots, 0);
  CommitSequencer seq(kRoots, [&](size_t i) {
    order.push_back(i);
    ++commits[i];
    claims.settle(static_cast<uint32_t>(i), sets[i], {});
  });

  std::vector<uint32_t> retries(kRoots, 0);
  std::atomic<size_t> requeues{0};
  pool.run_requeue_batch(kRoots, [&](int, size_t i) {
    if (retries[i] < kMaxRetries &&
        claims.acquire(static_cast<uint32_t>(i), sets[i]) ==
            ClaimTable::Acquire::Conflict) {
      ++retries[i];
      requeues.fetch_add(1, std::memory_order_relaxed);
      return util::ThreadPool::TaskVerdict::Requeue;
    }
    seq.deposit(i);
    return util::ThreadPool::TaskVerdict::Done;
  });

  EXPECT_EQ(seq.frontier(), kRoots);
  for (size_t i = 0; i < kRoots; ++i)
    EXPECT_EQ(commits[i], 1) << "root " << i;
  ASSERT_EQ(order.size(), kRoots);
  for (size_t i = 0; i < kRoots; ++i)
    EXPECT_EQ(order[i], i);
  // Scheduling fact, not an assertion: on a multi-core run requeues is
  // almost always nonzero. Byte-identity must hold either way.
}

// Raw many-thread hammer over one ClaimTable: acquire/steal/release with no
// external synchronization beyond the table itself. Run under TSan (the CI
// job reruns this suite over fault-seed offsets) this is the data-race gate
// for the claim-word CAS protocol.
TEST(ReservationStress, ConcurrentAcquireReleaseStealHammer) {
  constexpr size_t kSlots = 64;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  ClaimTable claims;
  claims.begin_round(kSlots);

  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed_offset() + 1000 + static_cast<uint64_t>(w));
      for (int it = 0; it < kIters; ++it) {
        const uint32_t owner = static_cast<uint32_t>(w * kIters + it);
        std::vector<uint32_t> set;
        const uint32_t base = static_cast<uint32_t>(rng.below(kSlots - 8));
        for (uint32_t j = 0; j < 1 + rng.below(7); ++j)
          set.push_back(base + j);
        if (claims.acquire(owner, set) == ClaimTable::Acquire::Won)
          claims.release(owner, set);
      }
    });
  }
  for (auto& t : threads)
    t.join();

  // Every Won set was released and every Conflict self-released, so a fresh
  // owner must be able to claim the whole table (stolen-then-released slots
  // included).
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < kSlots; ++i)
    all.push_back(i);
  EXPECT_EQ(claims.acquire(0, all), ClaimTable::Acquire::Won);
}

// --- the end property: thread-count byte-identity under fault schedules -----

TEST(ReservationDeterminism, ByteIdenticalAcrossThreadCountsUnderFaultSchedules) {
  for (uint64_t s = 1; s <= 10; ++s) {
    const uint64_t seed = seed_offset() + s;
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string src = benchgen::random_verilog(seed, 6);

    std::string first_netlist;
    rewrite::RewriteStats first_stats;
    bool have_first = false;
    for (const int threads : {1, 2, 4, 8}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      auto design = verilog::read_verilog(src);
      rewrite::RewriteOptions options;
      options.threads = threads;
      options.check_index = true; // index must equal a rebuild even after halts
      rewrite::RewriteStats stats;
      {
        // Forced Unknowns skip roots, injected throws poison the sequencer
        // mid-round; both fire from the canonical commit path, so every
        // thread count must take the identical schedule.
        util::FaultPlan plan;
        plan.seed = seed;
        plan.unknown_permille = 250;
        plan.throw_permille = 60;
        plan.site_filter = "rewrite";
        util::FaultScope scope(plan);
        stats = rewrite::rewrite_sweep(*design->top(), options);
      }
      const std::string netlist = backend::write_rtlil(*design->top());
      if (!have_first) {
        first_netlist = netlist;
        first_stats = stats;
        have_first = true;
      } else {
        EXPECT_EQ(netlist, first_netlist);
        EXPECT_TRUE(rewrite::same_work(stats, first_stats));
        EXPECT_EQ(stats.halted, first_stats.halted);
        EXPECT_EQ(stats.skipped_roots, first_stats.skipped_roots);
      }
    }
  }
}
