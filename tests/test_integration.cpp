// End-to-end integration: frontend -> flows -> aigmap, with equivalence
// checking, on the generated benchmark circuits (small seeds for test speed).
#include "aig/aigmap.hpp"
#include "benchgen/public_bench.hpp"
#include "benchgen/random_circuit.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/pipeline.hpp"
#include "verilog/elaborate.hpp"

#include <gtest/gtest.h>

using namespace smartly;

namespace {

struct FlowResult {
  size_t original = 0;
  size_t yosys = 0;
  size_t smartly = 0;
};

FlowResult run_flows(const std::string& src, bool check_equiv = true) {
  FlowResult r;
  {
    auto d = verilog::read_verilog(src);
    opt::original_flow(*d->top());
    r.original = aig::aig_area(*d->top());
  }
  {
    auto d = verilog::read_verilog(src);
    auto golden = rtlil::clone_design(*d);
    opt::yosys_flow(*d->top());
    if (check_equiv) {
      const auto cec = cec::check_equivalence(*golden->top(), *d->top());
      EXPECT_TRUE(cec.equivalent) << "yosys flow broke: " << cec.failing_output;
    }
    r.yosys = aig::aig_area(*d->top());
  }
  {
    auto d = verilog::read_verilog(src);
    auto golden = rtlil::clone_design(*d);
    core::smartly_flow(*d->top());
    if (check_equiv) {
      const auto cec = cec::check_equivalence(*golden->top(), *d->top());
      EXPECT_TRUE(cec.equivalent) << "smartly flow broke: " << cec.failing_output;
    }
    r.smartly = aig::aig_area(*d->top());
  }
  return r;
}

} // namespace

TEST(Integration, CaseChainEndToEnd) {
  // Listing 1: smaRTLy should beat the baseline (3 muxes -> balanced tree,
  // eq cells disconnected).
  const FlowResult r = run_flows(R"(
    module top(s, p0, p1, p2, p3, y);
      input [1:0] s;
      input [7:0] p0, p1, p2, p3;
      output reg [7:0] y;
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p2;
        default: y = p3;
      endcase
    endmodule
  )");
  EXPECT_LE(r.yosys, r.original);
  EXPECT_LT(r.smartly, r.yosys);
}

TEST(Integration, DependentControlEndToEnd) {
  const FlowResult r = run_flows(R"(
    module top(s, r, a, b, c, y);
      input s, r;
      input [15:0] a, b, c;
      output [15:0] y;
      assign y = s ? ((s | r) ? a : b) : c;
    endmodule
  )");
  EXPECT_LT(r.smartly, r.yosys);
}

TEST(Integration, SuiteCircuitsSmartlyNeverWorse) {
  // Scaled-down members of each profile family, with CEC on.
  for (const char* name : {"ac97_ctrl", "wb_conmax", "mem_ctrl"}) {
    benchgen::Profile p = benchgen::profile_for(name);
    // Shrink for test runtime.
    p.case_chains = std::min(p.case_chains, 3);
    p.dependent = std::min(p.dependent, 4);
    p.same_ctrl = std::min(p.same_ctrl, 4);
    p.decoders = std::min(p.decoders, 2);
    p.datapath = std::min(p.datapath, 3);
    p.registered_outputs = std::min(p.registered_outputs, 2);
    const auto circuit = benchgen::generate_circuit(name, p, 0xabc0 + p.case_chains);
    SCOPED_TRACE(name);
    const FlowResult r = run_flows(circuit.verilog);
    EXPECT_LE(r.smartly, r.yosys) << name;
    EXPECT_LE(r.yosys, r.original) << name;
  }
}

TEST(Integration, RandomCircuitsStayEquivalent) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(seed);
    const std::string src = benchgen::random_verilog(seed, 4);
    run_flows(src); // EXPECTs inside verify both flows
  }
}

TEST(Integration, AblationSatOnlyAndRebuildOnly) {
  const std::string src = benchgen::generate_circuit(
      "mix", benchgen::Profile{.case_chains = 3, .dependent = 3, .same_ctrl = 2,
                               .decoders = 1, .datapath = 2, .width = 8},
      77).verilog;

  auto area_with = [&](bool sat, bool rebuild) {
    auto d = verilog::read_verilog(src);
    auto golden = rtlil::clone_design(*d);
    core::SmartlyOptions opt;
    opt.enable_sat = sat;
    opt.enable_rebuild = rebuild;
    core::smartly_flow(*d->top(), opt);
    EXPECT_TRUE(cec::check_equivalence(*golden->top(), *d->top()).equivalent)
        << "sat=" << sat << " rebuild=" << rebuild;
    return aig::aig_area(*d->top());
  };

  const size_t both = area_with(true, true);
  const size_t sat_only = area_with(true, false);
  const size_t rebuild_only = area_with(false, true);
  const size_t none = area_with(false, false);
  EXPECT_LE(both, sat_only);
  EXPECT_LE(both, rebuild_only);
  EXPECT_LE(sat_only, none);
  EXPECT_LE(rebuild_only, none);
}
