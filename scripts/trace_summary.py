#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON produced by --trace-out.

Prints a top-10 table of spans aggregated by name (total duration, call
count, mean), plus the trace extent. With --gate, also sanity-checks the
trace: the longest single span (the tool's root span) must cover at least
80% of the trace extent — i.e. total traced time ~= wall time within 20%.
CI runs the gate over the four engine-smoke traces so a refactor that
silently drops instrumentation (or leaves the root span dangling) fails
the bench-regression job rather than producing hollow traces.

Usage: trace_summary.py [--gate] [--top N] TRACE.json
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    return events


def summarize(events):
    """Aggregate complete ('X') events by name; return rows + extent."""
    totals = defaultdict(lambda: [0.0, 0, 0.0])  # name -> [total_us, count, max_us]
    t_min, t_max = None, None
    for e in events:
        ts = e.get("ts")
        if ts is not None:
            end = ts + e.get("dur", 0)
            t_min = ts if t_min is None else min(t_min, ts)
            t_max = end if t_max is None else max(t_max, end)
        if e.get("ph") != "X":
            continue
        name = e.get("name", "?")
        dur = float(e.get("dur", 0))
        row = totals[name]
        row[0] += dur
        row[1] += 1
        row[2] = max(row[2], dur)
    rows = sorted(
        ((name, tot, cnt, mx) for name, (tot, cnt, mx) in totals.items()),
        key=lambda r: -r[1],
    )
    extent = (t_max - t_min) if t_min is not None else 0.0
    return rows, extent


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--top", type=int, default=10, help="rows to print (default 10)")
    ap.add_argument(
        "--gate",
        action="store_true",
        help="fail unless the longest span covers >=80%% of the trace extent",
    )
    args = ap.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"trace_summary: cannot read {args.trace}: {e}", file=sys.stderr)
        return 2

    rows, extent = summarize(events)
    spans = sum(r[2] for r in rows)
    instants = sum(1 for e in events if e.get("ph") == "i")
    print(f"{args.trace}: {spans} spans, {instants} instants, "
          f"extent {extent / 1e6:.4f}s")
    if rows:
        print(f"{'span':<28} {'total_ms':>10} {'count':>7} {'mean_ms':>9} {'max_ms':>9}")
        for name, total, count, mx in rows[: args.top]:
            print(f"{name:<28} {total / 1e3:>10.3f} {count:>7} "
                  f"{total / count / 1e3:>9.3f} {mx / 1e3:>9.3f}")

    if args.gate:
        if not rows:
            print("trace_summary: GATE FAIL: no complete spans in trace", file=sys.stderr)
            return 1
        longest = max(r[3] for r in rows)
        if extent <= 0:
            print("trace_summary: GATE FAIL: zero trace extent", file=sys.stderr)
            return 1
        cover = longest / extent
        if cover < 0.8:
            print(
                f"trace_summary: GATE FAIL: longest span covers {cover:.1%} of the "
                f"trace extent (< 80%) — the root span is missing or truncated",
                file=sys.stderr,
            )
            return 1
        print(f"gate: ok (root span covers {cover:.1%} of extent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
