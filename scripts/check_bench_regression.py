#!/usr/bin/env python3
"""Benchmark-regression gate for the bench-regression / bench-scaling CI jobs.

Usage:
    check_bench_regression.py [--require-families[=a,b,...]] <baselines.json> <bench_output.json>...

Each bench output is a BENCH_*.json document produced by a bench_* binary's
``--smoke --json`` (or ``--scale-nodes N --json``) run (they identify
themselves through their "bench" key). The script fails (exit 1) when

  * a correctness flag is false anywhere (CEC, decision match, thread-count
    determinism) — the smokes also fail on these themselves, but the gate
    re-checks the artifacts it archives so a silently-truncated JSON cannot
    pass;
  * a gated quality metric regresses past its checked-in baseline
    (ci/bench_baselines.json). Gated metrics are "smaller is better" totals
    (cell counts, AIG area, oracle query counts), so improvements pass; the
    script prints a note suggesting a baseline refresh when a metric is
    strictly better than its baseline;
  * the shared ``resource`` block is malformed or reports degradation: bench
    smoke runs are unbudgeted, so a tripped budget or nonzero skip counters
    mean the run was not the run the quality metrics claim to describe;
  * the shared ``obs`` block is missing or malformed: every bench carries
    per-stage wall/cpu timings and a metrics-registry snapshot since the
    observability release. Timing *values* are never gated (they are
    machine-dependent); the gate checks schema only — stages present with
    non-negative seconds, counters non-negative integers under the known
    engine prefixes. A counter under an unknown prefix is a warning, not a
    failure, so adding instrumentation does not require a lockstep script
    update.

A baseline bench with no corresponding output file is a warning by default:
CI legitimately runs subsets of the bench families (each job produces only
the benches it owns), and the gate must not force every job to produce
every BENCH_*.json. With ``--require-families=a,b,...`` the named baseline
benches become *required*: absence is an error — a smoke silently fell out
of the job's run list — unless the baseline file records the family as
newer than its own benchmarked generation. The top-level ``"generation"``
counter names the baseline refresh the file was written at, and a bench
entry carrying ``"since": <generation>`` equal to it was added in that same
refresh — such a family may legitimately be missing from pipelines that
have not picked it up yet, so it stays a warning. Once the generation
counter moves past a family's ``since``, the grace period ends and absence
fails. Bare ``--require-families`` requires every family in the baseline
file.

Baselines are exact by default; a per-metric tolerance can be added as
``{"value": N, "tolerance": 0.02}`` (2% slack) if a metric ever turns out to
be machine-dependent. Most gated metrics today are deterministic by
construction (seeded generators, thread-count-invariant engines).

Thread-scaling gate: a bench whose CHECKS entry names a ``scaling`` spec
(today: ``rewrite_scaling``, ``pass``) carries per-circuit
``scaling: [{threads, seconds, speedup_vs_1t}, ...]`` curves. When the
baseline file provides ``min_speedup_4t`` for that bench, the *minimum*
4-thread ``speedup_vs_1t`` across its circuits must reach
``value * (1 - tolerance)`` — a bigger-is-better gate, unlike the area
metrics. Wall-clock ratios are machine-dependent even on dedicated runners,
so this baseline should always carry an explicit tolerance (the checked-in
one allows 5% scheduling jitter below the 1.8x target). The gate arms only
when the producing run's ``hardware_threads`` is at least 4: a speedup
demand is meaningless on a runner without the cores, so smaller machines get
a warning instead of a spurious failure.
"""

import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def load_json(path, what):
    """Load a JSON file with an actionable diagnostic instead of a traceback."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(fail(
            f"{what} {path!r} does not exist — pass the ci/bench_baselines.json "
            f"checked into the repo and the BENCH_*.json files produced by the "
            f"bench binaries' --smoke --json runs"))
    except IsADirectoryError:
        sys.exit(fail(f"{what} {path!r} is a directory, want a JSON file"))
    except json.JSONDecodeError as e:
        sys.exit(fail(
            f"{what} {path!r} is not valid JSON (line {e.lineno}, column {e.colno}: "
            f"{e.msg}) — a truncated file usually means the producing bench run "
            f"was killed; re-run it"))
    except OSError as e:
        sys.exit(fail(f"cannot read {what} {path!r}: {e.strerror or e}"))


def check_flag(doc, path, errors):
    node = doc
    for key in path[:-1]:
        node = node.get(key, {})
    value = node.get(path[-1])
    if value is not True:
        errors.append(f"{doc.get('bench', '?')}: flag {'.'.join(path)} is {value!r}, want true")


def check_rows_flag(doc, key, errors):
    for row in doc.get("circuits", []):
        if row.get(key) is not True:
            errors.append(
                f"{doc.get('bench', '?')}: circuit {row.get('name', '?')} has {key}="
                f"{row.get(key)!r}, want true"
            )


# The shared `resource` block every BENCH_*.json carries (bench_json.hpp
# resource_json). Smoke runs are unbudgeted: any trip or degradation counter
# means the archived quality metrics describe a halted, partial run.
RESOURCE_COUNTERS = (
    "conflicts", "propagations", "skipped_solves", "skipped_merges",
    "skipped_rewrites", "skipped_regions", "halted_engines",
)
RESOURCE_MUST_BE_ZERO = (
    "skipped_solves", "skipped_merges", "skipped_rewrites", "skipped_regions",
    "halted_engines",
)


def check_resource(doc, errors):
    bench = doc.get("bench", "?")
    resource = doc.get("resource")
    if not isinstance(resource, dict):
        errors.append(
            f"{bench}: missing or non-object 'resource' block — bench outputs "
            f"carry the guard's ResourceReport since the resource-governance "
            f"release; re-run the bench with a current binary")
        return
    if resource.get("tripped") != "none":
        errors.append(
            f"{bench}: resource.tripped is {resource.get('tripped')!r}, want 'none' "
            f"— an unbudgeted smoke run must never halt; its metrics describe a "
            f"partial run and cannot be gated")
    for key in RESOURCE_COUNTERS:
        value = resource.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(
                f"{bench}: resource.{key} is {value!r}, want a non-negative integer")
        elif key in RESOURCE_MUST_BE_ZERO and value != 0:
            errors.append(
                f"{bench}: resource.{key} = {value}, want 0 — the smoke run "
                f"degraded (engines skipped work), so its quality metrics are "
                f"not comparable to the baselines")


# Counter-name prefixes the instrumented engines publish (src/obs/). A
# counter outside these is a warning only: new instrumentation should not
# need a lockstep edit here to land.
KNOWN_COUNTER_PREFIXES = (
    "oracle.", "sweep.", "pool.", "fraig.", "rewrite.", "txn.", "service.",
    "log.", "bench.",
)


def check_obs(doc, errors, warnings):
    bench = doc.get("bench", "?")
    obs = doc.get("obs")
    if not isinstance(obs, dict):
        errors.append(
            f"{bench}: missing or non-object 'obs' block — bench outputs carry "
            f"per-stage timings and a counter snapshot since the observability "
            f"release; re-run the bench with a current binary")
        return
    stages = obs.get("stages")
    if not isinstance(stages, list) or not stages:
        errors.append(f"{bench}: obs.stages is {stages!r}, want a non-empty list")
    else:
        for stage in stages:
            if not isinstance(stage, dict) or not isinstance(stage.get("name"), str):
                errors.append(f"{bench}: obs stage {stage!r} lacks a string 'name'")
                continue
            for key in ("wall_seconds", "cpu_seconds"):
                v = stage.get(key)
                if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                    errors.append(
                        f"{bench}: obs stage {stage['name']!r} has {key}={v!r}, "
                        f"want a non-negative number")
    counters = obs.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{bench}: obs.counters is {counters!r}, want an object")
        return
    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(
                f"{bench}: obs counter {name!r} is {value!r}, want a "
                f"non-negative integer")
        if not any(name.startswith(p) for p in KNOWN_COUNTER_PREFIXES):
            warnings.append(
                f"{bench}: obs counter {name!r} is outside the known prefixes "
                f"({', '.join(KNOWN_COUNTER_PREFIXES)}) — fine if intentional; "
                f"add the prefix to KNOWN_COUNTER_PREFIXES when it settles")


def check_metric(doc, metric_path, baseline_entry, errors, notes):
    node = doc
    for key in metric_path:
        if key not in node:
            errors.append(f"{doc.get('bench', '?')}: missing metric {'.'.join(metric_path)}")
            return
        node = node[key]
    current = node
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        errors.append(
            f"{doc.get('bench', '?')}: metric {'.'.join(metric_path)} is {current!r}, "
            f"want a number — the bench output schema changed; update this script's "
            f"CHECKS table or fix the bench"
        )
        return
    if isinstance(baseline_entry, dict):
        if "value" not in baseline_entry:
            errors.append(
                f"ci/bench_baselines.json: entry for {'.'.join(metric_path)} is a dict "
                f"without a 'value' key — write it as {{\"value\": N, \"tolerance\": 0.02}}"
            )
            return
        baseline = baseline_entry["value"]
        tolerance = baseline_entry.get("tolerance", 0.0)
    else:
        baseline = baseline_entry
        tolerance = 0.0
    if not isinstance(baseline, (int, float)) or isinstance(baseline, bool):
        errors.append(
            f"ci/bench_baselines.json: baseline for {'.'.join(metric_path)} is "
            f"{baseline!r}, want a number"
        )
        return
    limit = baseline * (1.0 + tolerance)
    name = f"{doc.get('bench', '?')}.{'.'.join(metric_path)}"
    if current > limit:
        errors.append(f"{name} regressed: {current} > baseline {baseline} (tol {tolerance})")
    elif current < baseline:
        notes.append(f"{name} improved: {current} < baseline {baseline} — consider refreshing "
                     f"ci/bench_baselines.json")
    else:
        print(f"ok: {name} = {current} (baseline {baseline})")


def check_scaling(doc, bench_baselines, errors, warnings):
    """Gate the minimum 4-thread speedup from per-circuit scaling curves."""
    bench = doc.get("bench", "?")
    entry = bench_baselines.get("min_speedup_4t")
    if entry is None:
        return  # no speedup baseline for this bench: curves are informational
    if isinstance(entry, dict):
        target = entry.get("value")
        tolerance = entry.get("tolerance", 0.0)
    else:
        target, tolerance = entry, 0.0
    if not isinstance(target, (int, float)) or isinstance(target, bool):
        errors.append(
            f"ci/bench_baselines.json: {bench}.min_speedup_4t is {target!r}, "
            f"want a number (optionally {{\"value\": N, \"tolerance\": 0.05}})")
        return
    hardware = doc.get("hardware_threads")
    if not isinstance(hardware, int) or hardware < 4:
        warnings.append(
            f"{bench}: speedup gate skipped — run machine reports "
            f"hardware_threads={hardware!r}, need >= 4 real cores for a "
            f"4-thread speedup demand to be meaningful")
        return
    worst = None
    for row in doc.get("circuits", []):
        for point in row.get("scaling", []) if isinstance(row.get("scaling"), list) else []:
            if point.get("threads") != 4:
                continue
            speedup = point.get("speedup_vs_1t")
            if not isinstance(speedup, (int, float)) or isinstance(speedup, bool):
                errors.append(
                    f"{bench}: circuit {row.get('name', '?')} 4-thread point has "
                    f"speedup_vs_1t={speedup!r}, want a number")
                return
            if worst is None or speedup < worst:
                worst = speedup
    if worst is None:
        errors.append(
            f"{bench}: min_speedup_4t is baselined but no circuit carries a "
            f"threads=4 scaling point — run the bench with --threads 1,2,4,8")
        return
    limit = target * (1.0 - tolerance)
    if worst < limit:
        errors.append(
            f"{bench}: minimum 4-thread speedup {worst:.3f}x is below "
            f"{limit:.3f}x (target {target}x, tolerance {tolerance}) — the "
            f"parallel rewrite pipeline stopped scaling")
    else:
        print(f"ok: {bench} minimum 4-thread speedup = {worst:.3f}x "
              f"(target {target}x, tolerance {tolerance})")


# Per-bench gated flags and "smaller is better" metrics. Metric paths are
# into the bench JSON; baseline keys into ci/bench_baselines.json. A
# "scaling" key opts the bench into the min_speedup_4t gate (armed only when
# the baseline file actually provides that key for the bench).
CHECKS = {
    "oracle": {
        "row_flags": ["decisions_match"],
        "metrics": {"total_queries": ["total", "queries"]},
    },
    "pass": {
        "row_flags": ["netlist_deterministic", "stats_deterministic"],
        "metrics": {},
        "scaling": True,
    },
    "sweep": {
        "flags": [["total", "cec_all"], ["total", "deterministic_all"]],
        "row_flags": ["cec_ok", "deterministic"],
        "metrics": {"total_cells_fraig": ["total", "cells_fraig"]},
    },
    "rewrite": {
        "flags": [["total", "cec_all"], ["total", "deterministic_all"]],
        "row_flags": ["cec_ok", "deterministic"],
        "metrics": {
            "total_cells_rewrite": ["total", "cells_rewrite"],
            "total_aig_rewrite": ["total", "aig_rewrite"],
        },
    },
    # bench_rewrite --scale-nodes N: generated multi-million-AIG-node families
    # run through the rewrite engine alone, once per thread count. No CEC (a
    # SAT sweep at that size would dwarf the engine under test) and no
    # smaller-is-better area metric (the families exist to measure scaling,
    # not quality) — the gates are thread-count byte-identity plus the
    # min_speedup_4t curve gate above.
    "rewrite_scaling": {
        "flags": [["total", "deterministic_all"]],
        "row_flags": ["deterministic"],
        "metrics": {},
        "scaling": True,
    },
    # Service mode (bench_service): the crash gauntlet's result set must stay
    # byte-identical to the uninterrupted run's, nothing may be spuriously
    # quarantined, the torn snapshot must be recovered from, and the warm
    # cache must actually serve (hit rate and throughput strictly above
    # cold). corruption_loss_events counts result files lost or corrupted
    # across kill -9 restarts; its baseline is zero and must stay there.
    "service": {
        "flags": [
            ["total", "results_match_after_crash"],
            ["total", "no_spurious_quarantine"],
            ["total", "snapshot_corruption_recovered"],
            ["total", "warm_hits_beat_cold"],
            ["total", "warm_beats_cold"],
        ],
        "metrics": {
            "corruption_loss_events": ["total", "corruption_loss_events"],
            "jobs_quarantined": ["total", "jobs_quarantined"],
        },
    },
}


def main(argv):
    args = list(argv[1:])
    required = None  # None: nothing required; []: all baseline families
    for a in list(args):
        if a == "--require-families":
            required = []
            args.remove(a)
        elif a.startswith("--require-families="):
            required = [f for f in a.split("=", 1)[1].split(",") if f]
            args.remove(a)
    if len(args) < 2:
        print(__doc__)
        return 2
    baselines = load_json(args[0], "baseline file")
    if not isinstance(baselines, dict):
        return fail(
            f"baseline file {args[0]!r} must be a JSON object mapping bench names "
            f"to metric baselines, got {type(baselines).__name__}")
    generation = baselines.get("generation")

    errors, notes, warnings = [], [], []
    seen = []
    for path in args[1:]:
        doc = load_json(path, "bench output")
        if not isinstance(doc, dict):
            errors.append(f"{path}: bench output must be a JSON object, got "
                          f"{type(doc).__name__}")
            continue
        bench = doc.get("bench")
        if bench not in CHECKS:
            known = ", ".join(sorted(CHECKS))
            errors.append(f"{path}: unknown bench {bench!r} (known: {known}) — "
                          f"was this produced by a bench binary's --smoke --json run?")
            continue
        seen.append(bench)
        spec = CHECKS[bench]
        bench_baselines = baselines.get(bench, {})
        if not isinstance(bench_baselines, dict):
            errors.append(f"ci/bench_baselines.json: entry for {bench!r} must be "
                          f"an object, got {type(bench_baselines).__name__}")
            bench_baselines = {}
        check_resource(doc, errors)
        check_obs(doc, errors, warnings)
        for flag_path in spec.get("flags", []):
            check_flag(doc, flag_path, errors)
        for key in spec.get("row_flags", []):
            check_rows_flag(doc, key, errors)
        if spec.get("scaling"):
            check_scaling(doc, bench_baselines, errors, warnings)
        for baseline_key, metric_path in spec.get("metrics", {}).items():
            if baseline_key not in bench_baselines:
                errors.append(f"ci/bench_baselines.json: missing {bench}.{baseline_key}")
                continue
            check_metric(doc, metric_path, bench_baselines[baseline_key], errors, notes)

    # An absent family is normally a warning: each CI job runs only the bench
    # subset it owns. Families named by --require-families are errors when
    # absent, except those the baseline file marks as introduced by its own
    # current generation ("since" == "generation") — they get a grace period
    # until the next baseline refresh bumps the counter past them.
    for bench, entry in baselines.items():
        if bench == "generation" or bench in seen:
            continue
        since = entry.get("since") if isinstance(entry, dict) else None
        new_this_generation = generation is not None and since == generation
        is_required = required is not None and (not required or bench in required)
        if is_required and not new_this_generation:
            errors.append(
                f"baseline bench {bench!r} has no corresponding output file and "
                f"--require-families names it — pass its BENCH_*.json or, if the "
                f"family is being retired, drop it from ci/bench_baselines.json")
        elif new_this_generation:
            print(f"warn: baseline bench {bench!r} has no corresponding output "
                  f"file — tolerated: family is new in baseline generation "
                  f"{generation}")
        else:
            print(f"warn: baseline bench {bench!r} has no corresponding output "
                  f"file — family not gated this run")

    for w in warnings:
        print(f"warn: {w}")
    for note in notes:
        print(f"note: {note}")
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"bench regression gate passed ({len(seen)} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
