#!/usr/bin/env python3
"""Benchmark-regression gate for the bench-regression CI job.

Usage:
    check_bench_regression.py <baselines.json> <bench_output.json>...

Each bench output is a BENCH_*.json document produced by a bench_* binary's
``--smoke --json`` run (they identify themselves through their "bench" key).
The script fails (exit 1) when

  * a correctness flag is false anywhere (CEC, decision match, thread-count
    determinism) — the smokes also fail on these themselves, but the gate
    re-checks the artifacts it archives so a silently-truncated JSON cannot
    pass;
  * a gated quality metric regresses past its checked-in baseline
    (ci/bench_baselines.json). Gated metrics are "smaller is better" totals
    (cell counts, AIG area, oracle query counts), so improvements pass; the
    script prints a note suggesting a baseline refresh when a metric is
    strictly better than its baseline;
  * the shared ``resource`` block is malformed or reports degradation: bench
    smoke runs are unbudgeted, so a tripped budget or nonzero skip counters
    mean the run was not the run the quality metrics claim to describe;
  * the shared ``obs`` block is missing or malformed: every bench carries
    per-stage wall/cpu timings and a metrics-registry snapshot since the
    observability release. Timing *values* are never gated (they are
    machine-dependent); the gate checks schema only — stages present with
    non-negative seconds, counters non-negative integers under the known
    engine prefixes. A counter under an unknown prefix is a warning, not a
    failure, so adding instrumentation does not require a lockstep script
    update.

A baseline bench with no corresponding output file is a warning, not a
failure: CI legitimately runs subsets of the bench families (e.g. a quick
gate that skips the slow sweeps), and the gate must not force every job to
produce every BENCH_*.json. The warning keeps the gap visible in the log.

Baselines are exact by default; a per-metric tolerance can be added as
``{"value": N, "tolerance": 0.02}`` (2% slack) if a metric ever turns out to
be machine-dependent. All gated metrics today are deterministic by
construction (seeded generators, thread-count-invariant engines).
"""

import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def load_json(path, what):
    """Load a JSON file with an actionable diagnostic instead of a traceback."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        sys.exit(fail(
            f"{what} {path!r} does not exist — pass the ci/bench_baselines.json "
            f"checked into the repo and the BENCH_*.json files produced by the "
            f"bench binaries' --smoke --json runs"))
    except IsADirectoryError:
        sys.exit(fail(f"{what} {path!r} is a directory, want a JSON file"))
    except json.JSONDecodeError as e:
        sys.exit(fail(
            f"{what} {path!r} is not valid JSON (line {e.lineno}, column {e.colno}: "
            f"{e.msg}) — a truncated file usually means the producing bench run "
            f"was killed; re-run it"))
    except OSError as e:
        sys.exit(fail(f"cannot read {what} {path!r}: {e.strerror or e}"))


def check_flag(doc, path, errors):
    node = doc
    for key in path[:-1]:
        node = node.get(key, {})
    value = node.get(path[-1])
    if value is not True:
        errors.append(f"{doc.get('bench', '?')}: flag {'.'.join(path)} is {value!r}, want true")


def check_rows_flag(doc, key, errors):
    for row in doc.get("circuits", []):
        if row.get(key) is not True:
            errors.append(
                f"{doc.get('bench', '?')}: circuit {row.get('name', '?')} has {key}="
                f"{row.get(key)!r}, want true"
            )


# The shared `resource` block every BENCH_*.json carries (bench_json.hpp
# resource_json). Smoke runs are unbudgeted: any trip or degradation counter
# means the archived quality metrics describe a halted, partial run.
RESOURCE_COUNTERS = (
    "conflicts", "propagations", "skipped_solves", "skipped_merges",
    "skipped_rewrites", "skipped_regions", "halted_engines",
)
RESOURCE_MUST_BE_ZERO = (
    "skipped_solves", "skipped_merges", "skipped_rewrites", "skipped_regions",
    "halted_engines",
)


def check_resource(doc, errors):
    bench = doc.get("bench", "?")
    resource = doc.get("resource")
    if not isinstance(resource, dict):
        errors.append(
            f"{bench}: missing or non-object 'resource' block — bench outputs "
            f"carry the guard's ResourceReport since the resource-governance "
            f"release; re-run the bench with a current binary")
        return
    if resource.get("tripped") != "none":
        errors.append(
            f"{bench}: resource.tripped is {resource.get('tripped')!r}, want 'none' "
            f"— an unbudgeted smoke run must never halt; its metrics describe a "
            f"partial run and cannot be gated")
    for key in RESOURCE_COUNTERS:
        value = resource.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(
                f"{bench}: resource.{key} is {value!r}, want a non-negative integer")
        elif key in RESOURCE_MUST_BE_ZERO and value != 0:
            errors.append(
                f"{bench}: resource.{key} = {value}, want 0 — the smoke run "
                f"degraded (engines skipped work), so its quality metrics are "
                f"not comparable to the baselines")


# Counter-name prefixes the instrumented engines publish (src/obs/). A
# counter outside these is a warning only: new instrumentation should not
# need a lockstep edit here to land.
KNOWN_COUNTER_PREFIXES = (
    "oracle.", "sweep.", "pool.", "fraig.", "rewrite.", "txn.", "service.",
    "log.", "bench.",
)


def check_obs(doc, errors, warnings):
    bench = doc.get("bench", "?")
    obs = doc.get("obs")
    if not isinstance(obs, dict):
        errors.append(
            f"{bench}: missing or non-object 'obs' block — bench outputs carry "
            f"per-stage timings and a counter snapshot since the observability "
            f"release; re-run the bench with a current binary")
        return
    stages = obs.get("stages")
    if not isinstance(stages, list) or not stages:
        errors.append(f"{bench}: obs.stages is {stages!r}, want a non-empty list")
    else:
        for stage in stages:
            if not isinstance(stage, dict) or not isinstance(stage.get("name"), str):
                errors.append(f"{bench}: obs stage {stage!r} lacks a string 'name'")
                continue
            for key in ("wall_seconds", "cpu_seconds"):
                v = stage.get(key)
                if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                    errors.append(
                        f"{bench}: obs stage {stage['name']!r} has {key}={v!r}, "
                        f"want a non-negative number")
    counters = obs.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{bench}: obs.counters is {counters!r}, want an object")
        return
    for name, value in counters.items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append(
                f"{bench}: obs counter {name!r} is {value!r}, want a "
                f"non-negative integer")
        if not any(name.startswith(p) for p in KNOWN_COUNTER_PREFIXES):
            warnings.append(
                f"{bench}: obs counter {name!r} is outside the known prefixes "
                f"({', '.join(KNOWN_COUNTER_PREFIXES)}) — fine if intentional; "
                f"add the prefix to KNOWN_COUNTER_PREFIXES when it settles")


def check_metric(doc, metric_path, baseline_entry, errors, notes):
    node = doc
    for key in metric_path:
        if key not in node:
            errors.append(f"{doc.get('bench', '?')}: missing metric {'.'.join(metric_path)}")
            return
        node = node[key]
    current = node
    if not isinstance(current, (int, float)) or isinstance(current, bool):
        errors.append(
            f"{doc.get('bench', '?')}: metric {'.'.join(metric_path)} is {current!r}, "
            f"want a number — the bench output schema changed; update this script's "
            f"CHECKS table or fix the bench"
        )
        return
    if isinstance(baseline_entry, dict):
        if "value" not in baseline_entry:
            errors.append(
                f"ci/bench_baselines.json: entry for {'.'.join(metric_path)} is a dict "
                f"without a 'value' key — write it as {{\"value\": N, \"tolerance\": 0.02}}"
            )
            return
        baseline = baseline_entry["value"]
        tolerance = baseline_entry.get("tolerance", 0.0)
    else:
        baseline = baseline_entry
        tolerance = 0.0
    if not isinstance(baseline, (int, float)) or isinstance(baseline, bool):
        errors.append(
            f"ci/bench_baselines.json: baseline for {'.'.join(metric_path)} is "
            f"{baseline!r}, want a number"
        )
        return
    limit = baseline * (1.0 + tolerance)
    name = f"{doc.get('bench', '?')}.{'.'.join(metric_path)}"
    if current > limit:
        errors.append(f"{name} regressed: {current} > baseline {baseline} (tol {tolerance})")
    elif current < baseline:
        notes.append(f"{name} improved: {current} < baseline {baseline} — consider refreshing "
                     f"ci/bench_baselines.json")
    else:
        print(f"ok: {name} = {current} (baseline {baseline})")


# Per-bench gated flags and "smaller is better" metrics. Metric paths are
# into the bench JSON; baseline keys into ci/bench_baselines.json.
CHECKS = {
    "oracle": {
        "row_flags": ["decisions_match"],
        "metrics": {"total_queries": ["total", "queries"]},
    },
    "pass": {
        "row_flags": ["netlist_deterministic", "stats_deterministic"],
        "metrics": {},
    },
    "sweep": {
        "flags": [["total", "cec_all"], ["total", "deterministic_all"]],
        "row_flags": ["cec_ok", "deterministic"],
        "metrics": {"total_cells_fraig": ["total", "cells_fraig"]},
    },
    "rewrite": {
        "flags": [["total", "cec_all"], ["total", "deterministic_all"]],
        "row_flags": ["cec_ok", "deterministic"],
        "metrics": {
            "total_cells_rewrite": ["total", "cells_rewrite"],
            "total_aig_rewrite": ["total", "aig_rewrite"],
        },
    },
    # Service mode (bench_service): the crash gauntlet's result set must stay
    # byte-identical to the uninterrupted run's, nothing may be spuriously
    # quarantined, the torn snapshot must be recovered from, and the warm
    # cache must actually serve (hit rate and throughput strictly above
    # cold). corruption_loss_events counts result files lost or corrupted
    # across kill -9 restarts; its baseline is zero and must stay there.
    "service": {
        "flags": [
            ["total", "results_match_after_crash"],
            ["total", "no_spurious_quarantine"],
            ["total", "snapshot_corruption_recovered"],
            ["total", "warm_hits_beat_cold"],
            ["total", "warm_beats_cold"],
        ],
        "metrics": {
            "corruption_loss_events": ["total", "corruption_loss_events"],
            "jobs_quarantined": ["total", "jobs_quarantined"],
        },
    },
}


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baselines = load_json(argv[1], "baseline file")
    if not isinstance(baselines, dict):
        return fail(
            f"baseline file {argv[1]!r} must be a JSON object mapping bench names "
            f"to metric baselines, got {type(baselines).__name__}")

    errors, notes, warnings = [], [], []
    seen = []
    for path in argv[2:]:
        doc = load_json(path, "bench output")
        if not isinstance(doc, dict):
            errors.append(f"{path}: bench output must be a JSON object, got "
                          f"{type(doc).__name__}")
            continue
        bench = doc.get("bench")
        if bench not in CHECKS:
            known = ", ".join(sorted(CHECKS))
            errors.append(f"{path}: unknown bench {bench!r} (known: {known}) — "
                          f"was this produced by a bench binary's --smoke --json run?")
            continue
        seen.append(bench)
        spec = CHECKS[bench]
        check_resource(doc, errors)
        check_obs(doc, errors, warnings)
        for flag_path in spec.get("flags", []):
            check_flag(doc, flag_path, errors)
        for key in spec.get("row_flags", []):
            check_rows_flag(doc, key, errors)
        bench_baselines = baselines.get(bench, {})
        for baseline_key, metric_path in spec.get("metrics", {}).items():
            if baseline_key not in bench_baselines:
                errors.append(f"ci/bench_baselines.json: missing {bench}.{baseline_key}")
                continue
            check_metric(doc, metric_path, bench_baselines[baseline_key], errors, notes)

    # An absent family is a warning, not a failure: CI jobs legitimately run
    # subsets of the bench families. Keep the gap visible in the log.
    for bench in baselines:
        if bench not in seen:
            print(f"warn: baseline bench {bench!r} has no corresponding output "
                  f"file — family not gated this run")

    for w in warnings:
        print(f"warn: {w}")
    for note in notes:
        print(f"note: {note}")
    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"bench regression gate passed ({len(seen)} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
