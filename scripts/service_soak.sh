#!/usr/bin/env bash
# Kill -9 soak for the service daemon (opt_tool --serve).
#
# Repeatedly starts the daemon on a spool full of jobs, SIGKILLs it at a
# random point mid-burst, and restarts it, until the spool drains. Then it
# verifies the crash-riddled run produced the byte-identical done/ tree of
# one uninterrupted reference run: no lost jobs, no duplicated or truncated
# results, nothing spuriously quarantined. This is the same oracle
# bench_service and tests/test_service.cpp use, but with real SIGKILL
# timing noise instead of deterministic crash hooks — the two approaches
# catch different bugs.
#
# The crash-loop threshold is raised above the kill budget: every job here
# is healthy, so any quarantine would be the crash-loop breaker misfiring
# on kill timing, and the threshold must not be reachable by bad luck.
#
# Usage: scripts/service_soak.sh <opt_tool-binary> [jobs] [max-kills]
set -u

OPT_TOOL=${1:?usage: service_soak.sh <opt_tool-binary> [jobs] [max-kills]}
JOBS=${2:-24}
MAX_KILLS=${3:-12}

if [ ! -x "$OPT_TOOL" ]; then
  echo "service_soak: $OPT_TOOL is not executable" >&2
  exit 1
fi

# The work dir is only removed on PASS: after a failure it holds the
# journals, quarantine bundles, and result trees CI uploads as evidence.
WORK=$(mktemp -d "${TMPDIR:-/tmp}/service_soak.XXXXXX")
REF="$WORK/reference"
SOAK="$WORK/soak"
mkdir -p "$REF/jobs" "$SOAK/jobs"

# Deterministic job set: muxtree chains with seed-dependent depth and
# redundancy (the re-tested selects collapse, so every job has real work).
# Identical files go to both spools; the frontend wants non-ANSI ports.
gen_job() {
  depth=$((2 + $1 % 4))
  echo "module top(a, b, c, s, t, y);"
  echo "  input a, b, c, s, t;"
  echo "  output y;"
  k=0
  sep="  wire "
  while [ "$k" -le "$depth" ]; do
    printf '%sm%d' "$sep" "$k"
    sep=", "
    k=$((k + 1))
  done
  echo ";"
  echo "  assign m0 = s ? a : b;"
  k=1
  while [ "$k" -le "$depth" ]; do
    case $((($1 + k) % 3)) in
    0) echo "  assign m$k = s ? m$((k - 1)) : b;" ;;
    1) echo "  assign m$k = t ? m$((k - 1)) : c;" ;;
    2) echo "  assign m$k = s ? a : m$((k - 1));" ;;
    esac
    k=$((k + 1))
  done
  echo "  assign y = m$depth;"
  echo "endmodule"
}

i=0
while [ "$i" -lt "$JOBS" ]; do
  name=$(printf 'soak-%03d' "$i")
  gen_job "$i" >"$REF/jobs/$name.v"
  cp "$REF/jobs/$name.v" "$SOAK/jobs/$name.v"
  i=$((i + 1))
done

SERVE_FLAGS="--serve-once --serve-poll-ms 1 --serve-queue-max $JOBS \
  --serve-crash-threshold $((MAX_KILLS + 2))"

# Reference: one clean drain.
if ! "$OPT_TOOL" --serve "$REF" $SERVE_FLAGS >/dev/null 2>&1; then
  echo "service_soak: reference drain failed" >&2
  exit 1
fi

# Soak: drain under repeated SIGKILL. Each round gives the daemon a random
# 5-50 ms head start before the kill — a full drain takes under ~100 ms on
# a warm machine, so the window has to be this tight to land mid-burst.
# Kills that miss (the daemon already drained and exited) don't count; once
# MAX_KILLS is spent, the remaining rounds run to completion.
kills=0
while :; do
  pending=$(find "$SOAK/jobs" -name '*.v' 2>/dev/null | wc -l)
  if [ "$pending" -eq 0 ]; then
    break
  fi
  if [ "$kills" -ge "$MAX_KILLS" ]; then
    "$OPT_TOOL" --serve "$SOAK" $SERVE_FLAGS >/dev/null 2>&1 || {
      echo "service_soak: final drain failed" >&2
      exit 1
    }
    continue
  fi

  "$OPT_TOOL" --serve "$SOAK" $SERVE_FLAGS >/dev/null 2>&1 &
  pid=$!
  delay_ms=$((5 + RANDOM % 45))
  sleep "$(awk "BEGIN { printf \"%.3f\", $delay_ms / 1000 }")"
  if kill -9 "$pid" 2>/dev/null; then
    kills=$((kills + 1))
  fi
  wait "$pid" 2>/dev/null
done

echo "service_soak: spool drained after $kills SIGKILLs"

# Verdict 1: nothing quarantined — these jobs are healthy.
quarantined=$(find "$SOAK/quarantine" -name '*.v' 2>/dev/null | wc -l)
if [ "$quarantined" -ne 0 ]; then
  echo "service_soak: FAIL — $quarantined healthy job(s) quarantined" >&2
  exit 1
fi

# Verdict 2: done/ trees are byte-identical.
if ! diff -r "$REF/done" "$SOAK/done" >/dev/null 2>&1; then
  echo "service_soak: FAIL — crash-interrupted results differ from reference:" >&2
  diff -r "$REF/done" "$SOAK/done" 2>&1 | head -20 >&2
  exit 1
fi

count=$(find "$SOAK/done" -name '*.result' | wc -l)
if [ "$count" -ne "$JOBS" ]; then
  echo "service_soak: FAIL — expected $JOBS results, found $count" >&2
  exit 1
fi

echo "service_soak: PASS — $JOBS jobs byte-identical to reference across $kills kill -9s"
rm -rf "$WORK"
