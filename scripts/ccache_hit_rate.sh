#!/usr/bin/env bash
# ccache hit-rate report for CI jobs.
#
#   ccache_hit_rate.sh [threshold-percent]
#
# Prints `ccache -s` so every job log ends with the compiler-cache picture,
# then computes the hit rate from the machine-readable counters and emits a
# GitHub Actions warning annotation when it falls below the threshold
# (default 50%). Fail-soft by design: a cold cache or a ccache too old for
# --print-stats makes builds slower, not wrong, so this script always exits 0.
set -u

threshold="${1:-50}"

if ! command -v ccache >/dev/null 2>&1; then
  echo "ccache_hit_rate: ccache not installed; nothing to report"
  exit 0
fi

ccache -s || true

stats="$(ccache --print-stats 2>/dev/null || true)"
if [ -z "$stats" ]; then
  echo "ccache_hit_rate: this ccache lacks --print-stats; skipping the hit-rate check"
  exit 0
fi

# --print-stats emits one `counter<TAB>value` pair per line. Hits are the sum
# of direct and preprocessed mode; everything actually compiled is a miss.
counter() {
  printf '%s\n' "$stats" | awk -v k="$1" '$1 == k { print $2; found = 1 } END { if (!found) print 0 }'
}
direct="$(counter direct_cache_hit)"
preprocessed="$(counter preprocessed_cache_hit)"
miss="$(counter cache_miss)"
hits=$((direct + preprocessed))
total=$((hits + miss))

if [ "$total" -eq 0 ]; then
  echo "ccache_hit_rate: no cacheable compilations recorded; nothing to check"
  exit 0
fi

rate=$((100 * hits / total))
echo "ccache_hit_rate: ${hits}/${total} cacheable compilations hit (${rate}%)"
if [ "$rate" -lt "$threshold" ]; then
  echo "::warning title=ccache hit rate ${rate}%::below the ${threshold}% floor — cold cache or cache-key churn; this job compiled mostly from scratch"
fi
exit 0
