// Muxtree restructuring walkthrough (paper §III, Listings 1-2, Figs. 5-7).
//
// Shows the ADD mechanics directly: the terminal table of a case statement,
// the greedy vs fixed variable order, and the resulting netlist shapes.
//
//   $ ./case_rebuild
#include "aig/aigmap.hpp"
#include "core/add.hpp"
#include "core/mux_restructure.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/opt_merge.hpp"
#include "rtlil/module.hpp"
#include "verilog/elaborate.hpp"

#include <cstdio>

using namespace smartly;

namespace {

void show_module(const char* tag, const rtlil::Module& m) {
  std::printf("%-22s: %3zu mux, %3zu eq, AIG area %zu\n", tag,
              m.count_cells(rtlil::CellType::Mux), m.count_cells(rtlil::CellType::Eq),
              aig::aig_area(m));
}

} // namespace

int main() {
  // --- Part 1: the paper's Listing 2 as a raw ADD ---------------------------
  // casez (S) 3'b1zz: p0; 3'b01z: p1; 3'b001: p2; default: p3
  std::printf("== ADD over the Listing 2 case table ==\n");
  std::vector<int> table(8);
  for (int v = 0; v < 8; ++v) {
    if (v & 4) table[size_t(v)] = 0;        // S2 -> p0
    else if (v & 2) table[size_t(v)] = 1;   // S1 -> p1
    else if (v & 1) table[size_t(v)] = 2;   // S0 -> p2
    else table[size_t(v)] = 3;              // p3
  }
  const core::AddResult greedy = core::build_add(table, 3);
  const core::AddResult fixed = core::build_add_fixed_order(table, 3);
  std::printf("greedy order (S2 first): %zu muxes, height %d\n", greedy.internal_nodes(),
              greedy.height());
  std::printf("fixed order  (S0 first): %zu muxes, height %d\n", fixed.internal_nodes(),
              fixed.height());
  std::printf("(paper: a good assignment gives 3 MUXes, a poor one 7 — the reduced\n"
              " ADD shares one node of the poor order, hence %zu)\n\n",
              fixed.internal_nodes());

  // --- Part 2: Listing 1 end-to-end on the netlist ---------------------------
  std::printf("== Restructuring the Listing 1 muxtree ==\n");
  auto design = verilog::read_verilog(R"(
    module top(s, p0, p1, p2, p3, y);
      input [1:0] s;
      input [7:0] p0, p1, p2, p3;
      output reg [7:0] y;
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p2;
        default: y = p3;
      endcase
    endmodule
  )");
  rtlil::Module& top = *design->top();
  opt::opt_expr(top);
  opt::opt_clean(top);
  show_module("before (Fig. 5 chain)", top);

  const auto stats = core::mux_restructure(top, {});
  opt::opt_expr(top);
  opt::opt_clean(top);
  show_module("after  (Fig. 7 tree)", top);
  std::printf("trees rebuilt: %zu, eq cells disconnected: %zu\n\n", stats.trees_rebuilt,
              stats.eq_disconnected);

  // --- Part 3: the Check() gate -----------------------------------------------
  std::printf("== When Check() says no ==\n");
  // All eq outputs are also module outputs, so no eq can be removed, and all
  // four data values are distinct, so the ADD needs as many muxes as the
  // chain already has: zero estimated gain, Check() refuses.
  auto design2 = verilog::read_verilog(R"(
    module top(s, p0, p1, p2, p3, y, e0, e1, e2);
      input [1:0] s;
      input [7:0] p0, p1, p2, p3;
      output reg [7:0] y;
      output e0, e1, e2;
      assign e0 = (s == 2'b00);
      assign e1 = (s == 2'b01);
      assign e2 = (s == 2'b10);
      always @(*) case (s)
        2'b00: y = p0;
        2'b01: y = p1;
        2'b10: y = p2;
        default: y = p3;
      endcase
    endmodule
  )");
  rtlil::Module& top2 = *design2->top();
  opt::opt_expr(top2);
  opt::opt_merge(top2); // share the case's eq cells with e0/e1/e2's drivers
  opt::opt_clean(top2);
  const auto stats2 = core::mux_restructure(top2, {});
  std::printf("eligible trees: %zu, rebuilt: %zu (Check() rejected the rest)\n",
              stats2.trees_eligible, stats2.trees_rebuilt);
  return 0;
}
