// opt_tool — a small command-line optimizer around the library, in the
// spirit of `yosys -p "...; opt_muxtree; aigmap"`.
//
//   usage: opt_tool [options] [file.v]
//     --flow yosys|smartly|original   optimization flow (default smartly)
//     --no-sat                        disable §II SAT-based elimination
//     --no-rebuild                    disable §III muxtree restructuring
//     --threads N                     §II sweep workers (0 = hw threads; output
//                                     is bit-identical for every value)
//     --fraig                         SAT-sweeping stage after the flow (merges
//                                     duplicate/complement/constant cones)
//     --fraig-pre                     SAT-sweeping stage before the flow
//     --rewrite                       deep-optimization loop after the flow:
//                                     fraig -> DAG-aware cut rewriting -> fraig
//                                     (subsumes --fraig)
//     --reduce                        also run opt_reduce (pmux/reduction merging)
//     --budget-conflicts N            cap total CDCL conflicts across the run
//                                     (deterministic: same halt at every thread
//                                     count; engines degrade, output stays
//                                     CEC-equivalent)
//     --deadline-ms N                 wall-clock deadline (nondeterministic!)
//     --max-growth PCT                cap netlist growth over the input, percent
//     --recover                       transactional stage recovery: failures
//                                     roll back, quarantine, retry, then skip
//     --retries N                     rollback+retry attempts per stage
//                                     (default 3; implies --recover)
//     --paranoid                      CEC every stage's output against its
//                                     snapshot; miscompares are rolled back and
//                                     bisected to the faulting round (implies
//                                     --recover)
//     --repro-dir DIR                 write a repro bundle per recovery event
//                                     (implies --recover)
//     --replay DIR                    re-execute a repro bundle's stage from its
//                                     recorded design/plan/quarantine; exits 0
//                                     when the recorded failure reproduces
//     --serve DIR                     crash-safe service mode: watch DIR/jobs
//                                     for spooled netlists, run the deep flow on
//                                     each, publish results to DIR/done (see
//                                     README "Service mode"; SIGTERM drains and
//                                     exits 0). --budget-conflicts/--deadline-ms
//                                     become per-job budgets; --threads sizes
//                                     the worker pool.
//     --serve-once                    with --serve: drain the spool, then exit
//                                     instead of polling (batch mode, tests)
//     --serve-queue-max N             admission bound per poll cycle; backlog
//                                     beyond it is shed with an explicit
//                                     response in DIR/failed (default 64)
//     --serve-poll-ms N               spool scan interval when idle (default 50)
//     --serve-crash-threshold N       journal claims before a job is quarantined
//                                     as a crash looper (default 2; soak runs
//                                     raise it so random kill timing cannot
//                                     quarantine healthy jobs)
//     --serve-crash-after-jobs N      test hook: _exit(137) after N completed
//                                     jobs (crash-recovery harness)
//     --serve-crash-snapshot          test hook: tear the next warm-cache
//                                     snapshot write, then _exit(137)
//     --gen FAMILY[:N]                optimize a generated benchmark instead of
//                                     reading Verilog (FAMILY = industrial or a
//                                     public-suite circuit name; N varies it)
//     --fault-seed N / --fault-throw PM / --fault-unknown PM
//     --fault-site SUBSTR / --fault-unit-keyed
//                                     install a deterministic fault plan for the
//                                     run (test harness; PM is permille)
//     --inject-miscompare             deliberately corrupt the netlist in a
//                                     protected stage (test harness for
//                                     --paranoid and the exit-code contract)
//     --check                         equivalence-check the result
//     --stats                         print pass statistics
//     -o out.v                        write the optimized netlist as Verilog
//     --write-aiger out.aag           write the bit-blasted AIG (ASCII AIGER)
//     --trace-out trace.json          write a Chrome trace-event JSON of the
//                                     run (spans for every pipeline stage and
//                                     per-region/round/class/root child spans;
//                                     load in chrome://tracing or Perfetto)
//     --dump-rtlil                    dump the optimized netlist IR to stdout
//     (reads stdin when no file is given)
//
// Exit codes (the contract tests/test_opt_tool_cli.cpp asserts):
//   0  success
//   1  parse/usage/IO error (ParseError diagnostics go to stderr as
//      file:line:col: message)
//   2  CEC miscompare (--check found a real inequivalence)
//   3  budget exhausted or CEC inconclusive (run degraded; output is still
//      CEC-equivalent unless 2 also applied)
//   4  recovered: at least one stage was rolled back (quarantine/skip); the
//      output is the surviving stages' work
#include "aig/aigmap.hpp"
#include "backend/aiger.hpp"
#include "backend/write_rtlil.hpp"
#include "backend/write_verilog.hpp"
#include "benchgen/industrial.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "obs/trace.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/opt_muxtree.hpp"
#include "opt/opt_reduce.hpp"
#include "opt/pipeline.hpp"
#include "service/service.hpp"
#include "util/budget.hpp"
#include "util/fault.hpp"
#include "verilog/elaborate.hpp"
#include "verilog/parse_error.hpp"

#include <csignal>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

using namespace smartly;

namespace {

/// Set by SIGTERM/SIGINT in --serve mode; OptService polls it between
/// batches and drains gracefully (finish in-flight jobs, flush the warm
/// cache, exit 0).
volatile std::sig_atomic_t g_serve_stop = 0;

void serve_stop_handler(int) { g_serve_stop = 1; }

// Exit-code contract (see header comment and README "Exit codes").
constexpr int kExitOk = 0;
constexpr int kExitParse = 1;
constexpr int kExitMiscompare = 2;
constexpr int kExitBudget = 3;
constexpr int kExitRecovered = 4;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: opt_tool [--flow yosys|smartly|original] [--no-sat] "
               "[--no-rebuild] [--threads N] [--fraig] [--fraig-pre] [--rewrite] "
               "[--reduce] [--budget-conflicts N] [--deadline-ms N] [--max-growth PCT] "
               "[--recover] [--retries N] [--paranoid] [--repro-dir DIR] "
               "[--replay DIR] [--serve DIR [--serve-once] [--serve-queue-max N] "
               "[--serve-poll-ms N]] [--gen FAMILY[:N]] "
               "[--fault-seed N] [--fault-throw PM] [--fault-unknown PM] "
               "[--fault-site SUBSTR] [--fault-unit-keyed] [--inject-miscompare] "
               "[--check] [--stats] [-o out.v] [--write-aiger out.aag] "
               "[--trace-out trace.json] [--dump-rtlil] [file.v]\n"
               "  resource governance: --budget-conflicts caps total CDCL conflicts\n"
               "  (deterministic; engines degrade and the output stays CEC-equivalent),\n"
               "  --max-growth caps cell-count growth over the input in percent,\n"
               "  --deadline-ms sets a wall-clock deadline (nondeterministic).\n"
               "  recovery: --recover wraps every stage in a snapshot/rollback\n"
               "  transaction with per-unit quarantine; --paranoid adds a CEC of\n"
               "  every stage output; --repro-dir DIR emits replayable bundles.\n"
               "  exit codes: 0 ok, 1 parse/usage, 2 miscompare, 3 budget/inconclusive,\n"
               "  4 recovered-with-rollback.\n"
               "  observability: --trace-out FILE writes a Chrome trace-event JSON\n"
               "  (chrome://tracing / ui.perfetto.dev; see README \"Observability\").\n");
  std::exit(kExitParse);
}

/// Deliberately unsound, deterministic corruption (test harness): swap the
/// A/B ports of the first mux whose inputs differ — behaviorally an inverted
/// select, which paranoid CEC must catch. No-op on mux-free netlists.
void corrupt_module(rtlil::Module& m) {
  for (const auto& cell : m.cells()) {
    if (cell->type() != rtlil::CellType::Mux)
      continue;
    const rtlil::SigSpec a = cell->port(rtlil::Port::A);
    const rtlil::SigSpec b = cell->port(rtlil::Port::B);
    if (a == b)
      continue;
    cell->set_port(rtlil::Port::A, b);
    cell->set_port(rtlil::Port::B, a);
    return;
  }
}

/// Build the netlist for --gen FAMILY[:N].
benchgen::BenchCircuit generated_circuit(const std::string& spec) {
  std::string family = spec;
  uint64_t variant = 0;
  if (const size_t colon = spec.rfind(':'); colon != std::string::npos) {
    family = spec.substr(0, colon);
    char* end = nullptr;
    variant = std::strtoull(spec.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0') {
      std::fprintf(stderr, "opt_tool: --gen wants FAMILY[:N], got '%s'\n", spec.c_str());
      std::exit(kExitParse);
    }
  }
  if (family == "industrial")
    return benchgen::generate_industrial(static_cast<int>(variant % 8), /*scale=*/1,
                                         0x5eedULL + variant);
  // profile_for throws on unknown names; the top-level handler turns that
  // into exit code 1 with the message on stderr.
  return benchgen::generate_circuit(family, benchgen::profile_for(family),
                                    0x5eedULL + variant);
}

/// --replay DIR: re-execute the bundle's stage from its recorded pre-stage
/// design with the recorded fault plan and quarantine set installed. Engines
/// are deterministic, so a fault bundle re-faults at the same site:unit and
/// a miscompare bundle miscompares again. Exits 0 when the recorded failure
/// reproduces, 1 otherwise.
int replay_bundle(const std::string& dir) {
  util::ReproBundle b;
  std::string err;
  if (!util::read_repro_bundle(dir, &b, &err)) {
    std::fprintf(stderr, "opt_tool: --replay: %s\n", err.c_str());
    return kExitParse;
  }
  std::optional<util::FaultScope> scope;
  if (b.plan_active)
    scope.emplace(b.plan);
  const util::QuarantineSet quarantine = util::QuarantineSet::parse(b.quarantine);

  auto design = verilog::read_verilog(b.design_verilog, dir + "/design.v");
  if (!design->top()) {
    std::fprintf(stderr, "opt_tool: --replay: no module in bundle design\n");
    return kExitParse;
  }
  rtlil::Module& top = *design->top();
  const auto snapshot = rtlil::clone_design(*design);

  util::ResourceGuard guard((util::ResourceBudgets()));
  bool faulted = false, miscompare = false;
  std::string site;
  uint64_t unit = 0;
  try {
    // Engine options are the flows' defaults — the bundle's free-form
    // options line is informational, not machine-applied.
    if (b.stage == "fraig") {
      sweep::FraigOptions o;
      o.guard = &guard;
      o.quarantine = &quarantine;
      sweep::fraig_sweep(top, o);
      opt::opt_clean(top);
    } else if (b.stage == "rewrite") {
      rewrite::RewriteOptions o;
      o.guard = &guard;
      o.quarantine = &quarantine;
      rewrite::rewrite_sweep(top, o);
      opt::opt_clean(top);
    } else if (b.stage == "sweep") {
      core::SatRedundancyOptions o;
      o.guard = &guard;
      o.quarantine = &quarantine;
      core::sat_redundancy_parallel(top, o, /*threads=*/0);
      opt::opt_expr(top);
      opt::opt_clean(top);
    } else if (b.stage == "rebuild") {
      core::mux_restructure(top, {});
      opt::opt_expr(top);
      opt::opt_clean(top);
    } else if (b.stage == "muxtree") {
      opt::opt_muxtree(top);
      opt::opt_expr(top);
      opt::opt_clean(top);
    } else if (b.stage == "opt-pre" || b.stage == "opt-post") {
      opt::coarse_opt(top);
    } else if (b.stage == "corrupt") {
      corrupt_module(top);
    } else {
      std::fprintf(stderr, "opt_tool: --replay: unknown stage '%s'\n", b.stage.c_str());
      return kExitParse;
    }
  } catch (const util::FaultInjected& e) {
    faulted = true;
    site = e.site();
    unit = e.unit();
  }
  if (!faulted && guard.tripped() == util::BudgetKind::Fault) {
    const util::FaultReport fr = guard.fault_report();
    faulted = fr.valid;
    site = fr.site;
    unit = fr.unit;
  }
  if (!faulted) {
    const cec::CecResult r = cec::check_equivalence(*snapshot->top(), top);
    miscompare = !r.equivalent && !r.inconclusive;
  }

  bool reproduced;
  if (!b.site.empty())
    reproduced = faulted && site == b.site && unit == b.unit;
  else
    reproduced = faulted || miscompare;
  if (faulted)
    std::printf("replay %s: stage '%s' faulted at %s:%llx (recorded %s:%llx) -> %s\n",
                dir.c_str(), b.stage.c_str(), site.c_str(),
                static_cast<unsigned long long>(unit), b.site.c_str(),
                static_cast<unsigned long long>(b.unit),
                reproduced ? "REPRODUCED" : "DIFFERENT");
  else
    std::printf("replay %s: stage '%s' %s (recorded reason '%s') -> %s\n", dir.c_str(),
                b.stage.c_str(), miscompare ? "miscompared against the bundle design" : "ran clean",
                b.reason.c_str(), reproduced ? "REPRODUCED" : "NOT REPRODUCED");
  return reproduced ? kExitOk : kExitParse;
}

} // namespace

int main(int argc, char** argv) {
  std::string flow = "smartly";
  std::string path, out_verilog, out_aiger, gen_spec, replay_dir, serve_dir, trace_out;
  service::ServiceOptions serve_options;
  bool check = false, stats = false, reduce = false, dump = false;
  bool fraig_post = false, fraig_pre = false, rewrite_post = false;
  bool inject_miscompare = false;
  core::SmartlyOptions options;
  util::ResourceBudgets budgets;
  util::FaultPlan fault_plan;
  bool fault_active = false;

  auto int_flag = [&](const char* flag, int i, int64_t min) -> int64_t {
    char* end = nullptr;
    const long long n = std::strtoll(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || n < min) {
      std::fprintf(stderr, "opt_tool: %s wants an integer >= %lld, got '%s'\n", flag,
                   static_cast<long long>(min), argv[i]);
      std::exit(kExitParse);
    }
    return static_cast<int64_t>(n);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flow") {
      if (++i >= argc)
        usage();
      flow = argv[i];
    } else if (arg == "--no-sat") {
      options.enable_sat = false;
    } else if (arg == "--no-rebuild") {
      options.enable_rebuild = false;
    } else if (arg == "--threads") {
      if (++i >= argc)
        usage();
      char* end = nullptr;
      const long n = std::strtol(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0) {
        std::fprintf(stderr, "opt_tool: --threads wants a non-negative integer, got '%s'\n",
                     argv[i]);
        return kExitParse;
      }
      options.threads = static_cast<int>(n);
    } else if (arg == "--fraig") {
      fraig_post = true;
    } else if (arg == "--fraig-pre") {
      fraig_pre = true;
    } else if (arg == "--rewrite") {
      rewrite_post = true;
    } else if (arg == "--budget-conflicts") {
      if (++i >= argc)
        usage();
      budgets.solver_conflicts = int_flag("--budget-conflicts", i, 0);
    } else if (arg == "--deadline-ms") {
      if (++i >= argc)
        usage();
      budgets.deadline_ms = int_flag("--deadline-ms", i, 0);
    } else if (arg == "--max-growth") {
      if (++i >= argc)
        usage();
      budgets.max_growth_pct = int_flag("--max-growth", i, 0);
    } else if (arg == "--recover") {
      options.recovery.enabled = true;
    } else if (arg == "--retries") {
      if (++i >= argc)
        usage();
      options.recovery.max_retries = static_cast<int>(int_flag("--retries", i, 0));
      options.recovery.enabled = true;
    } else if (arg == "--paranoid") {
      options.recovery.paranoid = true;
      options.recovery.enabled = true;
    } else if (arg == "--repro-dir") {
      if (++i >= argc)
        usage();
      options.recovery.repro_dir = argv[i];
      options.recovery.enabled = true;
    } else if (arg == "--replay") {
      if (++i >= argc)
        usage();
      replay_dir = argv[i];
    } else if (arg == "--serve") {
      if (++i >= argc)
        usage();
      serve_dir = argv[i];
    } else if (arg == "--serve-once") {
      serve_options.drain_and_exit = true;
    } else if (arg == "--serve-queue-max") {
      if (++i >= argc)
        usage();
      serve_options.queue_max = static_cast<int>(int_flag("--serve-queue-max", i, 1));
    } else if (arg == "--serve-poll-ms") {
      if (++i >= argc)
        usage();
      serve_options.poll_ms = static_cast<int>(int_flag("--serve-poll-ms", i, 1));
    } else if (arg == "--serve-crash-threshold") {
      if (++i >= argc)
        usage();
      serve_options.crash_threshold =
          static_cast<int>(int_flag("--serve-crash-threshold", i, 2));
    } else if (arg == "--serve-crash-after-jobs") {
      if (++i >= argc)
        usage();
      serve_options.crash_after_jobs =
          static_cast<uint64_t>(int_flag("--serve-crash-after-jobs", i, 1));
    } else if (arg == "--serve-crash-snapshot") {
      serve_options.crash_during_snapshot = true;
    } else if (arg == "--gen") {
      if (++i >= argc)
        usage();
      gen_spec = argv[i];
    } else if (arg == "--fault-seed") {
      if (++i >= argc)
        usage();
      fault_plan.seed = static_cast<uint64_t>(int_flag("--fault-seed", i, 0));
    } else if (arg == "--fault-throw") {
      if (++i >= argc)
        usage();
      fault_plan.throw_permille = static_cast<uint32_t>(int_flag("--fault-throw", i, 0));
      fault_active = true;
    } else if (arg == "--fault-unknown") {
      if (++i >= argc)
        usage();
      fault_plan.unknown_permille = static_cast<uint32_t>(int_flag("--fault-unknown", i, 0));
      fault_active = true;
    } else if (arg == "--fault-site") {
      if (++i >= argc)
        usage();
      fault_plan.site_filter = argv[i];
    } else if (arg == "--fault-unit-keyed") {
      fault_plan.unit_keyed = true;
    } else if (arg == "--inject-miscompare") {
      inject_miscompare = true;
    } else if (arg == "--reduce") {
      reduce = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--dump-rtlil") {
      dump = true;
    } else if (arg == "-o") {
      if (++i >= argc)
        usage();
      out_verilog = argv[i];
    } else if (arg == "--write-aiger") {
      if (++i >= argc)
        usage();
      out_aiger = argv[i];
    } else if (arg == "--trace-out") {
      if (++i >= argc)
        usage();
      trace_out = argv[i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
      if (trace_out.empty())
        usage();
    } else if (arg.rfind("--", 0) == 0 || arg.rfind("-", 0) == 0) {
      usage();
    } else {
      path = arg;
    }
  }

  // Trace plumbing, armed before any mode dispatch so every path (flow,
  // serve, replay) is covered. The writer's destructor fires on every normal
  // return from main — after the root span below closes, because the span is
  // declared later. (std::exit in usage() skips it: no flow ran, no trace.)
  struct TraceOutput {
    std::string path;
    ~TraceOutput() {
      if (path.empty())
        return;
      std::string err;
      if (!obs::write_chrome_trace(path, &err))
        std::fprintf(stderr, "opt_tool: --trace-out: %s\n", err.c_str());
    }
  } trace_output;
  if (!trace_out.empty()) {
    obs::set_tracing(true);
    trace_output.path = trace_out;
  }
  const obs::Span root_span("tool", "opt_tool.flow");

  if (!serve_dir.empty()) {
    serve_options.threads = options.threads;
    serve_options.budgets = budgets; // per-job: each job gets the full allowance
    serve_options.stop_flag = &g_serve_stop;
    std::signal(SIGTERM, serve_stop_handler);
    std::signal(SIGINT, serve_stop_handler);
    service::OptService daemon(serve_dir, serve_options);
    return daemon.run();
  }

  if (!replay_dir.empty()) {
    try {
      return replay_bundle(replay_dir);
    } catch (const verilog::ParseError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return kExitParse;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "opt_tool: --replay: %s\n", e.what());
      return kExitParse;
    }
  }

  std::string source;
  if (!gen_spec.empty()) {
    try {
      const benchgen::BenchCircuit circuit = generated_circuit(gen_spec);
      source = circuit.verilog;
      path = "<gen:" + circuit.name + ">";
    } catch (const std::exception& e) {
      std::fprintf(stderr, "opt_tool: --gen: %s\n", e.what());
      return kExitParse;
    }
  } else if (path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "opt_tool: cannot open %s\n", path.c_str());
      return kExitParse;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    source = ss.str();
  }

  // Test-harness fault plan: installed for the whole optimization run (CEC
  // and backends run outside the engines' fault sites, so --check verifies
  // the faulted run's output).
  std::optional<util::FaultScope> fault_scope;
  if (fault_active)
    fault_scope.emplace(fault_plan);

  // One governor for the whole invocation: the smartly flow's engines and the
  // standalone --fraig/--rewrite stages all charge the same counters, so the
  // budgets cap the run end to end. CEC stays ungoverned on purpose — the
  // point of --check is to verify whatever the degraded run produced.
  // Recovery needs a guard too (fault trips are reported through it), so one
  // is armed whenever budgets, faults, or recovery are in play.
  util::ResourceBudgets effective_budgets = budgets;
  util::ResourceGuard guard(effective_budgets);
  const bool governed = budgets.any();
  const bool guarded = governed || fault_active || options.recovery.enabled;
  if (guarded) {
    options.sat.guard = &guard;
    options.fraig.guard = &guard;
    options.rewrite.guard = &guard;
  }

  try {
    auto design = verilog::read_verilog(source, path.empty() ? "<stdin>" : path);
    if (!design->top()) {
      std::fprintf(stderr, "opt_tool: no module found\n");
      return kExitParse;
    }
    rtlil::Module& top = *design->top();
    const size_t original = aig::aig_area(top);
    auto golden = check ? rtlil::clone_design(*design) : nullptr;
    if (guarded)
      guard.set_growth_baseline(top.cells().size());

    // Tool-level recovery context: covers the standalone --fraig-pre/--fraig/
    // --rewrite stages and the --inject-miscompare harness stage. The smartly
    // flow keeps its own context internally; stats merge below.
    opt::RecoveryContext tool_rctx;
    tool_rctx.options = options.recovery;
    tool_rctx.engine_options = "opt_tool standalone stage";
    opt::RecoveryContext* trp = options.recovery.enabled ? &tool_rctx : nullptr;

    sweep::FraigOptions fraig_options;
    fraig_options.threads = options.threads;
    if (guarded)
      fraig_options.guard = &guard;
    sweep::FraigStats fraig_st;
    if (fraig_pre)
      fraig_st += opt::fraig_stage(top, fraig_options, trp);

    core::SmartlyStats st;
    if (flow == "original") {
      opt::original_flow(top);
    } else if (flow == "yosys") {
      opt::yosys_flow(top);
    } else if (flow == "smartly") {
      st = core::smartly_flow(top, options);
    } else {
      usage();
    }
    // --rewrite subsumes --fraig: the loop below opens with its own fraig
    // stage, so a standalone post-flow fraig would just re-sweep a fixpoint.
    if (fraig_post && !rewrite_post)
      fraig_st += opt::fraig_stage(top, fraig_options, trp);
    rewrite::RewriteStats rewrite_st;
    if (rewrite_post) {
      opt::DeepOptOptions deep;
      deep.fraig = fraig_options;
      deep.rewrite.threads = options.threads;
      deep.recovery = trp;
      if (guarded)
        deep.rewrite.guard = &guard;
      const opt::DeepOptStats ds = opt::fraig_rewrite_loop(top, deep);
      fraig_st += ds.fraig;
      rewrite_st += ds.rewrite;
    }
    if (inject_miscompare) {
      // Harness stage: corrupts the netlist deterministically. Unprotected
      // (no --recover) it survives to the output and --check exits 2; under
      // --paranoid it is detected, rolled back, and skipped (exit 4).
      opt::run_protected_stage(top, "corrupt", trp, guarded ? &guard : nullptr,
                               [](rtlil::Module& m, int) { corrupt_module(m); });
    }
    if (reduce) {
      opt::opt_reduce(top);
      opt::opt_clean(top);
    }

    util::RecoveryStats recovery = std::move(st.recovery);
    recovery += tool_rctx.stats;

    std::printf("module %s: AIG area %zu -> %zu (%.2f%% reduction)\n", top.name().c_str(),
                original, aig::aig_area(top),
                original ? 100.0 * (double(original) - double(aig::aig_area(top))) /
                               double(original)
                         : 0.0);

    if (stats && flow == "smartly") {
      std::printf("  rebuild: %zu/%zu trees rebuilt, %zu muxes removed, %zu added, "
                  "%zu eq freed\n",
                  st.rebuild.trees_rebuilt, st.rebuild.trees_seen, st.rebuild.mux_removed,
                  st.rebuild.mux_added, st.rebuild.eq_disconnected);
      std::printf("  sat: %zu queries (syntactic %zu, inference %zu, sim %zu, sat %zu), "
                  "%zu muxes collapsed\n",
                  st.sat.queries, st.sat.decided_syntactic, st.sat.decided_inference,
                  st.sat.decided_sim, st.sat.decided_sat, st.sat.walker.mux_collapsed);
      std::printf("  subgraphs: %zu gates seen, %zu kept (%.0f%% dismissed)\n",
                  st.sat.gates_seen, st.sat.gates_kept,
                  st.sat.gates_seen
                      ? 100.0 * (1.0 - double(st.sat.gates_kept) / double(st.sat.gates_seen))
                      : 0.0);
    }
    if (stats && (fraig_pre || fraig_post || rewrite_post)) {
      std::printf("  fraig: %zu rounds, %zu classes, %zu sat queries "
                  "(%zu equal, %zu const, %zu structural, %zu disproved, %zu unknown), "
                  "%zu cells merged (%zu inverters), %zu pre-merged, %zu cex patterns\n",
                  fraig_st.rounds, fraig_st.classes, fraig_st.sat_queries,
                  fraig_st.proved_equal, fraig_st.proved_constant, fraig_st.proved_structural,
                  fraig_st.disproved, fraig_st.unknown, fraig_st.merged_cells,
                  fraig_st.inverter_cells, fraig_st.pre_merged, fraig_st.cex_patterns);
    }
    if (stats && rewrite_post) {
      std::printf("  rewrite: %zu rounds, %zu cuts, %zu roots, %zu candidates "
                  "(%zu npn classes), %zu rewrites (%zu zero-gain), "
                  "%zu cells added, %zu gates reused, %zu cells shared, "
                  "%zu predicted dead\n",
                  rewrite_st.rounds, rewrite_st.cuts, rewrite_st.roots_evaluated,
                  rewrite_st.candidates, rewrite_st.npn_classes, rewrite_st.rewrites,
                  rewrite_st.zero_gain_rewrites, rewrite_st.cells_added,
                  rewrite_st.gates_reused, rewrite_st.cells_shared,
                  rewrite_st.predicted_dead);
    }

    if (governed) {
      const util::ResourceReport rr = guard.report();
      std::printf("  resource: %llu conflicts, %llu propagations%s%s\n",
                  static_cast<unsigned long long>(rr.conflicts),
                  static_cast<unsigned long long>(rr.propagations),
                  rr.halted() ? ", halted by " : "",
                  rr.halted() ? util::budget_kind_name(rr.tripped) : "");
      if (rr.halted())
        std::printf("  resource: %llu solves, %llu merges, %llu rewrites, %llu regions "
                    "skipped after the halt (%llu engines stopped early)\n",
                    static_cast<unsigned long long>(rr.skipped_solves),
                    static_cast<unsigned long long>(rr.skipped_merges),
                    static_cast<unsigned long long>(rr.skipped_rewrites),
                    static_cast<unsigned long long>(rr.skipped_regions),
                    static_cast<unsigned long long>(rr.halted_engines));
    }

    if (recovery.any()) {
      std::printf("  recovery: %llu stages, %llu rollbacks, %llu retries, "
                  "%llu quarantined, %llu skipped, %llu bundles\n",
                  static_cast<unsigned long long>(recovery.stages),
                  static_cast<unsigned long long>(recovery.rollbacks),
                  static_cast<unsigned long long>(recovery.retries),
                  static_cast<unsigned long long>(recovery.quarantined_units),
                  static_cast<unsigned long long>(recovery.stages_skipped),
                  static_cast<unsigned long long>(recovery.bundles_written));
      if (options.recovery.paranoid)
        std::printf("  recovery: %llu paranoid checks, %llu miscompares\n",
                    static_cast<unsigned long long>(recovery.paranoid_checks),
                    static_cast<unsigned long long>(recovery.paranoid_miscompares));
      for (const util::RecoveryEvent& ev : recovery.events) {
        std::printf("  recovery: stage '%s' attempt %d: %s", ev.stage.c_str(), ev.attempt,
                    ev.reason.c_str());
        if (!ev.site.empty())
          std::printf(" at %s:%llx", ev.site.c_str(),
                      static_cast<unsigned long long>(ev.unit));
        if (ev.round >= 0)
          std::printf(" (bisected to round %d)", ev.round);
        if (ev.quarantined)
          std::printf(" [quarantined]");
        if (ev.skipped)
          std::printf(" [stage skipped]");
        if (!ev.bundle_dir.empty())
          std::printf(" bundle=%s", ev.bundle_dir.c_str());
        std::printf("\n");
      }
    }

    if (!out_verilog.empty()) {
      std::ofstream f(out_verilog);
      f << backend::write_verilog(top);
      std::printf("  wrote %s\n", out_verilog.c_str());
    }
    if (!out_aiger.empty()) {
      std::ofstream f(out_aiger);
      f << backend::write_aiger_ascii(aig::aigmap(top).aig);
      std::printf("  wrote %s\n", out_aiger.c_str());
    }
    if (dump)
      std::fputs(backend::write_rtlil(top).c_str(), stdout);

    bool miscompare = false, inconclusive = false;
    if (check && golden) {
      const auto cec = cec::check_equivalence(*golden->top(), top);
      miscompare = !cec.equivalent && !cec.inconclusive;
      inconclusive = cec.inconclusive;
      std::printf("  equivalence: %s%s\n",
                  cec.equivalent ? "PASS" : (cec.inconclusive ? "INCONCLUSIVE" : "FAIL"),
                  miscompare ? (" at " + cec.failing_output).c_str() : "");
    }

    // Exit-code contract, most severe applicable code wins (2 < 3 < 4 in
    // severity order below 1).
    if (miscompare)
      return kExitMiscompare;
    const util::ResourceReport rr = guard.report();
    if (inconclusive || (guarded && rr.halted()))
      return kExitBudget;
    if (recovery.rollbacks > 0 || recovery.stages_skipped > 0)
      return kExitRecovered;
  } catch (const verilog::ParseError& e) {
    // Editor-friendly diagnostic: file:line:col: message.
    std::fprintf(stderr, "%s\n", e.what());
    return kExitParse;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opt_tool: %s\n", e.what());
    return kExitParse;
  }
  return kExitOk;
}
