// opt_tool — a small command-line optimizer around the library, in the
// spirit of `yosys -p "...; opt_muxtree; aigmap"`.
//
//   usage: opt_tool [options] [file.v]
//     --flow yosys|smartly|original   optimization flow (default smartly)
//     --no-sat                        disable §II SAT-based elimination
//     --no-rebuild                    disable §III muxtree restructuring
//     --threads N                     §II sweep workers (0 = hw threads; output
//                                     is bit-identical for every value)
//     --fraig                         SAT-sweeping stage after the flow (merges
//                                     duplicate/complement/constant cones)
//     --fraig-pre                     SAT-sweeping stage before the flow
//     --rewrite                       deep-optimization loop after the flow:
//                                     fraig -> DAG-aware cut rewriting -> fraig
//                                     (subsumes --fraig)
//     --reduce                        also run opt_reduce (pmux/reduction merging)
//     --budget-conflicts N            cap total CDCL conflicts across the run
//                                     (deterministic: same halt at every thread
//                                     count; engines degrade, output stays
//                                     CEC-equivalent)
//     --deadline-ms N                 wall-clock deadline (nondeterministic!)
//     --max-growth PCT                cap netlist growth over the input, percent
//     --check                         equivalence-check the result
//     --stats                         print pass statistics
//     -o out.v                        write the optimized netlist as Verilog
//     --write-aiger out.aag           write the bit-blasted AIG (ASCII AIGER)
//     --dump-rtlil                    dump the optimized netlist IR to stdout
//     (reads stdin when no file is given)
#include "aig/aigmap.hpp"
#include "backend/aiger.hpp"
#include "backend/write_rtlil.hpp"
#include "backend/write_verilog.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_reduce.hpp"
#include "opt/pipeline.hpp"
#include "util/budget.hpp"
#include "verilog/elaborate.hpp"
#include "verilog/parse_error.hpp"

#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace smartly;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: opt_tool [--flow yosys|smartly|original] [--no-sat] "
               "[--no-rebuild] [--threads N] [--fraig] [--fraig-pre] [--rewrite] "
               "[--reduce] [--budget-conflicts N] [--deadline-ms N] [--max-growth PCT] "
               "[--check] [--stats] [-o out.v] [--write-aiger out.aag] "
               "[--dump-rtlil] [file.v]\n"
               "  resource governance: --budget-conflicts caps total CDCL conflicts\n"
               "  (deterministic; engines degrade and the output stays CEC-equivalent),\n"
               "  --max-growth caps cell-count growth over the input in percent,\n"
               "  --deadline-ms sets a wall-clock deadline (nondeterministic).\n");
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  std::string flow = "smartly";
  std::string path, out_verilog, out_aiger;
  bool check = false, stats = false, reduce = false, dump = false;
  bool fraig_post = false, fraig_pre = false, rewrite_post = false;
  core::SmartlyOptions options;
  util::ResourceBudgets budgets;

  auto int_flag = [&](const char* flag, int i, int64_t min) -> int64_t {
    char* end = nullptr;
    const long long n = std::strtoll(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || n < min) {
      std::fprintf(stderr, "opt_tool: %s wants an integer >= %lld, got '%s'\n", flag,
                   static_cast<long long>(min), argv[i]);
      std::exit(2);
    }
    return static_cast<int64_t>(n);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flow") {
      if (++i >= argc)
        usage();
      flow = argv[i];
    } else if (arg == "--no-sat") {
      options.enable_sat = false;
    } else if (arg == "--no-rebuild") {
      options.enable_rebuild = false;
    } else if (arg == "--threads") {
      if (++i >= argc)
        usage();
      char* end = nullptr;
      const long n = std::strtol(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || n < 0) {
        std::fprintf(stderr, "opt_tool: --threads wants a non-negative integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      options.threads = static_cast<int>(n);
    } else if (arg == "--fraig") {
      fraig_post = true;
    } else if (arg == "--fraig-pre") {
      fraig_pre = true;
    } else if (arg == "--rewrite") {
      rewrite_post = true;
    } else if (arg == "--budget-conflicts") {
      if (++i >= argc)
        usage();
      budgets.solver_conflicts = int_flag("--budget-conflicts", i, 0);
    } else if (arg == "--deadline-ms") {
      if (++i >= argc)
        usage();
      budgets.deadline_ms = int_flag("--deadline-ms", i, 0);
    } else if (arg == "--max-growth") {
      if (++i >= argc)
        usage();
      budgets.max_growth_pct = int_flag("--max-growth", i, 0);
    } else if (arg == "--reduce") {
      reduce = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--dump-rtlil") {
      dump = true;
    } else if (arg == "-o") {
      if (++i >= argc)
        usage();
      out_verilog = argv[i];
    } else if (arg == "--write-aiger") {
      if (++i >= argc)
        usage();
      out_aiger = argv[i];
    } else if (arg.rfind("--", 0) == 0 || arg.rfind("-", 0) == 0) {
      usage();
    } else {
      path = arg;
    }
  }

  std::string source;
  if (path.empty()) {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "opt_tool: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    source = ss.str();
  }

  // One governor for the whole invocation: the smartly flow's engines and the
  // standalone --fraig/--rewrite stages all charge the same counters, so the
  // budgets cap the run end to end. CEC stays ungoverned on purpose — the
  // point of --check is to verify whatever the degraded run produced.
  util::ResourceGuard guard(budgets);
  const bool governed = budgets.any();
  if (governed) {
    options.sat.guard = &guard;
    options.fraig.guard = &guard;
    options.rewrite.guard = &guard;
  }

  try {
    auto design = verilog::read_verilog(source, path.empty() ? "<stdin>" : path);
    if (!design->top()) {
      std::fprintf(stderr, "opt_tool: no module found\n");
      return 1;
    }
    rtlil::Module& top = *design->top();
    const size_t original = aig::aig_area(top);
    auto golden = check ? rtlil::clone_design(*design) : nullptr;
    if (governed)
      guard.set_growth_baseline(top.cells().size());

    sweep::FraigOptions fraig_options;
    fraig_options.threads = options.threads;
    if (governed)
      fraig_options.guard = &guard;
    sweep::FraigStats fraig_st;
    if (fraig_pre)
      fraig_st += opt::fraig_stage(top, fraig_options);

    core::SmartlyStats st;
    if (flow == "original") {
      opt::original_flow(top);
    } else if (flow == "yosys") {
      opt::yosys_flow(top);
    } else if (flow == "smartly") {
      st = core::smartly_flow(top, options);
    } else {
      usage();
    }
    // --rewrite subsumes --fraig: the loop below opens with its own fraig
    // stage, so a standalone post-flow fraig would just re-sweep a fixpoint.
    if (fraig_post && !rewrite_post)
      fraig_st += opt::fraig_stage(top, fraig_options);
    rewrite::RewriteStats rewrite_st;
    if (rewrite_post) {
      opt::DeepOptOptions deep;
      deep.fraig = fraig_options;
      deep.rewrite.threads = options.threads;
      if (governed)
        deep.rewrite.guard = &guard;
      const opt::DeepOptStats ds = opt::fraig_rewrite_loop(top, deep);
      fraig_st += ds.fraig;
      rewrite_st += ds.rewrite;
    }
    if (reduce) {
      opt::opt_reduce(top);
      opt::opt_clean(top);
    }

    std::printf("module %s: AIG area %zu -> %zu (%.2f%% reduction)\n", top.name().c_str(),
                original, aig::aig_area(top),
                original ? 100.0 * (double(original) - double(aig::aig_area(top))) /
                               double(original)
                         : 0.0);

    if (stats && flow == "smartly") {
      std::printf("  rebuild: %zu/%zu trees rebuilt, %zu muxes removed, %zu added, "
                  "%zu eq freed\n",
                  st.rebuild.trees_rebuilt, st.rebuild.trees_seen, st.rebuild.mux_removed,
                  st.rebuild.mux_added, st.rebuild.eq_disconnected);
      std::printf("  sat: %zu queries (syntactic %zu, inference %zu, sim %zu, sat %zu), "
                  "%zu muxes collapsed\n",
                  st.sat.queries, st.sat.decided_syntactic, st.sat.decided_inference,
                  st.sat.decided_sim, st.sat.decided_sat, st.sat.walker.mux_collapsed);
      std::printf("  subgraphs: %zu gates seen, %zu kept (%.0f%% dismissed)\n",
                  st.sat.gates_seen, st.sat.gates_kept,
                  st.sat.gates_seen
                      ? 100.0 * (1.0 - double(st.sat.gates_kept) / double(st.sat.gates_seen))
                      : 0.0);
    }
    if (stats && (fraig_pre || fraig_post || rewrite_post)) {
      std::printf("  fraig: %zu rounds, %zu classes, %zu sat queries "
                  "(%zu equal, %zu const, %zu structural, %zu disproved, %zu unknown), "
                  "%zu cells merged (%zu inverters), %zu pre-merged, %zu cex patterns\n",
                  fraig_st.rounds, fraig_st.classes, fraig_st.sat_queries,
                  fraig_st.proved_equal, fraig_st.proved_constant, fraig_st.proved_structural,
                  fraig_st.disproved, fraig_st.unknown, fraig_st.merged_cells,
                  fraig_st.inverter_cells, fraig_st.pre_merged, fraig_st.cex_patterns);
    }
    if (stats && rewrite_post) {
      std::printf("  rewrite: %zu rounds, %zu cuts, %zu roots, %zu candidates "
                  "(%zu npn classes), %zu rewrites (%zu zero-gain), "
                  "%zu cells added, %zu gates reused, %zu cells shared, "
                  "%zu predicted dead\n",
                  rewrite_st.rounds, rewrite_st.cuts, rewrite_st.roots_evaluated,
                  rewrite_st.candidates, rewrite_st.npn_classes, rewrite_st.rewrites,
                  rewrite_st.zero_gain_rewrites, rewrite_st.cells_added,
                  rewrite_st.gates_reused, rewrite_st.cells_shared,
                  rewrite_st.predicted_dead);
    }

    if (governed) {
      const util::ResourceReport rr = guard.report();
      std::printf("  resource: %llu conflicts, %llu propagations%s%s\n",
                  static_cast<unsigned long long>(rr.conflicts),
                  static_cast<unsigned long long>(rr.propagations),
                  rr.halted() ? ", halted by " : "",
                  rr.halted() ? util::budget_kind_name(rr.tripped) : "");
      if (rr.halted())
        std::printf("  resource: %llu solves, %llu merges, %llu rewrites, %llu regions "
                    "skipped after the halt (%llu engines stopped early)\n",
                    static_cast<unsigned long long>(rr.skipped_solves),
                    static_cast<unsigned long long>(rr.skipped_merges),
                    static_cast<unsigned long long>(rr.skipped_rewrites),
                    static_cast<unsigned long long>(rr.skipped_regions),
                    static_cast<unsigned long long>(rr.halted_engines));
    }

    if (!out_verilog.empty()) {
      std::ofstream f(out_verilog);
      f << backend::write_verilog(top);
      std::printf("  wrote %s\n", out_verilog.c_str());
    }
    if (!out_aiger.empty()) {
      std::ofstream f(out_aiger);
      f << backend::write_aiger_ascii(aig::aigmap(top).aig);
      std::printf("  wrote %s\n", out_aiger.c_str());
    }
    if (dump)
      std::fputs(backend::write_rtlil(top).c_str(), stdout);

    if (check && golden) {
      const auto cec = cec::check_equivalence(*golden->top(), top);
      std::printf("  equivalence: %s%s\n", cec.equivalent ? "PASS" : "FAIL",
                  cec.equivalent ? "" : (" at " + cec.failing_output).c_str());
      if (!cec.equivalent)
        return 1;
    }
  } catch (const verilog::ParseError& e) {
    // Editor-friendly diagnostic: file:line:col: message.
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "opt_tool: %s\n", e.what());
    return 1;
  }
  return 0;
}
