// Export flow: optimize a design, then hand it to downstream tooling —
// Verilog (re-verified by a round trip through our own frontend), AIGER for
// AIG-based tools (ABC, aigsim), and a human-readable RTLIL dump.
//
//   $ ./export_flow [out_dir]        (default: current directory)
#include "aig/aigmap.hpp"
#include "backend/aiger.hpp"
#include "backend/write_rtlil.hpp"
#include "backend/write_verilog.hpp"
#include "cec/cec.hpp"
#include "core/smartly_pass.hpp"
#include "verilog/elaborate.hpp"

#include <cstdio>
#include <fstream>
#include <string>

static const char* kDesign = R"(
module alu_lite(op, en, bypass, a, b, y, dbg);
  input [2:0] op;
  input en, bypass;
  input [7:0] a, b;
  output reg [7:0] y;
  output [7:0] dbg;

  wire [7:0] sum, dif;
  assign sum = a + b;
  assign dif = a - b;

  // Result-forwarding case: several opcodes map to the same source, so the
  // rebuilt ADD is much smaller than the elaborated mux chain (§III).
  always @(*) case (op)
    3'd0: y = sum;
    3'd1: y = dif;
    3'd2: y = sum;
    3'd3: y = a;
    3'd4: y = dif;
    3'd5: y = sum;
    3'd6: y = a;
    default: y = 8'd0;
  endcase

  // Dependent controls: on the en=1 branch, (en | bypass) is forced (§II).
  assign dbg = en ? ((en | bypass) ? sum : dif) : b;
endmodule
)";

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "";

  auto design = smartly::verilog::read_verilog(kDesign);
  smartly::rtlil::Module& top = *design->top();
  auto golden = smartly::rtlil::clone_design(*design);

  const size_t before = smartly::aig::aig_area(top);
  smartly::core::smartly_flow(top);
  std::printf("alu_lite: AIG area %zu -> %zu\n", before, smartly::aig::aig_area(top));

  // 1. Verilog out, and prove the written text means the same thing.
  const std::string verilog_text = smartly::backend::write_verilog(top);
  {
    std::ofstream f(dir + "alu_lite_opt.v");
    f << verilog_text;
  }
  auto reread = smartly::verilog::read_verilog(verilog_text);
  const auto rt = smartly::cec::check_equivalence(top, *reread->top());
  std::printf("verilog round trip: %s (alu_lite_opt.v)\n", rt.equivalent ? "PASS" : "FAIL");

  // 2. AIGER out (both variants).
  const auto mapped = smartly::aig::aigmap(top);
  {
    std::ofstream f(dir + "alu_lite_opt.aag");
    f << smartly::backend::write_aiger_ascii(mapped.aig);
  }
  {
    std::ofstream f(dir + "alu_lite_opt.aig", std::ios::binary);
    f << smartly::backend::write_aiger_binary(mapped.aig);
  }
  std::printf("aiger: %zu inputs, %zu outputs, %zu ands (alu_lite_opt.aag/.aig)\n",
              mapped.aig.num_inputs(), mapped.aig.num_outputs(),
              mapped.aig.num_ands_reachable());

  // 3. RTLIL dump for inspection.
  {
    std::ofstream f(dir + "alu_lite_opt.rtlil");
    f << smartly::backend::write_rtlil(top);
  }
  std::printf("rtlil dump written (alu_lite_opt.rtlil)\n");

  // Final sanity: optimized design still equivalent to the original source.
  const auto cec = smartly::cec::check_equivalence(*golden->top(), top);
  std::printf("optimized vs original: %s\n", cec.equivalent ? "PASS" : "FAIL");
  return rt.equivalent && cec.equivalent ? 0 : 1;
}
