// SAT-based redundancy elimination walkthrough (paper §II, Fig. 3).
//
// Drives the InferenceOracle directly to show each decision stage —
// syntactic lookup, sub-graph extraction with the Theorem II.1 filter,
// Table I inference rules, and the simulation/SAT fallback — then runs the
// full pass on a netlist the baseline cannot touch.
//
//   $ ./dependent_control
#include "aig/aigmap.hpp"
#include "core/sat_redundancy.hpp"
#include "core/subgraph.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/opt_muxtree.hpp"
#include "rtlil/module.hpp"
#include "verilog/elaborate.hpp"

#include <cstdio>

using namespace smartly;

namespace {
const char* decision_name(opt::CtrlDecision d) {
  switch (d) {
  case opt::CtrlDecision::Unknown: return "Unknown";
  case opt::CtrlDecision::Zero: return "Zero";
  case opt::CtrlDecision::One: return "One";
  case opt::CtrlDecision::DeadPath: return "DeadPath";
  }
  return "?";
}
} // namespace

int main() {
  // Build Fig. 3 by hand: Y = S ? ((S|R) ? A : B) : C.
  rtlil::Design design;
  rtlil::Module* m = design.add_module("fig3");
  rtlil::Wire* s = m->add_wire("s", 1);
  rtlil::Wire* r = m->add_wire("r", 1);
  rtlil::Wire* a = m->add_wire("a", 8);
  rtlil::Wire* b = m->add_wire("b", 8);
  rtlil::Wire* c = m->add_wire("c", 8);
  rtlil::Wire* y = m->add_wire("y", 8);
  for (rtlil::Wire* w : {s, r, a, b, c})
    m->set_port_input(w);
  m->set_port_output(y);

  using rtlil::SigBit;
  using rtlil::SigSpec;
  const SigSpec sr = m->Or(SigSpec(s), SigSpec(r));
  const SigSpec inner = m->Mux(SigSpec(b), SigSpec(a), sr);   // (s|r) ? a : b
  m->add_mux(SigSpec(c), inner, SigSpec(s), SigSpec(y));      // s ? inner : c

  std::printf("Fig. 3 netlist: %zu cells, AIG area %zu\n\n", m->cell_count(),
              aig::aig_area(*m));

  // --- Stage by stage: ask the oracle about the inner control -----------------
  std::printf("== Oracle decision for ctrl = (s|r) given the path s=1 ==\n");
  core::InferenceOracle oracle({});
  oracle.begin_module(*m);
  const opt::KnownMap path{{SigBit(s, 0), true}};
  const auto decision = oracle.decide(sr[0], path);
  std::printf("decision: %s  (the muxtree branch B is always taken)\n",
              decision_name(decision));
  const auto& st = oracle.stats();
  std::printf("decided by: syntactic=%zu inference=%zu sim=%zu sat=%zu\n",
              st.decided_syntactic, st.decided_inference, st.decided_sim, st.decided_sat);
  std::printf("sub-graph: %zu gates in the distance-k ball, %zu kept by the\n"
              "Theorem II.1 relevance filter\n\n",
              st.gates_seen, st.gates_kept);

  // --- Baseline vs smaRTLy on the same netlist -------------------------------
  std::printf("== Baseline (syntactic) vs SAT-based elimination ==\n");
  {
    auto d2 = rtlil::clone_design(design);
    opt::opt_muxtree(*d2->top());
    opt::opt_expr(*d2->top());
    opt::opt_clean(*d2->top());
    std::printf("baseline opt_muxtree: area %zu (cannot see that s forces s|r)\n",
                aig::aig_area(*d2->top()));
  }
  {
    auto d2 = rtlil::clone_design(design);
    core::sat_redundancy(*d2->top(), {});
    opt::opt_expr(*d2->top());
    opt::opt_clean(*d2->top());
    std::printf("smaRTLy sat_redundancy: area %zu (Y = s ? a : c)\n",
                aig::aig_area(*d2->top()));
  }

  // --- A deeper nest showing the inference chain -------------------------------
  std::printf("\n== Deeper dependence: controls s, s|r1, (s|r1)|r2 ==\n");
  auto d3 = verilog::read_verilog(R"(
    module deep(s, r1, r2, a, b, c, d, y);
      input s, r1, r2;
      input [15:0] a, b, c, d;
      output [15:0] y;
      wire k1, k2;
      assign k1 = s | r1;
      assign k2 = k1 | r2;
      assign y = s ? (k1 ? (k2 ? a : b) : c) : d;
    endmodule
  )");
  const size_t before = aig::aig_area(*d3->top());
  const auto stats = core::sat_redundancy(*d3->top(), {});
  opt::opt_expr(*d3->top());
  opt::opt_clean(*d3->top());
  std::printf("area %zu -> %zu; muxes collapsed: %zu (both k1 and k2 forced by s=1)\n",
              before, aig::aig_area(*d3->top()), stats.walker.mux_collapsed);
  return 0;
}
