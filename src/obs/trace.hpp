// Hierarchical span tracing with Chrome trace-event export.
//
// The repo's engines interleave parallel phases (region walks, class
// proofs, root evaluations) with single-threaded barriers; knowing *where
// time and contention go* per region/round/job is the prerequisite for the
// scale-out work in ROADMAP items 1 and 2. This tracer makes that visible
// without touching any deterministic output:
//
//   * `Span` is an RAII scope: construction records a steady-clock start,
//     destruction appends one complete event ("ph":"X") to the calling
//     thread's buffer. Nesting falls out of the timestamps — Chrome/Perfetto
//     stack same-thread events by containment, so a span opened inside
//     another renders as its child.
//   * Per-thread buffers are lock-free on the hot path: each thread owns a
//     thread_local event vector (registered once, under a mutex, on first
//     use) and appends to it with no synchronization. Buffers are drained
//     by write_chrome_trace() at quiescent points — after the engines'
//     thread pools have joined, so every append happens-before the read.
//   * Tracing is off by default and the disabled path is a single relaxed
//     atomic load per span (<1% wall time on bench_pass is the gate in
//     tests/test_obs.cpp and the acceptance bar). Span names are static
//     strings; the std::string overload copies only when tracing is on.
//
// Determinism contract: spans and instant events carry timing and thread
// ids, which are *never* fed back into any engine decision, netlist byte,
// decision trace, or gated BENCH stat. Traces are observability output
// only — the byte-identity guarantee at 1/2/4/8 threads holds with tracing
// on (tests/test_obs.cpp asserts it on a fraig+rewrite flow).
//
// Output: Chrome trace-event JSON (the "JSON Array Format" variant with a
// traceEvents envelope), loadable in chrome://tracing and ui.perfetto.dev,
// written by `opt_tool --trace-out=FILE` and the bench binaries'
// `--trace-out FILE`. scripts/trace_summary.py prints a per-span summary.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace smartly::obs {

/// Process-global tracing switch. Off by default; enabling mid-run is safe
/// (spans already open simply never record).
bool tracing_enabled() noexcept;
void set_tracing(bool on) noexcept;

/// Microseconds since the process-wide trace epoch (first use of the clock).
uint64_t trace_now_us() noexcept;

namespace detail {
extern std::atomic<bool> g_tracing; // definition in trace.cpp
void record_complete(const char* cat, std::string name, uint64_t ts_us, uint64_t dur_us,
                     const char* arg_key, uint64_t arg);
} // namespace detail

inline bool tracing_enabled() noexcept {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// RAII span. The no-op path (tracing disabled) costs one relaxed load.
class Span {
public:
  /// Static name (the common case): nothing is copied or allocated.
  explicit Span(const char* cat, const char* name) noexcept
      : Span(cat, name, nullptr, 0) {}
  Span(const char* cat, const char* name, const char* arg_key, uint64_t arg) noexcept
      : cat_(cat), name_(name), arg_key_(arg_key), arg_(arg),
        active_(tracing_enabled()) {
    if (active_)
      start_us_ = trace_now_us();
  }
  /// Dynamic name (stage names arriving as std::string). The string is
  /// copied only when tracing is enabled.
  Span(const char* cat, const std::string& name, const char* arg_key = nullptr,
       uint64_t arg = 0)
      : cat_(cat), arg_key_(arg_key), arg_(arg), active_(tracing_enabled()) {
    if (active_) {
      dyn_name_ = name;
      start_us_ = trace_now_us();
    }
  }
  ~Span() {
    if (active_)
      detail::record_complete(cat_, name_ != nullptr ? std::string(name_)
                                                     : std::move(dyn_name_),
                              start_us_, trace_now_us() - start_us_, arg_key_, arg_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr; ///< static-name path; null when dyn_name_ is used
  std::string dyn_name_;
  const char* arg_key_ = nullptr;
  uint64_t arg_ = 0;
  bool active_ = false;
  uint64_t start_us_ = 0;
};

/// Append an instant event ("ph":"i", thread scope) — used by the log layer
/// for records >= Warn and available for one-shot markers. No-op when
/// tracing is disabled; `message` lands in args.message.
void trace_instant(const char* cat, const char* name, const std::string& message);

/// Serialize every thread's buffered events as Chrome trace-event JSON.
/// Call at a quiescent point (engine pools joined): draining does not
/// synchronize with concurrent appends. Buffers are left intact, so a
/// flush mid-run and a flush at exit both see the full history.
std::string chrome_trace_json();

/// chrome_trace_json() to a file. Returns false (and fills *error when
/// non-null) on I/O failure.
bool write_chrome_trace(const std::string& path, std::string* error = nullptr);

/// Drop all buffered events and restart the trace epoch (tests; also used
/// by long-lived daemons between trace windows). Quiescent-point only.
void reset_trace();

/// Number of buffered events across all threads (tests).
size_t trace_event_count();

} // namespace smartly::obs
