// Per-stage wall/CPU profiling for the BENCH `obs` block.
//
// Bench binaries (and opt_tool's flow driver) wrap each named stage in
// StageProfile::scope(); the accumulated table renders into BENCH_*.json as
//
//   "obs": {"stages": [{"name": ..., "wall_seconds": ..., "cpu_seconds": ...},
//           ...], "counters": {...}}
//
// via benchjson::obs_json. Wall time is steady_clock; CPU time is
// std::clock() (process-wide, so a parallel stage can legitimately report
// cpu_seconds > wall_seconds). Timings are observability output only and
// never feed gated BENCH stats.
#pragma once

#include <chrono>
#include <ctime>
#include <string>
#include <vector>

namespace smartly::obs {

struct StageTiming {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

/// Accumulates named stage timings in first-seen order; repeated stage
/// names accumulate into one row. Single-threaded by design: scopes are
/// opened and closed on the driver thread around whole stages.
class StageProfile {
public:
  class Scope {
  public:
    Scope(StageProfile& profile, std::string name)
        : profile_(profile), name_(std::move(name)),
          wall_start_(std::chrono::steady_clock::now()), cpu_start_(std::clock()) {}
    ~Scope() {
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start_)
              .count();
      const double cpu =
          static_cast<double>(std::clock() - cpu_start_) / CLOCKS_PER_SEC;
      profile_.add(name_, wall, cpu);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    StageProfile& profile_;
    std::string name_;
    std::chrono::steady_clock::time_point wall_start_;
    std::clock_t cpu_start_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

  void add(const std::string& name, double wall_seconds, double cpu_seconds) {
    for (StageTiming& s : stages_) {
      if (s.name == name) {
        s.wall_seconds += wall_seconds;
        s.cpu_seconds += cpu_seconds;
        return;
      }
    }
    stages_.push_back(StageTiming{name, wall_seconds, cpu_seconds});
  }

  const std::vector<StageTiming>& stages() const { return stages_; }

private:
  std::vector<StageTiming> stages_;
};

} // namespace smartly::obs
