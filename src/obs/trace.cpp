#include "obs/trace.hpp"

#include "util/atomic_file.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

namespace smartly::obs {

namespace {

struct TraceEvent {
  std::string name;
  const char* cat;      ///< static category string
  char phase;           ///< 'X' complete, 'i' instant
  uint64_t ts_us;
  uint64_t dur_us;      ///< complete events only
  const char* arg_key;  ///< optional numeric arg (static key), null when absent
  uint64_t arg;
  std::string message;  ///< instant events only (args.message)
};

/// One per thread that ever emitted an event. The owning thread appends with
/// no synchronization; the registry's shared_ptr keeps the buffer alive past
/// thread exit (engine pools are torn down before traces are written).
struct ThreadBuffer {
  uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
  uint64_t epoch_generation = 0;
};

Registry& registry() {
  static Registry* r = new Registry(); // leaked: outlives thread_local dtors
  return *r;
}

std::chrono::steady_clock::time_point& epoch() {
  static std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  return t0;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\t': out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
}

} // namespace

namespace detail {

std::atomic<bool> g_tracing{false};

void record_complete(const char* cat, std::string name, uint64_t ts_us, uint64_t dur_us,
                     const char* arg_key, uint64_t arg) {
  ThreadBuffer& buf = thread_buffer();
  buf.events.push_back(
      TraceEvent{std::move(name), cat, 'X', ts_us, dur_us, arg_key, arg, {}});
}

} // namespace detail

void set_tracing(bool on) noexcept {
  (void)trace_now_us(); // pin the epoch before the first span reads it
  detail::g_tracing.store(on, std::memory_order_relaxed);
}

uint64_t trace_now_us() noexcept {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - epoch())
                                   .count());
}

void trace_instant(const char* cat, const char* name, const std::string& message) {
  if (!tracing_enabled())
    return;
  ThreadBuffer& buf = thread_buffer();
  buf.events.push_back(
      TraceEvent{name, cat, 'i', trace_now_us(), 0, nullptr, 0, message});
}

std::string chrome_trace_json() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  char num[160];
  for (const auto& buf : r.buffers) {
    for (const TraceEvent& ev : buf->events) {
      if (!first)
        out += ",\n";
      first = false;
      out += "{\"name\": \"";
      json_escape_into(out, ev.name);
      out += "\", \"cat\": \"";
      out += ev.cat;
      out += "\", \"ph\": \"";
      out += ev.phase;
      out += "\", \"pid\": 1, \"tid\": ";
      std::snprintf(num, sizeof num, "%u, \"ts\": %llu", buf->tid,
                    static_cast<unsigned long long>(ev.ts_us));
      out += num;
      if (ev.phase == 'X') {
        std::snprintf(num, sizeof num, ", \"dur\": %llu",
                      static_cast<unsigned long long>(ev.dur_us));
        out += num;
      } else if (ev.phase == 'i') {
        out += ", \"s\": \"t\"";
      }
      if (ev.arg_key != nullptr) {
        std::snprintf(num, sizeof num, ", \"args\": {\"%s\": %llu}", ev.arg_key,
                      static_cast<unsigned long long>(ev.arg));
        out += num;
      } else if (!ev.message.empty()) {
        out += ", \"args\": {\"message\": \"";
        json_escape_into(out, ev.message);
        out += "\"}";
      }
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, std::string* error) {
  return util::atomic_write_file(path, chrome_trace_json(), error);
}

void reset_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buf : r.buffers)
    buf->events.clear();
  epoch() = std::chrono::steady_clock::now();
  ++r.epoch_generation;
}

size_t trace_event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  size_t n = 0;
  for (const auto& buf : r.buffers)
    n += buf->events.size();
  return n;
}

} // namespace smartly::obs
