#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace smartly::obs {

namespace {

/// Prometheus metric name: `smartly_` prefix, dots and other non-identifier
/// characters mapped to underscores.
std::string prom_name(const std::string& name) {
  std::string out = "smartly_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_u64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

} // namespace

Registry& Registry::global() {
  static Registry* r = new Registry(); // leaked: usable from static dtors
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot)
    slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot)
    slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot)
    slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, uint64_t>> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size() + gauges_.size() + 2 * histograms_.size());
  for (const auto& [name, c] : counters_)
    out.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_)
    out.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name + ".count", h->count());
    out.emplace_back(name + ".sum", h->sum());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n" + p + " ";
    append_u64(out, c->value());
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n" + p + " ";
    append_u64(out, g->value());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += h->bucket(i);
      out += p + "_bucket{le=\"";
      if (i == Histogram::kBuckets - 1)
        out += "+Inf";
      else
        append_u64(out, Histogram::bucket_bound(i));
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += p + "_sum ";
    append_u64(out, h->sum());
    out += '\n';
    out += p + "_count ";
    append_u64(out, h->count());
    out += '\n';
  }
  return out;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_)
    c->reset();
  for (const auto& [name, g] : gauges_)
    g->reset();
  for (const auto& [name, h] : histograms_)
    h->reset();
}

} // namespace smartly::obs
