// Process-global metrics registry: counters, gauges, log2-bucket histograms.
//
// Every engine publishes work counters here under stable, engine-prefixed
// names (the catalog is in README "Observability"): oracle solve/cache-hit
// counters, sweep region/queue stats, fraig refinement and solver-conflict
// histograms, rewrite gain/commit counters, service job-lifecycle and
// warm-cache and journal-fsync metrics. Two consumers:
//
//   * Prometheus-style text exposition (prometheus_text), written atomically
//     by the service daemon as <spool>/metrics.prom next to
//     service_stats.json, and as a final snapshot on --serve-once exit.
//   * The `obs` block in every BENCH_*.json (counter_snapshot through
//     benchjson::obs_json), gated for schema presence by
//     scripts/check_bench_regression.py.
//
// Hot-path cost: metric updates are relaxed atomic adds; call sites cache
// the Counter&/Histogram& in a function-local static so the name lookup
// (mutex + map) happens once per process. Registration never invalidates
// references — reset() zeroes values in place and entries are never erased.
//
// Determinism contract: metrics are observability output only. Counter
// values charged from worker threads are scheduling-independent *totals*
// (sums of completed atomic adds at barriers) for the deterministic
// engines, but nothing in the repo may read a metric back to make a
// decision — netlists, decision traces, and gated BENCH stats must remain
// byte-identical at every thread count with or without metrics consumers.
// Timing lives only in traces, histograms, and the exposition, never in
// gated outputs.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace smartly::obs {

class Counter {
public:
  void add(uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
public:
  void set(uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed log2 buckets: bucket i counts observations with value <= 2^i - 1
/// rendered cumulatively (Prometheus `le` convention), i in [0, kBuckets);
/// the last bucket is +Inf. 2^31 - 1 as the largest finite bound covers
/// conflict counts and microsecond latencies alike.
class Histogram {
public:
  static constexpr int kBuckets = 33; ///< le 0, 1, 3, 7, ..., 2^31-1, +Inf

  void observe(uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i (2^i - 1); the last bucket is +Inf.
  static uint64_t bucket_bound(int i) noexcept { return (uint64_t(1) << i) - 1; }
  /// Index of the bucket an observation lands in: the smallest i with
  /// v <= 2^i - 1, saturating at the +Inf bucket.
  static int bucket_index(uint64_t v) noexcept {
    for (int i = 0; i < kBuckets - 1; ++i)
      if (v <= bucket_bound(i))
        return i;
    return kBuckets - 1;
  }
  void reset() noexcept {
    for (auto& b : buckets_)
      b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Name-keyed registry. Lookup is mutex-protected; returned references are
/// stable for the process lifetime (entries are never erased).
class Registry {
public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Sorted flat snapshot of every metric as (name, value) pairs: counters
  /// and gauges verbatim, histograms as <name>.count and <name>.sum. This
  /// is what the BENCH `obs` block embeds.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const;

  /// Prometheus text exposition format. Metric names are prefixed
  /// `smartly_` with dots mapped to underscores; histograms render
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
  std::string prometheus_text() const;

  /// Zero every registered metric in place (references stay valid).
  void reset_all();

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands for the call-site idiom: cache the reference in a
/// function-local static so the registry lookup happens once.
inline Counter& counter(const char* name) { return Registry::global().counter(name); }
inline Gauge& gauge(const char* name) { return Registry::global().gauge(name); }
inline Histogram& histogram(const char* name) {
  return Registry::global().histogram(name);
}

} // namespace smartly::obs
