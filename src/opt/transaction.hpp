// Transactional stage execution: snapshot, verify, commit — or roll back,
// quarantine the offending unit, and retry.
//
// run_protected_stage wraps one engine stage (sweep / fraig / rewrite /
// opt_*) in a StageTransaction. The stage runs against the live module; the
// transaction holds a deep-copy snapshot taken at entry. Failures are
// detected three ways:
//   (a) an injected FaultInjected escaping the stage, or the run guard
//       tripping BudgetKind::Fault at a barrier (the engines convert
//       contained worker throws into that trip and record the offending
//       unit via ResourceGuard::note_fault);
//   (b) paranoid mode: a cone-restricted CEC of the stage output against
//       the snapshot, with a miscompare auto-bisected to the first faulting
//       round by deterministic re-execution under a round cap;
//   (c) invariant probes at the commit point (Module::check; the engines
//       additionally run their check_index probes internally).
// On failure the module is rolled back byte-identically (verified against
// the write_rtlil dump of the snapshot), the guard's Fault trip is cleared,
// the failing unit is added to the sticky QuarantineSet, a repro bundle is
// emitted, and the stage is re-run. After max_retries failures the stage is
// skipped — the module keeps its pre-stage contents and the pipeline moves
// on. A protected stage therefore never aborts the job.
//
// Real budget trips (conflicts, deadline, cancel, growth) are *not*
// failures: they are PR 6's sound degradation, the stage's partial output
// is kept, and no rollback happens.
//
// Quiescence contract with the barrier-free rewrite pipeline: although
// rewrite workers evaluate roots without a round barrier, every module
// mutation goes through the commit sequencer's journal, which is applied
// only at round boundaries after the worker pool has joined — including on
// faulted rounds, where the journal holds the canonical prefix that
// committed before the poison point. A StageTransaction snapshot (entry or
// paranoid CEC) therefore always observes a quiescent netlist: fully
// pre-round or fully post-round, never a half-applied one.
#pragma once

#include "rtlil/module.hpp"
#include "util/budget.hpp"
#include "util/recovery.hpp"

#include <functional>
#include <memory>
#include <string>

namespace smartly::opt {

/// Shared recovery state for one pass/pipeline run: options, the sticky
/// cross-stage quarantine set, aggregated stats, and the bundle counter.
struct RecoveryContext {
  util::RecoveryOptions options;
  util::QuarantineSet quarantine;
  util::RecoveryStats stats;
  int bundle_counter = 0;
  std::string engine_options; ///< one-line option summary recorded in bundles
};

/// Snapshot/rollback primitive around one engine stage.
class StageTransaction {
public:
  /// Deep-copies `module` (clone_design machinery) as the rollback image.
  StageTransaction(rtlil::Module& module, std::string stage);

  const std::string& stage() const noexcept { return stage_; }
  /// The pre-stage image (valid for the transaction's lifetime).
  const rtlil::Module& snapshot() const;

  /// Restore the live module to the snapshot and verify the restoration is
  /// byte-identical (write_rtlil dump compare against the snapshot). Throws
  /// std::logic_error if the dumps diverge — that would mean the rollback
  /// primitive itself is broken, which must never be papered over.
  void rollback();

private:
  rtlil::Module& module_;
  std::string stage_;
  std::unique_ptr<rtlil::Design> snapshot_;
};

/// One engine stage. `max_rounds` < 0 means "run with the configured round
/// cap"; paranoid bisection probes re-run the body with caps 1..N to find
/// the first faulting round. Bodies whose engine has no round notion ignore
/// the parameter.
using StageBody = std::function<void(rtlil::Module& module, int max_rounds)>;

struct StageOutcome {
  bool committed = false; ///< final module state is the stage's output
  bool skipped = false;   ///< retries exhausted; module holds the pre-stage image
  int attempts = 0;       ///< stage executions (bisection probes excluded)
};

/// Execute `body` under transactional recovery. With a null/disabled
/// context the body runs unwrapped (zero overhead, no snapshot). `guard`
/// may be null; when present its Fault trips are treated as stage failures
/// and cleared before each retry.
StageOutcome run_protected_stage(rtlil::Module& module, const std::string& stage,
                                 RecoveryContext* ctx, util::ResourceGuard* guard,
                                 const StageBody& body);

} // namespace smartly::opt
