#include "opt/transaction.hpp"

#include "backend/write_rtlil.hpp"
#include "backend/write_verilog.hpp"
#include "cec/cec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

#include <stdexcept>

namespace smartly::opt {

StageTransaction::StageTransaction(rtlil::Module& module, std::string stage)
    : module_(module), stage_(std::move(stage)) {
  const obs::Span span("txn", "txn.snapshot", "cells",
                       static_cast<uint64_t>(module.cells().size()));
  auto single = std::make_unique<rtlil::Design>();
  rtlil::copy_module_into(*single->add_module(module.name()), module);
  snapshot_ = std::move(single);
}

const rtlil::Module& StageTransaction::snapshot() const { return *snapshot_->top(); }

void StageTransaction::rollback() {
  const obs::Span span("txn", "txn.rollback");
  static obs::Counter& rollbacks = obs::counter("txn.rollbacks");
  rollbacks.add();
  rtlil::restore_module(module_, snapshot());
  // The rollback *is* the recovery guarantee — verify it, always. A dump
  // mismatch means restore_module lost information, and retrying on a
  // corrupted base would convert one bad stage into a bad job.
  const std::string got = backend::write_rtlil(module_);
  const std::string want = backend::write_rtlil(snapshot());
  if (got != want)
    throw std::logic_error("StageTransaction: rollback of stage '" + stage_ +
                           "' is not byte-identical to the snapshot");
}

namespace {

/// Run `body` on a throwaway copy of `snapshot` under a round cap and report
/// whether the result miscompares against the snapshot. Throws inside the
/// probe count as failing; inconclusive CEC counts as passing (conservative:
/// never blame a round the budget could not settle).
bool probe_round_fails(const rtlil::Module& snapshot, const StageBody& body, int round_cap,
                       util::ResourceGuard* guard, const util::RecoveryOptions& options) {
  auto scratch = std::make_unique<rtlil::Design>();
  rtlil::Module* m = scratch->add_module(snapshot.name());
  rtlil::copy_module_into(*m, snapshot);
  bool failed = false;
  try {
    body(*m, round_cap);
  } catch (const std::exception&) {
    failed = true;
  }
  if (guard != nullptr)
    guard->clear_fault_halt(); // probe faults must not leak into the retry
  if (!failed) {
    cec::CecOptions cec_opts;
    cec_opts.conflict_budget = options.paranoid_conflict_budget;
    const cec::CecResult r = cec::check_equivalence(snapshot, *m, cec_opts);
    failed = !r.equivalent && !r.inconclusive;
  }
  return failed;
}

/// Binary-search the smallest round cap that reproduces the miscompare.
/// Stages are deterministic, so re-running the body from the snapshot under
/// a cap replays the faulting history exactly — this is the "journal
/// replay" the bisection rides on. Assumes wrongness is monotone in the cap
/// (later rounds do not un-corrupt the netlist). Returns -1 when no capped
/// run reproduces it (e.g. the wrongness needs the full, uncapped run).
int bisect_faulting_round(const rtlil::Module& snapshot, const StageBody& body,
                          util::ResourceGuard* guard, const util::RecoveryOptions& options) {
  constexpr int kMaxRoundCap = 16; // matches the engines' largest default cap
  int lo = 1, hi = kMaxRoundCap, found = -1;
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    if (probe_round_fails(snapshot, body, mid, guard, options)) {
      found = mid;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return found;
}

} // namespace

StageOutcome run_protected_stage(rtlil::Module& module, const std::string& stage,
                                 RecoveryContext* ctx, util::ResourceGuard* guard,
                                 const StageBody& body) {
  static obs::Counter& stages_counter = obs::counter("txn.stages");
  stages_counter.add();
  StageOutcome outcome;
  if (ctx == nullptr || !ctx->options.enabled) {
    const obs::Span span("txn", "stage:" + stage);
    body(module, -1);
    outcome.committed = true;
    outcome.attempts = 1;
    return outcome;
  }

  ctx->stats.stages += 1;
  // A Fault trip still armed at entry is stale — left by code running outside
  // any transaction on the same guard. Clear it so it cannot be mis-attributed
  // to this stage's first attempt.
  if (guard != nullptr)
    guard->clear_fault_halt();
  const int max_attempts = 1 + (ctx->options.max_retries > 0 ? ctx->options.max_retries : 0);

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    const obs::Span span("txn", "stage:" + stage, "attempt",
                         static_cast<uint64_t>(attempt));
    StageTransaction txn(module, stage);
    outcome.attempts = attempt;

    bool failed = false;
    util::RecoveryEvent ev;
    ev.stage = stage;
    ev.attempt = attempt;

    try {
      body(module, -1);
      if (guard != nullptr && guard->tripped() == util::BudgetKind::Fault) {
        // The engine contained a worker fault and halted at a barrier; the
        // guard carries the first offending site/unit (note_fault).
        failed = true;
        ev.reason = "fault-halt";
        const util::FaultReport fr = guard->fault_report();
        if (fr.valid) {
          ev.site = fr.site;
          ev.unit = fr.unit;
        }
      } else {
        // Commit-point invariant probe. The engines run their own
        // check_index probes internally; this catches structural damage
        // (foreign wires, out-of-range bits) any stage could introduce.
        module.check();
        if (ctx->options.paranoid) {
          ctx->stats.paranoid_checks += 1;
          cec::CecOptions cec_opts;
          cec_opts.conflict_budget = ctx->options.paranoid_conflict_budget;
          const cec::CecResult r = cec::check_equivalence(txn.snapshot(), module, cec_opts);
          if (!r.equivalent && !r.inconclusive) {
            failed = true;
            ctx->stats.paranoid_miscompares += 1;
            ev.reason = "paranoid-miscompare";
            ev.round = bisect_faulting_round(txn.snapshot(), body, guard, ctx->options);
          }
        }
      }
    } catch (const util::FaultInjected& e) {
      failed = true;
      ev.reason = "fault-injected";
      ev.site = e.site();
      ev.unit = e.unit();
    } catch (const std::exception& e) {
      failed = true;
      ev.reason = std::string("exception: ") + e.what();
    }

    if (!failed) {
      outcome.committed = true;
      return outcome;
    }

    // --- recovery: bundle, roll back, quarantine, retry or skip -----------
    if (!ctx->options.repro_dir.empty()) {
      util::ReproBundle bundle;
      bundle.design_verilog = backend::write_verilog(txn.snapshot());
      bundle.stage = stage;
      bundle.reason = ev.reason;
      bundle.site = ev.site;
      bundle.unit = ev.unit;
      bundle.attempt = attempt;
      bundle.plan_active = util::active_fault_plan(&bundle.plan);
      bundle.quarantine = ctx->quarantine.serialize();
      bundle.options = ctx->engine_options;
      ev.bundle_dir = util::write_repro_bundle(ctx->options.repro_dir, bundle,
                                               ctx->bundle_counter++);
      if (!ev.bundle_dir.empty())
        ctx->stats.bundles_written += 1;
    }

    txn.rollback();
    ctx->stats.rollbacks += 1;
    if (guard != nullptr)
      guard->clear_fault_halt();

    if (!ev.site.empty() && ev.unit != 0) {
      if (ctx->quarantine.add(ev.site, ev.unit)) {
        ctx->stats.quarantined_units += 1;
        ev.quarantined = true;
      }
    }

    if (attempt == max_attempts) {
      ev.skipped = true;
      ctx->stats.stages_skipped += 1;
      ctx->stats.events.push_back(std::move(ev));
      outcome.skipped = true;
      return outcome;
    }
    static obs::Counter& retries = obs::counter("txn.retries");
    retries.add();
    ctx->stats.retries += 1;
    ctx->stats.events.push_back(std::move(ev));
  }
  return outcome; // unreachable
}

} // namespace smartly::opt
