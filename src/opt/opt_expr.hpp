// opt_expr — constant folding and local identity simplification
// (the relevant slice of Yosys's `opt_expr`).
#pragma once

#include "rtlil/module.hpp"

namespace smartly::opt {

struct OptExprStats {
  size_t folded_cells = 0;    ///< cells with all-constant inputs evaluated away
  size_t simplified_cells = 0; ///< identity rewrites (mux with const S, and-with-0, ...)
};

/// Run to fixpoint. Returns statistics; mutates the module in place.
OptExprStats opt_expr(rtlil::Module& module);

} // namespace smartly::opt
