#include "opt/opt_expr.hpp"

#include "rtlil/sigmap.hpp"
#include "sim/eval.hpp"
#include "util/log.hpp"

#include <vector>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Const;
using rtlil::Module;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

namespace {

bool all_const_inputs(const Cell& cell, const rtlil::SigMap& sigmap) {
  for (Port p : cell.input_ports())
    if (!sigmap(cell.port(p)).is_fully_const())
      return false;
  return true;
}

/// Is the signal entirely constant zeros (x/z count as not-zero)?
bool is_all_zero(const SigSpec& s) {
  for (const SigBit& b : s)
    if (b.is_wire() || b.data != State::S0)
      return false;
  return true;
}

bool is_all_one(const SigSpec& s) {
  for (const SigBit& b : s)
    if (b.is_wire() || b.data != State::S1)
      return false;
  return true;
}

} // namespace

OptExprStats opt_expr(Module& module) {
  OptExprStats stats;

  for (bool changed = true; changed;) {
    changed = false;
    const rtlil::SigMap sigmap(module);
    std::vector<Cell*> dead;

    for (const auto& cptr : module.cells()) {
      Cell* cell = cptr.get();
      if (cell->type() == CellType::Dff)
        continue;

      // --- full constant fold ------------------------------------------
      if (all_const_inputs(*cell, sigmap)) {
        auto read = [&](Port p) { return sigmap(cell->port(p)).as_const(); };
        const Const y = sim::eval_cell(*cell, read);
        module.connect(cell->port(cell->output_port()),
                       SigSpec(y).extended(cell->port(cell->output_port()).size(), false));
        dead.push_back(cell);
        ++stats.folded_cells;
        changed = true;
        continue;
      }

      // --- mux simplifications ------------------------------------------
      if (cell->type() == CellType::Mux) {
        const SigSpec s = sigmap(cell->port(Port::S));
        const SigSpec a = sigmap(cell->port(Port::A));
        const SigSpec b = sigmap(cell->port(Port::B));
        if (s.is_fully_const()) {
          const State sv = s.as_const()[0];
          const SigSpec& pick = (sv == State::S1) ? b : a; // x select -> A (x→0 policy)
          module.connect(cell->port(Port::Y), pick);
          dead.push_back(cell);
          ++stats.simplified_cells;
          changed = true;
          continue;
        }
        if (a == b) {
          module.connect(cell->port(Port::Y), a);
          dead.push_back(cell);
          ++stats.simplified_cells;
          changed = true;
          continue;
        }
        // 1-bit mux with constant data: Y = S / ~S.
        if (cell->params().width == 1 && a.is_fully_const() && b.is_fully_const() &&
            a.is_fully_def() && b.is_fully_def()) {
          const bool av = a.as_const().as_bool();
          const bool bv = b.as_const().as_bool();
          if (!av && bv) {
            module.connect(cell->port(Port::Y), s);
          } else {
            Cell* inv = module.add_cell(CellType::Not);
            inv->set_port(Port::A, s);
            inv->set_port(Port::Y, cell->port(Port::Y));
            inv->infer_widths();
          }
          dead.push_back(cell);
          ++stats.simplified_cells;
          changed = true;
          continue;
        }
      }

      // --- pmux simplifications ------------------------------------------
      if (cell->type() == CellType::Pmux) {
        const SigSpec s = sigmap(cell->port(Port::S));
        const SigSpec a = sigmap(cell->port(Port::A));
        const SigSpec b = sigmap(cell->port(Port::B));
        const int width = cell->params().width;

        // Drop branches with constant-0 select; stop at a constant-1 select.
        SigSpec new_s, new_b;
        bool mutated = false;
        bool terminated = false; // a const-1 select becomes the new default
        SigSpec new_a = a;
        for (int i = 0; i < s.size() && !terminated; ++i) {
          const SigBit sb = s[i];
          if (sb.is_const()) {
            if (sb.data == State::S1) {
              new_a = b.extract(i * width, width);
              terminated = true;
              mutated = true;
              continue;
            }
            mutated = true; // drop dead branch (0 or x select)
            continue;
          }
          new_s.append(sb);
          new_b.append(b.extract(i * width, width));
        }
        if (mutated) {
          if (new_s.empty()) {
            module.connect(cell->port(Port::Y), new_a);
            dead.push_back(cell);
          } else if (new_s.size() == 1) {
            Cell* mux = module.add_cell(CellType::Mux);
            mux->set_port(Port::A, new_a);
            mux->set_port(Port::B, new_b);
            mux->set_port(Port::S, new_s);
            mux->set_port(Port::Y, cell->port(Port::Y));
            mux->infer_widths();
            dead.push_back(cell);
          } else {
            cell->set_port(Port::A, new_a);
            cell->set_port(Port::B, new_b);
            cell->set_port(Port::S, new_s);
            cell->infer_widths();
          }
          ++stats.simplified_cells;
          changed = true;
          continue;
        }
      }

      // --- and/or identities ---------------------------------------------
      if (cell->type() == CellType::And || cell->type() == CellType::Or) {
        const SigSpec a = sigmap(cell->port(Port::A));
        const SigSpec b = sigmap(cell->port(Port::B));
        const int yw = cell->params().y_width;
        const SigSpec ax = a.extended(yw, cell->params().a_signed);
        const SigSpec bx = b.extended(yw, cell->params().b_signed);
        SigSpec repl;
        if (cell->type() == CellType::And) {
          if (is_all_zero(ax) || is_all_zero(bx))
            repl = SigSpec(Const(0, yw));
          else if (is_all_one(ax))
            repl = bx;
          else if (is_all_one(bx))
            repl = ax;
          else if (ax == bx)
            repl = ax;
        } else {
          if (is_all_one(ax) || is_all_one(bx))
            repl = rtlil::sig_repeat(SigBit(State::S1), yw);
          else if (is_all_zero(ax))
            repl = bx;
          else if (is_all_zero(bx))
            repl = ax;
          else if (ax == bx)
            repl = ax;
        }
        if (!repl.empty()) {
          module.connect(cell->port(Port::Y), repl);
          dead.push_back(cell);
          ++stats.simplified_cells;
          changed = true;
          continue;
        }
      }

      // --- xor/xnor identities ---------------------------------------------
      if (cell->type() == CellType::Xor || cell->type() == CellType::Xnor) {
        const SigSpec a = sigmap(cell->port(Port::A));
        const SigSpec b = sigmap(cell->port(Port::B));
        const int yw = cell->params().y_width;
        const SigSpec ax = a.extended(yw, cell->params().a_signed);
        const SigSpec bx = b.extended(yw, cell->params().b_signed);
        const bool is_xor = cell->type() == CellType::Xor;
        SigSpec repl;
        bool invert = false;
        if (ax == bx) {
          repl = is_xor ? SigSpec(Const(0, yw)) : rtlil::sig_repeat(SigBit(State::S1), yw);
        } else if (is_all_zero(ax)) {
          repl = bx;
          invert = !is_xor;
        } else if (is_all_zero(bx)) {
          repl = ax;
          invert = !is_xor;
        } else if (is_all_one(ax)) {
          repl = bx;
          invert = is_xor;
        } else if (is_all_one(bx)) {
          repl = ax;
          invert = is_xor;
        }
        if (!repl.empty()) {
          if (invert) {
            Cell* inv = module.add_cell(CellType::Not);
            inv->set_port(Port::A, repl);
            inv->set_port(Port::Y, cell->port(Port::Y));
            inv->infer_widths();
          } else {
            module.connect(cell->port(Port::Y), repl);
          }
          dead.push_back(cell);
          ++stats.simplified_cells;
          changed = true;
          continue;
        }
      }

      // --- add/sub identities ------------------------------------------------
      if (cell->type() == CellType::Add || cell->type() == CellType::Sub) {
        const SigSpec a = sigmap(cell->port(Port::A));
        const SigSpec b = sigmap(cell->port(Port::B));
        const int yw = cell->params().y_width;
        // Width-safe only when no extension is needed for the kept operand.
        SigSpec repl;
        if (cell->type() == CellType::Sub && a == b) {
          repl = SigSpec(Const(0, yw));
        } else if (is_all_zero(b.extended(yw, false)) && a.size() >= yw) {
          repl = a.extract(0, yw);
        } else if (cell->type() == CellType::Add && is_all_zero(a.extended(yw, false)) &&
                   b.size() >= yw) {
          repl = b.extract(0, yw);
        }
        if (!repl.empty()) {
          module.connect(cell->port(Port::Y), repl);
          dead.push_back(cell);
          ++stats.simplified_cells;
          changed = true;
          continue;
        }
      }

      // --- trivial comparisons ---------------------------------------------
      if (cell->type() == CellType::Eq || cell->type() == CellType::Ne) {
        const SigSpec a = sigmap(cell->port(Port::A));
        const SigSpec b = sigmap(cell->port(Port::B));
        if (a == b && a.size() == b.size() && !a.is_fully_const()) {
          bool has_const_x = false;
          for (const SigBit& bit : a)
            if (bit.is_const() && !rtlil::state_is_def(bit.data))
              has_const_x = true;
          if (!has_const_x) {
            const int yw = cell->params().y_width;
            module.connect(cell->port(Port::Y),
                           SigSpec(Const(cell->type() == CellType::Eq ? 1 : 0, yw)));
            dead.push_back(cell);
            ++stats.simplified_cells;
            changed = true;
            continue;
          }
        }
      }
    }

    module.remove_cells(dead);
  }
  return stats;
}

} // namespace smartly::opt
