// opt_reduce — consolidate reduction gates and $pmux branches (the relevant
// slice of Yosys's `opt_reduce`).
//
// Two rewrites:
//  * reduce-gate flattening: a $reduce_or/$reduce_and/$reduce_bool cell whose
//    input includes the output of another same-kind reduction with no other
//    readers absorbs that cell's inputs (or-of-or = or over the union);
//  * $pmux branch merging: branches with identical data are merged by OR-ing
//    their select bits — under lowest-bit-wins priority this is behaviour
//    preserving because every merged branch produced the same value anyway.
//
// The industrial suite is pmux-rich ("the proportion of MUX gates and PMUX
// gates is higher", §IV.B), which is where branch merging pays off.
#pragma once

#include "rtlil/module.hpp"

namespace smartly::opt {

struct OptReduceStats {
  size_t reductions_absorbed = 0; ///< nested reduce cells inlined
  size_t pmux_branches_merged = 0;
};

/// Run to fixpoint. Mutates the module; pair with opt_clean to sweep the
/// absorbed cells.
OptReduceStats opt_reduce(rtlil::Module& module);

} // namespace smartly::opt
