#include "opt/opt_clean.hpp"

#include "rtlil/sigmap.hpp"
#include "util/log.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::Module;
using rtlil::Port;
using rtlil::SigBit;

size_t opt_clean(Module& module) {
  const rtlil::SigMap sigmap(module);

  // Driver index over canonical bits.
  std::unordered_map<SigBit, Cell*> driver;
  for (const auto& cptr : module.cells())
    for (const SigBit& raw : cptr->port(cptr->output_port())) {
      const SigBit bit = sigmap(raw);
      if (bit.is_wire())
        driver.emplace(bit, cptr.get());
    }

  // Seed: output-port bits.
  std::vector<SigBit> work;
  std::unordered_set<SigBit> needed;
  for (const auto& w : module.wires()) {
    if (!w->port_output)
      continue;
    for (int i = 0; i < w->width(); ++i) {
      const SigBit bit = sigmap(SigBit(w.get(), i));
      if (bit.is_wire() && needed.insert(bit).second)
        work.push_back(bit);
    }
  }

  std::unordered_set<Cell*> live;
  while (!work.empty()) {
    const SigBit bit = work.back();
    work.pop_back();
    auto it = driver.find(bit);
    if (it == driver.end())
      continue;
    Cell* cell = it->second;
    if (!live.insert(cell).second)
      continue;
    for (Port p : cell->input_ports())
      for (const SigBit& raw : cell->port(p)) {
        const SigBit in = sigmap(raw);
        if (in.is_wire() && needed.insert(in).second)
          work.push_back(in);
      }
  }

  std::vector<Cell*> dead;
  for (const auto& cptr : module.cells())
    if (!live.count(cptr.get()))
      dead.push_back(cptr.get());
  module.remove_cells(dead);
  if (!dead.empty())
    log_debug("opt_clean: removed %zu dead cells", dead.size());
  return dead.size();
}

} // namespace smartly::opt
