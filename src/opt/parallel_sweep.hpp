// Parallel deterministic sweep engine (ISSUE 3 tentpole).
//
// Muxtrees with disjoint read closures are independent optimization
// problems. The engine partitions the module into regions once
// (region_partition.hpp), then iterates to fixpoint:
//   1. dirty regions are dispatched to a work-stealing pool; each region
//      owns a persistent oracle (state travels with the region, not the
//      worker, so decisions depend only on region content — never on the
//      thread count or which worker got which region — while cross-iteration
//      caches keep paying off) and records its edits into a private
//      SweepJournal;
//   2. at the barrier, journals are applied in canonical region order and
//      the shared NetlistIndex is updated incrementally from them;
//   3. regions whose trees lie within the oracle ball radius of a changed
//      net are re-queued; their read closures are recomputed on the updated
//      index (an applied connect can extend a closure by one hop), and
//      regions whose closures now overlap are merged (fresh oracle).
// The resulting netlist, statistics, and decision traces are bit-identical
// for every thread count.
#pragma once

#include "opt/muxtree_walker.hpp"
#include "opt/region_partition.hpp"
#include "util/budget.hpp"
#include "util/recovery.hpp"

#include <functional>
#include <memory>

namespace smartly::opt {

struct ParallelSweepOptions {
  /// Worker threads. 0 = one per hardware thread.
  int threads = 0;
  /// Read-closure radius for region merging and dirty propagation; must be
  /// >= the oracle's sub-graph extraction distance k (SubgraphOptions::depth).
  int ball_radius = 4;
  size_t max_iterations = kMaxSweepIterations; ///< keep equal to the serial cap
  /// Re-queue only regions near a change for the next iteration. Walking a
  /// clean region is a pure no-op replay, so disabling this cannot change
  /// the result — it only mirrors the serial engine's walk-everything
  /// fixpoint (used by the differential benches).
  bool requeue_dirty_only = true;
  /// Factory for per-region oracles, called lazily at first dispatch (and
  /// again when regions merge).
  std::function<std::unique_ptr<MuxtreeOracle>()> make_oracle;
  /// Optional run-wide resource governor (not owned). Deterministic budgets
  /// are evaluated at iteration barriers against what the region oracles
  /// charged; on halt the remaining dirty regions are skipped and the
  /// already-applied journals stand (each edit is individually proven).
  util::ResourceGuard* guard = nullptr;
  /// Units the recovery layer has quarantined (not owned; frozen during the
  /// run). Regions whose stable id (the minimum bit_unit_id over their roots'
  /// first output bits) is quarantined under "sweep.region" are never
  /// dispatched; iterations quarantined under "sweep.iteration" are skipped.
  /// Both filters run single-threaded at the iteration barrier, so the skip
  /// set is identical for every thread count.
  const util::QuarantineSet* quarantine = nullptr;
};

struct ParallelSweepStats {
  MuxtreeStats walker;
  size_t regions = 0;                ///< regions in the initial partition
  size_t largest_region_trees = 0;   ///< available parallelism indicator
  size_t region_walks = 0;           ///< region dispatches over all iterations
  size_t regions_skipped_clean = 0;  ///< dirty-only re-queue savings
  size_t region_merges = 0;          ///< barrier-time closure-overlap merges
  size_t regions_skipped_halt = 0;   ///< dirty regions abandoned by a halt
  size_t quarantined = 0;            ///< region dispatches/iterations skipped by quarantine
  size_t halted = 0;                ///< 1 when a budget/cancel/fault stopped the run early
  int threads_used = 0;              ///< schedule detail; excluded from determinism checks
};

class ParallelSweepEngine {
public:
  ParallelSweepEngine(rtlil::Module& module, const ParallelSweepOptions& options);
  ~ParallelSweepEngine();

  /// Run the sweep to fixpoint. Optionally records every oracle decision
  /// (tagged iteration + root) for differential testing.
  ParallelSweepStats run(DecisionTrace* trace = nullptr);

  /// Every oracle the run created (active regions plus oracles retired by
  /// region merges). Valid until destruction; callers aggregate
  /// oracle-specific statistics from these after run().
  const std::vector<std::unique_ptr<MuxtreeOracle>>& oracles() const noexcept {
    return oracles_;
  }

private:
  rtlil::Module& module_;
  ParallelSweepOptions options_;
  std::vector<std::unique_ptr<MuxtreeOracle>> oracles_;
};

/// Convenience wrapper: construct, run, discard oracles.
ParallelSweepStats parallel_sweep(rtlil::Module& module, const ParallelSweepOptions& options,
                                  DecisionTrace* trace = nullptr);

} // namespace smartly::opt
