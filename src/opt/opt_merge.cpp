#include "opt/opt_merge.hpp"

#include "rtlil/sigmap.hpp"
#include "sweep/equiv_classes.hpp"
#include "util/hashing.hpp"
#include "util/log.hpp"

#include <unordered_map>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::Module;

size_t opt_merge(Module& module) {
  size_t merged_total = 0;
  for (bool changed = true; changed;) {
    changed = false;
    const rtlil::SigMap sigmap(module);
    // Keyed on the sweep subsystem's structural fingerprint (type, params,
    // canonical inputs, commutative normalization) — the same "trivially
    // identical" notion the fraig engine's pre-merge uses, so everything this
    // pass leaves behind is genuine work for simulation + SAT. Hits are
    // verified exactly: unlike the fraig engine's merges this pass has no
    // SAT proof or CEC backstop, so a fingerprint collision must not alias
    // two different cells.
    std::unordered_map<Hash128, Cell*, Hash128Hasher> seen;
    std::vector<Cell*> dead;

    for (const auto& cptr : module.cells()) {
      Cell* cell = cptr.get();
      const Hash128 key = sweep::cell_structural_key(*cell, sigmap);
      auto [it, inserted] = seen.emplace(key, cell);
      if (inserted)
        continue;
      if (!sweep::cell_structurally_identical(*cell, *it->second, sigmap))
        continue; // fingerprint collision: leave both cells alone
      // Same computation: alias this cell's output to the first one's.
      module.connect(cell->port(cell->output_port()),
                     it->second->port(it->second->output_port()));
      dead.push_back(cell);
      ++merged_total;
      changed = true;
    }
    module.remove_cells(dead);
  }
  if (merged_total)
    log_debug("opt_merge: merged %zu cells", merged_total);
  return merged_total;
}

} // namespace smartly::opt
