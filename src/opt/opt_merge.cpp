#include "opt/opt_merge.hpp"

#include "rtlil/sigmap.hpp"
#include "util/hashing.hpp"
#include "util/log.hpp"

#include <unordered_map>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Module;
using rtlil::Port;
using rtlil::SigSpec;

namespace {

bool is_commutative(CellType t) {
  switch (t) {
  case CellType::And:
  case CellType::Or:
  case CellType::Xor:
  case CellType::Xnor:
  case CellType::Add:
  case CellType::Mul:
  case CellType::Eq:
  case CellType::Ne:
  case CellType::LogicAnd:
  case CellType::LogicOr:
    return true;
  default:
    return false;
  }
}

struct CellKey {
  CellType type;
  std::vector<std::pair<int, SigSpec>> inputs; // (port, canonical signal)
  int y_width;
  bool a_signed, b_signed;

  bool operator==(const CellKey& o) const {
    return type == o.type && y_width == o.y_width && a_signed == o.a_signed &&
           b_signed == o.b_signed && inputs == o.inputs;
  }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = hash_mix(static_cast<uint64_t>(k.type));
    h = hash_combine(h, static_cast<uint64_t>(k.y_width));
    h = hash_combine(h, (k.a_signed ? 2u : 0u) | (k.b_signed ? 1u : 0u));
    for (const auto& [p, sig] : k.inputs)
      h = hash_combine(h, hash_combine(static_cast<uint64_t>(p), sig.hash()));
    return h;
  }
};

} // namespace

size_t opt_merge(Module& module) {
  size_t merged_total = 0;
  for (bool changed = true; changed;) {
    changed = false;
    const rtlil::SigMap sigmap(module);
    std::unordered_map<CellKey, Cell*, CellKeyHash> seen;
    std::vector<Cell*> dead;

    for (const auto& cptr : module.cells()) {
      Cell* cell = cptr.get();

      CellKey key;
      key.type = cell->type();
      key.y_width = cell->port(cell->output_port()).size();
      key.a_signed = cell->params().a_signed;
      key.b_signed = cell->params().b_signed;
      for (Port p : cell->input_ports())
        key.inputs.emplace_back(static_cast<int>(p), sigmap(cell->port(p)));

      if (is_commutative(cell->type()) && key.inputs.size() >= 2) {
        // Normalize operand order by hash (A and B are the first two ports).
        auto& a = key.inputs[0].second;
        auto& b = key.inputs[1].second;
        if (b.hash() < a.hash())
          std::swap(key.inputs[0].second, key.inputs[1].second);
      }

      auto [it, inserted] = seen.emplace(std::move(key), cell);
      if (inserted)
        continue;
      // Same computation: alias this cell's output to the first one's.
      module.connect(cell->port(cell->output_port()),
                     it->second->port(it->second->output_port()));
      dead.push_back(cell);
      ++merged_total;
      changed = true;
    }
    module.remove_cells(dead);
  }
  if (merged_total)
    log_debug("opt_merge: merged %zu cells", merged_total);
  return merged_total;
}

} // namespace smartly::opt
