#include "opt/muxtree_walker.hpp"

#include "rtlil/topo.hpp"
#include "util/log.hpp"

#include <unordered_set>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Module;
using rtlil::NetlistIndex;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

namespace {

class Walker {
public:
  Walker(Module& module, MuxtreeOracle& oracle, MuxtreeStats& stats)
      : module_(module), oracle_(oracle), stats_(stats), index_(module) {}

  /// One full sweep over all muxtree roots. Returns true if anything changed.
  bool sweep() {
    changed_ = false;

    // `internal[c] = p` when every output bit of mux/pmux `c` is read only by
    // mux/pmux `p`, through its A or B port. Such cells are tree-internal and
    // safe to rewrite under the path condition of the unique path to them.
    std::unordered_map<Cell*, Cell*> parent;
    for (const auto& cptr : module_.cells()) {
      Cell* c = cptr.get();
      if (c->type() != CellType::Mux && c->type() != CellType::Pmux)
        continue;
      Cell* p = unique_mux_parent(c);
      if (p)
        parent.emplace(c, p);
    }

    // Snapshot roots first: visit() may add cells (pmux narrowing) and must
    // not invalidate this iteration.
    std::vector<Cell*> roots;
    for (const auto& cptr : module_.cells()) {
      Cell* c = cptr.get();
      if (c->type() != CellType::Mux && c->type() != CellType::Pmux)
        continue;
      if (parent.count(c))
        continue; // internal: reached from its root
      roots.push_back(c);
    }
    for (Cell* c : roots) {
      if (removed_.count(c))
        continue;
      KnownMap known;
      visit(c, known);
    }

    // Apply structural edits only now: mid-sweep the module must stay
    // internally consistent (the oracle bit-blasts sub-graphs of it, and a
    // collapsed-but-not-removed mux whose Y is already aliased to one of its
    // inputs would look like a combinational cycle).
    for (auto& [lhs, rhs] : pending_connects_)
      module_.connect(lhs, rhs);
    pending_connects_.clear();
    module_.remove_cells(std::vector<Cell*>(removed_.begin(), removed_.end()));
    removed_.clear();
    return changed_;
  }

private:
  /// The unique mux/pmux cell reading all of c's output bits via A/B, or
  /// nullptr. Output-port bits and non-mux readers disqualify.
  Cell* unique_mux_parent(Cell* c) {
    Cell* parent = nullptr;
    for (const SigBit& raw : c->port(c->output_port())) {
      const SigBit bit = index_.sigmap()(raw);
      if (!bit.is_wire())
        return nullptr;
      if (index_.drives_output_port(bit))
        return nullptr;
      const auto& readers = index_.readers(bit);
      if (readers.size() != 1)
        return nullptr;
      Cell* r = readers[0];
      if (r->type() != CellType::Mux && r->type() != CellType::Pmux)
        return nullptr;
      // Must be read through a data port (A or B), not S.
      for (const SigBit& sraw : r->port(Port::S))
        if (index_.sigmap()(sraw) == bit)
          return nullptr;
      if (parent && parent != r)
        return nullptr;
      parent = r;
    }
    return parent;
  }

  CtrlDecision decide(SigBit ctrl_raw, const KnownMap& known) {
    const SigBit ctrl = index_.sigmap()(ctrl_raw);
    if (ctrl.is_const())
      return ctrl.data == State::S1 ? CtrlDecision::One : CtrlDecision::Zero;
    ++stats_.oracle_queries;
    return oracle_.decide(ctrl, known);
  }

  /// Replace known data-port bits with their constants (paper Fig. 2).
  void substitute_data_bits(Cell* c, const KnownMap& known) {
    if (known.empty())
      return;
    for (Port p : {Port::A, Port::B}) {
      SigSpec sig = c->port(p);
      bool mutated = false;
      for (int i = 0; i < sig.size(); ++i) {
        const SigBit bit = index_.sigmap()(sig[i]);
        if (!bit.is_wire())
          continue;
        auto it = known.find(bit);
        if (it == known.end())
          continue;
        sig[i] = SigBit(it->second ? State::S1 : State::S0);
        mutated = true;
        ++stats_.data_bits_replaced;
      }
      if (mutated) {
        c->set_port(p, sig);
        oracle_.notify_cell_mutated(c);
        changed_ = true;
      }
    }
  }

  /// Mux/pmux cells driving bits of `data` that are exclusively read by
  /// `reader` (single fanout, no output-port escape). Only such cells may be
  /// rewritten under the path condition of the edge reader->child.
  std::unordered_set<Cell*> branch_children(Cell* reader, const SigSpec& data) {
    std::unordered_set<Cell*> children;
    for (const SigBit& raw : data) {
      const SigBit bit = index_.sigmap()(raw);
      if (!bit.is_wire())
        continue;
      Cell* d = index_.driver(bit);
      if (!d || (d->type() != CellType::Mux && d->type() != CellType::Pmux))
        continue;
      if (removed_.count(d))
        continue;
      bool exclusive = true;
      for (const SigBit& oraw : d->port(d->output_port())) {
        const SigBit obit = index_.sigmap()(oraw);
        if (!obit.is_wire() || index_.drives_output_port(obit)) {
          exclusive = false;
          break;
        }
        const auto& readers = index_.readers(obit);
        if (readers.size() != 1 || readers[0] != reader) {
          exclusive = false;
          break;
        }
      }
      if (exclusive)
        children.insert(d);
    }
    return children;
  }

  /// Visit the children of several branches. A child reachable from more
  /// than one branch is visited under the intersection of the branch
  /// conditions — i.e. the parent's own `known` — since each branch's extra
  /// constraint only holds on its own path.
  void descend_branches(Cell* reader, const KnownMap& parent_known,
                        const std::vector<std::pair<SigSpec, KnownMap>>& branches) {
    std::unordered_map<Cell*, int> hits; // child -> first branch index or -2 (multi)
    for (size_t i = 0; i < branches.size(); ++i) {
      for (Cell* child : branch_children(reader, branches[i].first)) {
        auto [it, inserted] = hits.emplace(child, static_cast<int>(i));
        if (!inserted && it->second != static_cast<int>(i))
          it->second = -2;
      }
    }
    for (const auto& [child, idx] : hits)
      visit(child, idx == -2 ? parent_known : branches[static_cast<size_t>(idx)].second);
  }

  void visit(Cell* c, const KnownMap& known) {
    if (removed_.count(c))
      return;
    substitute_data_bits(c, known);

    if (c->type() == CellType::Mux) {
      const CtrlDecision d = decide(c->port(Port::S)[0], known);
      if (d == CtrlDecision::One || d == CtrlDecision::Zero ||
          d == CtrlDecision::DeadPath) {
        // DeadPath: the cell's output is never observed on this (sole) path;
        // either input is acceptable — pick A.
        const Port pick = (d == CtrlDecision::One) ? Port::B : Port::A;
        const SigSpec kept = c->port(pick);
        pending_connects_.emplace_back(c->port(Port::Y), kept);
        removed_.insert(c);
        oracle_.notify_cell_removed(c);
        ++stats_.mux_collapsed;
        changed_ = true;
        descend_branches(c, known, {{kept, known}}); // no new constraint
        return;
      }
      const SigBit s = index_.sigmap()(c->port(Port::S)[0]);
      KnownMap k0 = known;
      if (s.is_wire())
        k0[s] = false;
      KnownMap k1 = known;
      if (s.is_wire())
        k1[s] = true;
      descend_branches(c, known,
                       {{c->port(Port::A), k0}, {c->port(Port::B), k1}});
      return;
    }

    // Pmux. Priority semantics: branch i active iff S[i]=1 and S[j]=0 ∀ j<i.
    const SigSpec s = c->port(Port::S);
    const SigSpec b = c->port(Port::B);
    const int width = c->params().width;

    SigSpec new_s, new_b;
    SigSpec new_a = c->port(Port::A);
    std::vector<SigBit> kept_sel; // canonical select bits kept so far
    bool truncated = false;
    bool mutated = false;
    for (int i = 0; i < s.size() && !truncated; ++i) {
      const CtrlDecision d = decide(s[i], known);
      if (d == CtrlDecision::Zero || d == CtrlDecision::DeadPath) {
        mutated = true; // never-active branch: drop it
        ++stats_.pmux_branches_removed;
        continue;
      }
      if (d == CtrlDecision::One) {
        // Selected unless an earlier kept branch fires; later branches and
        // the default are dead.
        new_a = b.extract(i * width, width);
        truncated = true;
        mutated = true;
        ++stats_.pmux_branches_removed;
        continue;
      }
      new_s.append(s[i]);
      new_b.append(b.extract(i * width, width));
      kept_sel.push_back(index_.sigmap()(s[i]));
    }

    if (mutated)
      changed_ = true;

    // Recurse into surviving branches with their path conditions.
    std::vector<std::pair<SigSpec, KnownMap>> branches;
    for (int i = 0; i < new_s.size(); ++i) {
      KnownMap k = known;
      for (int j = 0; j < i; ++j)
        if (kept_sel[static_cast<size_t>(j)].is_wire())
          k[kept_sel[static_cast<size_t>(j)]] = false;
      const SigBit si = index_.sigmap()(new_s[i]);
      if (si.is_wire())
        k[si] = true;
      branches.emplace_back(new_b.extract(i * width, width), std::move(k));
    }
    {
      KnownMap k = known;
      for (const SigBit& sb : kept_sel)
        if (sb.is_wire())
          k[sb] = false;
      branches.emplace_back(new_a, std::move(k));
    }
    descend_branches(c, known, branches);

    if (!mutated)
      return;
    // Rewrite the cell with the surviving branches. A one-branch pmux stays
    // a pmux here (opt_expr converts it to $mux later): adding replacement
    // cells mid-sweep would leave the Y bits double-driven until removal.
    if (new_s.empty()) {
      pending_connects_.emplace_back(c->port(Port::Y), new_a);
      removed_.insert(c);
      oracle_.notify_cell_removed(c);
    } else {
      c->set_port(Port::A, new_a);
      c->set_port(Port::B, new_b);
      c->set_port(Port::S, new_s);
      c->infer_widths();
      oracle_.notify_cell_mutated(c);
    }
  }

  Module& module_;
  MuxtreeOracle& oracle_;
  MuxtreeStats& stats_;
  NetlistIndex index_;
  std::unordered_set<Cell*> removed_;
  std::vector<std::pair<SigSpec, SigSpec>> pending_connects_;
  bool changed_ = false;
};

} // namespace

MuxtreeStats optimize_muxtrees(Module& module, MuxtreeOracle& oracle) {
  MuxtreeStats stats;
  constexpr size_t kMaxIterations = 16;
  for (size_t i = 0; i < kMaxIterations; ++i) {
    ++stats.iterations;
    oracle.begin_module(module);
    Walker walker(module, oracle, stats);
    if (!walker.sweep())
      break;
  }
  return stats;
}

} // namespace smartly::opt
