#include "opt/muxtree_walker.hpp"

#include "util/log.hpp"

#include <algorithm>
#include <unordered_set>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Module;
using rtlil::NetlistIndex;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

uint64_t trace_hash(const SigBit& ctrl, CtrlDecision d) {
  const uint64_t h = ctrl.is_wire()
                         ? hash_combine(std::hash<std::string>{}(ctrl.wire->name()),
                                        static_cast<uint64_t>(ctrl.offset))
                         : hash_mix(static_cast<uint64_t>(ctrl.data));
  return hash_combine(h, static_cast<uint64_t>(d));
}

std::vector<uint64_t> canonical_trace(const DecisionTrace& trace) {
  // Group per root, preserving order (per root, iterations ascend because
  // both engines append iteration-by-iteration).
  std::unordered_map<uint32_t, std::vector<const DecisionTrace::Entry*>> by_root;
  std::vector<uint32_t> roots;
  for (const auto& e : trace.entries) {
    auto [it, inserted] = by_root.try_emplace(e.root);
    if (inserted)
      roots.push_back(e.root);
    it->second.push_back(&e);
  }
  std::sort(roots.begin(), roots.end());

  std::vector<uint64_t> out;
  std::vector<uint64_t> block, prev;
  for (uint32_t root : roots) {
    const auto& entries = by_root[root];
    prev.clear();
    size_t i = 0;
    while (i < entries.size()) {
      const uint32_t iter = entries[i]->iteration;
      block.clear();
      for (; i < entries.size() && entries[i]->iteration == iter; ++i)
        block.push_back(entries[i]->hash);
      if (block == prev)
        continue; // replay of an unchanged tree: schedule noise, drop it
      uint64_t h = hash_mix(0xb10c0000u + root);
      for (uint64_t v : block)
        h = hash_combine(h, v);
      out.push_back(h);
      std::swap(prev, block);
    }
  }
  return out;
}

/// Output-port bits and non-mux readers disqualify.
Cell* unique_mux_parent(const NetlistIndex& index, Cell* c) {
  Cell* parent = nullptr;
  for (const SigBit& raw : c->port(c->output_port())) {
    const SigBit bit = index.sigmap()(raw);
    if (!bit.is_wire())
      return nullptr;
    if (index.drives_output_port(bit))
      return nullptr;
    const auto& readers = index.readers(bit);
    if (readers.size() != 1)
      return nullptr;
    Cell* r = readers[0];
    if (r->type() != CellType::Mux && r->type() != CellType::Pmux)
      return nullptr;
    // Must be read through a data port (A or B), not S.
    for (const SigBit& sraw : r->port(Port::S))
      if (index.sigmap()(sraw) == bit)
        return nullptr;
    if (parent && parent != r)
      return nullptr;
    parent = r;
  }
  return parent;
}

MuxtreeForest muxtree_forest(const Module& module, const NetlistIndex& index) {
  MuxtreeForest forest;
  // `parent[c] = p` when every output bit of mux/pmux `c` is read only by
  // mux/pmux `p`, through its A or B port. Such cells are tree-internal and
  // safe to rewrite under the path condition of the unique path to them.
  for (const auto& cptr : module.cells()) {
    Cell* c = cptr.get();
    if (c->type() != CellType::Mux && c->type() != CellType::Pmux)
      continue;
    Cell* p = unique_mux_parent(index, c);
    if (p)
      forest.parent.emplace(c, p);
  }
  for (const auto& cptr : module.cells()) {
    Cell* c = cptr.get();
    if (c->type() != CellType::Mux && c->type() != CellType::Pmux)
      continue;
    if (forest.parent.count(c))
      continue; // internal: reached from its root
    forest.roots.push_back(c);
  }
  return forest;
}

class MuxtreeWalker::Impl {
public:
  Impl(const NetlistIndex& index, MuxtreeOracle& oracle, MuxtreeStats& stats,
       SweepJournal& journal, DecisionTrace* trace, uint32_t iteration)
      : index_(index), oracle_(oracle), stats_(stats), journal_(journal),
        trace_(trace), iteration_(iteration) {}

  void walk_root(Cell* root, uint32_t root_order) {
    if (removed_.count(root))
      return;
    root_order_ = root_order;
    KnownMap* known = acquire_known();
    visit(root, *known);
    release_known(known);
  }

  bool changed_ = false;

private:
  // --- known-map pool ------------------------------------------------------
  // One KnownMap per live path-stack level, recycled across nodes and roots
  // so the per-node cost is entry insertion, not hash-table construction.
  // owned_ holds every map ever created (leak-free even if decide() throws
  // mid-recursion); free_ is the recycling stack of checked-in maps.
  KnownMap* acquire_known() {
    if (free_.empty()) {
      owned_.push_back(std::make_unique<KnownMap>());
      return owned_.back().get();
    }
    KnownMap* m = free_.back();
    free_.pop_back();
    m->clear();
    return m;
  }
  void release_known(KnownMap* m) { free_.push_back(m); }

  CtrlDecision decide(SigBit ctrl_raw, const KnownMap& known) {
    const SigBit ctrl = index_.sigmap()(ctrl_raw);
    if (ctrl.is_const())
      return ctrl.data == State::S1 ? CtrlDecision::One : CtrlDecision::Zero;
    ++stats_.oracle_queries;
    const CtrlDecision d = oracle_.decide(ctrl, known);
    if (trace_)
      trace_->entries.push_back({iteration_, root_order_, trace_hash(ctrl, d)});
    return d;
  }

  void journal_mutated(Cell* c) {
    if (mutated_.insert(c).second)
      journal_.mutated.push_back(c);
    oracle_.notify_cell_mutated(c);
    changed_ = true;
  }

  /// Replace known data-port bits with their constants (paper Fig. 2).
  void substitute_data_bits(Cell* c, const KnownMap& known) {
    if (known.empty())
      return;
    for (Port p : {Port::A, Port::B}) {
      SigSpec sig = c->port(p);
      bool mutated = false;
      for (int i = 0; i < sig.size(); ++i) {
        const SigBit bit = index_.sigmap()(sig[i]);
        if (!bit.is_wire())
          continue;
        auto it = known.find(bit);
        if (it == known.end())
          continue;
        sig[i] = SigBit(it->second ? State::S1 : State::S0);
        mutated = true;
        ++stats_.data_bits_replaced;
      }
      if (mutated) {
        c->set_port(p, sig);
        journal_mutated(c);
      }
    }
  }

  /// Mux/pmux cells driving bits of `data` that are exclusively read by
  /// `reader` (single fanout, no output-port escape). Only such cells may be
  /// rewritten under the path condition of the edge reader->child.
  std::unordered_set<Cell*> branch_children(Cell* reader, const SigSpec& data) {
    std::unordered_set<Cell*> children;
    for (const SigBit& raw : data) {
      const SigBit bit = index_.sigmap()(raw);
      if (!bit.is_wire())
        continue;
      Cell* d = index_.driver(bit);
      if (!d || (d->type() != CellType::Mux && d->type() != CellType::Pmux))
        continue;
      if (removed_.count(d))
        continue;
      bool exclusive = true;
      for (const SigBit& oraw : d->port(d->output_port())) {
        const SigBit obit = index_.sigmap()(oraw);
        if (!obit.is_wire() || index_.drives_output_port(obit)) {
          exclusive = false;
          break;
        }
        const auto& readers = index_.readers(obit);
        if (readers.size() != 1 || readers[0] != reader) {
          exclusive = false;
          break;
        }
      }
      if (exclusive)
        children.insert(d);
    }
    return children;
  }

  /// Visit the children of several branches. A child reachable from more
  /// than one branch is visited under the intersection of the branch
  /// conditions — i.e. the parent's own `known` — since each branch's extra
  /// constraint only holds on its own path.
  void descend_branches(Cell* reader, const KnownMap& parent_known,
                        const std::vector<std::pair<SigSpec, const KnownMap*>>& branches) {
    std::unordered_map<Cell*, int> hits; // child -> first branch index or -2 (multi)
    for (size_t i = 0; i < branches.size(); ++i) {
      for (Cell* child : branch_children(reader, branches[i].first)) {
        auto [it, inserted] = hits.emplace(child, static_cast<int>(i));
        if (!inserted && it->second != static_cast<int>(i))
          it->second = -2;
      }
    }
    for (const auto& [child, idx] : hits)
      visit(child, idx == -2 ? parent_known : *branches[static_cast<size_t>(idx)].second);
  }

  void visit(Cell* c, const KnownMap& known) {
    if (removed_.count(c))
      return;
    substitute_data_bits(c, known);

    if (c->type() == CellType::Mux) {
      const CtrlDecision d = decide(c->port(Port::S)[0], known);
      if (d == CtrlDecision::One || d == CtrlDecision::Zero ||
          d == CtrlDecision::DeadPath) {
        // DeadPath: the cell's output is never observed on this (sole) path;
        // either input is acceptable — pick A.
        const Port pick = (d == CtrlDecision::One) ? Port::B : Port::A;
        const SigSpec kept = c->port(pick);
        journal_.connects.emplace_back(c->port(Port::Y), kept);
        removed_.insert(c);
        journal_.removed.push_back(c);
        oracle_.notify_cell_removed(c);
        ++stats_.mux_collapsed;
        changed_ = true;
        descend_branches(c, known, {{kept, &known}}); // no new constraint
        return;
      }
      const SigBit s = index_.sigmap()(c->port(Port::S)[0]);
      KnownMap* k0 = acquire_known();
      KnownMap* k1 = acquire_known();
      *k0 = known;
      *k1 = known;
      if (s.is_wire()) {
        (*k0)[s] = false;
        (*k1)[s] = true;
      }
      descend_branches(c, known, {{c->port(Port::A), k0}, {c->port(Port::B), k1}});
      release_known(k1);
      release_known(k0);
      return;
    }

    // Pmux. Priority semantics: branch i active iff S[i]=1 and S[j]=0 ∀ j<i.
    const SigSpec s = c->port(Port::S);
    const SigSpec b = c->port(Port::B);
    const int width = c->params().width;

    SigSpec new_s, new_b;
    SigSpec new_a = c->port(Port::A);
    std::vector<SigBit> kept_sel; // canonical select bits kept so far
    bool truncated = false;
    bool mutated = false;
    for (int i = 0; i < s.size() && !truncated; ++i) {
      const CtrlDecision d = decide(s[i], known);
      if (d == CtrlDecision::Zero || d == CtrlDecision::DeadPath) {
        mutated = true; // never-active branch: drop it
        ++stats_.pmux_branches_removed;
        continue;
      }
      if (d == CtrlDecision::One) {
        // Selected unless an earlier kept branch fires; later branches and
        // the default are dead.
        new_a = b.extract(i * width, width);
        truncated = true;
        mutated = true;
        ++stats_.pmux_branches_removed;
        continue;
      }
      new_s.append(s[i]);
      new_b.append(b.extract(i * width, width));
      kept_sel.push_back(index_.sigmap()(s[i]));
    }

    if (mutated)
      changed_ = true;

    // Recurse into surviving branches with their path conditions.
    std::vector<KnownMap*> branch_known;
    std::vector<std::pair<SigSpec, const KnownMap*>> branches;
    for (int i = 0; i < new_s.size(); ++i) {
      KnownMap* k = acquire_known();
      *k = known;
      for (int j = 0; j < i; ++j)
        if (kept_sel[static_cast<size_t>(j)].is_wire())
          (*k)[kept_sel[static_cast<size_t>(j)]] = false;
      const SigBit si = index_.sigmap()(new_s[i]);
      if (si.is_wire())
        (*k)[si] = true;
      branch_known.push_back(k);
      branches.emplace_back(new_b.extract(i * width, width), k);
    }
    {
      KnownMap* k = acquire_known();
      *k = known;
      for (const SigBit& sb : kept_sel)
        if (sb.is_wire())
          (*k)[sb] = false;
      branch_known.push_back(k);
      branches.emplace_back(new_a, k);
    }
    descend_branches(c, known, branches);
    for (auto it = branch_known.rbegin(); it != branch_known.rend(); ++it)
      release_known(*it);

    if (!mutated)
      return;
    // Rewrite the cell with the surviving branches. A one-branch pmux stays
    // a pmux here (opt_expr converts it to $mux later): adding replacement
    // cells mid-sweep would leave the Y bits double-driven until removal.
    if (new_s.empty()) {
      journal_.connects.emplace_back(c->port(Port::Y), new_a);
      removed_.insert(c);
      journal_.removed.push_back(c);
      oracle_.notify_cell_removed(c);
    } else {
      c->set_port(Port::A, new_a);
      c->set_port(Port::B, new_b);
      c->set_port(Port::S, new_s);
      c->infer_widths();
      journal_mutated(c);
    }
  }

private:
  const NetlistIndex& index_;
  MuxtreeOracle& oracle_;
  MuxtreeStats& stats_;
  SweepJournal& journal_;
  DecisionTrace* trace_;
  uint32_t iteration_;
  uint32_t root_order_ = 0;
  std::unordered_set<Cell*> removed_;
  std::unordered_set<Cell*> mutated_;
  std::vector<std::unique_ptr<KnownMap>> owned_;
  std::vector<KnownMap*> free_;
};

MuxtreeWalker::MuxtreeWalker(const NetlistIndex& index, MuxtreeOracle& oracle,
                             MuxtreeStats& stats, SweepJournal& journal,
                             DecisionTrace* trace, uint32_t iteration)
    : impl_(std::make_unique<Impl>(index, oracle, stats, journal, trace, iteration)) {}

MuxtreeWalker::~MuxtreeWalker() = default;

void MuxtreeWalker::walk_root(Cell* root, uint32_t root_order) {
  impl_->walk_root(root, root_order);
}

bool MuxtreeWalker::changed() const noexcept { return impl_->changed_; }

void apply_sweep_journal(Module& module, NetlistIndex& index, const SweepJournal& journal,
                         bool finalize) {
  // Removals first: their driver entries must be gone before aliasing merges
  // their output class onto the kept input (a rebuild of the edited module
  // sees exactly one driver per merged net).
  for (Cell* c : journal.removed)
    index.remove_cell(c);
  // Added cells (fraig inverters) next: they read nets whose drivers the
  // removals did not touch and take freed topo positions, so indexing them
  // before the aliases keeps their reader entries keyed like a rebuild's
  // (the connects below only merge classes *onto* surviving representatives).
  for (const SweepJournal::AddedCell& a : journal.added)
    index.add_cell(a.cell, a.topo_pos);
  // Connects next, mirrored 1:1 into the module so a from-scratch SigMap of
  // the edited module replays the same union-find operations in the same
  // order and lands on the same representatives.
  for (const auto& [lhs, rhs] : journal.connects) {
    index.add_alias(lhs, rhs);
    module.connect(lhs, rhs);
  }
  // Mutated survivors last, so their fresh reader entries are keyed under
  // the post-connect canonical bits.
  std::unordered_set<Cell*> dead(journal.removed.begin(), journal.removed.end());
  for (Cell* c : journal.mutated)
    if (!dead.count(c))
      index.refresh_cell_reads(c);
  module.remove_cells(journal.removed);
  if (finalize) {
    index.compact_topo();
    index.sigmap().flatten();
  }
}

std::unordered_map<const Cell*, uint32_t> stable_cell_order(const Module& module) {
  std::unordered_map<const Cell*, uint32_t> order;
  order.reserve(module.cells().size());
  uint32_t i = 0;
  for (const auto& cptr : module.cells())
    order.emplace(cptr.get(), i++);
  return order;
}

MuxtreeStats optimize_muxtrees(Module& module, MuxtreeOracle& oracle, DecisionTrace* trace) {
  MuxtreeStats stats;
  NetlistIndex index(module);
  index.sigmap().flatten();
  // Trace roots by their position at engine start: removals shift later
  // cells' per-iteration positions, which would make the same tree look like
  // a different root in every iteration's trace blocks.
  const auto stable_order = stable_cell_order(module);
  SweepJournal journal;
  for (size_t i = 0; i < kMaxSweepIterations; ++i) {
    ++stats.iterations;
    oracle.begin_module(module, index);
    journal.clear();
    MuxtreeWalker walker(index, oracle, stats, journal, trace, static_cast<uint32_t>(i));
    const MuxtreeForest forest = muxtree_forest(module, index);
    for (Cell* root : forest.roots)
      walker.walk_root(root, stable_order.at(root));
    if (!walker.changed())
      break;
    apply_sweep_journal(module, index, journal);
  }
  return stats;
}

} // namespace smartly::opt
