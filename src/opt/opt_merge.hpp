// opt_merge — structural sharing of identical cells (Yosys `opt_merge`).
#pragma once

#include "rtlil/module.hpp"

namespace smartly::opt {

/// Merge cells with identical type, parameters and (canonical) inputs.
/// Commutative operand order is normalized. Returns merged-cell count.
size_t opt_merge(rtlil::Module& module);

} // namespace smartly::opt
