// Muxtree traversal engine shared by the baseline `opt_muxtree` pass and
// smaRTLy's SAT-based redundancy elimination (§II of the paper).
//
// Both passes do the same walk: start at every muxtree root, descend through
// single-fanout $mux/$pmux data edges, and carry the set of control-signal
// values implied by the path taken ("known value signals"). They differ only
// in how a descendant's control port is decided:
//   * baseline (Yosys):  syntactic lookup — the control bit must literally be
//     one of the known bits (paper Figs. 1 & 2);
//   * smaRTLy:           logic inferencing — inference rules + simulation/SAT
//     over a sub-graph (paper Fig. 3, §II).
// The oracle interface below is that single point of variation.
#pragma once

#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"

#include <unordered_map>

namespace smartly::opt {

using KnownMap = std::unordered_map<rtlil::SigBit, bool>;

enum class CtrlDecision {
  Unknown, ///< the control bit can still be 0 or 1
  Zero,    ///< forced 0 on this path
  One,     ///< forced 1 on this path
  DeadPath ///< the path condition itself is unsatisfiable
};

class MuxtreeOracle {
public:
  virtual ~MuxtreeOracle() = default;

  /// Called once before a walk so the oracle can (re)build indices.
  virtual void begin_module(rtlil::Module& module) { (void)module; }

  /// Decide the value of `ctrl` (a canonical SigBit) given the path
  /// conditions in `known` (canonical bits -> value).
  virtual CtrlDecision decide(rtlil::SigBit ctrl, const KnownMap& known) = 0;

  /// Mutation notifications. The walker calls notify_cell_mutated immediately
  /// after rewriting a cell's ports/params mid-sweep, and notify_cell_removed
  /// when it schedules a cell for removal (the cell stays in the module until
  /// the sweep's pending connects are applied at sweep end). Incremental
  /// oracles use these to invalidate caches and retire solver clause groups;
  /// the from-scratch oracles ignore them.
  virtual void notify_cell_mutated(rtlil::Cell* cell) { (void)cell; }
  virtual void notify_cell_removed(rtlil::Cell* cell) { (void)cell; }
};

/// Baseline oracle: a control bit is decided only when it is literally one
/// of the known bits. This reproduces Yosys opt_muxtree's behaviour.
class SyntacticOracle final : public MuxtreeOracle {
public:
  CtrlDecision decide(rtlil::SigBit ctrl, const KnownMap& known) override {
    auto it = known.find(ctrl);
    if (it == known.end())
      return CtrlDecision::Unknown;
    return it->second ? CtrlDecision::One : CtrlDecision::Zero;
  }
};

struct MuxtreeStats {
  size_t mux_collapsed = 0;        ///< $mux cells removed (control decided)
  size_t pmux_branches_removed = 0;
  size_t data_bits_replaced = 0;   ///< Fig. 2 style data-port substitutions
  size_t oracle_queries = 0;
  size_t iterations = 0;
};

/// Walk every muxtree in `module`, removing never-active branches per the
/// oracle's decisions. Runs to fixpoint. Mutates the module; pair with
/// opt_expr + opt_clean afterwards to sweep disconnected logic.
MuxtreeStats optimize_muxtrees(rtlil::Module& module, MuxtreeOracle& oracle);

} // namespace smartly::opt
