// Muxtree traversal engine shared by the baseline `opt_muxtree` pass and
// smaRTLy's SAT-based redundancy elimination (§II of the paper).
//
// Both passes do the same walk: start at every muxtree root, descend through
// single-fanout $mux/$pmux data edges, and carry the set of control-signal
// values implied by the path taken ("known value signals"). They differ only
// in how a descendant's control port is decided:
//   * baseline (Yosys):  syntactic lookup — the control bit must literally be
//     one of the known bits (paper Figs. 1 & 2);
//   * smaRTLy:           logic inferencing — inference rules + simulation/SAT
//     over a sub-graph (paper Fig. 3, §II).
// The oracle interface below is that single point of variation.
//
// The walk itself is exposed at three granularities:
//   * optimize_muxtrees — the serial pass: forest -> walk every root ->
//     apply the journal -> iterate to fixpoint. One NetlistIndex is built up
//     front and updated incrementally from the journal at sweep barriers
//     (never rebuilt from scratch between iterations).
//   * MuxtreeWalker     — one root at a time, with all structural edits
//     deferred into a caller-owned SweepJournal. This is the unit the
//     parallel sweep engine (opt/parallel_sweep.hpp) dispatches per region:
//     during a walk the module is only mutated through in-place input-port
//     shrinks of the walked tree's own cells, so walks over trees with
//     disjoint read-closures are race-free.
//   * muxtree_forest / apply_sweep_journal — the partition and barrier halves,
//     shared by the serial and parallel drivers so both produce identical
//     netlists.
#pragma once

#include "rtlil/module.hpp"
#include "rtlil/sigmap.hpp"
#include "rtlil/topo.hpp"

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace smartly::opt {

using KnownMap = std::unordered_map<rtlil::SigBit, bool>;

enum class CtrlDecision {
  Unknown, ///< the control bit can still be 0 or 1
  Zero,    ///< forced 0 on this path
  One,     ///< forced 1 on this path
  DeadPath ///< the path condition itself is unsatisfiable
};

class MuxtreeOracle {
public:
  virtual ~MuxtreeOracle() = default;

  /// Called once before a walk so the oracle can (re)build indices.
  virtual void begin_module(rtlil::Module& module) { (void)module; }

  /// Index-sharing variant: the walker hands the oracle its own (incrementally
  /// maintained) NetlistIndex so the oracle does not rebuild one per sweep.
  /// Default forwards to the legacy overload for oracles that don't care.
  virtual void begin_module(rtlil::Module& module, const rtlil::NetlistIndex& index) {
    (void)index;
    begin_module(module);
  }

  /// Decide the value of `ctrl` (a canonical SigBit) given the path
  /// conditions in `known` (canonical bits -> value).
  virtual CtrlDecision decide(rtlil::SigBit ctrl, const KnownMap& known) = 0;

  /// Mutation notifications. The walker calls notify_cell_mutated immediately
  /// after rewriting a cell's ports/params mid-sweep, and notify_cell_removed
  /// when it schedules a cell for removal (the cell stays in the module until
  /// the sweep's journal is applied at the barrier). Incremental oracles use
  /// these to invalidate caches and retire solver clause groups; the
  /// from-scratch oracles ignore them.
  virtual void notify_cell_mutated(rtlil::Cell* cell) { (void)cell; }
  virtual void notify_cell_removed(rtlil::Cell* cell) { (void)cell; }

  /// Parallel-engine notification: cells *outside* this oracle's walks were
  /// removed and the given (sweep-time canonical) nets rewired at a barrier.
  /// An oracle whose caches can read such nets as cone boundary inputs must
  /// invalidate the dependent entries — the cross-region analogue of the
  /// invalidation notify_cell_removed triggers for the oracle's own sweeps.
  virtual void notify_external_rewire(const std::vector<rtlil::SigBit>& bits) {
    (void)bits;
  }
};

/// Baseline oracle: a control bit is decided only when it is literally one
/// of the known bits. This reproduces Yosys opt_muxtree's behaviour.
class SyntacticOracle final : public MuxtreeOracle {
public:
  CtrlDecision decide(rtlil::SigBit ctrl, const KnownMap& known) override {
    auto it = known.find(ctrl);
    if (it == known.end())
      return CtrlDecision::Unknown;
    return it->second ? CtrlDecision::One : CtrlDecision::Zero;
  }
};

struct MuxtreeStats {
  size_t mux_collapsed = 0;        ///< $mux cells removed (control decided)
  size_t pmux_branches_removed = 0;
  size_t data_bits_replaced = 0;   ///< Fig. 2 style data-port substitutions
  size_t oracle_queries = 0;
  size_t iterations = 0;
};

/// Structural edits deferred out of a sweep. Mid-sweep the module must stay
/// internally consistent (the oracle bit-blasts sub-graphs of it, and a
/// collapsed-but-not-removed mux whose Y is already aliased to one of its
/// inputs would look like a combinational cycle), so connects and removals
/// are recorded here and applied at the barrier — in walk order, so replaying
/// a journal is deterministic. `mutated` records cells whose input ports were
/// shrunk in place (data-bit substitution, pmux branch drops): the index
/// maintenance needs to retract their stale reader entries.
struct SweepJournal {
  /// A cell created during the sweep (the fraig engine's complement-merge
  /// inverters; the muxtree walkers never add cells). `topo_pos` is the index
  /// position the cell takes — a freed position (from a cell in `removed`)
  /// sitting after the new cell's fanin drivers and before its readers.
  struct AddedCell {
    rtlil::Cell* cell;
    int topo_pos;
  };

  std::vector<std::pair<rtlil::SigSpec, rtlil::SigSpec>> connects;
  std::vector<rtlil::Cell*> removed;
  std::vector<rtlil::Cell*> mutated; ///< deduplicated, walk order
  std::vector<AddedCell> added;      ///< already in the module; indexed at apply

  bool empty() const noexcept {
    return connects.empty() && removed.empty() && mutated.empty() && added.empty();
  }
  void clear() {
    connects.clear();
    removed.clear();
    mutated.clear();
    added.clear();
  }
};

/// Optional record of every oracle decision a walk made, for differential
/// testing between the serial and parallel engines. Entries are appended in
/// walk order and tagged with the walked root (its position in the module's
/// cell list — stable across design clones) and the sweep iteration.
struct DecisionTrace {
  struct Entry {
    uint32_t iteration;
    uint32_t root;
    uint64_t hash; ///< trace_hash(ctrl, decision)
  };
  std::vector<Entry> entries;
};

/// Stable (clone-comparable) hash of one decision: wire name + offset + verdict.
uint64_t trace_hash(const rtlil::SigBit& ctrl, CtrlDecision d);

/// Reduce a trace to a schedule- and replay-insensitive form: per-root block
/// sequences (one block per iteration the root was walked) with consecutive
/// duplicate blocks dropped, concatenated in root order. A serial engine that
/// re-walks every tree each sweep and a parallel engine that re-queues only
/// dirty regions reduce to the same canonical trace iff they made the same
/// productive decisions.
std::vector<uint64_t> canonical_trace(const DecisionTrace& trace);

/// The muxtree forest of a module: roots in module cell order, plus the
/// parent map for tree-internal cells (every output bit read by exactly one
/// mux/pmux through a data port — such cells are rewritten under the path
/// condition of the unique path to them).
struct MuxtreeForest {
  std::vector<rtlil::Cell*> roots;                    ///< module cell order
  std::unordered_map<rtlil::Cell*, rtlil::Cell*> parent; ///< internal -> reader
};

MuxtreeForest muxtree_forest(const rtlil::Module& module, const rtlil::NetlistIndex& index);

/// The unique mux/pmux cell reading all of `c`'s output bits through a data
/// port (single fanout, no output-port escape), or nullptr — the tree-edge
/// relation muxtree_forest is built from. Exposed so the parallel engine can
/// re-derive one region's forest without rescanning the module.
rtlil::Cell* unique_mux_parent(const rtlil::NetlistIndex& index, rtlil::Cell* c);

/// Fixpoint cap shared by the serial walker and the parallel sweep engine —
/// they must agree or the two engines could stop after different sweep
/// counts on a pathological design, breaking the bit-identical guarantee.
inline constexpr size_t kMaxSweepIterations = 16;

/// Cell -> position in the module's cell list. Captured once at engine start
/// and used as the stable root id for DecisionTrace entries (per-iteration
/// positions shift as cells are removed; clone designs agree on these ids).
std::unordered_map<const rtlil::Cell*, uint32_t> stable_cell_order(const rtlil::Module& module);

/// Walks one muxtree root at a time against a frozen netlist index,
/// deferring all structural edits into the journal (its only direct module
/// mutations are in-place input-port shrinks of walked tree cells). Reusable
/// scratch (the known-value maps of the path stack) lives for the walker's
/// lifetime.
class MuxtreeWalker {
public:
  MuxtreeWalker(const rtlil::NetlistIndex& index, MuxtreeOracle& oracle,
                MuxtreeStats& stats, SweepJournal& journal,
                DecisionTrace* trace = nullptr, uint32_t iteration = 0);
  ~MuxtreeWalker();

  /// Walk the tree rooted at `root` (skipped if a previous walk of this
  /// walker already scheduled it for removal). `root_order` tags the trace.
  void walk_root(rtlil::Cell* root, uint32_t root_order);

  bool changed() const noexcept;

private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Apply one sweep's journal: retract removed cells from the index, mirror
/// the connects into module + index, refresh mutated cells' reader entries,
/// then physically remove the dead cells. Leaves `index` equal to a rebuild
/// of the edited module. With `finalize` (the default) the topo order is
/// compacted and the sigmap flattened for concurrent readers; a caller
/// applying many journals at one barrier passes false and calls
/// index.compact_topo() + index.sigmap().flatten() once afterwards.
void apply_sweep_journal(rtlil::Module& module, rtlil::NetlistIndex& index,
                         const SweepJournal& journal, bool finalize = true);

/// Walk every muxtree in `module`, removing never-active branches per the
/// oracle's decisions. Runs to fixpoint. Mutates the module; pair with
/// opt_expr + opt_clean afterwards to sweep disconnected logic.
MuxtreeStats optimize_muxtrees(rtlil::Module& module, MuxtreeOracle& oracle,
                               DecisionTrace* trace = nullptr);

} // namespace smartly::opt
