#include "opt/opt_reduce.hpp"

#include "rtlil/topo.hpp"
#include "util/log.hpp"

#include <unordered_map>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Module;
using rtlil::NetlistIndex;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;

namespace {

bool is_or_like(CellType t) {
  return t == CellType::ReduceOr || t == CellType::ReduceBool;
}

bool same_reduce_kind(CellType a, CellType b) {
  if (a == CellType::ReduceAnd)
    return b == CellType::ReduceAnd;
  return is_or_like(a) && is_or_like(b);
}

/// One pass of reduce-gate flattening. Returns number of absorbed cells.
size_t flatten_reductions(Module& module) {
  const NetlistIndex index(module);
  size_t absorbed = 0;
  for (const auto& cptr : module.cells()) {
    Cell* cell = cptr.get();
    if (cell->type() != CellType::ReduceOr && cell->type() != CellType::ReduceAnd &&
        cell->type() != CellType::ReduceBool)
      continue;
    SigSpec a = cell->port(Port::A);
    SigSpec new_a;
    bool changed = false;
    for (const SigBit& raw : a) {
      const SigBit bit = index.sigmap()(raw);
      Cell* d = bit.is_wire() ? index.driver(bit) : nullptr;
      // Absorb a same-kind child reduction read only by this cell.
      if (d && d != cell && same_reduce_kind(cell->type(), d->type()) &&
          d->port(Port::Y).size() == 1 && index.fanout(bit) == 1 &&
          !index.drives_output_port(bit)) {
        new_a.append(d->port(Port::A));
        changed = true;
        ++absorbed;
      } else {
        new_a.append(raw);
      }
    }
    if (changed) {
      cell->set_port(Port::A, new_a);
      cell->infer_widths();
    }
  }
  return absorbed;
}

/// One pass of pmux branch merging. Returns number of merged branches.
size_t merge_pmux_branches(Module& module) {
  size_t merged = 0;
  for (const auto& cptr : module.cells()) {
    Cell* cell = cptr.get();
    if (cell->type() != CellType::Pmux)
      continue;
    const SigSpec s = cell->port(Port::S);
    const SigSpec b = cell->port(Port::B);
    const int width = cell->params().width;

    // Coalesce *contiguous* runs of branches with identical data. Only
    // adjacent merging is sound under lowest-bit-wins priority: merging
    // branch j into an earlier non-adjacent branch i would let the merged
    // select pre-empt a different-data branch between them.
    struct Group {
      SigSpec data;
      std::vector<SigBit> selects;
    };
    std::vector<Group> groups;
    for (int i = 0; i < s.size(); ++i) {
      const SigSpec part = b.extract(i * width, width);
      if (!groups.empty() && groups.back().data == part)
        groups.back().selects.push_back(s[i]);
      else
        groups.push_back({part, {s[i]}});
    }
    if (static_cast<int>(groups.size()) == s.size())
      continue; // nothing shared

    SigSpec new_s, new_b;
    for (Group& g : groups) {
      SigBit sel = g.selects[0];
      if (g.selects.size() > 1) {
        // OR the selects: under lowest-bit-wins priority this preserves
        // behaviour because all merged branches carry identical data.
        SigSpec bits;
        for (const SigBit& sb : g.selects)
          bits.append(sb);
        const SigSpec orred = module.ReduceOr(bits);
        sel = orred[0];
        merged += g.selects.size() - 1;
      }
      new_s.append(sel);
      new_b.append(g.data);
    }
    cell->set_port(Port::S, new_s);
    cell->set_port(Port::B, new_b);
    cell->infer_widths();
  }
  return merged;
}

} // namespace

OptReduceStats opt_reduce(Module& module) {
  OptReduceStats stats;
  for (;;) {
    const size_t a = flatten_reductions(module);
    const size_t m = merge_pmux_branches(module);
    stats.reductions_absorbed += a;
    stats.pmux_branches_merged += m;
    if (a == 0 && m == 0)
      break;
  }
  return stats;
}

} // namespace smartly::opt
