// Region partitioning for the parallel deterministic sweep engine.
//
// A *region* is a set of muxtrees that may be walked concurrently with other
// regions without any thread ever reading a cell another thread mutates.
// The walk of one tree only mutates the tree's own mux/pmux cells (in-place
// input-port shrinks; connects/removals are journaled), but it *reads*:
//   * the distance-1 neighbourhood of every tree-cell bit (parent/child
//     fanout checks in the walker), and
//   * the undirected distance-k ball around the tree's select bits — the
//     sub-graph the §II oracle extracts for every decide() query (ctrl and
//     all known bits are select bits of the tree).
// That read closure may freely overlap another tree's closure on cells the
// sweep never mutates (shared combinational fanin); only a foreign *mux
// tree* cell inside the closure forces the two trees into one region
// (union-find). Since the sweep only ever shrinks ports, a closure computed
// on the iteration's frozen index over-approximates every ball the oracle
// can extract during that iteration.
#pragma once

#include "opt/muxtree_walker.hpp"
#include "rtlil/module.hpp"
#include "rtlil/topo.hpp"

#include <vector>

namespace smartly::opt {

struct Region {
  std::vector<rtlil::Cell*> roots;      ///< module cell order
  std::vector<rtlil::Cell*> tree_cells; ///< roots + tree-internal mux cells
};

struct RegionPartition {
  /// Canonical order: by the module-cell index of each region's first root.
  /// Journals are applied and stats aggregated in this order, which is what
  /// makes the sweep deterministic regardless of worker scheduling.
  std::vector<Region> regions;
  /// Read-closure cells per region (same indexing as `regions`), the union of
  /// the constituent trees' closures — computed during partitioning anyway,
  /// exposed so the engine doesn't repeat the BFS for its closure-bit sets.
  std::vector<std::vector<rtlil::Cell*>> closures;
  size_t trees = 0;          ///< muxtrees before merging
  size_t merged_edges = 0;   ///< union operations caused by closure overlap
};

/// Partition the module's muxtree forest. `ball_radius` must be at least the
/// oracle's sub-graph extraction distance k (SubgraphOptions::depth).
RegionPartition partition_regions(const rtlil::Module& module,
                                  const rtlil::NetlistIndex& index,
                                  const MuxtreeForest& forest, int ball_radius);

/// Cells within undirected distance `radius` of any of the given bits
/// (alternating bit -> adjacent cells -> their port bits; Dff cells block, as
/// in sub-graph extraction). Used both for closure computation and for the
/// engine's dirty-region propagation at sweep barriers.
std::vector<rtlil::Cell*> cells_within_radius(const rtlil::NetlistIndex& index,
                                              const std::vector<rtlil::SigBit>& seeds,
                                              int radius);

/// Every cell a walk of the given trees may read: the oracle's distance-k
/// extraction ball around the trees' select bits plus the 1-neighbourhood of
/// every tree bit. The engine recomputes this for dirty regions at barriers
/// (aliasing from applied connects can extend a closure by one hop).
std::vector<rtlil::Cell*> region_read_closure(const rtlil::NetlistIndex& index,
                                              const std::vector<rtlil::Cell*>& tree_cells,
                                              int ball_radius);

} // namespace smartly::opt
