// opt_clean — dead cell elimination (Yosys `opt_clean` analogue).
//
// §III of the paper relies on this: "smaRTLy removes any redundant gates
// that are no longer connected to the muxtree … RemoveUnusedCell()
// [implemented in other pass]". Restructuring disconnects eq cells; this
// pass deletes them when nothing else reads them.
#pragma once

#include "rtlil/module.hpp"

namespace smartly::opt {

/// Remove every cell whose output (transitively) never reaches a module
/// output port. Returns the number of removed cells.
size_t opt_clean(rtlil::Module& module);

} // namespace smartly::opt
