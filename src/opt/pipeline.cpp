#include "opt/pipeline.hpp"

#include "obs/trace.hpp"
#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/opt_merge.hpp"
#include "opt/opt_muxtree.hpp"

#include <algorithm>

namespace smartly::opt {

sweep::FraigStats fraig_stage(rtlil::Module& module, const sweep::FraigOptions& options,
                              RecoveryContext* recovery) {
  const obs::Span span("pipeline", "opt.fraig_stage");
  sweep::FraigStats stats;
  sweep::FraigOptions opts = options;
  if (recovery != nullptr)
    opts.quarantine = &recovery->quarantine;
  const StageBody body = [&](rtlil::Module& m, int max_rounds) {
    sweep::FraigOptions run = opts;
    if (max_rounds >= 0) {
      // Bisection probe: cap the rounds and detach the shared guard so probe
      // work never charges the run's real budgets.
      run.max_rounds = std::min(run.max_rounds, static_cast<size_t>(max_rounds));
      run.guard = nullptr;
    }
    stats = sweep::fraig_sweep(m, run); // overwrite: retries must not accumulate
    opt_clean(m);
  };
  const StageOutcome out = run_protected_stage(module, "fraig", recovery, opts.guard, body);
  if (!out.committed)
    stats = sweep::FraigStats{}; // skipped: module holds the pre-stage image
  return stats;
}

rewrite::RewriteStats rewrite_stage(rtlil::Module& module,
                                    const rewrite::RewriteOptions& options,
                                    RecoveryContext* recovery) {
  const obs::Span span("pipeline", "opt.rewrite_stage");
  rewrite::RewriteStats stats;
  rewrite::RewriteOptions opts = options;
  if (recovery != nullptr)
    opts.quarantine = &recovery->quarantine;
  const StageBody body = [&](rtlil::Module& m, int max_rounds) {
    rewrite::RewriteOptions run = opts;
    if (max_rounds >= 0) {
      run.max_rounds = std::min(run.max_rounds, static_cast<size_t>(max_rounds));
      run.guard = nullptr;
    }
    stats = rewrite::rewrite_sweep(m, run); // overwrite: retries must not accumulate
    opt_clean(m);
  };
  const StageOutcome out = run_protected_stage(module, "rewrite", recovery, opts.guard, body);
  if (!out.committed)
    stats = rewrite::RewriteStats{}; // skipped: module holds the pre-stage image
  return stats;
}

DeepOptStats fraig_rewrite_loop(rtlil::Module& module, const DeepOptOptions& options) {
  // Both stage options normally carry the same governor; either is enough to
  // stop the loop once a halt is observed (the stages themselves degrade
  // internally — this only avoids dispatching stages that would no-op).
  util::ResourceGuard* guard =
      options.fraig.guard != nullptr ? options.fraig.guard : options.rewrite.guard;
  const obs::Span span("pipeline", "opt.fraig_rewrite_loop");
  DeepOptStats stats;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    stats.fraig += fraig_stage(module, options.fraig, options.recovery);
    if (guard != nullptr && guard->halted())
      return stats;
    const rewrite::RewriteStats rw = rewrite_stage(module, options.rewrite, options.recovery);
    const bool committed = rw.rewrites > 0;
    stats.rewrite += rw;
    ++stats.iterations;
    if (guard != nullptr && guard->halted())
      return stats;
    if (!committed)
      return stats; // nothing restructured: the closing fraig would be idle
  }
  stats.fraig += fraig_stage(module, options.fraig, options.recovery);
  return stats;
}

void coarse_opt(rtlil::Module& module) {
  const obs::Span span("pipeline", "opt.coarse_opt");
  for (int iter = 0; iter < 8; ++iter) {
    const OptExprStats es = opt_expr(module);
    const size_t merged = opt_merge(module);
    const size_t cleaned = opt_clean(module);
    if (es.folded_cells + es.simplified_cells + merged + cleaned == 0)
      break;
  }
}

MuxtreeStats yosys_flow(rtlil::Module& module) {
  const obs::Span span("pipeline", "opt.yosys_flow");
  coarse_opt(module);
  const MuxtreeStats stats = opt_muxtree(module);
  coarse_opt(module);
  return stats;
}

void original_flow(rtlil::Module& module) { opt_clean(module); }

} // namespace smartly::opt
