#include "opt/pipeline.hpp"

#include "opt/opt_clean.hpp"
#include "opt/opt_expr.hpp"
#include "opt/opt_merge.hpp"
#include "opt/opt_muxtree.hpp"

namespace smartly::opt {

sweep::FraigStats fraig_stage(rtlil::Module& module, const sweep::FraigOptions& options) {
  const sweep::FraigStats stats = sweep::fraig_sweep(module, options);
  opt_clean(module);
  return stats;
}

void coarse_opt(rtlil::Module& module) {
  for (int iter = 0; iter < 8; ++iter) {
    const OptExprStats es = opt_expr(module);
    const size_t merged = opt_merge(module);
    const size_t cleaned = opt_clean(module);
    if (es.folded_cells + es.simplified_cells + merged + cleaned == 0)
      break;
  }
}

MuxtreeStats yosys_flow(rtlil::Module& module) {
  coarse_opt(module);
  const MuxtreeStats stats = opt_muxtree(module);
  coarse_opt(module);
  return stats;
}

void original_flow(rtlil::Module& module) { opt_clean(module); }

} // namespace smartly::opt
