#include "opt/region_partition.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::NetlistIndex;
using rtlil::Port;
using rtlil::SigBit;

namespace {

using rtlil::combinational_adjacent_cells;

struct UnionFind {
  std::vector<size_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    for (size_t i = 0; i < n; ++i)
      parent[i] = i;
  }
  size_t find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool unite(size_t a, size_t b) {
    a = find(a);
    b = find(b);
    if (a == b)
      return false;
    // Deterministic representative: the smaller tree id (regions are later
    // ordered by first-root index, which ascends with tree id).
    if (b < a)
      std::swap(a, b);
    parent[b] = a;
    return true;
  }
};

} // namespace

std::vector<Cell*> cells_within_radius(const NetlistIndex& index,
                                       const std::vector<SigBit>& seeds, int radius) {
  std::unordered_map<Cell*, int> depth;
  std::deque<Cell*> queue;
  std::vector<Cell*> scratch;
  for (const SigBit& b : seeds) {
    if (!b.is_wire())
      continue;
    scratch.clear();
    combinational_adjacent_cells(index, index.sigmap()(b), scratch);
    for (Cell* c : scratch)
      if (depth.emplace(c, 1).second)
        queue.push_back(c);
  }
  while (!queue.empty()) {
    Cell* c = queue.front();
    queue.pop_front();
    const int d = depth[c];
    if (d >= radius)
      continue;
    scratch.clear();
    for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!c->has_port(p))
        continue;
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = index.sigmap()(raw);
        if (bit.is_wire())
          combinational_adjacent_cells(index, bit, scratch);
      }
    }
    for (Cell* n : scratch)
      if (depth.emplace(n, d + 1).second)
        queue.push_back(n);
  }
  std::vector<Cell*> out;
  out.reserve(depth.size());
  for (const auto& [cell, d] : depth) {
    (void)d;
    out.push_back(cell);
  }
  return out;
}

std::vector<Cell*> region_read_closure(const NetlistIndex& index,
                                       const std::vector<Cell*>& tree_cells,
                                       int ball_radius) {
  std::vector<SigBit> select_bits, all_bits;
  for (Cell* c : tree_cells) {
    for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!c->has_port(p))
        continue;
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = index.sigmap()(raw);
        if (!bit.is_wire())
          continue;
        all_bits.push_back(bit);
        if (p == Port::S)
          select_bits.push_back(bit);
      }
    }
  }
  std::unordered_set<Cell*> closure;
  // Oracle balls: extraction seeds cells adjacent to ctrl/known (depth 0)
  // and expands to distance k, i.e. k+1 cell layers from the select bits.
  for (Cell* c : cells_within_radius(index, select_bits, ball_radius + 1))
    closure.insert(c);
  // Walker reads: parent/child checks touch the 1-neighbourhood of every
  // tree bit (and read the S ports of mux readers found there).
  for (Cell* c : cells_within_radius(index, all_bits, 1))
    closure.insert(c);
  return std::vector<Cell*>(closure.begin(), closure.end());
}

RegionPartition partition_regions(const rtlil::Module& module, const NetlistIndex& index,
                                  const MuxtreeForest& forest, int ball_radius) {
  (void)module;
  RegionPartition out;
  const size_t n_trees = forest.roots.size();
  out.trees = n_trees;
  if (n_trees == 0)
    return out;

  // Tree membership: chase parent chains (acyclic: data edges of a DAG).
  std::unordered_map<const Cell*, size_t> tree_of;
  std::unordered_map<const Cell*, size_t> root_id;
  for (size_t i = 0; i < n_trees; ++i) {
    root_id.emplace(forest.roots[i], i);
    tree_of.emplace(forest.roots[i], i);
  }
  std::vector<std::vector<Cell*>> tree_cells(n_trees);
  for (size_t i = 0; i < n_trees; ++i)
    tree_cells[i].push_back(forest.roots[i]);
  std::vector<Cell*> chain;
  for (const auto& [cell, parent] : forest.parent) {
    (void)parent;
    Cell* c = cell;
    chain.clear();
    while (!tree_of.count(c)) {
      chain.push_back(c);
      c = forest.parent.at(c);
    }
    const size_t t = tree_of.at(c);
    for (Cell* link : chain) {
      tree_of.emplace(link, t);
      tree_cells[t].push_back(link);
    }
  }

  // Read closure per tree -> union trees that could read each other's cells.
  UnionFind uf(n_trees);
  std::vector<std::vector<Cell*>> tree_closures(n_trees);
  for (size_t t = 0; t < n_trees; ++t) {
    tree_closures[t] = region_read_closure(index, tree_cells[t], ball_radius);
    for (Cell* c : tree_closures[t]) {
      auto it = tree_of.find(c);
      if (it != tree_of.end() && it->second != t)
        out.merged_edges += uf.unite(t, it->second) ? 1 : 0;
    }
  }

  // Emit regions in canonical order. Trees ascend by first-root module index
  // (forest.roots is in module cell order), so grouping by representative and
  // sorting by min tree id yields a schedule-independent ordering.
  std::unordered_map<size_t, size_t> rep_to_region;
  std::vector<std::unordered_set<Cell*>> closure_sets;
  for (size_t t = 0; t < n_trees; ++t) {
    const size_t rep = uf.find(t);
    auto [it, inserted] = rep_to_region.try_emplace(rep, out.regions.size());
    if (inserted) {
      out.regions.emplace_back();
      closure_sets.emplace_back();
    }
    Region& region = out.regions[it->second];
    region.roots.push_back(forest.roots[t]);
    region.tree_cells.insert(region.tree_cells.end(), tree_cells[t].begin(),
                             tree_cells[t].end());
    closure_sets[it->second].insert(tree_closures[t].begin(), tree_closures[t].end());
  }
  // rep_to_region assigns region ids in ascending first-tree order and trees
  // ascend by first-root module index, so regions are already canonical.
  out.closures.reserve(closure_sets.size());
  for (const auto& s : closure_sets)
    out.closures.emplace_back(s.begin(), s.end());
  return out;
}

} // namespace smartly::opt
