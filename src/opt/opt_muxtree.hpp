// opt_muxtree — the Yosys baseline pass the paper compares against.
//
// "This pass analyzes control signals to identify and remove never-active
// branches by traversing the multiplexer trees and monitoring the values of
// visited control ports. A MUX will be removed if it shares the same control
// signal with visited MUXs." (paper §I)
#pragma once

#include "opt/muxtree_walker.hpp"

namespace smartly::opt {

/// Run the baseline (syntactic) muxtree optimization to fixpoint.
MuxtreeStats opt_muxtree(rtlil::Module& module);

} // namespace smartly::opt
