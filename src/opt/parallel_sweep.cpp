#include "opt/parallel_sweep.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace smartly::opt {

using rtlil::Cell;
using rtlil::NetlistIndex;
using rtlil::Port;
using rtlil::SigBit;

namespace {

void accumulate(MuxtreeStats& into, const MuxtreeStats& from) {
  into.mux_collapsed += from.mux_collapsed;
  into.pmux_branches_removed += from.pmux_branches_removed;
  into.data_bits_replaced += from.data_bits_replaced;
  into.oracle_queries += from.oracle_queries;
  // iterations counted by the engine loop, not per region walk
}

struct RegionState {
  std::vector<Cell*> roots;      ///< stable_order ascending
  std::vector<Cell*> tree_cells; ///< membership queries only (unordered)
  /// Canonical port bits of every read-closure cell. A barrier net merge can
  /// only influence this region if one of the merged bits is in here, so the
  /// cross-region dirty test is pure hash lookups — no per-barrier BFS.
  /// Conservative between recomputes: local edits only shrink the closure.
  std::unordered_set<SigBit> closure_bits;
  MuxtreeOracle* oracle = nullptr;
  bool dirty = true;
  bool alive = true;
  /// Barrier scratch: closure recompute flagged / overlap results.
  bool recompute = false;
  std::vector<size_t> overlaps;
};

/// closure_bits of a freshly computed closure cell set.
std::unordered_set<SigBit> closure_bit_set(const NetlistIndex& index,
                                           const std::vector<Cell*>& closure_cells) {
  std::unordered_set<SigBit> bits;
  for (Cell* c : closure_cells)
    for (int pi = 0; pi < rtlil::kPortCount; ++pi) {
      const Port p = static_cast<Port>(pi);
      if (!c->has_port(p))
        continue;
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = index.sigmap()(raw);
        if (bit.is_wire())
          bits.insert(bit);
      }
    }
  return bits;
}

/// Recompute region `self`'s read closure on the current index, refresh its
/// closure_bits, and return the foreign regions whose trees the closure now
/// reaches — the engine's safety invariant check.
std::vector<size_t> refresh_closure(RegionState& r, size_t self, const NetlistIndex& index,
                                    const std::unordered_map<const Cell*, size_t>& region_of,
                                    int ball_radius) {
  const std::vector<Cell*> closure = region_read_closure(index, r.tree_cells, ball_radius);
  r.closure_bits = closure_bit_set(index, closure);
  std::vector<size_t> overlaps;
  std::unordered_set<size_t> seen;
  for (Cell* c : closure) {
    auto it = region_of.find(c);
    if (it != region_of.end() && it->second != self && seen.insert(it->second).second)
      overlaps.push_back(it->second);
  }
  return overlaps;
}

/// Stable id of a region: the minimum bit_unit_id over its roots' first
/// output bits. Name-based (raw bits, not sigmap representatives) and
/// min-reduced, so the id is independent of root order, thread count, and a
/// write_verilog round-trip — the recovery layer quarantines regions under
/// it ("sweep.region"), and unit-keyed fault plans key on it.
uint64_t region_unit_id(const std::vector<Cell*>& roots) {
  uint64_t best = 0;
  for (const Cell* root : roots) {
    for (const SigBit& bit : root->port(root->output_port())) {
      if (!bit.is_wire())
        continue;
      const uint64_t id = util::bit_unit_id(bit.wire->name(), bit.offset);
      if (best == 0 || id < best)
        best = id;
      break; // first output bit per root
    }
  }
  return best == 0 ? 1 : best;
}

} // namespace

ParallelSweepEngine::ParallelSweepEngine(rtlil::Module& module,
                                         const ParallelSweepOptions& options)
    : module_(module), options_(options) {
  if (!options_.make_oracle)
    throw std::logic_error("ParallelSweepEngine: make_oracle factory is required");
}

ParallelSweepEngine::~ParallelSweepEngine() = default;

ParallelSweepStats ParallelSweepEngine::run(DecisionTrace* trace) {
  const obs::Span engine_span("sweep", "sweep.run", "cells",
                              static_cast<uint64_t>(module_.cells().size()));
  ParallelSweepStats stats;
  NetlistIndex index(module_);
  index.sigmap().flatten();
  oracles_.clear();

  const bool debug_timing = std::getenv("SMARTLY_SWEEP_DEBUG") != nullptr;
  auto now = [] { return std::chrono::steady_clock::now(); };
  auto secs = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  const auto stable_order = stable_cell_order(module_);
  const MuxtreeForest forest = muxtree_forest(module_, index);
  const RegionPartition partition =
      partition_regions(module_, index, forest, options_.ball_radius);
  stats.regions = partition.regions.size();

  // More workers than regions can ever run is pure spawn/join overhead (a
  // design with many small modules pays it once per module).
  const int width = std::min<int>(util::resolve_thread_count(options_.threads),
                                  std::max<size_t>(partition.regions.size(), 1));
  util::ThreadPool pool(width);
  stats.threads_used = pool.size();

  std::vector<RegionState> regions(partition.regions.size());
  std::unordered_map<const Cell*, size_t> region_of; // mux tree cell -> region id
  for (size_t i = 0; i < partition.regions.size(); ++i) {
    regions[i].roots = partition.regions[i].roots;
    regions[i].tree_cells = partition.regions[i].tree_cells;
    stats.largest_region_trees =
        std::max(stats.largest_region_trees, partition.regions[i].roots.size());
    for (Cell* c : regions[i].tree_cells)
      region_of.emplace(c, i);
  }
  // Initial closure-bit sets from the closures the partitioner already
  // walked; one parallel task per region.
  pool.run_batch(regions.size(), [&](int, size_t i) {
    regions[i].closure_bits = closure_bit_set(index, partition.closures[i]);
  });

  struct Slot {
    SweepJournal journal;
    MuxtreeStats stats;
    DecisionTrace trace;
  };

  util::ResourceGuard* guard = options_.guard;
  const auto halt_engine = [&](util::BudgetKind why) {
    if (guard != nullptr) {
      if (why != util::BudgetKind::None)
        guard->halt(why);
      guard->note_halted_engine();
    }
    stats.halted = 1;
    size_t abandoned = 0;
    for (const RegionState& r : regions)
      if (r.alive && r.dirty && !r.tree_cells.empty())
        ++abandoned;
    stats.regions_skipped_halt = abandoned;
    if (guard != nullptr && abandoned > 0)
      guard->note_skipped_regions(abandoned);
  };

  std::vector<SigBit> rewired_bits; ///< removed output classes of the last barrier
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Iteration barrier: deterministic budgets (charged by the region
    // oracles) arm the sticky halt flag only here, so the same budget stops
    // the sweep at the same iteration for every thread count.
    if (guard != nullptr && guard->checkpoint()) {
      halt_engine(util::BudgetKind::None);
      break;
    }
    if (options_.quarantine != nullptr &&
        options_.quarantine->contains("sweep.iteration", iter + 1)) {
      // A previously faulting iteration: skip it, keep iterating.
      ++stats.quarantined;
      continue;
    }
    if (util::fault_point("sweep.iteration", iter + 1) != util::FaultAction::None) {
      if (guard != nullptr)
        guard->note_fault("sweep.iteration", iter + 1);
      halt_engine(util::BudgetKind::Fault);
      break;
    }
    ++stats.walker.iterations;
    const obs::Span iter_span("sweep", "sweep.iteration", "iter",
                              static_cast<uint64_t>(iter + 1));
    auto t_iter = now();

    std::vector<RegionState*> work;
    std::vector<uint64_t> work_units; ///< stable region ids, parallel to work
    for (RegionState& r : regions) {
      if (!r.alive)
        continue;
      if (!r.dirty) {
        ++stats.regions_skipped_clean;
        continue;
      }
      const uint64_t unit = region_unit_id(r.roots);
      if (options_.quarantine != nullptr &&
          options_.quarantine->contains("sweep.region", unit)) {
        // Quarantined region: never dispatched. It stays dirty, so a later
        // merge (which changes its id) gets a fresh chance.
        ++stats.quarantined;
        continue;
      }
      work.push_back(&r);
      work_units.push_back(unit);
    }
    if (work.empty())
      break;

    // Oracle creation and cross-region invalidation stay on this thread:
    // oracles_ grows here, and the rewired-net notification mirrors, for
    // other regions' removals, what the oracle's own begin_module flush does
    // for its own (see IncrementalOracle::notify_external_rewire).
    for (RegionState* r : work) {
      if (!r->oracle) {
        oracles_.push_back(options_.make_oracle());
        r->oracle = oracles_.back().get();
      }
      if (!rewired_bits.empty())
        r->oracle->notify_external_rewire(rewired_bits);
    }
    rewired_bits.clear();

    // Parallel phase: the module and index are frozen except for in-place
    // input-port shrinks of each region's own tree cells, which no other
    // region's read closure can reach (see region_partition.hpp).
    auto t_walk = now();
    std::vector<Slot> slots(work.size());
    bool faulted = false;
    try {
      pool.run_batch(work.size(), [&](int, size_t i) {
        RegionState& r = *work[i];
        // Mid-phase halts only come from deadline/cancel/faults; a skipped
        // region keeps an empty journal and is marked clean at the barrier
        // (a missed optimization, never an invalid state).
        if ((guard != nullptr && guard->poll()) ||
            util::fault_unknown("sweep.region", work_units[i]))
          return;
        const obs::Span region_span("sweep", "sweep.region", "region", work_units[i]);
        r.oracle->begin_module(module_, index);
        Slot& slot = slots[i];
        MuxtreeWalker walker(index, *r.oracle, slot.stats, slot.journal,
                             trace ? &slot.trace : nullptr, static_cast<uint32_t>(iter));
        for (Cell* root : r.roots)
          walker.walk_root(root, stable_order.at(root));
      });
    } catch (const util::FaultInjected& e) {
      // Only the oracle can throw inside a walk, and every in-place port
      // edit is journaled before the next oracle call — so the slot journals
      // are complete records of what actually mutated. Apply them in
      // canonical region order to restore index consistency, then stop.
      // Only injected faults are absorbed; real errors keep propagating.
      faulted = true;
      if (guard != nullptr)
        guard->note_fault(e.site().c_str(), e.unit());
    }
    if (faulted) {
      for (size_t i = 0; i < work.size(); ++i) {
        accumulate(stats.walker, slots[i].stats);
        if (!slots[i].journal.empty())
          apply_sweep_journal(module_, index, slots[i].journal, /*finalize=*/false);
      }
      index.compact_topo();
      index.sigmap().flatten();
      halt_engine(util::BudgetKind::Fault);
      break;
    }
    const double walk_secs = secs(t_walk);

    // Barrier: aggregate and apply in canonical region order, so the
    // module's connection list, cell removals, and statistics are identical
    // for every thread count.
    auto t_apply = now();
    bool any_change = false;
    // Both sides of every applied connect, in sweep-time *and* post-apply
    // canonicalization: the nets through which one region's edits can reach
    // another (foreign mux cells are excluded from every extraction ball by
    // the partition invariant, and foreign non-mux cells never change).
    std::unordered_set<SigBit> merge_bits;
    for (size_t i = 0; i < work.size(); ++i) {
      ++stats.region_walks;
      accumulate(stats.walker, slots[i].stats);
      if (trace)
        trace->entries.insert(trace->entries.end(), slots[i].trace.entries.begin(),
                              slots[i].trace.entries.end());
      if (slots[i].journal.empty()) {
        work[i]->dirty = false;
        continue;
      }
      any_change = true;
      // A region that edited anything re-runs: its own connects/constants can
      // enable further decisions, exactly like the serial fixpoint.
      work[i]->dirty = true;
      for (const auto& [lhs, rhs] : slots[i].journal.connects)
        for (const auto* spec : {&lhs, &rhs})
          for (const SigBit& raw : *spec) {
            const SigBit bit = index.sigmap()(raw);
            if (bit.is_wire())
              merge_bits.insert(bit); // sweep-time representative
          }
      for (Cell* c : slots[i].journal.removed) {
        for (const SigBit& raw : c->port(c->output_port())) {
          const SigBit bit = index.sigmap()(raw);
          if (bit.is_wire())
            rewired_bits.push_back(bit);
        }
        region_of.erase(c);
      }
      if (!slots[i].journal.removed.empty()) {
        std::unordered_set<Cell*> dead(slots[i].journal.removed.begin(),
                                       slots[i].journal.removed.end());
        auto& cells = work[i]->tree_cells;
        cells.erase(std::remove_if(cells.begin(), cells.end(),
                                   [&](Cell* c) { return dead.count(c) != 0; }),
                    cells.end());
      }
      apply_sweep_journal(module_, index, slots[i].journal, /*finalize=*/false);
    }
    if (any_change) {
      index.compact_topo();
      index.sigmap().flatten();
    } else {
      break;
    }
    {
      std::vector<SigBit> post;
      post.reserve(merge_bits.size());
      for (const SigBit& b : merge_bits)
        post.push_back(index.sigmap()(b)); // post-apply representative
      merge_bits.insert(post.begin(), post.end());
    }
    const double apply_secs = secs(t_apply);

    // Re-derive the muxtree forest only inside regions that edited anything:
    // tree edges never cross region boundaries, and an empty-journal region's
    // parent relation cannot have changed (its cells' output readers can only
    // gain/lose entries through its own connects/removals — a foreign mux
    // adjacent enough to matter would have merged regions at partition time).
    auto t_forest = now();
    for (size_t i = 0; i < work.size(); ++i) {
      if (slots[i].journal.empty())
        continue;
      RegionState& r = *work[i];
      r.roots.clear();
      for (Cell* c : r.tree_cells)
        if (!unique_mux_parent(index, c))
          r.roots.push_back(c);
      std::sort(r.roots.begin(), r.roots.end(), [&](Cell* a, Cell* b) {
        return stable_order.at(a) < stable_order.at(b);
      });
    }
    const double forest_secs = secs(t_forest);

    // Cross-region dirty propagation: a region whose closure reads one of
    // the merged nets must re-run, and — since the merge can extend its
    // closure by one hop through the merged class — gets its closure
    // recomputed (parallel batch) and rechecked for new overlaps. Everything
    // else was already marked dirty by its own journal; shrink-only edits
    // cannot grow a closure, so their stale closure_bits stay conservative.
    auto t_dirty = now();
    std::vector<size_t> flagged;
    for (size_t i = 0; i < regions.size(); ++i) {
      RegionState& r = regions[i];
      if (!r.alive)
        continue;
      r.recompute = false;
      r.overlaps.clear();
      if (r.tree_cells.empty()) {
        // Every tree collapsed: nothing left to walk or to invalidate.
        r.dirty = false;
        r.closure_bits.clear();
        continue;
      }
      for (const SigBit& b : merge_bits)
        if (r.closure_bits.count(b)) {
          r.dirty = true;
          r.recompute = true;
          flagged.push_back(i);
          break;
        }
    }
    pool.run_batch(flagged.size(), [&](int, size_t i) {
      const size_t self = flagged[i];
      regions[self].overlaps =
          refresh_closure(regions[self], self, index, region_of, options_.ball_radius);
    });

    // Serial merge pass, ascending region id (deterministic). Merges are
    // rare; merged regions start from a fresh oracle, which re-derives
    // rather than re-uses — identical either way.
    std::deque<size_t> recheck;
    for (size_t i = 0; i < regions.size(); ++i)
      if (regions[i].alive && regions[i].recompute && !regions[i].overlaps.empty())
        recheck.push_back(i);
    while (!recheck.empty()) {
      const size_t rid = recheck.front();
      recheck.pop_front();
      RegionState& r = regions[rid];
      if (!r.alive)
        continue;
      std::unordered_set<size_t> overlaps;
      for (size_t o : r.overlaps)
        if (regions[o].alive && o != rid)
          overlaps.insert(o);
      r.overlaps.clear();
      if (overlaps.empty())
        continue;
      size_t target = rid;
      for (size_t o : overlaps)
        target = std::min(target, o);
      overlaps.insert(rid);
      overlaps.erase(target);
      RegionState& into = regions[target];
      for (size_t o : overlaps) {
        RegionState& victim = regions[o];
        victim.alive = false;
        into.roots.insert(into.roots.end(), victim.roots.begin(), victim.roots.end());
        into.tree_cells.insert(into.tree_cells.end(), victim.tree_cells.begin(),
                               victim.tree_cells.end());
        into.closure_bits.insert(victim.closure_bits.begin(), victim.closure_bits.end());
        for (Cell* c : victim.tree_cells)
          region_of[c] = target;
        victim.roots.clear();
        victim.tree_cells.clear();
        victim.closure_bits.clear();
        victim.oracle = nullptr; // retired oracle stays in oracles_ for stats
        ++stats.region_merges;
      }
      std::sort(into.roots.begin(), into.roots.end(), [&](Cell* a, Cell* b) {
        return stable_order.at(a) < stable_order.at(b);
      });
      into.oracle = nullptr; // constituents' caches cannot be merged
      into.dirty = true;
      // The union's closure needs its own overlap pass (rare path: serial).
      into.overlaps = refresh_closure(into, target, index, region_of, options_.ball_radius);
      if (!into.overlaps.empty())
        recheck.push_back(target);
    }
    if (!options_.requeue_dirty_only) {
      // Walk-everything fixpoint (differential/debug mode): clean-region
      // walks are pure no-op replays, so this cannot change the result.
      for (RegionState& r : regions)
        if (r.alive && !r.tree_cells.empty())
          r.dirty = true;
    }
    if (debug_timing)
      std::fprintf(stderr,
                   "sweep iter %zu: walks %zu, walk %.4fs, apply %.4fs, forest %.4fs, "
                   "dirty %.4fs (flagged %zu), total %.4fs\n",
                   iter, work.size(), walk_secs, apply_secs, forest_secs, secs(t_dirty),
                   flagged.size(), secs(t_iter));
  }

  // Barrier-time totals: each is a pure function of the deterministic stats
  // struct, so the metric values match at every thread count.
  static obs::Counter& m_iterations = obs::counter("sweep.iterations");
  static obs::Counter& m_walks = obs::counter("sweep.region_walks");
  static obs::Counter& m_clean = obs::counter("sweep.regions_skipped_clean");
  static obs::Counter& m_merges = obs::counter("sweep.region_merges");
  static obs::Counter& m_regions = obs::counter("sweep.regions");
  m_iterations.add(stats.walker.iterations);
  m_walks.add(stats.region_walks);
  m_clean.add(stats.regions_skipped_clean);
  m_merges.add(stats.region_merges);
  m_regions.add(stats.regions);
  return stats;
}

ParallelSweepStats parallel_sweep(rtlil::Module& module, const ParallelSweepOptions& options,
                                  DecisionTrace* trace) {
  ParallelSweepEngine engine(module, options);
  return engine.run(trace);
}

} // namespace smartly::opt
