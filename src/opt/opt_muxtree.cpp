#include "opt/opt_muxtree.hpp"

namespace smartly::opt {

MuxtreeStats opt_muxtree(rtlil::Module& module) {
  SyntacticOracle oracle;
  return optimize_muxtrees(module, oracle);
}

} // namespace smartly::opt
