// Optimization pipelines reproducing the paper's experimental flows.
//
// Paper §IV.A: "We replaced the opt_muxtree pass in Yosys with smaRTLy and
// used the built-in command aigmap in Yosys to convert netlists into AIG."
// Both arms therefore share the same coarse cleanup; only the muxtree step
// differs.
#pragma once

#include "opt/muxtree_walker.hpp"
#include "opt/transaction.hpp"
#include "rewrite/rewrite_engine.hpp"
#include "rtlil/module.hpp"
#include "sweep/fraig_engine.hpp"

namespace smartly::opt {

/// opt_expr + opt_merge + opt_clean to fixpoint (shared by both arms).
void coarse_opt(rtlil::Module& module);

/// SAT-sweeping stage: fraig the whole netlist, then sweep the cones the
/// merges disconnected. Runnable before or after either muxtree flow — the
/// engines are orthogonal (muxtree passes remove never-active branches,
/// fraig removes duplicate/complement/constant cones).
///
/// With a non-null, enabled recovery context the stage runs inside a
/// StageTransaction (snapshot / rollback / quarantine / retry; see
/// opt/transaction.hpp) with the context's quarantine set threaded into the
/// engine. A skipped stage returns zeroed stats and leaves the module at its
/// pre-stage image.
sweep::FraigStats fraig_stage(rtlil::Module& module, const sweep::FraigOptions& options = {},
                              RecoveryContext* recovery = nullptr);

/// DAG-aware cut-rewriting stage: restructure 4-feasible cones through the
/// NPN replacement library, then sweep the predicted-dead cones the commits
/// disconnected. Orthogonal to fraig: fraig merges logic that is already
/// equivalent, rewrite re-expresses logic that is merely suboptimal.
/// Recovery semantics as for fraig_stage.
rewrite::RewriteStats rewrite_stage(rtlil::Module& module,
                                    const rewrite::RewriteOptions& options = {},
                                    RecoveryContext* recovery = nullptr);

/// The deep-optimization convergence loop: fraig -> rewrite, repeated while
/// the rewrite stage still commits, with a final fraig pass so merges the
/// restructuring exposed are harvested. Every stage is deterministic, so the
/// loop is too.
struct DeepOptOptions {
  sweep::FraigOptions fraig;
  rewrite::RewriteOptions rewrite;
  size_t max_iterations = 2; ///< fraig+rewrite pairs before the final fraig
  /// Shared recovery state (not owned; may be null). When enabled, every
  /// fraig/rewrite stage of the loop runs transactionally and the quarantine
  /// set accumulates across stages and iterations.
  RecoveryContext* recovery = nullptr;
};

struct DeepOptStats {
  sweep::FraigStats fraig;
  rewrite::RewriteStats rewrite;
  size_t iterations = 0; ///< fraig+rewrite pairs executed
};

DeepOptStats fraig_rewrite_loop(rtlil::Module& module, const DeepOptOptions& options = {});

/// The baseline flow: coarse_opt, Yosys-style opt_muxtree, post cleanup.
/// Returns the muxtree statistics.
MuxtreeStats yosys_flow(rtlil::Module& module);

/// "Original" metric flow: no optimization beyond dead-cell removal.
void original_flow(rtlil::Module& module);

} // namespace smartly::opt
