// Optimization pipelines reproducing the paper's experimental flows.
//
// Paper §IV.A: "We replaced the opt_muxtree pass in Yosys with smaRTLy and
// used the built-in command aigmap in Yosys to convert netlists into AIG."
// Both arms therefore share the same coarse cleanup; only the muxtree step
// differs.
#pragma once

#include "opt/muxtree_walker.hpp"
#include "rtlil/module.hpp"
#include "sweep/fraig_engine.hpp"

namespace smartly::opt {

/// opt_expr + opt_merge + opt_clean to fixpoint (shared by both arms).
void coarse_opt(rtlil::Module& module);

/// SAT-sweeping stage: fraig the whole netlist, then sweep the cones the
/// merges disconnected. Runnable before or after either muxtree flow — the
/// engines are orthogonal (muxtree passes remove never-active branches,
/// fraig removes duplicate/complement/constant cones).
sweep::FraigStats fraig_stage(rtlil::Module& module, const sweep::FraigOptions& options = {});

/// The baseline flow: coarse_opt, Yosys-style opt_muxtree, post cleanup.
/// Returns the muxtree statistics.
MuxtreeStats yosys_flow(rtlil::Module& module);

/// "Original" metric flow: no optimization beyond dead-cell removal.
void original_flow(rtlil::Module& module);

} // namespace smartly::opt
