#include "cec/cec.hpp"

#include "aig/aigmap.hpp"
#include "aig/cnf.hpp"
#include "sat/solver.hpp"
#include "util/log.hpp"

#include <stdexcept>
#include <unordered_map>

namespace smartly::cec {

using aig::AigMap;

namespace {

/// The two designs must expose the same ports with the same widths and
/// directions — otherwise "equivalence" is not even well-posed.
void check_interfaces(const rtlil::Module& gold, const rtlil::Module& gate) {
  auto describe = [](const rtlil::Wire* w) {
    return w->name() + "[" + std::to_string(w->width()) + "]" +
           (w->port_input ? ":in" : ":out");
  };
  std::unordered_map<std::string, const rtlil::Wire*> gate_ports;
  for (const rtlil::Wire* w : gate.ports())
    gate_ports.emplace(w->name(), w);
  size_t matched = 0;
  for (const rtlil::Wire* w : gold.ports()) {
    auto it = gate_ports.find(w->name());
    if (it == gate_ports.end())
      throw std::invalid_argument("CEC: gate design is missing port " + describe(w));
    const rtlil::Wire* g = it->second;
    if (g->width() != w->width() || g->port_input != w->port_input ||
        g->port_output != w->port_output)
      throw std::invalid_argument("CEC: port mismatch: gold " + describe(w) + " vs gate " +
                                  describe(g));
    ++matched;
  }
  if (matched != gate_ports.size()) {
    for (const auto& [name, w] : gate_ports)
      if (!gold.wire(name) || (!gold.wire(name)->port_input && !gold.wire(name)->port_output))
        throw std::invalid_argument("CEC: gold design is missing port " + describe(w));
  }
}

} // namespace

CecResult check_equivalence(const rtlil::Module& gold, const rtlil::Module& gate,
                            const CecOptions& options) {
  check_interfaces(gold, gate);

  // Both designs are blasted into ONE structurally hashed graph with inputs
  // unified by name. Identical cones therefore strash to the same literal,
  // and the corresponding miter legs vanish before any SAT work — which is
  // what makes checking a design against a lightly-optimized copy of itself
  // cheap even when it contains multipliers.
  aig::Aig graph;
  aig::SharedInputs inputs;
  const auto outs0 = aig::aigmap_shared(graph, inputs, gold);
  const auto outs1 = aig::aigmap_shared(graph, inputs, gate);

  std::unordered_map<std::string, aig::Lit> out1;
  for (const auto& [name, lit] : outs1)
    out1.emplace(name, lit);

  struct Pair {
    std::string name;
    aig::Lit diff;
  };
  std::vector<Pair> pairs;
  for (const auto& [name, lit] : outs0) {
    auto it = out1.find(name);
    if (it == out1.end()) {
      // Missing dff D-cones belong to registers proven dead and removed by
      // opt_clean; anything else is an interface violation.
      if (name.find(".D") == std::string::npos)
        throw std::invalid_argument("CEC: gate design lost output " + name);
      continue;
    }
    const aig::Lit diff = graph.xor_(lit, it->second);
    if (diff == aig::kFalse)
      continue; // structurally identical: proven without SAT
    pairs.push_back({name, diff});
  }

  CecResult result;
  if (pairs.empty()) {
    result.equivalent = true;
    return result;
  }

  // Prove the surviving miter legs one output at a time on a persistent
  // solver with cone-restricted encoding: each query touches only the two
  // implementations of one output (plus whatever earlier queries shared),
  // and learned clauses carry across outputs. This is dramatically cheaper
  // than one monolithic whole-graph miter once an optimization (the rewrite
  // engine especially) has restructured cones out of strash-equality — the
  // monolithic OR forced the solver to reason about every output at once.
  sat::Solver solver;
  if (options.guard != nullptr && options.guard->wants_interrupts())
    solver.set_interrupt_check([g = options.guard] { return g->poll(); });
  aig::ConeCnfEncoder enc(solver, graph);
  uint64_t conflicts_seen = 0;
  uint64_t propagations_seen = 0;
  for (const Pair& p : pairs) {
    // A halt (deadline, cancel, or a budget tripped by the engines upstream)
    // stops the proof here: remaining outputs stay unproven and the result
    // degrades to inconclusive instead of pretending equivalence.
    if (options.guard != nullptr && options.guard->poll()) {
      result.inconclusive = true;
      result.failing_output = p.name;
      return result;
    }
    if (options.conflict_budget >= 0)
      solver.set_conflict_budget(static_cast<int64_t>(solver.stats().conflicts) +
                                 options.conflict_budget);
    const sat::Lit d = enc.ensure(p.diff);
    const sat::Result r = solver.solve({d});
    if (options.guard != nullptr) {
      options.guard->charge_conflicts(solver.stats().conflicts - conflicts_seen);
      options.guard->charge_propagations(solver.stats().propagations - propagations_seen);
    }
    conflicts_seen = solver.stats().conflicts;
    propagations_seen = solver.stats().propagations;
    if (r == sat::Result::Unsat)
      continue;
    if (r == sat::Result::Unknown) {
      result.inconclusive = true;
      result.failing_output = p.name;
      return result;
    }

    result.equivalent = false;
    result.failing_output = p.name;
    // Inputs outside the encoded cone are unconstrained; report them as 0.
    std::unordered_map<uint32_t, bool> encoded;
    for (const uint32_t node : enc.encoded_inputs())
      encoded.emplace(node, true);
    for (const auto& [name, lit] : inputs.by_name) {
      bool value = false;
      if (encoded.count(aig::lit_node(lit))) {
        const sat::Lit l = enc.lit(lit);
        value = solver.model_value(sat::var(l)) != sat::sign(l);
      }
      result.counterexample.emplace_back(name, value);
    }
    return result;
  }
  result.equivalent = true;
  return result;
}

} // namespace smartly::cec
