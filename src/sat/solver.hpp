// A MiniSAT-style CDCL SAT solver.
//
// The paper uses MiniSAT v1.13 ("a SAT solver with conflict-clause
// minimization"); this is a from-scratch implementation of the same
// architecture: two-watched-literal propagation, first-UIP conflict analysis
// with recursive conflict-clause minimization, EVSIDS variable activities,
// phase saving, Luby restarts, and learnt-clause database reduction.
// Assumption-based incremental solving is supported (the redundancy
// elimination pass issues many queries against one sub-graph encoding).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace smartly::sat {

using Var = int32_t;

/// A literal encodes (variable, polarity) as 2*var + (negated ? 1 : 0).
struct Lit {
  int32_t x = -2;

  Lit() = default;
  Lit(Var v, bool negated) : x(v * 2 + (negated ? 1 : 0)) {}

  bool operator==(const Lit& o) const noexcept { return x == o.x; }
  bool operator!=(const Lit& o) const noexcept { return x != o.x; }
  bool operator<(const Lit& o) const noexcept { return x < o.x; }
};

inline Lit mk_lit(Var v, bool negated = false) { return Lit(v, negated); }
inline Lit operator~(Lit l) { Lit r; r.x = l.x ^ 1; return r; }
inline bool sign(Lit l) noexcept { return l.x & 1; }       // true = negated
inline Var var(Lit l) noexcept { return l.x >> 1; }
inline int to_index(Lit l) noexcept { return l.x; }
const Lit lit_undef{};

enum class Result { Sat, Unsat, Unknown };

/// Ternary assignment value.
enum class LBool : uint8_t { True, False, Undef };
inline LBool lbool_from(bool b) { return b ? LBool::True : LBool::False; }
inline LBool operator^(LBool v, bool flip) {
  if (v == LBool::Undef)
    return v;
  return lbool_from((v == LBool::True) != flip);
}

struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnts_literals = 0;
  uint64_t minimized_literals = 0; ///< removed by conflict-clause minimization
};

class Solver {
public:
  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  Var new_var();
  int num_vars() const noexcept { return static_cast<int>(assigns_.size()); }

  /// Add a clause (top-level). Returns false if the database became
  /// trivially unsatisfiable.
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

  /// Solve under assumptions. Returns Unknown only when a conflict budget is
  /// set and exhausted.
  Result solve(const std::vector<Lit>& assumptions = {});

  /// After Result::Sat: value of a variable in the model.
  bool model_value(Var v) const { return model_.at(static_cast<size_t>(v)) == LBool::True; }

  /// Limit the number of conflicts for the next solve() calls (-1 = off).
  void set_conflict_budget(int64_t budget) noexcept { conflict_budget_ = budget; }

  /// Limit the number of propagations for the next solve() calls (-1 = off).
  /// Like the conflict budget this is an absolute threshold against the
  /// cumulative stats() counter, so callers re-arm it per query.
  void set_propagation_budget(int64_t budget) noexcept { propagation_budget_ = budget; }

  /// Install a callback polled periodically during search; returning true
  /// aborts the in-flight solve with Result::Unknown. Used for wall-clock
  /// deadlines and cooperative cancellation — both inherently
  /// nondeterministic, so deterministic flows leave this unset.
  void set_interrupt_check(std::function<bool()> cb) { interrupt_check_ = std::move(cb); }

  bool okay() const noexcept { return ok_; }
  const SolverStats& stats() const noexcept { return stats_; }

private:
  struct Clause;
  struct Watcher {
    Clause* clause;
    Lit blocker;
  };

  LBool value(Lit l) const {
    return assigns_[static_cast<size_t>(var(l))] ^ sign(l);
  }
  LBool value(Var v) const { return assigns_[static_cast<size_t>(v)]; }

  void attach_clause(Clause* c);
  void detach_clause(Clause* c);
  void remove_clause(Clause* c);
  bool satisfied(const Clause& c) const;

  void unchecked_enqueue(Lit l, Clause* reason);
  bool enqueue(Lit l, Clause* reason);
  Clause* propagate();
  void cancel_until(int level);
  Lit pick_branch_lit();
  void analyze(Clause* confl, std::vector<Lit>& out_learnt, int& out_btlevel);
  bool lit_redundant(Lit l, uint32_t abstract_levels);
  void reduce_db();
  Result search(int64_t nof_conflicts);

  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ *= (1.0 / 0.95); }
  void cla_bump_activity(Clause& c);
  void cla_decay_activity() { cla_inc_ *= (1.0 / 0.999); }

  // order heap (max-heap on activity)
  void heap_insert(Var v);
  void heap_update(Var v);
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  Var heap_pop();
  bool heap_empty() const noexcept { return heap_.empty(); }

  int decision_level() const noexcept { return static_cast<int>(trail_lim_.size()); }
  int level(Var v) const { return level_[static_cast<size_t>(v)]; }
  uint32_t abstract_level(Var v) const { return 1u << (level(v) & 31); }

  // database
  std::vector<Clause*> clauses_; ///< problem clauses
  std::vector<Clause*> learnts_;
  std::vector<std::vector<Watcher>> watches_; ///< indexed by literal

  // assignment state
  std::vector<LBool> assigns_;
  std::vector<uint8_t> polarity_; ///< saved phase (1 = last assigned false)
  std::vector<Clause*> reason_;
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  // VSIDS
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<int> heap_pos_; ///< -1 when not in heap

  // analyze temporaries
  std::vector<uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;

  std::vector<Lit> assumptions_;
  std::vector<LBool> model_;

  bool budgets_exhausted() const noexcept {
    return (conflict_budget_ >= 0 &&
            static_cast<int64_t>(stats_.conflicts) > conflict_budget_) ||
           (propagation_budget_ >= 0 &&
            static_cast<int64_t>(stats_.propagations) > propagation_budget_);
  }

  bool ok_ = true;
  int64_t conflict_budget_ = -1;
  int64_t propagation_budget_ = -1;
  std::function<bool()> interrupt_check_;
  bool interrupted_ = false;
  double max_learnts_ = 0;
  double learnt_adjust_cnt_ = 100;
  double learnt_adjust_confl_ = 100;
  SolverStats stats_;
};

} // namespace smartly::sat
