#include "sat/dimacs.hpp"

#include <sstream>
#include <stdexcept>

namespace smartly::sat {

DimacsProblem parse_dimacs(const std::string& text) {
  DimacsProblem p;
  std::istringstream in(text);
  std::string tok;
  bool have_header = false;
  int declared_clauses = 0;
  std::vector<Lit> clause;

  while (in >> tok) {
    if (tok == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (tok == "p") {
      std::string kind;
      if (!(in >> kind >> p.num_vars >> declared_clauses) || kind != "cnf")
        throw std::runtime_error("dimacs: malformed problem line");
      if (p.num_vars < 0 || declared_clauses < 0)
        throw std::runtime_error("dimacs: negative counts");
      have_header = true;
      continue;
    }
    if (!have_header)
      throw std::runtime_error("dimacs: clause before header");
    int64_t v = 0;
    try {
      v = std::stoll(tok);
    } catch (const std::exception&) {
      throw std::runtime_error("dimacs: bad literal '" + tok + "'");
    }
    if (v == 0) {
      p.clauses.push_back(clause);
      clause.clear();
      continue;
    }
    const int64_t var = v < 0 ? -v : v;
    if (var > p.num_vars)
      throw std::runtime_error("dimacs: literal exceeds declared variable count");
    clause.push_back(mk_lit(static_cast<Var>(var - 1), v < 0));
  }
  if (!have_header)
    throw std::runtime_error("dimacs: missing header");
  if (!clause.empty())
    throw std::runtime_error("dimacs: unterminated clause");
  if (static_cast<int>(p.clauses.size()) != declared_clauses)
    throw std::runtime_error("dimacs: clause count mismatch");
  return p;
}

bool load_dimacs(Solver& solver, const DimacsProblem& problem) {
  while (solver.num_vars() < problem.num_vars)
    solver.new_var();
  for (const auto& clause : problem.clauses)
    if (!solver.add_clause(clause))
      return false;
  return true;
}

std::string write_dimacs(const DimacsProblem& problem) {
  std::ostringstream out;
  out << "p cnf " << problem.num_vars << " " << problem.clauses.size() << "\n";
  for (const auto& clause : problem.clauses) {
    for (const Lit& l : clause)
      out << (sign(l) ? -(var(l) + 1) : (var(l) + 1)) << " ";
    out << "0\n";
  }
  return out.str();
}

} // namespace smartly::sat
