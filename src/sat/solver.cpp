#include "sat/solver.hpp"

#include "util/luby.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace smartly::sat {

struct Solver::Clause {
  float activity = 0.0f;
  bool learnt = false;
  bool deleted = false;
  std::vector<Lit> lits;

  int size() const noexcept { return static_cast<int>(lits.size()); }
  Lit& operator[](int i) { return lits[static_cast<size_t>(i)]; }
  Lit operator[](int i) const { return lits[static_cast<size_t>(i)]; }
};

Solver::Solver() = default;

Solver::~Solver() {
  for (Clause* c : clauses_)
    delete c;
  for (Clause* c : learnts_)
    delete c;
}

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(LBool::Undef);
  polarity_.push_back(1); // default phase: false (MiniSAT default)
  reason_.push_back(nullptr);
  level_.push_back(0);
  activity_.push_back(0.0);
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_)
    return false;

  // Sort, dedup, drop false literals, detect tautology / satisfied clause.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev = lit_undef;
  for (Lit l : lits) {
    if (value(l) == LBool::True || l == ~prev)
      return true; // clause already satisfied or tautological
    if (value(l) != LBool::False && l != prev)
      out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    unchecked_enqueue(out[0], nullptr);
    ok_ = (propagate() == nullptr);
    return ok_;
  }

  auto* c = new Clause();
  c->lits = std::move(out);
  clauses_.push_back(c);
  attach_clause(c);
  return true;
}

void Solver::attach_clause(Clause* c) {
  assert(c->size() >= 2);
  watches_[static_cast<size_t>(to_index(~(*c)[0]))].push_back({c, (*c)[1]});
  watches_[static_cast<size_t>(to_index(~(*c)[1]))].push_back({c, (*c)[0]});
}

void Solver::detach_clause(Clause* c) {
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[static_cast<size_t>(to_index(~(*c)[i]))];
    for (size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].clause == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::remove_clause(Clause* c) {
  detach_clause(c);
  c->deleted = true;
  delete c;
}

bool Solver::satisfied(const Clause& c) const {
  for (int i = 0; i < c.size(); ++i)
    if (value(c[i]) == LBool::True)
      return true;
  return false;
}

void Solver::unchecked_enqueue(Lit l, Clause* reason) {
  assert(value(l) == LBool::Undef);
  const Var v = var(l);
  assigns_[static_cast<size_t>(v)] = lbool_from(!sign(l));
  reason_[static_cast<size_t>(v)] = reason;
  level_[static_cast<size_t>(v)] = decision_level();
  trail_.push_back(l);
}

bool Solver::enqueue(Lit l, Clause* reason) {
  if (value(l) != LBool::Undef)
    return value(l) != LBool::False;
  unchecked_enqueue(l, reason);
  return true;
}

Solver::Clause* Solver::propagate() {
  Clause* confl = nullptr;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[static_cast<size_t>(to_index(p))];
    size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = *w.clause;
      // Make sure the false literal is at position 1.
      const Lit false_lit = ~p;
      if (c[0] == false_lit)
        std::swap(c[0], c[1]);
      assert(c[1] == false_lit);
      ++i;

      const Lit first = c[0];
      if (first != w.blocker && value(first) == LBool::True) {
        ws[j++] = {&c, first};
        continue;
      }

      // Look for a new literal to watch.
      bool found = false;
      for (int k = 2; k < c.size(); ++k) {
        if (value(c[k]) != LBool::False) {
          std::swap(c[1], c[k]);
          watches_[static_cast<size_t>(to_index(~c[1]))].push_back({&c, first});
          found = true;
          break;
        }
      }
      if (found)
        continue;

      // Clause is unit or conflicting.
      ws[j++] = {&c, first};
      if (value(first) == LBool::False) {
        confl = &c;
        qhead_ = trail_.size();
        while (i < ws.size())
          ws[j++] = ws[i++];
      } else {
        unchecked_enqueue(first, &c);
      }
    }
    ws.resize(j);
    if (confl)
      break;
  }
  return confl;
}

void Solver::cancel_until(int lvl) {
  if (decision_level() <= lvl)
    return;
  for (size_t c = trail_.size(); c-- > static_cast<size_t>(trail_lim_[static_cast<size_t>(lvl)]);) {
    const Var v = var(trail_[c]);
    polarity_[static_cast<size_t>(v)] = static_cast<uint8_t>(sign(trail_[c]));
    assigns_[static_cast<size_t>(v)] = LBool::Undef;
    reason_[static_cast<size_t>(v)] = nullptr;
    if (heap_pos_[static_cast<size_t>(v)] < 0)
      heap_insert(v);
  }
  qhead_ = static_cast<size_t>(trail_lim_[static_cast<size_t>(lvl)]);
  trail_.resize(qhead_);
  trail_lim_.resize(static_cast<size_t>(lvl));
}

Lit Solver::pick_branch_lit() {
  Var next = -1;
  while (next == -1 || value(next) != LBool::Undef) {
    if (heap_empty())
      return lit_undef;
    next = heap_pop();
  }
  return mk_lit(next, polarity_[static_cast<size_t>(next)] != 0);
}

void Solver::analyze(Clause* confl, std::vector<Lit>& out_learnt, int& out_btlevel) {
  int path_c = 0;
  Lit p = lit_undef;
  out_learnt.clear();
  out_learnt.push_back(lit_undef); // placeholder for the asserting literal
  size_t index = trail_.size();

  Clause* reason = confl;
  do {
    assert(reason != nullptr);
    if (reason->learnt)
      cla_bump_activity(*reason);
    const int start = (p == lit_undef) ? 0 : 1;
    for (int j = start; j < reason->size(); ++j) {
      const Lit q = (*reason)[j];
      const Var v = var(q);
      if (!seen_[static_cast<size_t>(v)] && level(v) > 0) {
        var_bump_activity(v);
        seen_[static_cast<size_t>(v)] = 1;
        if (level(v) >= decision_level())
          ++path_c;
        else
          out_learnt.push_back(q);
      }
    }
    // Select next literal on the trail to expand.
    while (!seen_[static_cast<size_t>(var(trail_[index - 1]))])
      --index;
    --index;
    p = trail_[index];
    reason = reason_[static_cast<size_t>(var(p))];
    seen_[static_cast<size_t>(var(p))] = 0;
    --path_c;
  } while (path_c > 0);
  out_learnt[0] = ~p;

  // Conflict-clause minimization (recursive / "deep" mode).
  analyze_toclear_ = out_learnt;
  uint32_t abstract = 0;
  for (size_t i = 1; i < out_learnt.size(); ++i)
    abstract |= abstract_level(var(out_learnt[i]));
  size_t keep = 1;
  for (size_t i = 1; i < out_learnt.size(); ++i) {
    if (reason_[static_cast<size_t>(var(out_learnt[i]))] == nullptr ||
        !lit_redundant(out_learnt[i], abstract))
      out_learnt[keep++] = out_learnt[i];
  }
  stats_.minimized_literals += out_learnt.size() - keep;
  out_learnt.resize(keep);
  stats_.learnts_literals += out_learnt.size();

  // Find backtrack level (second-highest level in the clause).
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t i = 2; i < out_learnt.size(); ++i)
      if (level(var(out_learnt[i])) > level(var(out_learnt[max_i])))
        max_i = i;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(var(out_learnt[1]));
  }

  for (Lit l : analyze_toclear_)
    seen_[static_cast<size_t>(var(l))] = 0;
}

bool Solver::lit_redundant(Lit l, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    Clause* reason = reason_[static_cast<size_t>(var(q))];
    assert(reason != nullptr);
    for (int i = 1; i < reason->size(); ++i) {
      const Lit r = (*reason)[i];
      const Var v = var(r);
      if (seen_[static_cast<size_t>(v)] || level(v) == 0)
        continue;
      if (reason_[static_cast<size_t>(v)] != nullptr &&
          (abstract_level(v) & abstract_levels) != 0) {
        seen_[static_cast<size_t>(v)] = 1;
        analyze_stack_.push_back(r);
        analyze_toclear_.push_back(r);
      } else {
        // Not removable: undo the marks added in this call.
        for (size_t j = top; j < analyze_toclear_.size(); ++j)
          seen_[static_cast<size_t>(var(analyze_toclear_[j]))] = 0;
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::var_bump_activity(Var v) {
  if ((activity_[static_cast<size_t>(v)] += var_inc_) > 1e100) {
    for (double& a : activity_)
      a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[static_cast<size_t>(v)] >= 0)
    heap_update(v);
}

void Solver::cla_bump_activity(Clause& c) {
  if ((c.activity += static_cast<float>(cla_inc_)) > 1e20f) {
    for (Clause* cl : learnts_)
      cl->activity *= 1e-20f;
    cla_inc_ *= 1e-20;
  }
}

void Solver::reduce_db() {
  // Drop the least active half of the learnt clauses (never reasons).
  const double extra_lim = cla_inc_ / std::max<size_t>(learnts_.size(), 1);
  std::sort(learnts_.begin(), learnts_.end(), [](const Clause* a, const Clause* b) {
    if ((a->size() > 2) != (b->size() > 2))
      return a->size() > 2;
    return a->activity < b->activity;
  });
  std::vector<Clause*> kept;
  kept.reserve(learnts_.size());
  for (size_t i = 0; i < learnts_.size(); ++i) {
    Clause* c = learnts_[i];
    const bool locked = c->size() >= 1 && reason_[static_cast<size_t>(var((*c)[0]))] == c &&
                        value((*c)[0]) == LBool::True;
    if (c->size() > 2 && !locked &&
        (i < learnts_.size() / 2 || c->activity < extra_lim)) {
      remove_clause(c);
    } else {
      kept.push_back(c);
    }
  }
  learnts_.swap(kept);
}

Result Solver::search(int64_t nof_conflicts) {
  int64_t conflicts_here = 0;
  int interrupt_countdown = 128;
  std::vector<Lit> learnt_clause;

  for (;;) {
    Clause* confl = propagate();
    if (confl != nullptr) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (decision_level() == 0)
        return Result::Unsat;

      int backtrack_level = 0;
      analyze(confl, learnt_clause, backtrack_level);
      cancel_until(backtrack_level);

      if (learnt_clause.size() == 1) {
        unchecked_enqueue(learnt_clause[0], nullptr);
      } else {
        auto* c = new Clause();
        c->learnt = true;
        c->lits = learnt_clause;
        learnts_.push_back(c);
        attach_clause(c);
        cla_bump_activity(*c);
        unchecked_enqueue(learnt_clause[0], c);
      }
      var_decay_activity();
      cla_decay_activity();

      if (--learnt_adjust_cnt_ <= 0) {
        learnt_adjust_confl_ *= 1.5;
        learnt_adjust_cnt_ = learnt_adjust_confl_;
        max_learnts_ *= 1.1;
      }
      continue;
    }

    // No conflict.
    if ((nof_conflicts >= 0 && conflicts_here >= nof_conflicts)) {
      cancel_until(0);
      return Result::Unknown;
    }
    if (budgets_exhausted()) {
      cancel_until(0);
      return Result::Unknown;
    }
    // Poll the interrupt hook every 128 decisions: frequent enough for
    // deadline responsiveness, rare enough that the std::function call
    // disappears against propagation cost.
    if (interrupt_check_ && --interrupt_countdown <= 0) {
      interrupt_countdown = 128;
      if (interrupt_check_()) {
        interrupted_ = true;
        cancel_until(0);
        return Result::Unknown;
      }
    }
    if (static_cast<double>(learnts_.size()) - static_cast<double>(trail_.size()) >=
        max_learnts_)
      reduce_db();

    Lit next = lit_undef;
    while (decision_level() < static_cast<int>(assumptions_.size())) {
      const Lit a = assumptions_[static_cast<size_t>(decision_level())];
      if (value(a) == LBool::True) {
        trail_lim_.push_back(static_cast<int>(trail_.size())); // dummy level
      } else if (value(a) == LBool::False) {
        return Result::Unsat; // conflicting assumption
      } else {
        next = a;
        break;
      }
    }

    if (next == lit_undef) {
      ++stats_.decisions;
      next = pick_branch_lit();
      if (next == lit_undef) {
        // All variables assigned: model found.
        model_.assign(assigns_.begin(), assigns_.end());
        return Result::Sat;
      }
    }

    trail_lim_.push_back(static_cast<int>(trail_.size()));
    unchecked_enqueue(next, nullptr);
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  if (!ok_)
    return Result::Unsat;
  assumptions_ = assumptions;
  model_.clear();
  max_learnts_ = std::max(static_cast<double>(clauses_.size()) / 3.0, 1000.0);
  learnt_adjust_confl_ = 100;
  learnt_adjust_cnt_ = 100;

  interrupted_ = false;
  Result status = Result::Unknown;
  for (uint64_t restarts = 0; status == Result::Unknown; ++restarts) {
    const int64_t budget = static_cast<int64_t>(luby(restarts) * 100);
    status = search(budget);
    if (status == Result::Unknown)
      ++stats_.restarts;
    if (budgets_exhausted() || interrupted_)
      break;
  }
  cancel_until(0);
  return status;
}

// --- order heap (max-heap on activity) -------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[static_cast<size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_percolate_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_update(Var v) {
  const int i = heap_pos_[static_cast<size_t>(v)];
  if (i >= 0) {
    heap_percolate_up(i);
    heap_percolate_down(heap_pos_[static_cast<size_t>(v)]);
  }
}

void Solver::heap_percolate_up(int i) {
  const Var v = heap_[static_cast<size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[static_cast<size_t>(heap_[static_cast<size_t>(parent)])] >=
        activity_[static_cast<size_t>(v)])
      break;
    heap_[static_cast<size_t>(i)] = heap_[static_cast<size_t>(parent)];
    heap_pos_[static_cast<size_t>(heap_[static_cast<size_t>(i)])] = i;
    i = parent;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_pos_[static_cast<size_t>(v)] = i;
}

void Solver::heap_percolate_down(int i) {
  const Var v = heap_[static_cast<size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n)
      break;
    if (child + 1 < n && activity_[static_cast<size_t>(heap_[static_cast<size_t>(child + 1)])] >
                             activity_[static_cast<size_t>(heap_[static_cast<size_t>(child)])])
      ++child;
    if (activity_[static_cast<size_t>(heap_[static_cast<size_t>(child)])] <=
        activity_[static_cast<size_t>(v)])
      break;
    heap_[static_cast<size_t>(i)] = heap_[static_cast<size_t>(child)];
    heap_pos_[static_cast<size_t>(heap_[static_cast<size_t>(i)])] = i;
    i = child;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_pos_[static_cast<size_t>(v)] = i;
}

Var Solver::heap_pop() {
  const Var v = heap_[0];
  heap_pos_[static_cast<size_t>(v)] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[static_cast<size_t>(heap_[0])] = 0;
    heap_.pop_back();
    heap_percolate_down(0);
  } else {
    heap_.pop_back();
  }
  return v;
}

} // namespace smartly::sat
