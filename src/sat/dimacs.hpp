// DIMACS CNF I/O for the SAT solver.
//
// The standard interchange format lets the embedded CDCL solver be checked
// against external solvers (minisat, kissat, ...) and lets external CNF
// benchmarks drive it. `parse_dimacs` loads a problem into a fresh solver;
// `write_dimacs` serializes a clause list.
#pragma once

#include "sat/solver.hpp"

#include <string>
#include <vector>

namespace smartly::sat {

struct DimacsProblem {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parse DIMACS CNF text ("c" comments, "p cnf V C" header, 0-terminated
/// clauses). Throws std::runtime_error on malformed input.
DimacsProblem parse_dimacs(const std::string& text);

/// Load a parsed problem into `solver` (creates variables 0..num_vars-1).
/// Returns false if the database is trivially unsatisfiable.
bool load_dimacs(Solver& solver, const DimacsProblem& problem);

/// Serialize to DIMACS text.
std::string write_dimacs(const DimacsProblem& problem);

} // namespace smartly::sat
