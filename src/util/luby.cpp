#include "util/luby.hpp"

namespace smartly {

uint64_t luby(uint64_t i) noexcept {
  // 0-based index into the sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  // Standard recurrence on the 1-based index n: if n == 2^k - 1 the value is
  // 2^(k-1); otherwise recurse into the copy of the prefix starting at 2^(k-1).
  uint64_t n = i + 1;
  for (;;) {
    uint64_t k = 1;
    while ((uint64_t(1) << k) - 1 < n)
      ++k; // smallest k with 2^k - 1 >= n
    if ((uint64_t(1) << k) - 1 == n)
      return uint64_t(1) << (k - 1);
    n -= (uint64_t(1) << (k - 1)) - 1;
  }
}

} // namespace smartly
