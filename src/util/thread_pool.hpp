// A small work-stealing thread pool for batch-parallel passes.
//
// The parallel sweep engine dispatches coarse, unevenly-sized region tasks;
// work stealing keeps workers busy when one region dwarfs the rest. Tasks
// are identified by index into the current batch: each worker owns a deque
// seeded round-robin, pops its own back (LIFO, cache-warm), and steals from
// other workers' fronts (FIFO, the oldest — and statistically largest —
// leftovers). Which worker executes which task is scheduling noise; callers
// must keep task *results* schedule-independent (slot-per-task outputs).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace smartly::util {

/// Threads to use for `requested` (0 = one per hardware thread, floor 1).
int resolve_thread_count(int requested) noexcept;

class ThreadPool {
public:
  /// Spawns `threads - 1` workers; the caller's thread is worker 0 and
  /// participates in every batch. threads <= 1 means run_batch degenerates
  /// to a plain loop on the calling thread (no synchronization at all).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return threads_; }

  /// Run `fn(worker_id, task_index)` for every task_index in [0, n) and
  /// return when all have finished (a full barrier). worker_id is in
  /// [0, size()). Not reentrant: one batch at a time.
  ///
  /// Exception safety: if any task throws, the remaining not-yet-started
  /// tasks of the batch are skipped, the barrier still completes, and the
  /// exception is rethrown here on the calling thread. When several tasks
  /// throw, the one with the lowest task index that was observed wins (a
  /// best-effort tiebreak: exact choice can depend on scheduling).
  void run_batch(size_t n, const std::function<void(int, size_t)>& fn);

  /// A task's verdict in a requeue batch: Done retires it, Requeue puts it
  /// back onto the *front* of the executing worker's own deque — the end its
  /// owner pops last and thieves steal first — so a conflicted task drains
  /// after the worker's other local work instead of spinning hot.
  enum class TaskVerdict : uint8_t { Done, Requeue };

  /// run_batch with requeue-on-conflict work items: `fn` may return
  /// TaskVerdict::Requeue to have the task re-executed later in the same
  /// batch. The batch completes when every task has returned Done. Callers
  /// must guarantee a requeued task eventually returns Done (the rewrite
  /// engine's reservation protocol does: conflicts resolve in canonical-order
  /// priority, so the lowest-order pending task never requeues forever).
  /// Exception semantics match run_batch; a task that threw is retired, and
  /// tasks drained after a batch error are retired without running.
  void run_requeue_batch(size_t n, const std::function<TaskVerdict(int, size_t)>& fn);

private:
  struct WorkerQueue {
    std::deque<size_t> tasks;
    std::mutex mutex;
  };

  bool try_pop_own(int worker, size_t& task);
  bool try_steal(int worker, size_t& task);
  void worker_loop(int worker);
  void work_until_batch_done(int worker);

  int threads_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex batch_mutex_;
  std::condition_variable batch_start_;
  std::condition_variable batch_done_;
  const std::function<void(int, size_t)>* batch_fn_ = nullptr;
  const std::function<TaskVerdict(int, size_t)>* requeue_fn_ = nullptr;
  size_t batch_epoch_ = 0;
  size_t tasks_remaining_ = 0;
  std::exception_ptr batch_error_ = nullptr;
  size_t batch_error_task_ = 0;
  bool shutdown_ = false;
};

} // namespace smartly::util
