// Luby restart sequence (1,1,2,1,1,2,4,...) used by the CDCL solver.
#pragma once

#include <cstdint>

namespace smartly {

/// Returns the i-th element (0-based) of the Luby sequence.
uint64_t luby(uint64_t i) noexcept;

} // namespace smartly
