// Hash combinators shared across the library (strash tables, ADD memo, ...).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace smartly {

/// 64-bit mix (splitmix64 finalizer) — cheap avalanche for integer keys.
inline uint64_t hash_mix(uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t hash_combine(uint64_t seed, uint64_t v) noexcept {
  return hash_mix(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// 128-bit fingerprint for content-addressed caches (cone/sub-graph caches in
/// the incremental oracle). Two independently-seeded 64-bit streams: with ~2^5
/// cached entries per module a single 64-bit key would already be fine, but
/// the oracle treats fingerprint equality as structural identity (no stored
/// key to compare against), so collision probability must be negligible.
struct Hash128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const Hash128& o) const noexcept { return lo == o.lo && hi == o.hi; }
  bool operator!=(const Hash128& o) const noexcept { return !(*this == o); }
};

/// Order-sensitive accumulation (sequence hashing).
inline Hash128 hash128_combine(Hash128 seed, uint64_t v) noexcept {
  return {hash_combine(seed.lo, v), hash_combine(seed.hi, hash_mix(v ^ 0x6a09e667f3bcc909ULL))};
}

/// Order-insensitive accumulation (set hashing): commutative and associative,
/// so two containers holding the same elements in any order hash equally.
inline void hash128_mix_unordered(Hash128& acc, uint64_t v) noexcept {
  acc.lo += hash_mix(v);
  acc.hi += hash_mix(v ^ 0xbb67ae8584caa73bULL);
}

struct Hash128Hasher {
  size_t operator()(const Hash128& h) const noexcept {
    return static_cast<size_t>(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Deterministic xorshift RNG for generators & property tests
/// (std::mt19937 is avoided so streams are stable across platforms).
class Rng {
public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) noexcept : state_(seed ? seed : 1) {}

  uint64_t next() noexcept {
    uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return hash_mix(x);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t below(uint64_t n) noexcept { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) noexcept {
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

private:
  uint64_t state_;
};

} // namespace smartly
