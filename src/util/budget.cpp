#include "util/budget.hpp"

namespace smartly::util {

const char* budget_kind_name(BudgetKind kind) noexcept {
  switch (kind) {
  case BudgetKind::None: return "none";
  case BudgetKind::Conflicts: return "conflicts";
  case BudgetKind::Propagations: return "propagations";
  case BudgetKind::Growth: return "growth";
  case BudgetKind::Deadline: return "deadline";
  case BudgetKind::Cancelled: return "cancelled";
  case BudgetKind::Fault: return "fault";
  }
  return "none";
}

ResourceGuard::ResourceGuard(const ResourceBudgets& budgets, CancelToken* cancel)
    : budgets_(budgets), cancel_(cancel) {
  if (budgets_.deadline_ms >= 0) {
    deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(budgets_.deadline_ms);
    has_deadline_ = true;
  }
}

void ResourceGuard::trip(BudgetKind why) noexcept {
  int expected = 0;
  tripped_.compare_exchange_strong(expected, static_cast<int>(why), std::memory_order_acq_rel);
}

void ResourceGuard::note_fault(const char* site, uint64_t unit) noexcept {
  std::lock_guard<std::mutex> lock(fault_mu_);
  if (fault_.valid)
    return;
  fault_.valid = true;
  fault_.site = site;
  fault_.unit = unit;
}

FaultReport ResourceGuard::fault_report() const {
  std::lock_guard<std::mutex> lock(fault_mu_);
  return fault_;
}

void ResourceGuard::clear_fault_halt() noexcept {
  int expected = static_cast<int>(BudgetKind::Fault);
  tripped_.compare_exchange_strong(expected, 0, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_ = FaultReport{};
}

void ResourceGuard::set_growth_baseline(uint64_t cells) noexcept {
  uint64_t expected = 0;
  growth_baseline_.compare_exchange_strong(expected, cells, std::memory_order_acq_rel);
}

bool ResourceGuard::checkpoint(uint64_t current_cells) noexcept {
  if (halted())
    return true;
  if (budgets_.solver_conflicts >= 0 &&
      conflicts_.load(std::memory_order_relaxed) >
          static_cast<uint64_t>(budgets_.solver_conflicts)) {
    trip(BudgetKind::Conflicts);
    return true;
  }
  if (budgets_.solver_propagations >= 0 &&
      propagations_.load(std::memory_order_relaxed) >
          static_cast<uint64_t>(budgets_.solver_propagations)) {
    trip(BudgetKind::Propagations);
    return true;
  }
  if (budgets_.max_growth_pct >= 0 && current_cells > 0) {
    const uint64_t base = growth_baseline_.load(std::memory_order_acquire);
    if (base > 0) {
      // Trip when current > base * (1 + pct/100), in integer arithmetic.
      const uint64_t limit = base + base * static_cast<uint64_t>(budgets_.max_growth_pct) / 100;
      if (current_cells > limit) {
        trip(BudgetKind::Growth);
        return true;
      }
    }
  }
  return poll();
}

bool ResourceGuard::poll() noexcept {
  if (halted())
    return true;
  if (cancel_ != nullptr && cancel_->cancelled()) {
    trip(BudgetKind::Cancelled);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    trip(BudgetKind::Deadline);
    return true;
  }
  return false;
}

ResourceReport ResourceGuard::report() const {
  ResourceReport r;
  r.tripped = tripped();
  r.conflicts = conflicts_.load(std::memory_order_relaxed);
  r.propagations = propagations_.load(std::memory_order_relaxed);
  r.skipped_solves = skipped_solves_.load(std::memory_order_relaxed);
  r.skipped_merges = skipped_merges_.load(std::memory_order_relaxed);
  r.skipped_rewrites = skipped_rewrites_.load(std::memory_order_relaxed);
  r.skipped_regions = skipped_regions_.load(std::memory_order_relaxed);
  r.halted_engines = halted_engines_.load(std::memory_order_relaxed);
  return r;
}

} // namespace smartly::util
