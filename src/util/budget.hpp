// Resource governance for the optimization engines.
//
// A ResourceGuard carries per-run budgets (solver conflicts/propagations,
// netlist growth) plus an opt-in wall-clock deadline and a cooperative
// CancelToken, and is threaded by pointer through every engine. Engines
// *charge* work from any thread via lock-free counters, but *deterministic*
// budgets are only evaluated at single-threaded barrier points
// (checkpoint()): the charged totals at a barrier are a sum of completed
// atomic adds and therefore scheduling-independent, so the same budgets trip
// at the same round on every thread count. Once a budget trips, the halt
// flag is sticky: engines stop taking new merges/rewrites, flush their
// journals in canonical order, and return a valid, CEC-equivalent netlist.
//
// poll() additionally checks the deadline and the cancel token from worker
// threads; those two are the only knowingly nondeterministic halt sources
// (documented in README "Resource budgets").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace smartly::util {

/// Budget limits for one optimization run. -1 (or 0 for growth) = unlimited.
struct ResourceBudgets {
  int64_t solver_conflicts = -1;    ///< total CDCL conflicts across all solvers
  int64_t solver_propagations = -1; ///< total BCP propagations across all solvers
  int64_t max_growth_pct = -1;      ///< cap on cell-count growth over the baseline, in percent
  int64_t deadline_ms = -1;         ///< wall-clock deadline (nondeterministic!)

  bool any() const noexcept {
    return solver_conflicts >= 0 || solver_propagations >= 0 || max_growth_pct >= 0 ||
           deadline_ms >= 0;
  }
};

/// Cooperative cancellation: set from any thread, observed by guard.poll().
class CancelToken {
public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_acquire); }

private:
  std::atomic<bool> cancelled_{false};
};

/// Which budget tripped first (sticky).
enum class BudgetKind : int {
  None = 0,
  Conflicts,
  Propagations,
  Growth,
  Deadline,
  Cancelled,
  Fault, ///< halt forced by the fault-injection harness
};

const char* budget_kind_name(BudgetKind kind) noexcept;

/// Snapshot of a guard's charged totals, for stats and BENCH_*.json.
struct ResourceReport {
  BudgetKind tripped = BudgetKind::None;
  uint64_t conflicts = 0;
  uint64_t propagations = 0;
  uint64_t skipped_solves = 0;   ///< SAT queries answered Unknown without solving
  uint64_t skipped_merges = 0;   ///< fraig merges abandoned after the halt
  uint64_t skipped_rewrites = 0; ///< rewrite candidates abandoned after the halt
  uint64_t skipped_regions = 0;  ///< sweep regions left unvisited after the halt
  uint64_t halted_engines = 0;   ///< engines that observed the halt and stopped early

  bool halted() const noexcept { return tripped != BudgetKind::None; }
};

/// First-wins record of the fault that halted an engine: the injection site
/// and the stable unit id of the work item (0 when the site has none). The
/// recovery layer reads this at the stage barrier to decide what to
/// quarantine before retrying.
struct FaultReport {
  bool valid = false;
  std::string site;
  uint64_t unit = 0;
};

class ResourceGuard {
public:
  /// Default: unlimited, never halts on its own (cancel token still works).
  ResourceGuard() = default;
  explicit ResourceGuard(const ResourceBudgets& budgets, CancelToken* cancel = nullptr);

  const ResourceBudgets& budgets() const noexcept { return budgets_; }

  // --- charging: lock-free, callable from any worker thread -----------------
  void charge_conflicts(uint64_t n) noexcept {
    conflicts_.fetch_add(n, std::memory_order_relaxed);
  }
  void charge_propagations(uint64_t n) noexcept {
    propagations_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_skipped_solves(uint64_t n = 1) noexcept {
    skipped_solves_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_skipped_merges(uint64_t n) noexcept {
    skipped_merges_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_skipped_rewrites(uint64_t n) noexcept {
    skipped_rewrites_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_skipped_regions(uint64_t n) noexcept {
    skipped_regions_.fetch_add(n, std::memory_order_relaxed);
  }
  void note_halted_engine() noexcept {
    halted_engines_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Record the pre-optimization cell count the growth budget is relative to.
  /// First caller wins (the top-level pass), so nested stages share one base.
  void set_growth_baseline(uint64_t cells) noexcept;

  // --- checks ---------------------------------------------------------------

  /// Deterministic checkpoint. MUST be called only from single-threaded
  /// barrier code (between parallel phases): it compares the charged totals —
  /// which are scheduling-independent at a barrier — against the budgets and
  /// arms the sticky halt flag. Pass the current cell count to also apply the
  /// growth budget (0 = skip growth). Returns halted().
  bool checkpoint(uint64_t current_cells = 0) noexcept;

  /// Nondeterministic poll: deadline + cancellation only. Safe (and cheap)
  /// to call from worker threads mid-phase; also observes the sticky flag.
  bool poll() noexcept;

  /// Whether poll() can newly trip mid-phase (deadline or cancel token
  /// present). Engines install solver interrupt hooks only in that case —
  /// deterministic-budget-only runs skip the per-solve polling entirely.
  bool wants_interrupts() const noexcept { return has_deadline_ || cancel_ != nullptr; }

  /// Sticky halt state.
  bool halted() const noexcept { return tripped_.load(std::memory_order_acquire) != 0; }
  BudgetKind tripped() const noexcept {
    return static_cast<BudgetKind>(tripped_.load(std::memory_order_acquire));
  }

  /// Force a halt (cancellation relay, fault injection).
  void halt(BudgetKind why) noexcept { trip(why); }

  /// Record which fault halted the engine (first report wins). Callable from
  /// worker threads; the mutex is cold — faults are the exceptional path.
  void note_fault(const char* site, uint64_t unit) noexcept;
  FaultReport fault_report() const;

  /// Reset a BudgetKind::Fault trip (and the fault report) so a rolled-back
  /// stage can be retried. Real budget trips (conflicts, deadline, ...) stay
  /// sticky: those are sound degradation, not wrongness, and must not be
  /// cleared by the recovery layer.
  void clear_fault_halt() noexcept;

  ResourceReport report() const;

private:
  void trip(BudgetKind why) noexcept;

  ResourceBudgets budgets_;
  CancelToken* cancel_ = nullptr;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  std::atomic<int> tripped_{0};
  std::atomic<uint64_t> conflicts_{0};
  std::atomic<uint64_t> propagations_{0};
  std::atomic<uint64_t> skipped_solves_{0};
  std::atomic<uint64_t> skipped_merges_{0};
  std::atomic<uint64_t> skipped_rewrites_{0};
  std::atomic<uint64_t> skipped_regions_{0};
  std::atomic<uint64_t> halted_engines_{0};
  std::atomic<uint64_t> growth_baseline_{0};

  mutable std::mutex fault_mu_;
  FaultReport fault_; ///< guarded by fault_mu_
};

} // namespace smartly::util
