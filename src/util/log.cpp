#include "util/log.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <vector>

namespace smartly {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

/// SMARTLY_LOG_TIMESTAMPS=1 prefixes each record with a monotonic
/// microsecond timestamp (same clock/epoch as the tracer, so log lines and
/// trace events correlate). Read once per process.
bool timestamps_enabled() {
  static const bool on = [] {
    const char* env = std::getenv("SMARTLY_LOG_TIMESTAMPS");
    return env != nullptr && env[0] == '1' && env[1] == '\0';
  }();
  return on;
}

} // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel lvl) noexcept {
  g_level.store(lvl, std::memory_order_relaxed);
}

namespace detail {
void log_vprintf(LogLevel lvl, const char* prefix, const char* fmt, va_list ap) {
  if (lvl == LogLevel::Error) {
    static obs::Counter& errors = obs::counter("log.errors");
    errors.add();
  } else if (lvl == LogLevel::Warn) {
    static obs::Counter& warnings = obs::counter("log.warnings");
    warnings.add();
  }

  const bool below_level =
      static_cast<int>(lvl) > static_cast<int>(log_level());
  const bool traced = static_cast<int>(lvl) <= static_cast<int>(LogLevel::Warn) &&
                      obs::tracing_enabled();
  if (below_level && !traced)
    return;

  // Format the whole record into one buffer so concurrent log_* calls from
  // worker threads cannot tear lines on stderr: a single fwrite per record.
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap2);
  va_end(ap2);

  std::string line;
  if (timestamps_enabled()) {
    char ts[32];
    const uint64_t us = obs::trace_now_us();
    std::snprintf(ts, sizeof ts, "[%llu.%06llus] ",
                  static_cast<unsigned long long>(us / 1000000),
                  static_cast<unsigned long long>(us % 1000000));
    line += ts;
  }
  line += prefix;
  const size_t body_at = line.size();
  if (n > 0) {
    const size_t old = line.size();
    line.resize(old + static_cast<size_t>(n) + 1);
    std::vsnprintf(line.data() + old, static_cast<size_t>(n) + 1, fmt, ap);
    line.resize(old + static_cast<size_t>(n));
  }

  if (traced)
    obs::trace_instant("log", lvl == LogLevel::Error ? "log.error" : "log.warn",
                       line.substr(body_at));
  if (below_level)
    return;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}
} // namespace detail

#define SMARTLY_LOG_BODY(level, prefix)          \
  va_list ap;                                    \
  va_start(ap, fmt);                             \
  detail::log_vprintf(level, prefix, fmt, ap);   \
  va_end(ap)

void log_error(const char* fmt, ...) { SMARTLY_LOG_BODY(LogLevel::Error, "[error] "); }
void log_warn(const char* fmt, ...) { SMARTLY_LOG_BODY(LogLevel::Warn, "[warn] "); }
void log_info(const char* fmt, ...) { SMARTLY_LOG_BODY(LogLevel::Info, "[info] "); }
void log_debug(const char* fmt, ...) { SMARTLY_LOG_BODY(LogLevel::Debug, "[debug] "); }

#undef SMARTLY_LOG_BODY

std::string str_format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    out.assign(buf.data(), static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

} // namespace smartly
