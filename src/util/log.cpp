#include "util/log.hpp"

#include <cstdarg>
#include <vector>

namespace smartly {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel lvl) noexcept { g_level = lvl; }

namespace detail {
void log_vprintf(LogLevel lvl, const char* prefix, const char* fmt, va_list ap) {
  if (static_cast<int>(lvl) > static_cast<int>(g_level))
    return;
  std::fputs(prefix, stderr);
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
}
} // namespace detail

#define SMARTLY_LOG_BODY(level, prefix)          \
  va_list ap;                                    \
  va_start(ap, fmt);                             \
  detail::log_vprintf(level, prefix, fmt, ap);   \
  va_end(ap)

void log_error(const char* fmt, ...) { SMARTLY_LOG_BODY(LogLevel::Error, "[error] "); }
void log_warn(const char* fmt, ...) { SMARTLY_LOG_BODY(LogLevel::Warn, "[warn] "); }
void log_info(const char* fmt, ...) { SMARTLY_LOG_BODY(LogLevel::Info, "[info] "); }
void log_debug(const char* fmt, ...) { SMARTLY_LOG_BODY(LogLevel::Debug, "[debug] "); }

#undef SMARTLY_LOG_BODY

std::string str_format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    out.assign(buf.data(), static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

} // namespace smartly
