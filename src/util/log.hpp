// Lightweight logging utilities for the smaRTLy library.
//
// Logging is intentionally minimal: passes report what they changed at
// `Info` level, detailed traversal traces go to `Debug`. The level is a
// process-global knob so benches can silence passes without plumbing a
// logger through every call site.
#pragma once

#include <cstdio>
#include <string>

namespace smartly {

enum class LogLevel { Silent = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Process-global log level (defaults to Warn so library users are quiet).
LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

namespace detail {
void log_vprintf(LogLevel lvl, const char* prefix, const char* fmt, va_list ap);
} // namespace detail

void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Format like printf into a std::string (used for error messages).
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace smartly
