#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <fcntl.h>
#include <unistd.h>

namespace smartly::util {

namespace fs = std::filesystem;

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error)
    *error = what + ": " + std::strerror(errno);
}

/// fsync a directory so a rename inside it is durable. Best-effort: some
/// filesystems refuse O_DIRECTORY fsync; a failure here is not a data-loss
/// hazard for the file contents themselves (those were fsynced), so it is
/// deliberately not propagated.
void fsync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0)
    return;
  ::fsync(fd);
  ::close(fd);
}

} // namespace

bool atomic_write_file(const std::string& path, const std::string& data,
                       std::string* error) {
  const fs::path target(path);
  const fs::path dir = target.parent_path().empty() ? fs::path(".") : target.parent_path();
  const std::string tmp =
      (dir / (target.filename().string() + ".tmp." + std::to_string(::getpid()))).string();

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    set_error(error, "cannot create " + tmp);
    return false;
  }
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR)
        continue;
      set_error(error, "write to " + tmp + " failed");
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    set_error(error, "fsync of " + tmp + " failed");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close of " + tmp + " failed");
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path + " failed");
    ::unlink(tmp.c_str());
    return false;
  }
  fsync_dir(dir);
  return true;
}

bool read_file(const std::string& path, std::string* out, std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    if (error)
      *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad()) {
    if (error)
      *error = "read of " + path + " failed";
    return false;
  }
  *out = ss.str();
  return true;
}

int remove_stale_temp_files(const std::string& dir) {
  std::error_code ec;
  int removed = 0;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    const size_t pos = name.rfind(".tmp.");
    if (pos == std::string::npos)
      continue;
    // Require a purely numeric pid suffix so user files named "*.tmp.*"
    // with arbitrary suffixes are left alone.
    const std::string suffix = name.substr(pos + 5);
    if (suffix.empty() ||
        suffix.find_first_not_of("0123456789") != std::string::npos)
      continue;
    std::error_code rm_ec;
    if (fs::remove(it->path(), rm_ec))
      ++removed;
  }
  return removed;
}

} // namespace smartly::util
