#include "util/thread_pool.hpp"

#include "obs/metrics.hpp"

#include <algorithm>

namespace smartly::util {

namespace {
// Queue/steal observability: totals are scheduling-dependent (how many tasks
// a worker steals varies run to run), which is exactly what they are for —
// seeing contention and imbalance. They are never gated or fed back into any
// engine decision.
obs::Counter& tasks_run_counter() {
  static obs::Counter& c = obs::counter("pool.tasks_run");
  return c;
}
obs::Counter& tasks_stolen_counter() {
  static obs::Counter& c = obs::counter("pool.tasks_stolen");
  return c;
}
} // namespace

int resolve_thread_count(int requested) noexcept {
  if (requested > 0)
    return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  queues_.reserve(static_cast<size_t>(threads_));
  for (int i = 0; i < threads_; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    shutdown_ = true;
  }
  batch_start_.notify_all();
  for (std::thread& t : workers_)
    t.join();
}

bool ThreadPool::try_pop_own(int worker, size_t& task) {
  WorkerQueue& q = *queues_[static_cast<size_t>(worker)];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty())
    return false;
  task = q.tasks.back();
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(int worker, size_t& task) {
  for (int off = 1; off < threads_; ++off) {
    const int victim = (worker + off) % threads_;
    WorkerQueue& q = *queues_[static_cast<size_t>(victim)];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty())
      continue;
    task = q.tasks.front();
    q.tasks.pop_front();
    tasks_stolen_counter().add();
    return true;
  }
  return false;
}

void ThreadPool::work_until_batch_done(int worker) {
  size_t task;
  while (try_pop_own(worker, task) || try_steal(worker, task)) {
    // Re-read the batch function per task: a straggler from the previous
    // epoch can legitimately pick up tasks of the next batch, whose fn
    // differs. A popped-but-unexecuted task pins its run_batch in the wait
    // below, so the pointer read here is never dangling.
    const std::function<void(int, size_t)>* fn;
    const std::function<TaskVerdict(int, size_t)>* rfn;
    bool skip;
    {
      std::lock_guard<std::mutex> lock(batch_mutex_);
      fn = batch_fn_;
      rfn = requeue_fn_;
      skip = batch_error_ != nullptr; // a task already threw: drain, don't run
    }
    std::exception_ptr err = nullptr;
    bool requeue = false;
    if (!skip) {
      tasks_run_counter().add();
      try {
        if (rfn != nullptr)
          requeue = (*rfn)(worker, task) == TaskVerdict::Requeue;
        else
          (*fn)(worker, task);
      } catch (...) {
        err = std::current_exception();
      }
    }
    if (requeue) {
      // Back onto the *front* of this worker's own deque: the owner pops the
      // back, so local work drains first and thieves see the conflicted task
      // earliest. tasks_remaining_ is untouched — the task is still pending.
      WorkerQueue& q = *queues_[static_cast<size_t>(worker)];
      std::lock_guard<std::mutex> qlock(q.mutex);
      q.tasks.push_front(task);
      continue;
    }
    std::lock_guard<std::mutex> lock(batch_mutex_);
    if (err != nullptr && (batch_error_ == nullptr || task < batch_error_task_)) {
      batch_error_ = err;
      batch_error_task_ = task;
    }
    if (--tasks_remaining_ == 0)
      batch_done_.notify_all();
  }
}

void ThreadPool::worker_loop(int worker) {
  size_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(batch_mutex_);
      batch_start_.wait(lock, [&] { return shutdown_ || batch_epoch_ != seen_epoch; });
      if (shutdown_)
        return;
      seen_epoch = batch_epoch_;
    }
    work_until_batch_done(worker);
  }
}

void ThreadPool::run_batch(size_t n, const std::function<void(int, size_t)>& fn) {
  if (n == 0)
    return;
  if (threads_ == 1) {
    tasks_run_counter().add(n);
    for (size_t i = 0; i < n; ++i)
      fn(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    batch_fn_ = &fn;
    batch_error_ = nullptr;
    tasks_remaining_ = n;
    for (size_t i = 0; i < n; ++i) {
      WorkerQueue& q = *queues_[i % static_cast<size_t>(threads_)];
      std::lock_guard<std::mutex> qlock(q.mutex);
      q.tasks.push_back(i);
    }
    ++batch_epoch_;
  }
  batch_start_.notify_all();
  work_until_batch_done(0);
  std::unique_lock<std::mutex> lock(batch_mutex_);
  batch_done_.wait(lock, [&] { return tasks_remaining_ == 0; });
  batch_fn_ = nullptr;
  if (batch_error_ != nullptr) {
    std::exception_ptr err = batch_error_;
    batch_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_requeue_batch(size_t n,
                                   const std::function<TaskVerdict(int, size_t)>& fn) {
  if (n == 0)
    return;
  if (threads_ == 1) {
    // Degenerate path mirrors the parallel scheduling order exactly: seeding
    // pushes to the back, the owner pops its own back (LIFO), and a requeue
    // goes to the front so it drains after all other local work.
    std::deque<size_t> pending;
    for (size_t i = 0; i < n; ++i)
      pending.push_back(i);
    while (!pending.empty()) {
      const size_t task = pending.back();
      pending.pop_back();
      tasks_run_counter().add();
      if (fn(0, task) == TaskVerdict::Requeue)
        pending.push_front(task);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(batch_mutex_);
    requeue_fn_ = &fn;
    batch_error_ = nullptr;
    tasks_remaining_ = n;
    for (size_t i = 0; i < n; ++i) {
      WorkerQueue& q = *queues_[i % static_cast<size_t>(threads_)];
      std::lock_guard<std::mutex> qlock(q.mutex);
      q.tasks.push_back(i);
    }
    ++batch_epoch_;
  }
  batch_start_.notify_all();
  work_until_batch_done(0);
  std::unique_lock<std::mutex> lock(batch_mutex_);
  batch_done_.wait(lock, [&] { return tasks_remaining_ == 0; });
  requeue_fn_ = nullptr;
  if (batch_error_ != nullptr) {
    std::exception_ptr err = batch_error_;
    batch_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

} // namespace smartly::util
