// Crash-safe file writes: temp + fsync + rename.
//
// Everything the service layer persists (journal compactions, cache
// snapshots, job results, repro bundles) goes through atomic_write_file so a
// kill -9 at any instant leaves either the old file or the new file, never a
// torn hybrid. The temp file lives next to the target (same filesystem, so
// rename() is atomic) and carries the writer's pid, so two daemons pointed
// at the same directory cannot clobber each other's in-flight writes.
// Stray ".tmp.<pid>" files from a crashed writer are inert; callers that own
// a directory can sweep them with remove_stale_temp_files at startup.
#pragma once

#include <string>

namespace smartly::util {

/// Write `data` to `path` atomically (temp file + fsync + rename). Returns
/// false and fills `*error` (when non-null) on any failure; the target is
/// untouched in that case. Durability: the data is fsynced before the
/// rename, and the containing directory is fsynced after it, so a crash
/// after return cannot lose the file.
bool atomic_write_file(const std::string& path, const std::string& data,
                       std::string* error = nullptr);

/// Read a whole file. Returns false and fills `*error` (when non-null) when
/// the file cannot be opened or read.
bool read_file(const std::string& path, std::string* out, std::string* error = nullptr);

/// Delete leftover atomic_write_file temp files ("<name>.tmp.<pid>") in
/// `dir`. Safe to call on a live spool: only files matching the temp-name
/// pattern are touched. Returns the number removed.
int remove_stale_temp_files(const std::string& dir);

} // namespace smartly::util
