#include "util/fault.hpp"

#include <atomic>
#include <cassert>
#include <cstring>

namespace smartly::util {

namespace {

struct FaultState {
  FaultPlan plan;
  std::atomic<uint64_t> events{0};
  std::atomic<bool> thrown{false}; ///< throw_after is one-shot
};

std::atomic<FaultState*> g_fault{nullptr};

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t fnv1a(const char* s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (; *s; ++s)
    h = (h ^ static_cast<uint8_t>(*s)) * 0x100000001b3ull;
  return h;
}

} // namespace

FaultScope::FaultScope(const FaultPlan& plan) {
  auto* state = new FaultState();
  state->plan = plan;
  FaultState* expected = nullptr;
  const bool installed = g_fault.compare_exchange_strong(expected, state);
  assert(installed && "FaultScope must not nest");
  if (!installed)
    delete state;
}

FaultScope::~FaultScope() {
  FaultState* state = g_fault.exchange(nullptr);
  delete state;
}

uint64_t FaultScope::events() const noexcept {
  FaultState* state = g_fault.load(std::memory_order_acquire);
  return state ? state->events.load(std::memory_order_relaxed) : 0;
}

FaultAction fault_point(const char* site, uint64_t unit) noexcept {
  FaultState* state = g_fault.load(std::memory_order_acquire);
  if (state == nullptr)
    return FaultAction::None;
  const FaultPlan& plan = state->plan;
  if (!plan.site_filter.empty() && std::strstr(site, plan.site_filter.c_str()) == nullptr)
    return FaultAction::None;

  // 1-based index of this matching event (kept in unit-keyed mode too: the
  // test suite uses events() as a coverage diagnostic either way).
  const uint64_t n = state->events.fetch_add(1, std::memory_order_relaxed) + 1;

  if (plan.unit_keyed) {
    // Schedule-independent: the action is a pure function of (seed, site,
    // unit), so the same work items fault on every thread count and in every
    // re-run. throw_after/exhaust_after are event-order-based and therefore
    // meaningless here; they are ignored.
    if (plan.throw_permille == 0 && plan.unknown_permille == 0)
      return FaultAction::None;
    const uint64_t h = splitmix64(plan.seed ^ splitmix64(splitmix64(unit)) ^ fnv1a(site));
    const uint32_t roll = static_cast<uint32_t>(h % 1000);
    if (roll < plan.throw_permille)
      return FaultAction::Throw;
    if (roll < plan.throw_permille + plan.unknown_permille)
      return FaultAction::Unknown;
    return FaultAction::None;
  }

  if (plan.throw_after >= 0 && n == static_cast<uint64_t>(plan.throw_after)) {
    bool expected = false;
    if (state->thrown.compare_exchange_strong(expected, true))
      return FaultAction::Throw;
  }
  if (plan.exhaust_after >= 0 && n > static_cast<uint64_t>(plan.exhaust_after))
    return FaultAction::Unknown;

  if (plan.throw_permille == 0 && plan.unknown_permille == 0)
    return FaultAction::None;
  const uint64_t h = splitmix64(plan.seed ^ splitmix64(n) ^ fnv1a(site));
  const uint32_t roll = static_cast<uint32_t>(h % 1000);
  if (roll < plan.throw_permille)
    return FaultAction::Throw;
  if (roll < plan.throw_permille + plan.unknown_permille)
    return FaultAction::Unknown;
  return FaultAction::None;
}

bool active_fault_plan(FaultPlan* out) noexcept {
  FaultState* state = g_fault.load(std::memory_order_acquire);
  if (state == nullptr)
    return false;
  if (out != nullptr)
    *out = state->plan;
  return true;
}

uint64_t stable_name_hash(const char* s) noexcept { return fnv1a(s); }

} // namespace smartly::util
