// Deterministic, seed-driven fault injection for robustness testing.
//
// A FaultPlan describes *when* to misbehave; a FaultScope installs it
// globally (RAII). Engines call fault_point("site") at their injection
// points; the harness counts matching events and, per event, derives an
// action from hash(seed, site, event#): report a forced
// sat::Result::Unknown, throw a FaultInjected exception, or do nothing.
// With zero active plan the hook is one relaxed atomic load — cheap enough
// to leave compiled into release builds.
//
// In single-threaded runs the event sequence — and therefore the whole
// injection schedule — is fully determined by (plan, input). In parallel
// runs workers interleave their events nondeterministically; the robustness
// suite therefore asserts schedule-independent properties (termination,
// CEC equivalence, index-vs-rebuild consistency) for parallel runs and
// exact schedules only for single-threaded ones.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace smartly::util {

enum class FaultAction { None, Unknown, Throw };

struct FaultPlan {
  uint64_t seed = 0;
  uint32_t unknown_permille = 0; ///< per-event chance (0..1000) of forcing Unknown
  uint32_t throw_permille = 0;   ///< per-event chance (0..1000) of throwing
  int64_t exhaust_after = -1;    ///< every matching event past the N-th forces Unknown
  int64_t throw_after = -1;      ///< one-shot throw exactly at the N-th matching event
  std::string site_filter;       ///< only sites containing this substring fault ("" = all)
};

/// Exception thrown by injected faults. Derives from std::runtime_error so
/// generic catch blocks (opt_tool's top-level handler) treat it uniformly.
class FaultInjected : public std::runtime_error {
public:
  explicit FaultInjected(const std::string& site)
      : std::runtime_error("injected fault at " + site) {}
};

/// Installs `plan` as the process-global fault plan for its lifetime.
/// Scopes must not nest and must not overlap engine runs on other threads
/// beyond the engines under test (test-only machinery).
class FaultScope {
public:
  explicit FaultScope(const FaultPlan& plan);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Matching events seen so far (diagnostics for the test suite).
  uint64_t events() const noexcept;
};

/// Consult the active plan at an engine injection point. Returns the action
/// to take; never throws itself. With no active scope: FaultAction::None.
FaultAction fault_point(const char* site) noexcept;

/// Convenience wrapper: throws FaultInjected on Throw, returns true when the
/// caller should pretend its SAT query came back Unknown.
inline bool fault_unknown(const char* site) {
  const FaultAction a = fault_point(site);
  if (a == FaultAction::Throw)
    throw FaultInjected(site);
  return a == FaultAction::Unknown;
}

} // namespace smartly::util
