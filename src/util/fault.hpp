// Deterministic, seed-driven fault injection for robustness testing.
//
// A FaultPlan describes *when* to misbehave; a FaultScope installs it
// globally (RAII). Engines call fault_point("site") at their injection
// points; the harness counts matching events and, per event, derives an
// action from hash(seed, site, event#): report a forced
// sat::Result::Unknown, throw a FaultInjected exception, or do nothing.
// With zero active plan the hook is one relaxed atomic load — cheap enough
// to leave compiled into release builds.
//
// In single-threaded runs the event sequence — and therefore the whole
// injection schedule — is fully determined by (plan, input). In parallel
// runs workers interleave their events nondeterministically; the robustness
// suite therefore asserts schedule-independent properties (termination,
// CEC equivalence, index-vs-rebuild consistency) for parallel runs and
// exact schedules only for single-threaded ones.
//
// `unit_keyed` plans trade the event counter for hash(seed, site, unit),
// where the unit id is a stable content/name hash of the work item (fraig:
// class representative, rewrite: root cell, sweep: region, oracle: subgraph
// fingerprint). The same units then fault on every thread count and in every
// re-run — the property the recovery layer's quarantine determinism and
// repro bundles are built on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace smartly::util {

enum class FaultAction { None, Unknown, Throw };

struct FaultPlan {
  uint64_t seed = 0;
  uint32_t unknown_permille = 0; ///< per-event chance (0..1000) of forcing Unknown
  uint32_t throw_permille = 0;   ///< per-event chance (0..1000) of throwing
  int64_t exhaust_after = -1;    ///< every matching event past the N-th forces Unknown
  int64_t throw_after = -1;      ///< one-shot throw exactly at the N-th matching event
  std::string site_filter;       ///< only sites containing this substring fault ("" = all)
  bool unit_keyed = false;       ///< derive actions from hash(seed, site, unit) instead of
                                 ///< the event counter: schedule-independent, so the same
                                 ///< units fault on every thread count (recovery tests)
};

/// Exception thrown by injected faults. Derives from std::runtime_error so
/// generic catch blocks (opt_tool's top-level handler) treat it uniformly.
/// Carries the site and the stable unit id so the recovery layer can
/// quarantine exactly the work item that faulted.
class FaultInjected : public std::runtime_error {
public:
  explicit FaultInjected(const std::string& site, uint64_t unit = 0)
      : std::runtime_error("injected fault at " + site), site_(site), unit_(unit) {}

  const std::string& site() const noexcept { return site_; }
  uint64_t unit() const noexcept { return unit_; }

private:
  std::string site_;
  uint64_t unit_;
};

/// Installs `plan` as the process-global fault plan for its lifetime.
/// Scopes must not nest and must not overlap engine runs on other threads
/// beyond the engines under test (test-only machinery).
class FaultScope {
public:
  explicit FaultScope(const FaultPlan& plan);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  /// Matching events seen so far (diagnostics for the test suite).
  uint64_t events() const noexcept;
};

/// Consult the active plan at an engine injection point. Returns the action
/// to take; never throws itself. With no active scope: FaultAction::None.
/// `unit` is the stable id of the work item (0 when the site has none);
/// unit-keyed plans hash it in place of the event counter.
FaultAction fault_point(const char* site, uint64_t unit = 0) noexcept;

/// Convenience wrapper: throws FaultInjected on Throw, returns true when the
/// caller should pretend its SAT query came back Unknown.
inline bool fault_unknown(const char* site, uint64_t unit = 0) {
  const FaultAction a = fault_point(site, unit);
  if (a == FaultAction::Throw)
    throw FaultInjected(site, unit);
  return a == FaultAction::Unknown;
}

/// Copy the active plan into `*out`. Returns false (leaving `*out` alone)
/// when no FaultScope is installed. Used by the recovery layer to record the
/// live fault schedule into repro bundles.
bool active_fault_plan(FaultPlan* out) noexcept;

/// Stable FNV-1a hash of a name — the canonical way engines derive unit ids
/// from wire/cell names (process-independent, so bundles replay anywhere).
uint64_t stable_name_hash(const char* s) noexcept;
inline uint64_t stable_name_hash(const std::string& s) noexcept {
  return stable_name_hash(s.c_str());
}

} // namespace smartly::util
