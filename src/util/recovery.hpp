// Recovery-layer data model: quarantine sets, recovery options/stats, and
// failure repro bundles.
//
// A QuarantineSet names the work units the engines must skip: each entry is
// an injection-site prefix plus the stable 64-bit unit id of the offending
// item (fraig: class-representative bit, rewrite: root output bit, sweep:
// region root bit, oracle: target control bit). Unit ids are name hashes
// (util::stable_name_hash over wire names), so they are identical across
// thread counts, across deep copies, and across processes — a quarantine
// recorded in a repro bundle means the same thing when the bundle is
// replayed elsewhere.
//
// A repro bundle is a directory with two files:
//   design.v      pre-stage netlist (backend::write_verilog — round-trips
//                 through the front end with names preserved)
//   manifest.txt  line-based key=value: stage, failure reason/site/unit,
//                 attempt number, active FaultPlan, quarantine set, and the
//                 engine options in force
// opt_tool --replay <dir> reconstructs the run from these two files. The
// format is deliberately dependency-free (no JSON reader exists in-tree).
//
// The driver around these types lives in src/opt/transaction.{hpp,cpp}.
#pragma once

#include "util/fault.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace smartly::util {

/// Stable unit id of one netlist bit: the wire name's FNV-1a hash mixed with
/// the bit offset. Never returns 0 (0 means "no unit"). Name-based, so the
/// id survives deep copies, thread-count changes, and a write_verilog
/// round-trip — everything quarantine determinism and bundle replay need.
uint64_t bit_unit_id(const std::string& wire_name, int offset);

/// Deterministic, ordered set of quarantined work units. Mutated only from
/// single-threaded recovery code between stage attempts; engines read it
/// (contains) concurrently from workers, which is safe because the set is
/// frozen for the duration of a stage run.
class QuarantineSet {
public:
  /// Returns true when the entry is new. Keeps entries sorted, so
  /// serialization and reporting order are independent of insertion order.
  bool add(const std::string& site, uint64_t unit);
  bool contains(const char* site, uint64_t unit) const noexcept;
  bool empty() const noexcept { return entries_.empty(); }
  size_t size() const noexcept { return entries_.size(); }
  const std::vector<std::pair<std::string, uint64_t>>& entries() const noexcept {
    return entries_;
  }

  /// "site:hexunit,site:hexunit" in sorted order; "" for the empty set.
  std::string serialize() const;
  /// Inverse of serialize(); ignores malformed fragments.
  static QuarantineSet parse(const std::string& text);

private:
  std::vector<std::pair<std::string, uint64_t>> entries_; ///< sorted
};

/// Knobs for the transactional stage driver.
struct RecoveryOptions {
  bool enabled = false;  ///< wrap stages in snapshot/rollback transactions
  int max_retries = 3;   ///< rollback+retry attempts per stage before skipping it
  bool paranoid = false; ///< CEC every stage's output against its snapshot
  int64_t paranoid_conflict_budget = 200000; ///< SAT budget for each paranoid check
  std::string repro_dir; ///< when nonempty, write a repro bundle per recovery event
};

/// One rollback/retry/skip incident, kept for stats and logging.
struct RecoveryEvent {
  std::string stage;  ///< "sweep", "fraig", "rewrite", ...
  std::string reason; ///< "fault-injected", "fault-halt", "verify-failed",
                      ///< "paranoid-miscompare", "exception"
  std::string site;   ///< fault site when known ("" otherwise)
  uint64_t unit = 0;  ///< stable unit id when known (0 otherwise)
  int attempt = 0;    ///< 1-based attempt that failed
  int round = -1;     ///< bisected faulting round (paranoid mode), -1 unknown
  bool quarantined = false; ///< a new quarantine entry was added
  bool skipped = false;     ///< stage abandoned after exhausting retries
  std::string bundle_dir;   ///< repro bundle path ("" when not written)
};

/// Aggregated over a pass; reported in SmartlyStats::recovery.
struct RecoveryStats {
  uint64_t stages = 0;    ///< protected stages entered
  uint64_t rollbacks = 0; ///< snapshot restores performed
  uint64_t retries = 0;   ///< re-runs after a rollback
  uint64_t quarantined_units = 0;
  uint64_t stages_skipped = 0; ///< stages abandoned after exhausting retries
  uint64_t bundles_written = 0;
  uint64_t paranoid_checks = 0;
  uint64_t paranoid_miscompares = 0;
  std::vector<RecoveryEvent> events;

  RecoveryStats& operator+=(const RecoveryStats& o);
  bool any() const noexcept { return stages != 0; }
};

/// Everything needed to reproduce one stage failure.
struct ReproBundle {
  std::string design_verilog; ///< pre-stage netlist (write_verilog output)
  std::string stage;
  std::string reason;
  std::string site;
  uint64_t unit = 0;
  int attempt = 0;
  bool plan_active = false; ///< was a FaultScope installed?
  FaultPlan plan;           ///< the active plan (valid when plan_active)
  std::string quarantine;   ///< QuarantineSet::serialize() at stage entry
  std::string options;      ///< free-form engine-option summary (one line)
};

/// Write `bundle` under `dir` as `dir/bundle-<index>-<stage>/`. Creates
/// directories as needed. Returns the bundle directory path, or "" on any
/// filesystem error (recovery must never fail because a disk is full).
std::string write_repro_bundle(const std::string& dir, const ReproBundle& bundle, int index);

/// Load a bundle written by write_repro_bundle. Returns false and fills
/// `*error` when the directory or either file is missing/malformed.
bool read_repro_bundle(const std::string& bundle_dir, ReproBundle* out, std::string* error);

} // namespace smartly::util
