#include "util/recovery.hpp"

#include "util/atomic_file.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace smartly::util {

namespace fs = std::filesystem;

uint64_t bit_unit_id(const std::string& wire_name, int offset) {
  uint64_t h = stable_name_hash(wire_name);
  h ^= 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(offset) + (h << 6) + (h >> 2);
  return h == 0 ? 1 : h;
}

bool QuarantineSet::add(const std::string& site, uint64_t unit) {
  const std::pair<std::string, uint64_t> key{site, unit};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key);
  if (it != entries_.end() && *it == key)
    return false;
  entries_.insert(it, key);
  return true;
}

bool QuarantineSet::contains(const char* site, uint64_t unit) const noexcept {
  for (const auto& [s, u] : entries_)
    if (u == unit && s == site)
      return true;
  return false;
}

std::string QuarantineSet::serialize() const {
  std::string out;
  char buf[32];
  for (const auto& [site, unit] : entries_) {
    if (!out.empty())
      out += ',';
    std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(unit));
    out += site;
    out += ':';
    out += buf;
  }
  return out;
}

QuarantineSet QuarantineSet::parse(const std::string& text) {
  QuarantineSet set;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos)
      end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    const size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= item.size())
      continue;
    const std::string site = item.substr(0, colon);
    const std::string hex = item.substr(colon + 1);
    char* endp = nullptr;
    const unsigned long long unit = std::strtoull(hex.c_str(), &endp, 16);
    if (endp == nullptr || *endp != '\0')
      continue;
    set.add(site, static_cast<uint64_t>(unit));
  }
  return set;
}

RecoveryStats& RecoveryStats::operator+=(const RecoveryStats& o) {
  stages += o.stages;
  rollbacks += o.rollbacks;
  retries += o.retries;
  quarantined_units += o.quarantined_units;
  stages_skipped += o.stages_skipped;
  bundles_written += o.bundles_written;
  paranoid_checks += o.paranoid_checks;
  paranoid_miscompares += o.paranoid_miscompares;
  events.insert(events.end(), o.events.begin(), o.events.end());
  return *this;
}

namespace {

std::string manifest_text(const ReproBundle& b) {
  std::ostringstream out;
  out << "stage=" << b.stage << "\n";
  // Lets the reader detect a truncated/tampered design.v: both files are
  // written atomically, but a bundle can still be damaged after the fact
  // (partial copy, disk corruption), and --replay must refuse it cleanly.
  out << "design.bytes=" << b.design_verilog.size() << "\n";
  out << "reason=" << b.reason << "\n";
  out << "site=" << b.site << "\n";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(b.unit));
  out << "unit=" << buf << "\n";
  out << "attempt=" << b.attempt << "\n";
  out << "quarantine=" << b.quarantine << "\n";
  out << "options=" << b.options << "\n";
  out << "plan.active=" << (b.plan_active ? 1 : 0) << "\n";
  if (b.plan_active) {
    out << "plan.seed=" << b.plan.seed << "\n";
    out << "plan.unknown_permille=" << b.plan.unknown_permille << "\n";
    out << "plan.throw_permille=" << b.plan.throw_permille << "\n";
    out << "plan.exhaust_after=" << b.plan.exhaust_after << "\n";
    out << "plan.throw_after=" << b.plan.throw_after << "\n";
    out << "plan.site_filter=" << b.plan.site_filter << "\n";
    out << "plan.unit_keyed=" << (b.plan.unit_keyed ? 1 : 0) << "\n";
  }
  // End marker, always last: a manifest without it was truncated mid-write
  // (or mid-copy) and the reader rejects it with a diagnostic instead of
  // silently replaying half a bundle.
  out << "manifest.end=1\n";
  return out.str();
}

bool apply_manifest_line(const std::string& key, const std::string& value, ReproBundle* b) {
  auto to_i64 = [](const std::string& s) { return std::strtoll(s.c_str(), nullptr, 10); };
  auto to_u64 = [](const std::string& s) { return std::strtoull(s.c_str(), nullptr, 10); };
  if (key == "stage")
    b->stage = value;
  else if (key == "reason")
    b->reason = value;
  else if (key == "site")
    b->site = value;
  else if (key == "unit")
    b->unit = std::strtoull(value.c_str(), nullptr, 16);
  else if (key == "attempt")
    b->attempt = static_cast<int>(to_i64(value));
  else if (key == "quarantine")
    b->quarantine = value;
  else if (key == "options")
    b->options = value;
  else if (key == "plan.active")
    b->plan_active = to_i64(value) != 0;
  else if (key == "plan.seed")
    b->plan.seed = to_u64(value);
  else if (key == "plan.unknown_permille")
    b->plan.unknown_permille = static_cast<uint32_t>(to_u64(value));
  else if (key == "plan.throw_permille")
    b->plan.throw_permille = static_cast<uint32_t>(to_u64(value));
  else if (key == "plan.exhaust_after")
    b->plan.exhaust_after = to_i64(value);
  else if (key == "plan.throw_after")
    b->plan.throw_after = to_i64(value);
  else if (key == "plan.site_filter")
    b->plan.site_filter = value;
  else if (key == "plan.unit_keyed")
    b->plan.unit_keyed = to_i64(value) != 0;
  else
    return false; // unknown keys are tolerated (forward compatibility)
  return true;
}

} // namespace

std::string write_repro_bundle(const std::string& dir, const ReproBundle& bundle, int index) {
  std::error_code ec;
  char name[64];
  std::snprintf(name, sizeof(name), "bundle-%04d-%s", index,
                bundle.stage.empty() ? "stage" : bundle.stage.c_str());
  const fs::path bdir = fs::path(dir) / name;
  fs::create_directories(bdir, ec);
  if (ec)
    return "";
  // Atomic temp+fsync+rename writes, design first and manifest last: the
  // manifest is the commit record, so a crash at any point leaves either no
  // manifest (bundle ignored) or a complete pair — never a half bundle that
  // --replay chokes on.
  if (!atomic_write_file((bdir / "design.v").string(), bundle.design_verilog))
    return "";
  if (!atomic_write_file((bdir / "manifest.txt").string(), manifest_text(bundle)))
    return "";
  return bdir.string();
}

bool read_repro_bundle(const std::string& bundle_dir, ReproBundle* out, std::string* error) {
  const fs::path bdir(bundle_dir);
  std::ifstream design(bdir / "design.v", std::ios::binary);
  if (!design) {
    if (error)
      *error = "cannot open " + (bdir / "design.v").string();
    return false;
  }
  std::ostringstream dss;
  dss << design.rdbuf();
  out->design_verilog = dss.str();

  std::ifstream manifest(bdir / "manifest.txt");
  if (!manifest) {
    if (error)
      *error = "cannot open " + (bdir / "manifest.txt").string();
    return false;
  }
  bool saw_stage = false;
  bool saw_end = false;
  bool have_design_bytes = false;
  unsigned long long design_bytes = 0;
  std::string line;
  while (std::getline(manifest, line)) {
    if (!line.empty() && line.back() == '\r')
      line.pop_back();
    if (line.empty() || line[0] == '#')
      continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      if (error)
        *error = "malformed manifest line (no '='): " + line;
      return false;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "design.bytes") {
      design_bytes = std::strtoull(value.c_str(), nullptr, 10);
      have_design_bytes = true;
    } else if (key == "manifest.end") {
      saw_end = true;
    } else {
      apply_manifest_line(key, value, out);
    }
    saw_stage = saw_stage || key == "stage";
  }
  if (!saw_stage) {
    if (error)
      *error = "manifest.txt has no stage= line";
    return false;
  }
  if (!saw_end) {
    if (error)
      *error = "truncated manifest.txt (missing manifest.end marker) — the "
               "bundle is incomplete; re-run the producing command or restore "
               "the bundle from the CI artifact";
    return false;
  }
  if (have_design_bytes && design_bytes != out->design_verilog.size()) {
    if (error)
      *error = "design.v is " + std::to_string(out->design_verilog.size()) +
               " bytes but the manifest recorded " + std::to_string(design_bytes) +
               " — the bundle's design file is truncated or corrupt";
    return false;
  }
  return true;
}

} // namespace smartly::util
