// Building blocks for synthetic Verilog benchmark generation.
//
// The IWLS-2005 / RISC-V sources the paper evaluates on are not
// redistributable here, so each benchmark circuit is synthesized from
// parameterized structural motifs chosen to match the paper's per-circuit
// narrative (Table III): chain-style `case` muxtrees (Rebuild-sensitive),
// logically-dependent nested selection (SAT-sensitive), identical-control
// redundancy (already caught by the Yosys baseline), and plain datapath
// logic (optimization-neutral filler). See DESIGN.md, "Substitutions".
#pragma once

#include "util/hashing.hpp"

#include <string>
#include <vector>

namespace smartly::benchgen {

/// Accumulates the body of one Verilog module and tracks declared signals.
class VerilogGen {
public:
  VerilogGen(std::string module_name, uint64_t seed);

  /// Fresh input (returns its name).
  std::string input(int width);
  /// Fresh internal wire driven later by `assign name = ...`.
  std::string wire(int width);
  /// Mark an existing signal as (part of) a module output by assigning it to
  /// a fresh output port.
  void expose(const std::string& signal, int width);

  void raw(const std::string& text); ///< verbatim body line(s)

  // --- structural motifs ---------------------------------------------------

  /// Chain-style `case (sel) ...` muxtree over a fresh selector; data inputs
  /// are fresh. Exactly the paper's Listing 1 / Fig. 5 shape. The selector is
  /// used nowhere else, so restructuring can disconnect all eq cells.
  /// Returns the result wire. `n_items` <= 2^sel_width.
  std::string case_chain(int sel_width, int n_items, int width, bool casez);

  /// Nested selection with logically dependent controls, e.g.
  ///   y = s ? ((s|r) ? a : b) : c          (paper Fig. 3)
  /// plus deeper and/or variants. Invisible to the syntactic baseline.
  std::string dependent_select(int width, int depth);

  /// Deep dependence *chain*: k1 = s|r1, k2 = k1|r2, ..., k_n = k_{n-1}|r_n,
  /// nested as  y = s ? (k1 ? (k2 ? ... : d) : d') : d''.  On the s=1 path
  /// every k_i is forced, but proving k_i needs the whole or-chain in the
  /// sub-graph — the workload for the distance-k ablation (bench_ablation A1).
  std::string dependent_chain(int width, int length);

  /// Identical-control redundancy the baseline already removes
  ///   y = s ? (s ? a : b) : c              (paper Fig. 1)
  ///   y = s ? (a ? s : b) : c              (paper Fig. 2)
  std::string same_ctrl_redundant(int width);

  /// Priority if/else-if decoder comparing one selector against constants
  /// (case-equivalent but written as ifs; feeds both engines).
  std::string priority_decoder(int sel_width, int n_arms, int width);

  /// Plain datapath block (add/xor/compare mix) — neutral filler.
  std::string datapath(int width, int ops);

  /// Registered pipeline stage: q <= d on the shared clock.
  std::string pipeline_reg(const std::string& d, int width);

  /// Finish: returns the complete module text.
  std::string finish();

  Rng& rng() noexcept { return rng_; }

private:
  std::string fresh(const char* prefix);

  std::string name_;
  Rng rng_;
  std::string decls_;
  std::string body_;
  std::vector<std::string> ports_;
  bool has_clock_ = false;
  uint64_t counter_ = 0;
};

} // namespace smartly::benchgen
