#include "benchgen/public_bench.hpp"

#include "benchgen/verilog_gen.hpp"
#include "util/log.hpp"

#include <map>
#include <stdexcept>

namespace smartly::benchgen {

BenchCircuit generate_circuit(const std::string& name, const Profile& p, uint64_t seed) {
  VerilogGen g(name, seed);
  Rng& rng = g.rng();

  int reg_budget = p.registered_outputs;
  auto maybe_register = [&](const std::string& sig, int width) {
    if (reg_budget > 0 && rng.chance(0.5)) {
      --reg_budget;
      g.expose(g.pipeline_reg(sig, width), width);
    } else {
      g.expose(sig, width);
    }
  };

  for (int i = 0; i < p.case_chains; ++i) {
    const int sel = static_cast<int>(rng.range(p.case_sel_min, p.case_sel_max));
    const int max_items = 1 << sel;
    // case_items_scale controls label density: scale 1 -> near-exhaustive
    // cases (the last branch becomes inferable), larger scales -> sparse
    // cases where no control value is implied by the others.
    const int hi = std::max(2, max_items / p.case_items_scale);
    const int items = std::max<int>(2, static_cast<int>(rng.range(std::max(2, hi / 2), hi)));
    const bool casez = rng.chance(p.casez_chance);
    const std::string y = g.case_chain(sel, items, p.width, casez);
    maybe_register(y, p.width);
  }
  for (int i = 0; i < p.dependent; ++i) {
    const int depth = std::max<int>(1, static_cast<int>(rng.range(p.dependent_depth - 1,
                                                                  p.dependent_depth + 1)));
    maybe_register(g.dependent_select(p.width, depth), p.width);
  }
  for (int i = 0; i < p.same_ctrl; ++i)
    maybe_register(g.same_ctrl_redundant(p.width), p.width);
  for (int i = 0; i < p.decoders; ++i) {
    const int arms = std::max<int>(2, (1 << p.decoder_sel) * 3 / 4);
    maybe_register(g.priority_decoder(p.decoder_sel, arms, p.width), p.width);
  }
  for (int i = 0; i < p.datapath; ++i)
    maybe_register(g.datapath(p.width, 3), p.width);

  return {name, g.finish()};
}

Profile profile_for(const std::string& name) {
  // Mixes follow Table III: the dominant engine per circuit and the overall
  // headroom left by the baseline.
  static const std::map<std::string, Profile> profiles = {
      // Rebuild-dominant, very large, wide case trees; essentially nothing
      // for the SAT engine (paper: Rebuild 24.91% / SAT 0.01%).
      {"top_cache_axi",
       {.case_chains = 26, .case_sel_min = 5, .case_sel_max = 6, .case_items_scale = 1,
        .casez_chance = 0.0, .dependent = 0, .dependent_depth = 2, .same_ctrl = 6, .decoders = 0,
        .decoder_sel = 5, .datapath = 24, .width = 32, .registered_outputs = 10}},
      // Balanced, small gains (0.71% / 2.01%).
      {"pci_bridge32",
       {.case_chains = 3, .case_sel_min = 3, .case_sel_max = 4, .case_items_scale = 2,
        .dependent = 2, .dependent_depth = 3, .same_ctrl = 14, .decoders = 1,
        .decoder_sel = 4, .datapath = 34, .width = 32, .registered_outputs = 8}},
      // SAT-dominant crossbar arbitration (19.05% / 4.65%).
      {"wb_conmax",
       {.case_chains = 3, .case_sel_min = 3, .case_sel_max = 3, .case_items_scale = 4,
        .dependent = 14, .dependent_depth = 4, .same_ctrl = 10, .decoders = 2,
        .decoder_sel = 4, .datapath = 24, .width = 16, .registered_outputs = 6}},
      // Already near-optimal for the baseline (0.12% / 0.47%).
      {"mem_ctrl",
       {.case_chains = 1, .case_sel_min = 3, .case_sel_max = 3, .case_items_scale = 1,
        .dependent = 0, .dependent_depth = 2, .same_ctrl = 42, .decoders = 0,
        .decoder_sel = 4, .datapath = 40, .width = 16, .registered_outputs = 8}},
      // SAT-leaning DMA channel arbitration, Rebuild nearly idle
      // (11.52% / 0.80%).
      {"wb_dma",
       {.case_chains = 0, .case_sel_min = 3, .case_sel_max = 3, .case_items_scale = 2,
        .dependent = 8, .dependent_depth = 4, .same_ctrl = 12, .decoders = 1,
        .decoder_sel = 4, .datapath = 30, .width = 16, .registered_outputs = 6}},
      // CPU core, modest gains (0.71% / 1.61%).
      {"tv80",
       {.case_chains = 4, .case_sel_min = 3, .case_sel_max = 4, .case_items_scale = 3,
        .dependent = 2, .dependent_depth = 2, .same_ctrl = 18, .decoders = 2,
        .decoder_sel = 4, .datapath = 34, .width = 8, .registered_outputs = 10}},
      // (1.60% / 1.69%).
      {"usb_funct",
       {.case_chains = 4, .case_sel_min = 3, .case_sel_max = 4, .case_items_scale = 3,
        .dependent = 5, .dependent_depth = 3, .same_ctrl = 14, .decoders = 2,
        .decoder_sel = 4, .datapath = 26, .width = 16, .registered_outputs = 8}},
      // Datapath-heavy MAC, tiny gains (0.49% / 0.48%).
      {"ethernet",
       {.case_chains = 1, .case_sel_min = 3, .case_sel_max = 3, .case_items_scale = 4,
        .dependent = 1, .dependent_depth = 2, .same_ctrl = 8, .decoders = 1,
        .decoder_sel = 4, .datapath = 60, .width = 32, .registered_outputs = 12}},
      // Decoder-flavored core, Rebuild-leaning (0.17% / 1.97%).
      {"riscv",
       {.case_chains = 6, .case_sel_min = 4, .case_sel_max = 5, .case_items_scale = 3,
        .casez_chance = 0.0, .dependent = 0, .dependent_depth = 2, .same_ctrl = 6, .decoders = 2,
        .decoder_sel = 5, .datapath = 36, .width = 32, .registered_outputs = 10}},
      // Small, config-register case trees (1.34% / 5.36%).
      {"ac97_ctrl",
       {.case_chains = 6, .case_sel_min = 4, .case_sel_max = 4, .case_items_scale = 2,
        .casez_chance = 0.1, .dependent = 2, .dependent_depth = 3, .same_ctrl = 8, .decoders = 1,
        .decoder_sel = 4, .datapath = 14, .width = 16, .registered_outputs = 4}},
  };
  auto it = profiles.find(name);
  if (it == profiles.end())
    throw std::invalid_argument("unknown benchmark circuit: " + name);
  return it->second;
}

std::vector<BenchCircuit> public_suite() {
  const char* order[] = {"top_cache_axi", "pci_bridge32", "wb_conmax", "mem_ctrl",
                         "wb_dma",        "tv80",         "usb_funct", "ethernet",
                         "riscv",         "ac97_ctrl"};
  std::vector<BenchCircuit> out;
  uint64_t seed = 0x5eed2005;
  for (const char* name : order)
    out.push_back(generate_circuit(name, profile_for(name), seed += 0x9e37));
  return out;
}

} // namespace smartly::benchgen
