// Multi-million-AIG-node benchmark families for parallel-scaling curves.
//
// The classic suites (public/industrial/random) top out at a few thousand
// AIG nodes — far too small for thread-scaling curves to bend: the rewrite
// engine's per-round fixed costs dominate and every eval queue drains before
// contention exists. These generators build gate-level netlists *directly on
// the IR* (no Verilog round-trip, which would dominate generation time at
// this size) with a target AIG-node budget in the millions.
//
// Two families, mirroring the classic split:
//  * scale_random      — a layered random DAG of word-wide And/Or/Xor/Mux/Not
//    gates over a sliding signal window. A round-robin cursor guarantees
//    every produced signal is read again, so nearly the whole graph stays
//    live and the rewrite engine sees the full root population.
//  * scale_industrial  — replicated datapath tiles (and/xor halves re-merged
//    by muxes, same-control redundancy, or-of-ands decompositions) drawing
//    operands from the sliding window; deliberately redundant structure of
//    the kind DAG-aware rewriting exploits, so commits — and therefore
//    reservation conflicts — actually happen at scale.
//
// Generation is a pure function of (seed, spec): byte-identical modules on
// every run and platform, which the bench-scaling CI job relies on when it
// compares netlists across thread counts.
#pragma once

#include "rtlil/module.hpp"

#include <cstdint>
#include <string>

namespace smartly::benchgen {

struct ScaleSpec {
  uint64_t seed = 1;
  /// Approximate AIG-node budget (AND nodes after bit blasting). Generation
  /// stops at the first gate that crosses it, so the real count overshoots
  /// by at most one gate's worth of nodes.
  size_t target_aig_nodes = 1000000;
  /// Word width of the generated gates. Wider words mean fewer RTLIL cells
  /// per AIG node (cheaper generation) but coarser rewrite roots.
  int width = 8;
};

/// Build the scale_random family member into `design` as module `name`.
rtlil::Module* scale_random_netlist(rtlil::Design& design, const std::string& name,
                                    const ScaleSpec& spec);

/// Build the scale_industrial family member into `design` as module `name`.
rtlil::Module* scale_industrial_netlist(rtlil::Design& design, const std::string& name,
                                        const ScaleSpec& spec);

} // namespace smartly::benchgen
