#include "benchgen/random_circuit.hpp"

#include "benchgen/verilog_gen.hpp"
#include "util/hashing.hpp"

#include <vector>

namespace smartly::benchgen {

using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;
using rtlil::Wire;

std::string random_verilog(uint64_t seed, int size) {
  VerilogGen g("rand_top", seed);
  Rng& rng = g.rng();
  for (int i = 0; i < size; ++i) {
    const int width = static_cast<int>(rng.range(1, 12));
    switch (rng.below(5)) {
    case 0: {
      const int sel = static_cast<int>(rng.range(2, 4));
      g.expose(g.case_chain(sel, static_cast<int>(rng.range(2, 1 << sel)), width,
                            rng.chance(0.5)),
               width);
      break;
    }
    case 1:
      g.expose(g.dependent_select(width, static_cast<int>(rng.range(1, 4))), width);
      break;
    case 2:
      g.expose(g.same_ctrl_redundant(width), width);
      break;
    case 3:
      g.expose(g.priority_decoder(static_cast<int>(rng.range(2, 4)),
                                  static_cast<int>(rng.range(2, 6)), width),
               width);
      break;
    default:
      g.expose(g.datapath(width, static_cast<int>(rng.range(1, 4))), width);
      break;
    }
  }
  return g.finish();
}

Module* random_netlist(Design& design, const std::string& name, uint64_t seed, int n_cells) {
  Rng rng(seed);
  Module* m = design.add_module(name);

  // Signal pool seeded with primary inputs.
  std::vector<SigSpec> pool;
  const int n_inputs = 4 + static_cast<int>(rng.below(4));
  for (int i = 0; i < n_inputs; ++i) {
    Wire* w = m->add_wire("pi" + std::to_string(i), static_cast<int>(rng.range(1, 8)));
    m->set_port_input(w);
    pool.emplace_back(w);
  }
  auto pick = [&]() -> const SigSpec& { return pool[rng.below(pool.size())]; };

  static const CellType kTypes[] = {
      CellType::Not,      CellType::Neg,       CellType::ReduceAnd, CellType::ReduceOr,
      CellType::ReduceXor, CellType::LogicNot, CellType::And,       CellType::Or,
      CellType::Xor,      CellType::Xnor,      CellType::Shl,       CellType::Shr,
      CellType::Add,      CellType::Sub,       CellType::Mul,       CellType::Lt,
      CellType::Le,       CellType::Eq,        CellType::Ne,        CellType::Ge,
      CellType::Gt,       CellType::LogicAnd,  CellType::LogicOr,   CellType::Mux,
      CellType::Pmux,
  };

  for (int i = 0; i < n_cells; ++i) {
    const CellType t = kTypes[rng.below(sizeof(kTypes) / sizeof(kTypes[0]))];
    if (rtlil::cell_is_unary(t)) {
      const SigSpec a = pick();
      const int yw = rtlil::cell_is_compare(t) || t == CellType::LogicNot ||
                             t == CellType::ReduceAnd || t == CellType::ReduceOr ||
                             t == CellType::ReduceXor
                         ? 1
                         : static_cast<int>(rng.range(1, 8));
      pool.push_back(m->add_unary(t, a, yw, rng.chance(0.3)));
    } else if (rtlil::cell_is_binary(t)) {
      const SigSpec a = pick();
      const SigSpec b = pick();
      int yw;
      if (rtlil::cell_is_compare(t) || t == CellType::LogicAnd || t == CellType::LogicOr)
        yw = 1;
      else
        yw = static_cast<int>(rng.range(1, 8));
      const bool sgn = rng.chance(0.25);
      pool.push_back(m->add_binary(t, a, b, yw, sgn, sgn));
    } else if (t == CellType::Mux) {
      SigSpec a = pick();
      SigSpec b = pick();
      const int w = std::max(a.size(), b.size());
      a = a.extended(w, false);
      b = b.extended(w, false);
      SigSpec s = pick();
      pool.push_back(m->Mux(a, b, s.extract(0, 1)));
    } else { // Pmux
      const int w = static_cast<int>(rng.range(1, 6));
      const int n = static_cast<int>(rng.range(2, 4));
      SigSpec a = pick().extended(w, false);
      SigSpec b, s;
      for (int j = 0; j < n; ++j) {
        b.append(pick().extended(w, false));
        s.append(pick().extract(0, 1));
      }
      pool.push_back(m->Pmux(a, b, s));
    }
  }

  // Expose the last few results as outputs.
  const int n_out = std::min<size_t>(4, pool.size());
  for (int i = 0; i < n_out; ++i) {
    const SigSpec& sig = pool[pool.size() - 1 - static_cast<size_t>(i)];
    Wire* w = m->add_wire("po" + std::to_string(i), sig.size());
    m->set_port_output(w);
    m->connect(SigSpec(w), sig);
  }
  m->check();
  return m;
}

} // namespace smartly::benchgen
