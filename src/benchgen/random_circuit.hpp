// Random circuit generation for property-based testing.
//
// Two flavors:
//  * random_verilog     — random mixes of the structural motifs, run through
//    the full frontend; used for end-to-end "optimize then prove equivalent"
//    properties.
//  * random_netlist     — random word-level cell DAGs built directly on the
//    IR (all cell types, random widths); used to cross-validate the
//    word-level evaluator against AIG bit-blasting and the SAT encoding.
#pragma once

#include "rtlil/module.hpp"

#include <cstdint>
#include <string>

namespace smartly::benchgen {

std::string random_verilog(uint64_t seed, int size = 6);

/// Build a random combinational module named `name` into `design`.
/// Returns the module. Widths are kept <= 8 so exhaustive checks stay cheap.
rtlil::Module* random_netlist(rtlil::Design& design, const std::string& name, uint64_t seed,
                              int n_cells);

} // namespace smartly::benchgen
