// The ten public benchmark circuits (IWLS-2005 + RISC-V stand-ins).
//
// Each circuit is generated from structural motifs whose mix follows the
// paper's per-circuit ablation profile (Table III): e.g. top_cache_axi is
// dominated by wide single-selector case muxtrees (Rebuild 24.91%, SAT
// 0.01%), wb_conmax by logically dependent arbitration (SAT 19.05%), and
// mem_ctrl is already near-optimal for the baseline (Full 0.53%). Absolute
// sizes are scaled to laptop runtime; DESIGN.md documents the substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smartly::benchgen {

struct BenchCircuit {
  std::string name;
  std::string verilog;
};

/// Structural profile of one benchmark circuit.
struct Profile {
  int case_chains = 0;      ///< Rebuild-sensitive case muxtrees
  int case_sel_min = 3, case_sel_max = 4;
  int case_items_scale = 2; ///< label density: items ≈ 2^sel/(2·scale) … 2^sel/scale
  double casez_chance = 0.3; ///< share of chains written as casez (overlapping
                             ///< z-pattern labels, which feed the SAT engine)
  int dependent = 0;        ///< SAT-sensitive dependent-control nests
  int dependent_depth = 3;
  int same_ctrl = 0;        ///< baseline-visible Fig.1/Fig.2 redundancy
  int decoders = 0;         ///< priority if/else-if decoders
  int decoder_sel = 4;
  int datapath = 0;         ///< neutral arithmetic blocks
  int width = 16;           ///< dominant data width
  int registered_outputs = 0; ///< add dff pipeline stages on some results
};

/// Generate one circuit from a profile (deterministic in `seed`).
BenchCircuit generate_circuit(const std::string& name, const Profile& profile, uint64_t seed);

/// The ten circuits of Table II, in the paper's order.
std::vector<BenchCircuit> public_suite();

/// Profile lookup for ablation studies (throws on unknown name).
Profile profile_for(const std::string& name);

} // namespace smartly::benchgen
