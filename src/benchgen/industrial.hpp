// Industrial benchmark stand-in (paper §IV.B).
//
// The paper's industrial suite is confidential; what it reports about it is
// (a) average AIG area in the millions, with 37.5% of test points above one
// million nodes, (b) a much higher proportion of MUX/PMUX selection logic
// than the public suite, (c) Yosys's baseline achieving almost no reduction,
// and (d) smaRTLy removing 47.2% more area than Yosys. This generator
// produces selection-dominated designs with deep dependent control and wide
// case trees, at a scale factor chosen for laptop runtime; the *structure*
// (not the absolute node count) carries the experiment.
#pragma once

#include "benchgen/public_bench.hpp"

namespace smartly::benchgen {

/// One test point. `scale` multiplies all motif counts; size skew across the
/// suite reproduces the paper's "37.5% of test points above the large
/// threshold" shape.
BenchCircuit generate_industrial(int test_point, int scale, uint64_t seed);

/// The default 8-test-point industrial suite (3 of 8 = 37.5% large).
std::vector<BenchCircuit> industrial_suite(int base_scale = 1);

} // namespace smartly::benchgen
