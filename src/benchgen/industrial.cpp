#include "benchgen/industrial.hpp"

#include "benchgen/verilog_gen.hpp"
#include "util/log.hpp"

namespace smartly::benchgen {

BenchCircuit generate_industrial(int test_point, int scale, uint64_t seed) {
  // Selection-logic dominated: almost everything is a muxtree, and the
  // control logic is interdependent (grant/mask/valid chains), which is
  // exactly where the syntactic baseline "has almost no optimization effect".
  Profile p;
  p.case_chains = 24 * scale;
  p.case_sel_min = 4;
  p.case_sel_max = 6;
  p.case_items_scale = 1; // dense, heavily shared case tables
  p.dependent = 80 * scale;
  p.dependent_depth = 7;
  p.same_ctrl = 1; // almost no baseline-visible redundancy (paper: "almost
                   // no optimization effect" for Yosys on this suite)
  p.decoders = 2 * scale;
  p.decoder_sel = 5;
  p.datapath = 3; // thin datapath: selection logic dominates
  p.width = 24;
  p.registered_outputs = 8 * scale;
  return generate_circuit("industrial_tp" + std::to_string(test_point), p, seed);
}

std::vector<BenchCircuit> industrial_suite(int base_scale) {
  std::vector<BenchCircuit> out;
  uint64_t seed = 0x1d057a1;
  // 8 test points; 3 (37.5%) at 3x the base scale ("more than one million
  // AIG nodes" in the paper's units).
  const int scales[8] = {1, 1, 3, 1, 3, 1, 1, 3};
  for (int i = 0; i < 8; ++i)
    out.push_back(generate_industrial(i, scales[i] * base_scale, seed += 0x777));
  return out;
}

} // namespace smartly::benchgen
