#include "benchgen/verilog_gen.hpp"

#include "util/log.hpp"

#include <algorithm>

namespace smartly::benchgen {

namespace {

std::string range(int width) {
  return width == 1 ? std::string() : str_format("[%d:0] ", width - 1);
}

/// Verilog sized binary literal for `value` (width bits).
std::string bin_literal(uint64_t value, int width) {
  std::string bits;
  for (int i = width - 1; i >= 0; --i)
    bits.push_back(((value >> i) & 1) ? '1' : '0');
  return str_format("%d'b%s", width, bits.c_str());
}

} // namespace

VerilogGen::VerilogGen(std::string module_name, uint64_t seed)
    : name_(std::move(module_name)), rng_(seed) {}

std::string VerilogGen::fresh(const char* prefix) {
  return str_format("%s_%llu", prefix, static_cast<unsigned long long>(counter_++));
}

std::string VerilogGen::input(int width) {
  const std::string n = fresh("in");
  decls_ += str_format("  input %s%s;\n", range(width).c_str(), n.c_str());
  ports_.push_back(n);
  return n;
}

std::string VerilogGen::wire(int width) {
  const std::string n = fresh("w");
  decls_ += str_format("  wire %s%s;\n", range(width).c_str(), n.c_str());
  return n;
}

void VerilogGen::expose(const std::string& signal, int width) {
  const std::string n = fresh("out");
  decls_ += str_format("  output %s%s;\n", range(width).c_str(), n.c_str());
  body_ += str_format("  assign %s = %s;\n", n.c_str(), signal.c_str());
  ports_.push_back(n);
}

void VerilogGen::raw(const std::string& text) { body_ += text; }

std::string VerilogGen::case_chain(int sel_width, int n_items, int width, bool casez) {
  const std::string sel = input(sel_width);
  const std::string y = fresh("y");
  decls_ += str_format("  reg %s%s;\n", range(width).c_str(), y.c_str());

  // Data leaves: a mix of fresh inputs and constants, some shared between
  // items so the ADD has repeated terminals (that is what makes a good
  // variable order pay off, §III).
  // Heavy sharing (few distinct values across many labels) is what makes the
  // rebuilt ADD much smaller than the original chain — config/status muxes in
  // real RTL typically select among a handful of registers.
  std::vector<std::string> leaves;
  const int n_leaves = std::max(2, n_items / 4 + 1);
  for (int i = 0; i < n_leaves; ++i) {
    if (rng_.chance(0.25))
      leaves.push_back(bin_literal(rng_.next() & ((width >= 64 ? ~0ull : (1ull << width) - 1)),
                                   width));
    else
      leaves.push_back(input(width));
  }

  body_ += str_format("  always @(*) begin\n    %s(%s)\n", casez ? "casez" : "case",
                      sel.c_str());
  const uint64_t space = uint64_t(1) << sel_width;
  for (int i = 0; i < n_items && static_cast<uint64_t>(i) < space; ++i) {
    std::string label;
    if (casez && i > 0 && rng_.chance(0.4)) {
      // One-hot-with-wildcards label (paper Listing 2 style: 1zz / 01z / 001).
      const int hot = static_cast<int>(rng_.below(static_cast<uint64_t>(sel_width)));
      std::string bits;
      for (int j = sel_width - 1; j >= 0; --j)
        bits.push_back(j > hot ? '0' : (j == hot ? '1' : 'z'));
      label = str_format("%d'b%s", sel_width, bits.c_str());
    } else {
      label = bin_literal(static_cast<uint64_t>(i), sel_width);
    }
    const std::string& leaf = leaves[rng_.below(leaves.size())];
    body_ += str_format("      %s: %s = %s;\n", label.c_str(), y.c_str(), leaf.c_str());
  }
  body_ += str_format("      default: %s = %s;\n    endcase\n  end\n", y.c_str(),
                      leaves[rng_.below(leaves.size())].c_str());
  return y;
}

std::string VerilogGen::dependent_chain(int width, int length) {
  const std::string s = input(1);
  std::vector<std::string> k;
  std::string prev = s;
  for (int i = 0; i < length; ++i) {
    const std::string r = input(1);
    const std::string ki = wire(1);
    body_ += str_format("  assign %s = %s | %s;\n", ki.c_str(), prev.c_str(), r.c_str());
    k.push_back(ki);
    prev = ki;
  }
  std::vector<std::string> data;
  for (int i = 0; i <= length + 1; ++i)
    data.push_back(input(width));

  // Outermost inner control is the far end of the chain (k_{n-1}), so the
  // first oracle query under the s=1 path condition must pull the whole
  // or-chain into the sub-graph to prove it forced.
  std::string expr = data[0];
  for (int i = 0; i < length; ++i)
    expr = str_format("(%s ? %s : %s)", k[static_cast<size_t>(i)].c_str(),
                      data[static_cast<size_t>(i + 1)].c_str(), expr.c_str());
  expr = str_format("%s ? %s : %s", s.c_str(), expr.c_str(), data.back().c_str());

  const std::string y = wire(width);
  body_ += str_format("  assign %s = %s;\n", y.c_str(), expr.c_str());
  return y;
}

std::string VerilogGen::dependent_select(int width, int depth) {
  // Controls: s0..s_{depth-1} plus r; inner conditions are disjunctions /
  // conjunctions of outer ones, so their value is implied on the active path.
  std::vector<std::string> s;
  for (int i = 0; i < depth; ++i)
    s.push_back(input(1));
  const std::string r = input(1);

  std::vector<std::string> data;
  for (int i = 0; i <= depth + 1; ++i)
    data.push_back(input(width));

  // Shape (depth 2 example):
  //   y = s0 ? ((s0 | r) ? ((s1 & s0) | s1 ? ... ) : d_k) : d_last
  // Every second level uses a dependent condition.
  std::string expr = data.back();
  for (int i = depth - 1; i >= 0; --i) {
    std::string cond;
    switch (rng_.below(3)) {
    case 0: // implied-true on the s_i branch: (s_i | x)
      cond = str_format("(%s | %s)", s[static_cast<size_t>(i)].c_str(), r.c_str());
      break;
    case 1: // implied-false under !s_j ... use conjunction with ancestor
      cond = str_format("(%s & %s)", s[static_cast<size_t>(i)].c_str(),
                        s[static_cast<size_t>((i + 1) % depth)].c_str());
      break;
    default:
      cond = s[static_cast<size_t>(i)];
      break;
    }
    const std::string inner =
        str_format("(%s ? %s : %s)", cond.c_str(), data[static_cast<size_t>(i)].c_str(),
                   expr.c_str());
    // Outer guard on the *plain* signal makes the inner condition dependent.
    expr = str_format("(%s ? %s : %s)", s[static_cast<size_t>(i)].c_str(), inner.c_str(),
                      data[static_cast<size_t>(i + 1)].c_str());
  }
  const std::string y = wire(width);
  body_ += str_format("  assign %s = %s;\n", y.c_str(), expr.c_str());
  return y;
}

std::string VerilogGen::same_ctrl_redundant(int width) {
  const std::string s = input(1);
  const std::string a = input(width);
  const std::string b = input(width);
  const std::string c = input(width);
  const std::string y = wire(width);
  if (rng_.chance(0.5)) {
    // Fig. 1: control repeated in a descendant mux.
    body_ += str_format("  assign %s = %s ? (%s ? %s : %s) : %s;\n", y.c_str(), s.c_str(),
                        s.c_str(), a.c_str(), b.c_str(), c.c_str());
  } else {
    // Fig. 2: control reappears as a data operand (1-bit flavor widened).
    const std::string g = input(1);
    body_ += str_format("  assign %s = %s ? (%s ? {%d{%s}} : %s) : %s;\n", y.c_str(),
                        s.c_str(), g.c_str(), width, s.c_str(), b.c_str(), c.c_str());
  }
  return y;
}

std::string VerilogGen::priority_decoder(int sel_width, int n_arms, int width) {
  const std::string sel = input(sel_width);
  std::vector<std::string> data;
  for (int i = 0; i < n_arms + 1; ++i)
    data.push_back(input(width));
  const std::string y = fresh("y");
  decls_ += str_format("  reg %s%s;\n", range(width).c_str(), y.c_str());
  body_ += "  always @(*) begin\n";
  for (int i = 0; i < n_arms; ++i) {
    body_ += str_format("    %s (%s == %s) %s = %s;\n", i == 0 ? "if" : "else if",
                        sel.c_str(), bin_literal(static_cast<uint64_t>(i), sel_width).c_str(),
                        y.c_str(), data[static_cast<size_t>(i)].c_str());
  }
  body_ += str_format("    else %s = %s;\n  end\n", y.c_str(), data.back().c_str());
  return y;
}

std::string VerilogGen::datapath(int width, int ops) {
  std::string cur = input(width);
  for (int i = 0; i < ops; ++i) {
    const std::string other = rng_.chance(0.5) ? input(width) : cur;
    const std::string next = wire(width);
    switch (rng_.below(4)) {
    case 0:
      body_ += str_format("  assign %s = %s + %s;\n", next.c_str(), cur.c_str(), other.c_str());
      break;
    case 1:
      body_ += str_format("  assign %s = %s ^ (%s >> 1);\n", next.c_str(), cur.c_str(),
                          other.c_str());
      break;
    case 2:
      body_ += str_format("  assign %s = %s & ~%s;\n", next.c_str(), cur.c_str(), other.c_str());
      break;
    default:
      body_ += str_format("  assign %s = (%s < %s) ? %s : %s;\n", next.c_str(), cur.c_str(),
                          other.c_str(), cur.c_str(), other.c_str());
      break;
    }
    cur = next;
  }
  return cur;
}

std::string VerilogGen::pipeline_reg(const std::string& d, int width) {
  if (!has_clock_) {
    decls_ += "  input clk;\n";
    ports_.insert(ports_.begin(), "clk");
    has_clock_ = true;
  }
  const std::string q = fresh("q");
  decls_ += str_format("  reg %s%s;\n", range(width).c_str(), q.c_str());
  body_ += str_format("  always @(posedge clk) %s <= %s;\n", q.c_str(), d.c_str());
  return q;
}

std::string VerilogGen::finish() {
  std::string out = "module " + name_ + "(";
  for (size_t i = 0; i < ports_.size(); ++i) {
    if (i)
      out += ", ";
    out += ports_[i];
  }
  out += ");\n" + decls_ + body_ + "endmodule\n";
  return out;
}

} // namespace smartly::benchgen
