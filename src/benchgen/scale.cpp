#include "benchgen/scale.hpp"

#include "util/hashing.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace smartly::benchgen {

using rtlil::CellType;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigSpec;
using rtlil::Wire;

namespace {

// Incremental AIG-node cost model per W-wide word gate after bit blasting:
// And/Or are one AND node per bit, Xor and Mux are three, Not is free
// (complement edges). The generators stop at the first gate that crosses the
// budget, so totals overshoot by at most one gate.
constexpr size_t kAndCost = 1;
constexpr size_t kXorCost = 3;
constexpr size_t kMuxCost = 3;

/// Shared generation state: a grow-only signal pool with a round-robin
/// consumption cursor. Every gate reads exactly as many cursor signals as it
/// pushes, so the unread tail stays at its initial size (the primary inputs)
/// and, once the tail is folded into the outputs, essentially the whole DAG
/// is transitively live — the rewrite engine sees the full root population
/// instead of sweeping a mostly-dead graph.
struct Pool {
  Pool(Module* m, Rng& rng, int width, int n_inputs) : m_(m), rng_(rng), width_(width) {
    for (int i = 0; i < n_inputs; ++i) {
      Wire* w = m_->add_wire("pi" + std::to_string(i), width_);
      m_->set_port_input(w);
      signals_.emplace_back(w);
    }
  }

  /// Next unread signal, round-robin. Guarantees liveness of the prefix.
  const SigSpec& next() { return signals_[cursor_++ % signals_.size()]; }

  /// Random signal from the recent window; creates the DAG sharing.
  const SigSpec& window() {
    const size_t k = std::min<size_t>(signals_.size(), 64);
    return signals_[signals_.size() - 1 - rng_.below(k)];
  }

  void push(const SigSpec& sig) { signals_.push_back(sig); }

  /// Xor-fold every signal the cursor never consumed (plus the last window
  /// entry) into one accumulator wired to an output port, then expose two
  /// recent results directly. Keeps the tail — and through it the rest of
  /// the graph — observable.
  void finish() {
    SigSpec acc = signals_[signals_.size() - 1];
    for (size_t i = cursor_; i < signals_.size(); ++i)
      acc = m_->add_binary(CellType::Xor, acc, signals_[i], width_, false, false);
    Wire* fold = m_->add_wire("po_fold", width_);
    m_->set_port_output(fold);
    m_->connect(SigSpec(fold), acc);
    for (int i = 0; i < 2 && signals_.size() > 2; ++i) {
      const SigSpec& sig = signals_[signals_.size() - 2 - static_cast<size_t>(i)];
      Wire* w = m_->add_wire("po" + std::to_string(i), width_);
      m_->set_port_output(w);
      m_->connect(SigSpec(w), sig);
    }
  }

  Module* m_;
  Rng& rng_;
  int width_;
  std::vector<SigSpec> signals_;
  size_t cursor_ = 0;
};

int clamp_width(int w) { return std::max(1, std::min(w, 30)); }

} // namespace

Module* scale_random_netlist(Design& design, const std::string& name, const ScaleSpec& spec) {
  Rng rng(spec.seed);
  Module* m = design.add_module(name);
  const int W = clamp_width(spec.width);
  const size_t uw = static_cast<size_t>(W);
  Pool pool(m, rng, W, 16);

  size_t nodes = 0;
  while (nodes < spec.target_aig_nodes) {
    // Weighted gate mix: plain And/Or keep the AIG shallow and cheap, Xor and
    // Mux contribute the 3-node cones DAG-aware rewriting restructures, the
    // occasional Not seeds complement edges.
    const uint64_t r = rng.below(10);
    const SigSpec a = pool.next();
    if (r < 3) {
      pool.push(m->add_binary(CellType::And, a, pool.window(), W, false, false));
      nodes += kAndCost * uw;
    } else if (r < 5) {
      pool.push(m->add_binary(CellType::Or, a, pool.window(), W, false, false));
      nodes += kAndCost * uw;
    } else if (r < 7) {
      pool.push(m->add_binary(CellType::Xor, a, pool.window(), W, false, false));
      nodes += kXorCost * uw;
    } else if (r < 9) {
      const SigSpec b = pool.window();
      const SigSpec s = pool.window();
      pool.push(m->Mux(a, b, s.extract(0, 1)));
      nodes += kMuxCost * uw;
    } else {
      pool.push(m->add_unary(CellType::Not, a, W, false));
    }
  }

  pool.finish();
  m->check();
  return m;
}

Module* scale_industrial_netlist(Design& design, const std::string& name,
                                 const ScaleSpec& spec) {
  Rng rng(spec.seed);
  Module* m = design.add_module(name);
  const int W = clamp_width(spec.width);
  const size_t uw = static_cast<size_t>(W);
  Pool pool(m, rng, W, 16);

  // One datapath tile = 16*W AIG nodes of deliberately redundant structure:
  // a same-control mux pair over an and/xor split (the mux-swap motif the
  // rewriter collapses), an or-of-ands that distributes to a single and, and
  // an xor re-merge. Four cursor reads / four pushes keep the tail constant.
  size_t nodes = 0;
  while (nodes < spec.target_aig_nodes) {
    const SigSpec a = pool.next();
    const SigSpec b = pool.next();
    const SigSpec c = pool.next();
    const SigSpec s = pool.next().extract(0, 1);
    const SigSpec d = pool.window();

    const SigSpec t1 = m->add_binary(CellType::And, a, b, W, false, false);
    const SigSpec t2 = m->add_binary(CellType::Xor, a, b, W, false, false);
    const SigSpec m1 = m->Mux(t1, t2, s);
    const SigSpec m2 = m->Mux(t2, t1, s);
    const SigSpec u = m->add_binary(
        CellType::Or, m->add_binary(CellType::And, a, d, W, false, false),
        m->add_binary(CellType::And, b, d, W, false, false), W, false, false);
    const SigSpec v = m->add_binary(CellType::Xor, m1, c, W, false, false);

    pool.push(m1);
    pool.push(m2);
    pool.push(u);
    pool.push(v);
    nodes += (kAndCost * 4 + kXorCost * 2 + kMuxCost * 2) * uw;
  }

  pool.finish();
  m->check();
  return m;
}

} // namespace smartly::benchgen
