// Checksummed snapshot container for the service's persistent state.
//
// Every file the daemon persists across restarts (warm-cache snapshots,
// anything else that must survive kill -9) is wrapped in one container
// format:
//
//   bytes  0..7   magic "SMLYSNAP"
//   bytes  8..11  format version (uint32 LE) — bumped whenever the payload
//                 *semantics* change, so an old daemon never misreads a new
//                 snapshot and vice versa
//   bytes 12..19  payload length (uint64 LE)
//   bytes 20..35  Hash128 checksum of the payload (two uint64 LE words)
//   bytes 36..    payload
//
// The reader trusts nothing: magic, version, declared length, and checksum
// must all agree with the bytes actually present, or the snapshot is
// rejected with a diagnostic. load_snapshot_file() additionally moves a
// damaged file aside (<path>.corrupt) instead of deleting it — the daemon
// cold-rebuilds and keeps running, and the evidence survives for a bug
// report. Corruption is never fatal and a damaged snapshot is never
// partially applied.
//
// Writes go through util::atomic_write_file (temp + fsync + rename), so a
// crash mid-write leaves the previous snapshot intact; the torn temp file is
// swept on the next startup.
#pragma once

#include "util/hashing.hpp"

#include <cstdint>
#include <string>

namespace smartly::service {

/// Content checksum used by the container (FNV-style over 8-byte lanes,
/// folded through hash128_combine). Not cryptographic — the threat model is
/// torn writes and bit rot, not an adversary.
Hash128 payload_checksum(const std::string& payload);

/// Wrap `payload` into the container format.
std::string seal_snapshot(uint32_t version, const std::string& payload);

/// Verify + unwrap container bytes. On success fills `*payload` and returns
/// true; on any damage (short header, bad magic, version mismatch, length
/// mismatch, checksum mismatch) fills `*error` with a specific diagnostic
/// and returns false without touching `*payload`.
bool open_snapshot(const std::string& bytes, uint32_t expected_version, std::string* payload,
                   std::string* error);

/// Atomically write a sealed snapshot to `path` (temp + fsync + rename).
bool store_snapshot_file(const std::string& path, uint32_t version, const std::string& payload,
                         std::string* error);

/// Read and unwrap a snapshot file. A missing file returns false with an
/// empty `*error` (cold start, not a failure). A damaged file is renamed to
/// `<path>.corrupt` (best effort; `*quarantined_aside` reports whether the
/// rename happened), `*error` describes the damage, and false is returned —
/// the caller cold-rebuilds.
bool load_snapshot_file(const std::string& path, uint32_t expected_version, std::string* payload,
                        std::string* error, bool* quarantined_aside = nullptr);

// --- little-endian payload builders/readers (shared by the cache codecs) ---

inline void put_u8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }

inline void put_u16(std::string& out, uint16_t v) {
  put_u8(out, static_cast<uint8_t>(v & 0xff));
  put_u8(out, static_cast<uint8_t>(v >> 8));
}

inline void put_u32(std::string& out, uint32_t v) {
  put_u16(out, static_cast<uint16_t>(v & 0xffff));
  put_u16(out, static_cast<uint16_t>(v >> 16));
}

inline void put_u64(std::string& out, uint64_t v) {
  put_u32(out, static_cast<uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<uint32_t>(v >> 32));
}

/// Bounds-checked cursor over payload bytes. Any past-the-end read sets the
/// sticky `ok` flag false and returns zeros; codecs check ok once per record
/// instead of after every field.
struct ByteReader {
  const std::string& bytes;
  size_t pos = 0;
  bool ok = true;

  explicit ByteReader(const std::string& b) : bytes(b) {}

  uint8_t u8() {
    if (pos + 1 > bytes.size()) {
      ok = false;
      return 0;
    }
    return static_cast<uint8_t>(bytes[pos++]);
  }
  uint16_t u16() {
    const uint16_t lo = u8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(u8()) << 8));
  }
  uint32_t u32() {
    const uint32_t lo = u16();
    return lo | (static_cast<uint32_t>(u16()) << 16);
  }
  uint64_t u64() {
    const uint64_t lo = u32();
    return lo | (static_cast<uint64_t>(u32()) << 32);
  }
  bool at_end() const { return pos == bytes.size(); }
};

} // namespace smartly::service
