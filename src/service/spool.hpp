// Spool-directory job intake for the service daemon.
//
// Layout under the service root:
//
//   jobs/        incoming work: <name>.v, atomically renamed in by clients
//   done/        results: <name>.v (optimized netlist) + <name>.result
//                (key=value manifest, written last as the commit record)
//   failed/      jobs that exhausted their retries: <name>.v + <name>.error
//   quarantine/  crash-looping jobs moved aside with their repro bundles
//   cache/       warm-cache snapshot, job journal, service_stats.json
//   tmp/         client staging area for atomic submission
//
// The rename-into-jobs/ protocol is what makes intake crash-safe from both
// sides: a client that dies mid-write leaves garbage in tmp/ (swept at
// startup), never a half job in jobs/; the daemon only ever sees complete
// files. Results follow the same discipline — done/<name>.result is written
// after done/<name>.v, so a .result file's existence proves the full pair
// is present.
#pragma once

#include <string>
#include <vector>

namespace smartly::service {

struct SpoolPaths {
  std::string root;
  std::string jobs;
  std::string done;
  std::string failed;
  std::string quarantine;
  std::string cache;
  std::string tmp;

  static SpoolPaths at(const std::string& root);

  std::string journal_path() const { return cache + "/journal.log"; }
  std::string warm_cache_path() const { return cache + "/warm_cache.snap"; }
  std::string stats_path() const { return root + "/service_stats.json"; }
  std::string metrics_path() const { return root + "/metrics.prom"; }
  std::string quarantine_set_path() const { return cache + "/quarantine.txt"; }

  /// Create every directory (idempotent) and sweep stale tmp/staging files.
  bool ensure(std::string* error) const;
};

/// Valid job names are non-empty, at most 128 chars, and use only
/// [A-Za-z0-9._-] with no leading dot — safe as file stems and as
/// whitespace-free journal tokens.
bool job_name_valid(const std::string& name);

/// Client side: atomically submit `verilog` as jobs/<name>.v (staged in
/// tmp/, then renamed). Used by bench_service, tests, and scripts.
bool submit_job(const SpoolPaths& paths, const std::string& name, const std::string& verilog,
                std::string* error);

/// Sorted stems of jobs/*.v with valid names. Sorted so intake order is
/// deterministic regardless of directory enumeration order.
std::vector<std::string> list_jobs(const SpoolPaths& paths);

/// Sorted stems of done/*.result (completed jobs).
std::vector<std::string> list_done(const SpoolPaths& paths);

/// Daemon side: publish a result. Writes done/<name>.v then done/<name>.result
/// (both atomic; the manifest is the commit record) and removes jobs/<name>.v.
bool write_result(const SpoolPaths& paths, const std::string& name, const std::string& verilog,
                  const std::string& manifest, std::string* error);

/// Daemon side: move jobs/<name>.v to failed/<name>.v and record the reason
/// in failed/<name>.error.
bool write_failure(const SpoolPaths& paths, const std::string& name, const std::string& reason,
                   std::string* error);

/// Daemon side: move jobs/<name>.v into quarantine/ (crash-loop breaker).
bool quarantine_job(const SpoolPaths& paths, const std::string& name, std::string* error);

} // namespace smartly::service
