#include "service/snapshot.hpp"

#include "util/atomic_file.hpp"

#include <cstring>
#include <filesystem>

namespace smartly::service {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'S', 'M', 'L', 'Y', 'S', 'N', 'A', 'P'};
constexpr size_t kHeaderSize = 8 + 4 + 8 + 16;

} // namespace

Hash128 payload_checksum(const std::string& payload) {
  Hash128 h{0x736e6170ULL, hash_mix(0x736e6170ULL)}; // "snap"
  size_t i = 0;
  for (; i + 8 <= payload.size(); i += 8) {
    uint64_t lane;
    std::memcpy(&lane, payload.data() + i, 8);
    h = hash128_combine(h, lane);
  }
  uint64_t tail = 0;
  for (size_t j = i; j < payload.size(); ++j)
    tail = (tail << 8) | static_cast<uint8_t>(payload[j]);
  // Length is folded in last so payloads differing only by trailing zero
  // bytes (a classic truncation shape) cannot collide.
  h = hash128_combine(h, tail);
  return hash128_combine(h, payload.size());
}

std::string seal_snapshot(uint32_t version, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, version);
  put_u64(out, payload.size());
  const Hash128 sum = payload_checksum(payload);
  put_u64(out, sum.lo);
  put_u64(out, sum.hi);
  out += payload;
  return out;
}

bool open_snapshot(const std::string& bytes, uint32_t expected_version, std::string* payload,
                   std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error)
      *error = what;
    return false;
  };
  if (bytes.size() < kHeaderSize)
    return fail("snapshot is " + std::to_string(bytes.size()) +
                " bytes, smaller than the " + std::to_string(kHeaderSize) +
                "-byte header — truncated");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return fail("bad snapshot magic — not a SMLYSNAP file");
  ByteReader r(bytes);
  r.pos = sizeof(kMagic);
  const uint32_t version = r.u32();
  const uint64_t declared = r.u64();
  Hash128 declared_sum;
  declared_sum.lo = r.u64();
  declared_sum.hi = r.u64();
  if (version != expected_version)
    return fail("snapshot version " + std::to_string(version) + " (this build reads " +
                std::to_string(expected_version) + ") — refusing to mix formats");
  const uint64_t present = bytes.size() - kHeaderSize;
  if (declared != present)
    return fail("snapshot declares " + std::to_string(declared) + " payload bytes but " +
                std::to_string(present) + " are present — truncated or overgrown");
  const std::string body = bytes.substr(kHeaderSize);
  const Hash128 actual = payload_checksum(body);
  if (actual != declared_sum)
    return fail("snapshot checksum mismatch — payload bytes are corrupt");
  *payload = body;
  return true;
}

bool store_snapshot_file(const std::string& path, uint32_t version, const std::string& payload,
                         std::string* error) {
  return util::atomic_write_file(path, seal_snapshot(version, payload), error);
}

bool load_snapshot_file(const std::string& path, uint32_t expected_version, std::string* payload,
                        std::string* error, bool* quarantined_aside) {
  if (quarantined_aside)
    *quarantined_aside = false;
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    if (error)
      error->clear(); // cold start: absence is not damage
    return false;
  }
  std::string bytes;
  std::string read_error;
  if (!util::read_file(path, &bytes, &read_error)) {
    if (error)
      *error = read_error;
    return false;
  }
  std::string open_error;
  if (open_snapshot(bytes, expected_version, payload, &open_error))
    return true;
  // Damaged: move the evidence aside so the rebuild can't be poisoned again
  // next startup, but never delete it (it is the bug report).
  fs::rename(path, path + ".corrupt", ec);
  if (quarantined_aside)
    *quarantined_aside = !ec;
  if (error)
    *error = open_error;
  return false;
}

} // namespace smartly::service
