#include "service/service.hpp"

#include "backend/write_verilog.hpp"
#include "core/smartly_pass.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/snapshot.hpp"
#include "util/atomic_file.hpp"
#include "util/luby.hpp"
#include "util/thread_pool.hpp"
#include "verilog/elaborate.hpp"
#include "verilog/parse_error.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

namespace smartly::service {

namespace fs = std::filesystem;

namespace {

constexpr const char* kJobSite = "service.job";

/// The per-job flow: the full deep-optimization convergence loop (fraig ->
/// DAG-aware rewrite -> fraig) with transactional in-job recovery. One
/// flow configuration for every job, summarized in result manifests.
core::SmartlyOptions job_flow_options(const ServiceOptions& service,
                                      core::PortableDecisionMemo* memo,
                                      const util::QuarantineSet* quarantine) {
  core::SmartlyOptions o;
  o.enable_rewrite = true;
  // Jobs are the unit of parallelism (one pool task each); the engines run
  // single-threaded inside a job. Engine output is thread-count independent
  // anyway — this only avoids pool-inside-pool oversubscription.
  o.threads = 1;
  o.sat.memo = memo;
  o.sat.quarantine = quarantine;
  o.budgets = service.budgets;
  o.recovery.enabled = true;
  return o;
}

} // namespace

OptService::OptService(const std::string& root, const ServiceOptions& options)
    : paths_(SpoolPaths::at(root)), options_(options) {}

bool OptService::startup(std::string* error) {
  if (!paths_.ensure(error))
    return false;

  std::string text;
  if (util::read_file(paths_.quarantine_set_path(), &text, nullptr))
    quarantine_ = util::QuarantineSet::parse(text);

  JournalState state;
  if (!JobJournal::replay(paths_.journal_path(), &state, error))
    return false;
  stats_.journal_torn_lines = state.torn_lines;
  stats_.journal_malformed_lines = state.malformed_lines;
  recover_from_journal(state);

  // Compact before reopening: the journal restarts holding only the records
  // that still matter, so it stays bounded by the live job set.
  JournalState compacted;
  for (const auto& [name, claims] : claims_) {
    JournalJob j;
    j.claims = claims;
    compacted.jobs[name] = j;
  }
  for (const auto& [name, job] : state.jobs)
    if (job.quarantined)
      compacted.jobs[name].quarantined = true;
  if (!JobJournal::compact(paths_.journal_path(), compacted, error))
    return false;
  if (!journal_.open(paths_.journal_path(), error))
    return false;

  load_warm_cache(paths_.warm_cache_path(), &memo_, &results_, &stats_.warm);
  return true;
}

void OptService::recover_from_journal(const JournalState& state) {
  for (const std::string& name : state.interrupted()) {
    const int claims = state.jobs.at(name).claims;

    // Crash window between publishing the result and appending the done
    // record: the result pair is the durable truth, the journal entry is
    // just late. Count the job finished, don't rerun it.
    std::error_code ec;
    if (fs::exists(paths_.done + "/" + name + ".result", ec)) {
      ++stats_.jobs_completed;
      continue;
    }
    if (!fs::exists(paths_.jobs + "/" + name + ".v", ec))
      continue; // job file gone (client withdrew it): nothing to recover

    if (claims >= options_.crash_threshold) {
      quarantine_crash_looper(name, claims);
      continue;
    }
    // Requeued: the file is still in jobs/, so the scan picks it up; the
    // claim count survives into the compacted journal through claims_.
    claims_[name] = claims;
    ++stats_.jobs_requeued;
  }
}

void OptService::quarantine_crash_looper(const std::string& name, int claims) {
  // The job brought the daemon down crash_threshold times without ever
  // completing: break the crash loop. Evidence first (repro bundle), then
  // the quarantine records, then the file move.
  util::ReproBundle bundle;
  util::read_file(paths_.jobs + "/" + name + ".v", &bundle.design_verilog, nullptr);
  bundle.stage = kJobSite;
  bundle.reason = "crash-loop: daemon died " + std::to_string(claims) +
                  " times with this job claimed";
  bundle.site = kJobSite;
  bundle.unit = util::stable_name_hash(name);
  bundle.attempt = claims;
  bundle.quarantine = quarantine_.serialize();
  bundle.options = "serve: smartly_flow enable_rewrite=1 threads=1";
  util::write_repro_bundle(paths_.quarantine, bundle,
                           static_cast<int>(stats_.jobs_quarantined));

  quarantine_.add(kJobSite, util::stable_name_hash(name));
  util::atomic_write_file(paths_.quarantine_set_path(), quarantine_.serialize(), nullptr);
  quarantine_job(paths_, name, nullptr);
  ++stats_.jobs_quarantined;
}

void OptService::run_job(const std::string& name, int attempt) {
  (void)attempt; // durable in the journal; results stay attempt-independent
  const obs::Span job_span("service", "job:" + name);
  const uint64_t job_t0 = obs::trace_now_us();
  struct JobTimer {
    uint64_t t0;
    ~JobTimer() {
      static obs::Histogram& h = obs::histogram("service.job_us");
      h.observe(obs::trace_now_us() - t0);
    }
  } job_timer{job_t0};
  std::string source;
  std::string io_error;
  if (!util::read_file(paths_.jobs + "/" + name + ".v", &source, &io_error)) {
    std::lock_guard<std::mutex> lock(mutex_);
    write_failure(paths_, name, "io: " + io_error, nullptr);
    journal_.append_done(name, "failed");
    ++stats_.jobs_failed;
    return;
  }

  // Whole-job fast path: a byte-identical source optimized before (possibly
  // by a previous daemon run, via the snapshot) replays its published result
  // without touching any engine. The flow is deterministic, so the replayed
  // bytes are exactly what a fresh run would produce.
  const Hash128 result_key = job_result_key(source);
  ResultCache::Entry cached;
  if (results_.lookup(result_key, &cached)) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.result_hits;
    std::string error;
    if (write_result(paths_, name, cached.verilog, "job=" + name + "\n" + cached.manifest_tail,
                     &error)) {
      journal_.append_done(name, "ok");
      ++stats_.jobs_completed;
    } else {
      write_failure(paths_, name, "io: " + error, nullptr);
      journal_.append_done(name, "failed");
      ++stats_.jobs_failed;
    }
    const uint64_t completed = ++completed_this_run_;
    if (options_.crash_after_jobs != 0 && completed >= options_.crash_after_jobs)
      _exit(137);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.result_misses;
  }

  std::string result_verilog;
  std::string manifest_tail;
  std::string failure;
  bool ok = false;
  for (int retry = 0; retry <= options_.retry_max && !ok; ++retry) {
    if (retry > 0) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.job_retries;
      }
      // Luby-scheduled backoff, the same schedule the SAT solver restarts
      // on: short retries for transient failures, growing pauses for
      // persistent ones, deterministic run-to-run.
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * luby(retry - 1)));
    }
    try {
      auto design = verilog::read_verilog(source, name + ".v");
      if (design->top() == nullptr)
        throw verilog::ParseError(name + ".v", 1, 1, "no module in job file");
      rtlil::Module& top = *design->top();
      const size_t cells_before = top.cells().size();

      const core::SmartlyOptions flow =
          job_flow_options(options_, &memo_, &quarantine_);
      const core::SmartlyStats flow_stats = core::smartly_flow(top, flow);

      result_verilog = backend::write_verilog(top);
      // Deterministic fields only: an interrupted-and-restarted run must
      // publish byte-identical results, and memo hit counts or timings
      // legitimately differ between runs (those live in service_stats.json).
      // The job= line is prepended at publish so the tail stays name-free
      // and the result cache can serve identical sources under any name.
      std::ostringstream m;
      m << "status=ok\n";
      m << "cells.before=" << cells_before << "\n";
      m << "cells.after=" << top.cells().size() << "\n";
      m << "recovered.stages=" << flow_stats.recovery.stages_skipped << "\n";
      manifest_tail = m.str();

      std::lock_guard<std::mutex> lock(mutex_);
      stats_.memo_hits += flow_stats.sat.portable_hits;
      stats_.memo_misses += flow_stats.sat.portable_misses;
      stats_.memo_inserts += flow_stats.sat.portable_inserts;
      stats_.recovered_stages += flow_stats.recovery.rollbacks;
      ok = true;
    } catch (const verilog::ParseError& e) {
      failure = std::string("parse: ") + e.what();
      break; // deterministic: retrying can't fix a parse error
    } catch (const std::exception& e) {
      failure = std::string("exception: ") + e.what();
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (ok) {
    results_.insert(result_key, {result_verilog, manifest_tail});
    std::string error;
    if (write_result(paths_, name, result_verilog, "job=" + name + "\n" + manifest_tail,
                     &error)) {
      journal_.append_done(name, "ok");
      ++stats_.jobs_completed;
    } else {
      write_failure(paths_, name, "io: " + error, nullptr);
      journal_.append_done(name, "failed");
      ++stats_.jobs_failed;
    }
  } else {
    write_failure(paths_, name, failure, nullptr);
    journal_.append_done(name, "failed");
    ++stats_.jobs_failed;
  }

  const uint64_t completed = ++completed_this_run_;
  if (options_.crash_after_jobs != 0 && completed >= options_.crash_after_jobs) {
    // Test hook: die the hard way (no destructors, no flushes) at the worst
    // moment — other workers hold claimed-but-unfinished jobs.
    _exit(137);
  }
}

size_t OptService::run_cycle() {
  const obs::Span cycle_span("service", "service.cycle");
  std::vector<std::string> backlog = list_jobs(paths_);

  // Quarantined jobs never run again, even when resubmitted: the quarantine
  // set is the durable record, the spool just mirrors it.
  std::vector<std::string> runnable;
  for (const std::string& name : backlog) {
    if (quarantine_.contains(kJobSite, util::stable_name_hash(name))) {
      quarantine_job(paths_, name, nullptr);
      journal_.append_quarantine(name);
      continue;
    }
    runnable.push_back(name);
  }

  // Bounded admission: take the first queue_max (sorted, so deterministic),
  // shed the rest explicitly. The shed response tells the client to
  // resubmit when the queue drains — silently growing the backlog is how
  // daemons die of old age.
  std::vector<std::string> admitted = runnable;
  if (admitted.size() > static_cast<size_t>(options_.queue_max)) {
    admitted.resize(static_cast<size_t>(options_.queue_max));
    for (size_t i = admitted.size(); i < runnable.size(); ++i) {
      write_failure(paths_, runnable[i],
                    "shed: admission queue full (" + std::to_string(runnable.size()) +
                        " waiting, queue-max " + std::to_string(options_.queue_max) + ")",
                    nullptr);
      journal_.append_done(runnable[i], "shed");
      ++stats_.jobs_shed;
    }
  }
  if (admitted.empty())
    return 0;

  // Write-ahead claims, fsynced before any job starts: a crash from here on
  // is recoverable by replay. A claim that cannot be made durable keeps its
  // job out of the batch (it stays spooled for the next cycle).
  std::vector<std::pair<std::string, int>> batch;
  for (const std::string& name : admitted) {
    const int attempt = claims_[name] + 1;
    if (!journal_.append_claim(name, attempt))
      continue;
    claims_[name] = attempt;
    batch.emplace_back(name, attempt);
  }

  util::ThreadPool pool(util::resolve_thread_count(options_.threads));
  pool.run_batch(batch.size(), [&](int /*worker*/, size_t i) {
    run_job(batch[i].first, batch[i].second);
  });

  // Completed jobs can leave the journal at the next compaction.
  for (const auto& [name, attempt] : batch) {
    (void)attempt;
    claims_.erase(name);
  }
  return batch.size();
}

void OptService::flush_snapshot() {
  const obs::Span span("service", "service.snapshot");
  if (options_.crash_during_snapshot) {
    // Test hook: simulate the one failure mode atomic writes can't rule out
    // (storage losing the rename guarantee / bit rot under the file) by
    // planting a torn snapshot *at the final path*, then dying. The next
    // startup must quarantine it aside and cold-rebuild.
    const std::string sealed =
        seal_snapshot(kWarmCacheVersion, serialize_warm_cache(memo_, results_));
    std::ofstream torn(paths_.warm_cache_path(), std::ios::binary | std::ios::trunc);
    torn.write(sealed.data(), static_cast<std::streamsize>(sealed.size() / 2));
    torn.flush();
    _exit(137);
  }
  if (save_warm_cache(paths_.warm_cache_path(), memo_, results_, nullptr))
    ++stats_.snapshots_written;
}

void OptService::write_stats_file() {
  std::ostringstream j;
  j << "{\n";
  j << "  \"jobs_completed\": " << stats_.jobs_completed << ",\n";
  j << "  \"jobs_failed\": " << stats_.jobs_failed << ",\n";
  j << "  \"jobs_shed\": " << stats_.jobs_shed << ",\n";
  j << "  \"jobs_requeued\": " << stats_.jobs_requeued << ",\n";
  j << "  \"jobs_quarantined\": " << stats_.jobs_quarantined << ",\n";
  j << "  \"job_retries\": " << stats_.job_retries << ",\n";
  j << "  \"poll_cycles\": " << stats_.poll_cycles << ",\n";
  j << "  \"snapshots_written\": " << stats_.snapshots_written << ",\n";
  j << "  \"memo_hits\": " << stats_.memo_hits << ",\n";
  j << "  \"memo_misses\": " << stats_.memo_misses << ",\n";
  j << "  \"memo_inserts\": " << stats_.memo_inserts << ",\n";
  j << "  \"memo_entries\": " << memo_.size() << ",\n";
  j << "  \"result_hits\": " << stats_.result_hits << ",\n";
  j << "  \"result_misses\": " << stats_.result_misses << ",\n";
  j << "  \"result_entries\": " << results_.size() << ",\n";
  j << "  \"recovered_stages\": " << stats_.recovered_stages << ",\n";
  j << "  \"journal_torn_lines\": " << stats_.journal_torn_lines << ",\n";
  j << "  \"journal_malformed_lines\": " << stats_.journal_malformed_lines << ",\n";
  j << "  \"warm_loaded\": " << (stats_.warm.loaded ? 1 : 0) << ",\n";
  j << "  \"warm_corrupt_quarantined\": " << (stats_.warm.corrupt_quarantined ? 1 : 0)
    << ",\n";
  j << "  \"warm_oracle_entries\": " << stats_.warm.oracle_entries << ",\n";
  j << "  \"warm_rewrite_programs\": " << stats_.warm.rewrite_programs << ",\n";
  j << "  \"warm_result_entries\": " << stats_.warm.result_entries << ",\n";
  j << "  \"warm_rejected_records\": " << stats_.warm.rejected_records << "\n";
  j << "}\n";
  util::atomic_write_file(paths_.stats_path(), j.str(), nullptr);

  // Mirror the job-lifecycle and warm-cache stats into the metrics registry
  // (gauges: these are current totals, re-published every cycle), then
  // publish the whole registry — engine counters and the journal-fsync /
  // job-latency histograms included — as a Prometheus-style text exposition
  // next to service_stats.json. Written atomically on every cycle and again
  // in the drain epilogue, so --serve-once exits leave a final metrics.prom.
  obs::gauge("service.jobs_completed").set(stats_.jobs_completed);
  obs::gauge("service.jobs_failed").set(stats_.jobs_failed);
  obs::gauge("service.jobs_shed").set(stats_.jobs_shed);
  obs::gauge("service.jobs_requeued").set(stats_.jobs_requeued);
  obs::gauge("service.jobs_quarantined").set(stats_.jobs_quarantined);
  obs::gauge("service.job_retries").set(stats_.job_retries);
  obs::gauge("service.poll_cycles").set(stats_.poll_cycles);
  obs::gauge("service.snapshots_written").set(stats_.snapshots_written);
  obs::gauge("service.memo_hits").set(stats_.memo_hits);
  obs::gauge("service.memo_misses").set(stats_.memo_misses);
  obs::gauge("service.result_cache_hits").set(stats_.result_hits);
  obs::gauge("service.result_cache_misses").set(stats_.result_misses);
  obs::gauge("service.recovered_stages").set(stats_.recovered_stages);
  util::atomic_write_file(paths_.metrics_path(),
                          obs::Registry::global().prometheus_text(), nullptr);
}

int OptService::run() {
  std::string error;
  if (!startup(&error)) {
    std::fprintf(stderr, "opt_tool: --serve: %s\n", error.c_str());
    return 1;
  }

  for (;;) {
    if (options_.stop_flag != nullptr && *options_.stop_flag != 0)
      break; // graceful drain: no new admissions

    ++stats_.poll_cycles;
    const size_t ran = run_cycle();

    if (ran > 0 && memo_.size() + results_.size() != snapshot_inserts_) {
      flush_snapshot();
      snapshot_inserts_ = memo_.size() + results_.size();
    }
    write_stats_file();

    if (ran == 0) {
      if (options_.drain_and_exit)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_ms));
    }
  }

  // Drain epilogue: in-flight work already finished (run_cycle is a
  // barrier); make the learned state durable and leave cleanly.
  flush_snapshot();
  write_stats_file();
  journal_.close();
  return 0;
}

} // namespace smartly::service
