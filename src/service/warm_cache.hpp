// Persistent warm caches for the service daemon.
//
// Three cache layers survive restarts:
//
//   * OracleMemo — the cross-job decision memo IncrementalOracle consults
//     through core::PortableDecisionMemo. Keys are canonical cone
//     fingerprints (see portable_query_key in incremental_oracle.cpp), so an
//     entry recorded by one daemon run answers isomorphic queries in the
//     next. Only verdicts that are deterministic functions of the salted
//     cone are stored: Zero/One/DeadPath always, Unknown only when proven
//     not-forced (exhaustive sim, or both polarities SAT) — never when a
//     budget, guard halt, or fault injection cut the query short.
//
//   * RewriteLibrary programs — the min-cost gate programs the cut-rewriting
//     engine synthesizes per truth table. Pure functions of the truth table;
//     a snapshot skips re-deriving the tail beyond the built-in 222 NPN
//     representatives.
//
//   * ResultCache — whole published results keyed by the exact job source
//     bytes (plus the flow-config generation). The deep convergence flow is
//     deterministic, so a byte-identical resubmission — the common case for
//     incremental clients whose designs mostly didn't change — replays the
//     stored netlist + manifest without running any engine. This is the
//     cache that turns warm-start throughput from "slightly better" into
//     "orders of magnitude better" on repeat traffic.
//
// All three serialize into one snapshot payload (service/snapshot.hpp container,
// kWarmCacheVersion) guarded by RewriteLibrary::fingerprint(): a snapshot
// from a build with different decomposition rules is rejected wholesale. On
// load every record is validated — decisions must be in the definitive
// range, programs must re-evaluate to their declared truth tables — because
// a snapshot is evidence, never trusted input. Validation failures skip the
// record and are counted; they never abort the daemon.
#pragma once

#include "core/sat_redundancy.hpp"
#include "util/hashing.hpp"

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace smartly::service {

/// Snapshot-container version of the warm-cache payload. Bumped whenever
/// the layout *or the semantics behind the keys* change (e.g. an oracle
/// pipeline change that invalidates memoized verdicts); old snapshots are
/// then rejected at the container level and the daemon cold-rebuilds.
constexpr uint32_t kWarmCacheVersion = 1;

class ResultCache;

/// Thread-safe PortableDecisionMemo shared by every job the daemon runs
/// (the parallel sweep's per-region oracles all point here).
class OracleMemo final : public core::PortableDecisionMemo {
public:
  bool lookup(const Hash128& key, opt::CtrlDecision* out) const override;
  void insert(const Hash128& key, opt::CtrlDecision decision) override;
  size_t size() const;

private:
  friend std::string serialize_warm_cache(const OracleMemo& memo, const ResultCache& results);

  mutable std::mutex mutex_;
  std::unordered_map<Hash128, uint8_t, Hash128Hasher> entries_;
};

/// Whole-job result memo: exact source bytes (hashed with job_result_key)
/// -> the published optimized netlist and the name-independent manifest
/// tail. Hits replay stored bytes verbatim, so they are deterministic by
/// construction. Thread-safe; bounded by kResultCacheMax (beyond it new
/// entries are dropped — the cache degrades to a plain miss, never evicts
/// nondeterministically).
class ResultCache {
public:
  struct Entry {
    std::string verilog;       ///< optimized netlist, exactly as published
    std::string manifest_tail; ///< manifest minus the job= line (name-free)
  };

  bool lookup(const Hash128& key, Entry* out) const;
  void insert(const Hash128& key, Entry entry);
  size_t size() const;

private:
  friend std::string serialize_warm_cache(const OracleMemo& memo, const ResultCache& results);

  mutable std::mutex mutex_;
  std::unordered_map<Hash128, Entry, Hash128Hasher> entries_;
};

/// Entries beyond this are dropped at insert (deterministic degradation).
constexpr size_t kResultCacheMax = 4096;

/// Key of one job result: the exact source bytes plus a generation tag for
/// the service's flow configuration — bump the tag whenever the job flow
/// changes in a result-affecting way, and every stale entry stops matching.
Hash128 job_result_key(const std::string& source);

/// What a warm-cache load found (reported in service_stats.json and by
/// bench_service).
struct WarmCacheLoadStats {
  bool loaded = false;            ///< a snapshot was opened and applied
  bool corrupt_quarantined = false; ///< damaged file moved to *.corrupt
  size_t oracle_entries = 0;      ///< memo entries installed
  size_t rewrite_programs = 0;    ///< programs installed into RewriteLibrary
  size_t result_entries = 0;      ///< whole-job results installed
  size_t rejected_records = 0;    ///< records that failed validation
  std::string error;              ///< diagnostic when loaded == false ("" on cold start)
};

/// Serialize the memo, the result cache, and every program currently
/// memoized in RewriteLibrary::instance() into a snapshot payload.
std::string serialize_warm_cache(const OracleMemo& memo, const ResultCache& results);

/// Load a warm-cache snapshot file into `memo`, `results`, and the
/// process-wide RewriteLibrary. Missing file = cold start (returns false,
/// empty error). Damaged file = quarantined aside + cold start. Never
/// throws, never partially applies a damaged snapshot.
bool load_warm_cache(const std::string& path, OracleMemo* memo, ResultCache* results,
                     WarmCacheLoadStats* stats);

/// Atomically persist the warm cache to `path`.
bool save_warm_cache(const std::string& path, const OracleMemo& memo,
                     const ResultCache& results, std::string* error);

} // namespace smartly::service
