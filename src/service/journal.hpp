// Write-ahead job journal for the service daemon.
//
// Before a job runs, its claim record is appended to the journal and
// fsynced; only then does the worker start. If the daemon dies mid-job —
// kill -9, OOM, power loss — the next startup replays the journal, sees a
// claim with no matching done record, and requeues the job. A job whose
// claim count reaches the quarantine threshold without ever completing is
// the likely culprit for the crashes and is quarantined instead of retried
// forever (the crash-loop breaker).
//
// Format: one record per line, append-only, fsync per append.
//
//   claim <job> <attempt>
//   done <job> <status>        status: ok | failed | shed
//   quarantine <job>
//
// Job names are spool file stems and are validated (job_name_valid) to
// contain no whitespace, so the line format is unambiguous. Replay is
// torn-write tolerant: a final line without '\n' is an interrupted append
// and is ignored (its job simply replays as claimed-not-done, which is
// exactly what it was); malformed interior lines are counted and skipped,
// never fatal.
//
// On startup the daemon compacts: the replayed state is rewritten as a
// fresh journal holding only the records that still matter (claims of
// unfinished jobs, quarantines), via atomic temp+fsync+rename. The journal
// stays bounded by the live job set instead of growing forever.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace smartly::service {

/// Replayed per-job journal state.
struct JournalJob {
  int claims = 0;        ///< claim records seen (max attempt number)
  bool done = false;     ///< a done record exists
  bool quarantined = false;
  std::string status;    ///< status of the done record ("" otherwise)
};

struct JournalState {
  std::map<std::string, JournalJob> jobs; ///< ordered: deterministic replay reporting
  size_t torn_lines = 0;      ///< trailing partial line (0 or 1)
  size_t malformed_lines = 0; ///< interior lines that failed to parse

  /// Jobs that were claimed but never finished or quarantined — the requeue
  /// set after a crash. Sorted (map order).
  std::vector<std::string> interrupted() const;
};

class JobJournal {
public:
  JobJournal() = default;
  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Open (create if missing) for appending. fsyncs the containing
  /// directory so the journal file itself survives a crash right after
  /// creation.
  bool open(const std::string& path, std::string* error);
  void close();
  bool is_open() const { return fd_ >= 0; }

  /// Append + fsync one record. Returns false on any I/O error (the caller
  /// must not start the job if its claim could not be made durable).
  bool append_claim(const std::string& job, int attempt);
  bool append_done(const std::string& job, const std::string& status);
  bool append_quarantine(const std::string& job);

  /// Parse a journal file into `out`. A missing file yields an empty state
  /// and returns true (first boot). Only I/O errors return false.
  static bool replay(const std::string& path, JournalState* out, std::string* error);

  /// Atomically replace the journal at `path` with a compacted rendering of
  /// `state` (open() it again afterwards). Claims of finished jobs are
  /// dropped; claim counts of unfinished jobs and quarantine records are
  /// preserved.
  static bool compact(const std::string& path, const JournalState& state, std::string* error);

private:
  bool append_line(const std::string& line);

  int fd_ = -1;
};

} // namespace smartly::service
