#include "service/warm_cache.hpp"

#include "rewrite/rewrite_lib.hpp"
#include "service/snapshot.hpp"

#include <algorithm>
#include <vector>

namespace smartly::service {

using opt::CtrlDecision;
using rewrite::GateOp;
using rewrite::GateOperand;
using rewrite::GateProgram;
using rewrite::RewriteLibrary;

namespace {

uint8_t encode_decision(CtrlDecision d) {
  switch (d) {
  case CtrlDecision::Zero: return 1;
  case CtrlDecision::One: return 2;
  case CtrlDecision::DeadPath: return 3;
  case CtrlDecision::Unknown: break;
  }
  // Proven not-forced. The oracle only inserts Unknown when it is a pure
  // function of the salted cone (see IncrementalOracle::finish); storing it
  // lets warm runs skip the both-polarity SAT protocol, the most expensive
  // query outcome there is.
  return 4;
}

bool decode_decision(uint8_t v, CtrlDecision* out) {
  switch (v) {
  case 1: *out = CtrlDecision::Zero; return true;
  case 2: *out = CtrlDecision::One; return true;
  case 3: *out = CtrlDecision::DeadPath; return true;
  case 4: *out = CtrlDecision::Unknown; return true; // proven not-forced
  default: return false; // reserved (0) or garbage: reject
  }
}

void put_operand(std::string& out, const GateOperand& o) {
  put_u8(out, static_cast<uint8_t>(o.kind));
  put_u8(out, o.index);
}

GateOperand get_operand(ByteReader& r) {
  GateOperand o;
  o.kind = static_cast<GateOperand::Kind>(r.u8());
  o.index = r.u8();
  return o;
}

} // namespace

bool OracleMemo::lookup(const Hash128& key, CtrlDecision* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end())
    return false;
  return decode_decision(it->second, out);
}

void OracleMemo::insert(const Hash128& key, CtrlDecision decision) {
  // The oracle filters before inserting: it only records verdicts that are
  // deterministic functions of the salted cone (all of Zero/One/DeadPath,
  // and Unknown only when proven not-forced). Store whatever it sends.
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.emplace(key, encode_decision(decision));
}

size_t OracleMemo::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool ResultCache::lookup(const Hash128& key, Entry* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end())
    return false;
  *out = it->second;
  return true;
}

void ResultCache::insert(const Hash128& key, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= kResultCacheMax && entries_.find(key) == entries_.end())
    return; // full: degrade to a miss rather than evict nondeterministically
  entries_.emplace(key, std::move(entry));
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

Hash128 job_result_key(const std::string& source) {
  // v1 of the service job flow (smartly_flow, enable_rewrite, threads=1).
  // Bump the tag string on any result-affecting flow change.
  const uint64_t salt = hash_mix(0x726573756c742e31ULL); // "result.1"
  Hash128 h{salt, hash_mix(salt)};
  uint64_t lane = 0;
  size_t n = 0;
  for (const unsigned char c : source) {
    lane = (lane << 8) | c;
    if (++n % 8 == 0) {
      h = hash128_combine(h, lane);
      lane = 0;
    }
  }
  h = hash128_combine(h, lane);
  h = hash128_combine(h, source.size());
  return h;
}

static void put_blob(std::string& out, const std::string& blob) {
  put_u32(out, static_cast<uint32_t>(blob.size()));
  out += blob;
}

/// Bounds-checked counterpart: a length that overruns the payload trips the
/// reader's sticky ok flag instead of reading out of range.
static std::string get_blob(ByteReader& r) {
  const uint32_t len = r.u32();
  if (!r.ok || len > r.bytes.size() - r.pos) {
    r.ok = false;
    return {};
  }
  std::string blob = r.bytes.substr(r.pos, len);
  r.pos += len;
  return blob;
}

std::string serialize_warm_cache(const OracleMemo& memo, const ResultCache& results) {
  const RewriteLibrary& lib = RewriteLibrary::instance();
  std::string out;
  put_u64(out, lib.fingerprint());

  {
    std::lock_guard<std::mutex> lock(memo.mutex_);
    put_u32(out, static_cast<uint32_t>(memo.entries_.size()));
    // Sort for stable snapshot bytes: two daemons that learned the same
    // entries write identical files, which the recovery tests rely on.
    std::vector<std::pair<Hash128, uint8_t>> sorted(memo.entries_.begin(),
                                                    memo.entries_.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.first.hi != b.first.hi ? a.first.hi < b.first.hi : a.first.lo < b.first.lo;
    });
    for (const auto& [key, decision] : sorted) {
      put_u64(out, key.hi);
      put_u64(out, key.lo);
      put_u8(out, decision);
    }
  }

  const std::vector<GateProgram> programs = RewriteLibrary::instance().export_programs();
  put_u32(out, static_cast<uint32_t>(programs.size()));
  for (const GateProgram& p : programs) {
    put_u16(out, p.tt);
    put_u8(out, p.support);
    put_operand(out, p.out);
    put_u16(out, static_cast<uint16_t>(p.ops.size()));
    for (const GateOp& op : p.ops) {
      put_u8(out, static_cast<uint8_t>(op.type));
      put_operand(out, op.a);
      put_operand(out, op.b);
      put_operand(out, op.s);
      put_u16(out, op.tt);
    }
  }

  {
    std::lock_guard<std::mutex> lock(results.mutex_);
    put_u32(out, static_cast<uint32_t>(results.entries_.size()));
    std::vector<std::pair<Hash128, const ResultCache::Entry*>> sorted;
    sorted.reserve(results.entries_.size());
    for (const auto& [key, entry] : results.entries_)
      sorted.emplace_back(key, &entry);
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.first.hi != b.first.hi ? a.first.hi < b.first.hi : a.first.lo < b.first.lo;
    });
    for (const auto& [key, entry] : sorted) {
      put_u64(out, key.hi);
      put_u64(out, key.lo);
      put_blob(out, entry->verilog);
      put_blob(out, entry->manifest_tail);
    }
  }
  return out;
}

bool load_warm_cache(const std::string& path, OracleMemo* memo, ResultCache* results,
                     WarmCacheLoadStats* stats) {
  WarmCacheLoadStats local;
  std::string payload;
  bool aside = false;
  if (!load_snapshot_file(path, kWarmCacheVersion, &payload, &local.error, &aside)) {
    local.corrupt_quarantined = aside;
    if (stats)
      *stats = local;
    return false;
  }

  ByteReader r(payload);
  const uint64_t fingerprint = r.u64();
  const bool lib_matches = fingerprint == RewriteLibrary::instance().fingerprint();

  const uint32_t n_oracle = r.u32();
  for (uint32_t i = 0; i < n_oracle && r.ok; ++i) {
    Hash128 key;
    key.hi = r.u64();
    key.lo = r.u64();
    const uint8_t enc = r.u8();
    if (!r.ok)
      break;
    CtrlDecision decision;
    if (!decode_decision(enc, &decision)) {
      ++local.rejected_records;
      continue;
    }
    memo->insert(key, decision);
    ++local.oracle_entries;
  }

  const uint32_t n_programs = r.u32();
  std::vector<GateProgram> programs;
  programs.reserve(r.ok ? n_programs : 0);
  for (uint32_t i = 0; i < n_programs && r.ok; ++i) {
    GateProgram p;
    p.tt = r.u16();
    p.support = r.u8();
    p.out = get_operand(r);
    const uint16_t n_ops = r.u16();
    if (n_ops > 64) { // matches import_programs' plausibility bound
      r.ok = false;
      break;
    }
    p.ops.reserve(n_ops);
    for (uint16_t j = 0; j < n_ops && r.ok; ++j) {
      GateOp op;
      op.type = static_cast<rtlil::CellType>(r.u8());
      op.a = get_operand(r);
      op.b = get_operand(r);
      op.s = get_operand(r);
      op.tt = r.u16();
      p.ops.push_back(op);
    }
    if (r.ok)
      programs.push_back(std::move(p));
  }

  const uint32_t n_results = r.u32();
  for (uint32_t i = 0; i < n_results && r.ok; ++i) {
    Hash128 key;
    key.hi = r.u64();
    key.lo = r.u64();
    ResultCache::Entry entry;
    entry.verilog = get_blob(r);
    entry.manifest_tail = get_blob(r);
    if (!r.ok)
      break;
    // An empty netlist cannot be a published result; a present-but-empty
    // blob means the writer was broken — skip the record, keep the rest.
    if (entry.verilog.empty()) {
      ++local.rejected_records;
      continue;
    }
    results->insert(key, std::move(entry));
    ++local.result_entries;
  }

  if (!r.ok || !r.at_end()) {
    // The container checksum passed but the records don't parse: a format
    // bug or a snapshot from a mismatched build slipped past the version
    // gate. Reject everything not yet applied and report it.
    local.error = "warm-cache payload is internally inconsistent — ignored remainder";
    ++local.rejected_records;
  } else if (lib_matches) {
    size_t rejected = 0;
    local.rewrite_programs = RewriteLibrary::instance().import_programs(programs, &rejected);
    local.rejected_records += rejected;
  }
  // A fingerprint mismatch silently drops the programs (they are stale by
  // construction) but keeps the oracle entries: their keys are salted by
  // oracle options, not by the rewrite library generation.

  local.loaded = true;
  if (stats)
    *stats = local;
  return true;
}

bool save_warm_cache(const std::string& path, const OracleMemo& memo,
                     const ResultCache& results, std::string* error) {
  return store_snapshot_file(path, kWarmCacheVersion, serialize_warm_cache(memo, results),
                             error);
}

} // namespace smartly::service
