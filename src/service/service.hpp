// The crash-safe optimization service (opt_tool --serve).
//
// OptService watches a spool directory (service/spool.hpp) and runs the
// full fraig -> rewrite convergence flow (core::smartly_flow with the deep
// loop enabled) on every job, on the shared util::ThreadPool, under per-job
// resource budgets. Three robustness layers make it kill -9 tolerant:
//
//   1. Write-ahead journal (service/journal.hpp): a job's claim is fsynced
//      before it runs; startup replays the journal, requeues interrupted
//      jobs, and quarantines any job whose claim count says it took the
//      daemon down `crash_threshold` times — with a repro bundle, so the
//      crash loop is broken *and* debuggable.
//
//   2. Persistent warm caches (service/warm_cache.hpp): the oracle decision
//      memo, the rewrite-program library, and the whole-job result cache
//      serialize into a checksummed snapshot after each batch. A truncated
//      or corrupt snapshot is moved aside and the caches cold-rebuild —
//      corruption costs warmth, never correctness, and is never fatal.
//
//   3. Overload + lifecycle: each poll cycle admits at most `queue_max`
//      jobs; backlog beyond that is shed with an explicit response in
//      failed/ (clients resubmit later). A SIGTERM (stop_flag) drains:
//      in-flight jobs finish, the snapshot and service_stats.json are
//      flushed, and run() returns 0.
//
// Every result is deterministic: jobs run single-threaded on top of the
// engines' thread-count-independent guarantees, manifests carry no
// timestamps, and the memo only replays definitive verdicts — so a run
// interrupted by kill -9 and restarted produces the byte-identical result
// set of an uninterrupted run (tests/test_service.cpp asserts this).
#pragma once

#include "service/journal.hpp"
#include "service/spool.hpp"
#include "service/warm_cache.hpp"
#include "util/budget.hpp"
#include "util/recovery.hpp"

#include <atomic>
#include <csignal>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace smartly::service {

struct ServiceOptions {
  int threads = 0;       ///< worker pool size (0 = one per hardware thread)
  int poll_ms = 50;      ///< spool scan interval when idle
  bool drain_and_exit = false; ///< --serve-once: exit when the spool is empty
  int queue_max = 64;    ///< admission bound per cycle; excess backlog is shed
  int crash_threshold = 2; ///< journal claims before a job is quarantined
  int retry_max = 2;     ///< in-process retries per job (Luby backoff)
  util::ResourceBudgets budgets; ///< per-job budgets (deadline_ms is per job)

  /// Set by the SIGTERM/SIGINT handler; polled between batches. Non-null
  /// enables graceful drain.
  const volatile std::sig_atomic_t* stop_flag = nullptr;

  // Deterministic crash hooks for the recovery tests and bench_service.
  // Production runs leave both unset.
  uint64_t crash_after_jobs = 0;      ///< _exit(137) once N jobs completed this run
  bool crash_during_snapshot = false; ///< tear the next snapshot write, then _exit(137)
};

struct ServiceStats {
  uint64_t jobs_completed = 0;
  uint64_t jobs_failed = 0;     ///< exhausted retries (parse error, repeated throw)
  uint64_t jobs_shed = 0;       ///< rejected by the admission bound
  uint64_t jobs_requeued = 0;   ///< interrupted jobs recovered from the journal
  uint64_t jobs_quarantined = 0;
  uint64_t job_retries = 0;
  uint64_t poll_cycles = 0;
  uint64_t snapshots_written = 0;
  uint64_t memo_hits = 0;       ///< oracle portable-memo hits across all jobs
  uint64_t memo_misses = 0;
  uint64_t memo_inserts = 0;
  uint64_t result_hits = 0;     ///< whole-job replays from the result cache
  uint64_t result_misses = 0;   ///< jobs that had to run the engines
  uint64_t recovered_stages = 0; ///< in-job transactional rollbacks (recovery layer)
  size_t journal_torn_lines = 0;
  size_t journal_malformed_lines = 0;
  WarmCacheLoadStats warm;      ///< what the startup cache load found
};

class OptService {
public:
  OptService(const std::string& root, const ServiceOptions& options);

  /// Startup (replay journal, quarantine crash-loopers, load caches) plus
  /// the poll/run/snapshot loop. Returns an opt_tool exit code: 0 on
  /// graceful drain or stop, 1 on a setup I/O error.
  int run();

  const ServiceStats& stats() const { return stats_; }
  const SpoolPaths& paths() const { return paths_; }

private:
  bool startup(std::string* error);
  void recover_from_journal(const JournalState& state);
  void quarantine_crash_looper(const std::string& name, int claims);
  /// Process up to queue_max spooled jobs; returns how many were admitted.
  size_t run_cycle();
  void run_job(const std::string& name, int attempt);
  void flush_snapshot();
  void write_stats_file();

  SpoolPaths paths_;
  ServiceOptions options_;
  ServiceStats stats_;
  OracleMemo memo_;
  ResultCache results_;
  JobJournal journal_;
  util::QuarantineSet quarantine_;
  std::map<std::string, int> claims_; ///< per-job claim count (journal + this run)
  std::mutex mutex_; ///< serializes journal appends + stats from workers
  std::atomic<uint64_t> completed_this_run_{0}; ///< drives crash_after_jobs
  size_t snapshot_inserts_ = 0; ///< memo inserts at the last snapshot flush
};

} // namespace smartly::service
