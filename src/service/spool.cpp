#include "service/spool.hpp"

#include "util/atomic_file.hpp"

#include <algorithm>
#include <filesystem>

namespace smartly::service {

namespace fs = std::filesystem;

SpoolPaths SpoolPaths::at(const std::string& root) {
  SpoolPaths p;
  p.root = root;
  p.jobs = root + "/jobs";
  p.done = root + "/done";
  p.failed = root + "/failed";
  p.quarantine = root + "/quarantine";
  p.cache = root + "/cache";
  p.tmp = root + "/tmp";
  return p;
}

bool SpoolPaths::ensure(std::string* error) const {
  std::error_code ec;
  for (const std::string* dir : {&root, &jobs, &done, &failed, &quarantine, &cache, &tmp}) {
    fs::create_directories(*dir, ec);
    if (ec) {
      if (error)
        *error = "cannot create " + *dir + ": " + ec.message();
      return false;
    }
  }
  // Stale staging files are dead clients' half-writes; stale atomic-write
  // temps are our own interrupted renames. Both are garbage after a crash.
  for (const auto& entry : fs::directory_iterator(tmp, ec))
    fs::remove(entry.path(), ec);
  util::remove_stale_temp_files(done);
  util::remove_stale_temp_files(cache);
  return true;
}

bool job_name_valid(const std::string& name) {
  if (name.empty() || name.size() > 128 || name[0] == '.')
    return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok)
      return false;
  }
  return true;
}

bool submit_job(const SpoolPaths& paths, const std::string& name, const std::string& verilog,
                std::string* error) {
  if (!job_name_valid(name)) {
    if (error)
      *error = "invalid job name: " + name;
    return false;
  }
  const std::string staged = paths.tmp + "/" + name + ".v";
  if (!util::atomic_write_file(staged, verilog, error))
    return false;
  std::error_code ec;
  fs::rename(staged, paths.jobs + "/" + name + ".v", ec);
  if (ec) {
    if (error)
      *error = "cannot submit " + name + ": " + ec.message();
    fs::remove(staged, ec);
    return false;
  }
  return true;
}

namespace {

std::vector<std::string> list_stems(const std::string& dir, const std::string& extension) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec))
      continue;
    const fs::path& p = entry.path();
    if (p.extension() != extension)
      continue;
    const std::string stem = p.stem().string();
    if (job_name_valid(stem))
      out.push_back(stem);
  }
  std::sort(out.begin(), out.end());
  return out;
}

} // namespace

std::vector<std::string> list_jobs(const SpoolPaths& paths) {
  return list_stems(paths.jobs, ".v");
}

std::vector<std::string> list_done(const SpoolPaths& paths) {
  return list_stems(paths.done, ".result");
}

bool write_result(const SpoolPaths& paths, const std::string& name, const std::string& verilog,
                  const std::string& manifest, std::string* error) {
  // Netlist first, manifest last: a .result file commits the pair, so a
  // crash between the two writes leaves a harmless orphan .v that the next
  // run simply overwrites.
  if (!util::atomic_write_file(paths.done + "/" + name + ".v", verilog, error))
    return false;
  if (!util::atomic_write_file(paths.done + "/" + name + ".result", manifest, error))
    return false;
  std::error_code ec;
  fs::remove(paths.jobs + "/" + name + ".v", ec);
  return true;
}

bool write_failure(const SpoolPaths& paths, const std::string& name, const std::string& reason,
                   std::string* error) {
  if (!util::atomic_write_file(paths.failed + "/" + name + ".error", reason + "\n", error))
    return false;
  std::error_code ec;
  fs::rename(paths.jobs + "/" + name + ".v", paths.failed + "/" + name + ".v", ec);
  if (ec)
    fs::remove(paths.jobs + "/" + name + ".v", ec); // already moved/gone: fine
  return true;
}

bool quarantine_job(const SpoolPaths& paths, const std::string& name, std::string* error) {
  std::error_code ec;
  fs::rename(paths.jobs + "/" + name + ".v", paths.quarantine + "/" + name + ".v", ec);
  if (ec && !fs::exists(paths.quarantine + "/" + name + ".v")) {
    if (error)
      *error = "cannot quarantine " + name + ": " + ec.message();
    return false;
  }
  return true;
}

} // namespace smartly::service
