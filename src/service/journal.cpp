#include "service/journal.hpp"

#include "obs/metrics.hpp"
#include "util/atomic_file.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <sstream>
#include <unistd.h>

namespace smartly::service {

namespace fs = std::filesystem;

std::vector<std::string> JournalState::interrupted() const {
  std::vector<std::string> out;
  for (const auto& [name, job] : jobs)
    if (job.claims > 0 && !job.done && !job.quarantined)
      out.push_back(name);
  return out;
}

JobJournal::~JobJournal() { close(); }

bool JobJournal::open(const std::string& path, std::string* error) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    if (error)
      *error = "cannot open journal " + path + ": " + std::strerror(errno);
    return false;
  }
  // Make the journal's directory entry durable: a crash right after the
  // first boot must not lose the file itself.
  const fs::path dir = fs::path(path).parent_path();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

void JobJournal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool JobJournal::append_line(const std::string& line) {
  if (fd_ < 0)
    return false;
  const char* data = line.data();
  size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = ::fsync(fd_) == 0;
  static obs::Histogram& h_fsync = obs::histogram("service.journal_fsync_us");
  h_fsync.observe(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return ok;
}

bool JobJournal::append_claim(const std::string& job, int attempt) {
  return append_line("claim " + job + " " + std::to_string(attempt) + "\n");
}

bool JobJournal::append_done(const std::string& job, const std::string& status) {
  return append_line("done " + job + " " + status + "\n");
}

bool JobJournal::append_quarantine(const std::string& job) {
  return append_line("quarantine " + job + "\n");
}

bool JobJournal::replay(const std::string& path, JournalState* out, std::string* error) {
  *out = JournalState{};
  std::error_code ec;
  if (!fs::exists(path, ec))
    return true; // first boot: empty state

  std::string bytes;
  if (!util::read_file(path, &bytes, error))
    return false;

  size_t pos = 0;
  while (pos < bytes.size()) {
    const size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      // Interrupted append (kill -9 mid-write): the record never became
      // durable, so its job legitimately replays as claimed-not-done from
      // the *previous* complete record.
      out->torn_lines = 1;
      break;
    }
    const std::string line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty())
      continue;

    std::istringstream iss(line);
    std::string verb, job;
    iss >> verb >> job;
    if (job.empty()) {
      ++out->malformed_lines;
      continue;
    }
    if (verb == "claim") {
      int attempt = 0;
      iss >> attempt;
      if (attempt <= 0) {
        ++out->malformed_lines;
        continue;
      }
      JournalJob& j = (*out).jobs[job];
      j.claims = std::max(j.claims, attempt);
      // A fresh claim supersedes an earlier done record (the job was
      // resubmitted after completing): replay must treat it as in flight.
      j.done = false;
      j.status.clear();
    } else if (verb == "done") {
      std::string status;
      iss >> status;
      JournalJob& j = (*out).jobs[job];
      j.done = true;
      j.status = status;
    } else if (verb == "quarantine") {
      (*out).jobs[job].quarantined = true;
    } else {
      ++out->malformed_lines;
    }
  }
  return true;
}

bool JobJournal::compact(const std::string& path, const JournalState& state,
                         std::string* error) {
  std::string out;
  for (const auto& [name, job] : state.jobs) {
    if (job.quarantined) {
      out += "quarantine " + name + "\n";
      continue;
    }
    if (job.done)
      continue; // finished: the result file is the durable record now
    if (job.claims > 0)
      out += "claim " + name + " " + std::to_string(job.claims) + "\n";
  }
  return util::atomic_write_file(path, out, error);
}

} // namespace smartly::service
