#include "sweep/equiv_classes.hpp"

#include "sim/packed_sim.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>

namespace smartly::sweep {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::SigBit;

namespace {

/// Hash of a wire bit that is stable across design clones and process runs
/// (SigBit::hash mixes the wire pointer): wire name + offset.
uint64_t stable_bit_hash(const SigBit& bit) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : bit.wire->name())
    h = hash_combine(h, c);
  return hash_combine(h, static_cast<uint64_t>(bit.offset));
}

} // namespace

EquivClasses::EquivClasses(const EquivClassOptions& options) : options_(options) {
  if (options_.sim_words == 0)
    options_.sim_words = 1;
}

void EquivClasses::bind(const rtlil::Module& module, const rtlil::NetlistIndex& index) {
  module_ = &module;
  index_ = &index;
  blast_ = aig::aigmap(module, index);

  wire_order_.clear();
  uint64_t order = 0;
  for (const auto& w : module.wires())
    wire_order_.emplace(w.get(), order++);

  // Reverse map: AIG input node -> module bit. Several bits can carry the
  // same plain input literal (a cell output strash-folds onto an input, e.g.
  // y = a & a), and blast_.bits iterates in pointer-hash order — so the
  // winner must be chosen deterministically: prefer the true free bit (no
  // combinational driver), then the lowest wire-order rank. Patterns are
  // seeded from the winner's name; a pointer-dependent choice would breach
  // the cross-clone determinism contract.
  input_bits_.assign(blast_.aig.num_inputs(), SigBit());
  input_node_index_.clear();
  for (size_t i = 0; i < blast_.aig.num_inputs(); ++i)
    input_node_index_.emplace(blast_.aig.inputs()[i], i);
  const auto rank = [&](const SigBit& bit) {
    return (wire_order_.at(bit.wire) << 20) | (static_cast<uint64_t>(bit.offset) & 0xfffffULL);
  };
  const auto is_free = [&](const SigBit& bit) {
    const rtlil::Cell* driver = index.driver(bit);
    return !driver || driver->type() == rtlil::CellType::Dff;
  };
  for (const auto& [bit, lit] : blast_.bits) {
    if (aig::lit_compl(lit) || !bit.is_wire())
      continue;
    auto it = input_node_index_.find(aig::lit_node(lit));
    if (it == input_node_index_.end())
      continue;
    SigBit& slot = input_bits_[it->second];
    if (!slot.is_wire()) {
      slot = bit;
      continue;
    }
    const bool bit_free = is_free(bit);
    const bool slot_free = is_free(slot);
    if (bit_free != slot_free ? bit_free : rank(bit) < rank(slot))
      slot = bit;
  }
}

uint64_t EquivClasses::fill_bit(const SigBit& bit, size_t pattern_index) const {
  return hash_mix(hash_combine(options_.seed ^ 0xf111f111f111f111ULL,
                               hash_combine(stable_bit_hash(bit), pattern_index))) &
         1;
}

std::vector<EquivClass> EquivClasses::compute(util::ThreadPool* pool) {
  const size_t n_inputs = blast_.aig.num_inputs();
  const size_t cex_batches = (cex_.size() + 63) / 64;
  const size_t n_batches = options_.sim_words + cex_batches;

  // Pattern words are a pure function of (seed, wire name, batch) — base
  // batches are name-seeded Rng draws, a *full* counterexample batch never
  // changes once its 64 lanes are filled. Both are cached per bit across
  // rounds (the cache is keyed by module bit, so it survives re-blasts);
  // only the final partial cex batch is re-rendered, since its padded lanes
  // fill in as the pool grows.
  const auto render_batch = [&](const SigBit& bit, size_t w) {
    if (w < options_.sim_words) {
      Rng rng(hash_combine(hash_combine(options_.seed, stable_bit_hash(bit)), w));
      return rng.next();
    }
    uint64_t word = 0;
    for (size_t lane = 0; lane < 64; ++lane) {
      const size_t idx = (w - options_.sim_words) * 64 + lane;
      uint64_t v;
      if (idx < cex_.size()) {
        auto it = cex_[idx].find(bit);
        v = it != cex_[idx].end() ? (it->second ? 1 : 0) : fill_bit(bit, idx);
      } else {
        v = fill_bit(bit, idx); // pad lanes beyond the pool deterministically
      }
      word |= v << lane;
    }
    return word;
  };

  const size_t cacheable = options_.sim_words + cex_.size() / 64; // full batches only
  std::vector<std::vector<uint64_t>> batch_inputs(n_batches);
  for (auto& words : batch_inputs)
    words.resize(n_inputs, 0);
  for (size_t i = 0; i < n_inputs; ++i) {
    const SigBit& bit = input_bits_[i];
    if (!bit.is_wire())
      continue; // unmapped input (defensive): patterns stay 0
    std::vector<uint64_t>& cached = word_cache_[bit];
    while (cached.size() < cacheable)
      cached.push_back(render_batch(bit, cached.size()));
    for (size_t w = 0; w < n_batches; ++w)
      batch_inputs[w][i] = w < cacheable ? cached[w] : render_batch(bit, w);
  }

  const sim::SignatureTable table = sim::simulate_signatures(blast_.aig, batch_inputs, pool);

  // Partition candidate bits by normalized signature. Buckets keyed on the
  // 128-bit signature hash; equality is treated as identity (cone-cache
  // precedent) — a collision could only propose a false candidate, which the
  // SAT confirmation then disproves.
  struct Bucket {
    bool zero = true; ///< normalized signature identically zero
    std::vector<EquivMember> members;
  };
  std::unordered_map<Hash128, Bucket, Hash128Hasher> buckets;
  candidate_bits_ = 0;

  for (const auto& [bit, lit] : blast_.bits) {
    if (!bit.is_wire())
      continue;
    ++candidate_bits_;
    EquivMember m;
    m.bit = bit;
    m.lit = lit;
    Cell* driver = index_->driver(bit);
    if (driver && driver->type() != CellType::Dff) {
      m.driver = driver;
      m.topo_pos = index_->topo_position(driver);
    }
    m.rank = (wire_order_.at(bit.wire) << 20) |
             (static_cast<uint64_t>(bit.offset) & 0xfffffULL);

    m.inverted = (table.lit_word(lit, 0) & 1) != 0;
    Hash128 key{0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL};
    bool zero = true;
    for (size_t w = 0; w < n_batches; ++w) {
      uint64_t v = table.lit_word(lit, w);
      if (m.inverted)
        v = ~v;
      zero = zero && v == 0;
      key = hash128_combine(key, v);
    }
    Bucket& bucket = buckets[key];
    bucket.zero = zero;
    bucket.members.push_back(m);
  }

  const auto member_less = [](const EquivMember& a, const EquivMember& b) {
    if (a.topo_pos != b.topo_pos)
      return a.topo_pos < b.topo_pos;
    return a.rank < b.rank;
  };

  std::vector<EquivClass> classes;
  for (auto& [key, bucket] : buckets) {
    (void)key;
    EquivClass cls;
    cls.constant = bucket.zero;
    cls.members = std::move(bucket.members);
    std::sort(cls.members.begin(), cls.members.end(), member_less);
    bool mergeable = false;
    if (cls.constant) {
      for (const EquivMember& m : cls.members)
        mergeable = mergeable || m.driver != nullptr;
    } else {
      for (size_t i = 1; i < cls.members.size(); ++i)
        mergeable = mergeable || cls.members[i].driver != nullptr;
    }
    if (mergeable)
      classes.push_back(std::move(cls));
  }
  std::sort(classes.begin(), classes.end(), [&](const EquivClass& a, const EquivClass& b) {
    return member_less(a.members.front(), b.members.front());
  });
  return classes;
}

bool EquivClasses::add_counterexample(const InputAssignment& assignment) {
  Hash128 h{0x6a09e667f3bcc908ULL, 0xb5c0fbcfec4d3b2fULL};
  for (const auto& [bit, value] : assignment)
    hash128_mix_unordered(h, stable_bit_hash(bit) * 2 + (value ? 1 : 0));
  if (!cex_seen_.insert(h).second)
    return false;
  if (cex_.size() >= options_.max_patterns)
    return false;
  std::unordered_map<SigBit, bool> pattern;
  pattern.reserve(assignment.size());
  for (const auto& [bit, value] : assignment)
    pattern.emplace(bit, value);
  cex_.push_back(std::move(pattern));
  return true;
}

bool cell_inputs_commutative(CellType t) noexcept {
  switch (t) {
  case CellType::And:
  case CellType::Or:
  case CellType::Xor:
  case CellType::Xnor:
  case CellType::Add:
  case CellType::Mul:
  case CellType::Eq:
  case CellType::Ne:
  case CellType::LogicAnd:
  case CellType::LogicOr:
    return true;
  default:
    return false;
  }
}

namespace {

/// Canonical (port, signal) inputs with commutative operand order normalized
/// — the common substrate of cell_structural_key and the exact comparison.
std::vector<std::pair<rtlil::Port, rtlil::SigSpec>> normalized_inputs(
    const Cell& cell, const rtlil::SigMap& sigmap) {
  std::vector<std::pair<rtlil::Port, rtlil::SigSpec>> inputs;
  for (rtlil::Port port : cell.input_ports())
    inputs.emplace_back(port, sigmap(cell.port(port)));
  if (cell_inputs_commutative(cell.type()) && inputs.size() >= 2 &&
      inputs[1].second.hash() < inputs[0].second.hash())
    std::swap(inputs[0].second, inputs[1].second);
  return inputs;
}

} // namespace

Hash128 cell_structural_key(const Cell& cell, const rtlil::SigMap& sigmap) {
  const rtlil::CellParams& p = cell.params();
  Hash128 k{hash_mix(static_cast<uint64_t>(cell.type())),
            hash_mix(static_cast<uint64_t>(cell.type()) ^ 0x9216d5d98979fb1bULL)};
  k = hash128_combine(k, (static_cast<uint64_t>(static_cast<uint32_t>(p.a_width)) << 32) |
                             static_cast<uint32_t>(p.b_width));
  k = hash128_combine(k, (static_cast<uint64_t>(static_cast<uint32_t>(p.y_width)) << 32) |
                             static_cast<uint32_t>(p.width));
  k = hash128_combine(k, (static_cast<uint64_t>(static_cast<uint32_t>(p.s_width)) << 2) |
                             (p.a_signed ? 2u : 0u) | (p.b_signed ? 1u : 0u));

  for (const auto& [port, sig] : normalized_inputs(cell, sigmap)) {
    k = hash128_combine(k, static_cast<uint64_t>(port));
    for (const SigBit& bit : sig)
      k = hash128_combine(k, bit.hash());
  }
  return k;
}

bool cell_structurally_identical(const Cell& a, const Cell& b, const rtlil::SigMap& sigmap) {
  if (a.type() != b.type())
    return false;
  const rtlil::CellParams& pa = a.params();
  const rtlil::CellParams& pb = b.params();
  if (pa.a_width != pb.a_width || pa.b_width != pb.b_width || pa.y_width != pb.y_width ||
      pa.width != pb.width || pa.s_width != pb.s_width || pa.a_signed != pb.a_signed ||
      pa.b_signed != pb.b_signed)
    return false;
  return normalized_inputs(a, sigmap) == normalized_inputs(b, sigmap);
}

} // namespace smartly::sweep
