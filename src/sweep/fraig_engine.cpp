#include "sweep/fraig_engine.hpp"

#include "aig/cnf.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/muxtree_walker.hpp"
#include "opt/opt_merge.hpp"
#include "sat/solver.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

#include <stdexcept>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace smartly::sweep {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

namespace {

/// A proven substitute for one duplicate bit.
struct Replacement {
  SigBit rep;             ///< valid when !is_const (snapshot-canonical)
  bool invert = false;    ///< dup == NOT(rep): merge through an inverter
  bool is_const = false;  ///< dup is stuck at const_one
  bool const_one = false;
};

/// Slot-per-class proof results (aggregated at the barrier in class order).
struct ClassOutcome {
  struct Proof {
    SigBit dup;
    Replacement repl;
  };
  std::vector<Proof> proofs;
  std::vector<InputAssignment> cexes;
  std::vector<uint64_t> attempted; ///< pair keys with a decided outcome
  size_t sat_queries = 0;
  size_t proved_equal = 0;
  size_t proved_complement = 0;
  size_t proved_constant = 0;
  size_t proved_structural = 0;
  size_t disproved = 0;
  size_t unknown = 0;
  size_t skipped = 0; ///< queries not solved at all (halt already observed)
  uint64_t conflicts = 0;
  uint64_t propagations = 0;
};

/// Key of one (dup, target, polarity) proof obligation. Outcomes are
/// deterministic (per-class solvers, canonical query order), so a key is
/// settled forever after its first attempt: proven pairs wait in the proven
/// map for their cell to become fully covered, disproved and unknown pairs
/// are never retried. Collisions only suppress a candidate pair (missed
/// optimization, never unsoundness).
uint64_t pair_key(const SigBit& dup, const Replacement& r) {
  const uint64_t target = r.is_const ? 0x10001u + (r.const_one ? 1 : 0) : r.rep.hash();
  return hash_combine(hash_combine(dup.hash(), target),
                      (r.invert ? 2u : 0u) | (r.is_const ? 1u : 0u));
}

/// Stable id of a class: the minimum bit_unit_id over its wire-bit members.
/// The recovery layer quarantines classes under this id ("fraig.solve"), and
/// unit-keyed fault plans key on it. Min-over-members (not the rep's id) so
/// the id survives a write_verilog round-trip: membership is a function of
/// name-seeded simulation, but the rep choice rides on creation order, which
/// reparsing permutes — repro bundles must fault the same class.
uint64_t class_unit_id(const EquivClass& cls) {
  uint64_t best = 0;
  for (const EquivMember& m : cls.members) {
    if (!m.bit.is_wire())
      continue;
    const uint64_t id = util::bit_unit_id(m.bit.wire->name(), m.bit.offset);
    if (best == 0 || id < best)
      best = id;
  }
  return best == 0 ? 1 : best;
}

ClassOutcome prove_class(const EquivClass& cls, const EquivClasses& eq,
                         const FraigOptions& options,
                         const std::unordered_set<uint64_t>& settled) {
  ClassOutcome out;
  const uint64_t unit = class_unit_id(cls);
  sat::Solver solver;
  aig::ConeCnfEncoder enc(solver, eq.blast().aig);
  if (options.guard != nullptr && options.guard->wants_interrupts())
    solver.set_interrupt_check([g = options.guard] { return g->poll(); });

  const auto solve_budgeted = [&](const std::vector<sat::Lit>& assumptions) {
    // A halt observed mid-phase can only come from the nondeterministic
    // sources (deadline/cancel) or a fault plan: deterministic budgets arm
    // the sticky flag at barriers only, so this skip never fires under them.
    if ((options.guard != nullptr && options.guard->poll()) ||
        util::fault_unknown("fraig.solve", unit)) {
      ++out.skipped;
      return sat::Result::Unknown;
    }
    if (options.sat_conflict_budget >= 0)
      solver.set_conflict_budget(static_cast<int64_t>(solver.stats().conflicts) +
                                 options.sat_conflict_budget);
    ++out.sat_queries;
    return solver.solve(assumptions);
  };
  const auto harvest_cex = [&]() {
    InputAssignment a;
    a.reserve(enc.encoded_inputs().size());
    for (const uint32_t node : enc.encoded_inputs()) {
      const SigBit bit = eq.input_bits()[eq.input_node_index().at(node)];
      if (!bit.is_wire())
        continue; // unmapped input (mirrors the equiv_classes pattern guard)
      const sat::Var v = sat::var(enc.lit(aig::mk_lit(node)));
      a.emplace_back(bit, solver.model_value(v));
    }
    out.cexes.push_back(std::move(a));
  };

  if (cls.constant) {
    for (const EquivMember& m : cls.members) {
      if (!m.driver)
        continue; // free bits are never stuck
      Replacement repl;
      repl.is_const = true;
      repl.const_one = m.inverted;
      const uint64_t key = pair_key(m.bit, repl);
      if (settled.count(key))
        continue;
      const sat::Lit ml = enc.ensure(m.lit);
      // Candidate value is const_one; refute by assuming the opposite.
      const sat::Result r = solve_budgeted({m.inverted ? ~ml : ml});
      if (r == sat::Result::Unsat) {
        ++out.proved_constant;
        out.proofs.push_back({m.bit, repl});
        out.attempted.push_back(key);
      } else if (r == sat::Result::Sat) {
        ++out.disproved;
        harvest_cex();
        out.attempted.push_back(key);
      } else {
        ++out.unknown;
        out.attempted.push_back(key);
      }
    }
    out.conflicts = solver.stats().conflicts;
    out.propagations = solver.stats().propagations;
    return out;
  }

  const EquivMember& rep = cls.members.front();
  sat::Lit rl{};
  bool rep_encoded = false;
  for (size_t i = 1; i < cls.members.size(); ++i) {
    const EquivMember& m = cls.members[i];
    if (!m.driver)
      continue; // free bits can only serve as the representative
    if (m.driver == rep.driver)
      continue; // two bits of one cell: nothing to remove
    Replacement repl;
    repl.rep = rep.bit;
    repl.invert = m.inverted != rep.inverted;
    const uint64_t key = pair_key(m.bit, repl);
    if (settled.count(key))
      continue;

    // Structural fast path: strash already proved the cones identical (or
    // complement) — no solver needed.
    if (m.lit == (repl.invert ? aig::lit_not(rep.lit) : rep.lit)) {
      ++out.proved_structural;
      out.proofs.push_back({m.bit, repl});
      out.attempted.push_back(key);
      continue;
    }

    if (!rep_encoded) {
      rl = enc.ensure(rep.lit);
      rep_encoded = true;
    }
    const sat::Lit ml = enc.ensure(m.lit);
    // Activation-guarded miter clause group: under `act` the clauses force
    // dup != target (target = rep or NOT rep); UNSAT proves the candidate.
    const sat::Lit act = sat::mk_lit(solver.new_var());
    if (!repl.invert) {
      solver.add_clause(~act, rl, ml);
      solver.add_clause(~act, ~rl, ~ml);
    } else {
      solver.add_clause(~act, ~rl, ml);
      solver.add_clause(~act, rl, ~ml);
    }
    const sat::Result r = solve_budgeted({act});
    if (r == sat::Result::Unsat) {
      ++out.proved_equal;
      if (repl.invert)
        ++out.proved_complement;
      out.proofs.push_back({m.bit, repl});
    } else if (r == sat::Result::Sat) {
      ++out.disproved;
      harvest_cex();
    } else {
      ++out.unknown;
    }
    out.attempted.push_back(key);
    solver.add_clause(~act); // retire this query's clause group
  }
  out.conflicts = solver.stats().conflicts;
  out.propagations = solver.stats().propagations;
  return out;
}

/// Commit every cell whose entire output is proven redundant: journal the
/// removal + alias (plus an inverter for complement-merged positions) and
/// apply through the index's incremental maintenance. Returns removed cells.
///
/// Complement merges need care to terminate: a dup that already *is* an
/// inverter of its representative must not be "merged" into a freshly built
/// identical inverter (that rebuilds the same cell under a new name every
/// round). Existing inverters of a representative bit are therefore reused
/// as replacement drivers, at most one new inverter is created per
/// representative bit per barrier, and a cell that is itself the canonical
/// inverter of its representative is left alone.
size_t commit_merges(rtlil::Module& module, rtlil::NetlistIndex& index,
                     const std::unordered_map<SigBit, Replacement>& proven,
                     FraigStats& stats) {
  struct Plan {
    Cell* cell;
    int topo_pos;
    SigSpec lhs, rhs;
    /// Positions in rhs still waiting for a shared barrier inverter of the
    /// recorded representative bit.
    std::vector<std::pair<int, SigBit>> pending_inv;
    /// Cells provably freed by this commit: the cell itself plus input-net
    /// drivers nothing else reads. Gates inverter-costly complement merges.
    size_t freed_budget = 1;
  };
  std::vector<Plan> plans;
  const rtlil::SigMap& sigmap = index.sigmap();

  // Existing single-bit inverters: canonical input bit -> canonical output
  // bit. Lets complement merges land on an inverter the module already has.
  // The *topologically earliest* inverter of a bit wins, so a later inverter
  // of the same bit is itself mergeable onto it. (The hard no-ping-pong
  // guarantee — never replace a Not cell that already computes NOT(rep) from
  // rep — is the structural check in the planning loop below.)
  struct InverterEntry {
    SigBit bit;
    int pos;
  };
  std::unordered_map<SigBit, InverterEntry> inverter_of;
  for (const auto& cptr : module.cells()) {
    Cell* cell = cptr.get();
    if (cell->type() != CellType::Not)
      continue;
    const int pos = index.topo_position(cell);
    const SigSpec& a = cell->port(Port::A);
    const SigSpec& y = cell->port(Port::Y);
    for (int i = 0; i < y.size() && i < a.size(); ++i) {
      const SigBit yc = sigmap(y[i]);
      const SigBit ac = sigmap(a[i]);
      if (!yc.is_wire() || !ac.is_wire() || index.driver(yc) != cell)
        continue;
      auto [it, inserted] = inverter_of.emplace(ac, InverterEntry{yc, pos});
      if (!inserted && pos < it->second.pos)
        it->second = {yc, pos};
    }
  }

  // Module cell order: the stable canonical commit order (and the order the
  // inverters below are named in), identical for every thread count.
  for (const auto& cptr : module.cells()) {
    Cell* cell = cptr.get();
    if (cell->type() == CellType::Dff)
      continue;
    const int cell_pos = index.topo_position(cell);
    Plan plan{cell, cell_pos, {}, {}, {}, 1};
    bool ok = true;
    int yi = -1;
    for (const SigBit& raw : cell->port(cell->output_port())) {
      ++yi;
      const SigBit c = sigmap(raw);
      if (!c.is_wire())
        continue; // already aliased to a constant: no replacement needed
      if (index.driver(c) != cell) {
        ok = false; // net canonically driven elsewhere: leave untouched
        break;
      }
      const auto it = proven.find(c);
      if (it == proven.end()) {
        ok = false; // a live bit without a proof: cell must survive
        break;
      }
      const Replacement& r = it->second;
      SigBit repl;
      if (r.is_const) {
        repl = SigBit(r.const_one ? State::S1 : State::S0);
      } else {
        // Re-canonicalize the recorded representative: earlier commits may
        // have aliased it onward (including through an inverter wire).
        const SigBit rc = sigmap(r.rep);
        if (rc.is_const()) {
          if (rc.data != State::S0 && rc.data != State::S1) {
            ok = false;
            break;
          }
          const bool one = (rc.data == State::S1) != r.invert;
          repl = SigBit(one ? State::S1 : State::S0);
        } else {
          // The replacement's driver must sit strictly before this cell so
          // the merge (and any inserted inverter, which takes this cell's
          // freed topo position) keeps the stored topo order valid. Free
          // inputs and dff Q bits are sources and always qualify.
          Cell* drv = index.driver(rc);
          if (drv == cell ||
              (drv && drv->type() != CellType::Dff &&
               index.topo_position(drv) >= cell_pos)) {
            ok = false;
            break;
          }
          if (r.invert) {
            // A Not cell that already computes NOT(rep) from rep itself is
            // the inverter we would build: replacing it with a fresh
            // identical one is pure churn and, repeated per round, the
            // inverter ping-pong failure mode. Leave it alone, whatever the
            // position bookkeeping says.
            if (cell->type() == CellType::Not && yi < cell->port(Port::A).size() &&
                sigmap(cell->port(Port::A)[yi]) == rc) {
              ok = false;
              break;
            }
            const auto inv_it = inverter_of.find(rc);
            SigBit existing;
            if (inv_it != inverter_of.end() && inv_it->second.bit != c) {
              Cell* idrv = index.driver(inv_it->second.bit);
              if (idrv && idrv != cell && idrv->type() != CellType::Dff &&
                  index.topo_position(idrv) < cell_pos)
                existing = inv_it->second.bit;
            }
            if (existing.is_wire()) {
              repl = existing;
            } else {
              plan.pending_inv.emplace_back(plan.rhs.size(), rc);
              repl = SigBit(); // patched once the barrier inverter exists
            }
          } else {
            repl = rc;
          }
        }
      }
      plan.lhs.append(raw);
      plan.rhs.append(repl);
    }
    if (!ok || plan.lhs.empty())
      continue;
    if (!plan.pending_inv.empty()) {
      // Cells guaranteed dead once this cell goes: input-net drivers whose
      // every output bit is read only by this cell, reaches no output port,
      // and is not a net the commit itself keeps alive (a replacement bit —
      // aliased onward, or read by a new inverter). A 1-level approximation;
      // deeper cone death only adds benefit, so the gate stays conservative.
      std::unordered_set<SigBit> kept_nets;
      for (const SigBit& b : plan.rhs)
        if (b.is_wire())
          kept_nets.insert(b);
      for (const auto& [pos, rep_bit] : plan.pending_inv) {
        (void)pos;
        kept_nets.insert(rep_bit);
      }
      std::unordered_set<Cell*> counted;
      for (const Port port : cell->input_ports()) {
        for (const SigBit& raw : cell->port(port)) {
          const SigBit cbit = sigmap(raw);
          if (!cbit.is_wire())
            continue;
          Cell* drv = index.driver(cbit);
          if (!drv || drv == cell || drv->type() == CellType::Dff || counted.count(drv))
            continue;
          bool dies = true;
          for (const SigBit& draw : drv->port(drv->output_port())) {
            const SigBit db = sigmap(draw);
            if (!db.is_wire())
              continue;
            dies = dies && !index.drives_output_port(db) && !kept_nets.count(db);
            for (Cell* reader : index.readers(db))
              dies = dies && reader == cell;
          }
          if (dies) {
            counted.insert(drv);
            ++plan.freed_budget;
          }
        }
      }
    }
    plans.push_back(std::move(plan));
  }

  // Materialize at most one new inverter per representative bit, shared by
  // every surviving plan that requested it. Its topo position is the minimum
  // of the requesting cells' freed positions: after every requester's driver
  // (each plan's guard checked rep's driver precedes it) and before every
  // requester's readers.
  opt::SweepJournal journal;
  std::unordered_map<SigBit, std::pair<SigBit, size_t>> barrier_inv; // rep -> (bit, added idx)
  for (Plan& plan : plans) {
    // Net-benefit gate: a complement merge must not insert more new
    // inverters than the cells it provably frees, or a single wide merge
    // could grow the netlist. Inverters another plan already materialized
    // this barrier are free.
    if (!plan.pending_inv.empty()) {
      size_t needed_new = 0;
      std::vector<SigBit> fresh;
      for (const auto& [pos, rep_bit] : plan.pending_inv) {
        (void)pos;
        if (!barrier_inv.count(rep_bit) &&
            std::find(fresh.begin(), fresh.end(), rep_bit) == fresh.end()) {
          fresh.push_back(rep_bit);
          ++needed_new;
        }
      }
      if (needed_new > plan.freed_budget)
        continue; // defer: the merge would cost more cells than it frees
    }
    for (const auto& [pos, rep_bit] : plan.pending_inv) {
      auto it = barrier_inv.find(rep_bit);
      if (it == barrier_inv.end()) {
        rtlil::Wire* w = module.new_wire(1, "$fraig_inv");
        Cell* inv = module.add_cell(CellType::Not);
        inv->set_port(Port::A, rep_bit);
        inv->set_port(Port::Y, SigSpec(w));
        inv->infer_widths();
        journal.added.push_back({inv, plan.topo_pos});
        it = barrier_inv.emplace(rep_bit, std::make_pair(SigBit(w, 0),
                                                         journal.added.size() - 1)).first;
        ++stats.inverter_cells;
      } else {
        auto& slot = journal.added[it->second.second];
        slot.topo_pos = std::min(slot.topo_pos, plan.topo_pos);
      }
      plan.rhs[pos] = it->second.first;
    }
    journal.removed.push_back(plan.cell);
    journal.connects.emplace_back(plan.lhs, plan.rhs);
    ++stats.merged_cells;
  }
  if (!journal.empty())
    opt::apply_sweep_journal(module, index, journal);
  return journal.removed.size();
}

} // namespace

FraigStats& operator+=(FraigStats& acc, const FraigStats& s) {
  acc.rounds += s.rounds;
  acc.candidate_bits += s.candidate_bits;
  acc.classes += s.classes;
  acc.sat_queries += s.sat_queries;
  acc.proved_equal += s.proved_equal;
  acc.proved_complement += s.proved_complement;
  acc.proved_constant += s.proved_constant;
  acc.proved_structural += s.proved_structural;
  acc.disproved += s.disproved;
  acc.unknown += s.unknown;
  acc.cex_patterns += s.cex_patterns;
  acc.merged_cells += s.merged_cells;
  acc.inverter_cells += s.inverter_cells;
  acc.pre_merged += s.pre_merged;
  acc.skipped_solves += s.skipped_solves;
  acc.quarantined += s.quarantined;
  acc.halted += s.halted;
  acc.solver_conflicts += s.solver_conflicts;
  return acc; // threads_used intentionally untouched
}

bool same_work(const FraigStats& a, const FraigStats& b) {
  return a.rounds == b.rounds && a.candidate_bits == b.candidate_bits &&
         a.classes == b.classes && a.sat_queries == b.sat_queries &&
         a.proved_equal == b.proved_equal && a.proved_complement == b.proved_complement &&
         a.proved_constant == b.proved_constant &&
         a.proved_structural == b.proved_structural && a.disproved == b.disproved &&
         a.unknown == b.unknown && a.cex_patterns == b.cex_patterns &&
         a.merged_cells == b.merged_cells && a.inverter_cells == b.inverter_cells &&
         a.pre_merged == b.pre_merged && a.skipped_solves == b.skipped_solves &&
         a.quarantined == b.quarantined && a.halted == b.halted &&
         a.solver_conflicts == b.solver_conflicts;
  // threads_used intentionally excluded: it reflects the machine, not the work.
}

FraigStats fraig_sweep(rtlil::Module& module, const FraigOptions& options) {
  const obs::Span engine_span("fraig", "fraig.sweep", "cells",
                              static_cast<uint64_t>(module.cells().size()));
  FraigStats stats;
  if (options.pre_merge)
    stats.pre_merged = opt::opt_merge(module);

  rtlil::NetlistIndex index(module);
  index.sigmap().flatten();
  util::ThreadPool pool(util::resolve_thread_count(options.threads));
  stats.threads_used = pool.size();

  EquivClasses eq(options.classes);
  std::unordered_map<SigBit, Replacement> proven;
  std::unordered_set<uint64_t> settled;

  util::ResourceGuard* guard = options.guard;
  if (guard != nullptr)
    guard->set_growth_baseline(module.cells().size());

  bool module_changed = true; // the module only mutates inside commit_merges
  for (size_t round = 0; round < options.max_rounds; ++round) {
    // Round barrier: the only place deterministic budgets arm the halt flag,
    // so the same budget trips at the same round for every thread count.
    if (guard != nullptr && guard->checkpoint(module.cells().size())) {
      ++stats.halted;
      guard->note_halted_engine();
      break;
    }
    if (options.quarantine != nullptr &&
        options.quarantine->contains("fraig.round", round + 1)) {
      // A previously faulting round: skip it, keep iterating.
      ++stats.quarantined;
      continue;
    }
    if (util::fault_point("fraig.round", round + 1) != util::FaultAction::None) {
      // Injected round fault: halt as a tripped budget would.
      if (guard != nullptr) {
        guard->halt(util::BudgetKind::Fault);
        guard->note_fault("fraig.round", round + 1);
        guard->note_halted_engine();
      }
      ++stats.halted;
      break;
    }
    ++stats.rounds;
    const obs::Span round_span("fraig", "fraig.round", "round",
                               static_cast<uint64_t>(round + 1));
    if (module_changed)
      eq.bind(module, index); // re-blast; cex-only rounds reuse the blast
    std::vector<EquivClass> classes = eq.compute(&pool);
    if (round == 0)
      stats.candidate_bits = eq.candidate_bits();
    if (options.quarantine != nullptr && !options.quarantine->empty()) {
      // Canonical-order filter at the barrier: quarantined classes are never
      // dispatched, identically on every thread count.
      const size_t before = classes.size();
      classes.erase(std::remove_if(classes.begin(), classes.end(),
                                   [&](const EquivClass& c) {
                                     return options.quarantine->contains("fraig.solve",
                                                                         class_unit_id(c));
                                   }),
                    classes.end());
      stats.quarantined += before - classes.size();
    }
    if (classes.empty())
      break;
    stats.classes += classes.size();

    // Per-class solvers, slot-per-class outputs: which worker proves which
    // class is scheduling noise.
    std::vector<ClassOutcome> outcomes(classes.size());
    const auto task = [&](size_t i) {
      const obs::Span class_span("fraig", "fraig.class", "class",
                                 class_unit_id(classes[i]));
      outcomes[i] = prove_class(classes[i], eq, options, settled);
    };
    bool faulted = false;
    try {
      if (pool.size() > 1 && classes.size() > 1)
        pool.run_batch(classes.size(), [&](int, size_t i) { task(i); });
      else
        for (size_t i = 0; i < classes.size(); ++i)
          task(i);
    } catch (const util::FaultInjected& e) {
      // The prove phase never mutates the module, so dropping this round's
      // outcomes wholesale leaves module and index exactly as the last
      // barrier committed them. Only injected faults are absorbed; real
      // errors keep propagating.
      faulted = true;
      if (guard != nullptr)
        guard->note_fault(e.site().c_str(), e.unit());
    }
    if (faulted) {
      if (guard != nullptr) {
        guard->halt(util::BudgetKind::Fault);
        guard->note_halted_engine();
      }
      ++stats.halted;
      break;
    }

    // Barrier: aggregate in canonical class order (cex pool append order is
    // part of the determinism contract — signatures depend on it).
    // Refinement/conflict histograms are fed here, single-threaded in
    // canonical order, from deterministic per-class outcomes.
    static obs::Histogram& h_class_size = obs::histogram("fraig.class_size");
    static obs::Histogram& h_conflicts = obs::histogram("fraig.solver_conflicts");
    for (const EquivClass& c : classes)
      h_class_size.observe(c.members.size());
    size_t progress = 0;
    for (ClassOutcome& out : outcomes) {
      h_conflicts.observe(out.conflicts);
      stats.sat_queries += out.sat_queries;
      stats.proved_equal += out.proved_equal;
      stats.proved_complement += out.proved_complement;
      stats.proved_constant += out.proved_constant;
      stats.proved_structural += out.proved_structural;
      stats.disproved += out.disproved;
      stats.unknown += out.unknown;
      stats.skipped_solves += out.skipped;
      stats.solver_conflicts += out.conflicts;
      if (guard != nullptr) {
        guard->charge_conflicts(out.conflicts);
        guard->charge_propagations(out.propagations);
        guard->note_skipped_solves(out.skipped);
      }
      for (const uint64_t key : out.attempted)
        settled.insert(key);
      for (const ClassOutcome::Proof& proof : out.proofs)
        proven.emplace(proof.dup, proof.repl);
      for (InputAssignment& cex : out.cexes)
        if (eq.add_counterexample(cex)) {
          ++stats.cex_patterns;
          ++progress;
        }
    }

    // Progress = something the next round can see: a module change or a
    // pattern-pool change. New proofs or settled keys alone leave the next
    // round's classes identical with every pair settled — provably idle, so
    // they do not keep the loop alive.
    //
    // Proven merges commit even when a budget tripped mid-round: "stop
    // taking new merges" means no further rounds, not discarding work whose
    // UNSAT proofs are already in hand.
    const size_t committed = commit_merges(module, index, proven, stats);
    module_changed = committed > 0;
    progress += committed;
    if (progress == 0)
      break;
  }
  if (options.check_index && !rtlil::index_consistent(module, index))
    throw std::logic_error("fraig: incremental NetlistIndex diverged from rebuild");

  // Deterministic totals from the stats struct (identical at every thread
  // count), published once per sweep.
  static obs::Counter& m_rounds = obs::counter("fraig.rounds");
  static obs::Counter& m_queries = obs::counter("fraig.sat_queries");
  static obs::Counter& m_equal = obs::counter("fraig.proved_equal");
  static obs::Counter& m_disproved = obs::counter("fraig.disproved");
  static obs::Counter& m_merged = obs::counter("fraig.merged_cells");
  static obs::Counter& m_cex = obs::counter("fraig.cex_patterns");
  m_rounds.add(stats.rounds);
  m_queries.add(stats.sat_queries);
  m_equal.add(stats.proved_equal);
  m_disproved.add(stats.disproved);
  m_merged.add(stats.merged_cells);
  m_cex.add(stats.cex_patterns);
  return stats;
}

} // namespace smartly::sweep
