// Candidate equivalence-class discovery for the SAT-sweeping (fraig) engine.
//
// The §II oracle machinery answers "is this control bit forced *inside one
// muxtree path*?"; this module generalizes the same packed-simulation
// substrate to the whole netlist: every combinational bit is bit-blasted into
// one module-wide AIG and classified by its behaviour over W×64 random
// patterns (sim::simulate_signatures). Bits whose signatures agree modulo
// global complement land in one candidate class — a necessary condition for
// functional equivalence, so truly-equivalent (or complement) bits can never
// be separated by refinement. Counterexamples learned from disproved SAT
// miters are fed back into the pattern pool; the next compute() splits every
// class the new pattern distinguishes, which is what keeps the fraig engine
// from re-querying disproved pairs.
//
// Determinism: base patterns derive from (seed, wire name, batch index) and
// counterexamples are appended in canonical class order at engine barriers,
// so signatures — and therefore classes — are a pure function of the module
// content, never of the thread count.
#pragma once

#include "aig/aigmap.hpp"
#include "rtlil/module.hpp"
#include "rtlil/topo.hpp"
#include "util/hashing.hpp"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace smartly::util {
class ThreadPool;
}

namespace smartly::sweep {

struct EquivClassOptions {
  size_t sim_words = 8;    ///< random base batches (64 patterns each)
  uint64_t seed = 0x5eedba5e;
  size_t max_patterns = 1024; ///< counterexample pool cap (packed 64/word)
};

/// One candidate member: a canonical module bit with its blast-AIG literal.
struct EquivMember {
  rtlil::SigBit bit;
  aig::Lit lit = 0;
  /// Raw signature is the complement of the class signature: the member is a
  /// candidate for NOT(rep) (complement classes) / constant one (constant
  /// classes).
  bool inverted = false;
  /// Combinational driver cell, or nullptr for free bits (primary inputs,
  /// undriven wires, dff Q) — free bits can anchor a class as its
  /// representative but are never merged away.
  rtlil::Cell* driver = nullptr;
  int topo_pos = -1; ///< driver's topo position; -1 for free bits
  uint64_t rank = 0; ///< stable tie-break: (wire creation order, offset)
};

struct EquivClass {
  /// The class signature is identically zero: members are candidates for a
  /// constant (S0 when !inverted, S1 when inverted) rather than for a
  /// representative bit.
  bool constant = false;
  /// Canonical order: (topo_pos, rank) ascending. members[0] is the merge
  /// representative of non-constant classes — the topologically earliest
  /// member, so committed merges always point backwards and can never close
  /// a combinational cycle.
  std::vector<EquivMember> members;
};

/// A counterexample: values for a subset of the blast AIG's input bits
/// (missing bits are filled deterministically from the pattern seed).
using InputAssignment = std::vector<std::pair<rtlil::SigBit, bool>>;

class EquivClasses {
public:
  explicit EquivClasses(const EquivClassOptions& options = {});

  /// (Re)blast the module into a fresh whole-netlist AIG. Call after every
  /// structural change (the fraig engine's round barriers); the pattern pool
  /// survives rebinds — counterexamples are keyed by module bit, not by AIG
  /// input index.
  void bind(const rtlil::Module& module, const rtlil::NetlistIndex& index);

  /// Simulate the pattern pool (batch-parallel on `pool` when given) and
  /// partition all candidate bits into classes. Singleton classes and
  /// classes with no mergeable member are dropped; classes and members are
  /// in canonical order.
  std::vector<EquivClass> compute(util::ThreadPool* pool = nullptr);

  /// Add a counterexample pattern. Returns false if it was a duplicate or
  /// the pool is full.
  bool add_counterexample(const InputAssignment& assignment);

  const aig::AigMap& blast() const noexcept { return blast_; }
  /// AIG input index -> module bit (Aig::inputs() order).
  const std::vector<rtlil::SigBit>& input_bits() const noexcept { return input_bits_; }
  /// AIG input node -> input index.
  const std::unordered_map<uint32_t, size_t>& input_node_index() const noexcept {
    return input_node_index_;
  }
  size_t pattern_count() const noexcept { return cex_.size(); }
  size_t candidate_bits() const noexcept { return candidate_bits_; }

private:
  uint64_t fill_bit(const rtlil::SigBit& bit, size_t pattern_index) const;

  EquivClassOptions options_;
  const rtlil::Module* module_ = nullptr;
  const rtlil::NetlistIndex* index_ = nullptr;
  aig::AigMap blast_;
  std::vector<rtlil::SigBit> input_bits_;
  std::unordered_map<uint32_t, size_t> input_node_index_;
  std::unordered_map<const rtlil::Wire*, uint64_t> wire_order_;
  size_t candidate_bits_ = 0;

  std::vector<std::unordered_map<rtlil::SigBit, bool>> cex_;
  std::unordered_set<Hash128, Hash128Hasher> cex_seen_;
  /// Rendered pattern words per input bit (base batches + full cex batches);
  /// round-invariant, so compute() only renders what the pool grew by.
  std::unordered_map<rtlil::SigBit, std::vector<uint64_t>> word_cache_;
};

/// Content fingerprint of one cell: type, parameters, and canonicalized
/// input connections, with commutative operand order normalized. Two cells
/// with equal keys compute the same function from the same nets — the shared
/// "trivially identical" notion used by opt_merge's structural pre-pass and
/// the fraig engine's pre-merge.
Hash128 cell_structural_key(const rtlil::Cell& cell, const rtlil::SigMap& sigmap);

/// Exact form of the same notion: type, parameters, and normalized canonical
/// inputs compared field-for-field. opt_merge verifies this on every key hit
/// before aliasing — unlike the fraig engine's merges it has no SAT proof or
/// CEC backstop, so a fingerprint collision must not produce a wrong merge.
bool cell_structurally_identical(const rtlil::Cell& a, const rtlil::Cell& b,
                                 const rtlil::SigMap& sigmap);

/// Operand order of A/B is semantically irrelevant for these cell types
/// (shared by opt_merge and cell_structural_key).
bool cell_inputs_commutative(rtlil::CellType type) noexcept;

} // namespace smartly::sweep
