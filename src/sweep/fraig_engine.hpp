// SAT-sweeping equivalence engine ("fraig", after ABC's fraig/&fraig).
//
// The §II oracle removes redundancy *inside muxtrees*; general combinational
// redundancy — duplicate cones, complement pairs, constant nodes — survives
// smartly_pass untouched. This engine removes it netlist-wide:
//
//   signature   whole-module packed simulation partitions every combinational
//               bit into candidate classes (sweep/equiv_classes);
//   refine      counterexamples from disproved miters re-enter the pattern
//               pool and split the classes they distinguish;
//   SAT-confirm each class owns a solver in which the joint fanin cone of its
//               members is encoded once (aig::ConeCnfEncoder); each member is
//               proved against the class representative under an
//               activation-literal clause group — polarity-aware, so
//               complement pairs merge through an inserted inverter;
//   commit      proven merges are journaled (SweepJournal) and applied at
//               round barriers in canonical class order through the
//               NetlistIndex incremental-maintenance API.
//
// Determinism: class proof tasks run on a work-stealing pool, but each class
// owns its solver (state is a function of class content alone, as the
// parallel sweep engine's per-region oracles), results land in
// slot-per-class outputs, and all module mutation happens at single-threaded
// barriers in canonical order — netlist bytes and statistics are
// bit-identical for every thread count.
//
// Correctness bar: merges are only committed on an UNSAT proof over the full
// fanin cones, and every caller-facing flow CECs the result
// (tests/test_fraig.cpp, bench/bench_sweep.cpp).
#pragma once

#include "rtlil/module.hpp"
#include "sweep/equiv_classes.hpp"
#include "util/budget.hpp"
#include "util/recovery.hpp"

#include <cstdint>

namespace smartly::sweep {

struct FraigOptions {
  /// Worker threads for class proofs and signature batches (0 = one per
  /// hardware thread). Output is bit-identical for every value.
  int threads = 0;
  /// Conflict cap per SAT query; Unknown leaves the pair unmerged. Outcomes
  /// stay deterministic: each class's solver sees the same query sequence
  /// regardless of scheduling.
  int64_t sat_conflict_budget = 4000;
  size_t max_rounds = 16; ///< signature -> SAT -> commit fixpoint cap
  /// Structural pre-pass: merge trivially-identical cells (opt_merge, which
  /// shares cell_structural_key) before any simulation or SAT.
  bool pre_merge = true;
  EquivClassOptions classes;
  /// Optional run-wide resource governor (not owned). Deterministic budgets
  /// are evaluated at round barriers; deadline/cancellation also polled from
  /// workers. On halt the engine keeps the merges already proven, commits
  /// them in canonical order, and returns — the result stays CEC-equivalent.
  util::ResourceGuard* guard = nullptr;
  /// Post-run self-check: assert the incrementally maintained NetlistIndex
  /// equals a from-scratch rebuild (throws std::logic_error on divergence).
  /// Test-only; the robustness suite enables it under fault injection.
  bool check_index = false;
  /// Units the recovery layer has quarantined (not owned; frozen during the
  /// run). Classes whose representative bit is quarantined under
  /// "fraig.solve" are never dispatched; rounds quarantined under
  /// "fraig.round" are skipped. The filter is applied in canonical class
  /// order at the barrier, so it preserves thread-count determinism.
  const util::QuarantineSet* quarantine = nullptr;
};

struct FraigStats {
  size_t rounds = 0;
  size_t candidate_bits = 0;   ///< classified bits (first round)
  size_t classes = 0;          ///< candidate classes dispatched (all rounds)
  size_t sat_queries = 0;      ///< solve() calls issued
  size_t proved_equal = 0;     ///< UNSAT pair miters (incl. complement pairs)
  size_t proved_complement = 0;///< subset of proved_equal merged via inverter
  size_t proved_constant = 0;  ///< bits proven stuck at 0/1
  size_t proved_structural = 0;///< identical blast literals: no solver needed
  size_t disproved = 0;        ///< SAT miters (counterexample learned)
  size_t unknown = 0;          ///< conflict budget exhausted
  size_t cex_patterns = 0;     ///< counterexamples accepted into the pool
  size_t merged_cells = 0;     ///< duplicate driver cells removed
  size_t inverter_cells = 0;   ///< Not cells inserted for complement merges
  size_t pre_merged = 0;       ///< cells merged by the structural pre-pass
  size_t skipped_solves = 0;   ///< queries answered Unknown after a halt, unsolved
  size_t quarantined = 0;      ///< classes/rounds skipped by the quarantine set
  size_t halted = 0;           ///< 1 when a budget/cancel/fault stopped the run early
  uint64_t solver_conflicts = 0;
  int threads_used = 0;        ///< machine detail; excluded from determinism checks
};

/// Accumulate work counters (multi-stage flows like opt_tool's
/// --fraig-pre + --fraig). threads_used keeps the left-hand value — it
/// reflects the machine, not the work. Maintained next to the struct so a
/// new counter cannot be silently dropped from the aggregations.
FraigStats& operator+=(FraigStats& acc, const FraigStats& s);

/// Equality of every work counter, excluding threads_used — the relation the
/// thread-count determinism checks assert (bench_sweep, tests).
bool same_work(const FraigStats& a, const FraigStats& b);

/// Run the SAT-sweeping engine on `module` to fixpoint. Pair with opt_clean
/// afterwards to remove the cones the merges disconnected (opt/pipeline's
/// fraig_stage does both).
FraigStats fraig_sweep(rtlil::Module& module, const FraigOptions& options = {});

} // namespace smartly::sweep
