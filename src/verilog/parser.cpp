#include "verilog/parser.hpp"

#include "util/log.hpp"
#include "verilog/lexer.hpp"
#include "verilog/parse_error.hpp"

#include <stdexcept>
#include <unordered_map>

namespace smartly::verilog {

namespace {

class Parser {
public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  std::vector<ModuleAst> parse() {
    std::vector<ModuleAst> out;
    while (!at_eof())
      out.push_back(parse_module());
    return out;
  }

private:
  [[noreturn]] void error(const std::string& msg) const {
    throw ParseError("", peek().line, peek().col, "verilog parser: " + msg);
  }

  const Token& peek(int ahead = 0) const {
    const size_t i = std::min(pos_ + static_cast<size_t>(ahead), toks_.size() - 1);
    return toks_[i];
  }
  bool at_eof() const { return peek().kind == TokKind::Eof; }
  Token take() { return toks_[std::min(pos_++, toks_.size() - 1)]; }

  bool is_punct(const char* p, int ahead = 0) const {
    return peek(ahead).kind == TokKind::Punct && peek(ahead).text == p;
  }
  bool is_kw(const char* kw, int ahead = 0) const {
    return peek(ahead).kind == TokKind::Ident && peek(ahead).text == kw;
  }
  void expect_punct(const char* p) {
    if (!is_punct(p))
      error(str_format("expected '%s', got '%s'", p, peek().text.c_str()));
    take();
  }
  void expect_kw(const char* kw) {
    if (!is_kw(kw))
      error(str_format("expected '%s', got '%s'", kw, peek().text.c_str()));
    take();
  }
  std::string expect_ident() {
    if (peek().kind != TokKind::Ident)
      error("expected identifier, got '" + peek().text + "'");
    return take().text;
  }

  // --- constant expressions (for ranges / parameters) ----------------------
  int64_t const_eval(const Expr& e) const {
    switch (e.kind) {
    case ExprKind::Number:
      return static_cast<int64_t>(e.value.as_uint());
    case ExprKind::Ident: {
      auto it = params_.find(e.name);
      if (it == params_.end())
        throw ParseError("", e.line, 0,
                         "verilog parser: '" + e.name + "' is not a constant");
      return static_cast<int64_t>(it->second.as_uint());
    }
    case ExprKind::Unary:
      if (e.uop == UnaryOp::Minus)
        return -const_eval(*e.args[0]);
      if (e.uop == UnaryOp::Plus)
        return const_eval(*e.args[0]);
      break;
    case ExprKind::Binary: {
      const int64_t a = const_eval(*e.args[0]);
      const int64_t b = const_eval(*e.args[1]);
      switch (e.bop) {
      case BinaryOp::Add: return a + b;
      case BinaryOp::Sub: return a - b;
      case BinaryOp::Mul: return a * b;
      case BinaryOp::Shl: return a << b;
      case BinaryOp::Shr: return static_cast<int64_t>(static_cast<uint64_t>(a) >> b);
      default: break;
      }
      break;
    }
    default:
      break;
    }
    throw ParseError("", e.line, 0, "verilog parser: unsupported constant expression");
  }

  // --- module --------------------------------------------------------------
  ModuleAst parse_module() {
    params_.clear();
    expect_kw("module");
    ModuleAst m;
    m.name = expect_ident();
    if (is_punct("(")) {
      take();
      if (!is_punct(")")) {
        for (;;) {
          m.port_order.push_back(expect_ident());
          if (is_punct(","))
            take();
          else
            break;
        }
      }
      expect_punct(")");
    }
    expect_punct(";");

    while (!is_kw("endmodule")) {
      if (at_eof())
        error("unexpected end of file inside module");
      parse_item(m);
    }
    expect_kw("endmodule");
    return m;
  }

  void parse_item(ModuleAst& m) {
    if (is_kw("input") || is_kw("output") || is_kw("wire") || is_kw("reg")) {
      parse_decl(m);
      return;
    }
    if (is_kw("parameter") || is_kw("localparam")) {
      take();
      for (;;) {
        Parameter p;
        p.name = expect_ident();
        expect_punct("=");
        const ExprPtr e = parse_expr();
        if (e->kind == ExprKind::Number) {
          p.value = e->value;
        } else {
          p.value = rtlil::Const(static_cast<uint64_t>(const_eval(*e)), 32);
        }
        params_[p.name] = p.value;
        m.parameters.push_back(std::move(p));
        if (is_punct(","))
          take();
        else
          break;
      }
      expect_punct(";");
      return;
    }
    if (is_kw("assign")) {
      take();
      for (;;) {
        ExprPtr lhs = parse_lvalue();
        expect_punct("=");
        ExprPtr rhs = parse_expr();
        m.assigns.emplace_back(std::move(lhs), std::move(rhs));
        if (is_punct(","))
          take();
        else
          break;
      }
      expect_punct(";");
      return;
    }
    if (is_kw("always")) {
      AlwaysBlock blk;
      blk.line = peek().line;
      take();
      expect_punct("@");
      expect_punct("(");
      if (is_punct("*")) {
        take();
        blk.is_comb = true;
      } else if (is_kw("posedge")) {
        take();
        blk.is_comb = false;
        blk.clock = expect_ident();
      } else {
        // @(a or b or c) style sensitivity list — treated as combinational.
        blk.is_comb = true;
        expect_ident();
        while (is_kw("or") || is_punct(",")) {
          take();
          expect_ident();
        }
      }
      expect_punct(")");
      blk.body = parse_stmt();
      m.always_blocks.push_back(std::move(blk));
      return;
    }
    error("unexpected token '" + peek().text + "' in module body");
  }

  void parse_decl(ModuleAst& m) {
    Dir dir = Dir::None;
    bool is_reg = false;
    if (is_kw("input")) {
      take();
      dir = Dir::Input;
    } else if (is_kw("output")) {
      take();
      dir = Dir::Output;
    }
    if (is_kw("wire"))
      take();
    else if (is_kw("reg")) {
      take();
      is_reg = true;
    }

    int msb = 0, lsb = 0;
    if (is_punct("[")) {
      take();
      msb = static_cast<int>(const_eval(*parse_expr()));
      expect_punct(":");
      lsb = static_cast<int>(const_eval(*parse_expr()));
      expect_punct("]");
    }
    for (;;) {
      Decl d;
      d.line = peek().line;
      d.name = expect_ident();
      d.msb = msb;
      d.lsb = lsb;
      d.is_reg = is_reg;
      d.dir = dir;
      m.decls.push_back(std::move(d));
      if (is_punct(","))
        take();
      else
        break;
    }
    expect_punct(";");
  }

  // --- statements ----------------------------------------------------------
  StmtPtr parse_stmt() {
    auto s = std::make_unique<Stmt>();
    s->line = peek().line;

    if (is_kw("begin")) {
      take();
      s->kind = StmtKind::Block;
      while (!is_kw("end")) {
        if (at_eof())
          error("unexpected EOF in begin/end block");
        s->stmts.push_back(parse_stmt());
      }
      take();
      return s;
    }
    if (is_kw("if")) {
      take();
      s->kind = StmtKind::If;
      expect_punct("(");
      s->cond = parse_expr();
      expect_punct(")");
      s->then_stmt = parse_stmt();
      if (is_kw("else")) {
        take();
        s->else_stmt = parse_stmt();
      }
      return s;
    }
    if (is_kw("case") || is_kw("casez")) {
      s->is_casez = peek().text == "casez";
      take();
      s->kind = StmtKind::Case;
      expect_punct("(");
      s->cond = parse_expr();
      expect_punct(")");
      while (!is_kw("endcase")) {
        if (at_eof())
          error("unexpected EOF in case statement");
        CaseItem item;
        if (is_kw("default")) {
          take();
          item.is_default = true;
          if (is_punct(":"))
            take();
        } else {
          for (;;) {
            item.labels.push_back(parse_expr());
            if (is_punct(","))
              take();
            else
              break;
          }
          expect_punct(":");
        }
        item.body = parse_stmt();
        s->items.push_back(std::move(item));
      }
      take();
      return s;
    }

    // Assignment.
    s->kind = StmtKind::Assign;
    s->lhs = parse_lvalue();
    if (is_punct("<=")) {
      take();
      s->nonblocking = true;
    } else {
      expect_punct("=");
    }
    s->rhs = parse_expr();
    expect_punct(";");
    return s;
  }

  // --- expressions ----------------------------------------------------------
  ExprPtr parse_lvalue() {
    if (is_punct("{")) {
      auto e = std::make_unique<Expr>();
      e->line = peek().line;
      e->kind = ExprKind::Concat;
      take();
      for (;;) {
        e->args.push_back(parse_lvalue());
        if (is_punct(","))
          take();
        else
          break;
      }
      expect_punct("}");
      return e;
    }
    const std::string name = expect_ident();
    return parse_postfix(name, peek().line);
  }

  ExprPtr parse_postfix(const std::string& name, int line) {
    auto e = std::make_unique<Expr>();
    e->line = line;
    e->name = name;
    if (!is_punct("[")) {
      e->kind = ExprKind::Ident;
      return e;
    }
    take();
    ExprPtr first = parse_expr();
    if (is_punct(":")) {
      take();
      ExprPtr second = parse_expr();
      e->kind = ExprKind::Slice;
      e->msb = static_cast<int>(const_eval(*first));
      e->lsb = static_cast<int>(const_eval(*second));
      expect_punct("]");
      return e;
    }
    expect_punct("]");
    e->kind = ExprKind::Index;
    e->args.push_back(std::move(first));
    return e;
  }

  int binary_prec(const std::string& op) const {
    // Higher binds tighter. Ternary handled separately (lowest).
    static const std::unordered_map<std::string, int> prec = {
        {"||", 1}, {"&&", 2}, {"|", 3},  {"^", 4},  {"~^", 4}, {"^~", 4},
        {"&", 5},  {"==", 6}, {"!=", 6}, {"<", 7},  {"<=", 7}, {">", 7},
        {">=", 7}, {"<<", 8}, {">>", 8}, {">>>", 8}, {"+", 9}, {"-", 9},
        {"*", 10},
    };
    auto it = prec.find(op);
    return it == prec.end() ? -1 : it->second;
  }

  BinaryOp binary_op(const std::string& op) const {
    if (op == "||") return BinaryOp::LogicOr;
    if (op == "&&") return BinaryOp::LogicAnd;
    if (op == "|") return BinaryOp::Or;
    if (op == "^") return BinaryOp::Xor;
    if (op == "~^" || op == "^~") return BinaryOp::Xnor;
    if (op == "&") return BinaryOp::And;
    if (op == "==") return BinaryOp::Eq;
    if (op == "!=") return BinaryOp::Ne;
    if (op == "<") return BinaryOp::Lt;
    if (op == "<=") return BinaryOp::Le;
    if (op == ">") return BinaryOp::Gt;
    if (op == ">=") return BinaryOp::Ge;
    if (op == "<<") return BinaryOp::Shl;
    if (op == ">>") return BinaryOp::Shr;
    if (op == ">>>") return BinaryOp::Sshr;
    if (op == "+") return BinaryOp::Add;
    if (op == "-") return BinaryOp::Sub;
    if (op == "*") return BinaryOp::Mul;
    error("unknown binary operator " + op);
  }

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_binary(1);
    if (!is_punct("?"))
      return cond;
    auto e = std::make_unique<Expr>();
    e->line = peek().line;
    e->kind = ExprKind::Ternary;
    take();
    ExprPtr t = parse_ternary();
    expect_punct(":");
    ExprPtr f = parse_ternary();
    e->args.push_back(std::move(cond));
    e->args.push_back(std::move(t));
    e->args.push_back(std::move(f));
    return e;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      if (peek().kind != TokKind::Punct)
        return lhs;
      const int prec = binary_prec(peek().text);
      if (prec < min_prec)
        return lhs;
      const std::string op = take().text;
      ExprPtr rhs = parse_binary(prec + 1);
      auto e = std::make_unique<Expr>();
      e->line = lhs->line;
      e->kind = ExprKind::Binary;
      e->bop = binary_op(op);
      e->args.push_back(std::move(lhs));
      e->args.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    if (peek().kind == TokKind::Punct) {
      const std::string& t = peek().text;
      UnaryOp op;
      bool matched = true;
      if (t == "!")
        op = UnaryOp::Not;
      else if (t == "~")
        op = UnaryOp::BitNot;
      else if (t == "-")
        op = UnaryOp::Minus;
      else if (t == "+")
        op = UnaryOp::Plus;
      else if (t == "&")
        op = UnaryOp::RedAnd;
      else if (t == "|")
        op = UnaryOp::RedOr;
      else if (t == "^")
        op = UnaryOp::RedXor;
      else if (t == "~^" || t == "^~")
        op = UnaryOp::RedXnor;
      else
        matched = false;
      if (matched) {
        auto e = std::make_unique<Expr>();
        e->line = peek().line;
        take();
        e->kind = ExprKind::Unary;
        e->uop = op;
        e->args.push_back(parse_unary());
        return e;
      }
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (is_punct("(")) {
      take();
      ExprPtr e = parse_expr();
      expect_punct(")");
      return e;
    }
    if (is_punct("{")) {
      const int line = peek().line;
      take();
      // Replication {n{expr}} or concat {a, b, ...}.
      // Heuristic: replication iff first token forms a constant expr followed
      // by '{'.
      ExprPtr first = parse_expr();
      if (is_punct("{")) {
        take();
        auto e = std::make_unique<Expr>();
        e->line = line;
        e->kind = ExprKind::Repeat;
        e->repeat_count = static_cast<int>(const_eval(*first));
        e->args.push_back(parse_expr());
        expect_punct("}");
        expect_punct("}");
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->line = line;
      e->kind = ExprKind::Concat;
      e->args.push_back(std::move(first));
      while (is_punct(",")) {
        take();
        e->args.push_back(parse_expr());
      }
      expect_punct("}");
      return e;
    }
    if (peek().kind == TokKind::Number) {
      const Token tok = take();
      const NumberValue nv = decode_number(tok.text, tok.line);
      auto e = std::make_unique<Expr>();
      e->line = tok.line;
      e->kind = ExprKind::Number;
      e->sized = nv.sized;
      std::vector<rtlil::State> bits;
      bits.reserve(nv.bits_lsb_first.size());
      for (char c : nv.bits_lsb_first)
        bits.push_back(rtlil::state_from_char(c));
      e->value = rtlil::Const(std::move(bits));
      return e;
    }
    if (peek().kind == TokKind::Ident) {
      const Token tok = take();
      // Parameters fold to numbers at parse time.
      auto it = params_.find(tok.text);
      if (it != params_.end() && !is_punct("[")) {
        auto e = std::make_unique<Expr>();
        e->line = tok.line;
        e->kind = ExprKind::Number;
        e->sized = true;
        e->value = it->second;
        return e;
      }
      return parse_postfix(tok.text, tok.line);
    }
    error("unexpected token '" + peek().text + "' in expression");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  std::unordered_map<std::string, rtlil::Const> params_;
};

} // namespace

std::vector<ModuleAst> parse_verilog(const std::string& source) {
  return Parser(tokenize(source)).parse();
}

} // namespace smartly::verilog
