// AST for the synthesizable Verilog subset.
#pragma once

#include "rtlil/const.hpp"

#include <memory>
#include <string>
#include <vector>

namespace smartly::verilog {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class UnaryOp { Plus, Minus, Not, BitNot, RedAnd, RedOr, RedXor, RedXnor };
enum class BinaryOp {
  Add, Sub, Mul,
  And, Or, Xor, Xnor,
  LogicAnd, LogicOr,
  Eq, Ne, Lt, Le, Gt, Ge,
  Shl, Shr, Sshr,
};

enum class ExprKind {
  Number,  ///< value
  Ident,   ///< name
  Unary,   ///< uop, args[0]
  Binary,  ///< bop, args[0], args[1]
  Ternary, ///< args[0] ? args[1] : args[2]
  Concat,  ///< {args...} (MSB first, as written)
  Repeat,  ///< {count{args[0]}}
  Index,   ///< name[args[0]]   (args[0] may be non-constant → indexed mux)
  Slice,   ///< name[msb:lsb]   (constant bounds)
};

struct Expr {
  ExprKind kind;
  int line = 0;

  rtlil::Const value;          // Number
  bool sized = false;          // Number: had explicit width
  std::string name;            // Ident / Index / Slice
  UnaryOp uop{};
  BinaryOp bop{};
  std::vector<ExprPtr> args;
  int repeat_count = 0;        // Repeat
  int msb = 0, lsb = 0;        // Slice
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind { Block, If, Case, Assign };

struct CaseItem {
  std::vector<ExprPtr> labels; ///< empty for `default`
  bool is_default = false;
  StmtPtr body;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  std::vector<StmtPtr> stmts; // Block
  ExprPtr cond;               // If condition / Case selector
  StmtPtr then_stmt;          // If
  StmtPtr else_stmt;          // If (may be null)
  std::vector<CaseItem> items;
  bool is_casez = false;
  ExprPtr lhs; // Assign target (Ident/Index/Slice/Concat)
  ExprPtr rhs;
  bool nonblocking = false;
};

enum class Dir { None, Input, Output };

struct Decl {
  std::string name;
  int msb = 0, lsb = 0; ///< [msb:lsb]; scalar = [0:0]
  bool is_reg = false;
  Dir dir = Dir::None;
  int line = 0;
};

struct AlwaysBlock {
  bool is_comb = true;   ///< @(*) vs @(posedge clock)
  std::string clock;     ///< valid when !is_comb
  StmtPtr body;
  int line = 0;
};

struct Parameter {
  std::string name;
  rtlil::Const value;
};

struct ModuleAst {
  std::string name;
  std::vector<std::string> port_order;
  std::vector<Decl> decls;
  std::vector<std::pair<ExprPtr, ExprPtr>> assigns; ///< assign lhs = rhs
  std::vector<AlwaysBlock> always_blocks;
  std::vector<Parameter> parameters;
};

/// Width of a declared range.
inline int decl_width(const Decl& d) { return d.msb - d.lsb + 1; }

} // namespace smartly::verilog
