// Recursive-descent parser for the synthesizable Verilog subset.
//
// Grammar (informal):
//   module IDENT ( port {, port} ) ; { item } endmodule
//   item  := (input|output|wire|reg) [range] ident {, ident} ;
//          | parameter/localparam IDENT = expr ;
//          | assign lvalue = expr ;
//          | always @ ( * | posedge IDENT ) stmt
//   stmt  := begin { stmt } end | if (expr) stmt [else stmt]
//          | case|casez (expr) { case_item } endcase
//          | lvalue (= | <=) expr ;
// Expressions support the full operator set of ast.hpp with standard
// Verilog precedence, plus concat {..}, replication {n{..}}, bit-select and
// constant part-select.
#pragma once

#include "verilog/ast.hpp"

#include <string>
#include <vector>

namespace smartly::verilog {

/// Parse all modules in `source`. Throws verilog::ParseError (a
/// std::runtime_error carrying line/column) on syntax errors.
std::vector<ModuleAst> parse_verilog(const std::string& source);

} // namespace smartly::verilog
