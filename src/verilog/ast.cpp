// AST helpers (construction + debugging support).
#include "verilog/ast.hpp"

namespace smartly::verilog {

// The AST is a passive data structure; all behaviour lives in the parser and
// elaborator. This TU exists so the module has a stable home for future
// out-of-line helpers (kept deliberately small).

} // namespace smartly::verilog
