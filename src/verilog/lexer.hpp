// Lexer for the synthesizable Verilog subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace smartly::verilog {

enum class TokKind : uint8_t {
  Eof,
  Ident,   ///< identifier or keyword (keywords resolved by the parser)
  Number,  ///< numeric literal, normalized in `text` (see Lexer docs)
  Punct,   ///< operator / punctuation, exact characters in `text`
};

struct Token {
  TokKind kind = TokKind::Eof;
  std::string text;
  int line = 0;
  int col = 0;
};

/// Tokenize Verilog source. Throws std::runtime_error with line info on
/// malformed input. Comments (`//`, `/* */`) and whitespace are skipped.
/// Numbers keep their original spelling (e.g. "8'hf0", "3'b1zz", "42").
std::vector<Token> tokenize(const std::string& source);

/// Decode a number token into (width, bits). Unsized decimals get width 32.
/// Bits are returned LSB-first as chars '0','1','x','z'.
struct NumberValue {
  int width = 32;
  bool sized = false;
  std::string bits_lsb_first;
};
NumberValue decode_number(const std::string& text, int line);

} // namespace smartly::verilog
