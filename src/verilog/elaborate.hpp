// Elaboration: Verilog AST -> RTLIL netlist.
//
// This is the step that *creates* the structures smaRTLy optimizes:
//   * `if (c) ... else ...`   -> $mux per assigned signal
//   * `case (S) ...`          -> a priority chain of $mux cells whose selects
//                                are $eq(S, label) cells (paper Fig. 5); casez
//                                labels with z bits compare only the non-z
//                                bit positions (paper Listing 2)
//   * `always @(posedge clk)` -> $dff cells around the combinational cone
//
// Procedural semantics: assignments in @(*) blocks are blocking; assignments
// in posedge blocks are treated as nonblocking (reads see the register
// output). Unassigned paths in combinational blocks read as x (a latch would
// be inferred by real tools; the generators in this repo always fully assign).
#pragma once

#include "rtlil/module.hpp"
#include "verilog/ast.hpp"

#include <memory>
#include <string>

namespace smartly::verilog {

/// Elaborate one module AST into `design`. Returns the created module.
/// Throws verilog::ParseError (a std::runtime_error) on semantic errors
/// (unknown identifiers, width-0 signals, unsupported constructs).
rtlil::Module* elaborate(const ModuleAst& ast, rtlil::Design& design);

/// Parse + elaborate all modules in `source` into a fresh design. Front-end
/// diagnostics are verilog::ParseError with line/column; when `filename` is
/// given it is stamped into the error so what() reads `file:line:col: msg`.
std::unique_ptr<rtlil::Design> read_verilog(const std::string& source,
                                            const std::string& filename = "");

} // namespace smartly::verilog
