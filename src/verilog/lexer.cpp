#include "verilog/lexer.hpp"

#include "util/log.hpp"
#include "verilog/parse_error.hpp"

#include <cctype>
#include <stdexcept>

namespace smartly::verilog {

namespace {

[[noreturn]] void lex_error(int line, int col, const std::string& msg) {
  throw ParseError("", line, col, "verilog lexer: " + msg);
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$'; }

// Multi-character punctuation, longest-match first.
const char* kPuncts[] = {
    ">>>", "<<<", "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "~^", "^~", "+:", "-:", "(", ")", "[", "]", "{", "}", ",", ";", ":", "?",
    "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "@", "#", ".",
};

} // namespace

std::vector<Token> tokenize(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1, col = 1;

  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (src[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n')
        advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const int start_line = line;
      const int start_col = col;
      advance(2);
      for (;;) {
        if (i + 1 >= src.size())
          lex_error(start_line, start_col, "unterminated block comment");
        if (src[i] == '*' && src[i + 1] == '/') {
          advance(2);
          break;
        }
        advance(1);
      }
      continue;
    }

    Token tok;
    tok.line = line;
    tok.col = col;

    if (is_ident_start(c)) {
      size_t j = i;
      while (j < src.size() && is_ident_char(src[j]))
        ++j;
      tok.kind = TokKind::Ident;
      tok.text = src.substr(i, j - i);
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Number: [size] ['base digits]  — digits may include x/z/_ per base.
      size_t j = i;
      while (j < src.size() && (std::isdigit(static_cast<unsigned char>(src[j])) || src[j] == '_'))
        ++j;
      if (j < src.size() && src[j] == '\'') {
        ++j;
        if (j < src.size() && (src[j] == 's' || src[j] == 'S'))
          ++j;
        if (j >= src.size())
          lex_error(line, col, "truncated based literal");
        ++j; // base char, validated by decode_number
        while (j < src.size() &&
               (std::isalnum(static_cast<unsigned char>(src[j])) || src[j] == '_' ||
                src[j] == '?'))
          ++j;
      }
      tok.kind = TokKind::Number;
      tok.text = src.substr(i, j - i);
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      // Unsized based literal like 'b0 / 'd3.
      size_t j = i + 1;
      if (j < src.size() && (src[j] == 's' || src[j] == 'S'))
        ++j;
      if (j >= src.size())
        lex_error(line, col, "truncated based literal");
      ++j;
      while (j < src.size() && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                                src[j] == '_' || src[j] == '?'))
        ++j;
      tok.kind = TokKind::Number;
      tok.text = src.substr(i, j - i);
      advance(j - i);
      out.push_back(std::move(tok));
      continue;
    }

    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        tok.kind = TokKind::Punct;
        tok.text = p;
        advance(len);
        out.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (!matched)
      lex_error(line, col, str_format("unexpected character '%c'", c));
  }

  Token eof;
  eof.kind = TokKind::Eof;
  eof.line = line;
  out.push_back(std::move(eof));
  return out;
}

NumberValue decode_number(const std::string& text, int line) {
  NumberValue out;
  const size_t quote = text.find('\'');
  if (quote == std::string::npos) {
    // Plain decimal, 32-bit unsigned.
    uint64_t v = 0;
    for (char c : text) {
      if (c == '_')
        continue;
      if (!std::isdigit(static_cast<unsigned char>(c)))
        lex_error(line, 0, "bad decimal literal: " + text);
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    out.width = 32;
    out.sized = false;
    for (int b = 0; b < 32; ++b)
      out.bits_lsb_first.push_back(((v >> b) & 1) ? '1' : '0');
    return out;
  }

  // Sized/based literal.
  int width = 0;
  for (size_t k = 0; k < quote; ++k) {
    if (text[k] == '_')
      continue;
    width = width * 10 + (text[k] - '0');
  }
  size_t p = quote + 1;
  if (p < text.size() && (text[p] == 's' || text[p] == 'S'))
    ++p; // signedness ignored (subset)
  if (p >= text.size())
    lex_error(line, 0, "bad literal: " + text);
  const char base = static_cast<char>(std::tolower(static_cast<unsigned char>(text[p])));
  ++p;
  const std::string digits = text.substr(p);
  if (digits.empty())
    lex_error(line, 0, "literal has no digits: " + text);

  std::string bits_msb; // msb-first accumulation
  auto push_bits = [&](int value, int nbits, char xz) {
    for (int b = nbits - 1; b >= 0; --b) {
      if (xz)
        bits_msb.push_back(xz);
      else
        bits_msb.push_back(((value >> b) & 1) ? '1' : '0');
    }
  };

  if (base == 'b' || base == 'o' || base == 'h') {
    const int per = base == 'b' ? 1 : base == 'o' ? 3 : 4;
    for (char c : digits) {
      if (c == '_')
        continue;
      const char lc = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      if (lc == 'x' || lc == 'z' || lc == '?') {
        push_bits(0, per, lc == '?' ? 'z' : lc);
        continue;
      }
      int v = 0;
      if (std::isdigit(static_cast<unsigned char>(lc)))
        v = lc - '0';
      else if (lc >= 'a' && lc <= 'f' && base == 'h')
        v = lc - 'a' + 10;
      else
        lex_error(line, 0, "bad digit in literal: " + text);
      if (v >= (1 << per))
        lex_error(line, 0, "digit out of range for base: " + text);
      push_bits(v, per, 0);
    }
  } else if (base == 'd') {
    uint64_t v = 0;
    for (char c : digits) {
      if (c == '_')
        continue;
      if (!std::isdigit(static_cast<unsigned char>(c)))
        lex_error(line, 0, "bad decimal digit: " + text);
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    for (int b = 63; b >= 0; --b)
      bits_msb.push_back(((v >> b) & 1) ? '1' : '0');
  } else {
    lex_error(line, 0, "unsupported base in literal: " + text);
  }

  if (width == 0)
    width = static_cast<int>(bits_msb.size());
  out.width = width;
  out.sized = true;
  // LSB-first, extended/truncated to width. Extension repeats x/z, else 0.
  std::string lsb(bits_msb.rbegin(), bits_msb.rend());
  const char fill = (!lsb.empty() && (lsb.back() == 'x' || lsb.back() == 'z')) ? lsb.back() : '0';
  lsb.resize(static_cast<size_t>(width), fill);
  out.bits_lsb_first = std::move(lsb);
  return out;
}

} // namespace smartly::verilog
