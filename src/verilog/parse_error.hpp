// Structured parse/elaboration errors with source locations.
//
// Every diagnostic out of the Verilog front end (lexer, parser, elaborator)
// is a ParseError carrying file/line/column; what() renders the conventional
// `file:line:col: message` form that editors and CI log scrapers understand.
// The front end itself only sees source text, so errors start with an empty
// file name (rendered as "<input>"); read_verilog stamps the real name in
// via with_file() when the caller provides one.
//
// ParseError derives from std::runtime_error, so existing catch sites (and
// EXPECT_THROW(..., std::runtime_error) tests) keep working unchanged.
#pragma once

#include <stdexcept>
#include <string>

namespace smartly::verilog {

namespace detail {
inline std::string format_parse_error(const std::string& file, int line, int col,
                                      const std::string& message) {
  std::string out = file.empty() ? std::string("<input>") : file;
  out += ":" + std::to_string(line);
  if (col > 0) // elaboration errors track lines only; don't print ":0"
    out += ":" + std::to_string(col);
  out += ": " + message;
  return out;
}
} // namespace detail

class ParseError : public std::runtime_error {
public:
  /// `col` may be 0 when the producer only tracks lines (elaboration works
  /// on the AST, which records lines but not columns).
  ParseError(std::string file, int line, int col, std::string message)
      : std::runtime_error(detail::format_parse_error(file, line, col, message)),
        file_(std::move(file)), line_(line), col_(col), message_(std::move(message)) {}

  const std::string& file() const noexcept { return file_; }
  int line() const noexcept { return line_; }
  int col() const noexcept { return col_; }
  /// The bare diagnostic, without the location prefix.
  const std::string& message() const noexcept { return message_; }

  /// Copy with the file name filled in (used by read_verilog, which is the
  /// first layer that knows where the source text came from).
  ParseError with_file(std::string file) const {
    return ParseError(std::move(file), line_, col_, message_);
  }

private:
  std::string file_;
  int line_ = 0;
  int col_ = 0;
  std::string message_;
};

} // namespace smartly::verilog
