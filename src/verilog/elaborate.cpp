#include "verilog/elaborate.hpp"

#include "util/log.hpp"
#include "verilog/parse_error.hpp"
#include "verilog/parser.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace smartly::verilog {

namespace {

using rtlil::CellType;
using rtlil::Const;
using rtlil::Design;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;
using rtlil::Wire;

[[noreturn]] void elab_error(int line, const std::string& msg) {
  // The AST records lines but not columns; 0 means "whole line".
  throw ParseError("", line, 0, "verilog elaborate: " + msg);
}

/// Per-wire procedural values inside an always block.
using ProcEnv = std::unordered_map<Wire*, SigSpec>;

class Elaborator {
public:
  Elaborator(const ModuleAst& ast, Design& design) : ast_(ast), design_(design) {}

  Module* run() {
    module_ = design_.add_module(ast_.name);

    // Declarations (combine duplicate entries: `output reg [7:0] y` may be
    // declared once; ports listed in the header get their direction here).
    for (const Decl& d : ast_.decls) {
      Wire* w = module_->wire(d.name);
      if (!w) {
        w = module_->add_wire(d.name, decl_width(d));
        lsb_[w] = d.lsb;
      }
      if (d.dir == Dir::Input)
        module_->set_port_input(w);
      if (d.dir == Dir::Output)
        module_->set_port_output(w);
    }
    for (const std::string& p : ast_.port_order)
      if (!module_->has_wire(p))
        elab_error(0, "port '" + p + "' has no declaration");

    for (const auto& [lhs, rhs] : ast_.assigns) {
      const SigSpec target = eval_lvalue(*lhs);
      const SigSpec value =
          eval_expr(*rhs, nullptr, target.size()).extended(target.size(), false);
      if (!direct_drive(target, value))
        module_->connect(target, value);
    }

    for (const AlwaysBlock& blk : ast_.always_blocks)
      elaborate_always(blk);

    module_->check();
    return module_;
  }

private:
  Wire* lookup(const std::string& name, int line) const {
    Wire* w = module_->wire(name);
    if (!w)
      elab_error(line, "unknown identifier '" + name + "'");
    return w;
  }

  int wire_lsb(Wire* w) const {
    auto it = lsb_.find(w);
    return it == lsb_.end() ? 0 : it->second;
  }

  // --- expressions ----------------------------------------------------------

  /// Read a wire's current value (procedural env first, then the net itself).
  SigSpec read_wire(Wire* w, const ProcEnv* env) const {
    if (env) {
      auto it = env->find(w);
      if (it != env->end())
        return it->second;
    }
    return SigSpec(w);
  }

  /// Drive `target` directly with the cell that produced `value`, when
  /// `value` is exactly the fresh $sig temp of the most recently added cell
  /// (i.e. the RHS was a single operator expression). Avoids the temp-wire +
  /// alias-connect pair a plain `connect(target, value)` would leave behind,
  /// which is what keeps write_verilog -> read_verilog round-trips
  /// name-stable: each `assign y = <op>` re-elaborates to the same cell
  /// driving the same named wire, so the recovery layer's name-hash unit ids
  /// (quarantine keys, fault units) survive repro-bundle replays.
  bool direct_drive(const SigSpec& target, const SigSpec& value) {
    if (value.size() != target.size() || value.empty() || !value[0].is_wire())
      return false;
    rtlil::Wire* w = value[0].wire;
    if (w->port_input || w->port_output || !(value == SigSpec(w)))
      return false;
    if (w->name().rfind("$sig", 0) != 0)
      return false;
    if (module_->wires().empty() || module_->wires().back().get() != w)
      return false;
    if (module_->cells().empty())
      return false;
    rtlil::Cell* c = module_->cells().back().get();
    if (!c->has_port(rtlil::Port::Y) || !(c->port(rtlil::Port::Y) == SigSpec(w)))
      return false;
    c->set_port(rtlil::Port::Y, target);
    module_->remove_wire(w);
    return true;
  }

  SigSpec to_bool(const SigSpec& s) {
    if (s.size() == 1)
      return s;
    return module_->add_unary(CellType::ReduceBool, s, 1);
  }

  /// Self-determined width of an expression (IEEE 1364 table 5-22 subset).
  /// Used to seed context-determined sizing: the width of `a + b` in an
  /// assignment is max(lhs width, self width of each operand), and that
  /// context width propagates down through width-transparent operators.
  int expr_self_width(const Expr& e) const {
    switch (e.kind) {
    case ExprKind::Number:
      return e.value.size();
    case ExprKind::Ident:
      return lookup(e.name, e.line)->width();
    case ExprKind::Unary:
      switch (e.uop) {
      case UnaryOp::Plus:
      case UnaryOp::Minus:
      case UnaryOp::BitNot:
        return expr_self_width(*e.args[0]);
      default:
        return 1; // reductions and logical not
      }
    case ExprKind::Binary:
      switch (e.bop) {
      case BinaryOp::Add: case BinaryOp::Sub: case BinaryOp::Mul:
      case BinaryOp::And: case BinaryOp::Or: case BinaryOp::Xor: case BinaryOp::Xnor:
        return std::max(expr_self_width(*e.args[0]), expr_self_width(*e.args[1]));
      case BinaryOp::Shl: case BinaryOp::Shr: case BinaryOp::Sshr:
        return expr_self_width(*e.args[0]);
      default:
        return 1; // comparisons and &&/||
      }
    case ExprKind::Ternary:
      return std::max(expr_self_width(*e.args[1]), expr_self_width(*e.args[2]));
    case ExprKind::Concat: {
      int w = 0;
      for (const ExprPtr& a : e.args)
        w += expr_self_width(*a);
      return w;
    }
    case ExprKind::Repeat:
      return e.repeat_count * expr_self_width(*e.args[0]);
    case ExprKind::Index:
      return 1;
    case ExprKind::Slice:
      return e.msb - e.lsb + 1;
    }
    elab_error(e.line, "bad expression kind");
  }

  /// Evaluate `e` in a `ctx`-bit context (0 = self-determined). The context
  /// width flows into width-transparent operators so e.g. an 8-bit + 8-bit
  /// addition assigned to a 9-bit net keeps its carry bit.
  SigSpec eval_expr(const Expr& e, const ProcEnv* env, int ctx = 0) {
    switch (e.kind) {
    case ExprKind::Number:
      return SigSpec(e.value);

    case ExprKind::Ident:
      return read_wire(lookup(e.name, e.line), env);

    case ExprKind::Unary: {
      switch (e.uop) {
      case UnaryOp::Plus:
        return eval_expr(*e.args[0], env, ctx);
      case UnaryOp::Minus: {
        const int w = std::max(ctx, expr_self_width(*e.args[0]));
        const SigSpec a = eval_expr(*e.args[0], env, w);
        return module_->add_unary(CellType::Neg, a, w);
      }
      case UnaryOp::BitNot: {
        const int w = std::max(ctx, expr_self_width(*e.args[0]));
        const SigSpec a = eval_expr(*e.args[0], env, w);
        return module_->add_unary(CellType::Not, a.extended(w, false), w);
      }
      case UnaryOp::Not:
        return module_->add_unary(CellType::LogicNot, eval_expr(*e.args[0], env), 1);
      case UnaryOp::RedAnd:
        return module_->add_unary(CellType::ReduceAnd, eval_expr(*e.args[0], env), 1);
      case UnaryOp::RedOr:
        return module_->add_unary(CellType::ReduceOr, eval_expr(*e.args[0], env), 1);
      case UnaryOp::RedXor:
        return module_->add_unary(CellType::ReduceXor, eval_expr(*e.args[0], env), 1);
      case UnaryOp::RedXnor:
        return module_->add_unary(CellType::ReduceXnor, eval_expr(*e.args[0], env), 1);
      }
      elab_error(e.line, "bad unary op");
    }

    case ExprKind::Binary: {
      switch (e.bop) {
      case BinaryOp::Add: case BinaryOp::Sub: case BinaryOp::Mul:
      case BinaryOp::And: case BinaryOp::Or: case BinaryOp::Xor: case BinaryOp::Xnor: {
        const int w = std::max(ctx, expr_self_width(e));
        const SigSpec a = eval_expr(*e.args[0], env, w);
        const SigSpec b = eval_expr(*e.args[1], env, w);
        CellType t{};
        switch (e.bop) {
        case BinaryOp::Add: t = CellType::Add; break;
        case BinaryOp::Sub: t = CellType::Sub; break;
        case BinaryOp::Mul: t = CellType::Mul; break;
        case BinaryOp::And: t = CellType::And; break;
        case BinaryOp::Or: t = CellType::Or; break;
        case BinaryOp::Xor: t = CellType::Xor; break;
        default: t = CellType::Xnor; break;
        }
        return module_->add_binary(t, a, b, w);
      }
      case BinaryOp::Shl: case BinaryOp::Shr: case BinaryOp::Sshr: {
        // Left operand is context-sized; the shift amount is self-determined.
        const int w = std::max(ctx, expr_self_width(*e.args[0]));
        const SigSpec a = eval_expr(*e.args[0], env, w);
        const SigSpec b = eval_expr(*e.args[1], env);
        const CellType t = e.bop == BinaryOp::Shl
                               ? CellType::Shl
                               : (e.bop == BinaryOp::Shr ? CellType::Shr : CellType::Sshr);
        return module_->add_binary(t, a.extended(w, false), b, w);
      }
      default: {
        // Comparisons and &&/||: operands sized among themselves only.
        const SigSpec a = eval_expr(*e.args[0], env);
        const SigSpec b = eval_expr(*e.args[1], env);
        CellType t{};
        switch (e.bop) {
        case BinaryOp::LogicAnd: t = CellType::LogicAnd; break;
        case BinaryOp::LogicOr: t = CellType::LogicOr; break;
        case BinaryOp::Eq: t = CellType::Eq; break;
        case BinaryOp::Ne: t = CellType::Ne; break;
        case BinaryOp::Lt: t = CellType::Lt; break;
        case BinaryOp::Le: t = CellType::Le; break;
        case BinaryOp::Gt: t = CellType::Gt; break;
        case BinaryOp::Ge: t = CellType::Ge; break;
        default: elab_error(e.line, "bad binary op");
        }
        return module_->add_binary(t, a, b, 1);
      }
      }
    }

    case ExprKind::Ternary: {
      const SigSpec cond = to_bool(eval_expr(*e.args[0], env));
      const int w = std::max({ctx, expr_self_width(*e.args[1]), expr_self_width(*e.args[2])});
      const SigSpec t = eval_expr(*e.args[1], env, w);
      const SigSpec f = eval_expr(*e.args[2], env, w);
      return module_->Mux(f.extended(w, false), t.extended(w, false), cond);
    }

    case ExprKind::Concat: {
      // Verilog {a, b}: `a` is the MSB part, so append from the last arg.
      SigSpec out;
      for (auto it = e.args.rbegin(); it != e.args.rend(); ++it)
        out.append(eval_expr(**it, env));
      return out;
    }

    case ExprKind::Repeat: {
      const SigSpec v = eval_expr(*e.args[0], env);
      SigSpec out;
      for (int i = 0; i < e.repeat_count; ++i)
        out.append(v);
      return out;
    }

    case ExprKind::Index: {
      Wire* w = lookup(e.name, e.line);
      const SigSpec base = read_wire(w, env);
      const Expr& idx = *e.args[0];
      if (idx.kind == ExprKind::Number) {
        const int i = static_cast<int>(idx.value.as_uint()) - wire_lsb(w);
        if (i < 0 || i >= base.size())
          elab_error(e.line, "bit index out of range on '" + e.name + "'");
        return SigSpec(base[i]);
      }
      // Variable index: (base >> idx)[0].
      const SigSpec shifted =
          module_->add_binary(CellType::Shr, base, eval_expr(idx, env), base.size());
      return shifted.extract(0, 1);
    }

    case ExprKind::Slice: {
      Wire* w = lookup(e.name, e.line);
      const SigSpec base = read_wire(w, env);
      const int lo = e.lsb - wire_lsb(w);
      const int hi = e.msb - wire_lsb(w);
      if (lo < 0 || hi >= base.size() || hi < lo)
        elab_error(e.line, "part-select out of range on '" + e.name + "'");
      return base.extract(lo, hi - lo + 1);
    }
    }
    elab_error(e.line, "bad expression kind");
  }

  /// Lvalue -> target bits (constant selects only).
  SigSpec eval_lvalue(const Expr& e) {
    switch (e.kind) {
    case ExprKind::Ident:
      return SigSpec(lookup(e.name, e.line));
    case ExprKind::Index: {
      Wire* w = lookup(e.name, e.line);
      if (e.args[0]->kind != ExprKind::Number)
        elab_error(e.line, "variable bit-select is not supported as an assignment target");
      const int i = static_cast<int>(e.args[0]->value.as_uint()) - wire_lsb(w);
      if (i < 0 || i >= w->width())
        elab_error(e.line, "bit index out of range on '" + e.name + "'");
      return SigSpec(w, i, 1);
    }
    case ExprKind::Slice: {
      Wire* w = lookup(e.name, e.line);
      const int lo = e.lsb - wire_lsb(w);
      const int hi = e.msb - wire_lsb(w);
      if (lo < 0 || hi >= w->width() || hi < lo)
        elab_error(e.line, "part-select out of range on '" + e.name + "'");
      return SigSpec(w, lo, hi - lo + 1);
    }
    case ExprKind::Concat: {
      SigSpec out;
      for (auto it = e.args.rbegin(); it != e.args.rend(); ++it)
        out.append(eval_lvalue(**it));
      return out;
    }
    default:
      elab_error(e.line, "unsupported assignment target");
    }
  }

  // --- procedural blocks -----------------------------------------------------

  /// Value of `w` at the current point: env entry, else x (comb) / Q (seq).
  SigSpec env_get(const ProcEnv& env, Wire* w, bool is_comb) const {
    auto it = env.find(w);
    if (it != env.end())
      return it->second;
    if (is_comb)
      return SigSpec(Const(std::vector<State>(static_cast<size_t>(w->width()), State::Sx)));
    return SigSpec(w);
  }

  void env_assign(ProcEnv& env, const SigSpec& target, const SigSpec& value, bool is_comb) {
    // Decompose the target into per-wire bit updates.
    int pos = 0;
    while (pos < target.size()) {
      const SigBit tb = target[pos];
      if (!tb.is_wire())
        elab_error(0, "assignment to constant bit");
      Wire* w = tb.wire;
      int run = 1;
      while (pos + run < target.size() && target[pos + run].is_wire() &&
             target[pos + run].wire == w)
        ++run;
      SigSpec cur = env_get(env, w, is_comb);
      for (int k = 0; k < run; ++k)
        cur[target[pos + k].offset] = value[pos + k];
      env[w] = cur;
      pos += run;
    }
  }

  void exec_stmt(const Stmt& s, ProcEnv& env, bool is_comb) {
    switch (s.kind) {
    case StmtKind::Block:
      for (const StmtPtr& sub : s.stmts)
        exec_stmt(*sub, env, is_comb);
      return;

    case StmtKind::Assign: {
      const SigSpec target = eval_lvalue(*s.lhs);
      const SigSpec value =
          eval_expr(*s.rhs, &env, target.size()).extended(target.size(), false);
      env_assign(env, target, value, is_comb);
      return;
    }

    case StmtKind::If: {
      const SigSpec cond = to_bool(eval_expr(*s.cond, &env));
      ProcEnv then_env = env;
      exec_stmt(*s.then_stmt, then_env, is_comb);
      ProcEnv else_env = env;
      if (s.else_stmt)
        exec_stmt(*s.else_stmt, else_env, is_comb);
      merge_two(env, then_env, else_env, cond, is_comb);
      return;
    }

    case StmtKind::Case: {
      const SigSpec sel = eval_expr(*s.cond, &env);

      // Evaluate every item body against a copy of the current env and
      // compute its match condition.
      struct Arm {
        SigSpec match; ///< 1-bit; empty for default
        ProcEnv env;
        bool is_default = false;
      };
      std::vector<Arm> arms;
      bool saw_default = false;
      for (const CaseItem& item : s.items) {
        Arm arm;
        arm.is_default = item.is_default;
        if (!item.is_default)
          arm.match = case_match(sel, item.labels, s.is_casez, s.line);
        arm.env = env;
        exec_stmt(*item.body, arm.env, is_comb);
        arms.push_back(std::move(arm));
        if (item.is_default) {
          saw_default = true;
          break; // anything after default is unreachable
        }
      }

      // Collect the set of assigned wires across all arms.
      std::unordered_set<Wire*> targets;
      for (const Arm& arm : arms)
        for (const auto& [w, v] : arm.env)
          targets.insert(w);

      // Priority chain, first match wins: fold from the last arm inward.
      for (Wire* w : targets) {
        SigSpec acc = saw_default ? env_get(arms.back().env, w, is_comb)
                                  : env_get(env, w, is_comb);
        const size_t n = arms.size() - (saw_default ? 1 : 0);
        for (size_t i = n; i-- > 0;) {
          const SigSpec v = env_get(arms[i].env, w, is_comb);
          if (v == acc)
            continue;
          acc = module_->Mux(acc, v, arms[i].match);
        }
        env[w] = acc;
      }
      return;
    }
    }
  }

  /// match = OR over labels; casez labels compare only non-z positions.
  SigSpec case_match(const SigSpec& sel, const std::vector<ExprPtr>& labels, bool casez,
                     int line) {
    SigSpec result;
    for (const ExprPtr& label : labels) {
      SigSpec one;
      if (label->kind == ExprKind::Number &&
          (casez || !label->value.is_fully_def())) {
        // Compare only positions where the label bit is 0/1.
        const Const& lv = label->value;
        SigSpec sel_bits, const_bits;
        for (int i = 0; i < sel.size(); ++i) {
          const State st = i < lv.size() ? lv[i] : State::S0;
          if (st == State::Sz || st == State::Sx)
            continue; // wildcard position
          sel_bits.append(sel[i]);
          const_bits.append(SigBit(st));
        }
        if (sel_bits.empty())
          one = SigSpec(State::S1); // all-wildcard label always matches
        else
          one = module_->Eq(sel_bits, const_bits);
      } else {
        const SigSpec lv = eval_expr(*label, nullptr).extended(sel.size(), false);
        one = module_->Eq(sel, lv);
      }
      if (result.empty())
        result = one;
      else
        result = module_->LogicOr(result, one);
    }
    if (result.empty())
      elab_error(line, "case item with no labels");
    return result;
  }

  void merge_two(ProcEnv& base, const ProcEnv& then_env, const ProcEnv& else_env,
                 const SigSpec& cond, bool is_comb) {
    std::unordered_set<Wire*> targets;
    for (const auto& [w, v] : then_env)
      targets.insert(w);
    for (const auto& [w, v] : else_env)
      targets.insert(w);
    for (Wire* w : targets) {
      const SigSpec tv = env_get(then_env, w, is_comb);
      const SigSpec ev = env_get(else_env, w, is_comb);
      if (tv == ev) {
        base[w] = tv;
        continue;
      }
      base[w] = module_->Mux(ev, tv, cond);
    }
  }

  void elaborate_always(const AlwaysBlock& blk) {
    ProcEnv env;
    exec_stmt(*blk.body, env, blk.is_comb);
    if (blk.is_comb) {
      for (const auto& [w, v] : env)
        module_->connect(SigSpec(w), v);
    } else {
      Wire* clk = lookup(blk.clock, blk.line);
      for (const auto& [w, v] : env)
        module_->add_dff(v, SigSpec(w), SigSpec(clk, 0, 1));
    }
  }

  const ModuleAst& ast_;
  Design& design_;
  Module* module_ = nullptr;
  std::unordered_map<const Wire*, int> lsb_;
};

} // namespace

rtlil::Module* elaborate(const ModuleAst& ast, Design& design) {
  return Elaborator(ast, design).run();
}

std::unique_ptr<Design> read_verilog(const std::string& source, const std::string& filename) {
  try {
    auto design = std::make_unique<Design>();
    for (const ModuleAst& ast : parse_verilog(source))
      elaborate(ast, *design);
    return design;
  } catch (const ParseError& e) {
    if (!filename.empty() && e.file().empty())
      throw e.with_file(filename);
    throw;
  }
}

} // namespace smartly::verilog
