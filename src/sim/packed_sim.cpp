#include "sim/packed_sim.hpp"

#include "util/thread_pool.hpp"

#include <algorithm>
#include <unordered_map>

namespace smartly::sim {

namespace {

// Lane masks for the first six enumerated inputs within one 64-pattern word.
constexpr uint64_t kLaneMask[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

} // namespace

SimResult exhaustive_forced_ex(const aig::Aig& aig,
                               const std::vector<std::pair<aig::Lit, bool>>& constraints,
                               aig::Lit target, const SimOptions& options) {
  SimResult res;
  const size_t n_inputs = aig.num_inputs();

  // Split constraints into direct input fixings vs. internal checks.
  std::unordered_map<uint32_t, size_t> input_index; // node -> input position
  for (size_t i = 0; i < n_inputs; ++i)
    input_index.emplace(aig.inputs()[i], i);

  std::vector<int> fixed(n_inputs, -1); // -1 free, 0/1 fixed
  std::vector<std::pair<aig::Lit, bool>> internal;
  for (const auto& [lit, val] : constraints) {
    auto it = input_index.find(aig::lit_node(lit));
    if (it != input_index.end()) {
      const int want = (val != aig::lit_compl(lit)) ? 1 : 0;
      if (fixed[it->second] >= 0 && fixed[it->second] != want) {
        res.forced = Forced::Contradiction;
        res.exhausted = true;
        return res;
      }
      fixed[it->second] = want;
    } else {
      internal.emplace_back(lit, val);
    }
  }

  std::vector<uint64_t> local_values;
  std::vector<uint64_t>& values = options.scratch ? *options.scratch : local_values;

  bool seen0 = false, seen1 = false, any = false;
  std::vector<uint64_t> input_words(n_inputs, 0);

  auto capture = [&](std::vector<uint8_t>& w, int lane) {
    if (!options.capture_witnesses)
      return;
    w.resize(n_inputs);
    for (size_t i = 0; i < n_inputs; ++i)
      w[i] = static_cast<uint8_t>((input_words[i] >> lane) & 1);
  };

  // --- stage 0: replay recycled candidate patterns, 64 per batch -----------
  // Each candidate is *verified* against the current cone and constraints, so
  // a both-polarity hit is a genuine pair of witnesses: the target is not
  // forced, and neither enumeration nor SAT has anything left to prove.
  if (options.recycled) {
    const auto& cands = *options.recycled;
    for (size_t base = 0; base < cands.size() && !(seen0 && seen1); base += 64) {
      const size_t chunk = std::min<size_t>(64, cands.size() - base);
      for (size_t i = 0; i < n_inputs; ++i)
        input_words[i] = 0;
      for (size_t lane = 0; lane < chunk; ++lane) {
        const std::vector<uint8_t>& cand = cands[base + lane];
        const size_t n = std::min(cand.size(), n_inputs);
        for (size_t i = 0; i < n; ++i)
          if (cand[i])
            input_words[i] |= uint64_t(1) << lane;
      }
      aig.simulate_into(input_words, values);

      uint64_t valid = chunk == 64 ? ~uint64_t(0) : (uint64_t(1) << chunk) - 1;
      // Direct input constraints are checked too (replay does not pre-force
      // inputs): a candidate disagreeing with a fixing is simply invalid.
      for (const auto& [lit, val] : constraints) {
        const uint64_t v = aig::Aig::sim_lit(values, lit);
        valid &= val ? v : ~v;
      }
      if (!valid)
        continue;
      any = true;
      res.patterns_recycled += static_cast<size_t>(__builtin_popcountll(valid));
      const uint64_t t = aig::Aig::sim_lit(values, target);
      if ((t & valid) && !seen1) {
        seen1 = true;
        res.has_witness1 = true;
        capture(res.witness1, __builtin_ctzll(t & valid));
      }
      if ((~t & valid) && !seen0) {
        seen0 = true;
        res.has_witness0 = true;
        capture(res.witness0, __builtin_ctzll(~t & valid));
      }
    }
    if (seen0 && seen1) {
      res.forced = Forced::None;
      res.recycled_decisive = true;
      res.early_exit = true;
      return res;
    }
  }

  std::vector<size_t> free_inputs;
  for (size_t i = 0; i < n_inputs; ++i)
    if (fixed[i] < 0)
      free_inputs.push_back(i);
  if (!options.enumerate || static_cast<int>(free_inputs.size()) > options.max_free_inputs) {
    res.forced = Forced::None; // give-up / replay-only: not an exhaustive verdict
    return res;
  }

  const int k = static_cast<int>(free_inputs.size());
  const uint64_t n_patterns = uint64_t(1) << k;
  const uint64_t n_words = (n_patterns + 63) / 64;

  for (size_t i = 0; i < n_inputs; ++i)
    input_words[i] = fixed[i] == 1 ? ~uint64_t(0) : 0;

  for (uint64_t w = 0; w < n_words; ++w) {
    const uint64_t base = w * 64;
    for (int j = 0; j < k; ++j) {
      uint64_t word;
      if (j < 6)
        word = kLaneMask[j];
      else
        word = ((base >> j) & 1) ? ~uint64_t(0) : 0;
      input_words[free_inputs[static_cast<size_t>(j)]] = word;
    }
    aig.simulate_into(input_words, values);

    uint64_t valid = ~uint64_t(0);
    if (n_patterns - base < 64)
      valid = (uint64_t(1) << (n_patterns - base)) - 1;
    for (const auto& [lit, val] : internal) {
      const uint64_t v = aig::Aig::sim_lit(values, lit);
      valid &= val ? v : ~v;
    }
    if (!valid)
      continue;
    any = true;
    const uint64_t t = aig::Aig::sim_lit(values, target);
    if ((t & valid) && !seen1) {
      seen1 = true;
      res.has_witness1 = true;
      capture(res.witness1, __builtin_ctzll(t & valid));
    }
    if ((~t & valid) && !seen0) {
      seen0 = true;
      res.has_witness0 = true;
      capture(res.witness0, __builtin_ctzll(~t & valid));
    }
    if (seen0 && seen1) {
      // Both polarities witnessed: the remaining patterns cannot change the
      // verdict, so stop the sweep here instead of enumerating all 2^k.
      res.forced = Forced::None;
      res.early_exit = w + 1 < n_words;
      return res;
    }
  }

  res.exhausted = true;
  if (!any)
    res.forced = Forced::Contradiction;
  else if (seen1 && !seen0)
    res.forced = Forced::One;
  else if (seen0 && !seen1)
    res.forced = Forced::Zero;
  else
    res.forced = Forced::None;
  return res;
}

Forced exhaustive_forced(const aig::Aig& aig,
                         const std::vector<std::pair<aig::Lit, bool>>& constraints,
                         aig::Lit target, int max_free_inputs) {
  SimOptions options;
  options.max_free_inputs = max_free_inputs;
  return exhaustive_forced_ex(aig, constraints, target, options).forced;
}

SignatureTable simulate_signatures(const aig::Aig& aig,
                                   const std::vector<std::vector<uint64_t>>& batch_inputs,
                                   util::ThreadPool* pool) {
  SignatureTable table;
  table.words = batch_inputs.size();
  table.nodes = aig.num_nodes();
  table.node_words.resize(table.words * table.nodes);

  // One reusable node-sized scratch per worker (whole-netlist AIGs make a
  // per-batch allocation megabytes of churn across refinement rounds).
  const int workers = pool && pool->size() > 1 && table.words > 1 ? pool->size() : 1;
  std::vector<std::vector<uint64_t>> scratch(static_cast<size_t>(workers));

  auto run_batch = [&](int worker, size_t w) {
    std::vector<uint64_t>& values = scratch[static_cast<size_t>(worker)];
    aig.simulate_into(batch_inputs[w], values);
    std::copy(values.begin(), values.end(), table.node_words.begin() +
                                                static_cast<ptrdiff_t>(w * table.nodes));
  };

  if (workers > 1)
    pool->run_batch(table.words, run_batch);
  else
    for (size_t w = 0; w < table.words; ++w)
      run_batch(0, w);
  return table;
}

bool cut_truth_table(const aig::Aig& aig, aig::Lit root, const aig::Lit* leaves,
                     size_t num_leaves, uint16_t& tt) {
  // Seed the leaf *nodes* with projection words adjusted for the leaf
  // literal's polarity: the caller's leaf value is the literal, so a
  // complemented leaf literal contributes the complemented projection.
  uint32_t leaf_nodes[4];
  uint16_t leaf_words[4];
  for (size_t i = 0; i < num_leaves; ++i) {
    leaf_nodes[i] = aig::lit_node(leaves[i]);
    leaf_words[i] = aig::lit_compl(leaves[i]) ? static_cast<uint16_t>(~cut_projection(i))
                                              : cut_projection(i);
  }

  const uint32_t root_node = aig::lit_node(root);
  std::unordered_map<uint32_t, uint16_t> value;
  value.emplace(0, 0); // constant-false node
  for (size_t i = 0; i < num_leaves; ++i)
    value[leaf_nodes[i]] = leaf_words[i]; // a leaf may repeat; last word wins

  // Iterative post-order over the cone between the leaves and the root.
  std::vector<uint32_t> stack{root_node};
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    if (value.count(n)) {
      stack.pop_back();
      continue;
    }
    if (!aig.is_and(n))
      return false; // escaped the cut: a primary input that is not a leaf
    const uint32_t c0 = aig::lit_node(aig.fanin0(n));
    const uint32_t c1 = aig::lit_node(aig.fanin1(n));
    const auto v0 = value.find(c0);
    const auto v1 = value.find(c1);
    if (v0 != value.end() && v1 != value.end()) {
      const uint16_t w0 = aig::lit_compl(aig.fanin0(n)) ? ~v0->second : v0->second;
      const uint16_t w1 = aig::lit_compl(aig.fanin1(n)) ? ~v1->second : v1->second;
      value.emplace(n, static_cast<uint16_t>(w0 & w1));
      stack.pop_back();
      continue;
    }
    if (v0 == value.end())
      stack.push_back(c0);
    if (v1 == value.end())
      stack.push_back(c1);
  }

  const uint16_t w = value.at(root_node);
  tt = aig::lit_compl(root) ? static_cast<uint16_t>(~w) : w;
  return true;
}

} // namespace smartly::sim
