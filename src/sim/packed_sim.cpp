#include "sim/packed_sim.hpp"

#include <unordered_map>

namespace smartly::sim {

namespace {

// Lane masks for the first six enumerated inputs within one 64-pattern word.
constexpr uint64_t kLaneMask[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

} // namespace

Forced exhaustive_forced(const aig::Aig& aig,
                         const std::vector<std::pair<aig::Lit, bool>>& constraints,
                         aig::Lit target, int max_free_inputs) {
  const size_t n_inputs = aig.num_inputs();

  // Split constraints into direct input fixings vs. internal checks.
  std::unordered_map<uint32_t, size_t> input_index; // node -> input position
  for (size_t i = 0; i < n_inputs; ++i)
    input_index.emplace(aig.inputs()[i], i);

  std::vector<int> fixed(n_inputs, -1); // -1 free, 0/1 fixed
  std::vector<std::pair<aig::Lit, bool>> internal;
  for (const auto& [lit, val] : constraints) {
    auto it = input_index.find(aig::lit_node(lit));
    if (it != input_index.end()) {
      const int want = (val != aig::lit_compl(lit)) ? 1 : 0;
      if (fixed[it->second] >= 0 && fixed[it->second] != want)
        return Forced::Contradiction;
      fixed[it->second] = want;
    } else {
      internal.emplace_back(lit, val);
    }
  }

  std::vector<size_t> free_inputs;
  for (size_t i = 0; i < n_inputs; ++i)
    if (fixed[i] < 0)
      free_inputs.push_back(i);
  if (static_cast<int>(free_inputs.size()) > max_free_inputs)
    return Forced::None;

  const int k = static_cast<int>(free_inputs.size());
  const uint64_t n_patterns = uint64_t(1) << k;
  const uint64_t n_words = (n_patterns + 63) / 64;

  bool seen0 = false, seen1 = false, any = false;
  std::vector<uint64_t> input_words(n_inputs, 0);
  for (size_t i = 0; i < n_inputs; ++i)
    if (fixed[i] == 1)
      input_words[i] = ~uint64_t(0);

  for (uint64_t w = 0; w < n_words; ++w) {
    const uint64_t base = w * 64;
    for (int j = 0; j < k; ++j) {
      uint64_t word;
      if (j < 6)
        word = kLaneMask[j];
      else
        word = ((base >> j) & 1) ? ~uint64_t(0) : 0;
      input_words[free_inputs[static_cast<size_t>(j)]] = word;
    }
    const std::vector<uint64_t> values = aig.simulate(input_words);

    uint64_t valid = ~uint64_t(0);
    if (n_patterns - base < 64)
      valid = (uint64_t(1) << (n_patterns - base)) - 1;
    for (const auto& [lit, val] : internal) {
      const uint64_t v = aig::Aig::sim_lit(values, lit);
      valid &= val ? v : ~v;
    }
    if (!valid)
      continue;
    any = true;
    const uint64_t t = aig::Aig::sim_lit(values, target);
    if (t & valid)
      seen1 = true;
    if (~t & valid)
      seen0 = true;
    if (seen0 && seen1)
      return Forced::None;
  }

  if (!any)
    return Forced::Contradiction;
  if (seen1 && !seen0)
    return Forced::One;
  if (seen0 && !seen1)
    return Forced::Zero;
  return Forced::None;
}

} // namespace smartly::sim
