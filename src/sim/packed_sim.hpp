// Exhaustive packed (64-way) simulation of AIG sub-graphs.
//
// §II of the paper: "For a smaller number of inputs, simulation is more
// efficient, while the SAT solver is better suited for handling larger sets
// of inputs." This module is the simulation side: it enumerates all
// assignments of the sub-graph's free inputs 64 patterns at a time, discards
// patterns that contradict the known signal values (which is how logical
// dependencies between control signals are honoured), and reports whether
// the target signal is forced.
#pragma once

#include "aig/aig.hpp"

#include <utility>
#include <vector>

namespace smartly::sim {

enum class Forced {
  None,          ///< target can be 0 or 1
  Zero,          ///< target is 0 under every consistent assignment
  One,           ///< target is 1 under every consistent assignment
  Contradiction, ///< no assignment satisfies the constraints (dead path)
};

/// Exhaustively decide whether `target` is forced under `constraints`
/// (pairs of AIG literal and required value). Inputs directly constrained are
/// fixed; the rest are enumerated. Returns Forced::None without work if the
/// number of free inputs exceeds `max_free_inputs`.
Forced exhaustive_forced(const aig::Aig& aig,
                         const std::vector<std::pair<aig::Lit, bool>>& constraints,
                         aig::Lit target, int max_free_inputs = 14);

} // namespace smartly::sim
