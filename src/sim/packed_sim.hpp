// Exhaustive packed (64-way) simulation of AIG sub-graphs.
//
// §II of the paper: "For a smaller number of inputs, simulation is more
// efficient, while the SAT solver is better suited for handling larger sets
// of inputs." This module is the simulation side: it enumerates all
// assignments of the sub-graph's free inputs 64 patterns at a time, discards
// patterns that contradict the known signal values (which is how logical
// dependencies between control signals are honoured), and reports whether
// the target signal is forced.
//
// The extended entry point additionally supports the incremental oracle:
// *recycled patterns* — satisfying assignments harvested from earlier
// queries — are replayed first as counterexample candidates. A replayed
// pattern is verified against the current constraints by simulation, so
// recycling can only ever prove Forced::None early (both polarities
// witnessed); it cannot flip a decision. The sweep itself terminates as soon
// as both target polarities have been observed rather than enumerating all
// 2^k assignments; `SimResult::early_exit` surfaces that event to the
// oracle's `sim_filter_half` counter.
#pragma once

#include "aig/aig.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace smartly::util {
class ThreadPool;
}

namespace smartly::sim {

enum class Forced {
  None,          ///< target can be 0 or 1
  Zero,          ///< target is 0 under every consistent assignment
  One,           ///< target is 1 under every consistent assignment
  Contradiction, ///< no assignment satisfies the constraints (dead path)
};

struct SimOptions {
  int max_free_inputs = 14; ///< give up (Forced::None) above 2^14 patterns

  /// Candidate assignments replayed before enumeration: one value per AIG
  /// input, in `Aig::inputs()` order. Typically witnesses from earlier
  /// queries over a structurally related cone.
  const std::vector<std::vector<uint8_t>>* recycled = nullptr;

  /// When false, only the recycled candidates are evaluated — the exhaustive
  /// sweep is skipped. Used for SAT-sized cones, where a recycled witness
  /// pair proves Forced::None without any solver call.
  bool enumerate = true;

  /// Optional reusable node-value buffer (see Aig::simulate_into).
  std::vector<uint64_t>* scratch = nullptr;

  /// Record witness assignments (SimResult::witness0/1). Off by default:
  /// capture costs an allocation per observed polarity, which matters on the
  /// hot small-cone path where nobody reads the witnesses.
  bool capture_witnesses = false;
};

struct SimResult {
  Forced forced = Forced::None;
  /// Every consistent assignment was examined (the verdict is exhaustive,
  /// not a give-up). False when free inputs exceed max_free_inputs, when
  /// enumeration was disabled, or when the sweep exited early on None.
  bool exhausted = false;
  /// The sweep stopped before its last word because both target polarities
  /// had been observed ("half sweep" — surfaced as sim_filter_half).
  bool early_exit = false;
  /// Recycled candidates found consistent with the current constraints.
  size_t patterns_recycled = 0;
  /// Recycled candidates alone proved Forced::None (no enumeration needed).
  bool recycled_decisive = false;
  /// A verified assignment observing target=0 / target=1 exists. The flags
  /// are always maintained (callers use them to skip SAT calls whose outcome
  /// they already witness); the witness *vectors* are only filled when
  /// SimOptions::capture_witnesses is set.
  bool has_witness0 = false;
  bool has_witness1 = false;
  std::vector<uint8_t> witness0;
  std::vector<uint8_t> witness1;
};

/// Decide whether `target` is forced under `constraints` (pairs of AIG
/// literal and required value), with pattern recycling and accounting.
SimResult exhaustive_forced_ex(const aig::Aig& aig,
                               const std::vector<std::pair<aig::Lit, bool>>& constraints,
                               aig::Lit target, const SimOptions& options);

/// Exhaustively decide whether `target` is forced under `constraints`
/// (pairs of AIG literal and required value). Inputs directly constrained are
/// fixed; the rest are enumerated. Returns Forced::None without work if the
/// number of free inputs exceeds `max_free_inputs`.
Forced exhaustive_forced(const aig::Aig& aig,
                         const std::vector<std::pair<aig::Lit, bool>>& constraints,
                         aig::Lit target, int max_free_inputs = 14);

// --- multi-word signature simulation (SAT-sweeping support) ----------------
//
// The fraig engine classifies every combinational bit of a whole-netlist AIG
// by its behaviour over W×64 packed patterns. Word batches are independent
// simulations, so the table is computed batch-parallel on the caller's
// thread pool; each batch writes only its own block, which makes the result
// bit-identical for every thread count.

/// Per-node simulation words over W independent 64-pattern batches, stored
/// batch-major: word(node, w) is batch w's 64 pattern results for `node`.
struct SignatureTable {
  size_t words = 0;                 ///< number of 64-pattern batches (W)
  size_t nodes = 0;                 ///< aig.num_nodes() at simulation time
  std::vector<uint64_t> node_words; ///< [w * nodes + node]

  uint64_t word(uint32_t node, size_t w) const { return node_words[w * nodes + node]; }
  uint64_t lit_word(aig::Lit l, size_t w) const {
    const uint64_t v = word(aig::lit_node(l), w);
    return aig::lit_compl(l) ? ~v : v;
  }
};

/// Simulate all nodes of `aig` over the given batches. `batch_inputs[w]` is
/// one word per AIG input (Aig::inputs() order). Batches run in parallel on
/// `pool` when given (deterministic: slot-per-batch outputs); serially
/// otherwise.
SignatureTable simulate_signatures(const aig::Aig& aig,
                                   const std::vector<std::vector<uint64_t>>& batch_inputs,
                                   util::ThreadPool* pool = nullptr);

// --- cut truth-table extraction (DAG-aware rewriting support) --------------

/// Projection word of cut input `i` (i < 4): bit m of the word is the value
/// of input i in minterm m — the packed-simulation pattern set that makes one
/// 16-pattern sweep of a 4-leaf cone yield the cone's full truth table.
constexpr uint16_t cut_projection(size_t i) {
  constexpr uint16_t proj[4] = {0xaaaa, 0xcccc, 0xf0f0, 0xff00};
  return proj[i];
}

/// Truth table of `root` as a function of up to four cut leaves, extracted by
/// packed simulation of the cone over the 16 projection patterns: leaf i's
/// *literal* takes cut_projection(i) (so a complemented leaf literal models
/// the complement anchor bit), interior nodes evaluate bitwise. Returns false
/// — and leaves `tt` untouched — if the cone escapes the leaf set (reaches a
/// primary input or the constant node that is not listed as a leaf), which
/// marks the cut unusable rather than being an error.
bool cut_truth_table(const aig::Aig& aig, aig::Lit root, const aig::Lit* leaves,
                     size_t num_leaves, uint16_t& tt);

} // namespace smartly::sim
