// Word-level constant evaluation of RTLIL cells — the library's golden
// semantic model. Used by opt_expr (constant folding), by the muxtree passes
// (deciding port values), and by tests as the reference against AIG bit
// blasting.
//
// Four-state semantics: bitwise operators are bit-precise in x (0&x=0,
// 1|x=1, ...); arithmetic, shifts and comparisons return all-x if any
// consumed input bit is x/z (matching Yosys's conservative constant folds).
#pragma once

#include "rtlil/cell.hpp"
#include "rtlil/module.hpp"

#include <functional>
#include <unordered_map>

namespace smartly::sim {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Const;
using rtlil::Module;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

/// Evaluate a unary cell. `a` must already have the cell's A_WIDTH.
Const eval_unary(CellType type, const Const& a, bool a_signed, int y_width);

/// Evaluate a binary cell.
Const eval_binary(CellType type, const Const& a, const Const& b, bool a_signed, bool b_signed,
                  int y_width);

/// Y = S ? B : A, with bitwise x-merge when S is undefined.
Const eval_mux(const Const& a, const Const& b, State s);

/// Priority pmux: lowest set S bit selects its B part; A if none set;
/// all-x if S has undefined bits before the first set bit.
Const eval_pmux(const Const& a, const Const& b, const Const& s, int width);

/// Evaluate any combinational cell given a port reader (called once per
/// connected input port). Returns the value of the cell's output port (Y).
/// Must not be called for Dff.
Const eval_cell(const Cell& cell, const std::function<Const(rtlil::Port)>& read);

/// Whole-module combinational evaluator. DFFs are cut: Q bits read as the
/// values supplied via set_input (or x). Intended for tests and small-circuit
/// reference computation, not performance.
class Evaluator {
public:
  explicit Evaluator(const Module& module);

  /// Assign a value to a wire (typically a primary input or a dff Q).
  void set_input(const rtlil::Wire* wire, const Const& value);
  void set_bit(SigBit bit, State value);

  /// Evaluate all cells in topological order; afterwards value() is valid
  /// for every signal in the module.
  void run();

  State value(SigBit bit) const;
  Const value(const SigSpec& sig) const;

private:
  const Module& module_;
  std::unordered_map<SigBit, State> values_;
};

} // namespace smartly::sim
