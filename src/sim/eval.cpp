#include "sim/eval.hpp"

#include "rtlil/topo.hpp"
#include "util/log.hpp"

#include <stdexcept>

namespace smartly::sim {

namespace {

using rtlil::Port;
using rtlil::state_is_def;

State s_not(State a) {
  if (a == State::S0) return State::S1;
  if (a == State::S1) return State::S0;
  return State::Sx;
}
State s_and(State a, State b) {
  if (a == State::S0 || b == State::S0) return State::S0;
  if (a == State::S1 && b == State::S1) return State::S1;
  return State::Sx;
}
State s_or(State a, State b) {
  if (a == State::S1 || b == State::S1) return State::S1;
  if (a == State::S0 && b == State::S0) return State::S0;
  return State::Sx;
}
State s_xor(State a, State b) {
  if (!state_is_def(a) || !state_is_def(b)) return State::Sx;
  return a == b ? State::S0 : State::S1;
}

Const all_x(int width) { return Const(std::vector<State>(static_cast<size_t>(width), State::Sx)); }

Const from_bool(bool v, int y_width) {
  Const c(v ? 1 : 0, std::max(y_width, 1));
  return c;
}

/// Ripple add: out = a + b + cin. Inputs must be same width and fully defined.
Const ripple_add(const Const& a, const Const& b, bool cin) {
  std::vector<State> out(static_cast<size_t>(a.size()));
  int carry = cin ? 1 : 0;
  for (int i = 0; i < a.size(); ++i) {
    const int sum = (a[i] == State::S1) + (b[i] == State::S1) + carry;
    out[static_cast<size_t>(i)] = (sum & 1) ? State::S1 : State::S0;
    carry = sum >> 1;
  }
  return Const(std::move(out));
}

Const bit_not(const Const& a) {
  std::vector<State> out(static_cast<size_t>(a.size()));
  for (int i = 0; i < a.size(); ++i)
    out[static_cast<size_t>(i)] = s_not(a[i]);
  return Const(std::move(out));
}

/// Unsigned/two's-complement comparison a < b on equal-width defined consts.
bool ult(const Const& a, const Const& b) {
  for (int i = a.size() - 1; i >= 0; --i) {
    if (a[i] != b[i])
      return a[i] == State::S0;
  }
  return false;
}

bool slt(const Const& a, const Const& b) {
  const State sa = a.size() ? a[a.size() - 1] : State::S0;
  const State sb = b.size() ? b[b.size() - 1] : State::S0;
  if (sa != sb)
    return sa == State::S1; // negative < non-negative
  return ult(a, b);
}

} // namespace

Const eval_unary(CellType type, const Const& a, bool a_signed, int y_width) {
  switch (type) {
  case CellType::Not: {
    return bit_not(a.extended(y_width, a_signed));
  }
  case CellType::Pos:
    return a.extended(y_width, a_signed);
  case CellType::Neg: {
    const Const ax = a.extended(y_width, a_signed);
    if (!ax.is_fully_def())
      return all_x(y_width);
    return ripple_add(bit_not(ax), Const(0, y_width), true);
  }
  case CellType::ReduceAnd: {
    State acc = State::S1;
    for (int i = 0; i < a.size(); ++i)
      acc = s_and(acc, a[i]);
    return Const(acc).extended(y_width, false);
  }
  case CellType::ReduceOr:
  case CellType::ReduceBool: {
    State acc = State::S0;
    for (int i = 0; i < a.size(); ++i)
      acc = s_or(acc, a[i]);
    return Const(acc).extended(y_width, false);
  }
  case CellType::ReduceXor: {
    State acc = State::S0;
    for (int i = 0; i < a.size(); ++i)
      acc = s_xor(acc, a[i]);
    return Const(acc).extended(y_width, false);
  }
  case CellType::ReduceXnor: {
    State acc = State::S0;
    for (int i = 0; i < a.size(); ++i)
      acc = s_xor(acc, a[i]);
    return Const(s_not(acc)).extended(y_width, false);
  }
  case CellType::LogicNot: {
    State acc = State::S0;
    for (int i = 0; i < a.size(); ++i)
      acc = s_or(acc, a[i]);
    return Const(s_not(acc)).extended(y_width, false);
  }
  default:
    throw std::logic_error("eval_unary: not a unary cell type");
  }
}

Const eval_binary(CellType type, const Const& a, const Const& b, bool a_signed, bool b_signed,
                  int y_width) {
  const bool sign = a_signed && b_signed;
  const int ext = std::max({a.size(), b.size(), y_width});

  switch (type) {
  case CellType::And:
  case CellType::Or:
  case CellType::Xor:
  case CellType::Xnor: {
    const Const ax = a.extended(y_width, a_signed);
    const Const bx = b.extended(y_width, b_signed);
    std::vector<State> out(static_cast<size_t>(y_width));
    for (int i = 0; i < y_width; ++i) {
      switch (type) {
      case CellType::And: out[static_cast<size_t>(i)] = s_and(ax[i], bx[i]); break;
      case CellType::Or: out[static_cast<size_t>(i)] = s_or(ax[i], bx[i]); break;
      case CellType::Xor: out[static_cast<size_t>(i)] = s_xor(ax[i], bx[i]); break;
      default: out[static_cast<size_t>(i)] = s_not(s_xor(ax[i], bx[i])); break;
      }
    }
    return Const(std::move(out));
  }

  case CellType::Shl:
  case CellType::Shr:
  case CellType::Sshr: {
    if (!a.is_fully_def() || !b.is_fully_def())
      return all_x(y_width);
    const uint64_t sh = b.as_uint();
    const Const ax = a.extended(std::max(a.size(), y_width), a_signed);
    std::vector<State> out(static_cast<size_t>(y_width), State::S0);
    const State fill =
        (type == CellType::Sshr && a_signed && a.size()) ? a[a.size() - 1] : State::S0;
    for (int i = 0; i < y_width; ++i) {
      int64_t src = (type == CellType::Shl) ? static_cast<int64_t>(i) - static_cast<int64_t>(sh)
                                            : static_cast<int64_t>(i) + static_cast<int64_t>(sh);
      if (src < 0)
        out[static_cast<size_t>(i)] = State::S0;
      else if (src >= ax.size())
        out[static_cast<size_t>(i)] = fill;
      else
        out[static_cast<size_t>(i)] = ax[static_cast<int>(src)];
    }
    return Const(std::move(out));
  }

  case CellType::Add:
  case CellType::Sub: {
    const Const ax = a.extended(ext, a_signed);
    const Const bx = b.extended(ext, b_signed);
    if (!ax.is_fully_def() || !bx.is_fully_def())
      return all_x(y_width);
    const Const r = (type == CellType::Add) ? ripple_add(ax, bx, false)
                                            : ripple_add(ax, bit_not(bx), true);
    return r.extended(y_width, sign);
  }

  case CellType::Mul: {
    const Const ax = a.extended(ext, a_signed);
    const Const bx = b.extended(ext, b_signed);
    if (!ax.is_fully_def() || !bx.is_fully_def())
      return all_x(y_width);
    Const acc(0, ext);
    for (int i = 0; i < ext; ++i) {
      if (bx[i] != State::S1)
        continue;
      // acc += (ax << i), truncated to ext bits.
      std::vector<State> shifted(static_cast<size_t>(ext), State::S0);
      for (int j = i; j < ext; ++j)
        shifted[static_cast<size_t>(j)] = ax[j - i];
      acc = ripple_add(acc, Const(std::move(shifted)), false);
    }
    return acc.extended(y_width, sign);
  }

  case CellType::Lt:
  case CellType::Le:
  case CellType::Ge:
  case CellType::Gt: {
    const int w = std::max(a.size(), b.size());
    const Const ax = a.extended(w, a_signed);
    const Const bx = b.extended(w, b_signed);
    if (!ax.is_fully_def() || !bx.is_fully_def())
      return all_x(y_width);
    const bool lt = sign ? slt(ax, bx) : ult(ax, bx);
    const bool eq = ax == bx;
    bool r = false;
    switch (type) {
    case CellType::Lt: r = lt; break;
    case CellType::Le: r = lt || eq; break;
    case CellType::Ge: r = !lt; break;
    default: r = !lt && !eq; break;
    }
    return from_bool(r, y_width);
  }

  case CellType::Eq:
  case CellType::Ne: {
    const int w = std::max(a.size(), b.size());
    const Const ax = a.extended(w, a_signed);
    const Const bx = b.extended(w, b_signed);
    // Bit-precise: a definite mismatch decides even with x elsewhere.
    bool any_undef = false;
    for (int i = 0; i < w; ++i) {
      if (!state_is_def(ax[i]) || !state_is_def(bx[i])) {
        any_undef = true;
        continue;
      }
      if (ax[i] != bx[i])
        return from_bool(type == CellType::Ne, y_width);
    }
    if (any_undef)
      return all_x(y_width);
    return from_bool(type == CellType::Eq, y_width);
  }

  case CellType::LogicAnd:
  case CellType::LogicOr: {
    State la = State::S0, lb = State::S0;
    for (int i = 0; i < a.size(); ++i)
      la = s_or(la, a[i]);
    for (int i = 0; i < b.size(); ++i)
      lb = s_or(lb, b[i]);
    const State r = (type == CellType::LogicAnd) ? s_and(la, lb) : s_or(la, lb);
    return Const(r).extended(y_width, false);
  }

  default:
    throw std::logic_error("eval_binary: not a binary cell type");
  }
}

Const eval_mux(const Const& a, const Const& b, State s) {
  if (s == State::S1)
    return b;
  if (s == State::S0)
    return a;
  std::vector<State> out(static_cast<size_t>(a.size()));
  for (int i = 0; i < a.size(); ++i)
    out[static_cast<size_t>(i)] =
        (state_is_def(a[i]) && a[i] == b[i]) ? a[i] : State::Sx;
  return Const(std::move(out));
}

Const eval_pmux(const Const& a, const Const& b, const Const& s, int width) {
  for (int i = 0; i < s.size(); ++i) {
    if (s[i] == State::S1)
      return b.extract(i * width, width);
    if (s[i] != State::S0)
      return all_x(width);
  }
  return a;
}

Const eval_cell(const Cell& cell, const std::function<Const(rtlil::Port)>& read) {
  const auto& p = cell.params();
  if (rtlil::cell_is_unary(cell.type()))
    return eval_unary(cell.type(), read(Port::A), p.a_signed, p.y_width);
  if (rtlil::cell_is_binary(cell.type()))
    return eval_binary(cell.type(), read(Port::A), read(Port::B), p.a_signed, p.b_signed,
                       p.y_width);
  if (cell.type() == CellType::Mux) {
    const Const s = read(Port::S);
    return eval_mux(read(Port::A), read(Port::B), s[0]);
  }
  if (cell.type() == CellType::Pmux)
    return eval_pmux(read(Port::A), read(Port::B), read(Port::S), p.width);
  throw std::logic_error("eval_cell: unsupported cell type");
}

Evaluator::Evaluator(const Module& module) : module_(module) {}

void Evaluator::set_input(const rtlil::Wire* wire, const Const& value) {
  for (int i = 0; i < wire->width(); ++i)
    values_[SigBit(const_cast<rtlil::Wire*>(wire), i)] =
        i < value.size() ? value[i] : State::S0;
}

void Evaluator::set_bit(SigBit bit, State value) { values_[bit] = value; }

void Evaluator::run() {
  const rtlil::NetlistIndex index(module_);
  const rtlil::SigMap& sigmap = index.sigmap();

  auto bit_value = [&](SigBit raw) {
    const SigBit bit = sigmap(raw);
    if (bit.is_const())
      return bit.data;
    // Prefer explicit assignment on the canonical bit, then on the raw bit.
    if (auto it = values_.find(bit); it != values_.end())
      return it->second;
    if (auto it = values_.find(raw); it != values_.end())
      return it->second;
    return State::Sx;
  };

  for (Cell* cell : index.topo_order()) {
    if (cell->type() == CellType::Dff)
      continue; // Q supplied externally (or x)
    auto read = [&](rtlil::Port p) {
      const SigSpec& sig = cell->port(p);
      std::vector<State> bits;
      bits.reserve(static_cast<size_t>(sig.size()));
      for (const SigBit& b : sig)
        bits.push_back(bit_value(b));
      return Const(std::move(bits));
    };
    const Const y = eval_cell(*cell, read);
    const SigSpec& out = cell->port(cell->output_port());
    for (int i = 0; i < out.size(); ++i) {
      const SigBit bit = sigmap(out[i]);
      if (bit.is_wire())
        values_[bit] = i < y.size() ? y[i] : State::S0;
    }
  }

  // Also materialize values for alias bits so value() works on raw names.
  // (Handled lazily in value() via sigmap.)
}

State Evaluator::value(SigBit bit) const {
  const rtlil::SigMap sigmap(module_);
  const SigBit canon = sigmap(bit);
  if (canon.is_const())
    return canon.data;
  if (auto it = values_.find(canon); it != values_.end())
    return it->second;
  if (auto it = values_.find(bit); it != values_.end())
    return it->second;
  return State::Sx;
}

Const Evaluator::value(const SigSpec& sig) const {
  const rtlil::SigMap sigmap(module_);
  std::vector<State> bits;
  bits.reserve(static_cast<size_t>(sig.size()));
  for (const SigBit& b : sig) {
    const SigBit canon = sigmap(b);
    if (canon.is_const()) {
      bits.push_back(canon.data);
      continue;
    }
    auto it = values_.find(canon);
    if (it == values_.end())
      it = values_.find(b);
    bits.push_back(it == values_.end() ? State::Sx : it->second);
  }
  return Const(std::move(bits));
}

} // namespace smartly::sim
