#include "aig/aigmap.hpp"

#include "rtlil/topo.hpp"
#include "util/log.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace smartly::aig {

namespace {

using rtlil::Cell;
using rtlil::CellType;
using rtlil::Module;
using rtlil::Port;
using rtlil::SigBit;
using rtlil::SigSpec;
using rtlil::State;

class Mapper {
public:
  explicit Mapper(const Module& module)
      : module_(module), owned_index_(std::make_unique<rtlil::NetlistIndex>(module)),
        index_(*owned_index_) {}

  /// Reuse a caller-maintained index (the §II oracle issues thousands of
  /// small cone queries; rebuilding the whole-module index per query would
  /// dominate the pass runtime).
  Mapper(const Module& module, const rtlil::NetlistIndex& index)
      : module_(module), index_(index) {}

  /// Shared-graph mode: node construction goes into `graph`, and input
  /// creation consults/extends `shared` so same-named inputs unify across
  /// modules mapped into the same graph.
  Mapper(const Module& module, Aig& graph, SharedInputs& shared)
      : module_(module), owned_index_(std::make_unique<rtlil::NetlistIndex>(module)),
        index_(*owned_index_), shared_graph_(&graph), shared_inputs_(&shared) {}

  std::vector<std::pair<std::string, Lit>> run_shared() {
    for (const rtlil::Wire* w : module_.ports()) {
      if (!w->port_input)
        continue;
      for (int i = 0; i < w->width(); ++i) {
        const SigBit raw(const_cast<rtlil::Wire*>(w), i);
        const SigBit bit = index_.sigmap()(raw);
        if (bit.is_wire() && !result_.bits.count(bit))
          result_.bits.emplace(bit, shared_input(bit_name(raw)));
      }
    }
    for (Cell* cell : index_.topo_order()) {
      if (cell->type() == CellType::Dff)
        continue;
      map_cell(*cell);
    }
    std::vector<std::pair<std::string, Lit>> outs;
    for (const rtlil::Wire* w : module_.ports()) {
      if (!w->port_output)
        continue;
      for (int i = 0; i < w->width(); ++i) {
        const SigBit raw(const_cast<rtlil::Wire*>(w), i);
        outs.emplace_back(bit_name(raw), lit_of(raw));
      }
    }
    for (const auto& cptr : module_.cells()) {
      if (cptr->type() != CellType::Dff)
        continue;
      const SigSpec& d = cptr->port(Port::D);
      const SigSpec& q = cptr->port(Port::Q);
      for (int i = 0; i < d.size(); ++i)
        outs.emplace_back(bit_name(q[i]) + ".D", lit_of(d[i]));
    }
    return outs;
  }

  /// Map only `cells` with AIG outputs `roots` (sub-graph mode).
  AigMap run_cone(const std::vector<Cell*>& cells, const std::vector<SigBit>& roots) {
    // Sort the cone cells into evaluation order locally — O(|cone| log) per
    // query instead of rescanning the whole module.
    std::vector<Cell*> ordered(cells.begin(), cells.end());
    std::sort(ordered.begin(), ordered.end(), [&](const Cell* a, const Cell* b) {
      return index_.topo_position(a) < index_.topo_position(b);
    });
    for (Cell* cell : ordered) {
      if (cell->type() == CellType::Dff)
        continue;
      map_cell(*cell);
    }
    for (const SigBit& r : roots)
      result_.aig.add_output(lit_of(r), bit_name(index_.sigmap()(r)));
    return std::move(result_);
  }

  AigMap run() {
    // Create inputs in port order first so the AIG interface is stable.
    for (const rtlil::Wire* w : module_.ports()) {
      if (!w->port_input)
        continue;
      for (int i = 0; i < w->width(); ++i) {
        const SigBit raw(const_cast<rtlil::Wire*>(w), i);
        const SigBit bit = index_.sigmap()(raw);
        // Name after the port bit (stable across optimization), map by the
        // canonical bit.
        if (bit.is_wire() && !result_.bits.count(bit))
          result_.bits.emplace(bit, result_.aig.add_input(bit_name(raw)));
      }
    }

    for (Cell* cell : index_.topo_order()) {
      if (cell->type() == CellType::Dff)
        continue; // Q bits appear as free inputs; D handled at the end
      map_cell(*cell);
    }

    // Outputs: module output ports, then dff D cones.
    for (const rtlil::Wire* w : module_.ports()) {
      if (!w->port_output)
        continue;
      for (int i = 0; i < w->width(); ++i) {
        const SigBit raw(const_cast<rtlil::Wire*>(w), i);
        result_.aig.add_output(lit_of(raw), bit_name(raw));
      }
    }
    for (const auto& cptr : module_.cells()) {
      if (cptr->type() != CellType::Dff)
        continue;
      // Name next-state outputs after the *Q* bit they feed: Q wires are the
      // user-visible registers and survive optimization unchanged, while cell
      // names are generated and shift between designs — CEC matches outputs
      // by name, so D-cones must be keyed on something stable.
      const SigSpec& d = cptr->port(Port::D);
      const SigSpec& q = cptr->port(Port::Q);
      for (int i = 0; i < d.size(); ++i)
        result_.aig.add_output(lit_of(d[i]), bit_name(q[i]) + ".D");
    }
    return std::move(result_);
  }

private:
  Aig& graph() { return shared_graph_ ? *shared_graph_ : result_.aig; }

  Lit shared_input(const std::string& name) {
    auto it = shared_inputs_->by_name.find(name);
    if (it != shared_inputs_->by_name.end())
      return it->second;
    const Lit l = graph().add_input(name);
    shared_inputs_->by_name.emplace(name, l);
    return l;
  }

  std::string bit_name(const SigBit& bit) const {
    if (bit.is_const())
      return "const";
    return bit.wire->name() + "[" + std::to_string(bit.offset) + "]";
  }

  /// Literal for a bit; creates an AIG input on first use of an unmapped
  /// wire bit (primary input, undriven wire, or dff Q).
  Lit lit_of(const SigBit& raw) {
    const SigBit bit = index_.sigmap()(raw);
    if (bit.is_const())
      return bit.data == State::S1 ? kTrue : kFalse;
    auto it = result_.bits.find(bit);
    if (it != result_.bits.end())
      return it->second;
    const Lit l = shared_inputs_ ? shared_input(bit_name(bit))
                                 : result_.aig.add_input(bit_name(bit));
    result_.bits.emplace(bit, l);
    return l;
  }

  std::vector<Lit> sig_lits(const SigSpec& sig) {
    std::vector<Lit> out;
    out.reserve(static_cast<size_t>(sig.size()));
    for (const SigBit& b : sig)
      out.push_back(lit_of(b));
    return out;
  }

  static std::vector<Lit> extend(std::vector<Lit> v, size_t width, bool is_signed) {
    const Lit fill = (is_signed && !v.empty()) ? v.back() : kFalse;
    v.resize(width, fill);
    return v;
  }

  void set_output(const SigSpec& y, const std::vector<Lit>& lits) {
    for (int i = 0; i < y.size(); ++i) {
      const SigBit bit = index_.sigmap()(y[i]);
      if (!bit.is_wire())
        continue;
      const Lit l = i < static_cast<int>(lits.size()) ? lits[static_cast<size_t>(i)] : kFalse;
      result_.bits[bit] = l;
    }
  }

  std::vector<Lit> ripple_add(const std::vector<Lit>& a, const std::vector<Lit>& b, Lit cin) {
    std::vector<Lit> sum(a.size());
    Lit carry = cin;
    for (size_t i = 0; i < a.size(); ++i) {
      const Lit axb = graph().xor_(a[i], b[i]);
      sum[i] = graph().xor_(axb, carry);
      // carry = a&b | carry&(a^b)
      carry = graph().or_(graph().and_(a[i], b[i]), graph().and_(carry, axb));
    }
    return sum;
  }

  Lit reduce_and(const std::vector<Lit>& v) {
    Lit acc = kTrue;
    for (Lit l : v)
      acc = graph().and_(acc, l);
    return acc;
  }
  Lit reduce_or(const std::vector<Lit>& v) {
    Lit acc = kFalse;
    for (Lit l : v)
      acc = graph().or_(acc, l);
    return acc;
  }
  Lit reduce_xor(const std::vector<Lit>& v) {
    Lit acc = kFalse;
    for (Lit l : v)
      acc = graph().xor_(acc, l);
    return acc;
  }

  /// Unsigned a < b over equal-width vectors (ripple from LSB).
  Lit less_unsigned(const std::vector<Lit>& a, const std::vector<Lit>& b) {
    Lit lt = kFalse;
    for (size_t i = 0; i < a.size(); ++i) {
      const Lit eq = graph().xnor_(a[i], b[i]);
      const Lit here = graph().and_(lit_not(a[i]), b[i]);
      lt = graph().or_(here, graph().and_(eq, lt));
    }
    return lt;
  }

  void map_cell(Cell& cell) {
    const auto& p = cell.params();
    Aig& g = graph();

    if (rtlil::cell_is_unary(cell.type())) {
      std::vector<Lit> a = sig_lits(cell.port(Port::A));
      std::vector<Lit> y;
      switch (cell.type()) {
      case CellType::Not: {
        a = extend(std::move(a), static_cast<size_t>(p.y_width), p.a_signed);
        for (Lit l : a)
          y.push_back(lit_not(l));
        break;
      }
      case CellType::Pos:
        y = extend(std::move(a), static_cast<size_t>(p.y_width), p.a_signed);
        break;
      case CellType::Neg: {
        a = extend(std::move(a), static_cast<size_t>(p.y_width), p.a_signed);
        std::vector<Lit> na;
        for (Lit l : a)
          na.push_back(lit_not(l));
        y = ripple_add(na, std::vector<Lit>(na.size(), kFalse), kTrue);
        break;
      }
      case CellType::ReduceAnd: y.push_back(reduce_and(a)); break;
      case CellType::ReduceOr:
      case CellType::ReduceBool: y.push_back(reduce_or(a)); break;
      case CellType::ReduceXor: y.push_back(reduce_xor(a)); break;
      case CellType::ReduceXnor: y.push_back(lit_not(reduce_xor(a))); break;
      case CellType::LogicNot: y.push_back(lit_not(reduce_or(a))); break;
      default: throw std::logic_error("aigmap: unhandled unary");
      }
      set_output(cell.port(Port::Y), extend(std::move(y), static_cast<size_t>(p.y_width), false));
      return;
    }

    if (rtlil::cell_is_binary(cell.type())) {
      std::vector<Lit> a = sig_lits(cell.port(Port::A));
      std::vector<Lit> b = sig_lits(cell.port(Port::B));
      const bool sign = p.a_signed && p.b_signed;
      std::vector<Lit> y;
      switch (cell.type()) {
      case CellType::And:
      case CellType::Or:
      case CellType::Xor:
      case CellType::Xnor: {
        a = extend(std::move(a), static_cast<size_t>(p.y_width), p.a_signed);
        b = extend(std::move(b), static_cast<size_t>(p.y_width), p.b_signed);
        for (size_t i = 0; i < a.size(); ++i) {
          switch (cell.type()) {
          case CellType::And: y.push_back(g.and_(a[i], b[i])); break;
          case CellType::Or: y.push_back(g.or_(a[i], b[i])); break;
          case CellType::Xor: y.push_back(g.xor_(a[i], b[i])); break;
          default: y.push_back(g.xnor_(a[i], b[i])); break;
          }
        }
        break;
      }
      case CellType::Add:
      case CellType::Sub: {
        const size_t w = static_cast<size_t>(p.y_width);
        a = extend(std::move(a), w, p.a_signed);
        b = extend(std::move(b), w, p.b_signed);
        if (cell.type() == CellType::Sub) {
          for (Lit& l : b)
            l = lit_not(l);
          y = ripple_add(a, b, kTrue);
        } else {
          y = ripple_add(a, b, kFalse);
        }
        break;
      }
      case CellType::Mul: {
        const size_t w = static_cast<size_t>(p.y_width);
        a = extend(std::move(a), w, p.a_signed);
        b = extend(std::move(b), w, p.b_signed);
        std::vector<Lit> acc(w, kFalse);
        for (size_t i = 0; i < w; ++i) {
          std::vector<Lit> pp(w, kFalse);
          for (size_t j = i; j < w; ++j)
            pp[j] = g.and_(a[j - i], b[i]);
          acc = ripple_add(acc, pp, kFalse);
        }
        y = acc;
        break;
      }
      case CellType::Shl:
      case CellType::Shr:
      case CellType::Sshr: {
        const size_t w = std::max({a.size(), static_cast<size_t>(p.y_width)});
        a = extend(std::move(a), w, p.a_signed);
        const Lit fill =
            (cell.type() == CellType::Sshr && p.a_signed && !a.empty()) ? a.back() : kFalse;
        // Barrel shifter over the low bits of B; any higher set bit of B
        // shifts everything out.
        size_t stages = 0;
        while ((size_t(1) << stages) < w)
          ++stages;
        ++stages; // allow shifting fully out
        std::vector<Lit> cur = a;
        for (size_t s = 0; s < std::min(stages, b.size()); ++s) {
          const size_t dist = size_t(1) << s;
          std::vector<Lit> shifted(cur.size(), fill);
          for (size_t i = 0; i < cur.size(); ++i) {
            if (cell.type() == CellType::Shl) {
              shifted[i] = (i >= dist) ? cur[i - dist] : kFalse;
            } else {
              shifted[i] = (i + dist < cur.size()) ? cur[i + dist] : fill;
            }
          }
          std::vector<Lit> next(cur.size());
          for (size_t i = 0; i < cur.size(); ++i)
            next[i] = g.mux_(b[s], shifted[i], cur[i]);
          cur = next;
        }
        if (b.size() > stages) {
          std::vector<Lit> high(b.begin() + static_cast<long>(stages), b.end());
          const Lit any_high = reduce_or(high);
          for (Lit& l : cur)
            l = g.mux_(any_high, fill, l);
        }
        y = cur;
        break;
      }
      case CellType::Lt:
      case CellType::Le:
      case CellType::Ge:
      case CellType::Gt: {
        const size_t w = std::max(a.size(), b.size());
        a = extend(std::move(a), w, p.a_signed);
        b = extend(std::move(b), w, p.b_signed);
        if (sign && w > 0) {
          // Signed compare == unsigned compare with inverted sign bits.
          a.back() = lit_not(a.back());
          b.back() = lit_not(b.back());
        }
        const Lit lt = less_unsigned(a, b);
        Lit r = kFalse;
        switch (cell.type()) {
        case CellType::Lt: r = lt; break;
        case CellType::Ge: r = lit_not(lt); break;
        case CellType::Le: r = lit_not(less_unsigned(b, a)); break;
        default: r = less_unsigned(b, a); break;
        }
        y.push_back(r);
        break;
      }
      case CellType::Eq:
      case CellType::Ne: {
        const size_t w = std::max(a.size(), b.size());
        a = extend(std::move(a), w, p.a_signed);
        b = extend(std::move(b), w, p.b_signed);
        Lit eq = kTrue;
        for (size_t i = 0; i < w; ++i)
          eq = g.and_(eq, g.xnor_(a[i], b[i]));
        y.push_back(cell.type() == CellType::Eq ? eq : lit_not(eq));
        break;
      }
      case CellType::LogicAnd:
      case CellType::LogicOr: {
        const Lit la = reduce_or(a);
        const Lit lb = reduce_or(b);
        y.push_back(cell.type() == CellType::LogicAnd ? g.and_(la, lb) : g.or_(la, lb));
        break;
      }
      default:
        throw std::logic_error("aigmap: unhandled binary");
      }
      set_output(cell.port(Port::Y), extend(std::move(y), static_cast<size_t>(p.y_width), false));
      return;
    }

    if (cell.type() == CellType::Mux) {
      const std::vector<Lit> a = sig_lits(cell.port(Port::A));
      const std::vector<Lit> b = sig_lits(cell.port(Port::B));
      const Lit s = lit_of(cell.port(Port::S)[0]);
      std::vector<Lit> y(a.size());
      for (size_t i = 0; i < a.size(); ++i)
        y[i] = graph().mux_(s, b[i], a[i]);
      set_output(cell.port(Port::Y), y);
      return;
    }

    if (cell.type() == CellType::Pmux) {
      const std::vector<Lit> a = sig_lits(cell.port(Port::A));
      const std::vector<Lit> b = sig_lits(cell.port(Port::B));
      const std::vector<Lit> s = sig_lits(cell.port(Port::S));
      const size_t w = static_cast<size_t>(p.width);
      std::vector<Lit> y = a;
      // Priority: lowest set S bit wins, so fold from the last case inward.
      for (size_t i = s.size(); i-- > 0;) {
        for (size_t j = 0; j < w; ++j)
          y[j] = graph().mux_(s[i], b[i * w + j], y[j]);
      }
      set_output(cell.port(Port::Y), y);
      return;
    }

    throw std::logic_error(std::string("aigmap: unhandled cell type ") +
                           rtlil::cell_type_name(cell.type()));
  }

  const Module& module_;
  std::unique_ptr<rtlil::NetlistIndex> owned_index_;
  const rtlil::NetlistIndex& index_;
  AigMap result_;
  Aig* shared_graph_ = nullptr;
  SharedInputs* shared_inputs_ = nullptr;
};

} // namespace

AigMap aigmap(const rtlil::Module& module) { return Mapper(module).run(); }

AigMap aigmap(const rtlil::Module& module, const rtlil::NetlistIndex& index) {
  return Mapper(module, index).run();
}

AigMap aigmap_cone(const rtlil::Module& module, const std::vector<rtlil::Cell*>& cells,
                   const std::vector<rtlil::SigBit>& roots) {
  return Mapper(module).run_cone(cells, roots);
}

AigMap aigmap_cone(const rtlil::Module& module, const rtlil::NetlistIndex& index,
                   const std::vector<rtlil::Cell*>& cells,
                   const std::vector<rtlil::SigBit>& roots) {
  return Mapper(module, index).run_cone(cells, roots);
}

std::vector<std::pair<std::string, Lit>> aigmap_shared(Aig& graph, SharedInputs& inputs,
                                                       const rtlil::Module& module) {
  return Mapper(module, graph, inputs).run_shared();
}

size_t aig_area(const rtlil::Module& module) {
  return aigmap(module).aig.num_ands_reachable();
}

} // namespace smartly::aig
