#include "aig/aig.hpp"

#include <algorithm>

namespace smartly::aig {

Aig::Aig() {
  nodes_.push_back(Node{0, 0}); // node 0: constant false (fanins unused)
}

Lit Aig::add_input(std::string name) {
  const uint32_t node = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{}); // kInputMark fanins
  inputs_.push_back(node);
  input_names_.push_back(name.empty() ? "i" + std::to_string(inputs_.size() - 1)
                                      : std::move(name));
  return mk_lit(node);
}

int Aig::add_output(Lit l, std::string name) {
  outputs_.push_back({l, name.empty() ? "o" + std::to_string(outputs_.size()) : std::move(name)});
  return static_cast<int>(outputs_.size()) - 1;
}

Lit Aig::and_(Lit a, Lit b) {
  // Constant folding and trivial cases.
  if (a > b)
    std::swap(a, b);
  if (a == kFalse)
    return kFalse;
  if (a == kTrue)
    return b;
  if (a == b)
    return a;
  if (a == lit_not(b))
    return kFalse;

  const uint64_t key = hash_combine(a, b);
  auto& bucket = strash_[key];
  for (uint32_t node : bucket) {
    if (nodes_[node].fanin0 == a && nodes_[node].fanin1 == b)
      return mk_lit(node);
  }
  const uint32_t node = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b});
  ++num_ands_;
  bucket.push_back(node);
  return mk_lit(node);
}

Lit Aig::find_and(Lit a, Lit b) const {
  if (a > b)
    std::swap(a, b);
  if (a == kFalse)
    return kFalse;
  if (a == kTrue)
    return b;
  if (a == b)
    return a;
  if (a == lit_not(b))
    return kFalse;

  const auto it = strash_.find(hash_combine(a, b));
  if (it == strash_.end())
    return kNoLit;
  for (uint32_t node : it->second) {
    if (nodes_[node].fanin0 == a && nodes_[node].fanin1 == b)
      return mk_lit(node);
  }
  return kNoLit;
}

Lit Aig::xor_(Lit a, Lit b) {
  if (a == kFalse)
    return b;
  if (a == kTrue)
    return lit_not(b);
  if (b == kFalse)
    return a;
  if (b == kTrue)
    return lit_not(a);
  if (a == b)
    return kFalse;
  if (a == lit_not(b))
    return kTrue;
  return lit_not(and_(lit_not(and_(a, lit_not(b))), lit_not(and_(lit_not(a), b))));
}

Lit Aig::mux_(Lit s, Lit t, Lit e) {
  if (s == kTrue)
    return t;
  if (s == kFalse)
    return e;
  if (t == e)
    return t;
  if (t == kTrue && e == kFalse)
    return s;
  if (t == kFalse && e == kTrue)
    return lit_not(s);
  return lit_not(and_(lit_not(and_(s, t)), lit_not(and_(lit_not(s), e))));
}

size_t Aig::num_ands_reachable() const {
  std::vector<uint8_t> mark(nodes_.size(), 0);
  std::vector<uint32_t> stack;
  for (const Output& o : outputs_) {
    const uint32_t n = lit_node(o.lit);
    if (!mark[n]) {
      mark[n] = 1;
      stack.push_back(n);
    }
  }
  size_t count = 0;
  while (!stack.empty()) {
    const uint32_t n = stack.back();
    stack.pop_back();
    if (!is_and(n))
      continue;
    ++count;
    for (Lit f : {nodes_[n].fanin0, nodes_[n].fanin1}) {
      const uint32_t m = lit_node(f);
      if (!mark[m]) {
        mark[m] = 1;
        stack.push_back(m);
      }
    }
  }
  return count;
}

std::vector<uint64_t> Aig::simulate(const std::vector<uint64_t>& input_words) const {
  std::vector<uint64_t> words;
  simulate_into(input_words, words);
  return words;
}

void Aig::simulate_into(const std::vector<uint64_t>& input_words,
                        std::vector<uint64_t>& node_words) const {
  node_words.assign(nodes_.size(), 0);
  for (size_t i = 0; i < inputs_.size(); ++i)
    node_words[inputs_[i]] = i < input_words.size() ? input_words[i] : 0;
  for (uint32_t n = 1; n < nodes_.size(); ++n) {
    if (is_input(n))
      continue;
    node_words[n] = sim_lit(node_words, nodes_[n].fanin0) & sim_lit(node_words, nodes_[n].fanin1);
  }
}

} // namespace smartly::aig
