// And-Inverter Graph with structural hashing.
//
// The paper measures quality as "AIG area, specifically the number of AND
// gates in the optimized circuit" after Yosys `aigmap`; this package provides
// that graph plus 64-way packed simulation (used for exhaustive sub-graph
// evaluation in §II) and is the substrate for CNF encoding / CEC.
#pragma once

#include "util/hashing.hpp"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace smartly::aig {

/// AIG literal: 2*node + complement. Node 0 is constant false, so literal 0
/// is FALSE and literal 1 is TRUE.
using Lit = uint32_t;

constexpr Lit kFalse = 0;
constexpr Lit kTrue = 1;

/// "No such node" sentinel returned by the non-mutating strash probes.
constexpr Lit kNoLit = 0xffffffffu;

inline Lit mk_lit(uint32_t node, bool complement = false) { return node * 2 + (complement ? 1 : 0); }
inline uint32_t lit_node(Lit l) noexcept { return l >> 1; }
inline bool lit_compl(Lit l) noexcept { return l & 1; }
inline Lit lit_not(Lit l) noexcept { return l ^ 1; }

class Aig {
public:
  Aig();

  /// Create a new primary input; returns its (positive) literal.
  Lit add_input(std::string name = "");

  /// Register an output. Returns the output index.
  int add_output(Lit l, std::string name = "");

  // --- construction (with constant folding + structural hashing) ----------
  Lit and_(Lit a, Lit b);
  /// Non-mutating probe: the literal and_(a, b) *would* return, or kNoLit if
  /// it would have to create a node. Applies the same normalization and
  /// constant folding as and_, so folded cases (constants, a == b, a == ~b)
  /// always resolve. The DAG-aware rewrite engine uses this to price
  /// candidate structures against logic the graph already contains without
  /// polluting the strash table.
  Lit find_and(Lit a, Lit b) const;
  Lit or_(Lit a, Lit b) { return lit_not(and_(lit_not(a), lit_not(b))); }
  Lit xor_(Lit a, Lit b);
  Lit xnor_(Lit a, Lit b) { return lit_not(xor_(a, b)); }
  /// s ? t : e
  Lit mux_(Lit s, Lit t, Lit e);

  // --- inspection ----------------------------------------------------------
  size_t num_nodes() const noexcept { return nodes_.size(); } ///< incl. const + inputs
  size_t num_inputs() const noexcept { return inputs_.size(); }
  size_t num_outputs() const noexcept { return outputs_.size(); }
  /// Number of AND nodes — the paper's "AIG area".
  size_t num_ands() const noexcept { return num_ands_; }

  bool is_input(uint32_t node) const noexcept {
    return nodes_[node].fanin0 == kInputMark;
  }
  bool is_and(uint32_t node) const noexcept {
    return node != 0 && nodes_[node].fanin0 != kInputMark;
  }
  Lit fanin0(uint32_t node) const noexcept { return nodes_[node].fanin0; }
  Lit fanin1(uint32_t node) const noexcept { return nodes_[node].fanin1; }

  const std::vector<uint32_t>& inputs() const noexcept { return inputs_; }
  Lit output(int i) const { return outputs_.at(static_cast<size_t>(i)).lit; }
  const std::string& output_name(int i) const {
    return outputs_.at(static_cast<size_t>(i)).name;
  }
  const std::string& input_name(int i) const {
    return input_names_.at(static_cast<size_t>(i));
  }

  /// Count of AND nodes reachable from the outputs (area after dead-node
  /// removal; strash can leave unreachable nodes behind).
  size_t num_ands_reachable() const;

  // --- packed simulation ---------------------------------------------------
  /// Evaluate all nodes over 64 parallel patterns. `input_words[i]` holds the
  /// patterns for input i (order of add_input). Returns one word per node;
  /// evaluate a literal with `sim_lit`.
  std::vector<uint64_t> simulate(const std::vector<uint64_t>& input_words) const;

  /// Same, writing into a caller-owned buffer (resized to num_nodes). Query
  /// loops that simulate many word-batches reuse one buffer instead of
  /// allocating a node-sized vector per batch.
  void simulate_into(const std::vector<uint64_t>& input_words,
                     std::vector<uint64_t>& node_words) const;

  static uint64_t sim_lit(const std::vector<uint64_t>& node_words, Lit l) {
    const uint64_t w = node_words[lit_node(l)];
    return lit_compl(l) ? ~w : w;
  }

private:
  static constexpr Lit kInputMark = 0xffffffffu;

  struct Node {
    Lit fanin0 = kInputMark;
    Lit fanin1 = kInputMark;
  };
  struct Output {
    Lit lit;
    std::string name;
  };

  std::vector<Node> nodes_;
  std::vector<uint32_t> inputs_;
  std::vector<std::string> input_names_;
  std::vector<Output> outputs_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> strash_;
  size_t num_ands_ = 0;
};

} // namespace smartly::aig
