// Tseitin encoding of an AIG into the CDCL solver.
#pragma once

#include "aig/aig.hpp"
#include "sat/solver.hpp"

#include <unordered_map>
#include <vector>

namespace smartly::aig {

/// Encodes every node of an AIG as one SAT variable with the standard
/// three-clause AND encoding. Reusable for incremental queries: encode once,
/// then solve under assumptions on `lit(...)`.
///
/// The activation-literal overload tags every clause with ¬act, turning the
/// encoding into a *clause group*: the clauses are inert unless `act` is
/// assumed true, and the whole group is retired for good by adding the unit
/// clause ¬act. This is how the incremental oracle keeps many cone encodings
/// alive in one persistent solver and drops the ones its caches invalidate.
class CnfEncoder {
public:
  explicit CnfEncoder(sat::Solver& solver) : solver_(solver) {}

  /// Encode the whole graph (idempotent per encoder instance).
  void encode(const Aig& aig);

  /// Encode as a clause group guarded by `activation` (assume it true to
  /// activate the group; add ¬activation as a unit clause to retire it).
  void encode(const Aig& aig, sat::Lit activation);

  /// SAT literal corresponding to an AIG literal.
  sat::Lit lit(Lit aig_lit) const {
    return sat::mk_lit(vars_.at(lit_node(aig_lit)), lit_compl(aig_lit));
  }

  /// AIG node -> solver variable, for callers that outlive the encoder
  /// (clause groups in a persistent solver snapshot this mapping).
  const std::vector<sat::Var>& vars() const noexcept { return vars_; }

  sat::Solver& solver() noexcept { return solver_; }

private:
  void encode_impl(const Aig& aig, const sat::Lit* activation);

  sat::Solver& solver_;
  std::vector<sat::Var> vars_;
};

/// Cone-restricted Tseitin encoding: only the transitive fanin of requested
/// literals gets solver variables and clauses. The fraig engine keeps one
/// whole-netlist AIG per refinement round but proves class miters over small
/// cones of it; encoding the full graph per class would swamp the solver with
/// inert clauses. Nodes are encoded at most once per encoder, so the joint
/// cone of a class's members shares variables across its queries.
class ConeCnfEncoder {
public:
  ConeCnfEncoder(sat::Solver& solver, const Aig& aig) : solver_(solver), aig_(aig) {}

  /// Encode the fanin cone of `aig_lit` (no-op for already-encoded nodes) and
  /// return its solver literal.
  sat::Lit ensure(Lit aig_lit);

  /// Solver literal of an already-ensured AIG literal.
  sat::Lit lit(Lit aig_lit) const {
    return sat::mk_lit(vars_.at(lit_node(aig_lit)), lit_compl(aig_lit));
  }

  /// AIG input nodes that received variables — the cone's free inputs, in
  /// first-encounter order (deterministic given the ensure() call sequence).
  /// Counterexample models are read back through these.
  const std::vector<uint32_t>& encoded_inputs() const noexcept { return encoded_inputs_; }

  sat::Solver& solver() noexcept { return solver_; }

private:
  sat::Var var_of(uint32_t node);

  sat::Solver& solver_;
  const Aig& aig_;
  std::unordered_map<uint32_t, sat::Var> vars_;
  std::vector<uint32_t> encoded_inputs_;
  std::vector<uint32_t> stack_; ///< DFS scratch (cones can be deep)
};

} // namespace smartly::aig
