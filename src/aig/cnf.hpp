// Tseitin encoding of an AIG into the CDCL solver.
#pragma once

#include "aig/aig.hpp"
#include "sat/solver.hpp"

#include <vector>

namespace smartly::aig {

/// Encodes every node of an AIG as one SAT variable with the standard
/// three-clause AND encoding. Reusable for incremental queries: encode once,
/// then solve under assumptions on `lit(...)`.
class CnfEncoder {
public:
  explicit CnfEncoder(sat::Solver& solver) : solver_(solver) {}

  /// Encode the whole graph (idempotent per encoder instance).
  void encode(const Aig& aig);

  /// SAT literal corresponding to an AIG literal.
  sat::Lit lit(Lit aig_lit) const {
    return sat::mk_lit(vars_.at(lit_node(aig_lit)), lit_compl(aig_lit));
  }

  sat::Solver& solver() noexcept { return solver_; }

private:
  sat::Solver& solver_;
  std::vector<sat::Var> vars_;
};

} // namespace smartly::aig
