// Tseitin encoding of an AIG into the CDCL solver.
#pragma once

#include "aig/aig.hpp"
#include "sat/solver.hpp"

#include <vector>

namespace smartly::aig {

/// Encodes every node of an AIG as one SAT variable with the standard
/// three-clause AND encoding. Reusable for incremental queries: encode once,
/// then solve under assumptions on `lit(...)`.
///
/// The activation-literal overload tags every clause with ¬act, turning the
/// encoding into a *clause group*: the clauses are inert unless `act` is
/// assumed true, and the whole group is retired for good by adding the unit
/// clause ¬act. This is how the incremental oracle keeps many cone encodings
/// alive in one persistent solver and drops the ones its caches invalidate.
class CnfEncoder {
public:
  explicit CnfEncoder(sat::Solver& solver) : solver_(solver) {}

  /// Encode the whole graph (idempotent per encoder instance).
  void encode(const Aig& aig);

  /// Encode as a clause group guarded by `activation` (assume it true to
  /// activate the group; add ¬activation as a unit clause to retire it).
  void encode(const Aig& aig, sat::Lit activation);

  /// SAT literal corresponding to an AIG literal.
  sat::Lit lit(Lit aig_lit) const {
    return sat::mk_lit(vars_.at(lit_node(aig_lit)), lit_compl(aig_lit));
  }

  /// AIG node -> solver variable, for callers that outlive the encoder
  /// (clause groups in a persistent solver snapshot this mapping).
  const std::vector<sat::Var>& vars() const noexcept { return vars_; }

  sat::Solver& solver() noexcept { return solver_; }

private:
  void encode_impl(const Aig& aig, const sat::Lit* activation);

  sat::Solver& solver_;
  std::vector<sat::Var> vars_;
};

} // namespace smartly::aig
