// aigmap — bit-blast an RTLIL module into an AIG (Yosys `aigmap` analogue).
//
// Sequential cells are cut exactly as the paper's metric requires ("we
// exclude Flip-Flop gates from consideration"): every $dff Q bit becomes an
// AIG input and every D bit an AIG output, so the AIG covers precisely the
// combinational cones and its AND count is the paper's "AIG area".
//
// x/z constants map to 0. This is the usual synthesis resolution of
// don't-cares and is applied identically to baseline and optimized designs.
#pragma once

#include "aig/aig.hpp"
#include "rtlil/module.hpp"
#include "rtlil/topo.hpp"

#include <unordered_map>

namespace smartly::aig {

struct AigMap {
  Aig aig;
  /// Canonical SigBit -> AIG literal for every mapped bit.
  std::unordered_map<rtlil::SigBit, Lit> bits;
};

/// Bit-blast `module`. AIG outputs = module output ports + dff D inputs;
/// AIG inputs = module input ports + undriven wires + dff Q outputs.
AigMap aigmap(const rtlil::Module& module);

/// Whole-module blast with a caller-maintained NetlistIndex. The fraig engine
/// re-blasts the netlist every refinement round against the index it updates
/// incrementally; rebuilding the index per round would dominate small rounds.
AigMap aigmap(const rtlil::Module& module, const rtlil::NetlistIndex& index);

/// Bit-blast only a sub-graph: the given `cells` are mapped (in topological
/// order); any bit driven by a cell outside the set becomes an AIG input.
/// AIG outputs are the requested `roots`. Used by the §II redundancy engine
/// to hand a bounded sub-graph to simulation or SAT.
AigMap aigmap_cone(const rtlil::Module& module, const std::vector<rtlil::Cell*>& cells,
                   const std::vector<rtlil::SigBit>& roots);

/// Cone mapping with a caller-provided NetlistIndex. Prefer this in query
/// loops: building a whole-module index per cone dominates otherwise.
AigMap aigmap_cone(const rtlil::Module& module, const rtlil::NetlistIndex& index,
                   const std::vector<rtlil::Cell*>& cells,
                   const std::vector<rtlil::SigBit>& roots);

/// Convenience: the paper's area metric (AND nodes reachable from outputs).
size_t aig_area(const rtlil::Module& module);

/// Input registry for shared-graph mapping (see aigmap_shared).
struct SharedInputs {
  std::unordered_map<std::string, Lit> by_name;
};

/// Bit-blast `module` into an existing graph, reusing same-named inputs from
/// earlier calls. Structurally identical cones of the two designs strash to
/// the same literal, which lets the equivalence checker discharge untouched
/// logic without any SAT work. Returns (name, literal) pairs for the module's
/// outputs and dff D-cones, in the same naming scheme as aigmap(); outputs
/// are NOT registered on the graph (two designs would collide).
std::vector<std::pair<std::string, Lit>> aigmap_shared(Aig& graph, SharedInputs& inputs,
                                                       const rtlil::Module& module);

} // namespace smartly::aig
