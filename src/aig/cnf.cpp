#include "aig/cnf.hpp"

namespace smartly::aig {

void CnfEncoder::encode(const Aig& aig) { encode_impl(aig, nullptr); }

void CnfEncoder::encode(const Aig& aig, sat::Lit activation) { encode_impl(aig, &activation); }

void CnfEncoder::encode_impl(const Aig& aig, const sat::Lit* activation) {
  vars_.clear();
  vars_.reserve(aig.num_nodes());
  for (size_t n = 0; n < aig.num_nodes(); ++n)
    vars_.push_back(solver_.new_var());

  const sat::Lit nact = activation ? ~*activation : sat::lit_undef;
  auto add1 = [&](sat::Lit a) {
    if (activation)
      solver_.add_clause(nact, a);
    else
      solver_.add_clause(a);
  };
  auto add2 = [&](sat::Lit a, sat::Lit b) {
    if (activation)
      solver_.add_clause(nact, a, b);
    else
      solver_.add_clause(a, b);
  };
  auto add3 = [&](sat::Lit a, sat::Lit b, sat::Lit c) {
    if (activation)
      solver_.add_clause(std::vector<sat::Lit>{nact, a, b, c});
    else
      solver_.add_clause(a, b, c);
  };

  // Node 0 is constant false.
  add1(sat::mk_lit(vars_[0], true));

  for (uint32_t n = 1; n < aig.num_nodes(); ++n) {
    if (!aig.is_and(n))
      continue;
    const sat::Lit y = sat::mk_lit(vars_[n]);
    const sat::Lit a = lit(aig.fanin0(n));
    const sat::Lit b = lit(aig.fanin1(n));
    // y -> a, y -> b, (a & b) -> y
    add2(~y, a);
    add2(~y, b);
    add3(y, ~a, ~b);
  }
}

sat::Var ConeCnfEncoder::var_of(uint32_t node) {
  auto it = vars_.find(node);
  if (it != vars_.end())
    return it->second;
  const sat::Var v = solver_.new_var();
  vars_.emplace(node, v);
  return v;
}

sat::Lit ConeCnfEncoder::ensure(Lit aig_lit) {
  const uint32_t root = lit_node(aig_lit);
  if (!vars_.count(root)) {
    // Iterative post-order: give every reachable unencoded node a variable,
    // then clause it once both fanins have theirs.
    stack_.clear();
    stack_.push_back(root);
    while (!stack_.empty()) {
      const uint32_t n = stack_.back();
      if (vars_.count(n)) {
        stack_.pop_back();
        continue;
      }
      if (n == 0) {
        solver_.add_clause(sat::mk_lit(var_of(0), true)); // constant false
        stack_.pop_back();
        continue;
      }
      if (aig_.is_input(n)) {
        var_of(n);
        encoded_inputs_.push_back(n);
        stack_.pop_back();
        continue;
      }
      const uint32_t f0 = lit_node(aig_.fanin0(n));
      const uint32_t f1 = lit_node(aig_.fanin1(n));
      const bool need0 = !vars_.count(f0);
      const bool need1 = !vars_.count(f1);
      if (need0 || need1) {
        if (need0)
          stack_.push_back(f0);
        if (need1)
          stack_.push_back(f1);
        continue;
      }
      const sat::Lit y = sat::mk_lit(var_of(n));
      const sat::Lit a = lit(aig_.fanin0(n));
      const sat::Lit b = lit(aig_.fanin1(n));
      solver_.add_clause(~y, a);
      solver_.add_clause(~y, b);
      solver_.add_clause(y, ~a, ~b);
      stack_.pop_back();
    }
  }
  return lit(aig_lit);
}

} // namespace smartly::aig
