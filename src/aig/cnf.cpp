#include "aig/cnf.hpp"

namespace smartly::aig {

void CnfEncoder::encode(const Aig& aig) {
  vars_.clear();
  vars_.reserve(aig.num_nodes());
  for (size_t n = 0; n < aig.num_nodes(); ++n)
    vars_.push_back(solver_.new_var());

  // Node 0 is constant false.
  solver_.add_clause(sat::mk_lit(vars_[0], true));

  for (uint32_t n = 1; n < aig.num_nodes(); ++n) {
    if (!aig.is_and(n))
      continue;
    const sat::Lit y = sat::mk_lit(vars_[n]);
    const sat::Lit a = lit(aig.fanin0(n));
    const sat::Lit b = lit(aig.fanin1(n));
    // y -> a, y -> b, (a & b) -> y
    solver_.add_clause(~y, a);
    solver_.add_clause(~y, b);
    solver_.add_clause(y, ~a, ~b);
  }
}

} // namespace smartly::aig
