#include "aig/cnf.hpp"

namespace smartly::aig {

void CnfEncoder::encode(const Aig& aig) { encode_impl(aig, nullptr); }

void CnfEncoder::encode(const Aig& aig, sat::Lit activation) { encode_impl(aig, &activation); }

void CnfEncoder::encode_impl(const Aig& aig, const sat::Lit* activation) {
  vars_.clear();
  vars_.reserve(aig.num_nodes());
  for (size_t n = 0; n < aig.num_nodes(); ++n)
    vars_.push_back(solver_.new_var());

  const sat::Lit nact = activation ? ~*activation : sat::lit_undef;
  auto add1 = [&](sat::Lit a) {
    if (activation)
      solver_.add_clause(nact, a);
    else
      solver_.add_clause(a);
  };
  auto add2 = [&](sat::Lit a, sat::Lit b) {
    if (activation)
      solver_.add_clause(nact, a, b);
    else
      solver_.add_clause(a, b);
  };
  auto add3 = [&](sat::Lit a, sat::Lit b, sat::Lit c) {
    if (activation)
      solver_.add_clause(std::vector<sat::Lit>{nact, a, b, c});
    else
      solver_.add_clause(a, b, c);
  };

  // Node 0 is constant false.
  add1(sat::mk_lit(vars_[0], true));

  for (uint32_t n = 1; n < aig.num_nodes(); ++n) {
    if (!aig.is_and(n))
      continue;
    const sat::Lit y = sat::mk_lit(vars_[n]);
    const sat::Lit a = lit(aig.fanin0(n));
    const sat::Lit b = lit(aig.fanin1(n));
    // y -> a, y -> b, (a & b) -> y
    add2(~y, a);
    add2(~y, b);
    add3(y, ~a, ~b);
  }
}

} // namespace smartly::aig
