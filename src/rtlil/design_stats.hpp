// Text dump + cheap statistics for modules (debugging and bench reporting).
#pragma once

#include "rtlil/module.hpp"

#include <string>

namespace smartly::rtlil {

std::string dump_module(const Module& module);

struct ModuleStats {
  size_t cells = 0;
  size_t mux_cells = 0;
  size_t pmux_cells = 0;
  size_t eq_cells = 0;
  size_t dff_cells = 0;
  size_t wires = 0;
};

ModuleStats compute_stats(const Module& module);
std::string stats_to_string(const ModuleStats& st);

} // namespace smartly::rtlil
