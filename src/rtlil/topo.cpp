#include "rtlil/topo.hpp"

#include "util/log.hpp"

#include <stdexcept>

namespace smartly::rtlil {

NetlistIndex::NetlistIndex(const Module& module) : sigmap_(module) {
  for (const auto& w : module.wires()) {
    if (!w->port_output)
      continue;
    for (int i = 0; i < w->width(); ++i)
      output_port_bits_[sigmap_(SigBit(w.get(), i))] = true;
  }

  std::unordered_map<const Cell*, int> indegree;
  std::unordered_map<SigBit, std::vector<Cell*>> comb_readers;

  for (const auto& cptr : module.cells()) {
    Cell* c = cptr.get();
    indegree[c] = 0;
    const Port out = c->output_port();
    for (const SigBit& raw : c->port(out)) {
      const SigBit bit = sigmap_(raw);
      if (!bit.is_wire())
        continue; // output tied to a constant alias: nothing to index
      auto [it, inserted] = driver_.emplace(bit, c);
      if (!inserted)
        log_warn("multiple drivers for %s[%d] (cells %s, %s)", bit.wire->name().c_str(),
                 bit.offset, it->second->name().c_str(), c->name().c_str());
    }
  }

  for (const auto& cptr : module.cells()) {
    Cell* c = cptr.get();
    for (Port p : c->input_ports()) {
      for (const SigBit& raw : c->port(p)) {
        const SigBit bit = sigmap_(raw);
        if (!bit.is_wire())
          continue;
        readers_[bit].push_back(c);
        // Combinational dependency edge driver(bit) -> c, except into Dff.D
        // (sequential boundary) and from Dff.Q (handled as source).
        if (c->type() == CellType::Dff)
          continue;
        auto it = driver_.find(bit);
        if (it != driver_.end() && it->second->type() != CellType::Dff) {
          comb_readers[bit].push_back(c);
          ++indegree[c];
        }
      }
    }
  }

  // Kahn's algorithm over combinational edges.
  std::vector<Cell*> ready;
  for (auto& [cell, deg] : indegree)
    if (deg == 0)
      ready.push_back(const_cast<Cell*>(cell));
  topo_.reserve(module.cells().size());
  while (!ready.empty()) {
    Cell* c = ready.back();
    ready.pop_back();
    topo_.push_back(c);
    if (c->type() == CellType::Dff)
      continue;
    for (const SigBit& raw : c->port(c->output_port())) {
      const SigBit bit = sigmap_(raw);
      auto it = comb_readers.find(bit);
      if (it == comb_readers.end())
        continue;
      for (Cell* r : it->second)
        if (--indegree[r] == 0)
          ready.push_back(r);
      comb_readers.erase(it);
    }
  }
  if (topo_.size() != module.cells().size())
    throw std::logic_error("NetlistIndex: combinational cycle detected");
  topo_pos_.reserve(topo_.size());
  for (size_t i = 0; i < topo_.size(); ++i)
    topo_pos_.emplace(topo_[i], static_cast<int>(i));
}

Cell* NetlistIndex::driver(SigBit bit) const {
  auto it = driver_.find(sigmap_(bit));
  return it == driver_.end() ? nullptr : it->second;
}

const std::vector<Cell*>& NetlistIndex::readers(SigBit bit) const {
  auto it = readers_.find(sigmap_(bit));
  return it == readers_.end() ? empty_ : it->second;
}

int NetlistIndex::fanout(SigBit bit) const {
  const SigBit b = sigmap_(bit);
  auto it = readers_.find(b);
  int n = it == readers_.end() ? 0 : static_cast<int>(it->second.size());
  if (drives_output_port(b))
    ++n;
  return n;
}

bool NetlistIndex::drives_output_port(SigBit bit) const {
  return output_port_bits_.count(sigmap_(bit)) > 0;
}

} // namespace smartly::rtlil
